// tlssweep sweeps one workload or machine parameter across values and
// prints a CSV of results, one row per (value, scheme) — the generic
// sensitivity-analysis companion to the fixed figures of tlsreport.
//
// Usage:
//
//	tlssweep -app Euler -param depprob -values 0,0.05,0.1,0.2 \
//	         -schemes "MultiT&MV Lazy AMM;MultiT&MV FMM"
//	tlssweep -app Bdna -param procs -values 4,8,16,32
//	tlssweep -app Track -param chunk -values 0.5,1,2,4
//
// Parameters: depprob, privfrac, imbalance, chunk (Rechunk factor),
// procs (NUMA size), density (write density), sharedreads.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		appName  = flag.String("app", "Euler", "application to sweep")
		param    = flag.String("param", "depprob", "parameter: depprob, privfrac, imbalance, chunk, procs, density, sharedreads")
		values   = flag.String("values", "0,0.05,0.1,0.2", "comma-separated sweep values")
		schemesF = flag.String("schemes", "MultiT&MV Lazy AMM;MultiT&MV FMM", "semicolon-separated schemes")
		seed     = flag.Uint64("seed", 1, "workload seed")
		tasks    = flag.Float64("tasks", 0.25, "task-count scale")
		instr    = flag.Float64("instr", 0.1, "instruction scale")
	)
	flag.Parse()

	base, ok := repro.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tlssweep: unknown application %q\n", *appName)
		os.Exit(2)
	}
	base = base.Scale(*tasks, *instr, 0.25)

	var schemes []repro.Scheme
	for _, name := range strings.Split(*schemesF, ";") {
		s, ok := repro.SchemeFromString(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "tlssweep: unknown scheme %q\n", name)
			os.Exit(2)
		}
		schemes = append(schemes, s)
	}

	var vals []float64
	for _, v := range strings.Split(*values, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlssweep: bad value %q: %v\n", v, err)
			os.Exit(2)
		}
		vals = append(vals, f)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlssweep: %v\n", err)
			os.Exit(1)
		}
	}
	die(w.Write([]string{
		"param", "value", "scheme", "exec_cycles", "speedup", "busy_frac",
		"squash_events", "tasks_squashed", "overflow_spills", "commit_exec_pct",
	}))

	for _, v := range vals {
		prof := base
		mach := repro.NUMA16()
		switch strings.ToLower(*param) {
		case "depprob":
			prof.DepProb = v
			if v > 0 && prof.DepReach == 0 {
				prof.DepReach = 12
			}
		case "privfrac":
			prof.PrivFrac = v
		case "imbalance":
			prof.ImbalanceCV = v
		case "chunk":
			prof = prof.Rechunk(v)
		case "procs":
			mach = repro.ScalableNUMA(int(v))
		case "density":
			prof.WriteDensity = int(v)
		case "sharedreads":
			prof.SharedReadFrac = v
		default:
			fmt.Fprintf(os.Stderr, "tlssweep: unknown parameter %q\n", *param)
			os.Exit(2)
		}
		seq := repro.RunSequential(mach, prof, *seed)
		for _, sch := range schemes {
			r := repro.Run(mach, sch, prof, *seed)
			die(w.Write([]string{
				*param,
				strconv.FormatFloat(v, 'g', 6, 64),
				sch.String(),
				strconv.FormatUint(uint64(r.ExecCycles), 10),
				strconv.FormatFloat(r.Speedup(seq.ExecCycles), 'f', 3, 64),
				strconv.FormatFloat(r.Agg.BusyFraction(), 'f', 4, 64),
				strconv.Itoa(r.SquashEvents),
				strconv.Itoa(r.TasksSquashed),
				strconv.FormatUint(r.OverflowSpills, 10),
				strconv.FormatFloat(r.CommitExecRatio(), 'f', 2, 64),
			}))
		}
	}
}
