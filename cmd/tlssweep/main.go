// tlssweep sweeps one workload or machine parameter across values and
// prints a CSV of results, one row per (value, scheme) — the generic
// sensitivity-analysis companion to the fixed figures of tlsreport.
//
// The whole sweep is submitted as one batch to the experiment orchestrator
// (-jobs workers, optional -cache memoization); rows print in sweep order
// regardless of which worker finished first.
//
// Usage:
//
//	tlssweep -app Euler -param depprob -values 0,0.05,0.1,0.2 \
//	         -schemes "MultiT&MV Lazy AMM;MultiT&MV FMM"
//	tlssweep -app Bdna -param procs -values 4,8,16,32
//	tlssweep -app Track -param chunk -values 0.5,1,2,4
//
// Parameters: depprob, privfrac, imbalance, chunk (Rechunk factor),
// procs (NUMA size), density (write density), sharedreads.
package main

import (
	"encoding/csv"
	"flag"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/iofault"
	"repro/internal/obs"
)

func main() {
	var (
		appName  = flag.String("app", "Euler", "application to sweep")
		param    = flag.String("param", "depprob", "parameter: depprob, privfrac, imbalance, chunk, procs, density, sharedreads")
		values   = flag.String("values", "0,0.05,0.1,0.2", "comma-separated sweep values")
		schemesF = flag.String("schemes", "MultiT&MV Lazy AMM;MultiT&MV FMM", "semicolon-separated schemes")
		seed     = flag.Uint64("seed", 1, "workload seed")
		tasks    = flag.Float64("tasks", 0.25, "task-count scale")
		instr    = flag.Float64("instr", 0.1, "instruction scale")
		jobsN    = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache", "", "persistent result-cache directory")
		journalF = flag.String("journal", "", "append campaign progress to this JSONL journal (crash recovery via -resume)")
		resumeF  = flag.String("resume", "", "resume a crashed or interrupted sweep from its journal (implies -journal)")
		ckptDir  = flag.String("checkpoint-dir", "", "mid-run simulator checkpoint directory (default <journal>.ckpt when journaling)")
		ckptN    = flag.Int("checkpoint-every", 50, "auto-checkpoint cadence in committed tasks (0 = only at interrupts)")
		listenF  = flag.String("listen", "", "serve live telemetry on this address (/metrics Prometheus text, /progress JSON)")
		ioChaos  = flag.String("io-chaos", "", "inject storage faults into all durable state, e.g. \"seed=7,perr=0.01,psync=0.02,cut=120,cutmode=torn\" (fault drills; see tlsfsck)")
		coordF   = flag.String("coordinator", "", "run the sweep on a distributed fleet via this tlsserve URL (execution flags then apply coordinator/worker-side)")
		rpcT     = flag.Duration("rpc-timeout", 30*time.Second, "total per-RPC deadline against the coordinator")
		dialT    = flag.Duration("dial-timeout", 5*time.Second, "connection-attempt deadline against the coordinator")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "tlssweep")
	die := func(err error) {
		if err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
	}

	base, ok := repro.AppByName(*appName)
	if !ok {
		logger.Error("unknown application", "app", *appName)
		os.Exit(2)
	}
	base = base.Scale(*tasks, *instr, 0.25)

	var schemes []repro.Scheme
	for _, name := range strings.Split(*schemesF, ";") {
		s, ok := repro.SchemeFromString(strings.TrimSpace(name))
		if !ok {
			logger.Error("unknown scheme", "scheme", name)
			os.Exit(2)
		}
		schemes = append(schemes, s)
	}

	var vals []float64
	for _, v := range strings.Split(*values, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			logger.Error("bad sweep value", "value", v, "err", err)
			os.Exit(2)
		}
		vals = append(vals, f)
	}

	// Resolve each sweep value to its (profile, machine) point.
	type point struct {
		value float64
		prof  repro.Profile
		mach  *repro.Machine
	}
	points := make([]point, 0, len(vals))
	for _, v := range vals {
		prof := base
		mach := repro.NUMA16()
		switch strings.ToLower(*param) {
		case "depprob":
			prof.DepProb = v
			if v > 0 && prof.DepReach == 0 {
				prof.DepReach = 12
			}
		case "privfrac":
			prof.PrivFrac = v
		case "imbalance":
			prof.ImbalanceCV = v
		case "chunk":
			prof = prof.Rechunk(v)
		case "procs":
			mach = repro.ScalableNUMA(int(v))
		case "density":
			prof.WriteDensity = int(v)
		case "sharedreads":
			prof.SharedReadFrac = v
		default:
			logger.Error("unknown parameter", "param", *param)
			os.Exit(2)
		}
		points = append(points, point{value: v, prof: prof, mach: mach})
	}

	// One batch: a sequential baseline per point, then every scheme run.
	jobs := make([]repro.Job, 0, len(points)*(len(schemes)+1))
	for _, pt := range points {
		jobs = append(jobs, repro.Job{Machine: pt.mach, Profile: pt.prof, Seed: *seed, Sequential: true})
		for _, sch := range schemes {
			jobs = append(jobs, repro.Job{Machine: pt.mach, Scheme: sch, Profile: pt.prof, Seed: *seed})
		}
	}
	runner := &repro.Runner{Workers: *jobsN}
	var fsys iofault.FS
	if *ioChaos != "" {
		plan, err := iofault.ParsePlan(*ioChaos)
		die(err)
		inj := iofault.NewInjector(plan)
		inj.Logf = obs.Logf(logger.With("subsys", "iofault"))
		// Die exactly as a power loss would: no flushing, no cleanup. The
		// cut has already rewritten the disk to a legal crash state.
		inj.OnCut = func() {
			logger.Warn("simulated power cut; verify state with tlsfsck, then -resume")
			os.Exit(repro.ExitPowerCut)
		}
		fsys = inj
		runner.FS = fsys
		logger.Info("storage fault injection active", "plan", plan)
	}
	if *listenF != "" {
		runner.Metrics = new(repro.RunMetrics)
		tel := &repro.Telemetry{Name: "tlssweep", Metrics: runner.Metrics}
		runner.Progress = tel.ObserveJob
		// Each job gets its own obs registry (they are not safe to share
		// across workers); ObserveJob aggregates them into the /metrics
		// tls_run_* counters. Obs is not part of the job key, so caching
		// is unaffected. On a fleet run the registries stay local — workers
		// observe with their own (-observe) and the coordinator merges them.
		if *coordF == "" {
			for i := range jobs {
				jobs[i].Obs = &repro.ObsConfig{Registry: repro.NewObsRegistry()}
			}
		}
		addr, err := tel.Start(*listenF)
		die(err)
		defer tel.Stop()
		logger.Info("telemetry serving", "url", "http://"+addr+"/metrics")
	}
	if *cacheDir != "" {
		cache, err := repro.NewResultCacheFS(fsys, *cacheDir)
		die(err)
		runner.Cache = cache
	}

	// Graceful shutdown: first SIGINT/SIGTERM cancels the sweep (in-flight
	// simulations checkpoint and drain, exit 130); a second hard-exits.
	sd := repro.NewShutdown(nil)
	defer sd.Stop()

	journalPath := *journalF
	if *resumeF != "" {
		journalPath = *resumeF
		st, err := repro.LoadCampaign(*resumeF)
		die(err)
		runner.Resume = st.Checkpoints
		if *cacheDir == "" {
			logger.Warn("-resume without -cache re-runs completed jobs")
		}
	}
	if journalPath != "" {
		j, err := repro.OpenJournalFS(fsys, journalPath)
		die(err)
		defer j.Close()
		runner.Journal = j
		if *resumeF == "" {
			j.Append(repro.JournalRecord{T: repro.RecCampaign, Name: "tlssweep"})
		}
		if *ckptDir == "" {
			*ckptDir = journalPath + ".ckpt"
		}
	}
	runner.CheckpointDir = *ckptDir
	runner.CheckpointEvery = *ckptN

	var results []repro.JobResult
	var err error
	if *coordF != "" {
		// The fleet path: jobs travel to the coordinator by content key;
		// caching, journaling and checkpointing happen coordinator- and
		// worker-side. Results are identical to the local runner's.
		client := &cluster.Client{URL: *coordF, Name: cluster.ClientName("tlssweep"),
			Progress:   runner.Progress,
			RPCTimeout: *rpcT, DialTimeout: *dialT,
			Logf: obs.Logf(logger.With("subsys", "fleet"))}
		results, err = client.RunBatch(sd.Context(), jobs)
	} else {
		results, err = runner.RunBatch(sd.Context(), jobs)
	}
	if sd.Interrupted() {
		if journalPath != "" {
			logger.Info("interrupted", "resume_with", journalPath)
		} else {
			logger.Info("interrupted (run with -journal to make sweeps resumable)")
		}
		os.Exit(repro.ExitInterrupted)
	}
	die(err)

	w := csv.NewWriter(os.Stdout)
	die(w.Write([]string{
		"param", "value", "scheme", "exec_cycles", "speedup", "busy_frac",
		"squash_events", "tasks_squashed", "overflow_spills", "commit_exec_pct",
	}))

	i := 0
	for _, pt := range points {
		seqRes := results[i]
		i++
		die(seqRes.Err)
		seq := seqRes.Result.ExecCycles
		for _, sch := range schemes {
			jr := results[i]
			i++
			die(jr.Err)
			r := jr.Result
			die(w.Write([]string{
				*param,
				strconv.FormatFloat(pt.value, 'g', 6, 64),
				sch.String(),
				strconv.FormatUint(uint64(r.ExecCycles), 10),
				strconv.FormatFloat(r.Speedup(seq), 'f', 3, 64),
				strconv.FormatFloat(r.Agg.BusyFraction(), 'f', 4, 64),
				strconv.Itoa(r.SquashEvents),
				strconv.Itoa(r.TasksSquashed),
				strconv.FormatUint(r.OverflowSpills, 10),
				strconv.FormatFloat(r.CommitExecRatio(), 'f', 2, 64),
			}))
		}
	}
	w.Flush()
	die(w.Error())
}
