// tlssim runs a single thread-level-speculation simulation: one
// application, one machine, one buffering scheme, and prints the full
// result, including the time breakdown and mechanism activity.
//
// Usage:
//
//	tlssim -app Bdna -machine numa -scheme "MultiT&MV Lazy AMM" [-seed 1]
//	       [-full] [-tasks 0.5 -instr 0.25 -foot 0.25] [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/profiling"
)

func main() {
	var (
		appName  = flag.String("app", "Bdna", "application: P3m, Tree, Bdna, Apsi, Track, Dsmc3d, Euler")
		machName = flag.String("machine", "numa", "machine: numa, cmp, numa-bigl2")
		schName  = flag.String("scheme", "MultiT&MV Lazy AMM", "buffering scheme (see -list)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		full     = flag.Bool("full", false, "run the full-size application (no scaling)")
		tasks    = flag.Float64("tasks", 0.5, "task-count scale factor")
		instr    = flag.Float64("instr", 0.25, "instruction scale factor")
		foot     = flag.Float64("foot", 0.25, "footprint scale factor")
		par      = flag.Int("parallel", 1, "worker goroutines for the parallel simulation core (1 = serial loop; results are identical)")
		list     = flag.Bool("list", false, "list schemes and applications, then exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlssim: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		fmt.Println("schemes:")
		for _, s := range repro.ExtendedSchemes() {
			fmt.Printf("  %s\n", s)
		}
		fmt.Println("applications:")
		for _, p := range repro.Apps() {
			fmt.Printf("  %s\n", p.Name)
		}
		return
	}

	prof, ok := repro.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tlssim: unknown application %q\n", *appName)
		os.Exit(2)
	}
	if !*full {
		prof = prof.Scale(*tasks, *instr, *foot)
	}

	var mach *repro.Machine
	switch strings.ToLower(*machName) {
	case "numa":
		mach = repro.NUMA16()
	case "cmp":
		mach = repro.CMP8()
	case "numa-bigl2":
		mach = repro.NUMA16BigL2()
	default:
		fmt.Fprintf(os.Stderr, "tlssim: unknown machine %q\n", *machName)
		os.Exit(2)
	}

	scheme, found := repro.SchemeFromString(*schName)
	if !found {
		fmt.Fprintf(os.Stderr, "tlssim: unknown scheme %q (try -list)\n", *schName)
		os.Exit(2)
	}

	seq := repro.RunSequential(mach, prof, *seed)
	var r repro.Result
	if *par > 1 {
		r = repro.RunParallel(mach, scheme, prof, *seed, *par)
	} else {
		r = repro.Run(mach, scheme, prof, *seed)
	}

	fmt.Printf("%s on %s under %s (seed %d)\n\n", prof.Name, mach.Name, scheme, *seed)
	if *par > 1 {
		fmt.Printf("  parallel core          %d workers (results identical to serial)\n", *par)
	}
	fmt.Printf("  tasks                  %d (%d squash events, %d task executions squashed)\n",
		r.Tasks, r.SquashEvents, r.TasksSquashed)
	fmt.Printf("  execution              %d cycles (sequential %d; speedup %.2fx)\n",
		r.ExecCycles, seq.ExecCycles, r.Speedup(seq.ExecCycles))
	tot := float64(r.Agg.Total())
	fmt.Printf("  time breakdown         busy %.1f%%  mem %.1f%%  task/version %.1f%%  commit %.1f%%  recovery %.1f%%  idle %.1f%%\n",
		100*float64(r.Agg.Busy)/tot, 100*float64(r.Agg.StallMem)/tot,
		100*float64(r.Agg.StallTask)/tot, 100*float64(r.Agg.StallCommit)/tot,
		100*float64(r.Agg.StallRecovery)/tot, 100*float64(r.Agg.StallIdle)/tot)
	fmt.Printf("  commit/exec ratio      %.2f%%\n", r.CommitExecRatio())
	fmt.Printf("  spec tasks (avg)       %.1f in system, %.2f per processor\n",
		r.AvgSpecTasksSystem, r.AvgSpecTasksPerProc)
	fmt.Printf("  written footprint      %.2f KB/task (%.1f%% privatization)\n",
		r.AvgFootprintBytes/1024, 100*r.AvgPrivFrac)
	fmt.Printf("  overflow area          %d spills, %d retrievals\n", r.OverflowSpills, r.OverflowRetrievals)
	fmt.Printf("  undo log (MHB)         %d appends, %d restored\n", r.MHBAppends, r.MHBRestored)
	fmt.Printf("  version merges         %d VCL/displacement, %d FMM write-backs, %d MTID rejections\n",
		r.VCLMerges, r.FMMWritebacks, r.MemRejected)
	fmt.Printf("  protocol verification  %d cross-task reads checked, %d wrong (must be 0)\n",
		r.OracleChecks, r.OracleViolations)
	fmt.Printf("  contention             %d bank-queue cycles, %d interface-queue cycles\n",
		r.BankQueueCycles, r.IfQueueCycles)

	if r.OracleViolations != 0 {
		fmt.Fprintln(os.Stderr, "tlssim: PROTOCOL VIOLATION DETECTED")
		stopProf()
		os.Exit(1)
	}
}
