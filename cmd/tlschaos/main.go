// tlschaos runs randomized fault-injection campaigns against the buffering
// protocols: every case simulates a fuzzed workload under a seeded fault
// plan (spurious squashes, delayed coherence messages, forced buffer
// overflows, stalled commits) with the runtime invariant checker armed, and
// verifies the protocol absorbed the faults — all tasks committed, zero
// invariant violations, and a final memory image identical to sequential
// execution.
//
// Every case is a pure function of (machine, scheme, campaign seed, fault
// selection), so a failure is perfectly reproducible:
//
//	tlschaos -seeds 50                  # campaign: seeds 1..50 × schemes
//	tlschaos -replay 17                 # re-run seed 17 verbosely
//	tlschaos -replay failures.json      # re-run every recorded failing case
//	tlschaos -faults flip-tag -seeds 10 # corruption drill: flips MUST be
//	                                    # detected by the checker
//
// Failing cases are recorded as JSON (-record) with the exact seed, scheme
// and fault mix, so a later `tlschaos -replay <seed>` (or `-replay
// <record-file>`) reproduces the run — same injected faults, same invariant
// report, same cycle count.
//
// Long campaigns are crash-safe: with -journal every case is logged to an
// fsync'd JSONL WAL and in-flight simulations checkpoint on SIGINT/SIGTERM
// (exit 130); `tlschaos -resume <journal>` skips completed cases and
// restarts interrupted ones from their latest checkpoint.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaosnet"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/iofault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosDone / chaosFailed are live campaign counts for the -listen
// telemetry gauges; runAll's workers bump them as verdicts land.
var chaosDone, chaosFailed atomic.Int64

// chaosCase is one (seed, scheme) cell of the campaign grid.
type chaosCase struct {
	Seed   uint64
	Scheme core.Scheme
}

// outcome is the verdict of one executed case.
type outcome struct {
	Case chaosCase

	Cycles     uint64
	Faults     string // plan.Summary()
	FaultCount int

	Violations  int
	WrongLines  int
	Uncommitted int
	TimedOut    bool
	PanicMsg    string

	// Interrupted marks a case halted mid-run by a graceful shutdown; it
	// carries no verdict and is never journaled (its checkpoint is).
	Interrupted bool

	Samples []string // first few invariant violations, for the report
}

// failed reports whether the case breaks the campaign's promise. When flips
// are armed the run corrupts state on purpose, so only crashes and hangs
// count; detection is tallied separately.
func (o outcome) failed(flips bool) bool {
	if o.TimedOut || o.PanicMsg != "" {
		return true
	}
	if flips {
		return false
	}
	return o.Violations > 0 || o.WrongLines > 0 || o.Uncommitted > 0
}

// detected reports whether the checker (or final verification) caught the
// run misbehaving — the success criterion of a flip-tag drill.
func (o outcome) detected() bool { return o.Violations > 0 || o.WrongLines > 0 }

// record is the JSON entry written for a failing case; its fields are the
// exact -replay inputs plus the observed verdict.
type record struct {
	Seed        uint64
	Machine     string
	Scheme      string
	Faults      string // the -faults selection
	FaultConfig string
	Injected    string
	Cycles      uint64
	Violations  int
	WrongLines  int
	Uncommitted int
	TimedOut    bool
	Panic       string `json:",omitempty"`
	Samples     []string
	Replay      string
}

// campaign bundles the crash-safety machinery threaded through the workers:
// the cancellation context, the WAL, the checkpoint directory, and the
// journal-recovered state of a resumed run.
type campaign struct {
	ctx     context.Context
	journal *exp.Journal
	ckptDir string
	ckptN   int
	faults  string             // the -faults selection, part of the case key
	resume  map[string]string  // case key -> latest checkpoint file
	done    map[string]outcome // case key -> journaled outcome
}

// key is the case's stable content hash: the join key between journal
// records and checkpoint files across processes.
func (cc *campaign) key(c chaosCase, mach string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("tlschaos|%s|%s|%d|%s", mach, c.Scheme, c.Seed, cc.faults)))
	return hex.EncodeToString(sum[:])
}

func caseLabel(c chaosCase) string { return fmt.Sprintf("seed %d %s", c.Seed, c.Scheme) }

func main() {
	var (
		seeds    = flag.Uint64("seeds", 50, "campaign seeds (1..N), each crossed with every scheme")
		replayF  = flag.String("replay", "", "re-run one campaign seed verbosely, or every case of a -record file (\"\" = full campaign)")
		schemesF = flag.String("schemes", "MultiT&MV Eager AMM;MultiT&MV Lazy AMM;MultiT&MV FMM",
			"semicolon-separated schemes under test")
		machineF = flag.String("machine", "numa16", "machine model: numa16 or cmp8")
		faultsF  = flag.String("faults", "recoverable",
			"comma-separated fault classes: recoverable, spurious-squash, delay-message, force-overflow, stall-commit, flip-tag")
		timeout  = flag.Duration("case-timeout", 20*time.Second, "per-case watchdog deadline")
		jobs     = flag.Int("jobs", 0, "parallel cases (0 = GOMAXPROCS)")
		recordF  = flag.String("record", "tlschaos-failures.json", "write failing cases as JSON here (\"\" disables)")
		journalF = flag.String("journal", "", "append campaign progress to this JSONL journal (crash recovery via -resume)")
		resumeF  = flag.String("resume", "", "resume a crashed or interrupted campaign from its journal (implies -journal)")
		ckptDirF = flag.String("checkpoint-dir", "", "mid-run simulator checkpoint directory (default <journal>.ckpt)")
		ckptN    = flag.Int("checkpoint-every", 50, "auto-checkpoint cadence in committed tasks (0 = only at interrupts)")
		listenF  = flag.String("listen", "", "serve live telemetry on this address (/metrics Prometheus text, /progress JSON)")
		coordF   = flag.String("coordinator", "", "run the campaign on a distributed fleet via this tlsserve URL (journal/checkpoint flags then apply coordinator/worker-side)")
		rpcT     = flag.Duration("rpc-timeout", 30*time.Second, "total per-RPC deadline against the coordinator")
		dialT    = flag.Duration("dial-timeout", 5*time.Second, "connection-attempt deadline against the coordinator")
		chaosNet = flag.String("chaos-net", "", "inject seeded network chaos on the fleet client transport (hostile, campaign, byzantine), composing wire faults with the protocol faults under test")
		chaosSd  = flag.Uint64("chaos-seed", 1, "seed for the -chaos-net fault plan")
	)
	flag.Parse()

	// -replay takes either a campaign seed or a -record file to re-run.
	var replaySeed uint64
	if *replayF != "" {
		if n, err := strconv.ParseUint(*replayF, 10, 64); err == nil && n > 0 {
			replaySeed = n
		} else {
			os.Exit(replayRecords(*replayF, *timeout))
		}
	}

	cfg, ok := machineByName(*machineF)
	if !ok {
		fatalf("unknown machine %q (numa16 or cmp8)", *machineF)
	}
	var schemes []core.Scheme
	for _, name := range strings.Split(*schemesF, ";") {
		s, ok := core.SchemeFromString(strings.TrimSpace(name))
		if !ok {
			fatalf("unknown scheme %q", name)
		}
		schemes = append(schemes, s)
	}
	selection, flips, err := parseFaults(*faultsF)
	if err != nil {
		fatalf("%v", err)
	}

	var cases []chaosCase
	lo, hi := uint64(1), *seeds
	if replaySeed != 0 {
		lo, hi = replaySeed, replaySeed
	}
	for seed := lo; seed <= hi; seed++ {
		for _, sch := range schemes {
			cases = append(cases, chaosCase{Seed: seed, Scheme: sch})
		}
	}

	// Graceful shutdown: first SIGINT/SIGTERM interrupts every in-flight
	// case (each checkpoints at its next commit and unwinds, exit 130); a
	// second signal hard-exits.
	sd := exp.NewShutdown(nil)
	defer sd.Stop()

	if *listenF != "" {
		// tlschaos runs its own pool (no exp.Runner), so the endpoint is
		// fed by gauges over the campaign counters.
		tel := &exp.Telemetry{Name: "tlschaos"}
		tel.AddGauge("chaos_cases_total", func() float64 { return float64(len(cases)) })
		tel.AddGauge("chaos_cases_done", func() float64 { return float64(chaosDone.Load()) })
		tel.AddGauge("chaos_cases_failed", func() float64 { return float64(chaosFailed.Load()) })
		addr, err := tel.Start(*listenF)
		if err != nil {
			fatalf("listen: %v", err)
		}
		defer tel.Stop()
		chaosLog.Info("telemetry serving", "url", "http://"+addr+"/metrics")
	}

	journalPath := *journalF
	if *resumeF != "" {
		journalPath = *resumeF
	}
	if *coordF != "" && journalPath != "" {
		fmt.Fprintln(os.Stderr, "tlschaos: -coordinator set; journaling is coordinator-side, ignoring -journal/-resume")
		journalPath = ""
	}
	var cmp *campaign
	if journalPath != "" {
		cmp = &campaign{
			ctx: sd.Context(), ckptN: *ckptN, faults: *faultsF,
			resume: make(map[string]string), done: make(map[string]outcome),
		}
		if *resumeF != "" {
			recs, err := exp.ReadJournal(*resumeF)
			if err != nil {
				fatalf("resume: %v", err)
			}
			for _, rec := range recs {
				switch rec.T {
				case exp.RecCheckpoint:
					if rec.Key != "" && rec.Ckpt != "" {
						cmp.resume[rec.Key] = rec.Ckpt
					}
				case exp.RecJobDone:
					if rec.Key == "" {
						break
					}
					delete(cmp.resume, rec.Key)
					var o outcome
					if len(rec.Data) > 0 && json.Unmarshal(rec.Data, &o) == nil {
						cmp.done[rec.Key] = o
					}
				}
			}
		}
		j, err := exp.OpenJournal(journalPath)
		if err != nil {
			fatalf("journal: %v", err)
		}
		defer j.Close()
		cmp.journal = j
		if *resumeF == "" {
			j.Append(exp.JournalRecord{T: exp.RecCampaign, Name: "tlschaos"})
		}
		cmp.ckptDir = *ckptDirF
		if cmp.ckptDir == "" {
			cmp.ckptDir = journalPath + ".ckpt"
		}
		if err := os.MkdirAll(cmp.ckptDir, 0o755); err != nil {
			fatalf("checkpoint dir: %v", err)
		}
	}

	var outcomes []outcome
	if *coordF != "" {
		hc := cluster.HTTPClient(*dialT, *rpcT)
		if *chaosNet != "" {
			ccfg, err := chaosnet.Profile(*chaosNet, *chaosSd)
			if err != nil {
				fatalf("-chaos-net: %v", err)
			}
			chaosLog.Info("chaos-net armed on the client transport", "profile", ccfg)
			hc = chaosnet.Client(hc, chaosnet.New(ccfg), "tlschaos",
				obs.Logf(chaosLog.With("subsys", "chaos-net")))
		}
		outcomes = runFleet(sd.Context(), cases, cfg, selection, flips, *coordF, hc)
	} else {
		if *chaosNet != "" {
			chaosLog.Warn("-chaos-net only applies with -coordinator, ignoring")
		}
		outcomes = runAll(sd.Context(), cmp, cases, cfg, selection, flips, *timeout, *jobs)
	}

	if sd.Interrupted() {
		if journalPath != "" {
			chaosLog.Info("interrupted", "resume_with", journalPath)
		} else {
			chaosLog.Info("interrupted (run with -journal to make campaigns resumable)")
		}
		os.Exit(exp.ExitInterrupted)
	}

	var failures []record
	faults, detections := 0, 0
	for _, o := range outcomes {
		faults += o.FaultCount
		if o.detected() {
			detections++
		}
		if replaySeed != 0 {
			printVerbose(o)
		}
		if o.failed(flips) {
			failures = append(failures, toRecord(o, cfg.Name, *machineF, *faultsF, selection))
			chaosLog.Error("case failed", "seed", o.Case.Seed,
				"scheme", o.Case.Scheme.String(), "verdict", verdict(o))
		}
	}

	fmt.Printf("tlschaos: %d cases (%d seeds x %d schemes) on %s, faults=%s\n",
		len(cases), int(hi-lo+1), len(schemes), cfg.Name, *faultsF)
	fmt.Printf("  injected %d faults, %d failing cases", faults, len(failures))
	if flips {
		fmt.Printf(", %d corruption(s) detected by the checker", detections)
	}
	fmt.Println()

	if flips && detections == 0 && faults > 0 {
		// A corruption drill that injects flips nobody notices means the
		// checker is broken — that IS the failure.
		chaosLog.Error("flip-tag campaign injected faults but detected no corruption")
		os.Exit(1)
	}
	if len(failures) > 0 {
		if *recordF != "" {
			if err := writeRecords(*recordF, failures); err != nil {
				chaosLog.Error("recording failures", "err", err)
			} else {
				chaosLog.Info("recorded failing cases", "n", len(failures), "path", *recordF)
			}
		}
		os.Exit(1)
	}
}

// planFor derives the case's fault config: the seed's randomized campaign
// mix, masked down to the selected classes. Flip-tag, when selected, runs at
// a fixed low rate with a small budget — enough corruption to exercise the
// checker without destroying every run.
func planFor(seed uint64, selection map[fault.Kind]bool) fault.Config {
	c := fault.CampaignConfig(seed)
	if !selection[fault.SpuriousSquash] {
		c.SquashProb = 0
	}
	if !selection[fault.DelayMessage] {
		c.DelayProb = 0
	}
	if !selection[fault.ForceOverflow] {
		c.OverflowProb = 0
	}
	if !selection[fault.StallCommit] {
		c.StallProb = 0
	}
	if selection[fault.FlipTag] {
		c.FlipProb = 0.01
		c.MaxFaults = 16
	}
	return c
}

// buildCase constructs the case's simulator (fuzzed workload, invariant
// checker armed, fault plan installed). Construction is repeatable, which is
// what lets a resumed case rebuild and Restore.
func buildCase(c chaosCase, cfg *machine.Config, selection map[fault.Kind]bool) (*sim.Simulator, *fault.Plan) {
	prof := workload.FuzzProfile(rng.New(c.Seed ^ 0xc4a05bedb1a5e5))
	gen := workload.NewGenerator(prof, c.Seed)
	s := sim.New(cfg, c.Scheme, gen)
	s.EnableInvariantChecks()
	plan := fault.NewPlan(planFor(c.Seed, selection))
	s.InjectFaults(plan)
	return s, plan
}

// runCase executes one case under the watchdog. The simulation goroutine is
// abandoned on timeout (a deterministic hang cannot be preempted). When a
// campaign is active the case restores from its latest checkpoint, writes
// new checkpoints as it commits, and halts (checkpointing first) when the
// shutdown context dies.
func runCase(ctx context.Context, cmp *campaign, key string, c chaosCase,
	cfg *machine.Config, selection map[fault.Kind]bool, deadline time.Duration) outcome {
	o := outcome{Case: c}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{Case: c, PanicMsg: fmt.Sprint(p)}
			}
		}()
		// The workload is fuzzed per seed — same stream the chaos test
		// suite draws from — so the campaign covers the whole profile
		// space, not just the paper's applications.
		s, plan := buildCase(c, cfg, selection)
		if cmp != nil {
			if path, ok := cmp.resume[key]; ok {
				restored := false
				if ck, err := sim.ReadCheckpointFile(path); err == nil {
					restored = s.Restore(ck) == nil
				}
				if !restored {
					// Unreadable or mismatched checkpoint: start over
					// (resume is best-effort, never an error source).
					s, plan = buildCase(c, cfg, selection)
				}
			}
			if cmp.ckptDir != "" {
				ckPath := filepath.Join(cmp.ckptDir, key+".ckpt")
				if cmp.ckptN > 0 {
					s.SetAutoCheckpoint(cmp.ckptN)
				}
				s.SetCheckpointSink(func(ck *sim.Checkpoint) {
					if err := sim.WriteCheckpointFile(ckPath, ck); err == nil && cmp.journal != nil {
						cmp.journal.Append(exp.JournalRecord{
							T: exp.RecCheckpoint, Key: key, Label: caseLabel(c),
							Ckpt: ckPath, Commits: ck.Commits,
						})
					}
				})
			}
		}
		// Drain at the next commit boundary when the shutdown context dies.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				s.Interrupt()
			case <-stop:
			}
		}()

		res := s.Run()
		if s.Halted() {
			done <- outcome{Case: c, Interrupted: true}
			return
		}

		r := outcome{Case: c,
			Cycles: uint64(res.ExecCycles), Faults: plan.Summary(), FaultCount: plan.Total(),
			Violations: s.InvariantViolationCount(), Uncommitted: res.Tasks - res.Commits,
		}
		_, r.WrongLines = s.VerifyFinalMemory()
		for i, v := range s.InvariantViolations() {
			if i == 5 {
				break
			}
			r.Samples = append(r.Samples, v.String())
		}
		done <- r
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-done:
		return r
	case <-timer.C:
		o.TimedOut = true
		return o
	}
}

// runAll fans the cases over a worker pool; outcomes return in case order.
// With a campaign active, journaled cases are skipped (their outcome is
// replayed from the WAL) and finished cases are journaled as job-done with
// the outcome embedded.
func runAll(ctx context.Context, cmp *campaign, cases []chaosCase, cfg *machine.Config,
	selection map[fault.Kind]bool, flips bool, deadline time.Duration, workers int) []outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	out := make([]outcome, len(cases))
	idx := make(chan int)
	var wg sync.WaitGroup
	// note feeds the -listen telemetry gauges as verdicts land.
	note := func(o outcome) outcome {
		if !o.Interrupted {
			chaosDone.Add(1)
			if o.failed(flips) {
				chaosFailed.Add(1)
			}
		}
		return o
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cases[i]
				if cmp == nil {
					out[i] = note(runCase(ctx, nil, "", c, cfg, selection, deadline))
					continue
				}
				key := cmp.key(c, cfg.Name)
				if prev, done := cmp.done[key]; done {
					out[i] = note(prev)
					continue
				}
				if ctx.Err() != nil {
					out[i] = outcome{Case: c, Interrupted: true}
					continue
				}
				cmp.journal.Append(exp.JournalRecord{T: exp.RecJobStart, Key: key, Label: caseLabel(c)})
				o := runCase(ctx, cmp, key, c, cfg, selection, deadline)
				if !o.Interrupted {
					// Journal the verdict (the case never re-runs on resume)
					// and drop the now-obsolete checkpoint.
					data, _ := json.Marshal(o)
					cmp.journal.Append(exp.JournalRecord{
						T: exp.RecJobDone, Key: key, Label: caseLabel(c), Data: data,
					})
					os.Remove(filepath.Join(cmp.ckptDir, key+".ckpt"))
				}
				out[i] = note(o)
			}
		}()
	}
feed:
	for i := range cases {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark everything unfed as interrupted and stop feeding.
			for j := i; j < len(cases); j++ {
				out[j] = outcome{Case: cases[j], Interrupted: true}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out
}

// caseJob maps one chaos case onto the canonical job form the fleet
// executes: same fuzzed profile, same fault config, invariant checker
// armed. Workers run it through exp.Job.build, which reproduces buildCase
// exactly, so a fleet campaign's verdicts match a local one's.
func caseJob(c chaosCase, cfg *machine.Config, selection map[fault.Kind]bool) exp.Job {
	fc := planFor(c.Seed, selection)
	return exp.Job{
		Machine:    cfg,
		Scheme:     c.Scheme,
		Profile:    workload.FuzzProfile(rng.New(c.Seed ^ 0xc4a05bedb1a5e5)),
		Seed:       c.Seed,
		Faults:     &fc,
		Invariants: true,
	}
}

// outcomeFrom folds a fleet job result back into the campaign's verdict
// shape.
func outcomeFrom(c chaosCase, jr exp.JobResult, interrupted bool) outcome {
	o := outcome{Case: c}
	if jr.Err != nil {
		switch {
		case interrupted:
			o.Interrupted = true
		case jr.TimedOut:
			o.TimedOut = true
		default:
			o.PanicMsg = jr.Err.Error()
		}
		return o
	}
	o.Cycles = uint64(jr.Result.ExecCycles)
	o.Uncommitted = jr.Result.Tasks - jr.Result.Commits
	if v := jr.Chaos; v != nil {
		o.Faults = v.FaultMix
		o.FaultCount = v.Faults
		o.Violations = v.Violations
		o.WrongLines = v.WrongLines
		o.Samples = v.Samples
	}
	return o
}

// runFleet executes the campaign on a distributed fleet through a tlsserve
// coordinator. Chaotic jobs bypass the result cache (their verdict is not
// reconstructible from a cached sim.Result); the coordinator persists their
// sealed outcomes in its journal instead, so fleet campaigns are exactly as
// crash-resumable as local journaled ones.
func runFleet(ctx context.Context, cases []chaosCase, cfg *machine.Config,
	selection map[fault.Kind]bool, flips bool, url string, hc *http.Client) []outcome {
	jobs := make([]exp.Job, len(cases))
	for i, c := range cases {
		jobs[i] = caseJob(c, cfg, selection)
	}
	client := &cluster.Client{URL: url, Name: cluster.ClientName("tlschaos"), HTTP: hc,
		Progress: func(jr exp.JobResult) {
			chaosDone.Add(1)
		},
		Logf: obs.Logf(chaosLog.With("subsys", "fleet"))}
	results, err := client.RunBatch(ctx, jobs)
	interrupted := err != nil && ctx.Err() != nil
	out := make([]outcome, len(cases))
	for i := range cases {
		out[i] = outcomeFrom(cases[i], results[i], interrupted)
		if !out[i].Interrupted && out[i].failed(flips) {
			chaosFailed.Add(1)
		}
	}
	return out
}

// replayRecords re-runs every case of a -record file with its exact seed,
// scheme, machine and fault mix, and verifies the failure reproduces. The
// exit code follows the campaign convention (0 all clean, 1 failures, 2 bad
// input).
func replayRecords(path string, deadline time.Duration) int {
	records, err := readRecords(path)
	if err != nil {
		chaosLog.Error("reading records", "err", err)
		return 2
	}
	failing := 0
	for _, rec := range records {
		cfg, ok := machineByName(rec.Machine)
		if !ok {
			chaosLog.Error("recording: unknown machine", "path", path, "machine", rec.Machine)
			return 2
		}
		sch, ok := core.SchemeFromString(rec.Scheme)
		if !ok {
			chaosLog.Error("recording: unknown scheme", "path", path, "scheme", rec.Scheme)
			return 2
		}
		selection, flips, err := parseFaults(rec.Faults)
		if err != nil {
			chaosLog.Error("recording: bad faults", "path", path, "err", err)
			return 2
		}
		c := chaosCase{Seed: rec.Seed, Scheme: sch}
		o := runCase(context.Background(), nil, "", c, cfg, selection, deadline)
		printVerbose(o)
		if o.failed(flips) {
			failing++
		}
	}
	fmt.Printf("tlschaos: replayed %d recorded case(s) from %s, %d still failing\n",
		len(records), path, failing)
	if failing > 0 {
		return 1
	}
	return 0
}

// readRecords loads a -record file, translating the raw I/O and decode
// failure modes into actionable errors that name the offending path.
func readRecords(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("recording not found: %s (campaigns write it with -record)", path)
	}
	if err != nil {
		return nil, fmt.Errorf("reading recording %s: %v", path, err)
	}
	var rs []record
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("recording %s is truncated or corrupt: %v (re-run the campaign to regenerate it)", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("recording %s contains no cases", path)
	}
	return rs, nil
}

// parseFaults resolves the -faults selection; "recoverable" expands to every
// class except flip-tag (which must be named explicitly: it injects
// corruption the protocol cannot survive, only detect).
func parseFaults(spec string) (map[fault.Kind]bool, bool, error) {
	sel := make(map[fault.Kind]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if strings.EqualFold(name, "recoverable") {
			sel[fault.SpuriousSquash] = true
			sel[fault.DelayMessage] = true
			sel[fault.ForceOverflow] = true
			sel[fault.StallCommit] = true
			continue
		}
		k, ok := fault.KindFromString(name)
		if !ok {
			return nil, false, fmt.Errorf("unknown fault class %q", name)
		}
		sel[k] = true
	}
	return sel, sel[fault.FlipTag], nil
}

func machineByName(name string) (*machine.Config, bool) {
	switch strings.ToLower(name) {
	case "numa16":
		return machine.NUMA16(), true
	case "cmp8":
		return machine.CMP8(), true
	}
	return nil, false
}

func verdict(o outcome) string {
	switch {
	case o.TimedOut:
		return "watchdog deadline exceeded"
	case o.PanicMsg != "":
		return "panic: " + o.PanicMsg
	default:
		return fmt.Sprintf("%d invariant violations, %d wrong lines, %d uncommitted tasks (faults: %s)",
			o.Violations, o.WrongLines, o.Uncommitted, o.Faults)
	}
}

// printVerbose renders one case of a -replay run: every field that must
// reproduce identically across re-runs.
func printVerbose(o outcome) {
	fmt.Printf("seed %d %v:\n", o.Case.Seed, o.Case.Scheme)
	if o.TimedOut || o.PanicMsg != "" {
		fmt.Printf("  %s\n", verdict(o))
		return
	}
	fmt.Printf("  cycles %d, faults injected: %s\n", o.Cycles, o.Faults)
	fmt.Printf("  violations %d, wrong lines %d, uncommitted %d\n",
		o.Violations, o.WrongLines, o.Uncommitted)
	for _, s := range o.Samples {
		fmt.Printf("    %s\n", s)
	}
}

func toRecord(o outcome, mach, machFlag, faultsFlag string, selection map[fault.Kind]bool) record {
	return record{
		Seed: o.Case.Seed, Machine: mach, Scheme: o.Case.Scheme.String(),
		Faults: faultsFlag, FaultConfig: planFor(o.Case.Seed, selection).String(),
		Injected: o.Faults, Cycles: o.Cycles,
		Violations: o.Violations, WrongLines: o.WrongLines, Uncommitted: o.Uncommitted,
		TimedOut: o.TimedOut, Panic: o.PanicMsg, Samples: o.Samples,
		Replay: fmt.Sprintf("tlschaos -replay %d -machine %s -faults %s -schemes %q",
			o.Case.Seed, machFlag, faultsFlag, o.Case.Scheme),
	}
}

func writeRecords(path string, rs []record) error {
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	// Atomic publish: a crash mid-write must not leave a torn record file
	// under the final name (the record is the chaos campaign's evidence).
	return iofault.WriteFileAtomic(iofault.Real, path, append(data, '\n'), 0o644)
}

// chaosLog is the process-wide structured logger; tlschaos has no single
// campaign object to hang it on, so it lives at package scope.
var chaosLog = obs.NewLogger(os.Stderr, "tlschaos")

func fatalf(format string, args ...any) {
	chaosLog.Error(fmt.Sprintf(format, args...))
	os.Exit(2)
}
