// tlschaos runs randomized fault-injection campaigns against the buffering
// protocols: every case simulates a fuzzed workload under a seeded fault
// plan (spurious squashes, delayed coherence messages, forced buffer
// overflows, stalled commits) with the runtime invariant checker armed, and
// verifies the protocol absorbed the faults — all tasks committed, zero
// invariant violations, and a final memory image identical to sequential
// execution.
//
// Every case is a pure function of (machine, scheme, campaign seed, fault
// selection), so a failure is perfectly reproducible:
//
//	tlschaos -seeds 50                  # campaign: seeds 1..50 × schemes
//	tlschaos -replay 17                 # re-run seed 17 verbosely
//	tlschaos -faults flip-tag -seeds 10 # corruption drill: flips MUST be
//	                                    # detected by the checker
//
// Failing cases are recorded as JSON (-record) with the exact seed, scheme
// and fault mix, so a later `tlschaos -replay <seed>` reproduces the run —
// same injected faults, same invariant report, same cycle count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosCase is one (seed, scheme) cell of the campaign grid.
type chaosCase struct {
	Seed   uint64
	Scheme core.Scheme
}

// outcome is the verdict of one executed case.
type outcome struct {
	Case chaosCase

	Cycles     uint64
	Faults     string // plan.Summary()
	FaultCount int

	Violations  int
	WrongLines  int
	Uncommitted int
	TimedOut    bool
	PanicMsg    string

	Samples []string // first few invariant violations, for the report
}

// failed reports whether the case breaks the campaign's promise. When flips
// are armed the run corrupts state on purpose, so only crashes and hangs
// count; detection is tallied separately.
func (o outcome) failed(flips bool) bool {
	if o.TimedOut || o.PanicMsg != "" {
		return true
	}
	if flips {
		return false
	}
	return o.Violations > 0 || o.WrongLines > 0 || o.Uncommitted > 0
}

// detected reports whether the checker (or final verification) caught the
// run misbehaving — the success criterion of a flip-tag drill.
func (o outcome) detected() bool { return o.Violations > 0 || o.WrongLines > 0 }

// record is the JSON entry written for a failing case; its fields are the
// exact -replay inputs plus the observed verdict.
type record struct {
	Seed        uint64
	Machine     string
	Scheme      string
	Faults      string // the -faults selection
	FaultConfig string
	Injected    string
	Cycles      uint64
	Violations  int
	WrongLines  int
	Uncommitted int
	TimedOut    bool
	Panic       string `json:",omitempty"`
	Samples     []string
	Replay      string
}

func main() {
	var (
		seeds    = flag.Uint64("seeds", 50, "campaign seeds (1..N), each crossed with every scheme")
		replay   = flag.Uint64("replay", 0, "re-run one campaign seed verbosely (0 = full campaign)")
		schemesF = flag.String("schemes", "MultiT&MV Eager AMM;MultiT&MV Lazy AMM;MultiT&MV FMM",
			"semicolon-separated schemes under test")
		machineF = flag.String("machine", "numa16", "machine model: numa16 or cmp8")
		faultsF  = flag.String("faults", "recoverable",
			"comma-separated fault classes: recoverable, spurious-squash, delay-message, force-overflow, stall-commit, flip-tag")
		timeout = flag.Duration("case-timeout", 20*time.Second, "per-case watchdog deadline")
		jobs    = flag.Int("jobs", 0, "parallel cases (0 = GOMAXPROCS)")
		recordF = flag.String("record", "tlschaos-failures.json", "write failing cases as JSON here (\"\" disables)")
	)
	flag.Parse()

	cfg, ok := machineByName(*machineF)
	if !ok {
		fatalf("unknown machine %q (numa16 or cmp8)", *machineF)
	}
	var schemes []core.Scheme
	for _, name := range strings.Split(*schemesF, ";") {
		s, ok := core.SchemeFromString(strings.TrimSpace(name))
		if !ok {
			fatalf("unknown scheme %q", name)
		}
		schemes = append(schemes, s)
	}
	selection, flips, err := parseFaults(*faultsF)
	if err != nil {
		fatalf("%v", err)
	}

	var cases []chaosCase
	lo, hi := uint64(1), *seeds
	if *replay != 0 {
		lo, hi = *replay, *replay
	}
	for seed := lo; seed <= hi; seed++ {
		for _, sch := range schemes {
			cases = append(cases, chaosCase{Seed: seed, Scheme: sch})
		}
	}

	outcomes := runAll(cases, cfg, selection, flips, *timeout, *jobs)

	var failures []record
	faults, detections := 0, 0
	for _, o := range outcomes {
		faults += o.FaultCount
		if o.detected() {
			detections++
		}
		if *replay != 0 {
			printVerbose(o)
		}
		if o.failed(flips) {
			failures = append(failures, toRecord(o, cfg.Name, *machineF, *faultsF, selection))
			fmt.Fprintf(os.Stderr, "tlschaos: FAIL seed %d %v: %s\n",
				o.Case.Seed, o.Case.Scheme, verdict(o))
		}
	}

	fmt.Printf("tlschaos: %d cases (%d seeds x %d schemes) on %s, faults=%s\n",
		len(cases), int(hi-lo+1), len(schemes), cfg.Name, *faultsF)
	fmt.Printf("  injected %d faults, %d failing cases", faults, len(failures))
	if flips {
		fmt.Printf(", %d corruption(s) detected by the checker", detections)
	}
	fmt.Println()

	if flips && detections == 0 && faults > 0 {
		// A corruption drill that injects flips nobody notices means the
		// checker is broken — that IS the failure.
		fmt.Fprintln(os.Stderr, "tlschaos: flip-tag campaign injected faults but detected no corruption")
		os.Exit(1)
	}
	if len(failures) > 0 {
		if *recordF != "" {
			if err := writeRecords(*recordF, failures); err != nil {
				fmt.Fprintf(os.Stderr, "tlschaos: recording failures: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "tlschaos: wrote %d failing case(s) to %s\n", len(failures), *recordF)
			}
		}
		os.Exit(1)
	}
}

// planFor derives the case's fault config: the seed's randomized campaign
// mix, masked down to the selected classes. Flip-tag, when selected, runs at
// a fixed low rate with a small budget — enough corruption to exercise the
// checker without destroying every run.
func planFor(seed uint64, selection map[fault.Kind]bool) fault.Config {
	c := fault.CampaignConfig(seed)
	if !selection[fault.SpuriousSquash] {
		c.SquashProb = 0
	}
	if !selection[fault.DelayMessage] {
		c.DelayProb = 0
	}
	if !selection[fault.ForceOverflow] {
		c.OverflowProb = 0
	}
	if !selection[fault.StallCommit] {
		c.StallProb = 0
	}
	if selection[fault.FlipTag] {
		c.FlipProb = 0.01
		c.MaxFaults = 16
	}
	return c
}

// runCase executes one case under the watchdog. The simulation goroutine is
// abandoned on timeout (a deterministic hang cannot be preempted).
func runCase(c chaosCase, cfg *machine.Config, selection map[fault.Kind]bool, deadline time.Duration) outcome {
	o := outcome{Case: c}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{Case: c, PanicMsg: fmt.Sprint(p)}
			}
		}()
		// The workload is fuzzed per seed — same stream the chaos test
		// suite draws from — so the campaign covers the whole profile
		// space, not just the paper's applications.
		prof := workload.FuzzProfile(rng.New(c.Seed ^ 0xc4a05bedb1a5e5))
		gen := workload.NewGenerator(prof, c.Seed)
		s := sim.New(cfg, c.Scheme, gen)
		s.EnableInvariantChecks()
		plan := fault.NewPlan(planFor(c.Seed, selection))
		s.InjectFaults(plan)
		res := s.Run()

		r := outcome{Case: c,
			Cycles: uint64(res.ExecCycles), Faults: plan.Summary(), FaultCount: plan.Total(),
			Violations: s.InvariantViolationCount(), Uncommitted: res.Tasks - res.Commits,
		}
		_, r.WrongLines = s.VerifyFinalMemory()
		for i, v := range s.InvariantViolations() {
			if i == 5 {
				break
			}
			r.Samples = append(r.Samples, v.String())
		}
		done <- r
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-done:
		return r
	case <-timer.C:
		o.TimedOut = true
		return o
	}
}

// runAll fans the cases over a worker pool; outcomes return in case order.
func runAll(cases []chaosCase, cfg *machine.Config, selection map[fault.Kind]bool,
	flips bool, deadline time.Duration, workers int) []outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	out := make([]outcome, len(cases))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = runCase(cases[i], cfg, selection, deadline)
			}
		}()
	}
	for i := range cases {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// parseFaults resolves the -faults selection; "recoverable" expands to every
// class except flip-tag (which must be named explicitly: it injects
// corruption the protocol cannot survive, only detect).
func parseFaults(spec string) (map[fault.Kind]bool, bool, error) {
	sel := make(map[fault.Kind]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if strings.EqualFold(name, "recoverable") {
			sel[fault.SpuriousSquash] = true
			sel[fault.DelayMessage] = true
			sel[fault.ForceOverflow] = true
			sel[fault.StallCommit] = true
			continue
		}
		k, ok := fault.KindFromString(name)
		if !ok {
			return nil, false, fmt.Errorf("unknown fault class %q", name)
		}
		sel[k] = true
	}
	return sel, sel[fault.FlipTag], nil
}

func machineByName(name string) (*machine.Config, bool) {
	switch strings.ToLower(name) {
	case "numa16":
		return machine.NUMA16(), true
	case "cmp8":
		return machine.CMP8(), true
	}
	return nil, false
}

func verdict(o outcome) string {
	switch {
	case o.TimedOut:
		return "watchdog deadline exceeded"
	case o.PanicMsg != "":
		return "panic: " + o.PanicMsg
	default:
		return fmt.Sprintf("%d invariant violations, %d wrong lines, %d uncommitted tasks (faults: %s)",
			o.Violations, o.WrongLines, o.Uncommitted, o.Faults)
	}
}

// printVerbose renders one case of a -replay run: every field that must
// reproduce identically across re-runs.
func printVerbose(o outcome) {
	fmt.Printf("seed %d %v:\n", o.Case.Seed, o.Case.Scheme)
	if o.TimedOut || o.PanicMsg != "" {
		fmt.Printf("  %s\n", verdict(o))
		return
	}
	fmt.Printf("  cycles %d, faults injected: %s\n", o.Cycles, o.Faults)
	fmt.Printf("  violations %d, wrong lines %d, uncommitted %d\n",
		o.Violations, o.WrongLines, o.Uncommitted)
	for _, s := range o.Samples {
		fmt.Printf("    %s\n", s)
	}
}

func toRecord(o outcome, mach, machFlag, faultsFlag string, selection map[fault.Kind]bool) record {
	return record{
		Seed: o.Case.Seed, Machine: mach, Scheme: o.Case.Scheme.String(),
		Faults: faultsFlag, FaultConfig: planFor(o.Case.Seed, selection).String(),
		Injected: o.Faults, Cycles: o.Cycles,
		Violations: o.Violations, WrongLines: o.WrongLines, Uncommitted: o.Uncommitted,
		TimedOut: o.TimedOut, Panic: o.PanicMsg, Samples: o.Samples,
		Replay: fmt.Sprintf("tlschaos -replay %d -machine %s -faults %s -schemes %q",
			o.Case.Seed, machFlag, faultsFlag, o.Case.Scheme),
	}
}

func writeRecords(path string, rs []record) error {
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tlschaos: "+format+"\n", args...)
	os.Exit(2)
}
