// tlsbench is the repeatable performance harness for the simulator itself:
// it runs the hot-path microbenchmarks (event queue, version directory,
// cache) and one full (app, machine, scheme) simulation through
// testing.Benchmark, prints the measurements, and can write them as a JSON
// baseline or compare them against a checked-in one.
//
// Usage:
//
//	tlsbench                          # run and print
//	tlsbench -out                     # run and write the baseline file
//	tlsbench -compare                 # run and gate against the baseline
//	tlsbench -baseline BENCH_4.json -out   # cut the next baseline
//
// The baseline lives at -baseline (default BENCH_3.json, the checked-in
// document); -out and -compare write and read that path, so cutting a new
// baseline is a flag change, not a code edit.
//
// The comparison enforces only allocs/op (within -band, default ±30%, with
// a small absolute floor so 0-alloc baselines tolerate measurement jitter):
// allocation counts are a property of the code, deterministic across
// machines and CI runners. ns/op and events/sec vary with the host and are
// reported for trend-watching but never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/coherence"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/iofault"
	"repro/internal/memsys"
	"repro/internal/profiling"
	"repro/internal/sim"
)

// Measurement is one benchmark's result in the baseline file.
type Measurement struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the checked-in BENCH_<n>.json document.
type Baseline struct {
	Note       string        `json:"note"`
	Go         string        `json:"go"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// suite lists the benchmarks in a fixed order.
var suite = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"event/schedule-fire", benchEventScheduleFire},
	{"event/cancel-compact", benchEventCancelCompact},
	{"directory/record-write-read", benchDirRecordWriteRead},
	{"directory/version-for", benchDirVersionFor},
	{"cache/probe-hit", benchCacheProbeHit},
	{"cache/insert-evict", benchCacheInsertEvict},
	{"sim/full-run", benchFullRun},
	{"sim/full-run-parallel", benchFullRunParallel},
}

func benchEventScheduleFire(b *testing.B) {
	b.ReportAllocs()
	var q event.Queue
	fn := func(event.Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(q.Now()+event.Time(i%256), fn)
		q.Step()
	}
}

func benchEventCancelCompact(b *testing.B) {
	b.ReportAllocs()
	var q event.Queue
	fn := func(event.Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Cancel(q.At(q.Now()+event.Time(i%256+1), fn))
	}
}

func benchDirRecordWriteRead(b *testing.B) {
	b.ReportAllocs()
	d := coherence.NewDirectory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ids.TaskID(i%64 + 1)
		a := memsys.Addr(i % 4096)
		d.RecordWrite(a, t)
		d.RecordRead(a, t+1)
		if i%64 == 63 {
			for j := ids.TaskID(1); j <= 65; j++ {
				d.Commit(j)
			}
		}
	}
}

func benchDirVersionFor(b *testing.B) {
	b.ReportAllocs()
	d := coherence.NewDirectory()
	for t := ids.TaskID(1); t <= 16; t++ {
		d.RecordWrite(4, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.VersionFor(4, ids.TaskID(9))
	}
}

func benchCacheProbeHit(b *testing.B) {
	b.ReportAllocs()
	c := memsys.NewCache(memsys.Config{Name: "L2", SizeBytes: 512 << 10, Ways: 4})
	c.Insert(100, ids.TaskID(1), memsys.KindOwnVersion)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(100, ids.TaskID(1))
	}
}

func benchCacheInsertEvict(b *testing.B) {
	b.ReportAllocs()
	c := memsys.NewCache(memsys.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(memsys.LineAddr(i), ids.TaskID(i%8+1), memsys.KindOwnVersion)
	}
}

// benchFullRun runs one mid-size (app, machine, scheme) simulation per
// iteration and reports simulated events per op, from which events/sec of
// host time is derived after the run.
func benchFullRun(b *testing.B) {
	b.ReportAllocs()
	prof := repro.Bdna().Scale(0.25, 0.25, 0.25)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		events += r.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// benchFullRunParallel is benchFullRun on the parallel simulation core with
// GOMAXPROCS workers. Results are identical to the serial run by
// construction; the wall-clock ratio against sim/full-run is the parallel
// speedup on this host (meaningful only on multi-core runners — `make
// bench` records it as a CI artifact).
func benchFullRunParallel(b *testing.B) {
	b.ReportAllocs()
	prof := repro.Bdna().Scale(0.25, 0.25, 0.25)
	workers := runtime.GOMAXPROCS(0)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := repro.RunParallel(repro.NUMA16(), repro.MultiTMVLazy, prof, 1, workers)
		events += r.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func measure() []Measurement {
	var out []Measurement
	for _, bm := range suite {
		res := testing.Benchmark(bm.fn)
		m := Measurement{
			Name:        bm.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		}
		if len(res.Extra) > 0 {
			m.Extra = map[string]float64{}
			for k, v := range res.Extra {
				m.Extra[k] = v
			}
			if ev, ok := m.Extra["events/op"]; ok && m.NsPerOp > 0 {
				m.Extra["events_per_sec"] = ev / m.NsPerOp * 1e9
			}
		}
		fmt.Printf("%-28s %14.1f ns/op %10.0f B/op %8.0f allocs/op", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		if eps, ok := m.Extra["events_per_sec"]; ok {
			fmt.Printf("  %.0f events/sec", eps)
		}
		fmt.Println()
		out = append(out, m)
	}
	printParallelSpeedup(out)
	return out
}

// printParallelSpeedup reports the serial-vs-parallel full-run wall-clock
// ratio — the headline number `make bench` records as a CI artifact. Purely
// informational: host-dependent timings never gate.
func printParallelSpeedup(ms []Measurement) {
	var serial, parallel float64
	for _, m := range ms {
		switch m.Name {
		case "sim/full-run":
			serial = m.NsPerOp
		case "sim/full-run-parallel":
			parallel = m.NsPerOp
		}
	}
	if serial > 0 && parallel > 0 {
		fmt.Printf("parallel speedup: %.2fx (full run, serial %.1f ms vs parallel %.1f ms, GOMAXPROCS=%d)\n",
			serial/parallel, serial/1e6, parallel/1e6, runtime.GOMAXPROCS(0))
	}
}

// parallelLaneStats runs the parallel benchmark workload once outside the
// timing harness and returns the PDES diagnostic counters, so a parallel
// slowdown in the numbers above is localizable (stalling windows vs. lane
// imbalance vs. prefetch misses) straight from tlsbench output.
func parallelLaneStats() sim.ParallelStats {
	prof := repro.Bdna().Scale(0.25, 0.25, 0.25)
	s := repro.NewSimulator(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
	s.SetParallel(runtime.GOMAXPROCS(0))
	s.Run()
	return s.ParallelStats()
}

func printLaneStats(st sim.ParallelStats) {
	if st.Windows == 0 {
		return
	}
	minF, maxF := st.LaneFired[0], st.LaneFired[0]
	maxHi := 0
	for i := range st.LaneFired {
		if st.LaneFired[i] < minF {
			minF = st.LaneFired[i]
		}
		if st.LaneFired[i] > maxF {
			maxF = st.LaneFired[i]
		}
		if st.LaneHighWater[i] > maxHi {
			maxHi = st.LaneHighWater[i]
		}
	}
	hitRate := 0.0
	if st.PrefetchHits+st.PrefetchMisses > 0 {
		hitRate = 100 * float64(st.PrefetchHits) / float64(st.PrefetchHits+st.PrefetchMisses)
	}
	fmt.Printf("pdes lanes: %d lanes, window %d cycles, %d windows (%.1f%% stalled ≤1 event)\n",
		len(st.LaneFired), st.WindowWidth, st.Windows,
		100*float64(st.StallWindows)/float64(st.Windows))
	fmt.Printf("pdes lanes: fired min %d / max %d per lane, peak lane occupancy %d, %d compactions\n",
		minF, maxF, maxHi, st.Compactions)
	fmt.Printf("pdes prefetch: %.1f%% hit (%d hit / %d miss), peak queue depth %d\n",
		hitRate, st.PrefetchHits, st.PrefetchMisses, st.PrefetchDepthHighWater)
}

// HistoryRecord is one tlsbench run appended to the -history JSONL trend
// file: everything a later plot needs to chart this host's performance over
// time, including the PDES lane diagnostics of the parallel core.
type HistoryRecord struct {
	Unix       int64             `json:"unix"`
	Go         string            `json:"go"`
	MaxProcs   int               `json:"maxprocs"`
	Benchmarks []Measurement     `json:"benchmarks"`
	PDES       sim.ParallelStats `json:"pdes"`
}

// appendHistory appends rec as one JSONL line through the iofault
// atomic-publish seam: the whole file is republished under a temp name and
// renamed, so a crash mid-append can never leave a torn trend file.
func appendHistory(path string, rec HistoryRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	prev, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	data := append(prev, append(line, '\n')...)
	return iofault.WriteFileAtomic(iofault.Real, path, data, 0o644)
}

// printDelta prints the one-line trend summary against the baseline: the
// geometric-mean ns/op ratio across benchmarks both runs have, and the total
// allocs/op difference. Informational, like all timing output.
func printDelta(basePath string, baseline Baseline, cur []Measurement) {
	byName := map[string]Measurement{}
	for _, m := range baseline.Benchmarks {
		byName[m.Name] = m
	}
	var logSum, allocDelta float64
	n := 0
	for _, m := range cur {
		base, ok := byName[m.Name]
		if !ok {
			continue
		}
		if base.NsPerOp > 0 && m.NsPerOp > 0 {
			logSum += math.Log(m.NsPerOp / base.NsPerOp)
			n++
		}
		allocDelta += m.AllocsPerOp - base.AllocsPerOp
	}
	if n == 0 {
		return
	}
	geo := math.Exp(logSum / float64(n))
	fmt.Printf("delta vs %s: ns/op %+.1f%% (geomean over %d benchmarks), allocs/op %+.1f total\n",
		basePath, 100*(geo-1), n, allocDelta)
}

// compare gates current allocs/op against the baseline. Returns the number
// of violations.
func compare(baseline Baseline, cur []Measurement, band float64) int {
	byName := map[string]Measurement{}
	for _, m := range baseline.Benchmarks {
		byName[m.Name] = m
	}
	bad := 0
	var names []string
	for _, m := range cur {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	curByName := map[string]Measurement{}
	for _, m := range cur {
		curByName[m.Name] = m
	}
	for _, name := range names {
		m := curByName[name]
		base, ok := byName[name]
		if !ok {
			fmt.Printf("compare: %-28s NEW (no baseline entry)\n", name)
			continue
		}
		// Absolute floor of 0.5 allocs lets 0-alloc baselines absorb
		// measurement jitter while still catching a real new allocation.
		tol := band * base.AllocsPerOp
		if tol < 0.5 {
			tol = 0.5
		}
		switch {
		case m.AllocsPerOp > base.AllocsPerOp+tol:
			fmt.Printf("compare: %-28s FAIL allocs/op %.1f exceeds baseline %.1f (+%.0f%% band)\n",
				name, m.AllocsPerOp, base.AllocsPerOp, 100*band)
			bad++
		case m.AllocsPerOp < base.AllocsPerOp-tol:
			fmt.Printf("compare: %-28s improved: allocs/op %.1f below baseline %.1f — consider refreshing the baseline\n",
				name, m.AllocsPerOp, base.AllocsPerOp)
		default:
			fmt.Printf("compare: %-28s ok (allocs/op %.1f vs %.1f)\n", name, m.AllocsPerOp, base.AllocsPerOp)
		}
		if base.NsPerOp > 0 {
			drift := 100 * (m.NsPerOp - base.NsPerOp) / base.NsPerOp
			if drift > 100*band || drift < -100*band {
				fmt.Printf("compare: %-28s note: ns/op drifted %+.0f%% (informational; timing never gates)\n", name, drift)
			}
		}
	}
	return bad
}

func main() {
	var (
		basePath = flag.String("baseline", "BENCH_3.json", "path of the JSON benchmark baseline (-out writes it, -compare reads it)")
		out      = flag.Bool("out", false, "write measurements to the -baseline file")
		against  = flag.Bool("compare", false, "compare against the -baseline file; exit 1 outside the band")
		band     = flag.Float64("band", 0.30, "guard band for the allocs/op comparison")
		note     = flag.String("note", "", "note stored in the baseline file")
		history  = flag.String("history", "", "append this run (timestamped, with PDES lane stats) to this JSONL trend file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	cur := measure()
	lanes := parallelLaneStats()
	printLaneStats(lanes)

	// Trend line: printed whenever the baseline is readable, gating or not.
	if data, err := os.ReadFile(*basePath); err == nil {
		var baseline Baseline
		if json.Unmarshal(data, &baseline) == nil {
			printDelta(*basePath, baseline, cur)
		}
	}

	if *history != "" {
		rec := HistoryRecord{
			Unix:       time.Now().Unix(),
			Go:         runtime.Version(),
			MaxProcs:   runtime.GOMAXPROCS(0),
			Benchmarks: cur,
			PDES:       lanes,
		}
		if err := appendHistory(*history, rec); err != nil {
			fmt.Fprintf(os.Stderr, "tlsbench: history: %v\n", err)
			stopProf()
			os.Exit(1)
		}
		fmt.Printf("history appended to %s\n", *history)
	}

	if *out {
		doc := Baseline{
			Note:       *note,
			Go:         runtime.Version(),
			Benchmarks: cur,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsbench: %v\n", err)
			stopProf()
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := iofault.WriteFileAtomic(iofault.Real, *basePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tlsbench: %v\n", err)
			stopProf()
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *basePath)
	}

	if *against {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsbench: %v\n", err)
			stopProf()
			os.Exit(1)
		}
		var baseline Baseline
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "tlsbench: bad baseline %s: %v\n", *basePath, err)
			stopProf()
			os.Exit(1)
		}
		if bad := compare(baseline, cur, *band); bad > 0 {
			fmt.Fprintf(os.Stderr, "tlsbench: %d benchmark(s) outside the allocation band\n", bad)
			stopProf()
			os.Exit(1)
		}
		fmt.Println("all benchmarks within the allocation band")
	}
}
