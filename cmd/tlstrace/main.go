// tlstrace renders a Gantt-style timeline of one simulation run — the tool
// behind the concept figures (5 and 6): per-processor lanes of task
// execution, commit merges, and squashes — and exports deep-observability
// artifacts: raw trace CSV, per-word squash hotspots, and Chrome/Perfetto
// trace-event JSON for ui.perfetto.dev.
//
// Usage:
//
//	tlstrace -app Euler -machine cmp -scheme "MultiT&MV FMM" -width 120
//	tlstrace -app Euler -perfetto trace.json
//	tlstrace -validate trace.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/iofault"
	"repro/internal/obs"
	"repro/internal/report"
)

// validApps returns the application names tlstrace accepts, sorted, with
// the synthetic concept workload first.
func validApps() []string {
	names := []string{"micro"}
	var apps []string
	for _, p := range repro.Apps() {
		apps = append(apps, p.Name)
	}
	sort.Strings(apps)
	return append(names, apps...)
}

// resolveProfile maps an -app value to a workload profile. An unknown name
// returns an error listing the valid applications.
func resolveProfile(name string, tasks float64) (repro.Profile, error) {
	if name == "micro" {
		return report.MicroWorkload(12), nil
	}
	p, ok := repro.AppByName(name)
	if !ok {
		return repro.Profile{}, fmt.Errorf("unknown application %q (valid: %s)",
			name, strings.Join(validApps(), ", "))
	}
	return p.Scale(tasks, 0.1, 0.25), nil
}

// resolveMachine maps a -machine value to a machine configuration.
func resolveMachine(name string) (*repro.Machine, error) {
	switch strings.ToLower(name) {
	case "numa":
		return repro.NUMA16(), nil
	case "cmp":
		return repro.CMP8(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (valid: numa, cmp)", name)
	}
}

// validateFile checks an existing trace-event JSON file and reports its
// statistics.
func validateFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := report.ValidatePerfetto(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: valid trace-event JSON: %d events (%d processes, %d slices on %d exec lanes, %d counter events on %d tracks, %d flows, %d span IDs)\n",
		path, st.Events, st.Processes, st.Slices, st.ExecLanes, st.CounterEvents, st.CounterTracks, st.FlowStarts, st.SpanIDs)
	return nil
}

func main() {
	var (
		appName  = flag.String("app", "micro", "application, or 'micro' for the concept workload")
		machName = flag.String("machine", "numa", "machine: numa, cmp")
		schName  = flag.String("scheme", "MultiT&MV Eager AMM", "buffering scheme")
		seed     = flag.Uint64("seed", 1, "workload seed")
		width    = flag.Int("width", 120, "timeline width in characters")
		asCSV    = flag.Bool("csv", false, "emit the raw trace events as CSV instead of a chart")
		hotspots = flag.Bool("hotspots", false, "emit the per-word squash hotspot table as CSV instead of a chart")
		perfetto = flag.String("perfetto", "", "write Chrome/Perfetto trace-event JSON to this file ('-' = stdout)")
		validate = flag.String("validate", "", "validate an existing trace-event JSON file and exit")
		tasks    = flag.Float64("tasks", 0.05, "task-count scale for named applications")
	)
	flag.Parse()

	if *validate != "" {
		if err := validateFile(os.Stdout, *validate); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scheme, found := repro.SchemeFromString(*schName)
	if !found {
		fmt.Fprintf(os.Stderr, "tlstrace: unknown scheme %q\n", *schName)
		os.Exit(2)
	}
	prof, err := resolveProfile(*appName, *tasks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
		os.Exit(2)
	}
	mach, err := resolveMachine(*machName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
		os.Exit(2)
	}

	s := repro.NewSimulator(mach, scheme, prof, *seed)
	s.EnableTrace()
	if *perfetto != "" {
		// The Perfetto export includes the obs counter tracks.
		s.Observe(obs.Config{Registry: obs.NewRegistry()})
	}
	r := s.Run()

	switch {
	case *perfetto != "":
		if *perfetto == "-" {
			if err := report.ExportPerfetto(os.Stdout, r, s.Sampled()); err != nil {
				fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
				os.Exit(1)
			}
			break
		}
		// Render in memory and publish atomically (temp, fsync, rename,
		// dir fsync): a crash or full disk mid-export can never leave a
		// truncated trace under the final name.
		var buf bytes.Buffer
		if err := report.ExportPerfetto(&buf, r, s.Sampled()); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
		if err := iofault.WriteFileAtomic(iofault.Real, *perfetto, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: open it at https://ui.perfetto.dev or chrome://tracing\n", *perfetto)
	case *asCSV:
		if err := report.ExportTraceCSV(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
	case *hotspots:
		if err := report.ExportSquashHotspotsCSV(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("%s on %s under %s: %d tasks, %d cycles, %d squash events\n\n",
			prof.Name, mach.Name, scheme, r.Tasks, r.ExecCycles, r.SquashEvents)
		report.Timeline(os.Stdout, r, mach.Procs, *width)
	}
}
