// tlstrace renders a Gantt-style timeline of one simulation run — the tool
// behind the concept figures (5 and 6): per-processor lanes of task
// execution, commit merges, and squashes.
//
// Usage:
//
//	tlstrace -app Euler -machine cmp -scheme "MultiT&MV FMM" -width 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/report"
)

func main() {
	var (
		appName  = flag.String("app", "micro", "application, or 'micro' for the concept workload")
		machName = flag.String("machine", "numa", "machine: numa, cmp")
		schName  = flag.String("scheme", "MultiT&MV Eager AMM", "buffering scheme")
		seed     = flag.Uint64("seed", 1, "workload seed")
		width    = flag.Int("width", 120, "timeline width in characters")
		asCSV    = flag.Bool("csv", false, "emit the raw trace events as CSV instead of a chart")
		tasks    = flag.Float64("tasks", 0.05, "task-count scale for named applications")
	)
	flag.Parse()

	scheme, found := repro.SchemeFromString(*schName)
	if !found {
		fmt.Fprintf(os.Stderr, "tlstrace: unknown scheme %q\n", *schName)
		os.Exit(2)
	}

	var prof repro.Profile
	if *appName == "micro" {
		prof = report.MicroWorkload(12)
	} else {
		p, ok := repro.AppByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "tlstrace: unknown application %q\n", *appName)
			os.Exit(2)
		}
		prof = p.Scale(*tasks, 0.1, 0.25)
	}

	var mach *repro.Machine
	switch strings.ToLower(*machName) {
	case "numa":
		mach = repro.NUMA16()
	case "cmp":
		mach = repro.CMP8()
	default:
		fmt.Fprintf(os.Stderr, "tlstrace: unknown machine %q\n", *machName)
		os.Exit(2)
	}

	s := repro.NewSimulator(mach, scheme, prof, *seed)
	s.EnableTrace()
	r := s.Run()
	if *asCSV {
		if err := report.ExportTraceCSV(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s on %s under %s: %d tasks, %d cycles, %d squash events\n\n",
		prof.Name, mach.Name, scheme, r.Tasks, r.ExecCycles, r.SquashEvents)
	report.Timeline(os.Stdout, r, mach.Procs, *width)
}
