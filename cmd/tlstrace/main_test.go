package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/report"
)

func TestResolveProfileUnknownAppListsValidOnes(t *testing.T) {
	_, err := resolveProfile("bogus", 0.05)
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	msg := err.Error()
	for _, want := range []string{"bogus", "valid:", "micro", "Euler", "P3m"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	if _, err := resolveProfile("micro", 0.05); err != nil {
		t.Errorf("micro rejected: %v", err)
	}
	if p, err := resolveProfile("Euler", 0.05); err != nil || p.Name != "Euler" {
		t.Errorf("Euler: profile %v, err %v", p.Name, err)
	}
}

func TestResolveMachine(t *testing.T) {
	if m, err := resolveMachine("NUMA"); err != nil || m.Procs != 16 {
		t.Errorf("numa: %v, %v", m, err)
	}
	if m, err := resolveMachine("cmp"); err != nil || m.Procs != 8 {
		t.Errorf("cmp: %v, %v", m, err)
	}
	if _, err := resolveMachine("torus"); err == nil {
		t.Error("bogus machine accepted")
	}
}

// TestUnknownAppExitCode re-executes the test binary as tlstrace with a
// bogus -app and asserts the documented contract: exit code 2 and a message
// listing the valid applications.
func TestUnknownAppExitCode(t *testing.T) {
	if os.Getenv("TLSTRACE_RUN_MAIN") == "1" {
		os.Args = []string{"tlstrace", "-app", "no-such-app"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestUnknownAppExitCode")
	cmd.Env = append(os.Environ(), "TLSTRACE_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("expected an exit error, got %v (output %q)", err, out)
	}
	if ee.ExitCode() != 2 {
		t.Fatalf("exit code = %d, want 2 (output %q)", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "valid:") || !strings.Contains(string(out), "micro") {
		t.Fatalf("error output does not list valid applications: %q", out)
	}
}

func TestValidateFileRoundTrip(t *testing.T) {
	prof := report.MicroWorkload(12)
	scheme, _ := repro.SchemeFromString("MultiT&MV Eager AMM")
	s := repro.NewSimulator(repro.CMP8(), scheme, prof, 1)
	s.EnableTrace()
	s.Observe(obs.Config{Registry: obs.NewRegistry(), SamplePeriod: 200})
	r := s.Run()

	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.ExportPerfetto(f, r, s.Sampled()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := validateFile(&sb, path); err != nil {
		t.Fatalf("round-trip validation failed: %v", err)
	}
	if !strings.Contains(sb.String(), "valid trace-event JSON") {
		t.Errorf("unexpected report: %q", sb.String())
	}

	if err := validateFile(&sb, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file validated")
	}
}
