// tlsserve is the distributed-campaign coordinator: it owns the job queue,
// hands time-bounded leases to tlsworker processes, dedupes submissions
// through the persistent result cache, journals every lease and completion
// to the campaign WAL (a SIGKILL'd coordinator resumes mid-campaign with
// -resume), speculatively re-issues stragglers, and serves the merged fleet
// dashboard on /metrics and /progress.
//
// Usage:
//
//	tlsserve -listen :8100 -cache .tlscache -journal fleet.wal
//	tlsserve -resume fleet.wal -cache .tlscache          # after a crash
//	tlsserve -grid NUMA16 -apps Tree,Euler -seed 2        # preload a sweep
//	tlsserve -lease-ttl 30s -straggler 2m -steal-after 30s
//
// Clients (tlsreport/tlssweep/tlschaos with -coordinator, or raw HTTP)
// submit jobs; workers (tlsworker -coordinator URL) pull, execute and
// report. With -exit-when-done the process exits 0 once every submitted job
// has a final outcome — the batch-mode used by scripted campaigns.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/cluster/chaosnet"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8100", "coordinator listen address")
		cacheDir  = flag.String("cache", "", "persistent result-cache directory (dedupes submissions, absorbs fleet results)")
		journalF  = flag.String("journal", "", "append the campaign WAL to this JSONL file (crash recovery via -resume)")
		resumeF   = flag.String("resume", "", "resume a crashed coordinator from its journal (implies -journal)")
		leaseTTL  = flag.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat")
		straggler = flag.Duration("straggler", 2*time.Minute, "re-issue a speculative duplicate of jobs leased this long (0 disables)")
		stealW    = flag.Duration("steal-after", 30*time.Second, "idle workers steal duplicates of leases this old (0 disables)")
		maxIssues = flag.Int("max-issues", 2, "max concurrent leases per job")
		gridF     = flag.String("grid", "", "preload a grid campaign on this machine (NUMA16, NUMA16.L2, CMP8, NUMA<n>)")
		schemesF  = flag.String("schemes", "", "semicolon-separated schemes for -grid (default: the Figure 9 set)")
		appsF     = flag.String("apps", "", "comma-separated application subset for -grid (default: full standard suite)")
		seed      = flag.Uint64("seed", 1, "workload seed for -grid")
		exitDone  = flag.Bool("exit-when-done", false, "exit 0 once every submitted job has a final outcome")
		name      = flag.String("name", "tlsserve", "campaign name (journal header, dashboard)")
		traceF    = flag.String("trace", "", "write the merged fleet Perfetto trace to this file at exit (workers need -trace to contribute lanes)")

		maxPending  = flag.Int("max-pending", 0, "bound the pending queue; excess submissions are shed with 429 + Retry-After (0 = unbounded)")
		submitRate  = flag.Float64("submit-rate", 0, "per-client submit admission: job tokens per second (0 = unlimited)")
		submitBurst = flag.Int("submit-burst", 0, "per-client submit burst size (default 400)")
		quarantine  = flag.Duration("quarantine-for", 30*time.Second, "circuit-breaker base quarantine for flapping/byzantine workers")

		chaosNet  = flag.String("chaos-net", "", "inject seeded accept-side network chaos: hostile, campaign, or byzantine")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the -chaos-net fault plan")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "tlsserve")
	die := func(context string, err error) {
		if err != nil {
			logger.Error(context, "err", err)
			os.Exit(1)
		}
	}

	cfg := cluster.Config{
		Name:           *name,
		LeaseTTL:       *leaseTTL,
		StragglerAfter: durOff(*straggler),
		StealAfter:     durOff(*stealW),
		MaxIssues:      *maxIssues,
		MaxPending:     *maxPending,
		SubmitRate:     *submitRate,
		SubmitBurst:    *submitBurst,
		QuarantineFor:  *quarantine,
	}
	if *cacheDir != "" {
		cache, err := exp.NewCache(*cacheDir)
		die("cache", err)
		cfg.Cache = cache
	}
	if *traceF != "" {
		cfg.Tracer = trace.New("coordinator")
	}

	journalPath := *journalF
	if *resumeF != "" {
		journalPath = *resumeF
		st, err := exp.LoadCampaign(*resumeF)
		die("resume", err)
		cfg.State = st
		logger.Info("resuming campaign from WAL",
			"journal", *resumeF, "campaign", st.Campaign,
			"done", len(st.Done), "dangling_leases", len(st.Leases))
		if *cacheDir == "" {
			logger.Warn("-resume without -cache re-runs completed non-chaotic jobs")
		}
	}
	if journalPath != "" {
		j, err := exp.OpenJournal(journalPath)
		die("journal", err)
		defer j.Close()
		cfg.Journal = j
	}

	co := cluster.NewCoordinator(cfg)
	logger = logger.With("campaign", co.Campaign())
	ln, err := net.Listen("tcp", *listen)
	die("listen", err)
	addr := ln.Addr().String()
	if *chaosNet != "" {
		ccfg, err := chaosnet.Profile(*chaosNet, *chaosSeed)
		die("chaos-net", err)
		logger.Info("chaos-net armed", "profile", ccfg)
		ln = &chaosnet.Listener{
			Listener: ln,
			Plan:     chaosnet.New(ccfg),
			Self:     "coordinator",
			Logf:     obs.Logf(logger.With("subsys", "chaos-net")),
		}
	}
	co.Serve(ln)
	// Stdout, not the structured log: the drill scripts and humans alike
	// parse this line for the bound address.
	fmt.Printf("tlsserve: listening on http://%s\n", addr)
	logger.Info("serving", "addr", addr)

	if *gridF != "" {
		specs, err := gridSpecs(*gridF, *schemesF, *appsF, *seed)
		die("grid", err)
		resp := co.Preload(specs)
		logger.Info("preloaded grid campaign", "jobs", resp.Accepted, "already_done", resp.Done)
	}

	// writeTrace exports the merged fleet trace (coordinator lanes plus every
	// span shipped home on heartbeats and completions) once the campaign ends.
	writeTrace := func() {
		if *traceF == "" {
			return
		}
		if err := co.WriteFleetTrace(nil, *traceF); err != nil {
			logger.Error("fleet trace", "err", err)
			return
		}
		logger.Info("fleet trace written", "path", *traceF)
	}

	// First SIGINT/SIGTERM stops serving and flushes the journal (exit 130);
	// a second hard-exits. Workers survive a coordinator death: leases ride
	// out in the WAL and a -resume picks the campaign back up.
	sd := exp.NewShutdown(nil)
	defer sd.Stop()

	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-sd.Context().Done():
			co.Stop()
			writeTrace()
			logger.Info("interrupted", "resume_with", journalPath)
			sd.Stop()
			os.Exit(exp.ExitInterrupted)
		case <-tick.C:
			if !*exitDone {
				continue
			}
			n := co.Counts()
			if n.Total > 0 && n.Pending == 0 && n.Leased == 0 {
				co.Stop()
				writeTrace()
				logger.Info("campaign complete", "done", n.Done, "failed", n.Failed)
				if n.Failed > 0 {
					os.Exit(1)
				}
				return
			}
		}
	}
}

// durOff maps the CLI convention (0 disables) onto the Config convention
// (0 means default, negative disables).
func durOff(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

// gridSpecs builds the wire specs of a figure-grid campaign, constructing
// exactly the jobs a later `tlsreport -coordinator` run with the same
// machine, apps and seed will ask for (same scaling, same order, same keys).
func gridSpecs(machineName, schemesSpec, appsSpec string, seed uint64) ([]cluster.JobSpec, error) {
	mach, err := cluster.ResolveMachine(machineName)
	if err != nil {
		return nil, err
	}
	schemes := report.Figure9Schemes()
	if schemesSpec != "" {
		schemes = schemes[:0]
		for _, sname := range strings.Split(schemesSpec, ";") {
			s, ok := core.SchemeFromString(strings.TrimSpace(sname))
			if !ok {
				return nil, fmt.Errorf("unknown scheme %q", sname)
			}
			schemes = append(schemes, s)
		}
	}
	opt := report.Options{Seed: seed}
	if appsSpec != "" {
		for _, aname := range strings.Split(appsSpec, ",") {
			p, ok := repro.AppByName(strings.TrimSpace(aname))
			if !ok {
				return nil, fmt.Errorf("unknown application %q", aname)
			}
			opt.Apps = append(opt.Apps, workload.StandardScale(p))
		}
	}
	jobs := report.GridJobs(mach, schemes, opt)
	specs := make([]cluster.JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = cluster.SpecOf(j)
	}
	return specs, nil
}
