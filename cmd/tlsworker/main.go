// tlsworker is one member of a distributed campaign fleet: it pulls leased
// jobs from a tlsserve coordinator, executes them through the hardened
// experiment runner (watchdog, panic retry, checkpointing, fault injection
// all intact), streams heartbeats and per-job observability counters back,
// and steals speculative work when idle.
//
// Usage:
//
//	tlsworker -coordinator http://host:8100
//	tlsworker -coordinator http://host:8100 -jobs 4 -observe
//	tlsworker -coordinator http://host:8100 -checkpoint-dir .ckpt -job-timeout 2m
//
// Shutdown is graceful by default (-drain): the first SIGINT/SIGTERM stops
// pulling, interrupts in-flight simulations (they checkpoint at their next
// commit when -checkpoint-dir is set), returns unfinished leases to the
// coordinator, delivers a final heartbeat, and exits 130. A second signal
// hard-exits. With -drain=false the first signal exits immediately and the
// coordinator reclaims the leases by TTL expiry.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaosnet"
	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		coord    = flag.String("coordinator", "", "coordinator base URL (http://host:port); required")
		name     = flag.String("name", "", "worker name (default host-pid)")
		jobs     = flag.Int("jobs", 1, "concurrent leased jobs")
		poll     = flag.Duration("poll", 500*time.Millisecond, "idle wait between empty lease pulls")
		timeout  = flag.Duration("job-timeout", 0, "per-job watchdog deadline (0 disables)")
		retries  = flag.Int("retries", 1, "per-job panic-retry budget")
		observe  = flag.Bool("observe", false, "attach an obs registry to every job and report counters on heartbeats")
		traceF   = flag.Bool("trace", false, "record attempt/retry/checkpoint spans and ship them to the coordinator's fleet trace")
		ckptDir  = flag.String("checkpoint-dir", "", "mid-run simulator checkpoint directory")
		ckptN    = flag.Int("checkpoint-every", 50, "auto-checkpoint cadence in committed tasks (0 = only at interrupts)")
		drain    = flag.Bool("drain", true, "on the first signal, drain gracefully: interrupt in-flight simulations, release leases, exit 130")
		metricsF = flag.Bool("metrics", false, "print a local run-metrics summary line to stderr at exit")

		rpcTimeout  = flag.Duration("rpc-timeout", 30*time.Second, "total per-RPC deadline against the coordinator")
		dialTimeout = flag.Duration("dial-timeout", 5*time.Second, "connection-attempt deadline against the coordinator")
		chaosNet    = flag.String("chaos-net", "", "inject seeded network chaos on this worker's transport: hostile, campaign, or byzantine")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed for the -chaos-net fault plan")
	)
	flag.Parse()

	if *coord == "" {
		fmt.Fprintln(os.Stderr, "tlsworker: -coordinator is required")
		os.Exit(2)
	}
	wname := *name
	if wname == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wname = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var metrics *exp.Metrics
	if *metricsF {
		metrics = new(exp.Metrics)
	}
	logger := obs.NewLogger(os.Stderr, "tlsworker", "worker", wname)
	logf := obs.Logf(logger)
	wcfg := cluster.WorkerConfig{
		Name:            wname,
		Coordinator:     *coord,
		Parallel:        *jobs,
		Poll:            *poll,
		JobTimeout:      *timeout,
		Retries:         *retries,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptN,
		Observe:         *observe,
		Trace:           *traceF,
		Metrics:         metrics,
		RPCTimeout:      *rpcTimeout,
		DialTimeout:     *dialTimeout,
		Logf:            logf,
	}
	if *chaosNet != "" {
		ccfg, err := chaosnet.Profile(*chaosNet, *chaosSeed)
		if err != nil {
			logger.Error("-chaos-net", "err", err)
			os.Exit(2)
		}
		logger.Info("chaos-net armed", "profile", ccfg)
		wcfg.HTTP = chaosnet.Client(
			cluster.HTTPClient(*dialTimeout, *rpcTimeout), chaosnet.New(ccfg), wname,
			obs.Logf(logger.With("subsys", "chaos-net")))
	}
	w := cluster.NewWorker(wcfg)

	// Two-stage shutdown: the first signal cancels the pull loop; Run then
	// drains (interrupt, checkpoint, release, final heartbeat) before
	// returning. A second signal hard-exits through the Shutdown handler.
	sd := exp.NewShutdown(nil)
	defer sd.Stop()
	if !*drain {
		go func() {
			<-sd.Context().Done()
			os.Exit(exp.ExitInterrupted)
		}()
	}

	logger.Info("pulling", "coordinator", *coord, "slots", *jobs)
	err := w.Run(sd.Context())
	if metrics != nil {
		fmt.Fprintln(os.Stderr, "tlsworker "+metrics.Snapshot().String())
	}
	if sd.Interrupted() {
		logger.Info("drained")
		sd.Stop()
		os.Exit(exp.ExitInterrupted)
	}
	if err != nil {
		logger.Error("run", "err", err)
		os.Exit(1)
	}
}
