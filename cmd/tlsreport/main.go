// tlsreport regenerates the tables and figures of the paper's evaluation.
//
// All simulations run through the internal/exp orchestrator: a worker pool
// (-jobs) with an optional persistent result cache (-cache) and a run
// metrics summary (-metrics). Output is byte-identical at any worker count.
//
// Usage:
//
//	tlsreport                 # everything (several minutes)
//	tlsreport -only fig9      # one artifact: table1 table2 table3 fig1 fig2
//	                          # fig4 fig5 fig6 fig8 fig9 fig10 fig11 summary
//	tlsreport -only scaling   # extension: machine-size sweep (4-32 procs)
//	tlsreport -apps Tree,Euler -seed 2
//	tlsreport -jobs 8 -cache .tlscache -metrics   # parallel + memoized
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/iofault"
	"repro/internal/profiling"
	"repro/internal/report"
)

// artifacts are the valid -only values, in rendering order ("scaling" is
// the extension and only runs when requested explicitly).
var artifacts = []string{
	"table1", "table2", "fig2", "fig4", "fig8", "fig5", "fig6",
	"fig1", "table3", "fig9", "fig10", "fig11", "summary", "scaling",
}

func main() {
	var (
		only    = flag.String("only", "", "regenerate a single artifact")
		seed    = flag.Uint64("seed", 1, "workload seed")
		apps    = flag.String("apps", "", "comma-separated application subset")
		verbose = flag.Bool("v", false, "print per-run progress")
		csvDir  = flag.String("csv", "", "also write raw results as CSV files into this directory")
		svgDir  = flag.String("svg", "", "also write the performance figures as SVG charts into this directory")
		jobs    = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		cache   = flag.String("cache", "", "persistent result-cache directory (warm reruns skip unchanged simulations)")
		metrics = flag.Bool("metrics", false, "print an orchestration summary line to stderr at exit")
		timeout = flag.Duration("timeout", 0, "per-job watchdog deadline (0 disables; hung jobs land in the failure manifest)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		journal = flag.String("journal", "", "append campaign progress to this JSONL journal (crash recovery via -resume)")
		resume  = flag.String("resume", "", "resume a crashed or interrupted campaign from its journal (implies -journal)")
		ckptDir = flag.String("checkpoint-dir", "", "mid-run simulator checkpoint directory (default <journal>.ckpt when journaling)")
		ckptN   = flag.Int("checkpoint-every", 50, "auto-checkpoint cadence in committed tasks (0 = only at interrupts)")
		listen  = flag.String("listen", "", "serve live telemetry on this address (/metrics Prometheus text, /progress JSON)")
		coord   = flag.String("coordinator", "", "run all simulations on a distributed fleet via this tlsserve URL (execution flags then apply coordinator/worker-side)")
		rpcT    = flag.Duration("rpc-timeout", 30*time.Second, "total per-RPC deadline against the coordinator")
		dialT   = flag.Duration("dial-timeout", 5*time.Second, "connection-attempt deadline against the coordinator")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsreport: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if *only != "" && !known(*only) {
		fmt.Fprintf(os.Stderr, "tlsreport: unknown artifact %q; valid -only values: %s\n",
			*only, strings.Join(artifacts, " "))
		os.Exit(2)
	}

	opt := repro.Options{Seed: *seed, Jobs: *jobs, CacheDir: *cache, JobTimeout: *timeout}
	if *coord != "" {
		// Fleet mode: every batch travels to the coordinator; the rendered
		// artifacts are identical to a local run because each simulation is
		// a pure function of the job's content. Caching, journaling and
		// checkpointing then happen coordinator- and worker-side.
		opt.Batcher = &cluster.Client{URL: *coord, Name: cluster.ClientName("tlsreport"),
			RPCTimeout: *rpcT, DialTimeout: *dialT,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "tlsreport: "+format+"\n", args...)
			}}
		if *cache != "" || *journal != "" || *resume != "" {
			fmt.Fprintln(os.Stderr, "tlsreport: -coordinator set; -cache/-journal/-resume apply to tlsserve, ignoring locally")
			*cache, *journal, *resume = "", "", ""
		}
	}
	if *cache != "" {
		// Fail fast on an unusable cache directory rather than silently
		// running uncached.
		if _, err := repro.NewResultCache(*cache); err != nil {
			fmt.Fprintf(os.Stderr, "tlsreport: cache: %v\n", err)
			os.Exit(1)
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the campaign
	// context (in-flight simulations checkpoint and drain, the journal is
	// flushed, exit 130); a second signal hard-exits.
	sd := repro.NewShutdown(nil)
	defer sd.Stop()
	opt.Context = sd.Context()

	journalPath := *journal
	if *resume != "" {
		journalPath = *resume
		st, err := repro.LoadCampaign(*resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsreport: resume: %v\n", err)
			os.Exit(1)
		}
		opt.Resume = st.Checkpoints
		if *cache == "" {
			// Completed jobs are skipped via the cache; without one they
			// simply re-run (correct, just slower).
			fmt.Fprintln(os.Stderr, "tlsreport: -resume without -cache re-runs completed jobs")
		}
	}
	if journalPath != "" {
		j, err := repro.OpenJournal(journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsreport: journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		opt.Journal = j
		if *resume == "" {
			j.Append(repro.JournalRecord{T: repro.RecCampaign, Name: "tlsreport"})
		}
		if *ckptDir == "" {
			*ckptDir = journalPath + ".ckpt"
		}
	}
	opt.CheckpointDir = *ckptDir
	opt.CheckpointEvery = *ckptN
	if *metrics || *listen != "" {
		opt.Metrics = new(repro.RunMetrics)
	}
	if *listen != "" {
		tel := &repro.Telemetry{Name: "tlsreport", Metrics: opt.Metrics}
		opt.JobObserver = tel.ObserveJob
		addr, err := tel.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsreport: listen: %v\n", err)
			os.Exit(1)
		}
		defer tel.Stop()
		fmt.Fprintf(os.Stderr, "tlsreport: telemetry on http://%s/metrics\n", addr)
	}
	if *apps != "" {
		for _, name := range strings.Split(*apps, ",") {
			p, ok := repro.AppByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "tlsreport: unknown application %q\n", name)
				os.Exit(2)
			}
			opt.Apps = append(opt.Apps, p)
		}
		// Apply the harness's standard scaling to the subset, as
		// StandardSuite would.
		for i := range opt.Apps {
			opt.Apps[i] = scale(opt.Apps[i])
		}
	}
	if *verbose {
		opt.Progress = func(m, a string, s repro.Scheme, r repro.Result) {
			fmt.Fprintf(os.Stderr, "  ran %s/%s/%v: %d cycles\n", m, a, s, r.ExecCycles)
		}
	}

	w := os.Stdout
	want := func(name string) bool { return *only == "" || *only == name }

	// Job failures (simulations that crashed, hung past the watchdog
	// deadline, or were quarantined) are collected into one manifest and
	// reported at exit instead of killing the whole regeneration: the
	// sweep degrades to partial results.
	var failures []repro.JobFailure
	collect := func(g *repro.Grid) *repro.Grid {
		failures = append(failures, g.Failures...)
		return g
	}

	if want("table1") {
		report.RenderTable1(w)
	}
	if want("table2") {
		report.RenderTable2(w)
	}
	if want("fig2") {
		report.RenderFigure2(w)
	}
	if want("fig4") {
		report.RenderFigure4(w)
	}
	if want("fig8") {
		report.RenderFigure8(w)
	}
	if want("fig5") {
		repro.Figure5(w, *seed)
	}
	if want("fig6") {
		repro.Figure6(w, *seed)
	}
	if want("fig1") || want("table3") {
		chars := repro.Characterize(opt)
		if want("fig1") {
			report.RenderFigure1(w, chars)
		}
		if want("table3") {
			report.RenderTable3(w, chars)
		}
		writeCSV(*csvDir, "characterization.csv", func(f io.Writer) error {
			return report.ExportCharacterizationCSV(f, chars)
		})
	}
	var fig9 *repro.Grid
	if want("fig9") || want("summary") {
		fig9 = collect(repro.Figure9(opt))
	}
	if want("fig9") {
		report.RenderGrid(w, fig9, "Figure 9. Separation of task state, eager vs lazy AMM (NUMA)")
		report.RenderAverages(w, fig9)
		report.RenderChecks(w, report.CheckFigure9Claims(fig9))
		writeCSV(*csvDir, "fig9.csv", func(f io.Writer) error { return report.ExportGridCSV(f, fig9) })
		writeCSV(*svgDir, "fig9.svg", func(f io.Writer) error {
			return report.RenderGridSVG(f, fig9, "Figure 9. Separation of task state (NUMA16)")
		})
	}
	if want("fig10") {
		g, lazyL2 := repro.Figure10(opt)
		collect(g)
		report.RenderGrid(w, g, "Figure 10. Architectural (AMM) vs future (FMM) main memory (NUMA)")
		report.RenderAverages(w, g)
		if lazyL2.Result.Commits > 0 {
			fmt.Fprintf(w, "P3m under Lazy.L2 (4-MB 16-way L2): %d cycles, %d spills (vs %d under Lazy AMM)\n\n",
				lazyL2.Result.ExecCycles, lazyL2.Result.OverflowSpills,
				g.Cell("P3m", repro.MultiTMVLazy).Result.OverflowSpills)
		}
		report.RenderChecks(w, report.CheckFigure10Claims(g, lazyL2))
		writeCSV(*csvDir, "fig10.csv", func(f io.Writer) error { return report.ExportGridCSV(f, g) })
		writeCSV(*svgDir, "fig10.svg", func(f io.Writer) error {
			return report.RenderGridSVG(f, g, "Figure 10. AMM vs FMM (NUMA16)")
		})
	}
	var fig11 *repro.Grid
	if want("fig11") || want("summary") {
		fig11 = collect(repro.Figure11(opt))
	}
	if want("fig11") {
		report.RenderGrid(w, fig11, "Figure 11. Separation of task state, eager vs lazy AMM (CMP)")
		report.RenderAverages(w, fig11)
		writeCSV(*csvDir, "fig11.csv", func(f io.Writer) error { return report.ExportGridCSV(f, fig11) })
		writeCSV(*svgDir, "fig11.svg", func(f io.Writer) error {
			return report.RenderGridSVG(f, fig11, "Figure 11. Separation of task state (CMP8)")
		})
	}
	if want("summary") {
		report.RenderSummary(w, repro.Summarize(fig9), 32, 30, 24)
		report.RenderSummary(w, repro.Summarize(fig11), 23, 9, 3)
	}
	if *only == "scaling" {
		pts := repro.Scalability(opt)
		report.RenderScalability(w, pts)
		writeCSV(*svgDir, "scaling.svg", func(f io.Writer) error {
			return report.RenderScalabilitySVG(f, pts)
		})
	}

	if *metrics {
		fmt.Fprintln(os.Stderr, "tlsreport "+opt.Metrics.Snapshot().String())
	}
	if sd.Interrupted() {
		if journalPath != "" {
			fmt.Fprintf(os.Stderr, "tlsreport: interrupted; resume with -resume %s\n", journalPath)
		} else {
			fmt.Fprintln(os.Stderr, "tlsreport: interrupted (run with -journal to make campaigns resumable)")
		}
		stopProf()
		os.Exit(repro.ExitInterrupted)
	}
	if len(failures) > 0 {
		fmt.Fprint(os.Stderr, "tlsreport: "+repro.RenderFailureManifest(failures))
		stopProf()
		os.Exit(1)
	}
}

func known(artifact string) bool {
	for _, a := range artifacts {
		if a == artifact {
			return true
		}
	}
	return false
}

// writeCSV writes one CSV/SVG artifact when the directory flag is set. The
// artifact is rendered in memory and published atomically (temp file,
// fsync, rename, directory fsync), so a crash or full disk mid-write can
// never leave a truncated artifact under the final name; any error is
// fatal so it cannot pass silently.
func writeCSV(dir, name string, write func(f io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tlsreport: %v\n", err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "tlsreport: writing %s: %v\n", name, err)
		os.Exit(1)
	}
	if err := iofault.WriteFileAtomic(iofault.Real, dir+"/"+name, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tlsreport: writing %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s/%s\n", dir, name)
}

func scale(p repro.Profile) repro.Profile {
	foot := 0.25
	if p.Name == "P3m" {
		foot = 1.0
	}
	return p.Scale(0.5, 0.25, foot)
}
