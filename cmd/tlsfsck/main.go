// tlsfsck verifies — and optionally repairs — the durable state of a
// campaign offline: the JSONL journal (WAL), the result cache, and
// checkpoint files. Run it after a crash, power loss, or suspected disk
// trouble, before resuming the campaign.
//
// Usage:
//
//	tlsfsck -state .tlsstate                     # journal+cache+checkpoints under one dir
//	tlsfsck -journal camp.jsonl -cache .tlscache # explicit paths
//	tlsfsck -state .tlsstate -repair             # fix what online recovery would fix
//	tlsfsck -state .tlsstate -json               # machine-readable report
//
// Exit status: 0 when the state verifies clean, 1 when problems were found
// (with -repair: found and fixed — rerun to confirm a clean bill), 2 on
// usage or I/O errors. This mirrors fsck(8): 1 means "errors corrected".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fsck"
)

func main() {
	var (
		state   = flag.String("state", "", "campaign state directory: checks <dir>/journal.jsonl, <dir>/cache, <dir>/ckpt when present")
		journal = flag.String("journal", "", "campaign journal (WAL) to verify")
		cache   = flag.String("cache", "", "result-cache directory to verify")
		ckptDir = flag.String("checkpoint-dir", "", "checkpoint directory to verify")
		repair  = flag.Bool("repair", false, "apply repairs: truncate torn journal tail, quarantine corrupt files, remove temp litter")
		jsonOut = flag.Bool("json", false, "emit the report as JSON on stdout")
		quiet   = flag.Bool("q", false, "suppress per-finding log lines")
	)
	flag.Parse()

	opts := fsck.Options{
		Journal:       *journal,
		CacheDir:      *cache,
		CheckpointDir: *ckptDir,
		Repair:        *repair,
	}
	if *state != "" {
		// Convention used by the drills: one directory holding all three.
		if opts.Journal == "" {
			if p := filepath.Join(*state, "journal.jsonl"); exists(p) {
				opts.Journal = p
			}
		}
		if opts.CacheDir == "" {
			if p := filepath.Join(*state, "cache"); exists(p) {
				opts.CacheDir = p
			}
		}
		if opts.CheckpointDir == "" {
			if p := filepath.Join(*state, "ckpt"); exists(p) {
				opts.CheckpointDir = p
			}
		}
	}
	if opts.Journal == "" && opts.CacheDir == "" && opts.CheckpointDir == "" {
		fmt.Fprintln(os.Stderr, "tlsfsck: nothing to check (give -state, -journal, -cache, or -checkpoint-dir)")
		flag.Usage()
		os.Exit(2)
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := fsck.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsfsck: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "tlsfsck: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Println(rep.Summary())
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
