// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design decisions DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration performs the full experiment for its artifact
// and reports the headline quantities as custom metrics, so the benchmark
// log doubles as the reproduction record (EXPERIMENTS.md is distilled from
// it). Absolute cycle counts are properties of this simulator, not of the
// authors' testbed; the metrics to compare against the paper are the
// normalized ratios.
package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/event"
	"repro/internal/report"
)

func opt() repro.Options { return repro.Options{Seed: 1} }

// benchGrid reports per-scheme average normalized times of a grid.
func reportGridMetrics(b *testing.B, g *repro.Grid) {
	base := g.Schemes[0]
	for _, sch := range g.Schemes {
		sum := 0.0
		for _, app := range g.Apps {
			ref := g.Cell(app, base).Result.ExecCycles
			sum += g.Cell(app, sch).Normalized(ref)
		}
		b.ReportMetric(sum/float64(len(g.Apps)), "norm:"+sch.ShortName()+"/"+sch.Sep.String())
	}
}

func countHolds(checks []repro.ExpectationCheck) (holds float64) {
	for _, c := range checks {
		if c.Holds {
			holds++
		}
	}
	return holds
}

// BenchmarkTable1 renders the support inventory (static artifact).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderTable1(io.Discard)
	}
}

// BenchmarkTable2 renders the upgrade path (static artifact).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderTable2(io.Discard)
	}
}

// BenchmarkFigure2 renders the taxonomy grid (static artifact).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderFigure2(io.Discard)
	}
}

// BenchmarkFigure4 renders the existing-scheme mapping (static artifact).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderFigure4(io.Discard)
	}
}

// BenchmarkFigure8 renders the limiting characteristics (static artifact).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderFigure8(io.Discard)
	}
}

// BenchmarkFigure1 measures the application characteristics of Figure 1-(a):
// co-existing speculative tasks and written footprints.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chars := repro.Characterize(opt())
		for _, c := range chars {
			b.ReportMetric(c.SpecTasksPerProc, "specTasksPerProc:"+c.Profile.Name)
			b.ReportMetric(c.FootprintKB, "footKB:"+c.Profile.Name)
		}
	}
}

// BenchmarkTable3 measures the Commit/Execution ratios of Table 3 on both
// machines (compare the metric pairs against the paper's 0.3/0.1 ...
// 14.5/7.5 pattern: NUMA roughly double the CMP ratio per application).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chars := repro.Characterize(opt())
		for _, c := range chars {
			b.ReportMetric(c.CENuma, "ceNUMA%:"+c.Profile.Name)
			b.ReportMetric(c.CECmp, "ceCMP%:"+c.Profile.Name)
			b.ReportMetric(c.SquashRate, "squashPerTask:"+c.Profile.Name)
		}
	}
}

// BenchmarkFigure5 reproduces the SingleT / MultiT&SV / MultiT&MV task
// timelines; the metric is each scheme's completion time relative to
// SingleT (MultiT&MV must be fastest).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := repro.Figure5(io.Discard, 1)
		base := float64(res[repro.SingleTEager.String()].ExecCycles)
		b.ReportMetric(float64(res[repro.MultiTSVEager.String()].ExecCycles)/base, "norm:MultiT&SV")
		b.ReportMetric(float64(res[repro.MultiTMVEager.String()].ExecCycles)/base, "norm:MultiT&MV")
	}
}

// BenchmarkFigure6 reproduces the execution/commit wavefront comparison;
// the metrics are the Lazy/Eager completion ratios for MultiT&MV (a vs b)
// and SingleT (c vs d) — both must be below 1.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := repro.Figure6(io.Discard, 1)
		b.ReportMetric(float64(res[repro.MultiTMVLazy.String()].ExecCycles)/
			float64(res[repro.MultiTMVEager.String()].ExecCycles), "lazyOverEager:MultiT&MV")
		b.ReportMetric(float64(res[repro.SingleTLazy.String()].ExecCycles)/
			float64(res[repro.SingleTEager.String()].ExecCycles), "lazyOverEager:SingleT")
	}
}

// BenchmarkFigure9 runs the NUMA separation/merging grid. Metrics: average
// normalized execution time per scheme (SingleT Eager = 1) and the number
// of the paper's Section 5.1/5.2 claims that hold.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := repro.Figure9(opt())
		reportGridMetrics(b, g)
		checks := report.CheckFigure9Claims(g)
		b.ReportMetric(countHolds(checks), "claimsHold")
		b.ReportMetric(float64(len(checks)), "claimsTotal")
	}
}

// BenchmarkFigure10 runs the NUMA AMM-versus-FMM grid plus P3m's Lazy.L2
// configuration.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, lazyL2 := repro.Figure10(opt())
		reportGridMetrics(b, g)
		checks := report.CheckFigure10Claims(g, lazyL2)
		b.ReportMetric(countHolds(checks), "claimsHold")
		b.ReportMetric(float64(len(checks)), "claimsTotal")
		amm := g.Cell("P3m", repro.MultiTMVLazy).Result
		b.ReportMetric(float64(amm.OverflowSpills), "p3mSpills:LazyAMM")
		b.ReportMetric(float64(lazyL2.Result.OverflowSpills), "p3mSpills:Lazy.L2")
	}
}

// BenchmarkFigure11 runs the CMP grid of Figure 11; the deltas between
// schemes must be visibly smaller than on the NUMA machine.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := repro.Figure11(opt())
		reportGridMetrics(b, g)
	}
}

// BenchmarkSummary computes the Section 5.4 headline averages: compare
// against the paper's 32/30/24% (NUMA) and 23/9/3% (CMP).
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		numa := repro.Summarize(repro.Figure9(opt()))
		cmp := repro.Summarize(repro.Figure11(opt()))
		b.ReportMetric(numa.MultiTMVOverSingleTPct, "NUMA:mv%")
		b.ReportMetric(numa.LazinessSimplePct, "NUMA:lazySimple%")
		b.ReportMetric(numa.LazinessMultiTMVPct, "NUMA:lazyMV%")
		b.ReportMetric(cmp.MultiTMVOverSingleTPct, "CMP:mv%")
		b.ReportMetric(cmp.LazinessSimplePct, "CMP:lazySimple%")
		b.ReportMetric(cmp.LazinessMultiTMVPct, "CMP:lazyMV%")
	}
}

// BenchmarkAblationGranularity contrasts word-granularity violation
// detection (the baseline protocol) with line-granularity detection on a
// workload with packed communication words: false sharing turns into
// spurious squashes under line granularity.
func BenchmarkAblationGranularity(b *testing.B) {
	prof := repro.Euler().Scale(0.25, 0.1, 0.25)
	prof.PackedChannels = true
	for i := 0; i < b.N; i++ {
		word := repro.NewSimulator(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		wr := word.Run()
		line := repro.NewSimulator(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		line.SetLineGranularityConflicts(true)
		lr := line.Run()
		b.ReportMetric(float64(wr.SquashEvents), "squashes:word")
		b.ReportMetric(float64(lr.SquashEvents), "squashes:line")
		b.ReportMetric(float64(lr.ExecCycles)/float64(wr.ExecCycles), "lineOverWord")
	}
}

// BenchmarkAblationMerging contrasts the two in-order lazy-merging
// supports: the version-combining logic (our baseline) and the Zhang99&T
// memory task-ID filter. Timing is equivalent in this model; the metric of
// interest is the stale write-backs MTID rejects.
func BenchmarkAblationMerging(b *testing.B) {
	// A fully privatized workload: every task creates a version of the same
	// lines, so committed versions of one line linger in several caches and
	// displace out of order — the case the VCL's combining or MTID's
	// rejections must handle.
	prof := repro.Bdna().Scale(0.25, 0.1, 0.25)
	prof.PrivFrac = 1.0
	for i := 0; i < b.N; i++ {
		vcl := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		mtid := repro.NewSimulator(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		mtid.ForceMTID()
		mr := mtid.Run()
		b.ReportMetric(float64(mr.ExecCycles)/float64(vcl.ExecCycles), "mtidOverVcl")
		b.ReportMetric(float64(mr.MemRejected), "mtidRejections")
	}
}

// BenchmarkAblationOverflowLatency sweeps the overflow-area access latency
// under deep version stacks — the knob behind Figure 10's AMM pressure
// penalty. The workload is a single-invocation, fully privatized,
// straggler-bound loop (a distilled P3m): hundreds of tasks buffer behind
// the long ones, stacking versions of the same lines far beyond the L2's
// associativity.
func BenchmarkAblationOverflowLatency(b *testing.B) {
	prof := repro.Profile{
		Name:           "pressure",
		Tasks:          360,
		InstrPerTask:   6000,
		FootprintBytes: 4096,
		WriteDensity:   16,
		PrivFrac:       1.0,
		WritePhase:     0.5,
		ImbalanceCV:    0.3,
		HeavyTailFrac:  0.01,
		HeavyTailMax:   120,
		ReadsPerWrite:  1.0,
		SharedReadFrac: 0.2,
		HotReadWords:   2048,
	}
	for i := 0; i < b.N; i++ {
		base := 0.0
		for _, f := range []uint64{1, 2, 4} {
			m := repro.NUMA16()
			m.LatOverflow *= event.Time(f)
			r := repro.Run(m, repro.MultiTMVEager, prof, 1)
			if f == 1 {
				base = float64(r.ExecCycles)
				b.ReportMetric(float64(r.OverflowSpills), "spills")
			}
			b.ReportMetric(float64(r.ExecCycles)/base, fmt.Sprintf("normAtLat%dx", f))
		}
	}
}

// BenchmarkAblationTokenCost sweeps the commit-token pass latency on a
// high commit-ratio workload: the serialization behind the SingleT and
// Eager wavefronts.
func BenchmarkAblationTokenCost(b *testing.B) {
	prof := repro.Track().Scale(0.25, 0.1, 0.25)
	for i := 0; i < b.N; i++ {
		base := 0.0
		for _, f := range []uint64{1, 4, 16} {
			m := repro.NUMA16()
			m.TokenPass *= event.Time(f)
			r := repro.Run(m, repro.SingleTLazy, prof, 1)
			if f == 1 {
				base = float64(r.ExecCycles)
			}
			b.ReportMetric(float64(r.ExecCycles)/base, fmt.Sprintf("normAtToken%dx", f))
		}
	}
}

// BenchmarkAblationLogging contrasts hardware and software undo logging
// (FMM vs FMM.Sw) on a squash-free workload, isolating the logging cost
// itself (the paper reports 6% average).
func BenchmarkAblationLogging(b *testing.B) {
	prof := repro.Bdna().Scale(0.25, 0.1, 0.25)
	for i := 0; i < b.N; i++ {
		hw := repro.Run(repro.NUMA16(), repro.MultiTMVFMM, prof, 1)
		sw := repro.Run(repro.NUMA16(), repro.MultiTMVFMMSw, prof, 1)
		b.ReportMetric(100*(float64(sw.ExecCycles)/float64(hw.ExecCycles)-1), "swOverhead%")
	}
}

// BenchmarkSingleRun measures simulator throughput on one mid-size run
// (events and cycles per second of host time).
func BenchmarkSingleRun(b *testing.B) {
	prof := repro.Bdna().Scale(0.25, 0.25, 0.25)
	for i := 0; i < b.N; i++ {
		r := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, prof, uint64(i+1))
		b.ReportMetric(float64(r.ExecCycles), "simCycles")
	}
}

// BenchmarkScalability sweeps NUMA machine sizes (4-32 processors) and
// reports how the two supports' reductions scale — the paper's
// "in large machines, their effect is nearly fully additive" claim. The
// additivity metric is (gain of MV+lazy) minus (gain of MV) - (gain of
// lazy-on-MV scaled): near zero means fully additive.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := repro.Scalability(opt())
		for _, p := range pts {
			b.ReportMetric(p.MultiTMVPct, fmt.Sprintf("mvGain%%@%dp", p.Procs))
			b.ReportMetric(p.LazinessMVPct, fmt.Sprintf("lazyMVGain%%@%dp", p.Procs))
			b.ReportMetric(p.LazinessSimplePct, fmt.Sprintf("lazySTGain%%@%dp", p.Procs))
		}
	}
}

// BenchmarkExtensionCoarseRecovery compares the LRPD-style software-only
// baseline (Figure 4's Coarse Recovery class) against SingleT Eager and
// MultiT&MV Lazy on a dependence-free privatization loop (where the doall
// wins) and on the squash-prone Euler (where serial re-execution is
// catastrophic).
func BenchmarkExtensionCoarseRecovery(b *testing.B) {
	tree := repro.Tree().Scale(0.5, 0.25, 0.25)
	euler := repro.Euler().Scale(0.5, 0.25, 0.25)
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			name string
			prof repro.Profile
		}{{"Tree", tree}, {"Euler", euler}} {
			base := repro.Run(repro.NUMA16(), repro.SingleTEager, tc.prof, 1)
			coarse := repro.Run(repro.NUMA16(), repro.CoarseRecovery, tc.prof, 1)
			lazy := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, tc.prof, 1)
			b.ReportMetric(float64(coarse.ExecCycles)/float64(base.ExecCycles), "coarseNorm:"+tc.name)
			b.ReportMetric(float64(lazy.ExecCycles)/float64(base.ExecCycles), "lazyMVNorm:"+tc.name)
		}
	}
}

// BenchmarkAblationORB contrasts write-back eager merging with ORB-style
// ownership-request merging (the Steffan et al. alternative of Section
// 4.1's footnote) on the high-commit-ratio Track.
func BenchmarkAblationORB(b *testing.B) {
	prof := repro.Track().Scale(0.5, 0.25, 0.25)
	for i := 0; i < b.N; i++ {
		eager := repro.Run(repro.NUMA16(), repro.MultiTMVEager, prof, 1)
		lazy := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
		orb := repro.NewSimulator(repro.NUMA16(), repro.MultiTMVEager, prof, 1)
		orb.SetORBCommit(true)
		or := orb.Run()
		b.ReportMetric(float64(or.ExecCycles)/float64(eager.ExecCycles), "orbOverEager")
		b.ReportMetric(float64(or.ExecCycles)/float64(lazy.ExecCycles), "orbOverLazy")
	}
}

// BenchmarkSeedStability measures the seed sensitivity of the squash-prone
// Euler under Lazy AMM and FMM, and whether their Figure 10 gap is
// significant at two sigma.
func BenchmarkSeedStability(b *testing.B) {
	prof := repro.Euler().Scale(0.25, 0.1, 0.25)
	for i := 0; i < b.N; i++ {
		lazy := report.MeasureSeedStability(repro.NUMA16(), repro.MultiTMVLazy, prof, 1, 8)
		fmm := report.MeasureSeedStability(repro.NUMA16(), repro.MultiTMVFMM, prof, 1, 8)
		b.ReportMetric(lazy.CV(), "cv:Lazy")
		b.ReportMetric(fmm.CV(), "cv:FMM")
		sig := 0.0
		if report.Significant(lazy, fmm) {
			sig = 1
		}
		b.ReportMetric(sig, "gapSignificant")
	}
}
