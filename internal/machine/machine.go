// Package machine defines the two architectures of the paper's evaluation
// (Section 4.1) — a 16-node CC-NUMA and an 8-processor CMP — as parameter
// sets: cache geometries, the published minimum round-trip latencies, and
// the derived costs of the buffering mechanisms (commit write-backs,
// overflow-area accesses, undo-log maintenance and recovery).
package machine

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/interconnect"
	"repro/internal/memsys"
)

// Kind distinguishes the two machine families.
type Kind uint8

const (
	// NUMA is the scalable CC-NUMA machine.
	NUMA Kind = iota
	// CMP is the chip multiprocessor.
	CMP
)

func (k Kind) String() string {
	switch k {
	case NUMA:
		return "NUMA"
	case CMP:
		return "CMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config is one simulated machine. All latencies are round-trip cycles as
// in the paper; occupancies model contention.
type Config struct {
	Name  string
	Kind  Kind
	Procs int

	// Cache geometries.
	L1 memsys.Config
	L2 memsys.Config

	// Round-trip latencies (Section 4.1).
	LatL1          event.Time // processor to L1
	LatL2          event.Time // processor to L2
	LatMemLocal    event.Time // memory in the local node (NUMA) / off-chip memory (CMP)
	LatMemRemote   event.Time // memory in a remote node, 2 protocol hops (NUMA); = LatMemLocal on CMP
	LatCacheRemote event.Time // dirty data in another processor's cache: 3 protocol hops (NUMA), other L2 (CMP)
	LatL3          event.Time // shared L3 (CMP only; 0 when absent)

	// Overflow area: a per-processor region of local memory holding
	// speculative versions displaced from the cache hierarchy [16].
	LatOverflow event.Time

	// Commit machinery.
	CommitPerLine  event.Time // eager merge cost per dirty line (pipelined write-backs)
	ORBPerLine     event.Time // eager merge cost per line with ORB-style ownership requests
	TokenPass      event.Time // commit-token message between processors
	CommitFixed    event.Time // fixed per-commit bookkeeping (table walk trigger etc.)
	FinalMergeLine event.Time // per-line cost of the end-of-section lazy merge (background, per processor)

	// Squash and recovery.
	SquashMsg        event.Time // violation-to-squash notification latency
	AMMInvalidate    event.Time // per-line gang-invalidation cost (MROB recovery)
	FMMRestoreFixed  event.Time // software recovery-handler startup cost
	FMMRestoreLine   event.Time // per-log-entry restore cost (read MHB + write memory)
	DispatchOverhead event.Time // dynamic task scheduling cost per task

	// Undo-log maintenance (FMM). Hardware logging is overlapped with the
	// triggering write; software logging adds instructions on every first
	// write of a task to a line.
	LogAppendHW event.Time
	LogAppendSW event.Time

	// Processor core model: average cycles per non-memory instruction for a
	// 4-issue dynamic superscalar on numerical code.
	CPI float64

	// Network/bank contention parameters.
	Banks         int
	MsgOccupancy  event.Time
	BankOccupancy event.Time

	topo interconnect.Topology
}

// Topology returns the machine's network topology.
func (c *Config) Topology() interconnect.Topology { return c.topo }

// NewNetwork instantiates a fresh contention model for one simulation run.
func (c *Config) NewNetwork() *interconnect.Network {
	n := interconnect.NewNetwork(c.topo, c.Banks, c.MsgOccupancy, c.BankOccupancy)
	n.SetLookahead(c.Lookahead())
	return n
}

// Lookahead returns the machine's conservative-PDES lookahead: the minimum
// positive latency of any interaction that crosses nodes (commit-token
// passes, squash notifications, remote cache and memory round trips). No
// processor can be affected by another sooner than this, so a parallel
// simulator may advance a synchronization window of this width safely. The
// floor of 1 keeps degenerate configs (everything zero) progressing.
func (c *Config) Lookahead() event.Time {
	min := event.Time(0)
	for _, d := range []event.Time{c.TokenPass, c.SquashMsg, c.LatCacheRemote, c.LatMemRemote} {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	if min == 0 {
		return 1
	}
	return min
}

// LatMemory returns the round-trip latency for node proc reaching the
// memory that is home to bankKey.
func (c *Config) LatMemory(local bool) event.Time {
	if local {
		return c.LatMemLocal
	}
	return c.LatMemRemote
}

// ScalableNUMA returns the scalable CC-NUMA machine with the given number of
// nodes: 1 processor per node, 2D mesh, 2-way 32-KB L1 and 4-way 512-KB L2
// per node, 64-byte lines. The paper evaluates the 16-node point (NUMA16);
// other sizes support the scalability analysis behind the "large machines"
// claims of Section 5.4.
func ScalableNUMA(nodes int) *Config {
	cols, rows := meshDims(nodes)
	c := NUMA16()
	c.Name = fmt.Sprintf("NUMA%d", nodes)
	c.Procs = nodes
	c.Banks = nodes
	c.topo = interconnect.NewMesh2D(cols, rows)
	return c
}

// meshDims factors a node count into near-square mesh dimensions.
func meshDims(nodes int) (cols, rows int) {
	if nodes < 1 {
		panic("machine: NUMA with no nodes")
	}
	cols = 1
	for cols*cols < nodes {
		cols *= 2
	}
	rows = (nodes + cols - 1) / cols
	return cols, rows
}

// NUMA16 returns the scalable CC-NUMA machine: 16 nodes of 1 processor, 2D
// mesh, 2-way 32-KB L1 and 4-way 512-KB L2 per node, 64-byte lines.
// Latencies: 2 (L1), 12 (L2), 75 (local memory), 208 (remote, 2 hops), 291
// (remote, 3 hops).
func NUMA16() *Config {
	c := &Config{
		Name:  "NUMA16",
		Kind:  NUMA,
		Procs: 16,
		L1:    memsys.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 2},
		L2:    memsys.Config{Name: "L2", SizeBytes: 512 << 10, Ways: 4},

		LatL1:          2,
		LatL2:          12,
		LatMemLocal:    75,
		LatMemRemote:   208,
		LatCacheRemote: 291,
		LatL3:          0,
		LatOverflow:    75, // the overflow area lives in local memory

		// Committed lines stream to their (mostly remote) home memories;
		// pipelining overlaps about 4 transfers, so the occupancy per line is
		// roughly the average memory round-trip divided by 4.
		CommitPerLine:  20,
		TokenPass:      100,
		CommitFixed:    60,
		FinalMergeLine: 12,

		SquashMsg:        100,
		AMMInvalidate:    2,
		FMMRestoreFixed:  500,
		FMMRestoreLine:   25,
		DispatchOverhead: 120,

		LogAppendHW: 0,
		LogAppendSW: 18,

		CPI: 0.8,

		Banks:         16,
		MsgOccupancy:  4,
		BankOccupancy: 18,

		topo: interconnect.NewMesh2D(4, 4),
	}
	return c
}

// NUMA16BigL2 is the NUMA machine with a 4-MB, 16-way L2 — the "Lazy.L2"
// configuration used in Figure 10 to show that extra capacity and
// associativity remove the AMM overflow penalty in P3m.
func NUMA16BigL2() *Config {
	c := NUMA16()
	c.Name = "NUMA16.L2"
	c.L2 = memsys.Config{Name: "L2", SizeBytes: 4 << 20, Ways: 16}
	return c
}

// CMP8 returns the chip multiprocessor: 8 processors, each with a 2-way
// 32-KB L1 and a 4-way 256-KB L2, connected by a crossbar to 8 banks of
// directory and a shared off-chip 16-MB L3. Latencies: 2 (L1), 8 (L2), 18
// (another processor's L2), 38 (L3), 102 (memory).
func CMP8() *Config {
	c := &Config{
		Name:  "CMP8",
		Kind:  CMP,
		Procs: 8,
		L1:    memsys.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 2},
		L2:    memsys.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4},

		LatL1:          2,
		LatL2:          8,
		LatMemLocal:    102,
		LatMemRemote:   102, // flat memory on chip: no NUMA distance
		LatCacheRemote: 18,
		LatL3:          38,
		LatOverflow:    102,

		// Commits mostly hit the shared L3 (38) and are heavily pipelined on
		// chip.
		CommitPerLine:  9,
		TokenPass:      20,
		CommitFixed:    25,
		FinalMergeLine: 4,

		SquashMsg:        20,
		AMMInvalidate:    2,
		FMMRestoreFixed:  250,
		FMMRestoreLine:   15,
		DispatchOverhead: 60,

		LogAppendHW: 0,
		LogAppendSW: 14,

		CPI: 0.8,

		Banks:         8,
		MsgOccupancy:  2,
		BankOccupancy: 8,

		topo: interconnect.NewCrossbar(8),
	}
	return c
}

// Sequential returns a single-processor variant of c used to measure the
// sequential-execution baseline for speedups: "sequential execution of the
// code where all data is in the local memory module".
func Sequential(c *Config) *Config {
	s := *c
	s.Name = c.Name + ".seq"
	s.Procs = 1
	s.LatMemRemote = s.LatMemLocal // all data local
	s.LatCacheRemote = s.LatMemLocal
	s.Banks = 1
	if c.Kind == NUMA {
		s.topo = interconnect.NewMesh2D(1, 1)
	} else {
		s.topo = interconnect.NewCrossbar(1)
	}
	return &s
}
