package machine

import (
	"testing"

	"repro/internal/memsys"
)

func TestNUMA16MatchesPaper(t *testing.T) {
	c := NUMA16()
	if c.Procs != 16 {
		t.Fatalf("Procs = %d, want 16 (Section 4.1: 16 nodes of 1 processor)", c.Procs)
	}
	if c.L1.SizeBytes != 32<<10 || c.L1.Ways != 2 {
		t.Fatal("L1 must be a 2-way 32-KB cache")
	}
	if c.L2.SizeBytes != 512<<10 || c.L2.Ways != 4 {
		t.Fatal("L2 must be a 4-way 512-KB cache")
	}
	// Round-trip latencies: 2, 12, 75, 208, 291.
	if c.LatL1 != 2 || c.LatL2 != 12 || c.LatMemLocal != 75 ||
		c.LatMemRemote != 208 || c.LatCacheRemote != 291 {
		t.Fatalf("latencies = %d/%d/%d/%d/%d, want 2/12/75/208/291",
			c.LatL1, c.LatL2, c.LatMemLocal, c.LatMemRemote, c.LatCacheRemote)
	}
	if c.topo.Nodes() != 16 || c.topo.Name() != "4x4 mesh" {
		t.Fatalf("topology = %q/%d", c.topo.Name(), c.topo.Nodes())
	}
}

func TestCMP8MatchesPaper(t *testing.T) {
	c := CMP8()
	if c.Procs != 8 {
		t.Fatalf("Procs = %d, want 8", c.Procs)
	}
	if c.L2.SizeBytes != 256<<10 || c.L2.Ways != 4 {
		t.Fatal("CMP L2 must be a 4-way 256-KB cache")
	}
	// Round-trip latencies: 2, 8, 18 (other L2), 38 (L3), 102 (memory).
	if c.LatL1 != 2 || c.LatL2 != 8 || c.LatCacheRemote != 18 ||
		c.LatL3 != 38 || c.LatMemLocal != 102 {
		t.Fatalf("latencies = %d/%d/%d/%d/%d, want 2/8/18/38/102",
			c.LatL1, c.LatL2, c.LatCacheRemote, c.LatL3, c.LatMemLocal)
	}
	if c.LatMemRemote != c.LatMemLocal {
		t.Fatal("CMP memory latency must be flat")
	}
}

func TestBigL2Variant(t *testing.T) {
	c := NUMA16BigL2()
	if c.L2.SizeBytes != 4<<20 || c.L2.Ways != 16 {
		t.Fatal("Lazy.L2 variant must be a 16-way 4-MB L2 (Section 5.2)")
	}
	// Everything else inherits NUMA16.
	if c.LatMemRemote != 208 || c.Procs != 16 {
		t.Fatal("Lazy.L2 variant must only change the L2")
	}
	if (memsys.Config{SizeBytes: 4 << 20, Ways: 16}).Sets() != c.L2.Sets() {
		t.Fatal("sets mismatch")
	}
}

func TestSequentialVariant(t *testing.T) {
	for _, base := range []*Config{NUMA16(), CMP8()} {
		s := Sequential(base)
		if s.Procs != 1 {
			t.Fatalf("%s: sequential Procs = %d", base.Name, s.Procs)
		}
		if s.LatMemRemote != s.LatMemLocal || s.LatCacheRemote != s.LatMemLocal {
			t.Fatalf("%s: sequential baseline must have all data local", base.Name)
		}
		if s.topo.Nodes() != 1 {
			t.Fatalf("%s: sequential topology has %d nodes", base.Name, s.topo.Nodes())
		}
		// The original must be untouched.
		if base.Procs == 1 {
			t.Fatal("Sequential mutated its argument")
		}
	}
}

func TestCommitCostOrdering(t *testing.T) {
	n, c := NUMA16(), CMP8()
	// The NUMA commit streams to distributed memories and must be several
	// times costlier per line than the on-chip CMP commit; this is what
	// halves the Commit/Execution ratios in Table 3 on the CMP.
	if n.CommitPerLine < 2*c.CommitPerLine {
		t.Fatalf("NUMA CommitPerLine (%d) should be well above CMP (%d)", n.CommitPerLine, c.CommitPerLine)
	}
	if n.TokenPass <= c.TokenPass {
		t.Fatal("token passing must be cheaper on chip")
	}
	if n.FMMRestoreLine <= c.FMMRestoreLine {
		t.Fatal("FMM recovery per line must be cheaper on chip")
	}
}

func TestNewNetworkIsFresh(t *testing.T) {
	c := CMP8()
	n1 := c.NewNetwork()
	n1.Transfer(0, 0, 0, 10)
	n2 := c.NewNetwork()
	if n2.QueueDelay() != 0 || n2.IfDelay() != 0 {
		t.Fatal("NewNetwork shared state across instances")
	}
}

func TestLatMemoryHelper(t *testing.T) {
	c := NUMA16()
	if c.LatMemory(true) != 75 || c.LatMemory(false) != 208 {
		t.Fatal("LatMemory helper wrong")
	}
}

func TestKindString(t *testing.T) {
	if NUMA.String() != "NUMA" || CMP.String() != "CMP" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestNUMASizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		c := ScalableNUMA(n)
		if c.Procs != n || c.Banks != n {
			t.Errorf("NUMA(%d): procs %d banks %d", n, c.Procs, c.Banks)
		}
		if c.Topology().Nodes() < n {
			t.Errorf("NUMA(%d): topology has %d nodes", n, c.Topology().Nodes())
		}
		if c.L2.SizeBytes != 512<<10 {
			t.Errorf("NUMA(%d): per-node caches must not change", n)
		}
	}
	if ScalableNUMA(16).Topology().Name() != "4x4 mesh" {
		t.Errorf("ScalableNUMA(16) mesh = %q", ScalableNUMA(16).Topology().Name())
	}
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4}, 32: {8, 4}, 64: {8, 8}, 12: {4, 3}}
	for n, want := range cases {
		c, r := meshDims(n)
		if c != want[0] || r != want[1] {
			t.Errorf("meshDims(%d) = (%d,%d), want %v", n, c, r, want)
		}
		if c*r < n {
			t.Errorf("meshDims(%d) too small", n)
		}
	}
}

func TestMeshDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("meshDims(0) must panic")
		}
	}()
	meshDims(0)
}
