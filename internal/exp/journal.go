package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/iofault"
)

// The campaign journal is an append-only JSONL write-ahead log of a sweep's
// progress: one record per line, fsync'd as written, so after any crash the
// journal tells a resuming process which jobs completed (their results are
// in the cache) and which were in flight (and where their latest checkpoint
// lives). The log is the source of truth for -resume on the campaign CLIs.
//
// Crash consistency: a record is appended (and synced) strictly AFTER the
// state it describes is durable — job-done after the cache Put returned,
// checkpoint after WriteCheckpointFile renamed the file in place. A torn
// final line (the process died mid-append) therefore never points at
// missing state; readers tolerate and discard it, and OpenJournal truncates
// it before appending so the log stays well-formed.

// Journal record types.
const (
	RecCampaign   = "campaign"   // header: campaign name and metadata
	RecJobStart   = "job-start"  // a worker began executing the job
	RecCheckpoint = "checkpoint" // a checkpoint file for the job is durable
	RecJobDone    = "job-done"   // the job finished (result cached, or Err)

	// Cluster records, written by the tlsserve coordinator: a lease grants a
	// job to a named worker; a lease-return voids the grant without an
	// outcome (worker drain, lease expiry, or a duplicate issue losing the
	// race). Job completion reuses RecJobDone, carrying the winning worker.
	RecLease       = "lease"        // job leased to a worker
	RecLeaseReturn = "lease-return" // lease voided without an outcome
)

// JournalRecord is one line of the campaign journal.
type JournalRecord struct {
	T string `json:"t"`
	// Wall is the wall-clock append time (operational context only; nothing
	// replays it).
	Wall string `json:"wall,omitempty"`
	// Name labels the campaign (RecCampaign).
	Name string `json:"name,omitempty"`
	// Campaign is the campaign correlation ID (trace.MintCampaign) that ties
	// this record to fleet spans, structured logs and fsck reports. Journals
	// opened through SetCampaign stamp it on every record.
	Campaign string `json:"campaign,omitempty"`
	// Key is the job's content hash — the join key against the result cache
	// and checkpoint files.
	Key   string `json:"key,omitempty"`
	Label string `json:"label,omitempty"`
	// Ckpt is the durable checkpoint file (RecCheckpoint).
	Ckpt string `json:"ckpt,omitempty"`
	// Commits is the checkpoint's progress, for operators reading the log.
	Commits int `json:"commits,omitempty"`
	// Cached marks a job-done served from the cache without executing.
	Cached bool `json:"cached,omitempty"`
	// Worker names the fleet worker holding (RecLease, RecLeaseReturn) or
	// having produced (RecJobDone) the record, for cluster campaigns.
	Worker string `json:"worker,omitempty"`
	// Lease is the coordinator's lease ID (RecLease, RecLeaseReturn).
	Lease uint64 `json:"lease,omitempty"`
	// Err records a permanent failure (RecJobDone).
	Err string `json:"err,omitempty"`
	// Data carries an optional campaign-specific payload on job-done
	// records (tlschaos stores the case outcome here, so a resume can
	// rebuild its report without re-running completed cases).
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an open campaign journal. Appends are serialized and each is
// fsync'd before returning, so an acknowledged record survives kill -9.
//
// The journal enforces the fsyncgate rule: after the first failed write or
// fsync it is poisoned — every later Append fails with the original error
// instead of retrying, because the kernel may have dropped the dirty pages
// and a "successful" retry would acknowledge a record that is not on disk.
type Journal struct {
	mu       sync.Mutex
	fs       iofault.FS
	f        iofault.File
	path     string
	campaign string           // correlation ID stamped on every record
	broken   error            // sticky first append failure (fsyncgate poisoning)
	now      func() time.Time // clock behind the Wall stamp (tests, replay drills)
}

// OpenJournal opens (creating if necessary) the journal at path for
// appending. If the existing log ends in a torn line from a crashed writer,
// the tail is truncated away first so the log stays one valid record per
// line.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(iofault.Real, path)
}

// OpenJournalFS is OpenJournal writing through an explicit filesystem seam
// (fault drills and crash-consistency tests inject one; nil means the real
// OS).
func OpenJournalFS(fsys iofault.FS, path string) (*Journal, error) {
	if fsys == nil {
		fsys = iofault.Real
	}
	dir := filepath.Dir(path)
	if dir != "." {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Make the journal file itself durable: creating it is a directory
	// mutation, and an acknowledged record in a file whose name never
	// reached disk is still lost.
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: directory sync: %w", path, err)
	}
	end, err := completePrefixLen(fsys, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{fs: fsys, f: f, path: path, now: time.Now}, nil
}

// completePrefixLen returns the byte length of the file's longest prefix of
// complete ('\n'-terminated) lines.
func completePrefixLen(fsys iofault.FS, path string) (int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		return int64(i + 1), nil
	}
	return 0, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// SetClock replaces the clock behind the Wall stamp. Wall is operational
// context only — replay never reads it — but deterministic drills that
// byte-compare journals across runs inject a fixed clock here so the stamp
// stops being the one nondeterministic field on the line.
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.now = now
}

// SetCampaign sets the campaign correlation ID stamped on every record
// appended from now on (records that already carry one keep theirs).
func (j *Journal) SetCampaign(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.campaign = id
}

// Campaign returns the correlation ID set by SetCampaign.
func (j *Journal) Campaign() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.campaign
}

// Append durably writes one record: marshal, write the line, fsync. The
// record is on disk when Append returns nil; after any write or sync error
// the journal is poisoned and every later Append fails fast (see Broken).
func (j *Journal) Append(rec JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("journal %s poisoned by earlier failure: %w", j.path, j.broken)
	}
	if rec.Wall == "" {
		rec.Wall = j.now().UTC().Format(time.RFC3339)
	}
	if rec.Campaign == "" {
		rec.Campaign = j.campaign
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		// A partial line may be on disk; appending more would corrupt an
		// interior line, and the torn-tail forgiveness only covers the
		// final one. Poison the journal.
		j.broken = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		// fsyncgate: the kernel may have dropped the dirty pages while
		// marking them clean. Retrying the fsync could report success for
		// data that never reached disk, so the journal must never retry.
		j.broken = err
		return err
	}
	return nil
}

// Broken returns the sticky error that poisoned the journal, or nil while
// it is healthy.
func (j *Journal) Broken() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal reads every complete record in the journal at path. A torn
// final line (crash mid-append) is silently discarded; a malformed interior
// line is an error, because it means something other than a crashed
// appender wrote the file.
func ReadJournal(path string) ([]JournalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []JournalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was interior after all.
			return nil, pendingErr
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Hold the error: if this turns out to be the last line, it is a
			// torn tail and is forgiven.
			pendingErr = fmt.Errorf("journal %s line %d: %w", path, lineNo, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return recs, nil
}

// CampaignState is the resume-relevant digest of a journal: which jobs
// completed successfully, and the latest durable checkpoint of each job that
// was still in flight.
type CampaignState struct {
	// Name is the campaign label from the header record, if any.
	Name string
	// Campaign is the correlation ID recovered from the journal's records,
	// so tools (tlsfsck) can name the campaign they verified.
	Campaign string
	// Done holds the keys of jobs whose job-done record reported success;
	// their results are in the cache (resume re-submits them and the cache
	// answers instantly).
	Done map[string]bool
	// Checkpoints maps in-flight job keys to their latest checkpoint file.
	Checkpoints map[string]string
	// Failed maps job keys to the recorded error of a permanent failure.
	Failed map[string]string
	// Leases maps job keys that were leased out (and neither completed nor
	// returned) to the worker last holding them. A resuming coordinator
	// re-queues these: the lease died with the previous process.
	Leases map[string]string
	// Outcomes maps completed job keys to the Data payload of their job-done
	// record, for campaigns (tlschaos, cluster chaos jobs) whose outcome is
	// not reconstructible from the result cache alone.
	Outcomes map[string]json.RawMessage
}

// ReplayJournal folds records into the state a resume needs.
func ReplayJournal(recs []JournalRecord) CampaignState {
	st := CampaignState{
		Done:        make(map[string]bool),
		Checkpoints: make(map[string]string),
		Failed:      make(map[string]string),
		Leases:      make(map[string]string),
		Outcomes:    make(map[string]json.RawMessage),
	}
	for _, rec := range recs {
		if st.Campaign == "" && rec.Campaign != "" {
			st.Campaign = rec.Campaign
		}
		switch rec.T {
		case RecCampaign:
			st.Name = rec.Name
		case RecCheckpoint:
			if rec.Key != "" && rec.Ckpt != "" {
				st.Checkpoints[rec.Key] = rec.Ckpt
			}
		case RecLease:
			if rec.Key != "" {
				st.Leases[rec.Key] = rec.Worker
			}
		case RecLeaseReturn:
			delete(st.Leases, rec.Key)
		case RecJobDone:
			if rec.Key == "" {
				break
			}
			if rec.Err == "" {
				st.Done[rec.Key] = true
				delete(st.Failed, rec.Key)
				if rec.Data != nil {
					st.Outcomes[rec.Key] = rec.Data
				}
			} else {
				st.Failed[rec.Key] = rec.Err
			}
			delete(st.Checkpoints, rec.Key)
			delete(st.Leases, rec.Key)
		}
	}
	return st
}

// LoadCampaign reads and replays the journal at path.
func LoadCampaign(path string) (CampaignState, error) {
	recs, err := ReadJournal(path)
	if err != nil {
		return CampaignState{}, err
	}
	return ReplayJournal(recs), nil
}
