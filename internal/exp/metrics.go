package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// Metrics accumulates orchestration statistics across every batch a Runner
// executes with it: job counts, cache hits, per-job wall times, simulated-
// cycle throughput, and an ETA. The zero value is ready to use; all methods
// are safe for concurrent use.
type Metrics struct {
	mu          sync.Mutex
	start       time.Time
	total       int
	done        int
	hits        int
	deduped     int
	executed    int
	errors      int
	retries     int
	timeouts    int
	quarantined int
	putErrors   int
	journalErrs int
	heal        HealReport
	wall        stats.Tally // per-executed-job wall time, seconds
	simCycles   uint64
}

// batchQueued records that n more jobs have been submitted.
func (m *Metrics) batchQueued(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		m.start = time.Now()
	}
	m.total += n
}

// observe records one finished job (executed, cached, or failed).
func (m *Metrics) observe(jr JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done++
	switch {
	case jr.Err != nil:
		m.errors++
		if jr.TimedOut {
			m.timeouts++
		}
		if jr.Quarantined {
			m.quarantined++
		}
	case jr.Cached:
		m.hits++
	case jr.Deduped:
		m.deduped++
	default:
		m.executed++
		m.wall.Observe(jr.Wall.Seconds())
		m.simCycles += uint64(jr.Result.ExecCycles)
	}
	if jr.Attempts > 1 {
		m.retries += jr.Attempts - 1
	}
}

// cachePutFailed records a cache write that could not be persisted (a full
// disk or unwritable cache directory); the job's result is unaffected.
func (m *Metrics) cachePutFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.putErrors++
}

// journalAppendFailed records a WAL append that could not be persisted: the
// campaign continues, but a crash before the next successful append loses
// that progress record, so the count must be visible.
func (m *Metrics) journalAppendFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalErrs++
}

// ObserveHeal folds the cache's latest self-healing scan into the metrics
// (idempotent: the report replaces the previous one).
func (m *Metrics) ObserveHeal(rep HealReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.heal = rep
}

// Snapshot is a point-in-time view of a Metrics.
type Snapshot struct {
	// Job counts: Done = CacheHits + Deduped + Executed + Errors.
	Total, Done, CacheHits, Executed, Errors, Retries int
	// Deduped counts successful jobs that shared a concurrent identical
	// job's execution (singleflight) instead of running themselves.
	Deduped int
	// Timeouts and Quarantined break the errors down: watchdog-cancelled
	// jobs and jobs skipped because an identical one failed permanently.
	Timeouts, Quarantined int
	// CachePutErrors counts results that could not be persisted to the
	// cache (e.g. a full disk); the results themselves were still used.
	CachePutErrors int
	// JournalErrors counts WAL appends that could not be persisted (a full
	// disk, or a journal poisoned by a failed fsync).
	JournalErrors int
	// CacheQuarantined and CacheQuarantineErrors report the startup heal
	// scan: corrupt entries set aside, and corrupt entries that could not
	// even be renamed aside.
	CacheQuarantined, CacheQuarantineErrors int
	// Elapsed is the wall time since the first batch was queued.
	Elapsed time.Duration
	// JobWallMean and JobWallMax summarize per-executed-job wall times.
	JobWallMean, JobWallMax time.Duration
	// SimCycles is the total simulated cycles of executed jobs.
	SimCycles uint64
}

// Snapshot returns the current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Total: m.total, Done: m.done, CacheHits: m.hits, Deduped: m.deduped,
		Executed: m.executed, Errors: m.errors, Retries: m.retries,
		Timeouts: m.timeouts, Quarantined: m.quarantined,
		CachePutErrors:        m.putErrors,
		JournalErrors:         m.journalErrs,
		CacheQuarantined:      m.heal.Quarantined,
		CacheQuarantineErrors: m.heal.QuarantineFailures + m.heal.RemoveFailures,
		SimCycles:             m.simCycles,
	}
	if !m.start.IsZero() {
		s.Elapsed = time.Since(m.start)
	}
	if m.wall.Count() > 0 {
		s.JobWallMean = time.Duration(m.wall.Mean() * float64(time.Second))
		s.JobWallMax = time.Duration(m.wall.Max() * float64(time.Second))
	}
	return s
}

// Remaining returns how many submitted jobs have not finished.
func (s Snapshot) Remaining() int { return s.Total - s.Done }

// ETA estimates the time to drain the remaining jobs at the observed rate
// (0 when nothing has finished yet).
func (s Snapshot) ETA() time.Duration {
	if s.Done == 0 || s.Remaining() <= 0 {
		return 0
	}
	return time.Duration(float64(s.Elapsed) / float64(s.Done) * float64(s.Remaining()))
}

// CyclesPerSecond is the simulated-cycle throughput of the run so far.
func (s Snapshot) CyclesPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.Elapsed.Seconds()
}

// String renders the one-line summary the -metrics flag prints.
func (s Snapshot) String() string {
	line := fmt.Sprintf("metrics: %d/%d jobs (%d cached, %d simulated, %d errors",
		s.Done, s.Total, s.CacheHits, s.Executed, s.Errors)
	if s.Deduped > 0 {
		line += fmt.Sprintf(", %d deduped", s.Deduped)
	}
	if s.Retries > 0 {
		line += fmt.Sprintf(", %d retries", s.Retries)
	}
	if s.Timeouts > 0 {
		line += fmt.Sprintf(", %d timeouts", s.Timeouts)
	}
	if s.Quarantined > 0 {
		line += fmt.Sprintf(", %d quarantined", s.Quarantined)
	}
	if s.CachePutErrors > 0 {
		line += fmt.Sprintf(", %d cache-put errors", s.CachePutErrors)
	}
	if s.JournalErrors > 0 {
		line += fmt.Sprintf(", %d journal errors", s.JournalErrors)
	}
	if s.CacheQuarantined > 0 {
		line += fmt.Sprintf(", %d cache entries quarantined", s.CacheQuarantined)
	}
	if s.CacheQuarantineErrors > 0 {
		line += fmt.Sprintf(", %d cache quarantine errors", s.CacheQuarantineErrors)
	}
	line += fmt.Sprintf("), %s simulated at %s/s, job wall mean %s max %s, elapsed %s",
		siCycles(float64(s.SimCycles)), siCycles(s.CyclesPerSecond()),
		s.JobWallMean.Round(time.Millisecond), s.JobWallMax.Round(time.Millisecond),
		s.Elapsed.Round(time.Millisecond))
	if r := s.Remaining(); r > 0 {
		line += fmt.Sprintf(", %d remaining (eta %s)", r, s.ETA().Round(time.Second))
	}
	return line
}

// siCycles formats a cycle count with an SI prefix.
func siCycles(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f Gcycles", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f Mcycles", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f Kcycles", v/1e3)
	default:
		return fmt.Sprintf("%.0f cycles", v)
	}
}
