package exp

import (
	"context"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// ExitInterrupted is the campaign CLIs' exit code after a graceful shutdown
// (128 + SIGINT, the shell convention).
const ExitInterrupted = 130

// ExitPowerCut is the campaign CLIs' exit code when an injected storage
// fault plan's power cut fires (-io-chaos cut=N): the process dies at the
// exact moment the simulated machine loses power, leaving whatever the cut
// left on disk for tlsfsck and -resume to deal with.
const ExitPowerCut = 3

// Shutdown implements the campaign CLIs' two-stage signal protocol:
//
//	first SIGINT/SIGTERM  — cancel the context; workers checkpoint their
//	                        in-flight simulations, the journal is flushed,
//	                        and the process exits with code 130;
//	second signal         — hard exit immediately (the user means it).
type Shutdown struct {
	ctx         context.Context
	cancel      context.CancelFunc
	interrupted atomic.Bool
	stop        func()
}

// NewShutdown installs the handler and returns the controller. Call Stop
// when the campaign finishes to restore default signal behavior.
func NewShutdown(parent context.Context) *Shutdown {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	s := &Shutdown{ctx: ctx, cancel: cancel}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	s.stop = func() {
		signal.Stop(ch)
		close(done)
	}
	go func() {
		select {
		case <-ch:
			s.interrupted.Store(true)
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			os.Exit(ExitInterrupted)
		case <-done:
		}
	}()
	return s
}

// Context is cancelled by the first signal.
func (s *Shutdown) Context() context.Context { return s.ctx }

// Interrupted reports whether a signal arrived.
func (s *Shutdown) Interrupted() bool { return s.interrupted.Load() }

// ExitCode maps a campaign's natural exit code through the shutdown state:
// an interrupted campaign exits 130 regardless of how far it got.
func (s *Shutdown) ExitCode(natural int) int {
	if s.Interrupted() {
		return ExitInterrupted
	}
	return natural
}

// Stop uninstalls the signal handler and releases the context.
func (s *Shutdown) Stop() {
	s.stop()
	s.cancel()
}
