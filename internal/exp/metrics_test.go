package exp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestMetricsAccounting(t *testing.T) {
	m := &Metrics{}
	m.batchQueued(4)
	m.observe(JobResult{Cached: true})
	m.observe(JobResult{Attempts: 1, Wall: 10 * time.Millisecond,
		Result: sim.Result{ExecCycles: 1000}})
	m.observe(JobResult{Attempts: 2, Wall: 30 * time.Millisecond,
		Result: sim.Result{ExecCycles: 3000}})
	m.observe(JobResult{Attempts: 2, Err: errors.New("boom")})

	s := m.Snapshot()
	if s.Total != 4 || s.Done != 4 || s.Remaining() != 0 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.CacheHits != 1 || s.Executed != 2 || s.Errors != 1 || s.Retries != 2 {
		t.Fatalf("classification wrong: %+v", s)
	}
	if s.SimCycles != 4000 {
		t.Fatalf("sim cycles = %d, want 4000", s.SimCycles)
	}
	if s.JobWallMean != 20*time.Millisecond || s.JobWallMax != 30*time.Millisecond {
		t.Fatalf("wall tally wrong: mean %s max %s", s.JobWallMean, s.JobWallMax)
	}
	if s.Elapsed <= 0 || s.CyclesPerSecond() <= 0 {
		t.Fatalf("throughput not measured: %+v", s)
	}
}

func TestMetricsETA(t *testing.T) {
	m := &Metrics{}
	m.batchQueued(10)
	m.observe(JobResult{Attempts: 1})
	s := m.Snapshot()
	if s.Remaining() != 9 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	if s.ETA() <= 0 {
		t.Fatal("ETA must be positive with work remaining")
	}
	var empty Snapshot
	if empty.ETA() != 0 || empty.CyclesPerSecond() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Total: 49, Done: 37, CacheHits: 12, Executed: 25,
		Elapsed: 2 * time.Second, SimCycles: 1_850_000_000}
	line := s.String()
	for _, want := range []string{"37/49 jobs", "12 cached", "25 simulated", "Gcycles", "remaining"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line %q missing %q", line, want)
		}
	}
	done := Snapshot{Total: 5, Done: 5, Executed: 5, Elapsed: time.Second, SimCycles: 500}
	if strings.Contains(done.String(), "remaining") {
		t.Error("finished snapshot must not print a remainder")
	}
}

func TestSICycles(t *testing.T) {
	cases := map[float64]string{
		12:            "12 cycles",
		4_500:         "4.50 Kcycles",
		2_300_000:     "2.30 Mcycles",
		7_800_000_000: "7.80 Gcycles",
	}
	for v, want := range cases {
		if got := siCycles(v); got != want {
			t.Errorf("siCycles(%g) = %q, want %q", v, got, want)
		}
	}
}
