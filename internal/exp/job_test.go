package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// tinyProfile is a fast workload for orchestrator tests.
func tinyProfile() workload.Profile {
	return workload.Tree().Scale(0.05, 0.05, 0.25)
}

func tinyJob() Job {
	return Job{
		Machine: machine.CMP8(),
		Scheme:  core.MultiTMVLazy,
		Profile: tinyProfile(),
		Seed:    1,
	}
}

func TestKeyStable(t *testing.T) {
	a, b := tinyJob(), tinyJob()
	if a.Key() != b.Key() {
		t.Fatalf("equal jobs hash differently: %s vs %s", a.Key(), b.Key())
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key is not a hex sha256: %q", a.Key())
	}
	if a.Key() != a.Key() {
		t.Fatal("key not stable across calls")
	}
}

func TestKeyDistinguishesInputs(t *testing.T) {
	base := tinyJob()
	seen := map[string]string{base.Key(): "base"}
	variants := map[string]Job{}

	j := tinyJob()
	j.Seed = 2
	variants["seed"] = j

	j = tinyJob()
	j.Scheme = core.SingleTEager
	variants["scheme"] = j

	j = tinyJob()
	j.Sequential = true
	variants["sequential"] = j

	j = tinyJob()
	j.Ablation.LineGranularity = true
	variants["ablation"] = j

	j = tinyJob()
	j.Profile.DepProb = 0.5
	j.Profile.DepReach = 4
	variants["profile knob"] = j

	j = tinyJob()
	j.Machine = machine.NUMA16()
	variants["machine"] = j

	// NUMA16BigL2 differs from NUMA16 only in the L2 geometry: the hash
	// must see nested machine fields.
	j = tinyJob()
	j.Machine = machine.NUMA16BigL2()
	variants["machine L2 geometry"] = j

	for what, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", what, prev)
		}
		seen[k] = what
	}
}

func TestLabel(t *testing.T) {
	j := tinyJob()
	if got := j.Label(); !strings.Contains(got, "CMP8") || !strings.Contains(got, "Tree") {
		t.Fatalf("label %q missing machine/app", got)
	}
	j.Sequential = true
	if !strings.Contains(j.Label(), "sequential") {
		t.Fatalf("sequential label wrong: %q", j.Label())
	}
	j.Machine = nil
	if !strings.Contains(j.Label(), "<nil>") {
		t.Fatalf("nil-machine label wrong: %q", j.Label())
	}
}

func TestExecuteMatchesDirectRun(t *testing.T) {
	j := tinyJob()
	direct := j.Execute()
	again := j.Execute()
	if direct.ExecCycles != again.ExecCycles || direct.Commits != again.Commits {
		t.Fatalf("Execute not deterministic: %d vs %d cycles", direct.ExecCycles, again.ExecCycles)
	}
	seq := Job{Machine: j.Machine, Profile: j.Profile, Seed: j.Seed, Sequential: true}.Execute()
	if seq.ExecCycles <= direct.ExecCycles {
		t.Fatalf("sequential baseline (%d) should be slower than speculative (%d)",
			seq.ExecCycles, direct.ExecCycles)
	}
}
