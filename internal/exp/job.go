// Package exp is the experiment orchestrator. It turns the repository's
// simulation sweeps — every figure, table and scaling extension of the
// paper's evaluation — into batches of canonical, content-hashable Jobs
// executed by a worker pool, with a persistent on-disk result cache and a
// run-metrics layer.
//
// The design exploits the property repro.Run documents: every simulation is
// a deterministic, isolated function of (machine, scheme, profile, seed,
// ablation knobs). That makes jobs freely reorderable across workers — the
// assembled outputs are byte-identical to a serial sweep — and makes a
// stable content hash of the inputs a sound memoization key, so a warm
// rerun only re-simulates what changed.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablation bundles the simulator's ablation knobs so a Job can describe the
// ablation benchmarks as well as the paper's design points. The zero value
// is the baseline protocol.
type Ablation struct {
	// LineGranularity makes violation detection operate at cache-line
	// granularity instead of the baseline word granularity.
	LineGranularity bool
	// ForceMTID replaces VCL version combining with the memory-side
	// task-ID filter (the Zhang99&T alternative for in-order lazy merging).
	ForceMTID bool
	// ORBCommit switches eager merging from write-backs to ORB-style
	// ownership requests.
	ORBCommit bool
}

// Job is the canonical description of one simulation: everything the run is
// a deterministic function of, and nothing else. Two Jobs with equal fields
// produce equal Results, which is what makes Key a sound cache key.
type Job struct {
	// Machine is the simulated architecture. Its unexported topology is
	// derived from Kind, Procs and Banks by the machine constructors, so
	// the exported fields fully determine it (and hence the hash).
	Machine *machine.Config
	// Scheme is the buffering design point. Ignored when Sequential is set.
	Scheme core.Scheme
	// Profile is the application's speculative section.
	Profile workload.Profile
	// Seed drives the deterministic workload generator.
	Seed uint64
	// Sequential selects the sequential-execution baseline run used to
	// normalize speedups instead of a speculative run of Scheme.
	Sequential bool
	// Ablation applies protocol ablation knobs (zero = baseline).
	Ablation Ablation
	// Faults, when non-nil, arms a deterministic fault-injection plan on
	// speculative runs. The plan is a pure function of the config, so it IS
	// part of the job's identity (and hence of Key): a faulted run and a
	// clean run of the same design point are different experiments.
	Faults *fault.Config
	// Invariants arms the runtime invariant checker and the final-memory
	// oracle on speculative runs; the verdict travels on JobResult.Chaos.
	// Like Faults it changes what the job reports, so it is part of Key.
	Invariants bool

	// Obs, when non-nil, installs an observability registry and sampler on
	// the built simulator. It is deliberately NOT part of Key: observability
	// never changes a Result (the observer-effect tests enforce this), so
	// observed and unobserved runs share cache entries — which also means a
	// cache hit skips the simulation and leaves the registry empty.
	Obs *obs.Config
}

// Key returns the job's stable content hash: a hex SHA-256 over the
// canonical JSON encoding of every input field. Equal jobs hash equally
// across processes, which keys the persistent result cache.
func (j Job) Key() string {
	// A canonical struct keeps the encoding independent of any future
	// non-input fields on Job itself.
	canonical := struct {
		Machine    *machine.Config
		Scheme     core.Scheme
		Profile    workload.Profile
		Seed       uint64
		Sequential bool
		Ablation   Ablation
		Faults     *fault.Config `json:",omitempty"`
		Invariants bool          `json:",omitempty"`
	}{j.Machine, j.Scheme, j.Profile, j.Seed, j.Sequential, j.Ablation, j.Faults, j.Invariants}
	data, err := json.Marshal(canonical)
	if err != nil {
		// Only unmarshalable values (NaN floats in a profile) can land
		// here; fold the error into the hash rather than failing a sweep.
		data = []byte("unhashable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Label returns a short human-readable description for progress and error
// reporting.
func (j Job) Label() string {
	m := "<nil>"
	if j.Machine != nil {
		m = j.Machine.Name
	}
	k := j.Scheme.String()
	if j.Sequential {
		k = "sequential"
	}
	return fmt.Sprintf("%s/%s/%s seed %d", m, j.Profile.Name, k, j.Seed)
}

// Build constructs (without running) the simulator the job describes, so a
// caller can checkpoint, interrupt, or restore it before Run.
func (j Job) Build() *sim.Simulator {
	s, _ := j.build()
	return s
}

// build constructs the simulator and, when the job arms fault injection,
// returns the live plan so the caller can derive the chaos verdict after the
// run. Faults and the invariant checker only arm speculative runs: the
// sequential baseline has no speculative protocol to stress or to check.
func (j Job) build() (*sim.Simulator, *fault.Plan) {
	if j.Sequential {
		s := sim.NewSequential(j.Machine, j.Profile, j.Seed)
		if j.Obs != nil {
			s.Observe(*j.Obs)
		}
		return s, nil
	}
	s := sim.New(j.Machine, j.Scheme, workload.NewGenerator(j.Profile, j.Seed))
	if j.Ablation.LineGranularity {
		s.SetLineGranularityConflicts(true)
	}
	if j.Ablation.ForceMTID {
		s.ForceMTID()
	}
	if j.Ablation.ORBCommit {
		s.SetORBCommit(true)
	}
	var plan *fault.Plan
	if j.Faults != nil {
		plan = fault.NewPlan(*j.Faults)
		s.InjectFaults(plan)
	}
	if j.Invariants {
		s.EnableInvariantChecks()
	}
	if j.Obs != nil {
		s.Observe(*j.Obs)
	}
	return s, plan
}

// chaotic reports whether the job carries chaos instrumentation. Chaotic
// jobs bypass the persistent result cache: their verdict (invariant report,
// memory-oracle outcome, injection counts) is not part of sim.Result, so a
// cache hit could not reconstruct it.
func (j Job) chaotic() bool {
	return j.Invariants || j.Faults != nil
}

// chaosSampleCap bounds the invariant-violation samples a verdict retains.
const chaosSampleCap = 5

// ChaosVerdict is the chaos-campaign outcome of an executed job: what the
// invariant checker and the final-memory oracle reported, and what the fault
// plan actually injected.
type ChaosVerdict struct {
	// Violations is the invariant checker's violation count; Samples holds
	// up to its retained sample messages.
	Violations int      `json:"violations"`
	Samples    []string `json:"samples,omitempty"`
	// Checked and WrongLines are the final-memory oracle's verdict: lines
	// compared against sequential execution, and mismatches found.
	Checked    int `json:"checked"`
	WrongLines int `json:"wrong_lines"`
	// Faults is how many faults the plan injected; FaultMix is the per-kind
	// breakdown ("none" for a quiet plan).
	Faults   int    `json:"faults"`
	FaultMix string `json:"fault_mix"`
}

// verdict derives the chaos verdict after s has run (nil for non-chaotic
// jobs). VerifyFinalMemory is itself deterministic, so the verdict is as
// replayable as the result.
func (j Job) verdict(s *sim.Simulator, plan *fault.Plan) *ChaosVerdict {
	if !j.chaotic() || j.Sequential {
		return nil
	}
	v := &ChaosVerdict{FaultMix: "none"}
	if plan != nil {
		v.Faults = plan.Total()
		v.FaultMix = plan.Summary()
	}
	if j.Invariants {
		v.Violations = s.InvariantViolationCount()
		for i, viol := range s.InvariantViolations() {
			if i == chaosSampleCap {
				break
			}
			v.Samples = append(v.Samples, viol.String())
		}
		v.Checked, v.WrongLines = s.VerifyFinalMemory()
	}
	return v
}

// Execute runs the simulation the job describes. It is a pure function of
// the job's fields.
func (j Job) Execute() sim.Result {
	res, _ := j.ExecuteWithVerdict()
	return res
}

// ExecuteWithVerdict runs the simulation and, for chaotic jobs, derives the
// chaos verdict from the finished simulator.
func (j Job) ExecuteWithVerdict() (sim.Result, *ChaosVerdict) {
	s, plan := j.build()
	res := s.Run()
	return res, j.verdict(s, plan)
}
