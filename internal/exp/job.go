// Package exp is the experiment orchestrator. It turns the repository's
// simulation sweeps — every figure, table and scaling extension of the
// paper's evaluation — into batches of canonical, content-hashable Jobs
// executed by a worker pool, with a persistent on-disk result cache and a
// run-metrics layer.
//
// The design exploits the property repro.Run documents: every simulation is
// a deterministic, isolated function of (machine, scheme, profile, seed,
// ablation knobs). That makes jobs freely reorderable across workers — the
// assembled outputs are byte-identical to a serial sweep — and makes a
// stable content hash of the inputs a sound memoization key, so a warm
// rerun only re-simulates what changed.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablation bundles the simulator's ablation knobs so a Job can describe the
// ablation benchmarks as well as the paper's design points. The zero value
// is the baseline protocol.
type Ablation struct {
	// LineGranularity makes violation detection operate at cache-line
	// granularity instead of the baseline word granularity.
	LineGranularity bool
	// ForceMTID replaces VCL version combining with the memory-side
	// task-ID filter (the Zhang99&T alternative for in-order lazy merging).
	ForceMTID bool
	// ORBCommit switches eager merging from write-backs to ORB-style
	// ownership requests.
	ORBCommit bool
}

// Job is the canonical description of one simulation: everything the run is
// a deterministic function of, and nothing else. Two Jobs with equal fields
// produce equal Results, which is what makes Key a sound cache key.
type Job struct {
	// Machine is the simulated architecture. Its unexported topology is
	// derived from Kind, Procs and Banks by the machine constructors, so
	// the exported fields fully determine it (and hence the hash).
	Machine *machine.Config
	// Scheme is the buffering design point. Ignored when Sequential is set.
	Scheme core.Scheme
	// Profile is the application's speculative section.
	Profile workload.Profile
	// Seed drives the deterministic workload generator.
	Seed uint64
	// Sequential selects the sequential-execution baseline run used to
	// normalize speedups instead of a speculative run of Scheme.
	Sequential bool
	// Ablation applies protocol ablation knobs (zero = baseline).
	Ablation Ablation

	// Obs, when non-nil, installs an observability registry and sampler on
	// the built simulator. It is deliberately NOT part of Key: observability
	// never changes a Result (the observer-effect tests enforce this), so
	// observed and unobserved runs share cache entries — which also means a
	// cache hit skips the simulation and leaves the registry empty.
	Obs *obs.Config
}

// Key returns the job's stable content hash: a hex SHA-256 over the
// canonical JSON encoding of every input field. Equal jobs hash equally
// across processes, which keys the persistent result cache.
func (j Job) Key() string {
	// A canonical struct keeps the encoding independent of any future
	// non-input fields on Job itself.
	canonical := struct {
		Machine    *machine.Config
		Scheme     core.Scheme
		Profile    workload.Profile
		Seed       uint64
		Sequential bool
		Ablation   Ablation
	}{j.Machine, j.Scheme, j.Profile, j.Seed, j.Sequential, j.Ablation}
	data, err := json.Marshal(canonical)
	if err != nil {
		// Only unmarshalable values (NaN floats in a profile) can land
		// here; fold the error into the hash rather than failing a sweep.
		data = []byte("unhashable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Label returns a short human-readable description for progress and error
// reporting.
func (j Job) Label() string {
	m := "<nil>"
	if j.Machine != nil {
		m = j.Machine.Name
	}
	k := j.Scheme.String()
	if j.Sequential {
		k = "sequential"
	}
	return fmt.Sprintf("%s/%s/%s seed %d", m, j.Profile.Name, k, j.Seed)
}

// Build constructs (without running) the simulator the job describes, so a
// caller can checkpoint, interrupt, or restore it before Run.
func (j Job) Build() *sim.Simulator {
	if j.Sequential {
		s := sim.NewSequential(j.Machine, j.Profile, j.Seed)
		if j.Obs != nil {
			s.Observe(*j.Obs)
		}
		return s
	}
	s := sim.New(j.Machine, j.Scheme, workload.NewGenerator(j.Profile, j.Seed))
	if j.Ablation.LineGranularity {
		s.SetLineGranularityConflicts(true)
	}
	if j.Ablation.ForceMTID {
		s.ForceMTID()
	}
	if j.Ablation.ORBCommit {
		s.SetORBCommit(true)
	}
	if j.Obs != nil {
		s.Observe(*j.Obs)
	}
	return s
}

// Execute runs the simulation the job describes. It is a pure function of
// the job's fields.
func (j Job) Execute() sim.Result {
	return j.Build().Run()
}
