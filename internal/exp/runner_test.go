package exp

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// testBatch builds a mixed batch: one sequential baseline plus several
// scheme runs over two seeds.
func testBatch() []Job {
	prof := tinyProfile()
	cfg := machine.CMP8()
	jobs := []Job{{Machine: cfg, Profile: prof, Seed: 1, Sequential: true}}
	for _, sch := range []core.Scheme{core.SingleTEager, core.MultiTSVLazy, core.MultiTMVLazy} {
		for seed := uint64(1); seed <= 2; seed++ {
			jobs = append(jobs, Job{Machine: cfg, Scheme: sch, Profile: prof, Seed: seed})
		}
	}
	return jobs
}

func TestRunBatchDeterministicOrdering(t *testing.T) {
	jobs := testBatch()
	serial, err := (&Runner{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 4}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Job.Key() != jobs[i].Key() || parallel[i].Job.Key() != jobs[i].Key() {
			t.Fatalf("job %d: result order does not match submission order", i)
		}
		if serial[i].Result.ExecCycles != parallel[i].Result.ExecCycles {
			t.Fatalf("job %d: serial %d cycles vs parallel %d cycles",
				i, serial[i].Result.ExecCycles, parallel[i].Result.ExecCycles)
		}
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	jobs := testBatch()[:3]
	jobs[1].Machine = nil // a nil machine crashes the simulator
	m := &Metrics{}
	results, err := (&Runner{Workers: 2, Metrics: m}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatalf("a crashed job must not fail the batch: %v", err)
	}
	if results[1].Err == nil {
		t.Fatal("crashed job reported no error")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("error does not describe the panic: %v", results[1].Err)
	}
	if results[1].Attempts != 2 {
		t.Fatalf("crashed job attempted %d times, want 2 (one retry)", results[1].Attempts)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Result.ExecCycles == 0 {
			t.Fatalf("healthy job %d disturbed by the crash: %+v", i, results[i].Err)
		}
	}
	s := m.Snapshot()
	if s.Errors != 1 || s.Executed != 2 || s.Retries != 1 {
		t.Fatalf("metrics wrong after crash: %+v", s)
	}
}

func TestRetryDisabled(t *testing.T) {
	jobs := []Job{{Machine: nil, Profile: tinyProfile(), Seed: 1}}
	results, _ := (&Runner{Workers: 1, Retries: -1}).RunBatch(context.Background(), jobs)
	if results[0].Attempts != 1 {
		t.Fatalf("Retries=-1 still attempted %d times", results[0].Attempts)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := testBatch()
	results, err := (&Runner{Workers: 2}).RunBatch(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batch must return the context error")
	}
	if len(results) != len(jobs) {
		t.Fatalf("results length %d, want %d", len(results), len(jobs))
	}
	cancelled := 0
	for _, jr := range results {
		if jr.Err != nil {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job carries the cancellation error")
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	jobs := testBatch()
	calls := 0
	r := &Runner{Workers: 4, Progress: func(jr JobResult) { calls++ }}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Fatalf("progress called %d times, want %d", calls, len(jobs))
	}
}

// hangOn returns an execOverride that blocks forever for jobs matching the
// scheme and executes everything else normally.
func hangOn(sch core.Scheme) func(Job) sim.Result {
	return func(j Job) sim.Result {
		if j.Scheme == sch && !j.Sequential {
			select {} // a hung simulation: never returns
		}
		return j.Execute()
	}
}

// TestWatchdogKillsHungJob is the robustness acceptance scenario: a
// deliberately hung job is cancelled by the watchdog within its deadline and
// quarantined, while the rest of the sweep completes and renders a failure
// manifest.
func TestWatchdogKillsHungJob(t *testing.T) {
	const deadline = 100 * time.Millisecond
	prof := tinyProfile()
	cfg := machine.CMP8()
	jobs := []Job{
		{Machine: cfg, Scheme: core.SingleTEager, Profile: prof, Seed: 1},
		{Machine: cfg, Scheme: core.MultiTMVLazy, Profile: prof, Seed: 1}, // hangs
		{Machine: cfg, Scheme: core.MultiTSVLazy, Profile: prof, Seed: 1},
	}
	m := &Metrics{}
	r := &Runner{Workers: 2, JobTimeout: deadline, Metrics: m,
		execOverride: hangOn(core.MultiTMVLazy)}

	start := time.Now()
	results, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatalf("a hung job must not fail the batch: %v", err)
	}
	hung := results[1]
	if !errors.Is(hung.Err, ErrJobTimeout) {
		t.Fatalf("hung job error is not ErrJobTimeout: %v", hung.Err)
	}
	if !hung.TimedOut || hung.Attempts != 1 {
		t.Fatalf("hung job: TimedOut=%v Attempts=%d, want true/1", hung.TimedOut, hung.Attempts)
	}
	if hung.Wall > 10*deadline {
		t.Fatalf("watchdog took %v to cancel a job with a %v deadline", hung.Wall, deadline)
	}
	if elapsed := time.Since(start); elapsed > 30*deadline {
		t.Fatalf("batch blocked %v on a hung job with a %v deadline", elapsed, deadline)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Result.ExecCycles == 0 {
			t.Fatalf("healthy job %d disturbed by the hang: %+v", i, results[i].Err)
		}
	}
	if r.QuarantineSize() != 1 {
		t.Fatalf("quarantine holds %d jobs, want 1", r.QuarantineSize())
	}

	// An identical job in a later batch fails fast instead of hanging again.
	again, err := r.RunBatch(context.Background(), []Job{jobs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(again[0].Err, ErrJobQuarantined) || !errors.Is(again[0].Err, ErrJobTimeout) {
		t.Fatalf("rerun of a hung job not quarantined: %v", again[0].Err)
	}
	if !again[0].Quarantined || again[0].Attempts != 0 {
		t.Fatalf("quarantined job: Quarantined=%v Attempts=%d, want true/0",
			again[0].Quarantined, again[0].Attempts)
	}

	// The sweep still yields a report: results for the healthy jobs plus a
	// manifest naming what was lost.
	manifest := RenderFailureManifest(CollectFailures(results))
	if manifest == "" || !strings.Contains(manifest, "[timeout]") {
		t.Fatalf("failure manifest missing the timeout entry:\n%s", manifest)
	}
	s := m.Snapshot()
	if s.Timeouts != 1 || s.Quarantined != 1 || s.Errors != 2 {
		t.Fatalf("metrics wrong after hang: %+v", s)
	}
	if !strings.Contains(s.String(), "1 timeouts") || !strings.Contains(s.String(), "1 quarantined") {
		t.Fatalf("metrics summary omits the breakdown: %s", s)
	}
}

// TestCrashQuarantine pins the quarantine path for crashing (not hanging)
// jobs: a job that panics through every retry is quarantined, and identical
// jobs in later batches fail fast.
func TestCrashQuarantine(t *testing.T) {
	jobs := []Job{{Machine: nil, Profile: tinyProfile(), Seed: 1}}
	r := &Runner{Workers: 1}
	first, _ := r.RunBatch(context.Background(), jobs)
	if first[0].Err == nil || first[0].Attempts != 2 {
		t.Fatalf("crash not retried then reported: %+v", first[0])
	}
	if r.QuarantineSize() != 1 {
		t.Fatalf("crashed job not quarantined")
	}
	again, _ := r.RunBatch(context.Background(), jobs)
	if !errors.Is(again[0].Err, ErrJobQuarantined) || again[0].Attempts != 0 {
		t.Fatalf("rerun executed instead of failing fast: %+v", again[0])
	}
	if f := CollectFailures(again); len(f) != 1 || f[0].Kind() != "quarantined" {
		t.Fatalf("manifest kind wrong: %+v", f)
	}
}

// TestRetryBackoffRecovers verifies the exponential backoff path: a job that
// crashes once and then succeeds is retried after the configured delay and
// delivers its result.
func TestRetryBackoffRecovers(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	r := &Runner{Workers: 1, Retries: 2, RetryBackoff: 5 * time.Millisecond}
	r.execOverride = func(j Job) sim.Result {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			panic("transient crash")
		}
		return j.Execute()
	}
	jobs := testBatch()[:2]
	start := time.Now()
	results, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Attempts != 2 {
		t.Fatalf("flaky job did not recover on retry: %+v", results[0])
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("retry fired after %v, before the backoff delay", elapsed)
	}
	if r.QuarantineSize() != 0 {
		t.Fatalf("recovered job was quarantined")
	}
}

// TestCachePutFailureCounted covers the swallowed-write path: when the cache
// directory disappears mid-sweep, results still flow but the metrics summary
// must surface the failed writes.
func TestCachePutFailureCounted(t *testing.T) {
	dir := t.TempDir() + "/cache"
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	r := &Runner{Workers: 1, Cache: c, Metrics: m}
	results, err := r.RunBatch(context.Background(), testBatch()[:1])
	if err != nil || results[0].Err != nil {
		t.Fatalf("a failed cache write must not fail the job: %v / %v", err, results[0].Err)
	}
	s := m.Snapshot()
	if s.CachePutErrors != 1 {
		t.Fatalf("CachePutErrors = %d, want 1", s.CachePutErrors)
	}
	if !strings.Contains(s.String(), "1 cache-put errors") {
		t.Fatalf("metrics summary omits cache-put errors: %s", s)
	}
}

func TestEmptyBatch(t *testing.T) {
	results, err := new(Runner).RunBatch(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(results))
	}
}
