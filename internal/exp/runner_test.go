package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// testBatch builds a mixed batch: one sequential baseline plus several
// scheme runs over two seeds.
func testBatch() []Job {
	prof := tinyProfile()
	cfg := machine.CMP8()
	jobs := []Job{{Machine: cfg, Profile: prof, Seed: 1, Sequential: true}}
	for _, sch := range []core.Scheme{core.SingleTEager, core.MultiTSVLazy, core.MultiTMVLazy} {
		for seed := uint64(1); seed <= 2; seed++ {
			jobs = append(jobs, Job{Machine: cfg, Scheme: sch, Profile: prof, Seed: seed})
		}
	}
	return jobs
}

func TestRunBatchDeterministicOrdering(t *testing.T) {
	jobs := testBatch()
	serial, err := (&Runner{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 4}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Job.Key() != jobs[i].Key() || parallel[i].Job.Key() != jobs[i].Key() {
			t.Fatalf("job %d: result order does not match submission order", i)
		}
		if serial[i].Result.ExecCycles != parallel[i].Result.ExecCycles {
			t.Fatalf("job %d: serial %d cycles vs parallel %d cycles",
				i, serial[i].Result.ExecCycles, parallel[i].Result.ExecCycles)
		}
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	jobs := testBatch()[:3]
	jobs[1].Machine = nil // a nil machine crashes the simulator
	m := &Metrics{}
	results, err := (&Runner{Workers: 2, Metrics: m}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatalf("a crashed job must not fail the batch: %v", err)
	}
	if results[1].Err == nil {
		t.Fatal("crashed job reported no error")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("error does not describe the panic: %v", results[1].Err)
	}
	if results[1].Attempts != 2 {
		t.Fatalf("crashed job attempted %d times, want 2 (one retry)", results[1].Attempts)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Result.ExecCycles == 0 {
			t.Fatalf("healthy job %d disturbed by the crash: %+v", i, results[i].Err)
		}
	}
	s := m.Snapshot()
	if s.Errors != 1 || s.Executed != 2 || s.Retries != 1 {
		t.Fatalf("metrics wrong after crash: %+v", s)
	}
}

func TestRetryDisabled(t *testing.T) {
	jobs := []Job{{Machine: nil, Profile: tinyProfile(), Seed: 1}}
	results, _ := (&Runner{Workers: 1, Retries: -1}).RunBatch(context.Background(), jobs)
	if results[0].Attempts != 1 {
		t.Fatalf("Retries=-1 still attempted %d times", results[0].Attempts)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := testBatch()
	results, err := (&Runner{Workers: 2}).RunBatch(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batch must return the context error")
	}
	if len(results) != len(jobs) {
		t.Fatalf("results length %d, want %d", len(results), len(jobs))
	}
	cancelled := 0
	for _, jr := range results {
		if jr.Err != nil {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job carries the cancellation error")
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	jobs := testBatch()
	calls := 0
	r := &Runner{Workers: 4, Progress: func(jr JobResult) { calls++ }}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Fatalf("progress called %d times, want %d", calls, len(jobs))
	}
}

func TestEmptyBatch(t *testing.T) {
	results, err := new(Runner).RunBatch(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(results))
	}
}
