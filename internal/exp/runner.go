package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/sim"
)

// JobResult pairs a Job with its outcome.
type JobResult struct {
	Job Job
	// Result is the simulation outcome (zero when Err is non-nil).
	Result sim.Result
	// Err reports a job that failed every attempt (a crashed simulation)
	// or was cancelled before it started.
	Err error
	// Cached reports that Result came from the persistent cache and no
	// simulation executed.
	Cached bool
	// Attempts is how many times the simulation ran (0 for cache hits and
	// cancelled jobs; >1 when panic retries were needed).
	Attempts int
	// Wall is the time spent executing (all attempts; 0 for cache hits).
	Wall time.Duration
}

// Runner executes batches of Jobs on a worker pool. The zero value runs
// with GOMAXPROCS workers, one panic retry, no cache and no metrics.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS, 1 runs serially.
	Workers int
	// Cache, when non-nil, memoizes results across runs.
	Cache *Cache
	// Metrics, when non-nil, accumulates run statistics.
	Metrics *Metrics
	// Retries is how many times a panicking job is re-executed before its
	// error is reported (< 0 disables retry; 0 selects the default of 1).
	Retries int
	// Progress, when non-nil, is called after every finished job. Calls
	// are serialized; completion order is nondeterministic.
	Progress func(JobResult)

	mu sync.Mutex // serializes Progress and Metrics updates
}

func (r *Runner) workers(jobs int) int {
	n := r.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (r *Runner) retries() int {
	switch {
	case r.Retries < 0:
		return 0
	case r.Retries == 0:
		return 1
	default:
		return r.Retries
	}
}

// RunBatch executes the jobs and returns their results in submission order,
// independent of completion order. Worker scheduling cannot perturb the
// output: each result is a deterministic function of its job alone.
//
// A crashed (panicking) simulation is retried and, if it crashes again,
// reported as that job's Err without disturbing the rest of the batch. The
// returned error is only non-nil when ctx is cancelled or times out, in
// which case unstarted jobs carry ctx's error.
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Metrics != nil {
		r.Metrics.batchQueued(len(jobs))
	}
	out := make([]JobResult, len(jobs))
	started := make([]bool, len(jobs))

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = r.runJob(ctx, jobs[i])
				r.finish(out[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
			started[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range out {
			if !started[i] {
				out[i] = JobResult{Job: jobs[i], Err: fmt.Errorf("job %s: %w", jobs[i].Label(), err)}
				r.finish(out[i])
			}
		}
		return out, err
	}
	return out, nil
}

// runJob resolves one job: cache lookup, then execution with panic
// isolation and retry.
func (r *Runner) runJob(ctx context.Context, j Job) JobResult {
	jr := JobResult{Job: j}
	if r.Cache != nil {
		if res, ok := r.Cache.Get(j); ok {
			jr.Result, jr.Cached = res, true
			return jr
		}
	}
	start := time.Now()
	maxAttempts := 1 + r.retries()
	for jr.Attempts = 1; ; jr.Attempts++ {
		res, err := runIsolated(j)
		if err == nil {
			jr.Result, jr.Err = res, nil
			if r.Cache != nil {
				// Best-effort: a full disk must not fail the sweep.
				_ = r.Cache.Put(j, res)
			}
			break
		}
		jr.Err = err
		if jr.Attempts >= maxAttempts || ctx.Err() != nil {
			break
		}
	}
	jr.Wall = time.Since(start)
	return jr
}

// runIsolated executes one simulation, converting a panic into an error so
// a crashed run cannot take down the whole regeneration.
func runIsolated(j Job) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation %s panicked: %v\n%s", j.Label(), p, debug.Stack())
		}
	}()
	return j.Execute(), nil
}

// finish serializes the per-job callbacks.
func (r *Runner) finish(jr JobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Metrics != nil {
		r.Metrics.observe(jr)
	}
	if r.Progress != nil {
		r.Progress(jr)
	}
}
