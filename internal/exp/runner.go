package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/iofault"
	"repro/internal/obs/trace"
	"repro/internal/sim"
)

// ErrJobTimeout reports a simulation the watchdog cancelled because it
// exceeded the runner's per-job deadline. Test with errors.Is.
var ErrJobTimeout = errors.New("job deadline exceeded")

// ErrJobInterrupted reports a simulation halted mid-run by a graceful
// shutdown: its latest checkpoint (if checkpointing is on) is durable and a
// -resume continues it. Test with errors.Is.
var ErrJobInterrupted = errors.New("job interrupted")

// ErrJobQuarantined reports a job skipped because an identical job (same
// content hash) already failed permanently earlier in the run. Test with
// errors.Is; the underlying cause is wrapped alongside it.
var ErrJobQuarantined = errors.New("job quarantined")

// JobResult pairs a Job with its outcome.
type JobResult struct {
	Job Job
	// Result is the simulation outcome (zero when Err is non-nil).
	Result sim.Result
	// Err reports a job that failed every attempt (a crashed or hung
	// simulation), was quarantined, or was cancelled before it started.
	Err error
	// Chaos is the chaos verdict of an executed chaotic job (Invariants or
	// Faults set); nil otherwise.
	Chaos *ChaosVerdict
	// Cached reports that Result came from the persistent cache and no
	// simulation executed.
	Cached bool
	// Deduped reports that Result was shared from a concurrent identical
	// job's execution (the singleflight guard): this call executed nothing.
	Deduped bool
	// TimedOut reports that the watchdog cancelled the job's last attempt.
	TimedOut bool
	// Quarantined reports that the job was skipped without executing because
	// an identical job already failed permanently in this run.
	Quarantined bool
	// Attempts is how many times the simulation ran (0 for cache hits and
	// cancelled or quarantined jobs; >1 when retries were needed).
	Attempts int
	// Wall is the time spent executing (all attempts; 0 for cache hits).
	Wall time.Duration
}

// Runner executes batches of Jobs on a worker pool. The zero value runs
// with GOMAXPROCS workers, one panic retry, no deadline, no cache and no
// metrics.
//
// A Runner degrades gracefully: a crashed simulation is retried with
// exponential backoff, a hung one is cancelled by the per-job watchdog, and
// a job that failed permanently is quarantined so identical jobs in later
// batches fail fast instead of hanging the sweep again. The batch always
// completes with whatever results were obtainable; Failures assembles the
// manifest of what was not.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS, 1 runs serially.
	Workers int
	// Cache, when non-nil, memoizes results across runs.
	Cache *Cache
	// Metrics, when non-nil, accumulates run statistics.
	Metrics *Metrics
	// Retries is how many times a panicking job is re-executed before its
	// error is reported (< 0 disables retry; 0 selects the default of 1).
	Retries int
	// RetryBackoff is the delay before the first retry; each further retry
	// doubles it, capped at 8x. 0 retries immediately.
	RetryBackoff time.Duration
	// JobTimeout is the per-job watchdog deadline. A simulation still
	// running when it expires is abandoned (Go cannot preempt it; the
	// goroutine leaks until the process exits) and reported with
	// ErrJobTimeout. 0 disables the watchdog.
	JobTimeout time.Duration
	// Progress, when non-nil, is called after every finished job. Calls
	// are serialized; completion order is nondeterministic.
	Progress func(JobResult)

	// Journal, when non-nil, receives the campaign WAL records: job-start
	// when a worker begins executing, checkpoint after each checkpoint file
	// is durable, job-done after the result is cached (or the job failed).
	Journal *Journal
	// CheckpointDir, when set, is where executing jobs persist checkpoints
	// (<dir>/<key>.ckpt, atomically replaced). Checkpoints are written every
	// CheckpointEvery commits, plus once at interrupt; the file is removed
	// when the job completes. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the auto-checkpoint cadence in committed tasks.
	CheckpointEvery int
	// Resume maps job keys to checkpoint files from a previous campaign's
	// journal; a matching job restores from its checkpoint instead of
	// starting over. An unreadable or mismatched checkpoint falls back to a
	// fresh run (resume is best-effort, never an error source).
	Resume map[string]string
	// FS is the filesystem seam the runner's durable writes (checkpoints,
	// post-mortem dumps) go through. nil means the real OS; fault drills
	// inject an iofault.Injector here and into the journal and cache.
	FS iofault.FS

	// Tracer, when non-nil, records every attempt, retry, cache hit and
	// quarantine as wall-clock spans (fleet workers pass their shipping
	// tracer here). When nil, the runner still keeps an internal ring-only
	// tracer: the flight recorder is always on, so quarantine manifests and
	// stuck post-mortems carry the last spans even on untraced runs.
	Tracer *trace.Tracer
	// Campaign is the campaign correlation ID stamped on spans and journal
	// records ("" when the runner is not part of a campaign).
	Campaign string
	// Flow tags this runner's spans with a cross-process correlation ID —
	// fleet workers set it to the lease ID so the merged Perfetto trace
	// draws lease→attempt→complete arrows. 0 means untagged.
	Flow uint64

	// execOverride replaces Job.Execute in tests (e.g. with a function that
	// hangs, to exercise the watchdog).
	execOverride func(Job) sim.Result

	mu sync.Mutex // serializes Progress and Metrics updates

	qmu        sync.Mutex
	quarantine map[string]error // job Key -> first permanent failure

	// In-flight simulations, for graceful shutdown: when the batch context
	// dies, every registered simulator is Interrupted so it checkpoints at
	// its next commit and unwinds instead of running to completion.
	imu         sync.Mutex
	inflight    map[int]*sim.Simulator
	inflightSeq int
	draining    bool

	// Singleflight: concurrent jobs with the same content hash execute once;
	// the waiters share the leader's outcome. This is also the coordinator's
	// local dedupe primitive.
	fmu     sync.Mutex
	flights map[string]*flight
	// flightWaits counts calls that joined an existing flight (test hook).
	flightWaits atomic.Int64

	// ringOnce guards the lazily built internal flight-recorder tracer used
	// when no Tracer is configured.
	ringOnce   sync.Once
	ringTracer *trace.Tracer
}

// tracer returns the span sink: the configured Tracer, or the always-on
// internal flight recorder (ring only, nothing retained or shipped).
func (r *Runner) tracer() *trace.Tracer {
	if r.Tracer != nil {
		return r.Tracer
	}
	r.ringOnce.Do(func() { r.ringTracer = trace.New("runner") })
	return r.ringTracer
}

// FlightRecorder returns the last spans the runner recorded (oldest first):
// the always-on post-mortem view dumped into quarantine manifests.
func (r *Runner) FlightRecorder() []trace.Span {
	return r.tracer().Dump()
}

// flight is one in-progress execution of a job key: the leader closes done
// after publishing its outcome in res.
type flight struct {
	done chan struct{}
	res  JobResult
}

// fsys returns the filesystem seam, defaulting to the real OS.
func (r *Runner) fsys() iofault.FS {
	if r.FS != nil {
		return r.FS
	}
	return iofault.Real
}

func (r *Runner) workers(jobs int) int {
	n := r.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (r *Runner) retries() int {
	switch {
	case r.Retries < 0:
		return 0
	case r.Retries == 0:
		return 1
	default:
		return r.Retries
	}
}

// RunBatch executes the jobs and returns their results in submission order,
// independent of completion order. Worker scheduling cannot perturb the
// output: each result is a deterministic function of its job alone.
//
// A crashed (panicking) simulation is retried and, if it crashes again,
// reported as that job's Err without disturbing the rest of the batch; a
// hung simulation is cancelled by the watchdog. The returned error is only
// non-nil when ctx is cancelled or times out, in which case unstarted jobs
// carry ctx's error.
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Metrics != nil {
		r.Metrics.batchQueued(len(jobs))
		if r.Cache != nil {
			// Surface the startup heal scan (quarantined torn entries, and
			// entries that could not be quarantined) in the run metrics.
			r.Metrics.ObserveHeal(r.Cache.LastHeal())
		}
	}
	out := make([]JobResult, len(jobs))
	started := make([]bool, len(jobs))

	// Graceful shutdown: the moment ctx dies, interrupt every in-flight
	// simulation so workers drain at the next commit boundary (writing their
	// final checkpoints) instead of finishing multi-minute runs.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			r.interruptInflight()
		case <-watchDone:
		}
	}()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = r.runJob(ctx, jobs[i])
				r.finish(out[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
			started[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range out {
			if !started[i] {
				out[i] = JobResult{Job: jobs[i], Err: fmt.Errorf("job %s: %w", jobs[i].Label(), err)}
				r.finish(out[i])
			}
		}
		return out, err
	}
	return out, nil
}

// runJob resolves one job: cancellation and quarantine screens, cache
// lookup, then execution under the watchdog with retry and backoff.
func (r *Runner) runJob(ctx context.Context, j Job) JobResult {
	jr := JobResult{Job: j}
	// A worker can dequeue a job in the same instant the context dies; the
	// batch must then report the job cancelled, not run it anyway.
	if err := ctx.Err(); err != nil {
		jr.Err = fmt.Errorf("job %s: %w", j.Label(), err)
		return jr
	}
	if cause := r.quarantinedCause(j); cause != nil {
		jr.Quarantined = true
		jr.Err = fmt.Errorf("job %s: %w: %w", j.Label(), ErrJobQuarantined, cause)
		r.tracer().Instant(trace.Span{
			Name: j.Label(), Kind: trace.KindQuarantine, Campaign: r.Campaign,
			Key: j.Key(), Flow: r.Flow, Err: cause.Error(), Note: "screened",
		})
		return jr
	}
	// Chaotic jobs bypass the cache: their verdict is not part of sim.Result,
	// so a hit could not reconstruct it.
	useCache := r.Cache != nil && !j.chaotic()
	if useCache {
		if res, ok := r.Cache.Get(j); ok {
			jr.Result, jr.Cached = res, true
			r.tracer().Instant(trace.Span{
				Name: j.Label(), Kind: trace.KindCacheHit, Campaign: r.Campaign,
				Key: j.Key(), Flow: r.Flow,
			})
			r.journalAppend(JournalRecord{T: RecJobDone, Key: j.Key(), Label: j.Label(), Cached: true})
			return jr
		}
	}
	// Singleflight: if an identical job is already executing, wait for its
	// outcome instead of computing it twice. The leader's Result is shared
	// (read-only downstream); per-call fields are not.
	key := j.Key()
	f, leader := r.joinFlight(key)
	if !leader {
		select {
		case <-f.done:
			jr = f.res
			jr.Job = j
			jr.Deduped = true
			jr.Attempts, jr.Wall = 0, 0
		case <-ctx.Done():
			jr.Err = fmt.Errorf("job %s: %w", j.Label(), ctx.Err())
		}
		return jr
	}
	defer func() {
		f.res = jr
		r.fmu.Lock()
		delete(r.flights, key)
		r.fmu.Unlock()
		close(f.done)
	}()
	r.journalAppend(JournalRecord{T: RecJobStart, Key: j.Key(), Label: j.Label()})
	start := time.Now()
	maxAttempts := 1 + r.retries()
	for jr.Attempts = 1; ; jr.Attempts++ {
		attemptStart := r.tracer().Now()
		res, verdict, err := r.attempt(ctx, j)
		attemptSpan := trace.Span{
			Name: j.Label(), Kind: trace.KindAttempt, Campaign: r.Campaign,
			Key: j.Key(), Attempt: jr.Attempts, Flow: r.Flow,
		}
		if err != nil {
			attemptSpan.Err = err.Error()
		}
		r.tracer().Since(attemptStart, attemptSpan)
		if err == nil {
			jr.Result, jr.Chaos, jr.Err, jr.TimedOut = res, verdict, nil, false
			if useCache {
				if perr := r.Cache.Put(j, res); perr != nil && r.Metrics != nil {
					// The sweep survives a failed write (the result is
					// still in hand), but a full disk must be visible.
					r.Metrics.cachePutFailed()
				}
			}
			// Journal job-done only after the result is durable, then drop
			// the now-obsolete checkpoint.
			r.journalAppend(JournalRecord{T: RecJobDone, Key: j.Key(), Label: j.Label()})
			if r.CheckpointDir != "" {
				r.fsys().Remove(filepath.Join(r.CheckpointDir, j.Key()+".ckpt"))
			}
			break
		}
		jr.Err = err
		if errors.Is(err, ErrJobTimeout) {
			// A deterministic simulation that hung once will hang again:
			// no retry, and identical jobs are quarantined.
			jr.TimedOut = true
			r.quarantineJob(j, err)
			r.journalAppend(JournalRecord{T: RecJobDone, Key: j.Key(), Label: j.Label(), Err: err.Error()})
			break
		}
		if errors.Is(err, ErrJobInterrupted) || ctx.Err() != nil {
			// Shutdown, not the job's fault: no quarantine, no job-done
			// record — the journal's last word stays the checkpoint, which
			// is exactly what -resume needs.
			break
		}
		if jr.Attempts >= maxAttempts {
			r.quarantineJob(j, err)
			r.journalAppend(JournalRecord{T: RecJobDone, Key: j.Key(), Label: j.Label(), Err: err.Error()})
			break
		}
		r.tracer().Instant(trace.Span{
			Name: j.Label(), Kind: trace.KindRetry, Campaign: r.Campaign,
			Key: j.Key(), Attempt: jr.Attempts, Flow: r.Flow, Err: err.Error(),
		})
		if !r.backoff(ctx, jr.Attempts) {
			break
		}
	}
	jr.Wall = time.Since(start)
	return jr
}

// joinFlight registers interest in key's execution: the first caller becomes
// the leader (and must settle the flight when done); later callers get the
// existing flight to wait on.
func (r *Runner) joinFlight(key string) (*flight, bool) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if f, ok := r.flights[key]; ok {
		r.flightWaits.Add(1)
		return f, false
	}
	if r.flights == nil {
		r.flights = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	return f, true
}

// journalAppend writes a WAL record, surfacing write failures as metrics
// (the campaign itself must survive a full disk).
func (r *Runner) journalAppend(rec JournalRecord) {
	if r.Journal == nil {
		return
	}
	if rec.Campaign == "" {
		rec.Campaign = r.Campaign
	}
	if err := r.Journal.Append(rec); err != nil && r.Metrics != nil {
		r.Metrics.journalAppendFailed()
	}
}

// jobRun is one prepared attempt: the function to execute and, when the
// checkpointing path is active, the live simulator handle the watchdog and
// the shutdown path can Interrupt. escalate flags a watchdog timeout so the
// sink, which may fire later on the abandoned goroutine, knows to write the
// post-mortem dump instead of a resumable checkpoint.
type jobRun struct {
	sim      *sim.Simulator
	escalate atomic.Bool
	run      func() (sim.Result, *ChaosVerdict, error)
}

// prepare builds one attempt. With no checkpointing, resume map, or journal
// involvement the job runs through the classic Execute path, byte-identical
// to a runner without any of this machinery.
func (r *Runner) prepare(j Job) *jobRun {
	if r.execOverride != nil || (r.CheckpointDir == "" && len(r.Resume) == 0) {
		return &jobRun{run: func() (sim.Result, *ChaosVerdict, error) { return runIsolated(j, r.execOverride) }}
	}
	s, plan, berr := buildSafely(j)
	if berr != nil {
		// A construction panic (nil machine, malformed profile) must fail the
		// attempt like the isolated path does, not unwind the worker goroutine.
		return &jobRun{run: func() (sim.Result, *ChaosVerdict, error) { return sim.Result{}, nil, berr }}
	}
	if path, ok := r.Resume[j.Key()]; ok {
		if ck, err := sim.ReadCheckpointFile(path); err == nil {
			if rerr := s.Restore(ck); rerr != nil {
				s, plan = j.build() // mismatched checkpoint: start over
			}
		}
	}
	jr := &jobRun{sim: s}
	if r.CheckpointDir != "" {
		r.fsys().MkdirAll(r.CheckpointDir, 0o755)
		ckPath := filepath.Join(r.CheckpointDir, j.Key()+".ckpt")
		if r.CheckpointEvery > 0 {
			s.SetAutoCheckpoint(r.CheckpointEvery)
		}
		s.SetCheckpointSink(func(ck *sim.Checkpoint) {
			path := ckPath
			if jr.escalate.Load() {
				// Watchdog escalation: this is the post-mortem of a stuck
				// job. Park the checkpoint under a distinct name (the job is
				// quarantined, not resumed) and dump a progress report.
				path = filepath.Join(r.CheckpointDir, j.Key()+".stuck.ckpt")
				r.dumpProgress(j, s)
			}
			// The checkpoint record is journaled only after the file — and
			// the rename that published it — are durable.
			if err := sim.WriteCheckpointFileFS(r.fsys(), path, ck); err == nil {
				r.journalAppend(JournalRecord{
					T: RecCheckpoint, Key: j.Key(), Label: j.Label(),
					Ckpt: path, Commits: ck.Commits,
				})
			}
		})
	}
	jr.run = func() (res sim.Result, v *ChaosVerdict, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("simulation %s panicked: %v\n%s", j.Label(), p, debug.Stack())
			}
		}()
		res = s.Run()
		if s.Halted() {
			return sim.Result{}, nil, fmt.Errorf("job %s: %w", j.Label(), ErrJobInterrupted)
		}
		return res, j.verdict(s, plan), nil
	}
	return jr
}

// buildSafely constructs the job's simulator, converting a construction
// panic into the same "panicked" error shape the isolated run path reports,
// so retry/quarantine handling is uniform across both paths.
func buildSafely(j Job) (s *sim.Simulator, plan *fault.Plan, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, plan = nil, nil
			err = fmt.Errorf("simulation %s panicked: %v\n%s", j.Label(), p, debug.Stack())
		}
	}()
	s, plan = j.build()
	return s, plan, nil
}

// attempt executes one try of the job, under the watchdog when a deadline
// is configured.
func (r *Runner) attempt(ctx context.Context, j Job) (sim.Result, *ChaosVerdict, error) {
	jr := r.prepare(j)
	if jr.sim != nil {
		id := r.track(jr.sim)
		defer r.untrack(id)
	}
	type outcome struct {
		res sim.Result
		v   *ChaosVerdict
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, v, err := jr.run()
		ch <- outcome{res, v, err}
	}()
	// The run always executes on its own goroutine so that cancellation is
	// responsive mid-simulation (drain, Ctrl-C) even without a watchdog
	// deadline; the timer only arms when a deadline is configured.
	var deadline <-chan time.Time
	if r.JobTimeout > 0 {
		timer := time.NewTimer(r.JobTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case o := <-ch:
		return o.res, o.v, o.err
	case <-deadline:
		// The attempt goroutine is abandoned: a stuck simulation cannot be
		// preempted, only disowned. The buffered channel lets it exit
		// quietly if it ever finishes. On the checkpointing path we can do
		// better: escalate, so that if the run ever reaches another commit
		// it dumps a checkpoint + progress report for post-mortem replay and
		// unwinds instead of leaking.
		if jr.sim != nil {
			jr.escalate.Store(true)
			jr.sim.Interrupt()
		}
		return sim.Result{}, nil, fmt.Errorf("job %s: %w (deadline %s)", j.Label(), ErrJobTimeout, r.JobTimeout)
	case <-ctx.Done():
		if jr.sim != nil {
			jr.sim.Interrupt()
		}
		return sim.Result{}, nil, fmt.Errorf("job %s: %w", j.Label(), ctx.Err())
	}
}

// stuckReport is the watchdog post-mortem document: where the stuck run
// was, plus both flight recorders — the runner's orchestration spans and the
// simulator's last cycle-domain events.
type stuckReport struct {
	Progress any `json:"progress"`
	// Campaign ties the post-mortem to its campaign's journal and spans.
	Campaign string `json:"campaign,omitempty"`
	// FlightRecorder is the runner's last spans (wall-clock domain).
	FlightRecorder []trace.Span `json:"flight_recorder,omitempty"`
	// SimFlightRecorder is the simulator's last trace events (cycle domain).
	SimFlightRecorder []sim.FlightEntry `json:"sim_flight_recorder,omitempty"`
}

// dumpProgress writes the watchdog post-mortem: where the stuck run was.
// Called from the simulation's own goroutine (inside the checkpoint sink).
func (r *Runner) dumpProgress(j Job, s *sim.Simulator) {
	rep := stuckReport{
		Progress:          s.ProgressReport(),
		Campaign:          r.Campaign,
		FlightRecorder:    r.FlightRecorder(),
		SimFlightRecorder: s.FlightRecorder(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return
	}
	iofault.WriteFileAtomic(r.fsys(), filepath.Join(r.CheckpointDir, j.Key()+".progress.json"), data, 0o644)
}

// track registers an executing simulation for shutdown interrupts.
func (r *Runner) track(s *sim.Simulator) int {
	r.imu.Lock()
	defer r.imu.Unlock()
	if r.inflight == nil {
		r.inflight = make(map[int]*sim.Simulator)
	}
	r.inflightSeq++
	r.inflight[r.inflightSeq] = s
	if r.draining {
		s.Interrupt() // the batch is already shutting down
	}
	return r.inflightSeq
}

// untrack removes a finished simulation from the shutdown registry.
func (r *Runner) untrack(id int) {
	r.imu.Lock()
	defer r.imu.Unlock()
	delete(r.inflight, id)
}

// interruptInflight asks every executing simulation to checkpoint and stop.
func (r *Runner) interruptInflight() {
	r.imu.Lock()
	defer r.imu.Unlock()
	r.draining = true
	for _, s := range r.inflight {
		s.Interrupt()
	}
}

// backoff sleeps before retry number attempt (exponential, capped at 8x the
// base), returning false if the context died while waiting.
func (r *Runner) backoff(ctx context.Context, attempt int) bool {
	if r.RetryBackoff <= 0 {
		return true
	}
	d := r.RetryBackoff
	for i := 1; i < attempt && d < 8*r.RetryBackoff; i++ {
		d *= 2
	}
	if d > 8*r.RetryBackoff {
		d = 8 * r.RetryBackoff
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// quarantinedCause returns the recorded failure of an identical job, or nil.
func (r *Runner) quarantinedCause(j Job) error {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	if len(r.quarantine) == 0 {
		return nil
	}
	return r.quarantine[j.Key()]
}

// quarantineJob records a permanent failure so identical jobs fail fast,
// emits the quarantine span, and — when a checkpoint directory exists —
// writes the quarantine manifest with the flight recorder's last spans, the
// post-mortem of how the job died.
func (r *Runner) quarantineJob(j Job, err error) {
	r.qmu.Lock()
	if r.quarantine == nil {
		r.quarantine = make(map[string]error)
	}
	first := false
	if _, ok := r.quarantine[j.Key()]; !ok {
		r.quarantine[j.Key()] = err
		first = true
	}
	r.qmu.Unlock()
	if !first {
		return
	}
	r.tracer().Instant(trace.Span{
		Name: j.Label(), Kind: trace.KindQuarantine, Campaign: r.Campaign,
		Key: j.Key(), Flow: r.Flow, Err: err.Error(),
	})
	r.writeQuarantineManifest(j, err)
}

// QuarantineManifest is the post-mortem written beside the checkpoints when
// a job is quarantined: what failed, in which campaign, and the flight
// recorder's last spans leading up to the failure.
type QuarantineManifest struct {
	Key      string `json:"key"`
	Label    string `json:"label"`
	Campaign string `json:"campaign,omitempty"`
	Err      string `json:"err"`
	// FlightRecorder is the runner's span ring at quarantine time, oldest
	// first: attempts, retries and decisions with correlation IDs.
	FlightRecorder []trace.Span `json:"flight_recorder,omitempty"`
}

func (r *Runner) writeQuarantineManifest(j Job, cause error) {
	if r.CheckpointDir == "" {
		return
	}
	m := QuarantineManifest{
		Key: j.Key(), Label: j.Label(), Campaign: r.Campaign,
		Err:            cause.Error(),
		FlightRecorder: r.FlightRecorder(),
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	r.fsys().MkdirAll(r.CheckpointDir, 0o755)
	iofault.WriteFileAtomic(r.fsys(), filepath.Join(r.CheckpointDir, j.Key()+".quarantine.json"), data, 0o644)
}

// QuarantineSize returns how many distinct jobs have been quarantined.
func (r *Runner) QuarantineSize() int {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	return len(r.quarantine)
}

// runIsolated executes one simulation, converting a panic into an error so
// a crashed run cannot take down the whole regeneration.
func runIsolated(j Job, exec func(Job) sim.Result) (res sim.Result, v *ChaosVerdict, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation %s panicked: %v\n%s", j.Label(), p, debug.Stack())
		}
	}()
	if exec != nil {
		return exec(j), nil, nil
	}
	res, v = j.ExecuteWithVerdict()
	return res, v, nil
}

// finish serializes the per-job callbacks.
func (r *Runner) finish(jr JobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Metrics != nil {
		r.Metrics.observe(jr)
	}
	if r.Progress != nil {
		r.Progress(jr)
	}
}
