package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"path/filepath"
	"runtime/debug"
	"strings"

	"repro/internal/iofault"
	"repro/internal/sim"
)

// cacheSchemaVersion invalidates every on-disk entry when the serialized
// format — or the meaning of any Job input — changes incompatibly. Bump it
// whenever sim.Result or the simulation semantics change.
// v2: checksummed entries (Check over the payload bytes).
const cacheSchemaVersion = "exp-cache-v2"

// QuarantineSuffix is appended to the name of a corrupt cache or checkpoint
// file when the heal scan (or tlsfsck) sets it aside: the file stays
// inspectable but can never serve a hit.
const QuarantineSuffix = ".quarantined"

// cacheVersion combines the schema version with the module's build version
// so a rebuilt binary with different simulation code never serves stale
// results.
func cacheVersion() string {
	v := cacheSchemaVersion
	if info, ok := debug.ReadBuildInfo(); ok {
		v += "/" + info.Main.Version
		if info.Main.Sum != "" {
			v += "@" + info.Main.Sum
		}
	}
	return v
}

// Cache is a persistent on-disk result cache: one JSON file per completed
// job, keyed by the job's content hash plus the cache version. Entries for
// jobs whose inputs change are simply never looked up again; delete the
// directory to reclaim the space.
//
// The cache self-heals: every entry carries a CRC over its payload, and the
// startup scan (NewCache) quarantines files that are truncated or corrupt —
// the torn writes a kill -9 or power cut mid-campaign can leave — instead
// of erroring or silently serving them.
type Cache struct {
	dir     string
	version string
	fs      iofault.FS
	// Logf receives heal-scan failure lines (a torn entry that could not
	// even be quarantined must be visible, or the scan finds it again every
	// startup). Defaults to the standard logger.
	Logf func(format string, args ...any)

	lastHeal HealReport
}

// HealReport summarizes one self-healing scan of the cache directory.
type HealReport struct {
	// Scanned counts directory entries examined.
	Scanned int
	// RemovedTemps counts stale temp files deleted (a writer died between
	// CreateTemp and rename; the entry was never published).
	RemovedTemps int
	// Quarantined counts corrupt entries renamed aside with
	// QuarantineSuffix.
	Quarantined int
	// QuarantineFailures counts corrupt entries whose quarantine rename
	// failed. Each is logged; without the count a heal scan that cannot
	// quarantine would rediscover the same torn file forever.
	QuarantineFailures int
	// RemoveFailures counts files that could be neither quarantined nor
	// removed (the fallback when the rename fails).
	RemoveFailures int
}

// Dirty reports whether the scan changed or failed to change anything.
func (h HealReport) Dirty() bool {
	return h.RemovedTemps+h.Quarantined+h.QuarantineFailures+h.RemoveFailures > 0
}

// String renders the one-line operator summary.
func (h HealReport) String() string {
	return fmt.Sprintf("cache heal: %d scanned, %d temps removed, %d quarantined, %d quarantine failures, %d remove failures",
		h.Scanned, h.RemovedTemps, h.Quarantined, h.QuarantineFailures, h.RemoveFailures)
}

// NewCache opens (creating if necessary) a cache rooted at dir and runs the
// self-healing scan: stale temp files are removed and unreadable entries
// are renamed aside with QuarantineSuffix so they are inspectable but can
// never serve a hit.
func NewCache(dir string) (*Cache, error) {
	return NewCacheFS(iofault.Real, dir)
}

// NewCacheFS is NewCache writing through an explicit filesystem seam (fault
// drills and crash-consistency tests inject one; nil means the real OS).
func NewCacheFS(fsys iofault.FS, dir string) (*Cache, error) {
	if fsys == nil {
		fsys = iofault.Real
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, version: cacheVersion(), fs: fsys}
	c.lastHeal = c.Heal()
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// fsys returns the cache's filesystem seam, defaulting to the real OS so a
// zero-value or literal-constructed Cache still works.
func (c *Cache) fsys() iofault.FS {
	if c.fs != nil {
		return c.fs
	}
	return iofault.Real
}

// LastHeal returns the report of the most recent self-healing scan.
func (c *Cache) LastHeal() HealReport { return c.lastHeal }

func (c *Cache) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	slog.Info(fmt.Sprintf(format, args...), "component", "cache")
}

// Heal runs the self-healing scan and returns its report. Scan failures are
// deliberately tolerated: a cache that cannot be healed still works as a
// cache (corrupt entries read as misses); healing only keeps the directory
// tidy and observable. Failures to quarantine, however, are counted and
// logged — silently ignoring them would hide a wedged directory behind an
// eternally-rediscovered torn file.
func (c *Cache) Heal() HealReport {
	var rep HealReport
	entries, err := c.fsys().ReadDir(c.dir)
	if err != nil {
		return rep
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(c.dir, name)
		rep.Scanned++
		switch {
		case e.IsDir():
		case strings.HasSuffix(name, ".tmp"):
			// A writer died between CreateTemp and rename; the entry it was
			// building was never published, so the temp is pure litter.
			if err := c.fsys().Remove(path); err == nil {
				rep.RemovedTemps++
			} else {
				rep.RemoveFailures++
				c.logf("exp cache: heal: removing stale temp %s: %v", path, err)
			}
		case strings.HasSuffix(name, ".json"):
			data, err := c.fsys().ReadFile(path)
			if err == nil && validEntryBytes(data) {
				continue
			}
			if qerr := c.fsys().Rename(path, path+QuarantineSuffix); qerr != nil {
				rep.QuarantineFailures++
				c.logf("exp cache: heal: quarantining corrupt entry %s: %v", path, qerr)
				// Last resort: a corrupt entry that can be neither renamed
				// nor removed would be rediscovered by every future scan.
				if rerr := c.fsys().Remove(path); rerr != nil {
					rep.RemoveFailures++
					c.logf("exp cache: heal: removing unquarantinable entry %s: %v", path, rerr)
				}
			} else {
				rep.Quarantined++
			}
		}
	}
	c.lastHeal = rep
	return rep
}

// cacheEntry is the on-disk record: the payload's raw JSON plus a CRC-32C
// over exactly those bytes, so truncation and bit rot are detected without
// trusting the JSON decoder to notice.
type cacheEntry struct {
	Check   uint32          `json:"check"`
	Payload json.RawMessage `json:"payload"`
}

// cachePayload is the checksummed content. Key and Version are stored so a
// hash collision or a stale file can never masquerade as a hit.
type cachePayload struct {
	Key     string
	Version string
	Result  sim.Result
}

var cacheCRC = crc32.MakeTable(crc32.Castagnoli)

// validEntryBytes reports whether data parses as a well-formed, checksummed
// entry (regardless of which job or cache version it belongs to).
func validEntryBytes(data []byte) bool {
	_, ok := DecodeCacheEntry(data)
	return ok
}

// DecodeCacheEntry validates data as a checksummed cache entry and returns
// the job key it stores. It is the integrity check tlsfsck runs offline:
// the CRC must match and the payload must parse, but the entry may belong
// to any job or cache version.
func DecodeCacheEntry(data []byte) (key string, ok bool) {
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Payload == nil {
		return "", false
	}
	if crc32.Checksum(e.Payload, cacheCRC) != e.Check {
		return "", false
	}
	var p cachePayload
	if json.Unmarshal(e.Payload, &p) != nil {
		return "", false
	}
	return p.Key, true
}

// path derives the entry filename from the job hash and the cache version.
func (c *Cache) path(j Job) string {
	sum := sha256.Sum256([]byte(j.Key() + "\n" + c.version))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get returns the cached result for j, if a valid entry exists. Corrupt,
// checksum-failing, or mismatched entries are treated as misses.
func (c *Cache) Get(j Job) (sim.Result, bool) {
	data, err := c.fsys().ReadFile(c.path(j))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Payload == nil {
		return sim.Result{}, false
	}
	if crc32.Checksum(e.Payload, cacheCRC) != e.Check {
		return sim.Result{}, false
	}
	var p cachePayload
	if json.Unmarshal(e.Payload, &p) != nil || p.Key != j.Key() || p.Version != c.version {
		return sim.Result{}, false
	}
	return p.Result, true
}

// Put stores the result for j durably and atomically: the entry is written
// to a temp file, fsync'd, renamed over the final name, and the directory
// is fsync'd — so after Put returns nil, a crash (even kill -9 or power
// loss) leaves either no entry or the complete entry, never a torn one. A
// failed directory sync is an error: the rename may not survive a power
// cut, so the entry cannot be reported durable.
func (c *Cache) Put(j Job, r sim.Result) error {
	payload, err := json.Marshal(cachePayload{Key: j.Key(), Version: c.version, Result: r})
	if err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Check: crc32.Checksum(payload, cacheCRC), Payload: payload})
	if err != nil {
		return err
	}
	tmp, err := c.fsys().CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.fsys().Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		c.fsys().Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.fsys().Remove(tmp.Name())
		return err
	}
	if err := c.fsys().Rename(tmp.Name(), c.path(j)); err != nil {
		c.fsys().Remove(tmp.Name())
		return err
	}
	if err := c.fsys().SyncDir(c.dir); err != nil {
		return fmt.Errorf("cache %s: directory sync after publishing %s: %w", c.dir, j.Key(), err)
	}
	return nil
}
