package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/debug"

	"repro/internal/sim"
)

// cacheSchemaVersion invalidates every on-disk entry when the serialized
// format — or the meaning of any Job input — changes incompatibly. Bump it
// whenever sim.Result or the simulation semantics change.
const cacheSchemaVersion = "exp-cache-v1"

// cacheVersion combines the schema version with the module's build version
// so a rebuilt binary with different simulation code never serves stale
// results.
func cacheVersion() string {
	v := cacheSchemaVersion
	if info, ok := debug.ReadBuildInfo(); ok {
		v += "/" + info.Main.Version
		if info.Main.Sum != "" {
			v += "@" + info.Main.Sum
		}
	}
	return v
}

// Cache is a persistent on-disk result cache: one JSON file per completed
// job, keyed by the job's content hash plus the cache version. Entries for
// jobs whose inputs change are simply never looked up again; delete the
// directory to reclaim the space.
type Cache struct {
	dir     string
	version string
}

// NewCache opens (creating if necessary) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, version: cacheVersion()}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// cacheEntry is the on-disk record. Key and Version are stored so a hash
// collision or a stale file can never masquerade as a hit.
type cacheEntry struct {
	Key     string
	Version string
	Result  sim.Result
}

// path derives the entry filename from the job hash and the cache version.
func (c *Cache) path(j Job) string {
	sum := sha256.Sum256([]byte(j.Key() + "\n" + c.version))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get returns the cached result for j, if a valid entry exists. Corrupt or
// mismatched entries are treated as misses.
func (c *Cache) Get(j Job) (sim.Result, bool) {
	data, err := os.ReadFile(c.path(j))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Key != j.Key() || e.Version != c.version {
		return sim.Result{}, false
	}
	return e.Result, true
}

// Put stores the result for j, atomically (write to a temp file, rename) so
// concurrent workers and interrupted runs never leave a torn entry.
func (c *Cache) Put(j Job, r sim.Result) error {
	data, err := json.Marshal(cacheEntry{Key: j.Key(), Version: c.version, Result: r})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(j))
}
