package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"

	"repro/internal/sim"
)

// cacheSchemaVersion invalidates every on-disk entry when the serialized
// format — or the meaning of any Job input — changes incompatibly. Bump it
// whenever sim.Result or the simulation semantics change.
// v2: checksummed entries (Check over the payload bytes).
const cacheSchemaVersion = "exp-cache-v2"

// cacheVersion combines the schema version with the module's build version
// so a rebuilt binary with different simulation code never serves stale
// results.
func cacheVersion() string {
	v := cacheSchemaVersion
	if info, ok := debug.ReadBuildInfo(); ok {
		v += "/" + info.Main.Version
		if info.Main.Sum != "" {
			v += "@" + info.Main.Sum
		}
	}
	return v
}

// Cache is a persistent on-disk result cache: one JSON file per completed
// job, keyed by the job's content hash plus the cache version. Entries for
// jobs whose inputs change are simply never looked up again; delete the
// directory to reclaim the space.
//
// The cache self-heals: every entry carries a CRC over its payload, and the
// startup scan (NewCache) quarantines files that are truncated or corrupt —
// the torn writes a kill -9 mid-campaign can leave — instead of erroring or
// silently serving them.
type Cache struct {
	dir     string
	version string
}

// NewCache opens (creating if necessary) a cache rooted at dir and runs the
// self-healing scan: stale temp files are removed and unreadable entries are
// renamed aside with a ".quarantined" suffix so they are inspectable but can
// never serve a hit.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, version: cacheVersion()}
	c.heal()
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// heal is the startup scan. Failures to scan are deliberately swallowed: a
// cache that cannot be healed still works as a cache (corrupt entries read
// as misses); healing only keeps the directory tidy and observable.
func (c *Cache) heal() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(c.dir, name)
		switch {
		case e.IsDir():
		case strings.HasSuffix(name, ".tmp"):
			// A writer died between CreateTemp and rename; the entry it was
			// building was never published, so the temp is pure litter.
			os.Remove(path)
		case strings.HasSuffix(name, ".json"):
			data, err := os.ReadFile(path)
			if err != nil || !validEntryBytes(data) {
				os.Rename(path, path+".quarantined")
			}
		}
	}
}

// cacheEntry is the on-disk record: the payload's raw JSON plus a CRC-32C
// over exactly those bytes, so truncation and bit rot are detected without
// trusting the JSON decoder to notice.
type cacheEntry struct {
	Check   uint32          `json:"check"`
	Payload json.RawMessage `json:"payload"`
}

// cachePayload is the checksummed content. Key and Version are stored so a
// hash collision or a stale file can never masquerade as a hit.
type cachePayload struct {
	Key     string
	Version string
	Result  sim.Result
}

var cacheCRC = crc32.MakeTable(crc32.Castagnoli)

// validEntryBytes reports whether data parses as a well-formed, checksummed
// entry (regardless of which job or cache version it belongs to).
func validEntryBytes(data []byte) bool {
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Payload == nil {
		return false
	}
	return crc32.Checksum(e.Payload, cacheCRC) == e.Check
}

// path derives the entry filename from the job hash and the cache version.
func (c *Cache) path(j Job) string {
	sum := sha256.Sum256([]byte(j.Key() + "\n" + c.version))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get returns the cached result for j, if a valid entry exists. Corrupt,
// checksum-failing, or mismatched entries are treated as misses.
func (c *Cache) Get(j Job) (sim.Result, bool) {
	data, err := os.ReadFile(c.path(j))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Payload == nil {
		return sim.Result{}, false
	}
	if crc32.Checksum(e.Payload, cacheCRC) != e.Check {
		return sim.Result{}, false
	}
	var p cachePayload
	if json.Unmarshal(e.Payload, &p) != nil || p.Key != j.Key() || p.Version != c.version {
		return sim.Result{}, false
	}
	return p.Result, true
}

// Put stores the result for j durably and atomically: the entry is written
// to a temp file, fsync'd, renamed over the final name, and the directory is
// fsync'd — so after Put returns, a crash (even kill -9 or power loss) leaves
// either no entry or the complete entry, never a torn one, and a failed
// rename cannot strand the temp file.
func (c *Cache) Put(j Job, r sim.Result) error {
	payload, err := json.Marshal(cachePayload{Key: j.Key(), Version: c.version, Result: r})
	if err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Check: crc32.Checksum(payload, cacheCRC), Payload: payload})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(j)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(c.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
