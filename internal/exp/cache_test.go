package exp

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob()
	if _, ok := c.Get(j); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := j.Execute()
	if err := c.Put(j, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(j)
	if !ok {
		t.Fatal("stored entry missed")
	}
	// The JSON round trip must be lossless — warm-cache report output is
	// required to be byte-identical to a cold run.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached result differs from computed result:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCacheVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	c1 := &Cache{dir: dir, version: "version-a"}
	j := tinyJob()
	if err := c1.Put(j, j.Execute()); err != nil {
		t.Fatal(err)
	}
	c2 := &Cache{dir: dir, version: "version-b"}
	if _, ok := c2.Get(j); ok {
		t.Fatal("entry from another module version served")
	}
	if _, ok := c1.Get(j); !ok {
		t.Fatal("same-version entry lost")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob()
	if err := c.Put(j, j.Execute()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(j), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("corrupt entry served as a hit")
	}
}

func TestWarmBatchExecutesNothing(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := testBatch()

	cold := &Metrics{}
	first, err := (&Runner{Workers: 4, Cache: cache, Metrics: cold}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Snapshot()
	if cs.Executed != len(jobs) || cs.CacheHits != 0 {
		t.Fatalf("cold run: %+v", cs)
	}

	warm := &Metrics{}
	second, err := (&Runner{Workers: 4, Cache: cache, Metrics: warm}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Snapshot()
	if ws.Executed != 0 {
		t.Fatalf("warm rerun executed %d simulations, want 0", ws.Executed)
	}
	if ws.CacheHits != len(jobs) {
		t.Fatalf("warm rerun hit %d/%d", ws.CacheHits, len(jobs))
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Fatalf("job %d not served from cache", i)
		}
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Fatalf("job %d: cached result differs from executed result", i)
		}
	}
}

func TestCacheHealQuarantinesTornFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob()
	want := j.Execute()
	if err := c.Put(j, want); err != nil {
		t.Fatal(err)
	}
	// Litter a kill -9 could leave: a stale temp from a dead writer and a
	// torn (truncated) entry.
	tmp := filepath.Join(dir, "put-12345.tmp")
	torn := filepath.Join(dir, "deadbeefdeadbeef.json")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, []byte(`{"check":123,"payload":{"Key":"tr`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := NewCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived the healing scan")
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn entry still published under its original name")
	}
	if _, err := os.Stat(torn + ".quarantined"); err != nil {
		t.Fatalf("torn entry not quarantined: %v", err)
	}
	// The valid entry survives healing untouched.
	got, ok := c.Get(j)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("healing disturbed a valid entry")
	}
}

func TestCacheMissOnChangedInput(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob()
	if err := cache.Put(j, j.Execute()); err != nil {
		t.Fatal(err)
	}
	j.Seed = 99
	if _, ok := cache.Get(j); ok {
		t.Fatal("changed seed must miss")
	}
}
