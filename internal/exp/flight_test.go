package exp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs/trace"
)

// TestFlightRecorderDumpOnPanic is the panic post-mortem lock: a job that
// panics through every retry must leave a quarantine manifest containing the
// runner's flight-recorder dump — the last N spans with campaign and attempt
// correlation — next to the checkpoints, with no tracer configured (the
// always-on internal ring must cover the uninstrumented case).
func TestFlightRecorderDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{{Machine: nil, Profile: tinyProfile(), Seed: 1}} // nil machine panics
	r := &Runner{Workers: 1, CheckpointDir: dir, Campaign: "camp-test-1"}
	results, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("crashing job reported no error")
	}
	if r.QuarantineSize() != 1 {
		t.Fatal("crashing job not quarantined")
	}

	path := filepath.Join(dir, jobs[0].Key()+".quarantine.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("quarantine manifest not written: %v", err)
	}
	var m QuarantineManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Key != jobs[0].Key() || m.Campaign != "camp-test-1" || m.Err == "" {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if len(m.FlightRecorder) == 0 {
		t.Fatal("manifest carries no flight-recorder spans")
	}
	kinds := map[string]int{}
	for _, sp := range m.FlightRecorder {
		kinds[sp.Kind]++
		if sp.ID == 0 {
			t.Fatal("flight-recorder span has no ID")
		}
	}
	if kinds[trace.KindAttempt] == 0 {
		t.Fatalf("flight recorder holds no attempt spans: %v", kinds)
	}
	if kinds[trace.KindRetry] == 0 {
		t.Fatalf("flight recorder holds no retry spans: %v", kinds)
	}
	var sawCampaign, sawAttemptNo bool
	for _, sp := range m.FlightRecorder {
		if sp.Campaign == "camp-test-1" {
			sawCampaign = true
		}
		if sp.Kind == trace.KindAttempt && sp.Attempt > 0 {
			sawAttemptNo = true
		}
	}
	if !sawCampaign || !sawAttemptNo {
		t.Fatalf("spans missing correlation: campaign=%v attempt=%v", sawCampaign, sawAttemptNo)
	}
}

// TestQuarantineManifestOnlyOnFirst checks the manifest is written once per
// key: re-running the same quarantined job must not rewrite (and so not
// truncate or clobber) the original post-mortem.
func TestQuarantineManifestOnlyOnFirst(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{{Machine: nil, Profile: tinyProfile(), Seed: 2}}
	r := &Runner{Workers: 1, CheckpointDir: dir}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, jobs[0].Key()+".quarantine.json")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("quarantine manifest rewritten on a repeat failure")
	}
}
