package exp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// TestSingleflightSharesOneExecution submits four identical jobs to a
// four-worker pool with an execution that blocks until every duplicate has
// joined the flight: exactly one execution must happen, and the other three
// results must be marked Deduped while sharing the leader's outcome.
func TestSingleflightSharesOneExecution(t *testing.T) {
	job := Job{Machine: machine.CMP8(), Scheme: core.MultiTMVLazy, Profile: tinyProfile(), Seed: 7}
	jobs := []Job{job, job, job, job}

	var execs atomic.Int64
	release := make(chan struct{})
	m := &Metrics{}
	r := &Runner{
		Workers: len(jobs),
		Metrics: m,
		execOverride: func(j Job) sim.Result {
			execs.Add(1)
			<-release
			return sim.Result{ExecCycles: 42}
		},
	}
	go func() {
		// Release the leader only once the three duplicates are waiting, so
		// the test cannot pass by accident of scheduling.
		deadline := time.Now().Add(10 * time.Second)
		for r.flightWaits.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	results, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("identical jobs executed %d times, want 1", got)
	}
	deduped := 0
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Result.ExecCycles != 42 {
			t.Fatalf("job %d: cycles %d, want the shared 42", i, jr.Result.ExecCycles)
		}
		if jr.Deduped {
			deduped++
		}
	}
	if deduped != 3 {
		t.Fatalf("%d results marked Deduped, want 3", deduped)
	}
	s := m.Snapshot()
	if s.Executed != 1 || s.Deduped != 3 {
		t.Fatalf("metrics: executed %d deduped %d, want 1 and 3", s.Executed, s.Deduped)
	}
}

// TestSingleflightDistinctJobsUnaffected makes sure distinct keys never wait
// on each other.
func TestSingleflightDistinctJobsUnaffected(t *testing.T) {
	jobs := testBatch()
	results, err := (&Runner{Workers: 4}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		if jr.Err != nil || jr.Deduped {
			t.Fatalf("job %d: err=%v deduped=%v", i, jr.Err, jr.Deduped)
		}
	}
}
