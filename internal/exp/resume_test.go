package exp

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// resumeBatch is a batch big enough that an interrupt lands mid-campaign:
// every scheme over a moderately sized workload.
func resumeBatch() []Job {
	prof := workload.Euler().Scale(0.1, 0.1, 0.25)
	cfg := machine.NUMA16()
	jobs := []Job{{Machine: cfg, Profile: prof, Seed: 3, Sequential: true}}
	for _, sch := range core.AllSchemes() {
		jobs = append(jobs, Job{Machine: cfg, Scheme: sch, Profile: prof, Seed: 3})
	}
	return jobs
}

// TestInterruptCheckpointResumeBatch is the in-process half of the crash
// drill: cancel a batch mid-run, verify the journal's last word for the
// interrupted jobs is a durable checkpoint, then resume from that state and
// require results identical to an uninterrupted run.
func TestInterruptCheckpointResumeBatch(t *testing.T) {
	jobs := resumeBatch()
	golden, err := (&Runner{Workers: 2}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	ckptDir := filepath.Join(dir, "ckpt")
	cache, err := NewCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run with a context that dies almost immediately. Workers
	// drain at their next commit boundary, checkpointing as they go.
	j1, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r1 := &Runner{
		Workers: 2, Cache: cache, Journal: j1,
		CheckpointDir: ckptDir, CheckpointEvery: 10,
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	first, err := r1.RunBatch(ctx, jobs)
	j1.Close()
	if err == nil {
		t.Skip("batch finished before the interrupt; nothing to resume")
	}
	interrupted := 0
	for _, jr := range first {
		if jr.Err != nil && (errors.Is(jr.Err, ErrJobInterrupted) || errors.Is(jr.Err, context.Canceled)) {
			interrupted++
		}
	}
	if interrupted == 0 {
		t.Skip("no job was interrupted mid-run; nothing to resume")
	}

	// Phase 2: resume from the journal. Completed jobs come from the cache,
	// in-flight ones restore from their checkpoints.
	st, err := LoadCampaign(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for key, ck := range st.Checkpoints {
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("journal names checkpoint %s for %s but it is not durable: %v", ck, key, err)
		}
	}
	j2, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := &Runner{
		Workers: 2, Cache: cache, Journal: j2,
		CheckpointDir: ckptDir, CheckpointEvery: 10,
		Resume: st.Checkpoints,
	}
	second, err := r2.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if second[i].Err != nil {
			t.Fatalf("resumed job %d failed: %v", i, second[i].Err)
		}
		if !reflect.DeepEqual(second[i].Result, golden[i].Result) {
			t.Fatalf("job %d (%s): resumed result differs from uninterrupted run",
				i, jobs[i].Label())
		}
	}
}

// TestCrashRecoverySIGKILL is the full crash drill of the issue: a child
// process runs the sweep with journal + cache + checkpoints, the parent
// SIGKILLs it at randomized (seeded) points, and resumed reruns must
// converge on a final report byte-identical to an uninterrupted run's.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes; skipped with -short")
	}
	jobs := resumeBatch()
	golden, err := (&Runner{Workers: 2}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	goldenBytes, err := reportBytes(golden)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	rng := rand.New(rand.NewSource(42))
	const maxKills = 6
	kills := 0
	for attempt := 0; ; attempt++ {
		if attempt > maxKills+2 {
			t.Fatalf("campaign did not complete after %d attempts", attempt)
		}
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryChild$")
		cmd.Env = append(os.Environ(), "EXP_CRASH_CHILD=1", "EXP_CRASH_DIR="+dir)
		out, done := &cmdOutput{}, make(chan error, 1)
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { done <- cmd.Wait() }()
		if kills < maxKills {
			// SIGKILL at a randomized point inside the campaign window —
			// early kills land mid-first-job, late ones mid-batch.
			delay := time.Duration(20+rng.Intn(400)) * time.Millisecond
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("child failed on its own: %v\n%s", err, out.String())
				}
				// Finished before the kill fired: campaign complete.
			case <-time.After(delay):
				kills++
				cmd.Process.Kill()
				<-done
				continue
			}
		} else if err := <-done; err != nil {
			t.Fatalf("uninterrupted child failed: %v\n%s", err, out.String())
		}
		break
	}
	if kills == 0 {
		t.Log("child always finished before the kill; crash path not exercised this run")
	}

	resumed, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("child reported success but wrote no report: %v", err)
	}
	if string(resumed) != string(goldenBytes) {
		t.Fatalf("report after %d SIGKILL/resume cycles differs from uninterrupted run:\ngot  %s\nwant %s",
			kills, resumed, goldenBytes)
	}
}

// TestCrashRecoveryChild is the re-exec helper for TestCrashRecoverySIGKILL:
// one resume attempt of the fixed campaign. It is a no-op under normal `go
// test` runs.
func TestCrashRecoveryChild(t *testing.T) {
	if os.Getenv("EXP_CRASH_CHILD") == "" {
		t.Skip("helper for TestCrashRecoverySIGKILL")
	}
	dir := os.Getenv("EXP_CRASH_DIR")
	jobs := resumeBatch()
	cache, err := NewCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(dir, "journal.jsonl")
	resume := map[string]string{}
	if _, err := os.Stat(journalPath); err == nil {
		st, err := LoadCampaign(journalPath)
		if err != nil {
			t.Fatalf("journal left by SIGKILL unreadable: %v", err)
		}
		resume = st.Checkpoints
	}
	j, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	r := &Runner{
		Workers: 2, Cache: cache, Journal: j,
		CheckpointDir: filepath.Join(dir, "ckpt"), CheckpointEvery: 10,
		Resume: resume,
	}
	results, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d failed: %v", i, jr.Err)
		}
	}
	data, err := reportBytes(results)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "report.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reportBytes renders a batch as the canonical "final report" the crash
// drill compares: every job's full Result, in submission order.
func reportBytes(results []JobResult) ([]byte, error) {
	rs := make([]sim.Result, len(results))
	for i, jr := range results {
		rs[i] = jr.Result
	}
	return json.MarshalIndent(rs, "", " ")
}

// cmdOutput buffers child output for failure messages.
type cmdOutput struct{ data []byte }

func (c *cmdOutput) Write(p []byte) (int, error) { c.data = append(c.data, p...); return len(p), nil }
func (c *cmdOutput) String() string              { return string(c.data) }
