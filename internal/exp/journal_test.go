package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []JournalRecord{
		{T: RecCampaign, Name: "test"},
		{T: RecJobStart, Key: "k1", Label: "job one"},
		{T: RecCheckpoint, Key: "k1", Ckpt: "/tmp/k1.ckpt", Commits: 40},
		{T: RecJobDone, Key: "k1"},
		{T: RecJobDone, Key: "k2", Err: "boom"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Wall == "" {
			t.Fatalf("record %d: Wall not stamped", i)
		}
		got[i].Wall = ""
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJournalTornTailForgivenAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(JournalRecord{T: RecJobStart, Key: "k1"})
	j.Append(JournalRecord{T: RecJobDone, Key: "k1"})
	j.Close()

	// Simulate a crash mid-append: a partial, unterminated JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"job-start","key":"to`)
	f.Close()

	// Readers forgive the torn tail.
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail not forgiven: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}

	// Reopening for append truncates it so the log stays well-formed.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(JournalRecord{T: RecJobStart, Key: "k2"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Key != "k2" {
		t.Fatalf("after reopen+append: %+v", recs)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), `"to`) {
		t.Fatal("torn tail survived OpenJournal")
	}
}

func TestJournalInteriorCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	content := `{"t":"job-start","key":"k1"}
not json at all
{"t":"job-done","key":"k1"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("interior corruption read without error")
	}
}

func TestReplayJournal(t *testing.T) {
	st := ReplayJournal([]JournalRecord{
		{T: RecCampaign, Name: "sweep"},
		{T: RecJobStart, Key: "a"},
		{T: RecCheckpoint, Key: "a", Ckpt: "a1.ckpt"},
		{T: RecCheckpoint, Key: "a", Ckpt: "a2.ckpt"}, // latest wins
		{T: RecJobStart, Key: "b"},
		{T: RecCheckpoint, Key: "b", Ckpt: "b.ckpt"},
		{T: RecJobDone, Key: "b"}, // done: checkpoint forgotten
		{T: RecJobDone, Key: "c", Err: "panic"},
		{T: RecJobDone, Key: "c"}, // a later success clears the failure
	})
	if st.Name != "sweep" {
		t.Fatalf("campaign name %q", st.Name)
	}
	if !st.Done["b"] || !st.Done["c"] || st.Done["a"] {
		t.Fatalf("done set: %+v", st.Done)
	}
	if got := st.Checkpoints["a"]; got != "a2.ckpt" {
		t.Fatalf("checkpoint for a: %q, want a2.ckpt", got)
	}
	if _, ok := st.Checkpoints["b"]; ok {
		t.Fatal("completed job kept its checkpoint")
	}
	if len(st.Failed) != 0 {
		t.Fatalf("failed set: %+v", st.Failed)
	}
}

// TestReplayJournalClusterRecords replays a fleet campaign's log: leases
// interleaved across workers, completions racing speculative re-issues, and
// lease returns from a drained worker.
func TestReplayJournalClusterRecords(t *testing.T) {
	st := ReplayJournal([]JournalRecord{
		{T: RecCampaign, Name: "fleet"},
		{T: RecLease, Key: "a", Worker: "w1", Lease: 1},
		{T: RecLease, Key: "b", Worker: "w2", Lease: 2},
		{T: RecLease, Key: "c", Worker: "w1", Lease: 3},
		// a completes on w1; b is re-leased speculatively to w1 (straggler)
		// and the duplicate wins there.
		{T: RecJobDone, Key: "a", Worker: "w1"},
		{T: RecLease, Key: "b", Worker: "w1", Lease: 4},
		{T: RecJobDone, Key: "b", Worker: "w1"},
		// w2 drains and returns nothing further; c's lease is returned
		// (expiry) and re-granted to w2, which completes it with a payload.
		{T: RecLeaseReturn, Key: "c", Worker: "w1", Lease: 3},
		{T: RecLease, Key: "c", Worker: "w2", Lease: 5},
		{T: RecJobDone, Key: "c", Worker: "w2", Data: []byte(`{"n":1}`)},
		// d was leased and never heard from again: the resume must requeue it.
		{T: RecLease, Key: "d", Worker: "w2", Lease: 6},
	})
	if !st.Done["a"] || !st.Done["b"] || !st.Done["c"] {
		t.Fatalf("done set: %+v", st.Done)
	}
	if len(st.Leases) != 1 || st.Leases["d"] != "w2" {
		t.Fatalf("leases: %+v, want only d held by w2", st.Leases)
	}
	if string(st.Outcomes["c"]) != `{"n":1}` {
		t.Fatalf("outcome payload for c: %q", st.Outcomes["c"])
	}
	if len(st.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v, want only c", st.Outcomes)
	}
}

// TestJournalTornTailMidLease crashes a coordinator mid-append of a lease
// record: readers forgive the torn tail, the replayed state does not contain
// the half-written lease, and reopening truncates it away.
func TestJournalTornTailMidLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(JournalRecord{T: RecCampaign, Name: "fleet"})
	j.Append(JournalRecord{T: RecLease, Key: "a", Worker: "w1", Lease: 1})
	j.Append(JournalRecord{T: RecJobDone, Key: "a", Worker: "w1"})
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"lease","key":"b","worker":"w2torn","leas`)
	f.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn mid-lease tail not forgiven: %v", err)
	}
	st := ReplayJournal(recs)
	if !st.Done["a"] {
		t.Fatalf("done set: %+v", st.Done)
	}
	if len(st.Leases) != 0 {
		t.Fatalf("torn lease leaked into state: %+v", st.Leases)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(JournalRecord{T: RecLease, Key: "b", Worker: "w2", Lease: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	st = ReplayJournal(recs)
	if st.Leases["b"] != "w2" {
		t.Fatalf("re-appended lease lost: %+v", st.Leases)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "w2torn") {
		t.Fatal("torn lease tail survived OpenJournal")
	}
}

func TestLoadCampaignMissingFile(t *testing.T) {
	if _, err := LoadCampaign(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing journal loaded without error")
	}
}

// Wall is operational context only: two runs of the same campaign under
// different wall clocks must replay to the same state, and with a fixed
// injected clock the journal bytes themselves are run-to-run identical.
func TestJournalWallIndependence(t *testing.T) {
	recs := []JournalRecord{
		{T: RecCampaign, Name: "wall"},
		{T: RecJobStart, Key: "k1"},
		{T: RecCheckpoint, Key: "k1", Ckpt: "/tmp/k1.ckpt", Commits: 7},
		{T: RecJobDone, Key: "k1"},
		{T: RecJobDone, Key: "k2", Err: "boom"},
	}
	write := func(epoch int64) string {
		path := filepath.Join(t.TempDir(), "campaign.jsonl")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		tick := epoch
		j.SetClock(func() time.Time { tick++; return time.Unix(tick, 0) })
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return path
	}

	a, b := write(1_000_000), write(2_000_000)
	ra, err := ReadJournal(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReadJournal(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra[0].Wall == rb[0].Wall {
		t.Fatal("clocks were injected but stamps agree; the test is vacuous")
	}
	if !reflect.DeepEqual(ReplayJournal(ra), ReplayJournal(rb)) {
		t.Error("replayed state depends on the Wall stamp")
	}

	// Identical injected clocks → byte-identical journals.
	da, _ := os.ReadFile(write(42))
	db, _ := os.ReadFile(write(42))
	if !reflect.DeepEqual(da, db) {
		t.Error("fixed clock did not make journal bytes reproducible")
	}
}
