package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []JournalRecord{
		{T: RecCampaign, Name: "test"},
		{T: RecJobStart, Key: "k1", Label: "job one"},
		{T: RecCheckpoint, Key: "k1", Ckpt: "/tmp/k1.ckpt", Commits: 40},
		{T: RecJobDone, Key: "k1"},
		{T: RecJobDone, Key: "k2", Err: "boom"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Wall == "" {
			t.Fatalf("record %d: Wall not stamped", i)
		}
		got[i].Wall = ""
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJournalTornTailForgivenAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(JournalRecord{T: RecJobStart, Key: "k1"})
	j.Append(JournalRecord{T: RecJobDone, Key: "k1"})
	j.Close()

	// Simulate a crash mid-append: a partial, unterminated JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"job-start","key":"to`)
	f.Close()

	// Readers forgive the torn tail.
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail not forgiven: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}

	// Reopening for append truncates it so the log stays well-formed.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(JournalRecord{T: RecJobStart, Key: "k2"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Key != "k2" {
		t.Fatalf("after reopen+append: %+v", recs)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), `"to`) {
		t.Fatal("torn tail survived OpenJournal")
	}
}

func TestJournalInteriorCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	content := `{"t":"job-start","key":"k1"}
not json at all
{"t":"job-done","key":"k1"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("interior corruption read without error")
	}
}

func TestReplayJournal(t *testing.T) {
	st := ReplayJournal([]JournalRecord{
		{T: RecCampaign, Name: "sweep"},
		{T: RecJobStart, Key: "a"},
		{T: RecCheckpoint, Key: "a", Ckpt: "a1.ckpt"},
		{T: RecCheckpoint, Key: "a", Ckpt: "a2.ckpt"}, // latest wins
		{T: RecJobStart, Key: "b"},
		{T: RecCheckpoint, Key: "b", Ckpt: "b.ckpt"},
		{T: RecJobDone, Key: "b"}, // done: checkpoint forgotten
		{T: RecJobDone, Key: "c", Err: "panic"},
		{T: RecJobDone, Key: "c"}, // a later success clears the failure
	})
	if st.Name != "sweep" {
		t.Fatalf("campaign name %q", st.Name)
	}
	if !st.Done["b"] || !st.Done["c"] || st.Done["a"] {
		t.Fatalf("done set: %+v", st.Done)
	}
	if got := st.Checkpoints["a"]; got != "a2.ckpt" {
		t.Fatalf("checkpoint for a: %q, want a2.ckpt", got)
	}
	if _, ok := st.Checkpoints["b"]; ok {
		t.Fatal("completed job kept its checkpoint")
	}
	if len(st.Failed) != 0 {
		t.Fatalf("failed set: %+v", st.Failed)
	}
}

func TestLoadCampaignMissingFile(t *testing.T) {
	if _, err := LoadCampaign(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing journal loaded without error")
	}
}
