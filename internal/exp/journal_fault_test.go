package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iofault"
)

// Crash-consistency of the journal WAL: record a realistic append sequence
// through the iofault recorder, enumerate every durable state a power cut
// could leave, and require that recovery (OpenJournal's torn-tail
// truncation + ReplayJournal) loses no acknowledged record and accepts no
// torn partial line.
func TestJournalCrashConsistency(t *testing.T) {
	root := t.TempDir()
	rec := iofault.NewRecorder(root)
	path := filepath.Join(root, "journal.jsonl")
	j, err := OpenJournalFS(rec, path)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"job-a", "job-b", "job-c"}
	appendRec := func(r JournalRecord, note string) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatalf("append %v: %v", r, err)
		}
		rec.Note(note)
	}
	appendRec(JournalRecord{T: RecCampaign, Name: "drill"}, "campaign")
	for _, k := range keys {
		appendRec(JournalRecord{T: RecJobStart, Key: k}, "start:"+k)
		appendRec(JournalRecord{T: RecCheckpoint, Key: k, Ckpt: k + ".ckpt"}, "ckpt:"+k)
		appendRec(JournalRecord{T: RecJobDone, Key: k}, "done:"+k)
	}
	j.Close()

	err = iofault.ForEachCrashState(rec.Trace(), t.TempDir(), func(s iofault.CrashState, dir string) error {
		jp := filepath.Join(dir, "journal.jsonl")
		// Recovery step 1: reopen (truncates any torn tail), as -resume does.
		if _, err := os.Stat(jp); err == nil {
			j2, err := OpenJournal(jp)
			if err != nil {
				return fmt.Errorf("reopen: %v", err)
			}
			j2.Close()
		}
		// Recovery step 2: replay.
		var st CampaignState
		if _, err := os.Stat(jp); err == nil {
			st, err = LoadCampaign(jp)
			if err != nil {
				return fmt.Errorf("replay: %v", err)
			}
		} else if len(s.Acked) > 0 {
			return fmt.Errorf("journal file lost after %d acked appends", len(s.Acked))
		}
		// Invariant 1: every acknowledged record is visible in the replay.
		for _, note := range s.Acked {
			kind, key, ok := strings.Cut(note, ":")
			if !ok {
				continue
			}
			switch kind {
			case "done":
				if !st.Done[key] {
					return fmt.Errorf("acked done record for %s lost (done=%v)", key, st.Done)
				}
			case "ckpt":
				// A later done record legitimately clears the checkpoint.
				if _, inflight := st.Checkpoints[key]; !inflight && !st.Done[key] {
					return fmt.Errorf("acked checkpoint for %s lost", key)
				}
			}
		}
		// Invariant 2: nothing invented — replayed keys all come from the
		// recorded campaign.
		for k := range st.Done {
			if k != "job-a" && k != "job-b" && k != "job-c" {
				return fmt.Errorf("replay invented done key %q", k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A zero-length journal file — the lax crash state of a journal created but
// never appended to — must open and replay as an empty campaign.
func TestJournalZeroLengthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open zero-length journal: %v", err)
	}
	defer j.Close()
	st, err := LoadCampaign(path)
	if err != nil {
		t.Fatalf("replay zero-length journal: %v", err)
	}
	if len(st.Done) != 0 || len(st.Checkpoints) != 0 {
		t.Fatalf("zero-length journal replayed state %+v", st)
	}
	// And it must still be appendable.
	if err := j.Append(JournalRecord{T: RecCampaign, Name: "x"}); err != nil {
		t.Fatal(err)
	}
}

// ENOSPC mid-append: the record must not be acknowledged, the journal must
// poison itself (no retry-and-report-success), and a reopen must recover
// every previously acknowledged record.
func TestJournalENOSPCMidAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	inj := iofault.NewInjector(iofault.Plan{Seed: 11})
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{T: RecJobDone, Key: "ok-1"}); err != nil {
		t.Fatal(err)
	}
	// Every write from here on is short (ENOSPC after a prefix).
	inj.SetShortWrites(1)
	err = j.Append(JournalRecord{T: RecJobDone, Key: "lost"})
	if err == nil {
		t.Fatal("append with ENOSPC mid-write acknowledged")
	}
	// Poisoned: a retry must fail fast, not corrupt the log.
	if err := j.Append(JournalRecord{T: RecJobDone, Key: "retry"}); err == nil {
		t.Fatal("append on poisoned journal acknowledged")
	}
	if j.Broken() == nil {
		t.Fatal("journal not marked broken")
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	j2.Close()
	st, err := LoadCampaign(path)
	if err != nil {
		t.Fatalf("replay after ENOSPC: %v", err)
	}
	if !st.Done["ok-1"] {
		t.Fatal("acked record ok-1 lost")
	}
	if st.Done["lost"] || st.Done["retry"] {
		t.Fatalf("unacknowledged record survived: %v", st.Done)
	}
}

// A journal whose final fsync failed: the unsynced line is dropped (fsyncgate
// drops the pages), the append was not acknowledged, and replay after reboot
// yields exactly the acknowledged prefix.
func TestJournalFailedFinalFsync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	inj := iofault.NewInjector(iofault.Plan{Seed: 12})
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(JournalRecord{T: RecJobDone, Key: fmt.Sprintf("ok-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetSyncFailures(1) // the next fsync fails
	err = j.Append(JournalRecord{T: RecJobDone, Key: "unsynced"})
	if err == nil {
		t.Fatal("append with failed fsync acknowledged")
	}
	if j.Broken() == nil {
		t.Fatal("journal not poisoned after failed fsync")
	}
	j.Close()

	st, err := LoadCampaign(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !st.Done[fmt.Sprintf("ok-%d", i)] {
			t.Fatalf("acked record ok-%d lost", i)
		}
	}
	if st.Done["unsynced"] {
		t.Fatal("record whose fsync failed was replayed as durable")
	}
}
