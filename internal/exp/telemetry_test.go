package exp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestTelemetryServesCampaignState runs a tiny observed sweep with the
// telemetry server attached and scrapes both endpoints.
func TestTelemetryServesCampaignState(t *testing.T) {
	m := new(Metrics)
	tel := &Telemetry{Name: "test-campaign", Metrics: m}
	tel.AddGauge("custom_pool_depth", func() float64 { return 7 })
	addr, err := tel.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Stop()

	prof := workload.Euler().Scale(0.02, 0.05, 0.25)
	reg := obs.NewRegistry()
	jobs := []Job{
		{Machine: machine.NUMA16(), Scheme: core.MultiTMVEager, Profile: prof, Seed: 1,
			Obs: &obs.Config{Registry: reg}},
		{Machine: machine.NUMA16(), Profile: prof, Seed: 1, Sequential: true},
	}
	r := &Runner{Workers: 1, Metrics: m, Progress: tel.ObserveJob}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	metrics := scrape(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		"# TYPE tls_jobs_done gauge", "tls_jobs_done 2",
		"tls_jobs_total 2", "tls_jobs_remaining 0",
		"tls_custom_pool_depth 7",
		"# TYPE tls_run_sim_commits counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	for _, banned := range []string{"NaN", "+Inf", "-Inf"} {
		if strings.Contains(metrics, banned) {
			t.Errorf("/metrics contains %s:\n%s", banned, metrics)
		}
	}

	var view progressView
	if err := json.Unmarshal([]byte(scrape(t, "http://"+addr+"/progress")), &view); err != nil {
		t.Fatalf("/progress is not valid JSON: %v", err)
	}
	if view.Campaign != "test-campaign" || view.Done != 2 || view.Remaining != 0 {
		t.Errorf("progress view = %+v", view)
	}
	if len(view.Recent) != 2 {
		t.Errorf("recent jobs = %d, want 2", len(view.Recent))
	}
	for _, rj := range view.Recent {
		if rj.Label == "" {
			t.Errorf("recent job without label: %+v", rj)
		}
	}

	if !strings.Contains(scrape(t, "http://"+addr+"/"), "campaign telemetry") {
		t.Error("index page missing")
	}
}

// TestTelemetryZeroStateHasNoNaN covers the first-scrape race: a server
// whose Metrics has seen no batches (and one with no Metrics at all) must
// still render finite values everywhere.
func TestTelemetryZeroStateHasNoNaN(t *testing.T) {
	for name, tel := range map[string]*Telemetry{
		"zero metrics": {Name: "idle", Metrics: new(Metrics)},
		"nil metrics":  {Name: "idle"},
	} {
		addr, err := tel.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		metrics := scrape(t, "http://"+addr+"/metrics")
		progress := scrape(t, "http://"+addr+"/progress")
		tel.Stop()
		for _, banned := range []string{"NaN", "Inf"} {
			if strings.Contains(metrics, banned) {
				t.Errorf("%s: /metrics contains %s:\n%s", name, banned, metrics)
			}
			if strings.Contains(progress, banned) {
				t.Errorf("%s: /progress contains %s:\n%s", name, banned, progress)
			}
		}
		if !strings.Contains(metrics, "tls_jobs_done 0") {
			t.Errorf("%s: missing zero jobs_done:\n%s", name, metrics)
		}
		var view progressView
		if err := json.Unmarshal([]byte(progress), &view); err != nil {
			t.Errorf("%s: /progress is not valid JSON: %v", name, err)
		}
	}
}

// TestTelemetryRecentRing checks the /progress ring keeps only the newest
// entries, oldest first.
func TestTelemetryRecentRing(t *testing.T) {
	tel := &Telemetry{Name: "ring"}
	for i := 0; i < telemetryRecent+5; i++ {
		tel.ObserveJob(JobResult{Job: Job{Seed: uint64(i)}, Wall: time.Duration(i)})
	}
	tel.mu.Lock()
	n, seen := len(tel.recent), tel.seen
	tel.mu.Unlock()
	if n != telemetryRecent {
		t.Errorf("ring size = %d, want %d", n, telemetryRecent)
	}
	if seen != telemetryRecent+5 {
		t.Errorf("seen = %d, want %d", seen, telemetryRecent+5)
	}
}

// TestSnapshotZeroValueString is the satellite regression for the first
// progress line: a zero snapshot (no jobs, no elapsed time) must not print
// NaN or Inf anywhere.
func TestSnapshotZeroValueString(t *testing.T) {
	var s Snapshot
	line := s.String()
	for _, banned := range []string{"NaN", "Inf"} {
		if strings.Contains(line, banned) {
			t.Errorf("zero snapshot prints %s: %q", banned, line)
		}
	}
	if s.ETA() != 0 {
		t.Errorf("zero snapshot ETA = %v, want 0", s.ETA())
	}
	if s.CyclesPerSecond() != 0 {
		t.Errorf("zero snapshot cycles/s = %v, want 0", s.CyclesPerSecond())
	}
	// One done job with zero elapsed time (a fast cache hit on a coarse
	// clock) must also stay finite.
	s = Snapshot{Total: 10, Done: 1, CacheHits: 1}
	if eta := s.ETA(); eta < 0 {
		t.Errorf("eta = %v, want >= 0", eta)
	}
	if strings.Contains(s.String(), "NaN") || strings.Contains(s.String(), "Inf") {
		t.Errorf("snapshot prints non-finite values: %q", s.String())
	}
}
