package exp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Telemetry serves live campaign state over HTTP while a sweep runs: a
// Prometheus-text /metrics endpoint (orchestration counters from Metrics,
// caller-registered gauges, and aggregated per-run obs registries) and a
// JSON /progress view with the most recent job outcomes. It is the
// machinery behind the campaign CLIs' -listen flag.
//
// The server observes but never steers: simulations remain deterministic
// whether or not anyone is scraping. All methods are safe for concurrent
// use; the zero value (plus Name/Metrics) is ready to Start.
type Telemetry struct {
	// Name identifies the campaign ("tlssweep", "tlsreport", "tlschaos").
	Name string
	// Metrics, when non-nil, supplies the orchestration counters.
	Metrics *Metrics

	mu      sync.Mutex
	gauges  []telemetryGauge
	runSums map[string]uint64 // aggregated per-run obs counter totals
	recent  []RecentJob       // ring of the latest finished jobs
	next    int               // ring write cursor
	seen    int               // total jobs observed
	ln      net.Listener
	srv     *http.Server
}

// telemetryRecent is the /progress ring size: enough to see what the pool
// is chewing on without unbounded growth on long campaigns.
const telemetryRecent = 32

type telemetryGauge struct {
	name string
	fn   func() float64
}

// RecentJob is one entry of the /progress recent-jobs ring.
type RecentJob struct {
	Label      string `json:"label"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	WallMS     int64  `json:"wall_ms"`
	ExecCycles uint64 `json:"exec_cycles"`
}

// AddGauge registers a named gauge evaluated at scrape time, for callers
// with their own pools (tlschaos) or bespoke state worth exposing. Names
// should be bare metric names; /metrics prefixes them with "tls_".
func (t *Telemetry) AddGauge(name string, fn func() float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauges = append(t.gauges, telemetryGauge{name: name, fn: fn})
}

// ObserveJob records a finished job for /progress and folds any observed
// run's obs counters into the aggregated /metrics totals. Chain it into
// Runner.Progress.
func (t *Telemetry) ObserveJob(jr JobResult) {
	rj := RecentJob{
		Label:    jr.Job.Label(),
		Cached:   jr.Cached,
		Attempts: jr.Attempts,
		WallMS:   jr.Wall.Milliseconds(),
	}
	if jr.Err != nil {
		rj.Error = jr.Err.Error()
	} else {
		rj.ExecCycles = uint64(jr.Result.ExecCycles)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if len(t.recent) < telemetryRecent {
		t.recent = append(t.recent, rj)
	} else {
		t.recent[t.next] = rj
		t.next = (t.next + 1) % telemetryRecent
	}
	if jr.Job.Obs != nil {
		t.aggregateLocked(jr.Job.Obs.Registry)
	}
}

// ObserveRun folds one run's obs registry into the aggregated per-run
// counter totals exposed on /metrics, for callers that run simulators
// outside a Runner.
func (t *Telemetry) ObserveRun(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aggregateLocked(reg)
}

func (t *Telemetry) aggregateLocked(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if t.runSums == nil {
		t.runSums = make(map[string]uint64)
	}
	for _, name := range reg.CounterNames() {
		t.runSums[name] += reg.CounterValue(name)
	}
}

// Handler returns the HTTP handler serving /metrics and /progress.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/progress", t.serveProgress)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "%s campaign telemetry: /metrics (Prometheus text), /progress (JSON)\n", t.Name)
	})
	return mux
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var s Snapshot
	if t.Metrics != nil {
		s = t.Metrics.Snapshot()
	}
	// Orchestration counters, in a fixed order. Every value is finite by
	// construction: ETA and CyclesPerSecond guard their divisions.
	obs.PromMetric(w, "tls_jobs_total", "gauge", float64(s.Total))
	obs.PromMetric(w, "tls_jobs_done", "gauge", float64(s.Done))
	obs.PromMetric(w, "tls_jobs_remaining", "gauge", float64(s.Remaining()))
	obs.PromMetric(w, "tls_cache_hits", "counter", float64(s.CacheHits))
	obs.PromMetric(w, "tls_jobs_deduped", "counter", float64(s.Deduped))
	obs.PromMetric(w, "tls_jobs_executed", "counter", float64(s.Executed))
	obs.PromMetric(w, "tls_job_errors", "counter", float64(s.Errors))
	obs.PromMetric(w, "tls_job_retries", "counter", float64(s.Retries))
	obs.PromMetric(w, "tls_job_timeouts", "counter", float64(s.Timeouts))
	obs.PromMetric(w, "tls_jobs_quarantined", "counter", float64(s.Quarantined))
	obs.PromMetric(w, "tls_cache_put_errors", "counter", float64(s.CachePutErrors))
	obs.PromMetric(w, "tls_journal_errors", "counter", float64(s.JournalErrors))
	obs.PromMetric(w, "tls_cache_quarantined", "counter", float64(s.CacheQuarantined))
	obs.PromMetric(w, "tls_cache_quarantine_errors", "counter", float64(s.CacheQuarantineErrors))
	obs.PromMetric(w, "tls_sim_cycles_total", "counter", float64(s.SimCycles))
	obs.PromMetric(w, "tls_sim_cycles_per_second", "gauge", s.CyclesPerSecond())
	obs.PromMetric(w, "tls_elapsed_seconds", "gauge", s.Elapsed.Seconds())
	obs.PromMetric(w, "tls_eta_seconds", "gauge", s.ETA().Seconds())

	t.mu.Lock()
	gauges := append([]telemetryGauge(nil), t.gauges...)
	sums := make(map[string]uint64, len(t.runSums))
	for k, v := range t.runSums {
		sums[k] = v
	}
	t.mu.Unlock()

	for _, g := range gauges {
		obs.PromMetric(w, "tls_"+g.name, "gauge", g.fn())
	}
	// Aggregated per-run obs counters, sorted for a stable scrape.
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		obs.PromMetric(w, "tls_run_"+name, "counter", float64(sums[name]))
	}
}

// progressView is the /progress JSON document.
type progressView struct {
	Campaign        string      `json:"campaign"`
	Total           int         `json:"total"`
	Done            int         `json:"done"`
	Remaining       int         `json:"remaining"`
	CacheHits       int         `json:"cache_hits"`
	Deduped         int         `json:"deduped"`
	Executed        int         `json:"executed"`
	Errors          int         `json:"errors"`
	Retries         int         `json:"retries"`
	Timeouts        int         `json:"timeouts"`
	Quarantined     int         `json:"quarantined"`
	ElapsedSeconds  float64     `json:"elapsed_seconds"`
	ETASeconds      float64     `json:"eta_seconds"`
	SimCycles       uint64      `json:"sim_cycles"`
	CyclesPerSecond float64     `json:"cycles_per_second"`
	Summary         string      `json:"summary"`
	Recent          []RecentJob `json:"recent"`
}

func (t *Telemetry) serveProgress(w http.ResponseWriter, _ *http.Request) {
	var s Snapshot
	if t.Metrics != nil {
		s = t.Metrics.Snapshot()
	}
	t.mu.Lock()
	// Oldest-first: the ring cursor marks the oldest entry once full.
	recent := make([]RecentJob, 0, len(t.recent))
	recent = append(recent, t.recent[t.next:]...)
	recent = append(recent, t.recent[:t.next]...)
	t.mu.Unlock()

	view := progressView{
		Campaign: t.Name, Total: s.Total, Done: s.Done, Remaining: s.Remaining(),
		CacheHits: s.CacheHits, Deduped: s.Deduped, Executed: s.Executed, Errors: s.Errors,
		Retries: s.Retries, Timeouts: s.Timeouts, Quarantined: s.Quarantined,
		ElapsedSeconds:  s.Elapsed.Seconds(),
		ETASeconds:      s.ETA().Seconds(),
		SimCycles:       s.SimCycles,
		CyclesPerSecond: s.CyclesPerSecond(),
		Summary:         s.String(),
		Recent:          recent,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}

// Start binds addr (":0" picks a free port) and serves in the background,
// returning the bound address for log lines and tests.
func (t *Telemetry) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.ln = ln
	t.srv = &http.Server{Handler: t.Handler(), ReadHeaderTimeout: 5 * time.Second}
	srv := t.srv
	t.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Stop closes the listener and any in-flight connections. Safe to call
// without a prior Start.
func (t *Telemetry) Stop() {
	t.mu.Lock()
	srv := t.srv
	t.srv, t.ln = nil, nil
	t.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}
