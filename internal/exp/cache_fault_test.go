package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iofault"
	"repro/internal/sim"
)

// failRenameFS wraps an FS and fails every Rename whose target matches
// block, exercising the heal scan's quarantine-failure accounting.
type failRenameFS struct {
	iofault.FS
	block string // substring of the rename target to fail
}

func (f failRenameFS) Rename(oldpath, newpath string) error {
	if f.block != "" && strings.Contains(newpath, f.block) {
		return &os.PathError{Op: "rename", Path: newpath, Err: os.ErrPermission}
	}
	return f.FS.Rename(oldpath, newpath)
}

// failRemoveFS additionally fails Remove, so neither quarantine path works.
type failRemoveFS struct {
	failRenameFS
}

func (f failRemoveFS) Remove(name string) error {
	return &os.PathError{Op: "remove", Path: name, Err: os.ErrPermission}
}

// A corrupt entry whose quarantine rename fails must be counted and logged,
// not silently ignored, and the fallback removal must reclaim it.
func TestCacheHealQuarantineFailureCounted(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("not a valid entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	c := &Cache{dir: dir, version: "v", fs: failRenameFS{FS: iofault.Real, block: QuarantineSuffix},
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	rep := c.Heal()
	if rep.QuarantineFailures != 1 {
		t.Fatalf("QuarantineFailures = %d, want 1 (%+v)", rep.QuarantineFailures, rep)
	}
	if len(logged) == 0 {
		t.Fatal("quarantine failure not logged")
	}
	// The fallback Remove succeeded, so the corrupt entry is gone.
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not reclaimed by fallback removal: %v", err)
	}
	if rep.RemoveFailures != 0 {
		t.Fatalf("RemoveFailures = %d, want 0", rep.RemoveFailures)
	}
}

// When neither quarantine nor removal works, both failures are counted so
// the wedged directory is observable.
func TestCacheHealRemoveFailureCounted(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Cache{dir: dir, version: "v",
		fs:   failRemoveFS{failRenameFS{FS: iofault.Real, block: QuarantineSuffix}},
		Logf: func(string, ...any) {}}
	rep := c.Heal()
	if rep.QuarantineFailures != 1 || rep.RemoveFailures != 1 {
		t.Fatalf("got %+v, want 1 quarantine failure and 1 remove failure", rep)
	}
}

// Metrics surface the heal counters (satellite: quarantine failures must be
// visible, not just logged).
func TestMetricsObserveHeal(t *testing.T) {
	var m Metrics
	m.ObserveHeal(HealReport{Quarantined: 2, QuarantineFailures: 1, RemoveFailures: 1})
	s := m.Snapshot()
	if s.CacheQuarantined != 2 {
		t.Fatalf("CacheQuarantined = %d, want 2", s.CacheQuarantined)
	}
	if s.CacheQuarantineErrors != 2 {
		t.Fatalf("CacheQuarantineErrors = %d, want 2", s.CacheQuarantineErrors)
	}
	line := s.String()
	if !strings.Contains(line, "2 cache entries quarantined") || !strings.Contains(line, "2 cache quarantine errors") {
		t.Fatalf("metrics line missing heal counters: %s", line)
	}
}

// Put must propagate a failed directory sync: without it the rename that
// published the entry may not survive a power cut.
func TestCachePutPropagatesDirSyncFailure(t *testing.T) {
	inj := iofault.NewInjector(iofault.Plan{Seed: 21})
	c, err := NewCacheFS(inj, filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	job := tinyJob()
	inj.SetSyncFailures(1)
	if err := c.Put(job, sim.Result{ExecCycles: 1}); err == nil {
		t.Fatal("Put with failed directory sync reported success")
	}
}

// Crash-consistency of the cache: record two Puts through the recorder,
// enumerate every crash state, and require that after the heal scan (a) any
// acknowledged Put still serves a hit, (b) no temp litter and no invalid
// unquarantined .json survives.
func TestCacheCrashConsistency(t *testing.T) {
	root := t.TempDir()
	rec := iofault.NewRecorder(root)
	dir := filepath.Join(root, "cache")
	c, err := NewCacheFS(rec, dir)
	if err != nil {
		t.Fatal(err)
	}
	jobA, jobB := tinyJob(), tinyJob()
	jobB.Seed = jobA.Seed + 99
	version := c.version
	if err := c.Put(jobA, sim.Result{ExecCycles: 11}); err != nil {
		t.Fatal(err)
	}
	rec.Note("put:a")
	if err := c.Put(jobB, sim.Result{ExecCycles: 22}); err != nil {
		t.Fatal(err)
	}
	rec.Note("put:b")

	err = iofault.ForEachCrashState(rec.Trace(), t.TempDir(), func(s iofault.CrashState, stateDir string) error {
		cdir := filepath.Join(stateDir, "cache")
		c2, err := NewCache(cdir)
		if err != nil {
			return fmt.Errorf("reopen cache: %v", err)
		}
		c2.version = version // same binary as the writer
		for _, note := range s.Acked {
			var job Job
			var want int
			switch note {
			case "put:a":
				job, want = jobA, 11
			case "put:b":
				job, want = jobB, 22
			default:
				continue
			}
			r, ok := c2.Get(job)
			if !ok {
				return fmt.Errorf("acked %s lost after heal", note)
			}
			if int(r.ExecCycles) != want {
				return fmt.Errorf("acked %s returned wrong result: %+v", note, r)
			}
		}
		// After heal: no temp litter, no invalid unquarantined entries.
		entries, err := os.ReadDir(cdir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, ".tmp") {
				return fmt.Errorf("temp file %s survived heal", name)
			}
			if strings.HasSuffix(name, ".json") {
				data, err := os.ReadFile(filepath.Join(cdir, name))
				if err != nil {
					return err
				}
				if _, ok := DecodeCacheEntry(data); !ok {
					return fmt.Errorf("invalid entry %s survived heal unquarantined", name)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
