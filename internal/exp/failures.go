package exp

import (
	"fmt"
	"strings"
)

// Failure is one entry of a sweep's failure manifest: a job whose result
// could not be obtained, with enough context to reproduce or triage it.
type Failure struct {
	// Label is the job's human-readable description.
	Label string
	// Key is the job's content hash (the cache / quarantine key).
	Key string
	// Err is the final error text.
	Err string
	// TimedOut marks a watchdog-cancelled job; Quarantined a job skipped
	// because an identical one already failed.
	TimedOut    bool
	Quarantined bool
	// Attempts is how many times the job executed before giving up.
	Attempts int
}

// Kind names the failure class for rendering.
func (f Failure) Kind() string {
	switch {
	case f.TimedOut:
		return "timeout"
	case f.Quarantined:
		return "quarantined"
	default:
		return "error"
	}
}

// CollectFailures extracts the failure manifest from a batch's results, in
// submission order.
func CollectFailures(results []JobResult) []Failure {
	var out []Failure
	for _, jr := range results {
		if jr.Err == nil {
			continue
		}
		out = append(out, Failure{
			Label:       jr.Job.Label(),
			Key:         jr.Job.Key(),
			Err:         jr.Err.Error(),
			TimedOut:    jr.TimedOut,
			Quarantined: jr.Quarantined,
			Attempts:    jr.Attempts,
		})
	}
	return out
}

// RenderFailureManifest renders the manifest as a text block for the
// experiment outputs ("" when the sweep was clean). Errors are truncated to
// their first line: the full text (with stack traces) is in the job
// results, the manifest is for orientation.
func RenderFailureManifest(failures []Failure) string {
	if len(failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FAILURE MANIFEST: %d job(s) without results\n", len(failures))
	for _, f := range failures {
		msg := f.Err
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		fmt.Fprintf(&b, "  [%s] %s (attempts %d, key %.12s): %s\n",
			f.Kind(), f.Label, f.Attempts, f.Key, msg)
	}
	return b.String()
}
