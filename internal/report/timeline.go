package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MicroWorkload returns the small imbalanced loop used to reproduce the
// concept figures: tasks long enough to overlap, with every task creating
// its own version of the same variables (the X writes of Figure 5).
func MicroWorkload(tasks int) workload.Profile {
	return workload.Profile{
		Name:           "micro",
		Tasks:          tasks,
		InstrPerTask:   6000,
		FootprintBytes: 2048,
		WriteDensity:   16,
		PrivFrac:       1.0,
		WritePhase:     0.5,
		ImbalanceCV:    0.9,
		ReadsPerWrite:  1.0,
		SharedReadFrac: 0.2,
		HotReadWords:   1024,
	}
}

// MicroMachine returns a small machine for the concept figures.
func MicroMachine(procs int) *machine.Config {
	cfg := machine.NUMA16()
	cfg.Name = fmt.Sprintf("NUMA%d", procs)
	cfg.Procs = procs
	cfg.Banks = procs
	// Make commit work clearly visible on the timeline, as in Figure 6.
	cfg.CommitPerLine = 60
	return cfg
}

// Timeline renders a Figure 5/6-style Gantt chart of a traced run: one lane
// per processor, execution segments labelled by task, commit segments
// marked with 'c', squashes with 'x'.
func Timeline(w io.Writer, r sim.Result, procs int, width int) {
	if width <= 0 {
		width = 100
	}
	if len(r.Trace) == 0 {
		fmt.Fprintln(w, "(no trace recorded)")
		return
	}
	end := r.ExecCycles
	if end == 0 {
		end = 1
	}
	col := func(t event.Time) int {
		c := int(uint64(t) * uint64(width) / uint64(end))
		if c >= width {
			c = width - 1
		}
		return c
	}
	lanes := make([][]byte, procs)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(" ", width))
	}
	type open struct {
		at   event.Time
		task ids.TaskID
	}
	running := map[ids.ProcID]open{}
	committing := map[ids.TaskID]open{}
	taskGlyph := func(t ids.TaskID) byte {
		return byte('0' + (uint64(t)-1)%10)
	}
	paint := func(lane []byte, from, to event.Time, glyph byte) {
		a, b := col(from), col(to)
		for i := a; i <= b && i < len(lane); i++ {
			lane[i] = glyph
		}
	}
	for _, ev := range r.Trace {
		if int(ev.Proc) >= procs {
			continue
		}
		lane := lanes[ev.Proc]
		switch ev.Kind {
		case sim.TraceStart:
			running[ev.Proc] = open{at: ev.When, task: ev.Task}
		case sim.TraceFinish, sim.TraceSquash:
			if o, ok := running[ev.Proc]; ok && o.task == ev.Task {
				paint(lane, o.at, ev.When, taskGlyph(ev.Task))
				delete(running, ev.Proc)
			}
			if ev.Kind == sim.TraceSquash {
				lane[col(ev.When)] = 'x'
			}
		case sim.TraceCommitStart:
			committing[ev.Task] = open{at: ev.When, task: ev.Task}
		case sim.TraceCommitEnd:
			if o, ok := committing[ev.Task]; ok {
				paint(lane, o.at, ev.When, 'c')
				delete(committing, ev.Task)
			}
		}
	}
	fmt.Fprintf(w, "  time 0 %s %d cycles\n", strings.Repeat("-", width-14), r.ExecCycles)
	for i, lane := range lanes {
		fmt.Fprintf(w, "  P%-2d |%s|\n", i, string(lane))
	}
	fmt.Fprintln(w, "  digits: task executing (task index mod 10); c: commit merge; x: squash")
}

// Figure5 runs the SingleT / MultiT&SV / MultiT&MV comparison of Figure 5
// on a 2-processor machine with four imbalanced tasks per scheme and
// renders the three timelines.
func Figure5(w io.Writer, seed uint64) map[string]sim.Result {
	out := map[string]sim.Result{}
	fmt.Fprintln(w, "Figure 5. Four tasks under SingleT (a), MultiT&SV (b), and MultiT&MV (c)")
	fmt.Fprintln(w)
	for _, sch := range []core.Scheme{core.SingleTEager, core.MultiTSVEager, core.MultiTMVEager} {
		gen := workload.NewGenerator(MicroWorkload(4), seed)
		s := sim.New(MicroMachine(2), sch, gen)
		s.EnableTrace()
		r := s.Run()
		out[sch.String()] = r
		fmt.Fprintf(w, "(%v) total %d cycles\n", sch, r.ExecCycles)
		Timeline(w, r, 2, 100)
		fmt.Fprintln(w)
	}
	return out
}

// Figure6 contrasts the execution and commit wavefronts of Eager and Lazy
// merging on a 3-processor machine (Figure 6 (a)-(d)).
func Figure6(w io.Writer, seed uint64) map[string]sim.Result {
	out := map[string]sim.Result{}
	fmt.Fprintln(w, "Figure 6. Execution and commit wavefronts under different schemes")
	fmt.Fprintln(w)
	schemes := []core.Scheme{
		core.MultiTMVEager, core.MultiTMVLazy,
		core.SingleTEager, core.SingleTLazy,
	}
	labels := []string{"(a)", "(b)", "(c)", "(d)"}
	for i, sch := range schemes {
		gen := workload.NewGenerator(MicroWorkload(9), seed)
		s := sim.New(MicroMachine(3), sch, gen)
		s.EnableTrace()
		r := s.Run()
		out[sch.String()] = r
		fmt.Fprintf(w, "%s %v: total %d cycles\n", labels[i], sch, r.ExecCycles)
		Timeline(w, r, 3, 100)
		fmt.Fprintln(w)
	}
	return out
}
