package report

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func exportGrid(t *testing.T) *Grid {
	t.Helper()
	return RunGrid(machine.CMP8(), []core.Scheme{core.SingleTEager, core.MultiTMVLazy},
		Options{Apps: fastApps()[:2], Seed: 21})
}

func TestExportGridCSV(t *testing.T) {
	g := exportGrid(t)
	var buf bytes.Buffer
	if err := ExportGridCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 apps x 2 schemes.
	if len(rows) != 1+4 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0][0] != "machine" || rows[0][len(rows[0])-1] != "oracle_violations" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged row: %v", row)
		}
		if row[0] != "CMP8" {
			t.Errorf("machine column = %q", row[0])
		}
		exec, err := strconv.ParseUint(row[3], 10, 64)
		if err != nil || exec == 0 {
			t.Errorf("exec_cycles column bad: %q", row[3])
		}
		// Stall fractions sum to ~1 with busy.
		sum := 0.0
		for _, col := range row[7:13] {
			v, err := strconv.ParseFloat(col, 64)
			if err != nil {
				t.Fatalf("fraction column bad: %q", col)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("breakdown fractions sum to %f", sum)
		}
		if row[len(row)-1] != "0" {
			t.Errorf("oracle violations nonzero: %q", row[len(row)-1])
		}
	}
	// The base scheme normalizes to 1.
	if rows[1][5] != "1" {
		t.Errorf("first scheme normalized = %q, want 1", rows[1][5])
	}
}

func TestExportGridMarkdown(t *testing.T) {
	g := exportGrid(t)
	var buf bytes.Buffer
	if err := ExportGridMarkdown(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, separator, 2 app rows, average row.
	if len(lines) != 5 {
		t.Fatalf("markdown lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| App |") || !strings.Contains(lines[0], "Lazy MultiT&MV") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], " 1.00 |") {
		t.Fatalf("base scheme must normalize to 1.00: %q", lines[2])
	}
	if !strings.HasPrefix(lines[4], "| **Avg** |") {
		t.Fatalf("average row missing: %q", lines[4])
	}
}

func TestExportCharacterizationCSV(t *testing.T) {
	chars := Characterize(Options{Apps: fastApps()[:1], Seed: 23})
	var buf bytes.Buffer
	if err := ExportCharacterizationCSV(&buf, chars); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0] != "Tree" {
		t.Fatalf("app column = %q", rows[1][0])
	}
}

func TestExportTraceCSV(t *testing.T) {
	gen := workload.NewGenerator(MicroWorkload(4), 5)
	s := sim.New(MicroMachine(2), core.SingleTEager, gen)
	s.EnableTrace()
	r := s.Run()
	var buf bytes.Buffer
	if err := ExportTraceCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 1+4*4 { // at least start/finish/commit-start/commit-end per task
		t.Fatalf("trace rows = %d", len(rows))
	}
	// Events sorted by time.
	prev := uint64(0)
	for _, row := range rows[1:] {
		when, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if when < prev {
			t.Fatal("trace not sorted by time")
		}
		prev = when
	}
}

func TestRenderGridSVG(t *testing.T) {
	g := exportGrid(t)
	var buf bytes.Buffer
	if err := RenderGridSVG(&buf, g, "Figure 9 <test>"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "Figure 9 &lt;test&gt;", "MultiT&amp;MV Lazy AMM", "<rect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<rect") != 2*len(g.Apps)*len(g.Schemes) {
		t.Errorf("bar count wrong: %d rects", strings.Count(out, "<rect"))
	}
	// Well-formed XML-ish: no stray unescaped ampersands outside entities.
	for i := 0; i < len(out); i++ {
		if out[i] == '&' {
			rest := out[i:]
			if !strings.HasPrefix(rest, "&amp;") && !strings.HasPrefix(rest, "&lt;") &&
				!strings.HasPrefix(rest, "&gt;") && !strings.HasPrefix(rest, "&#160;") {
				t.Fatalf("unescaped ampersand at %d: %q", i, rest[:10])
			}
		}
	}
}

func TestRenderScalabilitySVG(t *testing.T) {
	pts := []ScalabilityPoint{
		{Procs: 4, SingleTEager: 1, SingleTLazy: 0.9, MultiTMVE: 0.8, MultiTMVL: 0.82},
		{Procs: 16, SingleTEager: 1, SingleTLazy: 0.8, MultiTMVE: 0.9, MultiTMVL: 0.7},
	}
	var buf bytes.Buffer
	if err := RenderScalabilitySVG(&buf, pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "16 procs") || !strings.Contains(out, "MultiT&amp;MV Lazy") {
		t.Fatal("scalability SVG incomplete")
	}
}

// A write failure anywhere in the markdown table must surface as the
// export's error, not a silently truncated artifact.
func TestExportGridMarkdownPropagatesWriteErrors(t *testing.T) {
	g := exportGrid(t)
	var full bytes.Buffer
	if err := ExportGridMarkdown(&full, g); err != nil {
		t.Fatal(err)
	}
	for limit := 0; limit < full.Len(); limit += 7 {
		if err := ExportGridMarkdown(&cappedWriter{limit: limit}, g); err == nil {
			t.Fatalf("write failure at byte %d swallowed", limit)
		}
	}
}

// cappedWriter fails every write that would run past its byte limit.
type cappedWriter struct {
	n, limit int
}

func (w *cappedWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errors.New("disk full")
	}
	w.n += len(p)
	return len(p), nil
}
