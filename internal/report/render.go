package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
)

const barWidth = 44

// bar renders a two-segment horizontal bar (busy + stall) scaled so that
// value 1.0 fills barWidth characters.
func bar(busyFrac, total float64) string {
	n := int(total*barWidth + 0.5)
	if n > 3*barWidth {
		n = 3 * barWidth
	}
	b := int(busyFrac*float64(n) + 0.5)
	return strings.Repeat("#", b) + strings.Repeat(".", n-b)
}

// RenderGrid prints a Figures 9/10/11-style chart: per application, one bar
// per scheme, normalized to the first scheme of the grid, annotated with
// the speedup over sequential execution ("#" is Busy, "." is Stall).
func RenderGrid(w io.Writer, g *Grid, title string) {
	fmt.Fprintf(w, "%s  [machine %s]\n", title, g.Machine)
	fmt.Fprintf(w, "normalized execution time (vs %v = 1.00); # busy, . stall; speedup over sequential at right\n\n",
		g.Schemes[0])
	for _, app := range g.Apps {
		base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
		fmt.Fprintf(w, "%s\n", app)
		for _, sch := range g.Schemes {
			c := g.Cell(app, sch)
			norm := c.Normalized(base)
			fmt.Fprintf(w, "  %-22s %5.2f |%-*s| %5.2fx\n",
				sch.String(), norm, barWidth, bar(c.Result.Agg.BusyFraction(), norm), c.Speedup())
		}
		fmt.Fprintln(w)
	}
}

// RenderAverages prints per-scheme averages across the applications of a
// grid (normalized to the first scheme), mirroring the "Average" group of
// Figures 9 and 11.
func RenderAverages(w io.Writer, g *Grid) {
	fmt.Fprintf(w, "Average over %d applications\n", len(g.Apps))
	for _, sch := range g.Schemes {
		sum := 0.0
		for _, app := range g.Apps {
			base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
			sum += g.Cell(app, sch).Normalized(base)
		}
		avg := sum / float64(len(g.Apps))
		fmt.Fprintf(w, "  %-22s %5.2f |%-*s|\n", sch.String(), avg, barWidth, bar(0, avg))
	}
	fmt.Fprintln(w)
}

// RenderFigure1 prints Figure 1-(a): the application characteristics that
// illustrate the challenges of buffering.
func RenderFigure1(w io.Writer, chars []AppCharacterization) {
	fmt.Fprintln(w, "Figure 1-(a). Application characteristics (measured, MultiT&MV Eager, NUMA16)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s  %22s  %28s\n", "", "Average # Spec Tasks", "Avg Written Footprint/Task")
	fmt.Fprintf(w, "%-8s  %10s %11s  %13s %14s\n", "Appl", "In System", "Per Proc", "Total (KB)", "Priv (%)")
	for _, c := range chars {
		fmt.Fprintf(w, "%-8s  %10.1f %11.1f  %13.2f %14.1f\n",
			c.Profile.Name, c.SpecTasksSystem, c.SpecTasksPerProc, c.FootprintKB, c.PrivPct)
	}
	fmt.Fprintln(w)
}

// RenderTable3 prints Table 3: per-application characteristics including
// the measured Commit/Execution ratios on both machines, next to the
// paper's published values.
func RenderTable3(w io.Writer, chars []AppCharacterization) {
	fmt.Fprintln(w, "Table 3. Application characteristics")
	fmt.Fprintln(w, "(C/E = Commit/Execution ratio %, measured under MultiT&MV Eager; paper values in parentheses)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %8s %9s %14s %14s %9s %6s %6s %9s\n",
		"Appl", "Tasks", "Instr/T", "C/E NUMA", "C/E CMP", "Squash/T", "Imbal", "Priv", "CommitQ")
	for _, c := range chars {
		p := c.Profile
		fmt.Fprintf(w, "%-8s %8d %9d %6.1f (%4.1f) %6.1f (%4.1f) %9.3f %6s %6s %9s\n",
			p.Name, p.Tasks, p.InstrPerTask,
			c.CENuma, p.PaperCENuma, c.CECmp, p.PaperCECmp,
			c.SquashRate, p.QualImbalance, p.QualPriv, p.QualCommit)
	}
	fmt.Fprintln(w)
}

// RenderTable1 prints Table 1: the support mechanisms.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Different supports required")
	fmt.Fprintln(w)
	for _, s := range core.AllSupports() {
		fmt.Fprintf(w, "  %-5s  %s\n", s, s.Description())
	}
	fmt.Fprintln(w)
}

// RenderTable2 prints Table 2: the upgrade path with benefits and supports.
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Benefits obtained and support required for each mechanism")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-38s  %-68s  %s\n", "Upgrade", "Performance Benefit", "Additional Support")
	for _, step := range core.UpgradePath() {
		var supports []string
		for _, sup := range step.Added {
			supports = append(supports, sup.String())
		}
		fmt.Fprintf(w, "%-38s  %-68s  %s\n",
			fmt.Sprintf("%v -> %v", step.From, step.To), step.Benefit, strings.Join(supports, "+"))
	}
	fmt.Fprintln(w)
}

// RenderFigure2 prints the taxonomy grid of Figure 2-(a).
func RenderFigure2(w io.Writer) {
	fmt.Fprintln(w, "Figure 2-(a). Taxonomy of approaches to buffer and manage speculative memory state")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s | %-14s %-14s %-14s\n", "Separation \\ Merging", "Eager AMM", "Lazy AMM", "FMM")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	for _, sep := range []core.Separation{core.MultiTMV, core.MultiTSV, core.SingleT} {
		var cells []string
		for _, m := range core.Mergings() {
			s := core.Scheme{Sep: sep, Merge: m}
			if s.Interesting() {
				cells = append(cells, "modelled")
			} else {
				cells = append(cells, "(shaded)")
			}
		}
		fmt.Fprintf(w, "%-22s | %-14s %-14s %-14s\n", sep, cells[0], cells[1], cells[2])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "AMM buffering forms a distributed memory-system reorder buffer (MROB);")
	fmt.Fprintln(w, "FMM buffering forms a distributed memory-system history buffer (MHB).")
	fmt.Fprintln(w)
}

// RenderFigure4 prints the mapping of existing schemes onto the taxonomy.
func RenderFigure4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4. Mapping existing schemes onto the taxonomy")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-30s %-11s %-11s %s\n", "Scheme", "Separation", "Merging", "Speculative state buffered in")
	for _, e := range core.ExistingSchemes() {
		merge := e.Merge.String()
		switch {
		case e.CoarseRecovery:
			merge = "coarse rec."
		case e.MergeNA:
			merge = "(n/a)"
		}
		fmt.Fprintf(w, "%-30s %-11s %-11s %s\n", e.Name, e.Sep, merge, e.Buffering)
	}
	fmt.Fprintln(w)
}

// RenderFigure8 prints the per-scheme limiting application characteristics.
func RenderFigure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8. Application characteristics that limit performance in each scheme")
	fmt.Fprintln(w)
	for _, s := range core.AllSchemes() {
		if s.SoftwareLog {
			continue
		}
		var limits []string
		for _, l := range core.Limits(s) {
			limits = append(limits, string(l))
		}
		fmt.Fprintf(w, "%-22s  %s\n", s, strings.Join(limits, "; "))
	}
	fmt.Fprintln(w)
}

// RenderSummary prints the Section 5.4 averages next to the paper's.
func RenderSummary(w io.Writer, s Summary, paperMV, paperLazySimple, paperLazyMV float64) {
	fmt.Fprintf(w, "Section 5.4 summary on %s (average execution-time reduction, measured vs paper)\n", s.Machine)
	fmt.Fprintf(w, "  multiple tasks&versions over SingleT (Eager): %5.1f%%  (paper %.0f%%)\n",
		s.MultiTMVOverSingleTPct, paperMV)
	fmt.Fprintf(w, "  laziness on the simpler schemes:               %5.1f%%  (paper %.0f%%)\n",
		s.LazinessSimplePct, paperLazySimple)
	fmt.Fprintf(w, "  laziness on MultiT&MV:                         %5.1f%%  (paper %.0f%%)\n",
		s.LazinessMultiTMVPct, paperLazyMV)
	fmt.Fprintln(w)
}

// RenderFailures prints a grid's failure manifest (nothing when the sweep
// was healthy). A degraded grid's tables still render — with zero cells for
// the lost jobs — so the manifest is the place that says what is missing.
func RenderFailures(w io.Writer, g *Grid) {
	if !g.Degraded() {
		return
	}
	fmt.Fprintf(w, "%s sweep degraded — %s", g.Machine,
		exp.RenderFailureManifest(g.Failures))
	fmt.Fprintln(w)
}

// RenderChecks prints qualitative-claim verdicts.
func RenderChecks(w io.Writer, checks []ExpectationCheck) {
	for _, c := range checks {
		mark := "PASS"
		if !c.Holds {
			mark = "MISS"
		}
		if c.Note != "" {
			fmt.Fprintf(w, "  [%s] %s (%s)\n", mark, c.Claim, c.Note)
		} else {
			fmt.Fprintf(w, "  [%s] %s\n", mark, c.Claim)
		}
	}
	fmt.Fprintln(w)
}
