package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ExportGridCSV writes a grid as CSV: one row per (application, scheme)
// with the quantities downstream plotting needs. Columns are stable and
// documented here so external tooling can rely on them:
//
//	machine, app, scheme, exec_cycles, seq_cycles, normalized, speedup,
//	busy_frac, stall_mem_frac, stall_task_frac, stall_commit_frac,
//	stall_recovery_frac, stall_idle_frac, commit_exec_ratio_pct,
//	squash_events, tasks_squashed, overflow_spills, mhb_appends,
//	oracle_checks, oracle_violations
//
// Normalization is against the grid's first scheme for the same app.
func ExportGridCSV(w io.Writer, g *Grid) error {
	cw := csv.NewWriter(w)
	header := []string{
		"machine", "app", "scheme", "exec_cycles", "seq_cycles", "normalized",
		"speedup", "busy_frac", "stall_mem_frac", "stall_task_frac",
		"stall_commit_frac", "stall_recovery_frac", "stall_idle_frac",
		"commit_exec_ratio_pct", "squash_events", "tasks_squashed",
		"overflow_spills", "mhb_appends", "oracle_checks", "oracle_violations",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, app := range g.Apps {
		base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
		for _, sch := range g.Schemes {
			c := g.Cell(app, sch)
			r := c.Result
			tot := float64(r.Agg.Total())
			if tot == 0 {
				tot = 1
			}
			row := []string{
				g.Machine, app, sch.String(),
				u(uint64(r.ExecCycles)), u(uint64(c.Seq)),
				f(c.Normalized(base)), f(c.Speedup()),
				f(float64(r.Agg.Busy) / tot),
				f(float64(r.Agg.StallMem) / tot),
				f(float64(r.Agg.StallTask) / tot),
				f(float64(r.Agg.StallCommit) / tot),
				f(float64(r.Agg.StallRecovery) / tot),
				f(float64(r.Agg.StallIdle) / tot),
				f(r.CommitExecRatio()),
				strconv.Itoa(r.SquashEvents), strconv.Itoa(r.TasksSquashed),
				u(r.OverflowSpills), u(r.MHBAppends),
				strconv.Itoa(r.OracleChecks), strconv.Itoa(r.OracleViolations),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportGridMarkdown writes a grid as a Markdown table of normalized
// execution times (rows: applications; columns: schemes), the format
// EXPERIMENTS.md uses.
func ExportGridMarkdown(w io.Writer, g *Grid) error {
	// A sticky first error keeps the table-building logic linear; once a
	// write fails (full disk, closed pipe) the rest are skipped and the
	// failure propagates instead of emitting a silently truncated table.
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("| App |")
	for _, sch := range g.Schemes {
		p(" %s |", sch.ShortName()+" "+sch.Sep.String())
	}
	p("\n|---|")
	for range g.Schemes {
		p("---|")
	}
	p("\n")
	for _, app := range g.Apps {
		base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
		p("| %s |", app)
		for _, sch := range g.Schemes {
			p(" %.2f |", g.Cell(app, sch).Normalized(base))
		}
		p("\n")
	}
	// Average row.
	p("| **Avg** |")
	for _, sch := range g.Schemes {
		sum := 0.0
		for _, app := range g.Apps {
			base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
			sum += g.Cell(app, sch).Normalized(base)
		}
		p(" **%.2f** |", sum/float64(len(g.Apps)))
	}
	p("\n")
	return err
}

// ExportCharacterizationCSV writes Figure 1 / Table 3 data as CSV.
func ExportCharacterizationCSV(w io.Writer, chars []AppCharacterization) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "tasks", "instr_per_task", "spec_tasks_system", "spec_tasks_per_proc",
		"footprint_kb", "priv_pct", "ce_numa_pct", "ce_cmp_pct", "squash_per_task",
		"paper_ce_numa_pct", "paper_ce_cmp_pct",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, c := range chars {
		if err := cw.Write([]string{
			c.Profile.Name, strconv.Itoa(c.Profile.Tasks), strconv.Itoa(c.Profile.InstrPerTask),
			f(c.SpecTasksSystem), f(c.SpecTasksPerProc), f(c.FootprintKB), f(c.PrivPct),
			f(c.CENuma), f(c.CECmp), f(c.SquashRate),
			f(c.Profile.PaperCENuma), f(c.Profile.PaperCECmp),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportTraceCSV writes a traced run's timeline events as CSV.
func ExportTraceCSV(w io.Writer, r sim.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"when", "kind", "task", "proc", "word", "writer", "wasted"}); err != nil {
		return err
	}
	events := append([]sim.TraceEvent(nil), r.Trace...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].When < events[j].When })
	for _, ev := range events {
		// Squash-cause columns are empty on non-squash rows.
		word, writer, wasted := "", "", ""
		if ev.Kind == sim.TraceSquash {
			word = strconv.FormatUint(uint64(ev.Word), 10)
			writer = ev.Writer.String()
			wasted = strconv.FormatUint(uint64(ev.Wasted), 10)
		}
		if err := cw.Write([]string{
			strconv.FormatUint(uint64(ev.When), 10), ev.Kind.String(),
			ev.Task.String(), ev.Proc.String(), word, writer, wasted,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportSquashHotspotsCSV writes the per-word squash-attribution table of a
// traced run: which words' dependence chains squash the application, ranked
// by wasted cycles.
func ExportSquashHotspotsCSV(w io.Writer, r sim.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"word", "squashes", "wasted_cycles", "max_distance", "sample_writer", "sample_reader",
	}); err != nil {
		return err
	}
	for _, h := range sim.SquashHotspots(r.Trace) {
		if err := cw.Write([]string{
			strconv.FormatUint(uint64(h.Word), 10),
			strconv.Itoa(h.Squashes),
			strconv.FormatUint(uint64(h.WastedCycles), 10),
			strconv.Itoa(h.MaxDistance),
			h.SampleWriter.String(),
			h.SampleReader.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportSeriesCSV writes an obs gauge time series as CSV: a cycle column
// followed by one column per source.
func ExportSeriesCSV(w io.Writer, series obs.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"cycle"}, series.Names...)); err != nil {
		return err
	}
	row := make([]string, 0, len(series.Names)+1)
	for _, s := range series.Samples {
		row = append(row[:0], strconv.FormatUint(s.Cycle, 10))
		for _, v := range s.Values {
			row = append(row, strconv.FormatInt(v, 10))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
