package report

import (
	"fmt"
	"io"
	"strings"
)

// SVG rendering of the performance figures: grouped horizontal bars per
// application, one bar per scheme, each split into the Busy and Stall
// components of the paper's figures and normalized to the grid's first
// scheme, with the speedup over sequential execution annotated.

const (
	svgBarHeight   = 16
	svgBarGap      = 4
	svgGroupGap    = 22
	svgLabelWidth  = 190
	svgPlotWidth   = 560
	svgRightMargin = 130
	svgTopMargin   = 46
	svgFooter      = 28

	svgBusyColor  = "#2b6cb0"
	svgStallColor = "#cbd5e0"
	svgTextColor  = "#1a202c"
	svgGridColor  = "#e2e8f0"
)

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// RenderGridSVG writes the grid as a standalone SVG chart.
func RenderGridSVG(w io.Writer, g *Grid, title string) error {
	nBars := len(g.Apps) * len(g.Schemes)
	height := svgTopMargin + nBars*(svgBarHeight+svgBarGap) +
		len(g.Apps)*svgGroupGap + svgFooter
	width := svgLabelWidth + svgPlotWidth + svgRightMargin

	// The x scale: normalized time 0..maxNorm maps onto the plot width.
	maxNorm := 1.0
	for _, app := range g.Apps {
		base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
		for _, sch := range g.Schemes {
			if n := g.Cell(app, sch).Normalized(base); n > maxNorm {
				maxNorm = n
			}
		}
	}
	maxNorm *= 1.05
	x := func(norm float64) float64 {
		return float64(svgLabelWidth) + norm/maxNorm*float64(svgPlotWidth)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" fill="%s">%s</text>`+"\n",
		svgLabelWidth, svgTextColor, svgEscape(title))
	fmt.Fprintf(&b, `<text x="%d" y="34" fill="#4a5568">normalized execution time (%s = 1.00); dark = busy, light = stall; speedup at right</text>`+"\n",
		svgLabelWidth, svgEscape(g.Schemes[0].String()))

	// Vertical gridlines at 0.25 steps.
	for v := 0.25; v < maxNorm; v += 0.25 {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s"/>`+"\n",
			x(v), svgTopMargin, x(v), height-svgFooter, svgGridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#718096" text-anchor="middle">%.2f</text>`+"\n",
			x(v), height-svgFooter+14, v)
	}

	y := svgTopMargin
	for _, app := range g.Apps {
		base := g.Cell(app, g.Schemes[0]).Result.ExecCycles
		fmt.Fprintf(&b, `<text x="4" y="%d" font-weight="bold" fill="%s">%s</text>`+"\n",
			y+svgBarHeight-3, svgTextColor, svgEscape(app))
		for _, sch := range g.Schemes {
			c := g.Cell(app, sch)
			norm := c.Normalized(base)
			busy := norm * c.Result.Agg.BusyFraction()
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="%s">%s</text>`+"\n",
				svgLabelWidth-6, y+svgBarHeight-4, svgTextColor, svgEscape(sch.String()))
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
				svgLabelWidth, y, x(busy)-float64(svgLabelWidth), svgBarHeight, svgBusyColor)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
				x(busy), y, x(norm)-x(busy), svgBarHeight, svgStallColor)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s">%.2f&#160;&#160;%.2fx</text>`+"\n",
				x(norm)+6, y+svgBarHeight-4, svgTextColor, norm, c.Speedup())
			y += svgBarHeight + svgBarGap
		}
		y += svgGroupGap
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderScalabilitySVG writes a scalability sweep as an SVG line-less
// bar chart: per machine size, the normalized times of the four pivotal
// schemes.
func RenderScalabilitySVG(w io.Writer, points []ScalabilityPoint) error {
	type series struct {
		name  string
		color string
		pick  func(ScalabilityPoint) float64
	}
	all := []series{
		{"SingleT Eager", "#718096", func(p ScalabilityPoint) float64 { return p.SingleTEager }},
		{"SingleT Lazy", "#2b6cb0", func(p ScalabilityPoint) float64 { return p.SingleTLazy }},
		{"MultiT&MV Eager", "#c05621", func(p ScalabilityPoint) float64 { return p.MultiTMVE }},
		{"MultiT&MV Lazy", "#276749", func(p ScalabilityPoint) float64 { return p.MultiTMVL }},
	}
	const barW, gap, groupGap, plotH = 26, 6, 34, 220
	width := svgLabelWidth + len(points)*(len(all)*(barW+gap)+groupGap)
	height := svgTopMargin + plotH + 60
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="8" y="18" font-size="14" fill="%s">Scalability: normalized execution time vs machine size</text>`+"\n", svgTextColor)
	yOf := func(v float64) float64 {
		return float64(svgTopMargin+plotH) - v/1.1*float64(plotH)
	}
	for v := 0.25; v <= 1.05; v += 0.25 {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s"/>`+"\n",
			60, yOf(v), width-10, yOf(v), svgGridColor)
		fmt.Fprintf(&b, `<text x="30" y="%.1f" fill="#718096">%.2f</text>`+"\n", yOf(v)+4, v)
	}
	xpos := 70.0
	for _, p := range points {
		for _, s := range all {
			v := s.pick(p)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%d" height="%.1f" fill="%s"><title>%s @ %d procs: %.2f</title></rect>`+"\n",
				xpos, yOf(v), barW, yOf(0)-yOf(v), s.color, svgEscape(s.name), p.Procs, v)
			xpos += barW + gap
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="%s">%d procs</text>`+"\n",
			xpos-float64(len(all)*(barW+gap))/2, svgTopMargin+plotH+18, svgTextColor, p.Procs)
		xpos += groupGap
	}
	// Legend.
	lx := 70.0
	for _, s := range all {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, height-22, s.color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s">%s</text>`+"\n", lx+14, height-13, svgTextColor, svgEscape(s.name))
		lx += 150
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}
