package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func perfettoRun(t *testing.T) (sim.Result, obs.Series) {
	t.Helper()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	p.DepProb = 0.3
	s := sim.New(machine.CMP8(), core.MultiTMVEager, workload.NewGenerator(p, 99))
	s.EnableTrace()
	s.Observe(obs.Config{Registry: obs.NewRegistry(), SamplePeriod: 500})
	r := s.Run()
	if r.TasksSquashed == 0 {
		t.Fatal("workload produced no squashes; flow arrows untestable")
	}
	return r, s.Sampled()
}

// TestExportPerfettoSchema is the acceptance check for the Perfetto export:
// the emitted JSON validates as trace-event JSON and contains per-processor
// task lanes, at least 4 counter tracks, and squash flow events.
func TestExportPerfettoSchema(t *testing.T) {
	r, series := perfettoRun(t)
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, r, series); err != nil {
		t.Fatal(err)
	}
	st, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	if st.ExecLanes != len(r.PerProc) {
		t.Errorf("exec lanes = %d, want one per processor (%d)", st.ExecLanes, len(r.PerProc))
	}
	if st.CounterTracks < 4 {
		t.Errorf("counter tracks = %d, want >= 4", st.CounterTracks)
	}
	if st.FlowStarts == 0 {
		t.Error("no squash flow events emitted")
	}
	if st.Instants == 0 {
		t.Error("no squash instants emitted")
	}
	if st.Slices == 0 || st.Metadata == 0 || st.CounterEvents == 0 {
		t.Errorf("missing event classes: %+v", st)
	}

	// Determinism: exporting the same run twice is byte-identical.
	var again bytes.Buffer
	if err := ExportPerfetto(&again, r, series); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("perfetto export is not deterministic")
	}
}

func TestValidatePerfettoRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "perfetto?",
		"no traceEvents": `{"foo": []}`,
		"bad phase":      `{"traceEvents":[{"ph":"Z","ts":1,"pid":0,"tid":0}]}`,
		"missing ts":     `{"traceEvents":[{"ph":"X","pid":0,"tid":0}]}`,
		"unpaired flow":  `{"traceEvents":[{"ph":"s","id":"1","ts":1,"pid":0,"tid":0}]}`,
		"duplicate span across processes": `{"traceEvents":[
			{"ph":"X","ts":1,"dur":2,"pid":0,"tid":0,"args":{"span":"42"}},
			{"ph":"i","ts":5,"pid":1,"tid":0,"s":"t","args":{"span":"42"}}]}`,
	}
	for name, in := range cases {
		if _, err := ValidatePerfetto(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
}

// TestValidatePerfettoMultiProcess checks the fleet layout: one pid per
// process, exec lanes keyed by (pid, tid) so same-numbered tids on
// different pids count separately, and distinct span IDs tallied.
func TestValidatePerfettoMultiProcess(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"coordinator"}},
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker-1"}},
		{"ph":"X","ts":0,"dur":3,"pid":0,"tid":0,"args":{"span":"1"}},
		{"ph":"X","ts":1,"dur":2,"pid":1,"tid":0,"args":{"span":"4294967297"}},
		{"ph":"s","id":"7","cat":"fleet-flow","ts":0,"pid":0,"tid":0},
		{"ph":"f","id":"7","cat":"fleet-flow","bp":"e","ts":3,"pid":1,"tid":0}]}`
	st, err := ValidatePerfetto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st.Processes != 2 {
		t.Errorf("processes = %d, want 2", st.Processes)
	}
	if st.ExecLanes != 2 {
		t.Errorf("exec lanes = %d, want 2 (tid 0 on two pids)", st.ExecLanes)
	}
	if st.SpanIDs != 2 {
		t.Errorf("span IDs = %d, want 2", st.SpanIDs)
	}
}

func TestExportSquashHotspotsCSV(t *testing.T) {
	r, _ := perfettoRun(t)
	var buf bytes.Buffer
	if err := ExportSquashHotspotsCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("no hotspot rows:\n%s", buf.String())
	}
	if lines[0] != "word,squashes,wasted_cycles,max_distance,sample_writer,sample_reader" {
		t.Fatalf("unexpected header %q", lines[0])
	}
}

func TestExportSeriesCSV(t *testing.T) {
	_, series := perfettoRun(t)
	var buf bytes.Buffer
	if err := ExportSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(series.Samples)+1 {
		t.Fatalf("rows = %d, want %d samples + header", len(lines), len(series.Samples))
	}
	wantCols := len(series.Names) + 1
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, got, wantCols)
		}
	}
}
