package report

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SeedStability quantifies how sensitive one (machine, scheme, workload)
// result is to the workload seed. The paper's applications are fixed
// binaries; our synthetic generators draw access patterns from a seed, so
// squash-prone workloads carry seed noise. The harness uses this to state
// confidence: a claim that two schemes differ is only meaningful when the
// difference exceeds the seed spread.
type SeedStability struct {
	Machine string
	App     string
	Scheme  core.Scheme
	Seeds   int

	MeanCycles   float64
	StddevCycles float64
	MinCycles    uint64
	MaxCycles    uint64
}

// CV returns the coefficient of variation (stddev/mean).
func (s SeedStability) CV() float64 {
	if s.MeanCycles == 0 {
		return 0
	}
	return s.StddevCycles / s.MeanCycles
}

// MeasureSeedStability runs the combination across seeds [first, first+n)
// in parallel and returns the spread statistics.
func MeasureSeedStability(cfg *machine.Config, scheme core.Scheme, prof workload.Profile, first uint64, n int) SeedStability {
	if n < 1 {
		n = 1
	}
	cycles := make([]uint64, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r := sim.Run(cfg, scheme, prof, first+uint64(i))
			cycles[i] = uint64(r.ExecCycles)
		}()
	}
	wg.Wait()

	out := SeedStability{
		Machine: cfg.Name, App: prof.Name, Scheme: scheme, Seeds: n,
		MinCycles: cycles[0], MaxCycles: cycles[0],
	}
	sum, sumsq := 0.0, 0.0
	for _, c := range cycles {
		f := float64(c)
		sum += f
		sumsq += f * f
		if c < out.MinCycles {
			out.MinCycles = c
		}
		if c > out.MaxCycles {
			out.MaxCycles = c
		}
	}
	out.MeanCycles = sum / float64(n)
	variance := sumsq/float64(n) - out.MeanCycles*out.MeanCycles
	if variance > 0 {
		out.StddevCycles = math.Sqrt(variance)
	}
	return out
}

// Significant reports whether the difference between two mean cycle counts
// exceeds the combined seed spread (a two-sigma criterion) — i.e. whether a
// scheme comparison on this workload means anything.
func Significant(a, b SeedStability) bool {
	diff := math.Abs(a.MeanCycles - b.MeanCycles)
	return diff > 2*(a.StddevCycles+b.StddevCycles)
}
