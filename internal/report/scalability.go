package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// ScalabilityPoint is one machine size of a scalability sweep: the average
// (over the applications) normalized execution times of the three pivotal
// schemes, with SingleT Eager = 1 at each size, plus the Section 5.4
// reductions at that size.
type ScalabilityPoint struct {
	Procs int

	// Average normalized execution times (SingleT Eager = 1 per app).
	SingleTEager float64 // always 1
	MultiTMVE    float64
	MultiTMVL    float64
	SingleTLazy  float64

	// Section 5.4 style reductions, percent.
	MultiTMVPct       float64 // MultiT&MV Eager over SingleT Eager
	LazinessMVPct     float64 // MultiT&MV Lazy over MultiT&MV Eager
	LazinessSimplePct float64 // SingleT Lazy over SingleT Eager
}

// ScalabilitySweep measures how the benefits of the two supports scale
// with machine size on the CC-NUMA architecture — the basis of the paper's
// "in large machines, their effect is nearly fully additive" conclusion
// and of the small-versus-large contrast between Figures 9 and 11. Sizes
// are processor counts (e.g. 4, 8, 16, 32).
func ScalabilitySweep(sizes []int, opt Options) []ScalabilityPoint {
	schemes := []core.Scheme{
		core.SingleTEager, core.SingleTLazy,
		core.MultiTMVEager, core.MultiTMVLazy,
	}
	points := make([]ScalabilityPoint, len(sizes))
	// Machine sizes run serially; each grid parallelizes internally.
	for i, n := range sizes {
		g := RunGrid(machine.ScalableNUMA(n), schemes, opt)
		pt := ScalabilityPoint{Procs: n, SingleTEager: 1}
		avg := func(sch core.Scheme) float64 {
			sum := 0.0
			for _, app := range g.Apps {
				base := g.Cell(app, core.SingleTEager).Result.ExecCycles
				sum += g.Cell(app, sch).Normalized(base)
			}
			return sum / float64(len(g.Apps))
		}
		pt.SingleTLazy = avg(core.SingleTLazy)
		pt.MultiTMVE = avg(core.MultiTMVEager)
		pt.MultiTMVL = avg(core.MultiTMVLazy)
		pt.MultiTMVPct = 100 * (1 - pt.MultiTMVE)
		pt.LazinessSimplePct = 100 * (1 - pt.SingleTLazy)
		if pt.MultiTMVE > 0 {
			pt.LazinessMVPct = 100 * (1 - pt.MultiTMVL/pt.MultiTMVE)
		}
		points[i] = pt
	}
	return points
}

// RenderScalability prints a scalability sweep as a table.
func RenderScalability(w io.Writer, points []ScalabilityPoint) {
	fmt.Fprintln(w, "Scalability: average normalized execution time vs machine size (CC-NUMA)")
	fmt.Fprintln(w, "(SingleT Eager = 1.00 at each size)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s  %14s %14s %14s %14s  %10s %10s %10s\n",
		"procs", "SingleT Eager", "SingleT Lazy", "MV Eager", "MV Lazy",
		"MV gain", "lazy(MV)", "lazy(ST)")
	for _, p := range points {
		fmt.Fprintf(w, "%6d  %14.2f %14.2f %14.2f %14.2f  %9.1f%% %9.1f%% %9.1f%%\n",
			p.Procs, p.SingleTEager, p.SingleTLazy, p.MultiTMVE, p.MultiTMVL,
			p.MultiTMVPct, p.LazinessMVPct, p.LazinessSimplePct)
	}
	fmt.Fprintln(w)
}

// scalabilityApps trims the suite to the applications whose behaviour
// scales cleanly in a sweep (exclude the single-invocation straggler-bound
// P3m, whose speedup is dominated by its longest task at every size).
func scalabilityApps(opt Options) []workload.Profile {
	var out []workload.Profile
	for _, p := range opt.apps() {
		if p.Name == "P3m" {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		out = opt.apps()
	}
	return out
}

// Scalability runs the default sweep at 4, 8, 16 and 32 processors over
// the suite minus P3m.
func Scalability(opt Options) []ScalabilityPoint {
	opt.Apps = scalabilityApps(opt)
	return ScalabilitySweep([]int{4, 8, 16, 32}, opt)
}
