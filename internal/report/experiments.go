// Package report runs the paper's experiments and renders every table and
// figure of the evaluation as text: the static taxonomy artifacts (Figures
// 2, 4 and 8, Tables 1 and 2), the application-characterization data
// (Figure 1, Table 3), and the performance comparisons (Figures 9, 10 and
// 11 plus the Section 5.4 summary).
package report

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options parameterizes an experiment sweep. All sweeps execute through the
// internal/exp orchestrator: the runs become canonical Jobs on a worker
// pool, optionally memoized by a persistent cache and observed by a
// metrics layer.
type Options struct {
	// Seed for the deterministic workload generators.
	Seed uint64
	// Apps to run; nil selects the full standard suite.
	Apps []workload.Profile
	// Progress, if non-nil, is called after every completed speculative run
	// (from the goroutine that ran it; calls are serialized).
	Progress func(machine, app string, scheme core.Scheme, r sim.Result)
	// JobObserver, if non-nil, receives every finished job — cached,
	// executed, sequential, or failed — before Progress filtering. It is
	// the hook the -listen telemetry endpoint chains into.
	JobObserver func(exp.JobResult)
	// Serial disables the default run-level parallelism. Results are
	// identical either way — each simulation is an isolated deterministic
	// function of its inputs — so Serial only matters for debugging.
	Serial bool
	// Jobs overrides the worker-pool size (0 selects GOMAXPROCS; ignored
	// when Serial is set).
	Jobs int
	// CacheDir, when non-empty, enables exp's persistent result cache
	// rooted at that directory: a warm rerun only re-simulates jobs whose
	// inputs (machine, profile, scheme, seed, knobs) changed.
	CacheDir string
	// Metrics, when non-nil, accumulates orchestration metrics (job
	// counts, cache hits, wall times, simulated-cycle throughput) across
	// every sweep run with these options.
	Metrics *exp.Metrics
	// JobTimeout, when positive, arms exp's per-job watchdog: a simulation
	// still running after this long is abandoned and reported in the
	// grid's failure manifest instead of hanging the sweep.
	JobTimeout time.Duration
	// RetryBackoff is the delay before re-running a crashed simulation
	// (doubling per retry); 0 retries immediately.
	RetryBackoff time.Duration
	// Context, when non-nil, bounds every sweep run with these options:
	// cancelling it makes in-flight simulations checkpoint and stop (the
	// graceful-shutdown path). Nil means background.
	Context context.Context
	// Journal, when non-nil, receives the campaign WAL (job-start,
	// checkpoint, job-done records) for crash recovery via -resume.
	Journal *exp.Journal
	// CheckpointDir enables mid-run simulator checkpoints under that
	// directory, written every CheckpointEvery commits and at interrupts.
	CheckpointDir string
	// CheckpointEvery is the auto-checkpoint cadence in committed tasks
	// (0 with a CheckpointDir still checkpoints at interrupts).
	CheckpointEvery int
	// Resume maps job keys to checkpoint files recovered from a previous
	// campaign's journal (exp.CampaignState.Checkpoints).
	Resume map[string]string
	// Batcher, when non-nil, executes job batches instead of a locally
	// built exp.Runner — the hook `-coordinator URL` uses to run a sweep on
	// a distributed fleet. Execution options (cache, journal, checkpoints,
	// timeout, worker count) are then the executor's business and ignored
	// here; Progress and JobObserver still fire for every result.
	Batcher Batcher
}

// Batcher executes a batch of jobs and returns their results in submission
// order. The local exp.Runner and the cluster client both satisfy it, so a
// sweep renders the same artifacts whether its simulations ran in-process
// or on a fleet.
type Batcher interface {
	RunBatch(ctx context.Context, jobs []exp.Job) ([]exp.JobResult, error)
}

// ctx returns the sweep-bounding context.
func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// runner builds the exp worker pool these options describe.
func (o *Options) runner() *exp.Runner {
	workers := o.Jobs
	if o.Serial {
		workers = 1
	}
	r := &exp.Runner{
		Workers: workers, Metrics: o.Metrics,
		JobTimeout: o.JobTimeout, RetryBackoff: o.RetryBackoff,
		Journal:       o.Journal,
		CheckpointDir: o.CheckpointDir, CheckpointEvery: o.CheckpointEvery,
		Resume: o.Resume,
	}
	if o.CacheDir != "" {
		if c, err := exp.NewCache(o.CacheDir); err == nil {
			r.Cache = c
		}
	}
	if o.Progress != nil || o.JobObserver != nil {
		p, observe := o.Progress, o.JobObserver
		r.Progress = func(jr exp.JobResult) {
			if observe != nil {
				observe(jr)
			}
			if p == nil || jr.Err != nil || jr.Job.Sequential {
				return
			}
			p(jr.Job.Machine.Name, jr.Job.Profile.Name, jr.Job.Scheme, jr.Result)
		}
	}
	return r
}

// runBatch executes jobs through the configured Batcher, or a locally built
// runner when none is set. Every sweep call site funnels through here, so
// redirecting Options.Batcher redirects the whole report layer.
func (o *Options) runBatch(jobs []exp.Job) []exp.JobResult {
	if o.Batcher == nil {
		results, _ := o.runner().RunBatch(o.ctx(), jobs)
		return results
	}
	results, _ := o.Batcher.RunBatch(o.ctx(), jobs)
	// The local runner invokes these hooks as jobs finish; a remote batch
	// arrives all at once, so fire them here (same order, same filtering).
	for _, jr := range results {
		if o.JobObserver != nil {
			o.JobObserver(jr)
		}
		if o.Progress != nil && jr.Err == nil && !jr.Job.Sequential && jr.Job.Machine != nil {
			o.Progress(jr.Job.Machine.Name, jr.Job.Profile.Name, jr.Job.Scheme, jr.Result)
		}
	}
	return results
}

func (o *Options) apps() []workload.Profile {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.StandardSuite()
}

func (o *Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Cell is one (application, scheme) measurement of a grid, together with
// the sequential baseline it normalizes against.
type Cell struct {
	Result sim.Result
	Seq    event.Time
}

// Normalized returns execution time normalized to the given reference time.
func (c Cell) Normalized(ref event.Time) float64 {
	if ref == 0 {
		return 0
	}
	return float64(c.Result.ExecCycles) / float64(ref)
}

// Speedup returns the speedup over the sequential baseline.
func (c Cell) Speedup() float64 { return c.Result.Speedup(c.Seq) }

// Grid is a full sweep: every application crossed with every scheme on one
// machine — the data behind Figures 9, 10 and 11.
type Grid struct {
	Machine string
	Apps    []string
	Schemes []core.Scheme
	Cells   map[string]map[string]Cell // app -> scheme.String() -> cell

	// Errors records jobs that failed even after the orchestrator's panic
	// retry; their cells are zero. A fully healthy sweep leaves it empty.
	Errors []error
	// Failures is the structured failure manifest behind Errors: one entry
	// per job without a result, classified (crash, timeout, quarantined)
	// and keyed for reproduction. Render with exp.RenderFailureManifest.
	Failures []exp.Failure
}

// Degraded reports whether the sweep lost any jobs; a degraded grid still
// renders, with zero cells for the missing measurements.
func (g *Grid) Degraded() bool { return len(g.Failures) > 0 }

// Cell returns the measurement for (app, scheme).
func (g *Grid) Cell(app string, scheme core.Scheme) Cell {
	return g.Cells[app][scheme.String()]
}

// GridJobs builds the deterministic job list behind a grid sweep: one
// sequential baseline per application, followed by apps × schemes. A
// coordinator preloading a fleet campaign (tlsserve -grid) constructs
// exactly the jobs a later RunGrid with the same arguments will ask for.
func GridJobs(cfg *machine.Config, schemes []core.Scheme, opt Options) []exp.Job {
	apps := opt.apps()
	jobs := make([]exp.Job, 0, len(apps)*(len(schemes)+1))
	for _, prof := range apps {
		jobs = append(jobs, exp.Job{Machine: cfg, Profile: prof, Seed: opt.seed(), Sequential: true})
	}
	for _, prof := range apps {
		for _, sch := range schemes {
			jobs = append(jobs, exp.Job{Machine: cfg, Scheme: sch, Profile: prof, Seed: opt.seed()})
		}
	}
	return jobs
}

// AssembleGrid folds batch results, ordered as GridJobs produced them, into
// a rendered-ready Grid.
func AssembleGrid(cfg *machine.Config, schemes []core.Scheme, opt Options, results []exp.JobResult) *Grid {
	apps := opt.apps()
	g := &Grid{
		Machine: cfg.Name,
		Schemes: schemes,
		Cells:   make(map[string]map[string]Cell),
	}
	for _, prof := range apps {
		g.Apps = append(g.Apps, prof.Name)
		g.Cells[prof.Name] = make(map[string]Cell, len(schemes))
	}
	g.Failures = exp.CollectFailures(results)

	// The first len(apps) results are the sequential baselines.
	seqs := make(map[string]event.Time, len(apps))
	for _, jr := range results[:len(apps)] {
		if jr.Err != nil {
			g.Errors = append(g.Errors, jr.Err)
			continue
		}
		seqs[jr.Job.Profile.Name] = jr.Result.ExecCycles
	}
	for _, jr := range results[len(apps):] {
		if jr.Err != nil {
			g.Errors = append(g.Errors, jr.Err)
			continue
		}
		g.Cells[jr.Job.Profile.Name][jr.Job.Scheme.String()] =
			Cell{Result: jr.Result, Seq: seqs[jr.Job.Profile.Name]}
	}
	return g
}

// RunGrid sweeps apps × schemes on the machine, measuring one sequential
// baseline per application. The whole sweep is submitted as one job batch
// to the configured executor; because each simulation is an isolated
// deterministic function of its inputs, the assembled grid is identical to
// a serial sweep regardless of worker count, cache state, or whether the
// simulations ran locally or on a fleet.
func RunGrid(cfg *machine.Config, schemes []core.Scheme, opt Options) *Grid {
	return AssembleGrid(cfg, schemes, opt, opt.runBatch(GridJobs(cfg, schemes, opt)))
}

// Figure9Schemes are the six bars per application of Figures 9 and 11:
// {SingleT, MultiT&SV, MultiT&MV} × {Eager, Lazy}.
func Figure9Schemes() []core.Scheme {
	return []core.Scheme{
		core.SingleTEager, core.SingleTLazy,
		core.MultiTSVEager, core.MultiTSVLazy,
		core.MultiTMVEager, core.MultiTMVLazy,
	}
}

// Figure10Schemes are the four bars per application of Figure 10, all
// MultiT&MV: Eager, Lazy, FMM, FMM.Sw.
func Figure10Schemes() []core.Scheme {
	return []core.Scheme{
		core.MultiTMVEager, core.MultiTMVLazy,
		core.MultiTMVFMM, core.MultiTMVFMMSw,
	}
}

// Figure9 runs the separation-of-task-state comparison on the NUMA machine.
func Figure9(opt Options) *Grid { return RunGrid(machine.NUMA16(), Figure9Schemes(), opt) }

// Figure11 is Figure 9 on the CMP.
func Figure11(opt Options) *Grid { return RunGrid(machine.CMP8(), Figure9Schemes(), opt) }

// Figure10 runs the AMM-versus-FMM comparison on the NUMA machine and
// additionally measures P3m under the Lazy.L2 configuration (4-MB 16-way
// L2), returned separately.
func Figure10(opt Options) (*Grid, Cell) {
	g := RunGrid(machine.NUMA16(), Figure10Schemes(), opt)
	var lazyL2 Cell
	for _, prof := range opt.apps() {
		if prof.Name != "P3m" {
			continue
		}
		jobs := []exp.Job{
			{Machine: machine.NUMA16(), Profile: prof, Seed: opt.seed(), Sequential: true},
			{Machine: machine.NUMA16BigL2(), Scheme: core.MultiTMVLazy, Profile: prof, Seed: opt.seed()},
		}
		results := opt.runBatch(jobs)
		if results[0].Err != nil || results[1].Err != nil {
			g.Failures = append(g.Failures, exp.CollectFailures(results)...)
			for _, jr := range results {
				if jr.Err != nil {
					g.Errors = append(g.Errors, jr.Err)
				}
			}
			continue
		}
		lazyL2 = Cell{Result: results[1].Result, Seq: results[0].Result.ExecCycles}
	}
	return g, lazyL2
}

// AppCharacterization holds one application's measured characteristics —
// the data of Figure 1-(a) and the quantitative columns of Table 3.
type AppCharacterization struct {
	Profile workload.Profile

	// Figure 1 (measured under MultiT&MV Eager on the NUMA machine).
	SpecTasksSystem  float64
	SpecTasksPerProc float64
	FootprintKB      float64
	PrivPct          float64

	// Table 3 Commit/Execution ratios, percent.
	CENuma float64
	CECmp  float64

	// Squash events per committed task (Section 4.2's squashing behaviour),
	// NUMA MultiT&MV Lazy.
	SquashRate float64
}

// Characterize measures every application on both machines under
// MultiT&MV Eager (the configuration Table 3's ratios are defined for).
// The three runs per application are submitted as one orchestrator batch.
func Characterize(opt Options) []AppCharacterization {
	apps := opt.apps()
	numa16, cmp8 := machine.NUMA16(), machine.CMP8()
	jobs := make([]exp.Job, 0, 3*len(apps))
	for _, prof := range apps {
		jobs = append(jobs,
			exp.Job{Machine: numa16, Scheme: core.MultiTMVEager, Profile: prof, Seed: opt.seed()},
			exp.Job{Machine: cmp8, Scheme: core.MultiTMVEager, Profile: prof, Seed: opt.seed()},
			exp.Job{Machine: numa16, Scheme: core.MultiTMVLazy, Profile: prof, Seed: opt.seed()})
	}
	results := opt.runBatch(jobs)

	out := make([]AppCharacterization, len(apps))
	for i, prof := range apps {
		numa, cmp, lazy := results[3*i].Result, results[3*i+1].Result, results[3*i+2].Result
		out[i] = AppCharacterization{
			Profile:          prof,
			SpecTasksSystem:  numa.AvgSpecTasksSystem,
			SpecTasksPerProc: numa.AvgSpecTasksPerProc,
			FootprintKB:      numa.AvgFootprintBytes / 1024,
			PrivPct:          100 * numa.AvgPrivFrac,
			CENuma:           numa.CommitExecRatio(),
			CECmp:            cmp.CommitExecRatio(),
			SquashRate:       float64(lazy.SquashEvents) / float64(lazy.Commits),
		}
	}
	return out
}

// Summary condenses a grid into the Section 5.4 quantities: average
// execution-time reductions of (a) MultiT&MV over SingleT under Eager,
// (b) laziness over Eager for the simple schemes, (c) laziness over Eager
// for MultiT&MV.
type Summary struct {
	Machine                string
	MultiTMVOverSingleTPct float64 // paper: 32% NUMA, 23% CMP
	LazinessSimplePct      float64 // paper: 30% NUMA, 9% CMP
	LazinessMultiTMVPct    float64 // paper: 24% NUMA, 3% CMP
}

// Summarize computes the Section 5.4 averages from a Figure 9/11 grid.
func Summarize(g *Grid) Summary {
	reduction := func(base, improved core.Scheme) float64 {
		total := 0.0
		for _, app := range g.Apps {
			b := g.Cell(app, base).Result.ExecCycles
			i := g.Cell(app, improved).Result.ExecCycles
			if b > 0 {
				total += 1 - float64(i)/float64(b)
			}
		}
		return 100 * total / float64(len(g.Apps))
	}
	return Summary{
		Machine:                g.Machine,
		MultiTMVOverSingleTPct: reduction(core.SingleTEager, core.MultiTMVEager),
		LazinessSimplePct: (reduction(core.SingleTEager, core.SingleTLazy) +
			reduction(core.MultiTSVEager, core.MultiTSVLazy)) / 2,
		LazinessMultiTMVPct: reduction(core.MultiTMVEager, core.MultiTMVLazy),
	}
}

// SortedSchemes returns the grid's schemes ordered as in the figures.
func (g *Grid) SortedSchemes() []core.Scheme {
	out := append([]core.Scheme(nil), g.Schemes...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Sep != out[j].Sep {
			return out[i].Sep < out[j].Sep
		}
		return out[i].Merge < out[j].Merge
	})
	return out
}

// ExpectationCheck verifies one qualitative claim of the paper against a
// grid; the harness prints the outcome of every claim next to each figure.
type ExpectationCheck struct {
	Claim string
	Holds bool
	Note  string
}

// CheckFigure9Claims tests the Section 5.1/5.2 claims against a grid (use
// the NUMA grid; the CMP grid satisfies the same orderings more weakly).
func CheckFigure9Claims(g *Grid) []ExpectationCheck {
	exec := func(app string, sch core.Scheme) event.Time {
		return g.Cell(app, sch).Result.ExecCycles
	}
	var out []ExpectationCheck
	add := func(claim string, holds bool, note string) {
		out = append(out, ExpectationCheck{Claim: claim, Holds: holds, Note: note})
	}

	if has(g, "P3m") {
		add("MultiT&MV beats SingleT in P3m (high load imbalance)",
			exec("P3m", core.MultiTMVEager) < exec("P3m", core.SingleTEager),
			fmt.Sprintf("%d vs %d", exec("P3m", core.MultiTMVEager), exec("P3m", core.SingleTEager)))
	}
	for _, app := range []string{"Bdna", "Dsmc3d"} {
		if !has(g, app) {
			continue
		}
		add(fmt.Sprintf("MultiT&MV beats SingleT in %s (medium Commit/Exec ratio)", app),
			exec(app, core.MultiTMVEager) < exec(app, core.SingleTEager), "")
	}
	for _, app := range []string{"Track", "Dsmc3d", "Euler"} {
		if !has(g, app) {
			continue
		}
		sv := exec(app, core.MultiTSVEager)
		mv := exec(app, core.MultiTMVEager)
		ratio := float64(sv) / float64(mv)
		add(fmt.Sprintf("MultiT&SV matches MultiT&MV in %s (no privatization)", app),
			ratio > 0.97 && ratio < 1.03, fmt.Sprintf("ratio %.3f", ratio))
	}
	for _, app := range []string{"Tree", "Bdna", "Apsi"} {
		if !has(g, app) {
			continue
		}
		add(fmt.Sprintf("MultiT&SV no better than SingleT in %s (dominant privatization)", app),
			exec(app, core.MultiTSVEager) >= exec(app, core.SingleTEager), "")
	}
	for _, app := range []string{"Bdna", "Apsi", "Track", "Dsmc3d", "Euler"} {
		if !has(g, app) {
			continue
		}
		add(fmt.Sprintf("Laziness speeds up SingleT in %s (significant Commit/Exec ratio)", app),
			exec(app, core.SingleTLazy) < exec(app, core.SingleTEager), "")
	}
	for _, app := range []string{"Apsi", "Track", "Euler"} {
		if !has(g, app) {
			continue
		}
		add(fmt.Sprintf("Laziness speeds up MultiT&MV in %s (ratio x procs > 1)", app),
			exec(app, core.MultiTMVLazy) < exec(app, core.MultiTMVEager), "")
	}
	return out
}

// CheckFigure10Claims tests the AMM-versus-FMM claims.
func CheckFigure10Claims(g *Grid, lazyL2 Cell) []ExpectationCheck {
	var out []ExpectationCheck
	if has(g, "Euler") {
		lazy := g.Cell("Euler", core.MultiTMVLazy).Result
		fmm := g.Cell("Euler", core.MultiTMVFMM).Result
		out = append(out, ExpectationCheck{
			Claim: "Lazy AMM beats FMM in Euler (frequent squashes; AMM recovers faster)",
			Holds: lazy.ExecCycles < fmm.ExecCycles,
			Note:  fmt.Sprintf("%d vs %d", lazy.ExecCycles, fmm.ExecCycles),
		})
	}
	if has(g, "P3m") {
		amm := g.Cell("P3m", core.MultiTMVLazy).Result
		fmm := g.Cell("P3m", core.MultiTMVFMM).Result
		out = append(out, ExpectationCheck{
			Claim: "FMM at least matches Lazy AMM in P3m (buffer pressure; no overflow area)",
			Holds: fmm.ExecCycles <= amm.ExecCycles && fmm.OverflowSpills == 0 && amm.OverflowSpills > 0,
			Note:  fmt.Sprintf("AMM spills %d, FMM spills %d", amm.OverflowSpills, fmm.OverflowSpills),
		})
		if lazyL2.Result.Commits > 0 {
			out = append(out, ExpectationCheck{
				Claim: "The 16-way 4-MB L2 relieves P3m's AMM pressure (Lazy.L2)",
				Holds: lazyL2.Result.OverflowSpills < amm.OverflowSpills/2 &&
					lazyL2.Result.ExecCycles <= amm.ExecCycles,
				Note: fmt.Sprintf("spills %d -> %d", amm.OverflowSpills, lazyL2.Result.OverflowSpills),
			})
		}
	}
	// FMM.Sw costs a few percent over FMM on average (paper: 6%).
	totFMM, totSw := 0.0, 0.0
	for _, app := range g.Apps {
		totFMM += float64(g.Cell(app, core.MultiTMVFMM).Result.ExecCycles)
		totSw += float64(g.Cell(app, core.MultiTMVFMMSw).Result.ExecCycles)
	}
	over := 100 * (totSw/totFMM - 1)
	out = append(out, ExpectationCheck{
		Claim: "FMM.Sw runs a few percent slower than FMM (paper: 6% average)",
		Holds: over > 0 && over < 20,
		Note:  fmt.Sprintf("%.1f%% average overhead", over),
	})
	return out
}

func has(g *Grid, app string) bool {
	_, ok := g.Cells[app]
	return ok
}
