package report

import (
	"bytes"
	"testing"

	"repro/internal/exp"
	"repro/internal/machine"
)

// renderFig9Equivalent regenerates the Figure 9 artifact exactly as
// cmd/tlsreport does — grid, averages, claim checks, summary — and returns
// the full report text.
func renderFig9Equivalent(t *testing.T, opt Options) string {
	t.Helper()
	g := RunGrid(machine.CMP8(), Figure9Schemes(), opt)
	if len(g.Errors) > 0 {
		t.Fatalf("grid errors: %v", g.Errors)
	}
	var buf bytes.Buffer
	RenderGrid(&buf, g, "Figure 9 (determinism golden)")
	RenderAverages(&buf, g)
	RenderChecks(&buf, CheckFigure9Claims(g))
	RenderSummary(&buf, Summarize(g), 32, 30, 24)
	return buf.String()
}

// TestGoldenParallelMatchesSerial is the orchestrator's core guarantee: a
// 4-worker run produces report text byte-identical to a 1-worker run.
func TestGoldenParallelMatchesSerial(t *testing.T) {
	apps := fastApps()[:2]
	serial := renderFig9Equivalent(t, Options{Apps: apps, Seed: 21, Jobs: 1})
	parallel := renderFig9Equivalent(t, Options{Apps: apps, Seed: 21, Jobs: 4})
	if serial != parallel {
		t.Fatalf("parallel report text differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty report")
	}
}

// TestGoldenWarmCacheRerun asserts that a warm-cache rerun executes zero
// simulations and still produces byte-identical report text.
func TestGoldenWarmCacheRerun(t *testing.T) {
	dir := t.TempDir()
	apps := fastApps()[:2]

	cold := &exp.Metrics{}
	first := renderFig9Equivalent(t, Options{Apps: apps, Seed: 22, Jobs: 4, CacheDir: dir, Metrics: cold})
	cs := cold.Snapshot()
	if cs.Executed == 0 || cs.CacheHits != 0 || cs.Errors != 0 {
		t.Fatalf("cold run metrics: %+v", cs)
	}

	warm := &exp.Metrics{}
	second := renderFig9Equivalent(t, Options{Apps: apps, Seed: 22, Jobs: 4, CacheDir: dir, Metrics: warm})
	ws := warm.Snapshot()
	if ws.Executed != 0 {
		t.Fatalf("warm rerun executed %d simulations, want 0 (snapshot %+v)", ws.Executed, ws)
	}
	if ws.CacheHits != ws.Total || ws.Total == 0 {
		t.Fatalf("warm rerun: %d/%d cache hits", ws.CacheHits, ws.Total)
	}
	if first != second {
		t.Fatal("warm-cache report text differs from cold run")
	}
}
