package report

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/sim"
)

// countingBatcher delegates to a local runner while recording the calls —
// the report-layer view of a remote executor.
type countingBatcher struct {
	batches int
	jobs    int
}

func (b *countingBatcher) RunBatch(ctx context.Context, jobs []exp.Job) ([]exp.JobResult, error) {
	b.batches++
	b.jobs += len(jobs)
	return (&exp.Runner{Workers: 2}).RunBatch(ctx, jobs)
}

// TestBatcherGridAgreesWithLocal routes a grid sweep through Options.Batcher
// and requires the assembled grid — cells, baselines, failure manifest — to
// be identical to the default local run, with the Progress hook firing the
// same number of times.
func TestBatcherGridAgreesWithLocal(t *testing.T) {
	apps := fastApps()
	local := RunGrid(machine.CMP8(), Figure9Schemes(), Options{Apps: apps, Seed: 5})

	b := &countingBatcher{}
	progress := 0
	remote := RunGrid(machine.CMP8(), Figure9Schemes(), Options{
		Apps: apps, Seed: 5, Batcher: b,
		Progress: func(m, a string, s core.Scheme, _ sim.Result) { progress++ },
	})
	if want := len(apps) * len(Figure9Schemes()); progress != want {
		t.Fatalf("progress fired %d times, want %d", progress, want)
	}
	if b.batches != 1 {
		t.Fatalf("batcher called %d times, want 1", b.batches)
	}
	if want := len(apps) * (len(Figure9Schemes()) + 1); b.jobs != want {
		t.Fatalf("batcher saw %d jobs, want %d", b.jobs, want)
	}
	if !reflect.DeepEqual(local.Cells, remote.Cells) {
		t.Fatal("batcher grid differs from local grid")
	}
	if !reflect.DeepEqual(local.Apps, remote.Apps) || local.Machine != remote.Machine {
		t.Fatal("grid metadata differs")
	}
}

// TestGridJobsMatchesRunGrid pins the GridJobs ordering contract that
// AssembleGrid (and coordinator-side campaign preloading) depend on:
// baselines first, then apps x schemes.
func TestGridJobsMatchesRunGrid(t *testing.T) {
	opt := Options{Apps: fastApps(), Seed: 5}
	jobs := GridJobs(machine.CMP8(), Figure9Schemes(), opt)
	n := len(opt.Apps)
	if len(jobs) != n*(len(Figure9Schemes())+1) {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, j := range jobs[:n] {
		if !j.Sequential || j.Profile.Name != opt.Apps[i].Name {
			t.Fatalf("job %d is not the %s baseline: %s", i, opt.Apps[i].Name, j.Label())
		}
	}
	for i, j := range jobs[n:] {
		if j.Sequential {
			t.Fatalf("speculative slot %d is sequential", i)
		}
		if want := opt.Apps[i/len(Figure9Schemes())].Name; j.Profile.Name != want {
			t.Fatalf("job %d profile %s, want %s", n+i, j.Profile.Name, want)
		}
	}
}
