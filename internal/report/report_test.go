package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastApps is a reduced suite for tests: small versions of the three apps
// that exercise the major behaviours (privatization, commit ratio,
// squashes).
func fastApps() []workload.Profile {
	tree := workload.Tree().Scale(0.1, 0.1, 0.25)
	track := workload.Track().Scale(0.1, 0.1, 0.25)
	euler := workload.Euler().Scale(0.1, 0.1, 0.25)
	// At this tiny scale Euler's natural dependence rate is too sparse to
	// squash reliably; raise it so tests exercise recovery.
	euler.DepProb = 0.3
	return []workload.Profile{tree, track, euler}
}

func TestRunGridShape(t *testing.T) {
	g := RunGrid(machine.CMP8(), Figure9Schemes(), Options{Apps: fastApps(), Seed: 5})
	if len(g.Apps) != 3 {
		t.Fatalf("apps = %v", g.Apps)
	}
	if len(g.Schemes) != 6 {
		t.Fatalf("schemes = %d", len(g.Schemes))
	}
	for _, app := range g.Apps {
		for _, sch := range g.Schemes {
			c := g.Cell(app, sch)
			if c.Result.Commits != c.Result.Tasks {
				t.Errorf("%s/%v incomplete", app, sch)
			}
			if c.Seq == 0 {
				t.Errorf("%s missing sequential baseline", app)
			}
			if c.Result.OracleViolations != 0 {
				t.Errorf("%s/%v violated sequential semantics", app, sch)
			}
		}
	}
}

func TestGridProgressCallback(t *testing.T) {
	calls := 0
	RunGrid(machine.CMP8(), []core.Scheme{core.SingleTEager}, Options{
		Apps: fastApps()[:1], Seed: 2,
		Progress: func(m, a string, s core.Scheme, _ sim.Result) { calls++ },
	})
	if calls != 1 {
		t.Fatalf("progress called %d times, want 1", calls)
	}
}

func TestCellHelpers(t *testing.T) {
	g := RunGrid(machine.CMP8(), []core.Scheme{core.SingleTEager, core.SingleTLazy},
		Options{Apps: fastApps()[:1], Seed: 3})
	app := g.Apps[0]
	c := g.Cell(app, core.SingleTEager)
	if c.Normalized(c.Result.ExecCycles) != 1.0 {
		t.Fatal("self-normalization must be 1")
	}
	if c.Normalized(0) != 0 {
		t.Fatal("zero reference must not divide")
	}
	if c.Speedup() <= 0 {
		t.Fatal("speedup must be positive")
	}
}

func TestSummarize(t *testing.T) {
	g := RunGrid(machine.CMP8(), Figure9Schemes(), Options{Apps: fastApps(), Seed: 7})
	s := Summarize(g)
	if s.Machine != "CMP8" {
		t.Fatal("machine name lost")
	}
	// The reductions must be finite percentages in a plausible band.
	for _, v := range []float64{s.MultiTMVOverSingleTPct, s.LazinessSimplePct, s.LazinessMultiTMVPct} {
		if v < -50 || v > 90 {
			t.Fatalf("implausible summary: %+v", s)
		}
	}
}

func TestCharacterize(t *testing.T) {
	chars := Characterize(Options{Apps: fastApps(), Seed: 9})
	if len(chars) != 3 {
		t.Fatalf("characterized %d apps", len(chars))
	}
	for _, c := range chars {
		if c.FootprintKB <= 0 || c.SpecTasksSystem <= 0 {
			t.Errorf("%s: empty characterization", c.Profile.Name)
		}
		if c.CENuma <= 0 || c.CECmp <= 0 {
			t.Errorf("%s: commit ratios missing (%f, %f)", c.Profile.Name, c.CENuma, c.CECmp)
		}
	}
	// For the dominant-commit app the NUMA ratio must exceed the CMP ratio
	// (Table 3's pattern); squash-heavy Euler at test scale is too noisy.
	if chars[1].CENuma <= chars[1].CECmp {
		t.Errorf("Track: NUMA commit ratio (%f) should exceed CMP (%f)", chars[1].CENuma, chars[1].CECmp)
	}
	// Tree is privatization-dominant; Track is not.
	if chars[0].PrivPct < 50 {
		t.Errorf("Tree priv%% = %f, want dominant", chars[0].PrivPct)
	}
	if chars[1].PrivPct > 10 {
		t.Errorf("Track priv%% = %f, want negligible", chars[1].PrivPct)
	}
	// Euler squashes.
	if chars[2].SquashRate == 0 {
		t.Error("Euler must squash")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	g := RunGrid(machine.CMP8(), Figure9Schemes(), Options{Apps: fastApps()[:1], Seed: 11})
	var buf bytes.Buffer
	RenderGrid(&buf, g, "Figure 9")
	RenderAverages(&buf, g)
	chars := Characterize(Options{Apps: fastApps()[:1], Seed: 11})
	RenderFigure1(&buf, chars)
	RenderTable3(&buf, chars)
	RenderTable1(&buf)
	RenderTable2(&buf)
	RenderFigure2(&buf)
	RenderFigure4(&buf)
	RenderFigure8(&buf)
	RenderSummary(&buf, Summarize(g), 32, 30, 24)
	out := buf.String()
	for _, want := range []string{
		"Figure 9", "SingleT Eager AMM", "MultiT&MV Lazy AMM",
		"Table 1", "CTID", "Table 2", "Remove commit wavefront",
		"Figure 2-(a)", "(shaded)", "Figure 4", "Prvulovic01",
		"Figure 8", "frequent recoveries", "Section 5.4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFigure10WithLazyL2(t *testing.T) {
	p3m := workload.P3m().Scale(0.08, 0.1, 1)
	g, lazyL2 := Figure10(Options{Apps: []workload.Profile{p3m}, Seed: 13})
	if len(g.Schemes) != 4 {
		t.Fatalf("Figure 10 has 4 schemes, got %d", len(g.Schemes))
	}
	if lazyL2.Result.Commits == 0 {
		t.Fatal("Lazy.L2 cell missing for P3m")
	}
	fmm := g.Cell("P3m", core.MultiTMVFMM).Result
	if fmm.OverflowSpills != 0 {
		t.Fatal("FMM must not overflow")
	}
}

func TestExpectationChecks(t *testing.T) {
	g := RunGrid(machine.NUMA16(), Figure9Schemes(), Options{Apps: fastApps(), Seed: 15})
	checks := CheckFigure9Claims(g)
	if len(checks) == 0 {
		t.Fatal("no claims checked")
	}
	var buf bytes.Buffer
	RenderChecks(&buf, checks)
	if !strings.Contains(buf.String(), "Laziness speeds up SingleT in Track") {
		t.Error("Track laziness claim not rendered")
	}
}

func TestFigure5Timelines(t *testing.T) {
	var buf bytes.Buffer
	results := Figure5(&buf, 3)
	if len(results) != 3 {
		t.Fatalf("Figure 5 compares 3 schemes, got %d", len(results))
	}
	single := results[core.SingleTEager.String()]
	mv := results[core.MultiTMVEager.String()]
	if mv.ExecCycles >= single.ExecCycles {
		t.Errorf("Figure 5: MultiT&MV (%d) must finish before SingleT (%d)",
			mv.ExecCycles, single.ExecCycles)
	}
	if len(single.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	if !strings.Contains(buf.String(), "P0") || !strings.Contains(buf.String(), "P1") {
		t.Fatal("timeline lanes missing")
	}
}

func TestFigure6Wavefronts(t *testing.T) {
	var buf bytes.Buffer
	results := Figure6(&buf, 3)
	eager := results[core.MultiTMVEager.String()]
	lazy := results[core.MultiTMVLazy.String()]
	if lazy.ExecCycles >= eager.ExecCycles {
		t.Errorf("Figure 6: laziness (%d) must remove the commit wavefront (%d)",
			lazy.ExecCycles, eager.ExecCycles)
	}
	singleE := results[core.SingleTEager.String()]
	singleL := results[core.SingleTLazy.String()]
	if singleL.ExecCycles >= singleE.ExecCycles {
		t.Error("Figure 6 (c)->(d): laziness must help SingleT")
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	g := RunGrid(machine.CMP8(), []core.Scheme{core.SingleTEager}, Options{Apps: fastApps()[:1], Seed: 2})
	Timeline(&buf, g.Cell(g.Apps[0], core.SingleTEager).Result, 8, 60)
	if !strings.Contains(buf.String(), "no trace") {
		t.Fatal("untraced run must render a notice")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.apps()) != 7 {
		t.Fatalf("default suite has %d apps, want 7", len(o.apps()))
	}
	if o.seed() == 0 {
		t.Fatal("default seed must be nonzero")
	}
}

func TestSerialAndParallelGridsAgree(t *testing.T) {
	apps := fastApps()[:2]
	par := RunGrid(machine.CMP8(), Figure9Schemes()[:3], Options{Apps: apps, Seed: 31})
	ser := RunGrid(machine.CMP8(), Figure9Schemes()[:3], Options{Apps: apps, Seed: 31, Serial: true})
	for _, app := range par.Apps {
		for _, sch := range par.Schemes {
			a, b := par.Cell(app, sch), ser.Cell(app, sch)
			if a.Result.ExecCycles != b.Result.ExecCycles || a.Seq != b.Seq {
				t.Errorf("%s/%v: parallel %d vs serial %d", app, sch,
					a.Result.ExecCycles, b.Result.ExecCycles)
			}
		}
	}
}

func TestScalabilitySweep(t *testing.T) {
	pts := ScalabilitySweep([]int{2, 4}, Options{Apps: fastApps()[:2], Seed: 33})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SingleTEager != 1 {
			t.Errorf("procs %d: SingleT Eager must normalize to 1", p.Procs)
		}
		for _, v := range []float64{p.SingleTLazy, p.MultiTMVE, p.MultiTMVL} {
			if v <= 0 || v > 3 {
				t.Errorf("procs %d: implausible normalized time %f", p.Procs, v)
			}
		}
	}
	var buf bytes.Buffer
	RenderScalability(&buf, pts)
	if !strings.Contains(buf.String(), "Scalability") {
		t.Fatal("render missing header")
	}
}

func TestScalabilityAppsExcludeP3m(t *testing.T) {
	var o Options
	apps := scalabilityApps(o)
	if len(apps) != 6 {
		t.Fatalf("scalability suite has %d apps, want 6 (P3m excluded)", len(apps))
	}
	for _, p := range apps {
		if p.Name == "P3m" {
			t.Fatal("P3m must be excluded from scalability sweeps")
		}
	}
	// An explicit P3m-only option falls back to the given apps.
	p3m, _ := workload.AppByName("P3m")
	o.Apps = []workload.Profile{p3m.Scale(0.05, 0.05, 1)}
	if got := scalabilityApps(o); len(got) != 1 {
		t.Fatalf("P3m-only fallback broken: %d apps", len(got))
	}
}

func TestSeedStability(t *testing.T) {
	prof := fastApps()[2] // squash-prone Euler variant
	s := MeasureSeedStability(machine.CMP8(), core.MultiTMVLazy, prof, 1, 6)
	if s.Seeds != 6 || s.MeanCycles <= 0 {
		t.Fatalf("stability stats wrong: %+v", s)
	}
	if s.MinCycles > uint64(s.MeanCycles) || s.MaxCycles < uint64(s.MeanCycles) {
		t.Fatal("min/max must bracket the mean")
	}
	if s.CV() < 0 || s.CV() > 1 {
		t.Fatalf("implausible CV %f", s.CV())
	}
	// A squash-free workload must be far more stable than a squash-prone one.
	calm := fastApps()[0] // Tree
	cs := MeasureSeedStability(machine.CMP8(), core.MultiTMVLazy, calm, 1, 6)
	if cs.CV() > s.CV() && s.CV() > 0.01 {
		t.Errorf("Tree CV (%f) should not exceed Euler CV (%f)", cs.CV(), s.CV())
	}
}

func TestSignificant(t *testing.T) {
	a := SeedStability{MeanCycles: 1000, StddevCycles: 10}
	b := SeedStability{MeanCycles: 1100, StddevCycles: 10}
	if !Significant(a, b) {
		t.Fatal("100-cycle gap at sigma 10 must be significant")
	}
	c := SeedStability{MeanCycles: 1010, StddevCycles: 50}
	if Significant(a, c) {
		t.Fatal("10-cycle gap at sigma 50 must not be significant")
	}
	if Significant(a, a) {
		t.Fatal("identical results are never significant")
	}
}
