package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Perfetto / Chrome trace-event export: one traced simulation run rendered
// as trace-event JSON (the "JSON Array Format" both chrome://tracing and
// ui.perfetto.dev load). The mapping is:
//
//   - one process (pid 0) named after the run;
//   - one "exec" thread lane per processor (tid = proc) carrying complete
//     ("X") slices for task executions, and one "commit" lane per processor
//     (tid = commitLaneBase + proc) carrying commit slices — separate lanes
//     because commit merging overlaps the next task's execution;
//   - squashes as instant ("i") events on the victim's exec lane plus a
//     flow arrow ("s"/"f") from the violating writer's lane to the victim,
//     so dependence chains render as arrows;
//   - the obs gauge series as counter ("C") tracks.
//
// Timestamps are simulated cycles emitted as microseconds (the format's ts
// unit); durations likewise. The export is deterministic: events are
// emitted in a fixed order derived from the trace and series alone.

// commitLaneBase offsets commit-lane thread IDs away from exec-lane ones.
const commitLaneBase = 1000

// perfettoEvent is one trace-event record. Field names follow the format.
type perfettoEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`  // instant scope
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// ExportPerfetto writes run r (traced via EnableTrace) and the optional obs
// gauge series as Chrome trace-event JSON.
func ExportPerfetto(w io.Writer, r sim.Result, series obs.Series) error {
	nprocs := len(r.PerProc)
	label := fmt.Sprintf("%s/%s/%v", r.Machine, r.App, r.Scheme)
	var evs []perfettoEvent

	// Metadata: process and per-processor lane names.
	evs = append(evs, perfettoEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": label},
	})
	for p := 0; p < nprocs; p++ {
		evs = append(evs,
			perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
				Args: map[string]any{"name": fmt.Sprintf("proc %d exec", p)},
			},
			perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: commitLaneBase + p,
				Args: map[string]any{"name": fmt.Sprintf("proc %d commit", p)},
			},
		)
	}

	// Task execution and commit slices. The trace is scanned in order; an
	// open start per task is closed by the matching finish/squash (exec) or
	// commit-end (commit). Squashes additionally emit an instant on the
	// victim lane and a flow arrow from the writer's lane when attributed.
	openExec := map[ids.TaskID]sim.TraceEvent{}
	openCommit := map[ids.TaskID]sim.TraceEvent{}
	procOf := map[ids.TaskID]ids.ProcID{}
	flowID := 0
	for _, e := range r.Trace {
		switch e.Kind {
		case sim.TraceStart:
			openExec[e.Task] = e
			procOf[e.Task] = e.Proc
		case sim.TraceFinish, sim.TraceSquash:
			if st, ok := openExec[e.Task]; ok {
				delete(openExec, e.Task)
				name := "task " + e.Task.String()
				cat := "exec"
				if e.Kind == sim.TraceSquash {
					cat = "squashed"
				}
				evs = append(evs, perfettoEvent{
					Name: name, Cat: cat, Ph: "X",
					Ts: uint64(st.When), Dur: uint64(e.When - st.When),
					Pid: 0, Tid: int(e.Proc),
				})
			}
			if e.Kind == sim.TraceSquash {
				evs = append(evs, perfettoEvent{
					Name: "squash " + e.Task.String(), Cat: "squash", Ph: "i",
					Ts: uint64(e.When), Pid: 0, Tid: int(e.Proc), S: "t",
					Args: map[string]any{
						"word":   uint64(e.Word),
						"writer": e.Writer.String(),
						"wasted": uint64(e.Wasted),
					},
				})
				if wp, ok := procOf[e.Writer]; ok && e.Writer != ids.None {
					flowID++
					id := strconv.Itoa(flowID)
					evs = append(evs,
						perfettoEvent{
							Name: "raw", Cat: "squash", Ph: "s", ID: id,
							Ts: uint64(e.When), Pid: 0, Tid: int(wp),
						},
						perfettoEvent{
							Name: "raw", Cat: "squash", Ph: "f", ID: id, BP: "e",
							Ts: uint64(e.When), Pid: 0, Tid: int(e.Proc),
						},
					)
				}
			}
		case sim.TraceCommitStart:
			openCommit[e.Task] = e
		case sim.TraceCommitEnd:
			if st, ok := openCommit[e.Task]; ok {
				delete(openCommit, e.Task)
				evs = append(evs, perfettoEvent{
					Name: "commit " + e.Task.String(), Cat: "commit", Ph: "X",
					Ts: uint64(st.When), Dur: uint64(e.When - st.When),
					Pid: 0, Tid: commitLaneBase + int(e.Proc),
				})
			}
		}
	}

	// Counter tracks from the gauge series: one track per source, one "C"
	// event per sample.
	for col, name := range series.Names {
		for _, row := range series.Samples {
			evs = append(evs, perfettoEvent{
				Name: name, Cat: "gauge", Ph: "C", Ts: row.Cycle, Pid: 0, Tid: 0,
				Args: map[string]any{"value": row.Values[col]},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// PerfettoStats summarizes a validated trace-event file.
type PerfettoStats struct {
	Events        int
	Slices        int // complete "X" events
	Instants      int
	FlowStarts    int
	FlowEnds      int
	CounterEvents int
	CounterTracks int // distinct counter names
	ExecLanes     int // distinct exec lanes (pid, tid) carrying slices
	Metadata      int
	Processes     int // distinct pids (1 for a sim export, one per fleet process)
	SpanIDs       int // distinct args.span correlation IDs
}

// ValidatePerfetto parses trace-event JSON produced by ExportPerfetto, the
// fleet exporter (trace.ExportPerfetto), or any conforming producer and
// checks its schema: a traceEvents array whose records carry a known phase,
// with paired flow arrows and non-negative times. It understands both the
// single-process sim layout (pid 0, commit lanes offset by commitLaneBase)
// and the multi-process fleet layout (one pid per coordinator/worker):
// exec lanes are keyed by (pid, tid), and span correlation IDs stamped in
// args.span must be unique across the whole file — a duplicate means two
// processes minted colliding IDs and the merged trace is untrustworthy. It
// returns per-phase statistics for further assertions.
func ValidatePerfetto(r io.Reader) (PerfettoStats, error) {
	var st PerfettoStats
	var f struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return st, fmt.Errorf("report: perfetto: parsing: %w", err)
	}
	if f.TraceEvents == nil {
		return st, fmt.Errorf("report: perfetto: no traceEvents array")
	}
	counters := map[string]bool{}
	type lane struct{ pid, tid int }
	execLanes := map[lane]bool{}
	pids := map[int]bool{}
	spans := map[string]int{} // span ID -> first event index
	for i, ev := range f.TraceEvents {
		var ph string
		if raw, ok := ev["ph"]; !ok || json.Unmarshal(raw, &ph) != nil {
			return st, fmt.Errorf("report: perfetto: event %d: missing phase", i)
		}
		name := ""
		if raw, ok := ev["name"]; ok {
			if err := json.Unmarshal(raw, &name); err != nil {
				return st, fmt.Errorf("report: perfetto: event %d: bad name: %v", i, err)
			}
		}
		pid := 0
		if raw, ok := ev["pid"]; ok {
			if err := json.Unmarshal(raw, &pid); err != nil {
				return st, fmt.Errorf("report: perfetto: event %d: bad pid: %v", i, err)
			}
		}
		pids[pid] = true
		if ph != "M" { // metadata events carry no timestamp requirement
			var ts float64
			if raw, ok := ev["ts"]; !ok || json.Unmarshal(raw, &ts) != nil {
				return st, fmt.Errorf("report: perfetto: event %d (%s): missing ts", i, ph)
			} else if ts < 0 {
				return st, fmt.Errorf("report: perfetto: event %d (%s): negative ts", i, ph)
			}
		}
		if raw, ok := ev["args"]; ok {
			var args struct {
				Span string `json:"span"`
			}
			if json.Unmarshal(raw, &args) == nil && args.Span != "" {
				if first, dup := spans[args.Span]; dup {
					return st, fmt.Errorf("report: perfetto: event %d: span ID %s duplicates event %d — cross-process ID collision", i, args.Span, first)
				}
				spans[args.Span] = i
			}
		}
		st.Events++
		switch ph {
		case "X":
			st.Slices++
			var tid int
			if raw, ok := ev["tid"]; ok && json.Unmarshal(raw, &tid) == nil && tid < commitLaneBase {
				execLanes[lane{pid, tid}] = true
			}
		case "i", "I":
			st.Instants++
		case "s":
			st.FlowStarts++
		case "f":
			st.FlowEnds++
		case "C":
			st.CounterEvents++
			counters[name] = true
		case "M":
			st.Metadata++
		case "B", "E", "b", "e", "n", "t":
			// Legal phases we don't emit; accept them.
		default:
			return st, fmt.Errorf("report: perfetto: event %d: unknown phase %q", i, ph)
		}
	}
	if st.FlowStarts != st.FlowEnds {
		return st, fmt.Errorf("report: perfetto: %d flow starts, %d flow ends", st.FlowStarts, st.FlowEnds)
	}
	st.CounterTracks = len(counters)
	st.ExecLanes = len(execLanes)
	st.Processes = len(pids)
	st.SpanIDs = len(spans)
	return st, nil
}
