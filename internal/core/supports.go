package core

// Support is one of the hardware/software mechanisms of Table 1.
type Support uint8

const (
	// CTID — storage and checking logic for a task-ID field in each cache
	// line.
	CTID Support = iota
	// CRL — advanced logic in the cache to service external requests for
	// versions (select, among multiple lines with the same address tag, the
	// highest producer at or below the requester, and combine words).
	CRL
	// MTID — a task ID for each speculative variable in memory and the
	// comparison logic to reject stale write-backs.
	MTID
	// VCL — logic for combining/invalidating committed versions so that
	// main memory is updated in version order under Lazy AMM.
	VCL
	// ULOG — logic and storage to support undo logging (the MHB).
	ULOG
)

// AllSupports lists the mechanisms of Table 1 in presentation order.
func AllSupports() []Support { return []Support{CTID, CRL, MTID, VCL, ULOG} }

func (s Support) String() string {
	switch s {
	case CTID:
		return "CTID"
	case CRL:
		return "CRL"
	case MTID:
		return "MTID"
	case VCL:
		return "VCL"
	case ULOG:
		return "ULOG"
	default:
		return "Support(?)"
	}
}

// Description returns the Table 1 description of the mechanism.
func (s Support) Description() string {
	switch s {
	case CTID:
		return "Storage and checking logic for a task-ID field in each cache line"
	case CRL:
		return "Advanced logic in the cache to service external requests for versions"
	case MTID:
		return "Task ID for each speculative variable in memory and needed comparison logic"
	case VCL:
		return "Logic for combining/invalidating committed versions"
	case ULOG:
		return "Logic and storage to support logging"
	default:
		return ""
	}
}

// SupportSet is the set of mechanisms a scheme requires.
type SupportSet map[Support]bool

// Has reports membership.
func (ss SupportSet) Has(s Support) bool { return ss[s] }

// List returns the members in Table 1 order.
func (ss SupportSet) List() []Support {
	var out []Support
	for _, s := range AllSupports() {
		if ss[s] {
			out = append(out, s)
		}
	}
	return out
}

// RequiredSupports returns the mechanisms scheme needs beyond plain caches,
// following Section 3.3:
//
//   - MultiT (SV or MV) needs CTID; MV additionally needs CRL.
//   - Lazy AMM needs CTID and version-ordering for in-order merging — VCL
//     (what we model) or MTID (the Zhang99&T alternative).
//   - FMM needs ULOG (unless maintained in software), MTID (the VCL "would
//     not work" because earlier versions may not exist yet), and CTID even
//     under SingleT — which is why the shaded boxes are uninteresting.
func RequiredSupports(s Scheme) SupportSet {
	ss := make(SupportSet)
	if s.Coarse {
		// Coarse-recovery schemes "typically use no hardware support for
		// buffering beyond plain caches": everything is software.
		return ss
	}
	if s.Sep != SingleT {
		ss[CTID] = true
	}
	if s.Sep == MultiTMV {
		ss[CRL] = true
	}
	switch s.Merge {
	case LazyAMM:
		ss[CTID] = true
		ss[VCL] = true
	case FMM:
		ss[CTID] = true
		ss[MTID] = true
		if !s.SoftwareLog {
			ss[ULOG] = true
		}
	}
	return ss
}

// ComplexityRank orders schemes by implementation complexity as argued in
// Section 3.3.5: supports are weighted by how global their changes are.
// CRL is a local cache change; VCL touches the coherence protocol; MTID is
// "arguably more complex than VCL"; ULOG adds storage and sequencing.
func ComplexityRank(s Scheme) int {
	weights := map[Support]int{CTID: 1, CRL: 1, VCL: 2, MTID: 3, ULOG: 2}
	rank := 0
	for sup := range RequiredSupports(s) {
		rank += weights[sup]
	}
	return rank
}

// UpgradeStep is one row of Table 2: moving from one design point to a
// strictly more capable one, the benefit obtained and the support added.
type UpgradeStep struct {
	From, To Scheme
	Benefit  string
	Added    []Support
}

// UpgradePath returns Table 2: the feature-upgrade path explored by the
// tradeoff analysis, in decreasing complexity-effectiveness.
func UpgradePath() []UpgradeStep {
	return []UpgradeStep{
		{
			From:    SingleTEager,
			To:      MultiTSVEager,
			Benefit: "Tolerate load imbalance without mostly-privatization access patterns",
			Added:   []Support{CTID},
		},
		{
			From:    MultiTSVEager,
			To:      MultiTMVEager,
			Benefit: "Tolerate load imbalance even with mostly-privatization access patterns",
			Added:   []Support{CRL},
		},
		{
			From:    MultiTMVEager,
			To:      MultiTMVLazy,
			Benefit: "Remove commit wavefront from critical path",
			Added:   []Support{VCL}, // or MTID; CTID already present
		},
		{
			From:    MultiTMVLazy,
			To:      MultiTMVFMM,
			Benefit: "Faster version commit but slower version recovery",
			Added:   []Support{ULOG, MTID}, // MTID replaces VCL
		},
	}
}
