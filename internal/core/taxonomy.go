// Package core implements the paper's primary contribution: the taxonomy of
// approaches to buffer and manage multi-version speculative memory state in
// multiprocessors (Section 3), the support-requirement and upgrade-path
// analysis (Tables 1 and 2), the mapping of previously proposed schemes
// onto the taxonomy (Figure 4), the per-scheme limiting application
// characteristics (Figure 8), and the behavioral policy each design point
// imposes on the memory system, which the simulator enforces.
package core

import (
	"fmt"
	"strings"
)

// Separation classifies how the speculative state in an individual
// processor's buffer is separated — the vertical axis of Figure 2-(a).
type Separation uint8

const (
	// SingleT buffers the state of a single speculative task at a time. A
	// processor that finishes a speculative task stalls until the task
	// commits.
	SingleT Separation = iota
	// MultiTSV buffers multiple speculative tasks but only a single
	// speculative version of any given variable. The processor stalls when a
	// task is about to create a second local speculative version.
	MultiTSV
	// MultiTMV buffers multiple speculative tasks and multiple speculative
	// versions of the same variable.
	MultiTMV
)

// Separations lists the axis values in increasing support order.
func Separations() []Separation { return []Separation{SingleT, MultiTSV, MultiTMV} }

func (s Separation) String() string {
	switch s {
	case SingleT:
		return "SingleT"
	case MultiTSV:
		return "MultiT&SV"
	case MultiTMV:
		return "MultiT&MV"
	default:
		return fmt.Sprintf("Separation(%d)", uint8(s))
	}
}

// Merging classifies how task state is merged with main memory — the
// horizontal axis of Figure 2-(a).
type Merging uint8

const (
	// EagerAMM merges a task's state with (architectural) main memory
	// strictly at commit time.
	EagerAMM Merging = iota
	// LazyAMM merges committed versions with main memory at or after commit
	// time, on displacement or external request.
	LazyAMM
	// FMM lets versions merge with (future) main memory at any time; an
	// undo log (the MHB) enables recovery.
	FMM
)

// Mergings lists the axis values in increasing support order.
func Mergings() []Merging { return []Merging{EagerAMM, LazyAMM, FMM} }

func (m Merging) String() string {
	switch m {
	case EagerAMM:
		return "Eager AMM"
	case LazyAMM:
		return "Lazy AMM"
	case FMM:
		return "FMM"
	default:
		return fmt.Sprintf("Merging(%d)", uint8(m))
	}
}

// Scheme is one point of the design space: a separation policy crossed
// with a merging policy, plus the software-log variant of FMM evaluated as
// FMM.Sw in Figure 10.
type Scheme struct {
	Sep   Separation
	Merge Merging
	// SoftwareLog selects the software implementation of the undo log
	// (FMM.Sw): the MHB is maintained by plain instructions added to the
	// application, eliminating the ULOG hardware at a small run-time cost.
	// Only meaningful for FMM.
	SoftwareLog bool
	// Coarse selects coarse-grain recovery (the LRPD/SUDS class of Figure
	// 4): no buffering hardware beyond plain caches, software access
	// marking, violations tested at the end of the speculative section, and
	// on failure the state reverts to the beginning of the entire section —
	// it re-executes serially. Requires SingleT + FMM + SoftwareLog (the
	// corner the paper maps these schemes to).
	Coarse bool
}

// The canonical design points evaluated in the paper.
var (
	SingleTEager  = Scheme{Sep: SingleT, Merge: EagerAMM}
	SingleTLazy   = Scheme{Sep: SingleT, Merge: LazyAMM}
	MultiTSVEager = Scheme{Sep: MultiTSV, Merge: EagerAMM}
	MultiTSVLazy  = Scheme{Sep: MultiTSV, Merge: LazyAMM}
	MultiTMVEager = Scheme{Sep: MultiTMV, Merge: EagerAMM}
	MultiTMVLazy  = Scheme{Sep: MultiTMV, Merge: LazyAMM}
	MultiTMVFMM   = Scheme{Sep: MultiTMV, Merge: FMM}
	MultiTMVFMMSw = Scheme{Sep: MultiTMV, Merge: FMM, SoftwareLog: true}

	// CoarseRecovery is the LRPD/SUDS-style software-only baseline: run the
	// loop fully in parallel with software access marking, test for
	// cross-task dependences at the end, and re-execute the whole section
	// serially if the test fails.
	CoarseRecovery = Scheme{Sep: SingleT, Merge: FMM, SoftwareLog: true, Coarse: true}
)

// AllSchemes returns every design point the paper models — the non-shaded
// boxes of Figure 2-(a) plus the FMM.Sw variant.
func AllSchemes() []Scheme {
	return []Scheme{
		SingleTEager, SingleTLazy,
		MultiTSVEager, MultiTSVLazy,
		MultiTMVEager, MultiTMVLazy,
		MultiTMVFMM, MultiTMVFMMSw,
	}
}

// ExtendedSchemes returns the paper's evaluated design points plus the
// coarse-recovery software baseline of Figure 4.
func ExtendedSchemes() []Scheme {
	return append(AllSchemes(), CoarseRecovery)
}

// SchemeFromString parses a scheme by its String() name (case-insensitive),
// e.g. "MultiT&MV Lazy AMM" or "SingleT Eager AMM".
func SchemeFromString(name string) (Scheme, bool) {
	for _, s := range ExtendedSchemes() {
		if strings.EqualFold(s.String(), name) {
			return s, true
		}
	}
	return Scheme{}, false
}

// Interesting reports whether the design point is worth building. SingleT
// FMM and MultiT&SV FMM are shaded in Figure 2-(a): FMM needs task-ID tags
// on all cached versions even under SingleT, so "SingleT FMM needs nearly
// as much hardware as MultiT&SV FMM, without the latter's potential
// benefits", and likewise for MultiT&SV FMM versus MultiT&MV FMM.
func (s Scheme) Interesting() bool {
	if s.Coarse {
		return true // "except for coarse recovery"
	}
	return !(s.Merge == FMM && s.Sep != MultiTMV)
}

// Valid reports whether the scheme is self-consistent (SoftwareLog only
// applies to FMM; Coarse pins the LRPD corner).
func (s Scheme) Valid() bool {
	if s.SoftwareLog && s.Merge != FMM {
		return false
	}
	if s.Coarse {
		return s.Sep == SingleT && s.Merge == FMM && s.SoftwareLog
	}
	return true
}

func (s Scheme) String() string {
	if s.Coarse {
		return "Coarse Recovery (LRPD)"
	}
	if s.Merge == FMM {
		if s.SoftwareLog {
			return s.Sep.String() + " FMM.Sw"
		}
		return s.Sep.String() + " FMM"
	}
	return s.Sep.String() + " " + s.Merge.String()
}

// ShortName returns the compact label used in the figures ("E"/"L" columns
// of Figures 9 and 11, bar labels of Figure 10).
func (s Scheme) ShortName() string {
	if s.Coarse {
		return "Coarse"
	}
	switch s.Merge {
	case EagerAMM:
		return "Eager"
	case LazyAMM:
		return "Lazy"
	default:
		if s.SoftwareLog {
			return "FMM.Sw"
		}
		return "FMM"
	}
}

// Behavioral policy — what each design point obliges the memory system to
// do. The simulator consults these instead of switching on scheme names.

// MultipleTasksPerProc reports whether a processor can start a new
// speculative task before its previous one commits. Coarse-recovery
// schemes run the loop as a doall — nothing ever waits for the commit
// token mid-section (the "effectively SingleT" of Figure 4 refers to the
// recovery granularity, not to mid-loop stalling).
func (s Scheme) MultipleTasksPerProc() bool { return s.Sep != SingleT || s.Coarse }

// StallsOnSecondLocalVersion reports whether creating a second local
// speculative version of a line stalls the processor (MultiT&SV).
func (s Scheme) StallsOnSecondLocalVersion() bool { return s.Sep == MultiTSV }

// MergesAtCommit reports whether commit must write the task's dirty state
// back to memory before passing the token (Eager AMM).
func (s Scheme) MergesAtCommit() bool { return s.Merge == EagerAMM }

// KeepsCommittedVersionsInCache reports whether committed versions linger
// in caches after commit (Lazy AMM).
func (s Scheme) KeepsCommittedVersionsInCache() bool { return s.Merge == LazyAMM }

// UsesUndoLog reports whether the scheme maintains a memory-system history
// buffer (FMM).
func (s Scheme) UsesUndoLog() bool { return s.Merge == FMM }

// UsesOverflowArea reports whether displaced speculative versions must be
// kept in the per-processor overflow area (AMM schemes: main memory may
// not be polluted with speculative state). Under FMM a speculative version
// may be written back to memory at any time instead.
func (s Scheme) UsesOverflowArea() bool { return s.Merge != FMM }

// MemoryNeedsMTID reports whether main memory must filter stale
// write-backs by task ID. Required by FMM (even uncommitted versions reach
// memory); an alternative to the VCL for Lazy AMM (we model Lazy AMM with
// the VCL, and ablate the MTID alternative).
func (s Scheme) MemoryNeedsMTID() bool { return s.Merge == FMM }
