package core

// ExistingScheme is one previously proposed thread-level speculation scheme
// placed in the taxonomy — an entry of Figure 4.
type ExistingScheme struct {
	Name string
	Sep  Separation
	// Merge is the merging axis; EagerLazyNA marks schemes for which the
	// Eager/Lazy distinction does not apply (DDSM: one task per processor
	// per speculative section).
	Merge Merging
	// MergeNA is set when the Eager/Lazy distinction does not apply.
	MergeNA bool
	// CoarseRecovery marks software schemes whose MHB holds only the state
	// from before the whole speculative section (LRPD, SUDS, ...): a
	// violation reverts the entire section, which makes them effectively
	// SingleT.
	CoarseRecovery bool
	// Where speculative state is buffered, from Section 3.2.
	Buffering string
}

// ExistingSchemes returns the Figure 4 registry.
func ExistingSchemes() []ExistingScheme {
	return []ExistingScheme{
		{Name: "Multiscalar (hierarchical ARB)", Sep: SingleT, Merge: EagerAMM,
			Buffering: "one stage of the global ARB"},
		{Name: "Superthreaded", Sep: SingleT, Merge: EagerAMM,
			Buffering: "the Memory Buffer"},
		{Name: "MDT", Sep: SingleT, Merge: EagerAMM,
			Buffering: "the L1"},
		{Name: "Marcuello99", Sep: SingleT, Merge: EagerAMM,
			Buffering: "register file plus a shared Multi-Value cache"},
		{Name: "Multiscalar (SVC)", Sep: SingleT, Merge: LazyAMM,
			Buffering: "processor caches; committed versions linger (VOL ordering)"},
		{Name: "DDSM", Sep: SingleT, Merge: EagerAMM, MergeNA: true,
			Buffering: "processor caches; one task per processor per section"},
		{Name: "Hydra", Sep: MultiTMV, Merge: EagerAMM,
			Buffering: "buffers between L1 and L2, one per task"},
		{Name: "Steffan97&00", Sep: MultiTMV, Merge: EagerAMM,
			Buffering: "L1 (and in some cases L2); also has a MultiT&SV design"},
		{Name: "Steffan97&00 (SV design)", Sep: MultiTSV, Merge: EagerAMM,
			Buffering: "cache not designed to hold multiple versions of a variable"},
		{Name: "Cintra00", Sep: MultiTMV, Merge: EagerAMM,
			Buffering: "L1/L2 with per-word version support"},
		{Name: "Prvulovic01", Sep: MultiTMV, Merge: LazyAMM,
			Buffering: "L2 plus overflow area; committed versions merge lazily"},
		{Name: "Zhang99&T", Sep: MultiTMV, Merge: FMM,
			Buffering: "hardware logs form the MHB"},
		{Name: "Garzaran01", Sep: MultiTMV, Merge: FMM,
			Buffering: "software log structures in caches or memory"},
		{Name: "LRPD", Sep: SingleT, Merge: FMM, CoarseRecovery: true,
			Buffering: "software copying; plain caches"},
		{Name: "SUDS", Sep: SingleT, Merge: FMM, CoarseRecovery: true,
			Buffering: "software copying; plain caches"},
	}
}

// LimitingCharacteristic is an application behaviour that limits the
// performance of one or more schemes — the annotations of Figure 8.
type LimitingCharacteristic string

const (
	// LimitLoadImbalance — task load imbalance stalls SingleT processors.
	LimitLoadImbalance LimitingCharacteristic = "task load imbalance"
	// LimitImbalancePlusPriv — load imbalance combined with
	// mostly-privatization patterns stalls MultiT&SV processors.
	LimitImbalancePlusPriv LimitingCharacteristic = "task load imbalance + mostly-privatization patterns"
	// LimitCommitWavefront — the task commit wavefront appears in the
	// critical path of Eager AMM schemes.
	LimitCommitWavefront LimitingCharacteristic = "task commit wavefront in critical path"
	// LimitCacheOverflow — cache overflow due to capacity or conflicts
	// penalizes AMM schemes (overflow-area accesses).
	LimitCacheOverflow LimitingCharacteristic = "cache overflow due to capacity or conflicts"
	// LimitFrequentSquashes — frequent recoveries from dependence
	// violations penalize FMM schemes (log-walk recovery).
	LimitFrequentSquashes LimitingCharacteristic = "frequent recoveries from dependence violations"
)

// Limits returns the application characteristics expected to limit the
// performance of the given scheme (Figure 8).
func Limits(s Scheme) []LimitingCharacteristic {
	var out []LimitingCharacteristic
	switch s.Sep {
	case SingleT:
		out = append(out, LimitLoadImbalance)
	case MultiTSV:
		out = append(out, LimitImbalancePlusPriv)
	}
	if s.Merge == EagerAMM {
		out = append(out, LimitCommitWavefront)
	}
	if s.Merge != FMM {
		out = append(out, LimitCacheOverflow)
	} else {
		out = append(out, LimitFrequentSquashes)
	}
	return out
}
