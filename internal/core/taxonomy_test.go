package core

import (
	"strings"
	"testing"
)

func TestAxisStrings(t *testing.T) {
	if SingleT.String() != "SingleT" || MultiTSV.String() != "MultiT&SV" || MultiTMV.String() != "MultiT&MV" {
		t.Fatal("Separation strings wrong")
	}
	if EagerAMM.String() != "Eager AMM" || LazyAMM.String() != "Lazy AMM" || FMM.String() != "FMM" {
		t.Fatal("Merging strings wrong")
	}
	if Separation(9).String() != "Separation(9)" || Merging(9).String() != "Merging(9)" {
		t.Fatal("unknown axis strings wrong")
	}
}

func TestAxesComplete(t *testing.T) {
	if len(Separations()) != 3 || len(Mergings()) != 3 {
		t.Fatal("the taxonomy is a 3x3 grid")
	}
}

func TestAllSchemes(t *testing.T) {
	all := AllSchemes()
	if len(all) != 8 {
		t.Fatalf("AllSchemes = %d points, want 8 (6 AMM boxes + FMM + FMM.Sw)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if !s.Valid() {
			t.Errorf("scheme %v is invalid", s)
		}
		if !s.Interesting() {
			t.Errorf("scheme %v is a shaded (uninteresting) box", s)
		}
		if seen[s.String()] {
			t.Errorf("duplicate scheme %v", s)
		}
		seen[s.String()] = true
	}
}

func TestShadedBoxesUninteresting(t *testing.T) {
	for _, sep := range []Separation{SingleT, MultiTSV} {
		s := Scheme{Sep: sep, Merge: FMM}
		if s.Interesting() {
			t.Errorf("%v must be shaded: FMM needs CTID even under %v", s, sep)
		}
	}
	if !MultiTMVFMM.Interesting() {
		t.Error("MultiT&MV FMM is a modelled design point")
	}
}

func TestSoftwareLogOnlyForFMM(t *testing.T) {
	bad := Scheme{Sep: MultiTMV, Merge: LazyAMM, SoftwareLog: true}
	if bad.Valid() {
		t.Fatal("SoftwareLog must require FMM")
	}
	if !MultiTMVFMMSw.Valid() {
		t.Fatal("FMM.Sw must be valid")
	}
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		s     Scheme
		long  string
		short string
	}{
		{SingleTEager, "SingleT Eager AMM", "Eager"},
		{MultiTSVLazy, "MultiT&SV Lazy AMM", "Lazy"},
		{MultiTMVFMM, "MultiT&MV FMM", "FMM"},
		{MultiTMVFMMSw, "MultiT&MV FMM.Sw", "FMM.Sw"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.long {
			t.Errorf("String = %q, want %q", got, tt.long)
		}
		if got := tt.s.ShortName(); got != tt.short {
			t.Errorf("ShortName = %q, want %q", got, tt.short)
		}
	}
}

func TestPolicyPredicates(t *testing.T) {
	tests := []struct {
		s                                              Scheme
		multi, svStall, eagerMerge, lingers, log, ovfl bool
	}{
		{SingleTEager, false, false, true, false, false, true},
		{SingleTLazy, false, false, false, true, false, true},
		{MultiTSVEager, true, true, true, false, false, true},
		{MultiTSVLazy, true, true, false, true, false, true},
		{MultiTMVEager, true, false, true, false, false, true},
		{MultiTMVLazy, true, false, false, true, false, true},
		{MultiTMVFMM, true, false, false, false, true, false},
		{MultiTMVFMMSw, true, false, false, false, true, false},
	}
	for _, tt := range tests {
		if got := tt.s.MultipleTasksPerProc(); got != tt.multi {
			t.Errorf("%v: MultipleTasksPerProc = %v", tt.s, got)
		}
		if got := tt.s.StallsOnSecondLocalVersion(); got != tt.svStall {
			t.Errorf("%v: StallsOnSecondLocalVersion = %v", tt.s, got)
		}
		if got := tt.s.MergesAtCommit(); got != tt.eagerMerge {
			t.Errorf("%v: MergesAtCommit = %v", tt.s, got)
		}
		if got := tt.s.KeepsCommittedVersionsInCache(); got != tt.lingers {
			t.Errorf("%v: KeepsCommittedVersionsInCache = %v", tt.s, got)
		}
		if got := tt.s.UsesUndoLog(); got != tt.log {
			t.Errorf("%v: UsesUndoLog = %v", tt.s, got)
		}
		if got := tt.s.UsesOverflowArea(); got != tt.ovfl {
			t.Errorf("%v: UsesOverflowArea = %v", tt.s, got)
		}
	}
}

func TestMTIDRequirement(t *testing.T) {
	if !MultiTMVFMM.MemoryNeedsMTID() || !MultiTMVFMMSw.MemoryNeedsMTID() {
		t.Fatal("FMM requires MTID")
	}
	if MultiTMVLazy.MemoryNeedsMTID() {
		t.Fatal("Lazy AMM is modelled with the VCL, not MTID")
	}
}

func TestRequiredSupportsTable2(t *testing.T) {
	tests := []struct {
		s    Scheme
		want []Support
	}{
		{SingleTEager, nil},
		{MultiTSVEager, []Support{CTID}},
		{MultiTMVEager, []Support{CTID, CRL}},
		{SingleTLazy, []Support{CTID, VCL}},
		{MultiTMVLazy, []Support{CTID, CRL, VCL}},
		{MultiTMVFMM, []Support{CTID, CRL, MTID, ULOG}},
		{MultiTMVFMMSw, []Support{CTID, CRL, MTID}}, // ULOG hardware eliminated
	}
	for _, tt := range tests {
		got := RequiredSupports(tt.s).List()
		if len(got) != len(tt.want) {
			t.Errorf("%v: supports = %v, want %v", tt.s, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%v: supports = %v, want %v", tt.s, got, tt.want)
				break
			}
		}
	}
}

func TestSupportDescriptions(t *testing.T) {
	for _, s := range AllSupports() {
		if s.String() == "Support(?)" || s.Description() == "" {
			t.Errorf("support %d lacks name or description", s)
		}
	}
	if Support(9).Description() != "" || Support(9).String() != "Support(?)" {
		t.Error("unknown support not handled")
	}
}

func TestSupportSetHas(t *testing.T) {
	ss := RequiredSupports(MultiTMVLazy)
	if !ss.Has(CTID) || !ss.Has(VCL) || ss.Has(ULOG) {
		t.Fatal("SupportSet membership wrong")
	}
}

func TestComplexityOrdering(t *testing.T) {
	// Section 3.3.5: MultiT&MV Eager < SingleT Lazy (CRL is a local change,
	// VCL is a protocol change); MultiT&MV Lazy < MultiT&MV FMM.
	if !(ComplexityRank(MultiTMVEager) < ComplexityRank(SingleTLazy)) {
		t.Errorf("MultiT&MV Eager (%d) must rank below SingleT Lazy (%d)",
			ComplexityRank(MultiTMVEager), ComplexityRank(SingleTLazy))
	}
	if !(ComplexityRank(MultiTMVLazy) < ComplexityRank(MultiTMVFMM)) {
		t.Errorf("MultiT&MV Lazy (%d) must rank below MultiT&MV FMM (%d)",
			ComplexityRank(MultiTMVLazy), ComplexityRank(MultiTMVFMM))
	}
	if ComplexityRank(SingleTEager) != 0 {
		t.Error("the base scheme needs no extra support")
	}
}

func TestUpgradePathTable2(t *testing.T) {
	path := UpgradePath()
	if len(path) != 4 {
		t.Fatalf("Table 2 has 4 upgrade rows, got %d", len(path))
	}
	// The path is connected: each step starts where an earlier one ended,
	// and ends at the most complex scheme.
	if path[0].From != SingleTEager {
		t.Error("path must start at SingleT Eager AMM")
	}
	if path[len(path)-1].To != MultiTMVFMM {
		t.Error("path must end at MultiT&MV FMM")
	}
	for i := 1; i < len(path); i++ {
		if path[i].From != path[i-1].To {
			t.Errorf("step %d is disconnected", i)
		}
	}
	for _, step := range path {
		if step.Benefit == "" || len(step.Added) == 0 {
			t.Errorf("step %v->%v lacks benefit or support", step.From, step.To)
		}
	}
}

func TestExistingSchemesFigure4(t *testing.T) {
	reg := ExistingSchemes()
	if len(reg) < 12 {
		t.Fatalf("Figure 4 maps at least 12 schemes, got %d", len(reg))
	}
	byName := map[string]ExistingScheme{}
	for _, e := range reg {
		if e.Name == "" || e.Buffering == "" {
			t.Errorf("scheme %+v incomplete", e)
		}
		byName[e.Name] = e
	}
	checks := []struct {
		name  string
		sep   Separation
		merge Merging
	}{
		{"Hydra", MultiTMV, EagerAMM},
		{"Prvulovic01", MultiTMV, LazyAMM},
		{"Multiscalar (SVC)", SingleT, LazyAMM},
		{"Zhang99&T", MultiTMV, FMM},
		{"Garzaran01", MultiTMV, FMM},
		{"MDT", SingleT, EagerAMM},
	}
	for _, c := range checks {
		e, ok := byName[c.name]
		if !ok {
			t.Errorf("scheme %q missing from Figure 4", c.name)
			continue
		}
		if e.Sep != c.sep || e.Merge != c.merge {
			t.Errorf("%q mapped to (%v, %v), want (%v, %v)", c.name, e.Sep, e.Merge, c.sep, c.merge)
		}
	}
	if e := byName["LRPD"]; !e.CoarseRecovery {
		t.Error("LRPD is a coarse-recovery scheme")
	}
	if e := byName["DDSM"]; !e.MergeNA {
		t.Error("DDSM's Eager/Lazy distinction does not apply")
	}
}

func TestLimitsFigure8(t *testing.T) {
	has := func(ls []LimitingCharacteristic, want LimitingCharacteristic) bool {
		for _, l := range ls {
			if l == want {
				return true
			}
		}
		return false
	}
	if !has(Limits(SingleTEager), LimitLoadImbalance) ||
		!has(Limits(SingleTEager), LimitCommitWavefront) ||
		!has(Limits(SingleTEager), LimitCacheOverflow) {
		t.Error("SingleT Eager limits wrong")
	}
	if !has(Limits(MultiTSVLazy), LimitImbalancePlusPriv) {
		t.Error("MultiT&SV must be limited by imbalance + privatization")
	}
	if has(Limits(MultiTMVLazy), LimitCommitWavefront) {
		t.Error("Lazy schemes remove the commit wavefront")
	}
	if !has(Limits(MultiTMVFMM), LimitFrequentSquashes) {
		t.Error("FMM must be limited by frequent squashes")
	}
	if has(Limits(MultiTMVFMM), LimitCacheOverflow) {
		t.Error("FMM is not limited by cache overflow")
	}
	if !has(Limits(MultiTMVLazy), LimitCacheOverflow) {
		t.Error("AMM schemes are limited by cache overflow (P3m, Figure 10)")
	}
}

func TestSchemeStringsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range AllSchemes() {
		name := s.String()
		if seen[name] {
			t.Fatalf("duplicate scheme name %q", name)
		}
		seen[name] = true
		if !strings.Contains(name, s.Sep.String()) {
			t.Errorf("scheme name %q omits separation axis", name)
		}
	}
}

func TestSchemeFromString(t *testing.T) {
	for _, s := range AllSchemes() {
		got, ok := SchemeFromString(s.String())
		if !ok || got != s {
			t.Errorf("round trip failed for %v", s)
		}
	}
	if got, ok := SchemeFromString("multit&mv lazy amm"); !ok || got != MultiTMVLazy {
		t.Error("parsing must be case-insensitive")
	}
	if _, ok := SchemeFromString("bogus"); ok {
		t.Error("unknown scheme parsed")
	}
}
