// Package fsck verifies — and optionally repairs — the durable state of a
// campaign offline: the append-only journal (WAL), the content-addressed
// result cache, and checkpoint files. It is the recovery tool to run after
// a crash, power loss, or suspected disk trouble, before resuming a
// campaign.
//
// Verification applies the same durability rules the online recovery paths
// use (torn journal tails are forgivable, interior corruption is not; cache
// entries must carry a valid CRC; checkpoint files must decode), so a state
// directory that fscks clean will resume cleanly. Repair mode performs the
// same actions online recovery would — truncate the torn tail, quarantine
// corrupt entries with exp.QuarantineSuffix, remove temp litter — but does
// them eagerly and reports each one.
package fsck

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/iofault"
	"repro/internal/sim"
)

// Options selects what to check. Zero-value fields are skipped, so a
// journal-only or cache-only check is possible.
type Options struct {
	// Journal is the path of the campaign journal (WAL) to verify.
	Journal string
	// CacheDir is the result-cache directory to verify.
	CacheDir string
	// CheckpointDir is a directory whose *.ckpt files are verified.
	CheckpointDir string
	// Repair applies fixes (truncate torn tail, quarantine corrupt files,
	// remove temp litter) instead of only reporting.
	Repair bool
	// FS is the filesystem seam; nil means the real OS.
	FS iofault.FS
	// Logf, when non-nil, receives one line per finding.
	Logf func(format string, args ...any)
}

// Report is the outcome of one fsck run.
type Report struct {
	// Campaign names the campaign this state belongs to: the correlation ID
	// stamped into the journal's records, with the header's human label in
	// parentheses when both are present.
	Campaign string `json:"campaign,omitempty"`
	// JournalRecords counts well-formed records replayed from the journal.
	JournalRecords int `json:"journal_records"`
	// JournalTornBytes is the length of the incomplete tail line, if any.
	JournalTornBytes int64 `json:"journal_torn_bytes"`
	// DoneJobs and LeasedJobs summarize the replayed campaign state.
	DoneJobs   int `json:"done_jobs"`
	LeasedJobs int `json:"leased_jobs"`

	// CacheScanned/Valid/Temps/Corrupt break down the cache directory.
	CacheScanned int `json:"cache_scanned"`
	CacheValid   int `json:"cache_valid"`
	CacheTemps   int `json:"cache_temps"`
	CacheCorrupt int `json:"cache_corrupt"`

	// CheckpointsScanned/Valid/Corrupt break down the checkpoint directory.
	CheckpointsScanned int `json:"checkpoints_scanned"`
	CheckpointsValid   int `json:"checkpoints_valid"`
	CheckpointsCorrupt int `json:"checkpoints_corrupt"`

	// Problems are integrity violations that block a clean resume (or would
	// have, before Repair fixed them). Repairs lists the fixes applied.
	// Warnings are advisory findings a resume tolerates by itself.
	Problems []string `json:"problems"`
	Repairs  []string `json:"repairs"`
	Warnings []string `json:"warnings"`
}

// Clean reports whether the state verified with no problems.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

// Summary renders the one-line outcome.
func (r *Report) Summary() string {
	status := "clean"
	if !r.Clean() {
		status = fmt.Sprintf("%d problems", len(r.Problems))
	}
	who := ""
	if r.Campaign != "" {
		who = fmt.Sprintf(" campaign %s:", r.Campaign)
	}
	return fmt.Sprintf("fsck:%s %s (%d journal records, %d torn bytes, cache %d/%d valid, %d checkpoints valid, %d repairs, %d warnings)",
		who, status, r.JournalRecords, r.JournalTornBytes, r.CacheValid, r.CacheScanned,
		r.CheckpointsValid, len(r.Repairs), len(r.Warnings))
}

type checker struct {
	opts Options
	fs   iofault.FS
	rep  Report
}

func (c *checker) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *checker) problem(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	c.rep.Problems = append(c.rep.Problems, line)
	c.logf("fsck: problem: %s", line)
}

func (c *checker) repair(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	c.rep.Repairs = append(c.rep.Repairs, line)
	c.logf("fsck: repaired: %s", line)
}

func (c *checker) warn(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	c.rep.Warnings = append(c.rep.Warnings, line)
	c.logf("fsck: warning: %s", line)
}

// Run verifies (and with opts.Repair, repairs) the selected state.
func Run(opts Options) (*Report, error) {
	c := &checker{opts: opts, fs: opts.FS}
	if c.fs == nil {
		c.fs = iofault.Real
	}
	var state exp.CampaignState
	if opts.Journal != "" {
		st, err := c.checkJournal()
		if err != nil {
			return &c.rep, err
		}
		state = st
	}
	if opts.CacheDir != "" {
		if err := c.checkCache(state); err != nil {
			return &c.rep, err
		}
	}
	if opts.CheckpointDir != "" {
		if err := c.checkCheckpoints(); err != nil {
			return &c.rep, err
		}
	}
	return &c.rep, nil
}

// checkJournal verifies the WAL: a torn (unterminated) tail line is a
// problem repairable by truncation — exactly what reopening the journal
// would do — while a malformed interior line is unrepairable corruption.
func (c *checker) checkJournal() (exp.CampaignState, error) {
	path := c.opts.Journal
	data, err := c.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			c.warn("journal %s does not exist (campaign never started, or state moved)", path)
			return exp.CampaignState{}, nil
		}
		return exp.CampaignState{}, fmt.Errorf("journal %s: %w", path, err)
	}
	complete := int64(0)
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		complete = int64(i + 1)
	}
	if torn := int64(len(data)) - complete; torn > 0 {
		c.rep.JournalTornBytes = torn
		c.problem("journal %s: torn tail (%d bytes past last complete record)", path, torn)
		if c.opts.Repair {
			if err := c.truncate(path, complete); err != nil {
				return exp.CampaignState{}, fmt.Errorf("truncating torn tail of %s: %w", path, err)
			}
			c.repair("journal %s truncated to %d bytes (dropped torn tail)", path, complete)
			data = data[:complete]
		}
	}
	recs, err := exp.ReadJournal(path)
	if err != nil {
		// ReadJournal forgives only a torn final line; any other parse error
		// is interior corruption that replay cannot skip safely.
		c.problem("journal %s: interior corruption: %v", path, err)
		return exp.CampaignState{}, nil
	}
	c.rep.JournalRecords = len(recs)
	state := exp.ReplayJournal(recs)
	switch {
	case state.Campaign != "":
		c.rep.Campaign = state.Campaign
	case state.Name != "":
		c.rep.Campaign = state.Name
	}
	c.rep.DoneJobs = len(state.Done)
	c.rep.LeasedJobs = len(state.Leases)
	for key, w := range state.Leases {
		c.warn("journal %s: job %s still leased to %s; resume will re-queue it", path, key, w)
	}
	// Checkpoints the journal declared durable must exist and decode. The
	// journal stores the path as the writer saw it (usually relative to the
	// campaign's working directory); fall back to resolving the bare name
	// against the checkpoint directory when that path doesn't exist here.
	for key, ckpt := range state.Checkpoints {
		p := ckpt
		if _, err := os.Stat(p); err != nil && c.opts.CheckpointDir != "" {
			alt := filepath.Join(c.opts.CheckpointDir, filepath.Base(ckpt))
			if _, err := os.Stat(alt); err == nil {
				p = alt
			}
		}
		if _, err := os.Stat(p); err != nil {
			c.problem("journal %s: checkpoint %s for job %s is journaled durable but missing", path, p, key)
			continue
		}
		if _, err := sim.ReadCheckpointFile(p); err != nil {
			c.problem("journal %s: checkpoint %s for job %s does not decode: %v", path, p, key, err)
			c.quarantine(p, "checkpoint")
		}
	}
	return state, nil
}

// checkCache verifies every entry in the cache directory and cross-checks
// the journal's completed jobs against the keys the entries actually store.
func (c *checker) checkCache(state exp.CampaignState) error {
	dir := c.opts.CacheDir
	entries, err := c.fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			c.warn("cache directory %s does not exist", dir)
			return nil
		}
		return fmt.Errorf("cache %s: %w", dir, err)
	}
	keys := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		c.rep.CacheScanned++
		switch {
		case strings.HasSuffix(name, ".tmp"):
			c.rep.CacheTemps++
			c.problem("cache %s: stale temp file %s (writer died mid-publish)", dir, name)
			if c.opts.Repair {
				if err := c.fs.Remove(path); err != nil {
					c.problem("cache %s: removing stale temp %s: %v", dir, name, err)
				} else {
					c.repair("cache %s: removed stale temp %s", dir, name)
				}
			}
		case strings.HasSuffix(name, ".json"):
			data, err := c.fs.ReadFile(path)
			if err != nil {
				c.problem("cache %s: unreadable entry %s: %v", dir, name, err)
				continue
			}
			key, ok := exp.DecodeCacheEntry(data)
			if !ok {
				c.rep.CacheCorrupt++
				c.problem("cache %s: corrupt entry %s (bad checksum or malformed payload)", dir, name)
				c.quarantine(path, "cache entry")
				continue
			}
			c.rep.CacheValid++
			keys[key] = true
		case strings.HasSuffix(name, exp.QuarantineSuffix):
			c.warn("cache %s: previously quarantined file %s (inspect or delete)", dir, name)
		}
	}
	// Cross-check: a completed job whose cache entry is gone forces a
	// re-execution at resume. Advisory only — a version bump between runs
	// legitimately orphans entries, which is indistinguishable offline.
	for key := range state.Done {
		if len(keys) > 0 && !keys[key] {
			c.warn("cache %s: no entry stores completed job %q; resume will re-execute it", dir, key)
		}
	}
	return nil
}

// checkCheckpoints verifies every *.ckpt file in the checkpoint directory.
func (c *checker) checkCheckpoints() error {
	dir := c.opts.CheckpointDir
	entries, err := c.fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			c.warn("checkpoint directory %s does not exist", dir)
			return nil
		}
		return fmt.Errorf("checkpoints %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			c.rep.CheckpointsScanned++
			c.problem("checkpoints %s: stale temp file %s", dir, name)
			if c.opts.Repair {
				if err := c.fs.Remove(path); err != nil {
					c.problem("checkpoints %s: removing stale temp %s: %v", dir, name, err)
				} else {
					c.repair("checkpoints %s: removed stale temp %s", dir, name)
				}
			}
		case strings.HasSuffix(name, ".ckpt"):
			c.rep.CheckpointsScanned++
			if _, err := sim.ReadCheckpointFile(path); err != nil {
				c.rep.CheckpointsCorrupt++
				c.problem("checkpoints %s: %s does not decode: %v", dir, name, err)
				c.quarantine(path, "checkpoint")
			} else {
				c.rep.CheckpointsValid++
			}
		}
	}
	return nil
}

// quarantine renames a corrupt file aside (Repair mode only), mirroring the
// cache's online heal scan.
func (c *checker) quarantine(path, what string) {
	if !c.opts.Repair {
		return
	}
	if err := c.fs.Rename(path, path+exp.QuarantineSuffix); err != nil {
		c.problem("quarantining corrupt %s %s: %v", what, path, err)
		return
	}
	c.repair("quarantined corrupt %s %s", what, path)
}

// truncate shortens path to size through the seam.
func (c *checker) truncate(path string, size int64) error {
	f, err := c.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}
