package fsck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func writeJournal(t *testing.T, path string, recs ...exp.JournalRecord) {
	t.Helper()
	j, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func tinyJob() exp.Job {
	return exp.Job{
		Machine: machine.CMP8(),
		Scheme:  core.MultiTMVLazy,
		Profile: workload.Euler().Scale(0.02, 0.02, 0.1),
		Seed:    1,
	}
}

// A healthy state directory fscks clean.
func TestFsckCleanState(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")

	job := tinyJob()
	cache, err := exp.NewCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(job, job.Execute()); err != nil {
		t.Fatal(err)
	}
	writeJournal(t, jpath,
		exp.JournalRecord{T: exp.RecCampaign, Name: "clean"},
		exp.JournalRecord{T: exp.RecJobStart, Key: job.Key()},
		exp.JournalRecord{T: exp.RecJobDone, Key: job.Key()},
	)

	rep, err := Run(Options{Journal: jpath, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean state reported problems: %v", rep.Problems)
	}
	if rep.JournalRecords != 3 || rep.DoneJobs != 1 || rep.CacheValid != 1 {
		t.Fatalf("unexpected report: %s", rep.Summary())
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("clean state produced warnings: %v", rep.Warnings)
	}
}

// A torn journal tail is detected, and -repair truncates it so a rerun
// verifies clean.
func TestFsckTornJournalTailRepaired(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	writeJournal(t, jpath,
		exp.JournalRecord{T: exp.RecCampaign, Name: "torn"},
		exp.JournalRecord{T: exp.RecJobDone, Key: "job-1"},
	)
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"job-done","key":"job-2"`) // no closing brace, no newline
	f.Close()

	rep, err := Run(Options{Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.JournalTornBytes == 0 {
		t.Fatalf("torn tail not detected: %s", rep.Summary())
	}

	rep, err = Run(Options{Journal: jpath, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repairs) == 0 {
		t.Fatalf("repair mode fixed nothing: %s", rep.Summary())
	}
	rep, err = Run(Options{Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("journal still dirty after repair: %v", rep.Problems)
	}
	if rep.JournalRecords != 2 {
		t.Fatalf("repair lost records: %d, want 2", rep.JournalRecords)
	}
}

// Interior journal corruption is a problem repair must NOT paper over.
func TestFsckInteriorCorruptionUnrepairable(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	writeJournal(t, jpath,
		exp.JournalRecord{T: exp.RecCampaign, Name: "x"},
		exp.JournalRecord{T: exp.RecJobDone, Key: "job-1"},
	)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST line's JSON syntax; the valid second line makes it
	// interior (a torn tail would be forgiven, this must not be).
	data[0] = '#'
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{Journal: jpath, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("interior corruption not reported")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "interior corruption") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no interior-corruption problem in %v", rep.Problems)
	}
}

// Corrupt cache entries and temp litter are detected and repaired via
// quarantine/removal.
func TestFsckCacheRepair(t *testing.T) {
	cacheDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(cacheDir, "bad.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, "put-1.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheCorrupt != 1 || rep.CacheTemps != 1 {
		t.Fatalf("verify miscounted: %s", rep.Summary())
	}

	rep, err = Run(Options{CacheDir: cacheDir, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repairs) != 2 {
		t.Fatalf("expected 2 repairs, got %v", rep.Repairs)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "bad.json"+exp.QuarantineSuffix)); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "put-1.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp litter survived repair")
	}

	// Quarantined leftovers are a warning, not a problem: rerun is clean.
	rep, err = Run(Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("cache still dirty after repair: %v", rep.Problems)
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("quarantined leftover not warned about")
	}
}

// A corrupt checkpoint file is detected, quarantined on repair, and a
// journal that references a missing checkpoint is flagged.
func TestFsckCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// One valid checkpoint, captured from a real run.
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	s := sim.New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	var ck *sim.Checkpoint
	s.SetAutoCheckpoint(3)
	s.SetCheckpointSink(func(c *sim.Checkpoint) {
		if ck == nil {
			ck = c
		}
	})
	s.Run()
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	if err := sim.WriteCheckpointFile(filepath.Join(ckptDir, "good.ckpt"), ck); err != nil {
		t.Fatal(err)
	}
	// And one torn one.
	raw, err := os.ReadFile(filepath.Join(ckptDir, "good.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckptDir, "torn.ckpt"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "journal.jsonl")
	writeJournal(t, jpath,
		exp.JournalRecord{T: exp.RecCampaign, Name: "ck"},
		exp.JournalRecord{T: exp.RecJobStart, Key: "job-1"},
		exp.JournalRecord{T: exp.RecCheckpoint, Key: "job-1", Ckpt: "missing.ckpt"},
	)

	rep, err := Run(Options{Journal: jpath, CheckpointDir: ckptDir, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointsValid != 1 || rep.CheckpointsCorrupt != 1 {
		t.Fatalf("checkpoint counts wrong: %s", rep.Summary())
	}
	var missing, torn bool
	for _, p := range rep.Problems {
		if strings.Contains(p, "missing.ckpt") {
			missing = true
		}
		if strings.Contains(p, "torn.ckpt") {
			torn = true
		}
	}
	if !missing || !torn {
		t.Fatalf("problems incomplete: %v", rep.Problems)
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "torn.ckpt"+exp.QuarantineSuffix)); err != nil {
		t.Fatalf("torn checkpoint not quarantined: %v", err)
	}
}
