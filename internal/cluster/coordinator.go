package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/iofault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Config parameterizes a Coordinator. The zero value works for tests: no
// cache, no journal, default lease policy.
type Config struct {
	// Name labels the campaign (journal header, dashboard).
	Name string
	// Cache, when non-nil, dedupes submitted jobs against prior results
	// before they are ever leased, and absorbs completed results so a future
	// campaign (or a serial rerun) reuses them.
	Cache *exp.Cache
	// Journal, when non-nil, receives the campaign WAL: every lease,
	// lease-return and completion is durable before it is acknowledged, so a
	// SIGKILL'd coordinator resumes mid-campaign.
	Journal *exp.Journal
	// State seeds the coordinator from a replayed journal (exp.LoadCampaign):
	// completed keys answer instantly, keys with a dead lease re-queue.
	State exp.CampaignState
	// LeaseTTL is how long a lease survives without a heartbeat (default 30s).
	LeaseTTL time.Duration
	// StragglerAfter re-queues a speculative duplicate of any job whose
	// oldest lease is this old (default 2m; < 0 disables).
	StragglerAfter time.Duration
	// StealAfter lets an idle worker steal a duplicate of a job another
	// worker has held this long (default 30s; < 0 disables).
	StealAfter time.Duration
	// MaxIssues caps concurrent leases per job (default 2: the original
	// plus one speculative re-execution).
	MaxIssues int
	// FailLimit is how many distinct failed executions a job gets before it
	// is failed permanently (default 2). Watchdog timeouts fail immediately:
	// a deterministic simulation that hung once will hang everywhere.
	FailLimit int
	// MaxPending bounds the pending queue (0 = unbounded). Submissions that
	// would grow the queue past the bound are shed with an OverloadError
	// (HTTP 429 + Retry-After) instead of accepted into an ever-longer line.
	MaxPending int
	// SubmitRate and SubmitBurst arm fair per-client admission: each named
	// client refills SubmitRate job tokens per second up to SubmitBurst
	// (default 400). Zero SubmitRate disables rate limiting. Unnamed clients
	// (the coordinator's own preload, legacy clients) are exempt.
	SubmitRate  float64
	SubmitBurst int
	// QuarantineFor is the circuit breaker's base quarantine (default 30s);
	// each repeat trip doubles it, capped at 8x. BreakerCRCLimit consecutive
	// CRC-invalid completions (default 3) or BreakerExpiryLimit consecutive
	// lease expiries (default 5) trip a worker's breaker.
	QuarantineFor      time.Duration
	BreakerCRCLimit    int
	BreakerExpiryLimit int
	// Tracer, when non-nil, records the coordinator's scheduling decisions
	// (queue waits, lease holds, straggler re-issues, completions) as fleet
	// spans. Workers' spans shipped on heartbeats and completions are
	// collected regardless, so WriteFleetTrace can merge the whole fleet.
	Tracer *trace.Tracer
	// Campaign overrides the minted campaign correlation ID (tests, resume
	// of a known campaign). Empty mints one from Name at first submission.
	Campaign string
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 30 * time.Second
	}
	return c.LeaseTTL
}

func (c Config) stragglerAfter() time.Duration {
	switch {
	case c.StragglerAfter < 0:
		return 0
	case c.StragglerAfter == 0:
		return 2 * time.Minute
	default:
		return c.StragglerAfter
	}
}

func (c Config) stealAfter() time.Duration {
	switch {
	case c.StealAfter < 0:
		return 0
	case c.StealAfter == 0:
		return 30 * time.Second
	default:
		return c.StealAfter
	}
}

func (c Config) maxIssues() int {
	if c.MaxIssues <= 0 {
		return 2
	}
	return c.MaxIssues
}

func (c Config) failLimit() int {
	if c.FailLimit <= 0 {
		return 2
	}
	return c.FailLimit
}

func (c Config) submitBurst() int {
	if c.SubmitBurst <= 0 {
		return 400
	}
	return c.SubmitBurst
}

func (c Config) quarantineFor() time.Duration {
	if c.QuarantineFor <= 0 {
		return 30 * time.Second
	}
	return c.QuarantineFor
}

func (c Config) breakerCRCLimit() int {
	if c.BreakerCRCLimit <= 0 {
		return 3
	}
	return c.BreakerCRCLimit
}

func (c Config) breakerExpiryLimit() int {
	if c.BreakerExpiryLimit <= 0 {
		return 5
	}
	return c.BreakerExpiryLimit
}

// Chaotic reports whether the spec carries chaos instrumentation (mirrors
// exp.Job: such jobs bypass the result cache because their verdict is not
// reconstructible from sim.Result).
func (s JobSpec) Chaotic() bool {
	return s.Invariants || s.Faults != nil
}

type jobState int

const (
	jobPending jobState = iota
	jobLeased
	jobDone
	jobFailed
)

// jobEntry is the coordinator's record of one distinct job key.
type jobEntry struct {
	spec JobSpec
	job  exp.Job // resolved from spec; specs that fail to resolve are
	// rejected at Submit and never become entries

	state       jobState
	queued      bool // present in the pending queue
	queuedAt    time.Time
	leases      map[uint64]*lease
	issues      int  // leases ever granted
	failures    int  // failed executions so far
	reissued    bool // a straggler re-issue was already queued
	firstLeased time.Time

	outcome Envelope // sealed Outcome once state is jobDone or jobFailed
	lastErr Envelope // most recent failed execution, for the permanent fail
}

// lease is one active grant of a job to a worker.
type lease struct {
	id          uint64
	key         string
	worker      string
	deadline    time.Time
	grantedAt   time.Time
	speculative bool
}

// workerState tracks one fleet worker as seen from the coordinator.
type workerState struct {
	lastSeen  time.Time
	counters  map[string]uint64 // absolute obs totals from heartbeats
	cancel    []uint64          // leases to abandon, drained by heartbeat
	completed int
	brk       breaker
}

type breakerPhase uint8

const (
	breakerClosed breakerPhase = iota
	breakerOpen
	breakerHalfOpen
)

func (p breakerPhase) String() string {
	switch p {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "probation"
	default:
		return "closed"
	}
}

// breaker is one worker's circuit breaker. A worker that keeps delivering
// CRC-invalid results (byzantine or bit-rotting) or keeps letting leases
// expire (flapping) is quarantined: its lease requests come back empty with
// a Retry-After hint until the quarantine lapses, then it is re-admitted on
// probation — one lease at a time — and fully re-admitted only after a
// CRC-valid delivery. Each repeat trip doubles the quarantine (capped 8x).
type breaker struct {
	phase        breakerPhase
	consecCRC    int       // consecutive CRC-invalid completions
	consecExpiry int       // consecutive lease expiries
	openedAt     time.Time // when the breaker last tripped
	trips        int       // lifetime trip count (drives quarantine length)
	probation    uint64    // the single outstanding probe lease, if half-open
}

// bucketState is one client's submit-admission token bucket.
type bucketState struct {
	tokens float64
	last   time.Time
}

// fleetCounters are the dashboard's scheduling counters.
type fleetCounters struct {
	leasesGranted     uint64
	leasesExpired     uint64
	leasesReturned    uint64
	steals            uint64
	stragglerReissues uint64
	dedupeHits        uint64 // submissions joined to an already-tracked key
	cacheHits         uint64 // submissions answered by the result cache
	resumeHits        uint64 // submissions answered by the replayed journal
	dupResults        uint64 // valid results for already-finished jobs
	crcRejected       uint64 // completions failing the envelope checksum
	requeues          uint64
	journalErrors     uint64
	shedSubmits       uint64 // submissions shed by the queue bound
	rateLimited       uint64 // submissions refused by per-client admission
	specRejects       uint64 // specs that did not re-hash to their own key
	breakerOpens      uint64
	breakerProbations uint64
	breakerCloses     uint64
}

// Coordinator owns a campaign: the job set, the lease table, the journal and
// the result cache. All exported methods are safe for concurrent use.
type Coordinator struct {
	cfg Config
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	order    []string // submission order, for /progress
	queue    []string // pending keys, FIFO
	leases   map[uint64]*lease
	leaseSeq uint64
	workers  map[string]*workerState
	buckets  map[string]*bucketState // per-client submit admission
	ctr      fleetCounters

	campaign string // correlation ID minted at first submission

	// Phase-latency histograms (ms), always on: queue wait (submit to first
	// grant), lease hold (grant to settle), attempt wall (worker-reported)
	// and result delivery (attempt finish to coordinator ingest). The
	// registry is single-goroutine by contract, so it lives under mu.
	phases     *obs.Registry
	queueWait  *obs.Histogram
	leaseHold  *obs.Histogram
	attempt    *obs.Histogram
	delivery   *obs.Histogram
	fleetSpans []trace.Span // spans shipped by workers, bounded
	spansLost  uint64       // worker spans dropped by the bound

	ln   net.Listener
	srv  *http.Server
	stop chan struct{}
}

// phaseBuckets are the phase-latency histogram bounds in milliseconds: fine
// enough to separate loopback microseconds from straggler minutes.
var phaseBuckets = []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 120000}

// maxFleetSpans bounds the coordinator's merged span store; a long campaign
// past the bound keeps the earliest spans and counts the drops.
const maxFleetSpans = 1 << 17

// NewCoordinator builds a coordinator and journals the campaign header.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		jobs:     make(map[string]*jobEntry),
		leases:   make(map[uint64]*lease),
		workers:  make(map[string]*workerState),
		buckets:  make(map[string]*bucketState),
		campaign: cfg.Campaign,
		phases:   obs.NewRegistry(),
	}
	c.queueWait = c.phases.Histogram("queue_wait_ms", phaseBuckets)
	c.leaseHold = c.phases.Histogram("lease_hold_ms", phaseBuckets)
	c.attempt = c.phases.Histogram("attempt_wall_ms", phaseBuckets)
	c.delivery = c.phases.Histogram("result_delivery_ms", phaseBuckets)
	// The coordinator's own spans must survive until FleetSpans merges them.
	cfg.Tracer.Retain()
	if cfg.Journal != nil && cfg.Name != "" {
		c.cfg.Journal.SetCampaign(c.campaignLocked())
		c.journalAppend(exp.JournalRecord{T: exp.RecCampaign, Name: cfg.Name})
	}
	return c
}

// campaignLocked returns the campaign correlation ID, minting it on first
// use so every spec, span and journal record of this campaign carries one
// shared ID.
func (c *Coordinator) campaignLocked() string {
	if c.campaign == "" {
		name := c.cfg.Name
		if name == "" {
			name = "campaign"
		}
		c.campaign = trace.MintCampaign(name, c.now())
	}
	return c.campaign
}

// Campaign returns the campaign correlation ID (minting it if needed).
func (c *Coordinator) Campaign() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.campaignLocked()
}

func (c *Coordinator) journalAppend(rec exp.JournalRecord) {
	if c.cfg.Journal == nil {
		return
	}
	if err := c.cfg.Journal.Append(rec); err != nil {
		c.ctr.journalErrors++
	}
}

// OverloadError reports an admission-control refusal (queue bound hit, or a
// client over its submit rate) and how long to wait before retrying. The
// HTTP layer renders it as 429 + Retry-After.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: coordinator overloaded, retry after %v", e.RetryAfter)
}

// Submit registers jobs (idempotent by key) and resolves as many as possible
// without leasing: joins to tracked keys, resumed outcomes from the replayed
// journal, and result-cache hits. Under overload it sheds instead of
// queueing without bound: a non-nil *OverloadError carries the partial
// response (already-registered jobs stay registered — resubmission joins
// them) and a Retry-After hint.
func (c *Coordinator) Submit(req SubmitRequest) (SubmitResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	if err := c.admitLocked(req.Client, len(req.Jobs)); err != nil {
		return SubmitResponse{}, err
	}
	return c.submitLocked(req.Jobs, true)
}

// Preload registers jobs bypassing admission control — the coordinator's own
// grid preload and resume seeding must never be shed or rate limited.
func (c *Coordinator) Preload(specs []JobSpec) SubmitResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	resp, _ := c.submitLocked(specs, false)
	return resp
}

// admitLocked charges the client's token bucket for an n-job submission.
// Unnamed clients are exempt; the charge is capped at the burst size so one
// oversized chunk cannot starve itself forever.
func (c *Coordinator) admitLocked(client string, n int) error {
	rate := c.cfg.SubmitRate
	if rate <= 0 || client == "" || n <= 0 {
		return nil
	}
	burst := float64(c.cfg.submitBurst())
	now := c.now()
	b := c.buckets[client]
	if b == nil {
		b = &bucketState{tokens: burst, last: now}
		c.buckets[client] = b
	}
	b.tokens += rate * now.Sub(b.last).Seconds()
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	cost := float64(n)
	if cost > burst {
		cost = burst
	}
	if b.tokens < cost {
		c.ctr.rateLimited++
		wait := time.Duration((cost - b.tokens) / rate * float64(time.Second))
		return &OverloadError{RetryAfter: wait}
	}
	b.tokens -= cost
	return nil
}

func (c *Coordinator) submitLocked(specs []JobSpec, admit bool) (SubmitResponse, error) {
	var resp SubmitResponse
	for _, spec := range specs {
		if spec.Key == "" {
			continue
		}
		if e, ok := c.jobs[spec.Key]; ok {
			c.ctr.dedupeHits++
			if e.state == jobDone || e.state == jobFailed {
				resp.Done++
			}
			continue
		}
		job, err := spec.Job()
		if err != nil {
			// The spec does not re-hash to its own key: version skew, or a
			// corrupted submit body. Reject rather than register-and-fail —
			// a clean resubmission of the real spec must be able to heal
			// transport corruption, which a permanently failed key never
			// could.
			c.ctr.specRejects++
			resp.Rejected = append(resp.Rejected, spec.Key)
			continue
		}
		if admit && c.cfg.MaxPending > 0 && len(c.queue) >= c.cfg.MaxPending {
			c.ctr.shedSubmits++
			return resp, &OverloadError{RetryAfter: time.Second}
		}
		// Stamp the campaign correlation ID. Campaign is not part of the
		// content hash, so the stamp cannot invalidate spec.Key; it rides the
		// wire into worker spans and journal records.
		spec.Campaign = c.campaignLocked()
		e := &jobEntry{spec: spec, job: job, leases: make(map[uint64]*lease)}
		c.jobs[spec.Key] = e
		c.order = append(c.order, spec.Key)
		resp.Accepted++
		if c.settleWithoutRunLocked(e) {
			resp.Done++
			continue
		}
		c.enqueueLocked(e)
	}
	return resp, nil
}

// settleWithoutRunLocked tries to finish a freshly submitted entry without
// leasing it: a journaled outcome or a result cache hit completes it.
func (c *Coordinator) settleWithoutRunLocked(e *jobEntry) bool {
	key := e.spec.Key
	// A completed key from the replayed journal: chaotic outcomes travel in
	// the journal itself, plain ones are reconstructed from the cache below.
	if env, ok := c.cfg.State.Outcomes[key]; ok {
		var stored Envelope
		if json.Unmarshal(env, &stored) == nil && stored.Open(&Outcome{}) == nil {
			e.outcome = stored
			e.state = jobDone
			c.ctr.resumeHits++
			return true
		}
	}
	if c.cfg.Cache != nil && !e.spec.Chaotic() {
		if res, ok := c.cfg.Cache.Get(e.job); ok {
			env, err := Seal(Outcome{Key: key, Result: res, Cached: true})
			if err == nil {
				e.outcome = env
				e.state = jobDone
				if c.cfg.State.Done[key] {
					c.ctr.resumeHits++
				} else {
					c.ctr.cacheHits++
					c.journalAppend(exp.JournalRecord{
						T: exp.RecJobDone, Key: key, Label: e.job.Label(), Cached: true,
					})
				}
				return true
			}
		}
	}
	return false
}

func (c *Coordinator) enqueueLocked(e *jobEntry) {
	if e.queued || e.state == jobDone || e.state == jobFailed {
		return
	}
	e.queued = true
	e.queuedAt = c.now()
	c.queue = append(c.queue, e.spec.Key)
}

// LeaseJobs grants up to req.Max pending jobs to the worker; an idle fleet
// steals a speculative duplicate of the longest-held lease. A quarantined
// worker gets nothing but a Retry-After hint; a worker on probation gets at
// most one probe lease (and may not steal) until it proves itself with a
// CRC-valid delivery.
func (c *Coordinator) LeaseJobs(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	w := c.touchWorkerLocked(req.Worker)
	if wait, blocked := c.breakerGateLocked(w); blocked {
		return LeaseResponse{RetryAfterMS: wait.Milliseconds()}
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	if w.brk.phase == breakerHalfOpen {
		max = 1
	}
	var resp LeaseResponse
	for len(resp.Leases) < max {
		e := c.popQueueLocked()
		if e == nil {
			break
		}
		resp.Leases = append(resp.Leases, c.grantLocked(e, req.Worker))
	}
	if len(resp.Leases) == 0 && c.cfg.stealAfter() > 0 && w.brk.phase == breakerClosed {
		if e := c.stealCandidateLocked(req.Worker); e != nil {
			c.ctr.steals++
			granted := c.grantLocked(e, req.Worker)
			c.cfg.Tracer.Instant(trace.Span{
				Name: e.label(), Kind: trace.KindSteal, Campaign: c.campaignLocked(),
				Key: e.spec.Key, Flow: granted.ID, Note: req.Worker,
			})
			resp.Leases = append(resp.Leases, granted)
		}
	}
	if w.brk.phase == breakerHalfOpen && len(resp.Leases) == 1 {
		w.brk.probation = resp.Leases[0].ID
	}
	return resp
}

// breakerGateLocked resolves w's breaker phase at lease time: still-serving
// quarantines block with the remaining wait; a lapsed quarantine moves the
// worker to probation; a probation with its probe still outstanding blocks
// until the probe resolves.
func (c *Coordinator) breakerGateLocked(w *workerState) (time.Duration, bool) {
	switch w.brk.phase {
	case breakerOpen:
		q := c.quarantineSpanLocked(w)
		if elapsed := c.now().Sub(w.brk.openedAt); elapsed < q {
			return q - elapsed, true
		}
		w.brk.phase = breakerHalfOpen
		w.brk.probation = 0
		c.ctr.breakerProbations++
	case breakerHalfOpen:
		if w.brk.probation != 0 {
			return c.cfg.leaseTTL() / 4, true
		}
	}
	return 0, false
}

// quarantineSpanLocked is how long w's current quarantine lasts: the base
// span doubled per repeat trip, capped at 8x.
func (c *Coordinator) quarantineSpanLocked(w *workerState) time.Duration {
	span := c.cfg.quarantineFor()
	for i := 1; i < w.brk.trips && i < 4; i++ {
		span *= 2
	}
	return span
}

// tripBreakerLocked opens w's breaker (from any phase).
func (c *Coordinator) tripBreakerLocked(w *workerState) {
	w.brk.trips++
	w.brk.phase = breakerOpen
	w.brk.openedAt = c.now()
	w.brk.probation = 0
	c.ctr.breakerOpens++
}

// popQueueLocked pops the next leasable entry, dropping keys that finished
// while queued.
func (c *Coordinator) popQueueLocked() *jobEntry {
	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		e := c.jobs[key]
		if e == nil || !e.queued {
			continue
		}
		e.queued = false
		if e.state == jobDone || e.state == jobFailed {
			continue
		}
		return e
	}
	return nil
}

func (c *Coordinator) grantLocked(e *jobEntry, worker string) Lease {
	now := c.now()
	c.leaseSeq++
	l := &lease{
		id:          c.leaseSeq,
		key:         e.spec.Key,
		worker:      worker,
		deadline:    now.Add(c.cfg.leaseTTL()),
		grantedAt:   now,
		speculative: len(e.leases) > 0,
	}
	c.leases[l.id] = l
	e.leases[l.id] = l
	e.issues++
	if len(e.leases) == 1 {
		e.firstLeased = now
	}
	e.state = jobLeased
	c.ctr.leasesGranted++
	if !e.queuedAt.IsZero() {
		wait := now.Sub(e.queuedAt)
		c.queueWait.Observe(uint64(wait.Milliseconds()))
		c.cfg.Tracer.Emit(trace.Span{
			Name: e.label(), Kind: trace.KindQueue, Campaign: c.campaignLocked(),
			Key: l.key, Flow: l.id,
			Start: trace.UnixMicro(e.queuedAt), Dur: wait.Microseconds(),
		})
		e.queuedAt = time.Time{} // a steal grant must not re-measure this wait
	}
	c.journalAppend(exp.JournalRecord{
		T: exp.RecLease, Key: l.key, Label: e.label(), Worker: worker, Lease: l.id,
	})
	return Lease{ID: l.id, Spec: e.spec, TTLMS: c.cfg.leaseTTL().Milliseconds(), Speculative: l.speculative}
}

// settleLeaseLocked records the end of one lease's life in the phase
// histograms and the span stream: how is "complete", "released" or
// "expired"; errText annotates an unhappy ending.
func (c *Coordinator) settleLeaseLocked(l *lease, how, errText string) {
	if l.grantedAt.IsZero() {
		return
	}
	hold := c.now().Sub(l.grantedAt)
	c.leaseHold.Observe(uint64(hold.Milliseconds()))
	c.cfg.Tracer.Emit(trace.Span{
		Name: how, Kind: trace.KindLease, Campaign: c.campaignLocked(),
		Key: l.key, Flow: l.id, Err: errText, Note: l.worker,
		Start: trace.UnixMicro(l.grantedAt), Dur: hold.Microseconds(),
	})
}

func (e *jobEntry) label() string { return e.job.Label() }

// stealCandidateLocked picks the entry with the oldest lease older than
// StealAfter that can take another issue and is not already running on this
// worker.
func (c *Coordinator) stealCandidateLocked(worker string) *jobEntry {
	now := c.now()
	var best *jobEntry
	for _, key := range c.order {
		e := c.jobs[key]
		if e.state != jobLeased || e.queued || len(e.leases) == 0 || len(e.leases) >= c.cfg.maxIssues() {
			continue
		}
		if now.Sub(e.firstLeased) < c.cfg.stealAfter() {
			continue
		}
		held := false
		for _, l := range e.leases {
			if l.worker == worker {
				held = true
				break
			}
		}
		if held {
			continue
		}
		if best == nil || e.firstLeased.Before(best.firstLeased) {
			best = e
		}
	}
	return best
}

// Heartbeat extends the worker's leases and absorbs its obs counter totals;
// the response lists leases whose jobs finished elsewhere.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	w := c.touchWorkerLocked(req.Worker)
	deadline := c.now().Add(c.cfg.leaseTTL())
	for _, id := range req.Leases {
		if l := c.leases[id]; l != nil && l.worker == req.Worker {
			l.deadline = deadline
		}
	}
	if req.Counters != nil {
		w.counters = req.Counters
	}
	c.ingestSpansLocked(req.Spans)
	resp := HeartbeatResponse{Cancel: w.cancel}
	w.cancel = nil
	return resp
}

// ingestSpansLocked folds worker-shipped spans into the merged fleet store,
// bounded so a runaway worker cannot exhaust coordinator memory.
func (c *Coordinator) ingestSpansLocked(spans []trace.Span) {
	for i, sp := range spans {
		if len(c.fleetSpans) >= maxFleetSpans {
			c.spansLost += uint64(len(spans) - i)
			return
		}
		c.fleetSpans = append(c.fleetSpans, sp)
	}
}

// Complete ingests one lease's sealed outcome. The first valid result wins;
// later duplicates are counted and discarded. A checksum failure rejects the
// body and re-queues the job if nothing else is running it.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	w := c.touchWorkerLocked(req.Worker)
	e := c.jobs[req.Key]
	if l := c.leases[req.Lease]; l != nil && l.key == req.Key {
		c.settleLeaseLocked(l, "complete", "")
		c.dropLeaseLocked(l)
	}
	c.ingestSpansLocked(req.Spans)
	// CRC-validate before the entry check: a corrupted body can flip the
	// outer req.Key too (unknown entry), and that must still count against
	// the sender's breaker rather than vanish.
	var o Outcome
	if err := req.Env.Open(&o); err != nil || o.Key != req.Key {
		c.ctr.crcRejected++
		w.brk.consecCRC++
		if w.brk.phase == breakerHalfOpen ||
			(w.brk.phase == breakerClosed && w.brk.consecCRC >= c.cfg.breakerCRCLimit()) {
			c.tripBreakerLocked(w)
		}
		c.maybeRequeueLocked(e)
		return CompleteResponse{}
	}
	if e == nil {
		return CompleteResponse{}
	}
	// A CRC-valid delivery (even a duplicate or a failed execution) is proof
	// the worker's transport and sealing are sound: reset the breaker's
	// consecutive-fault counts, and graduate a probation back to closed.
	w.brk.consecCRC, w.brk.consecExpiry = 0, 0
	if w.brk.phase == breakerHalfOpen {
		w.brk.phase = breakerClosed
		w.brk.probation = 0
		c.ctr.breakerCloses++
	}
	// Phase latencies for every CRC-valid delivery: the attempt wall the
	// worker measured, and how long the sealed result took to reach us.
	now := c.now()
	if o.WallMS > 0 {
		c.attempt.Observe(uint64(o.WallMS))
	}
	if req.FinishedUS > 0 {
		if lag := now.UnixMicro() - req.FinishedUS; lag >= 0 {
			c.delivery.Observe(uint64(lag / 1000))
		}
	}
	c.cfg.Tracer.Emit(trace.Span{
		Name: e.label(), Kind: trace.KindComplete, Campaign: c.campaignLocked(),
		Key: req.Key, Flow: req.Lease, Note: req.Worker, Err: o.Err,
		Start: trace.UnixMicro(now),
	})
	if e.state == jobDone || e.state == jobFailed {
		c.ctr.dupResults++
		return CompleteResponse{Accepted: true, Duplicate: true}
	}
	if o.Err != "" {
		e.failures++
		e.lastErr = req.Env
		if o.TimedOut {
			// Deterministic hang: re-running it anywhere only hangs again.
			e.failures = c.cfg.failLimit()
		}
		if len(e.leases) == 0 {
			if e.failures >= c.cfg.failLimit() {
				c.failLocked(e, req.Env, o)
			} else {
				c.maybeRequeueLocked(e)
			}
		}
		return CompleteResponse{Accepted: true}
	}
	e.outcome = req.Env
	e.state = jobDone
	w.completed++
	if c.cfg.Cache != nil && !e.spec.Chaotic() {
		c.cfg.Cache.Put(e.job, o.Result)
	}
	rec := exp.JournalRecord{T: exp.RecJobDone, Key: req.Key, Label: e.label(), Worker: req.Worker}
	if e.spec.Chaotic() {
		// The verdict is not reconstructible from the result cache, so the
		// sealed outcome itself rides in the journal for crash-resume.
		if data, err := json.Marshal(req.Env); err == nil {
			rec.Data = data
		}
	}
	c.journalAppend(rec)
	c.cancelSiblingsLocked(e)
	return CompleteResponse{Accepted: true}
}

// failLocked marks the entry permanently failed with the given outcome.
func (c *Coordinator) failLocked(e *jobEntry, env Envelope, o Outcome) {
	e.outcome = env
	e.state = jobFailed
	c.journalAppend(exp.JournalRecord{
		T: exp.RecJobDone, Key: e.spec.Key, Label: e.label(), Worker: o.Worker, Err: o.Err,
	})
	c.cancelSiblingsLocked(e)
}

// cancelSiblingsLocked voids every remaining lease of a finished entry and
// queues cancellation notices for their workers.
func (c *Coordinator) cancelSiblingsLocked(e *jobEntry) {
	for id, l := range e.leases {
		c.dropLeaseLocked(l)
		if w := c.workers[l.worker]; w != nil {
			w.cancel = append(w.cancel, id)
			if w.brk.phase == breakerHalfOpen && id == w.brk.probation {
				// Losing the race to a sibling is not the probe's fault;
				// free the probation slot so the worker can probe again.
				w.brk.probation = 0
			}
		}
	}
}

// Release returns leases without outcomes (drain or acknowledged cancel).
func (c *Coordinator) Release(req ReleaseRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	w := c.touchWorkerLocked(req.Worker)
	for _, id := range req.Leases {
		l := c.leases[id]
		if l == nil || l.worker != req.Worker {
			continue
		}
		if w.brk.phase == breakerHalfOpen && id == w.brk.probation {
			// Returning the probe (drain, or an acknowledged cancel) is not
			// a failure; free the probation slot for the next lease request.
			w.brk.probation = 0
		}
		c.settleLeaseLocked(l, "released", "")
		c.dropLeaseLocked(l)
		c.ctr.leasesReturned++
		e := c.jobs[l.key]
		c.journalAppend(exp.JournalRecord{
			T: exp.RecLeaseReturn, Key: l.key, Label: e.label(), Worker: req.Worker, Lease: id,
		})
		c.maybeRequeueLocked(e)
	}
}

// Results returns sealed outcomes for every finished requested key.
func (c *Coordinator) Results(req ResultsRequest) ResultsResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := ResultsResponse{Results: make(map[string]Envelope)}
	for _, key := range req.Keys {
		e := c.jobs[key]
		if e == nil {
			resp.Pending++
			resp.Unknown = append(resp.Unknown, key)
			continue
		}
		if e.state == jobDone || e.state == jobFailed {
			resp.Results[key] = e.outcome
		} else {
			resp.Pending++
		}
	}
	return resp
}

// dropLeaseLocked removes a lease from both tables (does not journal).
func (c *Coordinator) dropLeaseLocked(l *lease) {
	delete(c.leases, l.id)
	if e := c.jobs[l.key]; e != nil {
		delete(e.leases, l.id)
		if e.state == jobLeased && len(e.leases) == 0 && !e.queued {
			e.state = jobPending
		}
	}
}

// maybeRequeueLocked puts an unfinished entry with no active leases back on
// the pending queue.
func (c *Coordinator) maybeRequeueLocked(e *jobEntry) {
	if e == nil || e.state == jobDone || e.state == jobFailed {
		return
	}
	if len(e.leases) > 0 || e.queued {
		return
	}
	e.state = jobPending
	c.ctr.requeues++
	c.enqueueLocked(e)
}

// sweepLocked expires dead leases and queues straggler re-issues. Called on
// every API mutation and by the background ticker.
func (c *Coordinator) sweepLocked() {
	now := c.now()
	for _, l := range c.leases {
		if now.After(l.deadline) {
			key, id, worker := l.key, l.id, l.worker
			c.settleLeaseLocked(l, "expired", "lease expired")
			c.dropLeaseLocked(l)
			c.ctr.leasesExpired++
			// Attribute the expiry to the worker's breaker: a probe lease
			// that expires fails the probation outright; a closed worker
			// whose leases keep dying is flapping and gets quarantined.
			// (Plain map access — an expiry must not refresh lastSeen.)
			if w := c.workers[worker]; w != nil {
				w.brk.consecExpiry++
				if w.brk.phase == breakerHalfOpen && id == w.brk.probation {
					c.tripBreakerLocked(w)
				} else if w.brk.phase == breakerClosed && w.brk.consecExpiry >= c.cfg.breakerExpiryLimit() {
					c.tripBreakerLocked(w)
				}
			}
			e := c.jobs[key]
			c.journalAppend(exp.JournalRecord{
				T: exp.RecLeaseReturn, Key: key, Label: e.label(), Worker: worker, Lease: id,
			})
			c.maybeRequeueLocked(e)
		}
	}
	if after := c.cfg.stragglerAfter(); after > 0 {
		for _, key := range c.order {
			e := c.jobs[key]
			if e.state != jobLeased || e.queued || e.reissued {
				continue
			}
			if len(e.leases) == 0 || len(e.leases) >= c.cfg.maxIssues() {
				continue
			}
			if now.Sub(e.firstLeased) < after {
				continue
			}
			e.reissued = true
			c.ctr.stragglerReissues++
			c.cfg.Tracer.Instant(trace.Span{
				Name: e.label(), Kind: trace.KindStraggler, Campaign: c.campaignLocked(),
				Key: key, Note: "speculative re-issue",
			})
			c.enqueueLocked(e)
		}
	}
}

func (c *Coordinator) touchWorkerLocked(name string) *workerState {
	w := c.workers[name]
	if w == nil {
		w = &workerState{}
		c.workers[name] = w
	}
	w.lastSeen = c.now()
	return w
}

// Counts is a point-in-time census of the campaign, for the dashboard and
// for -exit-when-done.
type Counts struct {
	Total, Pending, Leased, Done, Failed int
	ActiveLeases                         int
	Workers                              int
	// Quarantined counts workers whose circuit breaker is currently open.
	Quarantined int
}

// Counts returns the current census.
func (c *Coordinator) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.countsLocked()
}

func (c *Coordinator) countsLocked() Counts {
	n := Counts{Total: len(c.jobs), ActiveLeases: len(c.leases)}
	for _, e := range c.jobs {
		switch e.state {
		case jobPending:
			n.Pending++
		case jobLeased:
			n.Leased++
		case jobDone:
			n.Done++
		case jobFailed:
			n.Failed++
		}
	}
	cutoff := c.now().Add(-3 * c.cfg.leaseTTL())
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			n.Workers++
		}
		if w.brk.phase == breakerOpen {
			n.Quarantined++
		}
	}
	return n
}

// Handler returns the coordinator's HTTP handler: the /v1 API plus the
// merged fleet dashboard (/metrics, /progress).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", c.serveSubmit)
	mux.HandleFunc("/v1/lease", post(c.LeaseJobs))
	mux.HandleFunc("/v1/heartbeat", post(c.Heartbeat))
	mux.HandleFunc("/v1/complete", post(c.Complete))
	mux.HandleFunc("/v1/release", post(func(req ReleaseRequest) struct{} {
		c.Release(req)
		return struct{}{}
	}))
	mux.HandleFunc("/v1/results", post(c.Results))
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/progress", c.serveProgress)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "%s campaign coordinator: /metrics (Prometheus text), /progress (JSON), /v1/* (fabric API)\n", c.cfg.Name)
	})
	return mux
}

// serveSubmit is /v1/submit: like post(c.Submit), but an admission refusal
// becomes 429 + Retry-After, with the partial response still in the body so
// the client knows which jobs landed before the shed.
func (c *Coordinator) serveSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Submit(req)
	w.Header().Set("Content-Type", "application/json")
	var over *OverloadError
	if errors.As(err, &over) {
		secs := int((over.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
	}
	json.NewEncoder(w).Encode(resp)
}

// post adapts a typed request/response method to an HTTP JSON endpoint.
func post[Req, Resp any](fn func(Req) Resp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fn(req))
	}
}

func (c *Coordinator) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.mu.Lock()
	c.sweepLocked()
	n := c.countsLocked()
	ctr := c.ctr
	sums := make(map[string]uint64)
	for _, ws := range c.workers {
		obs.MergeCounters(sums, ws.counters)
	}
	// Render the phase-latency histograms while still holding mu (the
	// registry is single-goroutine by contract), emit after unlock.
	var phases bytes.Buffer
	c.phases.WritePrometheus(&phases, "tls_fleet_")
	spansCollected := len(c.fleetSpans)
	spansLost := c.spansLost
	c.mu.Unlock()

	obs.PromMetric(w, "tls_fleet_jobs_total", "gauge", float64(n.Total))
	obs.PromMetric(w, "tls_fleet_jobs_pending", "gauge", float64(n.Pending))
	obs.PromMetric(w, "tls_fleet_jobs_leased", "gauge", float64(n.Leased))
	obs.PromMetric(w, "tls_fleet_jobs_done", "gauge", float64(n.Done))
	obs.PromMetric(w, "tls_fleet_jobs_failed", "gauge", float64(n.Failed))
	obs.PromMetric(w, "tls_fleet_leases_active", "gauge", float64(n.ActiveLeases))
	obs.PromMetric(w, "tls_fleet_workers", "gauge", float64(n.Workers))
	obs.PromMetric(w, "tls_fleet_leases_granted", "counter", float64(ctr.leasesGranted))
	obs.PromMetric(w, "tls_fleet_leases_expired", "counter", float64(ctr.leasesExpired))
	obs.PromMetric(w, "tls_fleet_leases_returned", "counter", float64(ctr.leasesReturned))
	obs.PromMetric(w, "tls_fleet_steals", "counter", float64(ctr.steals))
	obs.PromMetric(w, "tls_fleet_straggler_reissues", "counter", float64(ctr.stragglerReissues))
	obs.PromMetric(w, "tls_fleet_dedupe_hits", "counter", float64(ctr.dedupeHits))
	obs.PromMetric(w, "tls_fleet_cache_hits", "counter", float64(ctr.cacheHits))
	obs.PromMetric(w, "tls_fleet_resume_hits", "counter", float64(ctr.resumeHits))
	obs.PromMetric(w, "tls_fleet_dup_results", "counter", float64(ctr.dupResults))
	obs.PromMetric(w, "tls_fleet_crc_rejected", "counter", float64(ctr.crcRejected))
	obs.PromMetric(w, "tls_fleet_requeues", "counter", float64(ctr.requeues))
	obs.PromMetric(w, "tls_fleet_journal_errors", "counter", float64(ctr.journalErrors))
	obs.PromMetric(w, "tls_fleet_workers_quarantined", "gauge", float64(n.Quarantined))
	obs.PromMetric(w, "tls_fleet_shed_submits", "counter", float64(ctr.shedSubmits))
	obs.PromMetric(w, "tls_fleet_rate_limited", "counter", float64(ctr.rateLimited))
	obs.PromMetric(w, "tls_fleet_spec_rejects", "counter", float64(ctr.specRejects))
	obs.PromMetric(w, "tls_fleet_breaker_opens", "counter", float64(ctr.breakerOpens))
	obs.PromMetric(w, "tls_fleet_breaker_probations", "counter", float64(ctr.breakerProbations))
	obs.PromMetric(w, "tls_fleet_breaker_closes", "counter", float64(ctr.breakerCloses))
	obs.PromMetric(w, "tls_fleet_spans_collected", "gauge", float64(spansCollected))
	obs.PromMetric(w, "tls_fleet_spans_lost", "counter", float64(spansLost))
	w.Write(phases.Bytes())

	// Fleet-aggregated per-run obs counters, sorted for a stable scrape.
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		obs.PromMetric(w, "tls_run_"+name, "counter", float64(sums[name]))
	}
}

// progressWorker is one worker's row in the /progress document.
type progressWorker struct {
	Name         string `json:"name"`
	LastSeenMS   int64  `json:"last_seen_ms"`
	ActiveLeases int    `json:"active_leases"`
	Completed    int    `json:"completed"`
	// Breaker is "open" or "probation" when the worker is quarantined or
	// probing its way back in; omitted for a healthy (closed) breaker.
	Breaker string `json:"breaker,omitempty"`
}

// fleetProgress is the /progress JSON document.
type fleetProgress struct {
	Campaign          string           `json:"campaign"`
	Total             int              `json:"total"`
	Pending           int              `json:"pending"`
	Leased            int              `json:"leased"`
	Done              int              `json:"done"`
	Failed            int              `json:"failed"`
	ActiveLeases      int              `json:"active_leases"`
	LeasesGranted     uint64           `json:"leases_granted"`
	LeasesExpired     uint64           `json:"leases_expired"`
	Steals            uint64           `json:"steals"`
	StragglerReissues uint64           `json:"straggler_reissues"`
	DedupeHits        uint64           `json:"dedupe_hits"`
	CacheHits         uint64           `json:"cache_hits"`
	ResumeHits        uint64           `json:"resume_hits"`
	DupResults        uint64           `json:"dup_results"`
	Workers           []progressWorker `json:"workers"`
}

func (c *Coordinator) serveProgress(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	c.sweepLocked()
	n := c.countsLocked()
	now := c.now()
	view := fleetProgress{
		Campaign: c.cfg.Name,
		Total:    n.Total, Pending: n.Pending, Leased: n.Leased,
		Done: n.Done, Failed: n.Failed, ActiveLeases: n.ActiveLeases,
		LeasesGranted: c.ctr.leasesGranted, LeasesExpired: c.ctr.leasesExpired,
		Steals: c.ctr.steals, StragglerReissues: c.ctr.stragglerReissues,
		DedupeHits: c.ctr.dedupeHits, CacheHits: c.ctr.cacheHits,
		ResumeHits: c.ctr.resumeHits, DupResults: c.ctr.dupResults,
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		active := 0
		for _, l := range c.leases {
			if l.worker == name {
				active++
			}
		}
		row := progressWorker{
			Name:         name,
			LastSeenMS:   now.Sub(ws.lastSeen).Milliseconds(),
			ActiveLeases: active,
			Completed:    ws.completed,
		}
		if ws.brk.phase != breakerClosed {
			row.Breaker = ws.brk.phase.String()
		}
		view.Workers = append(view.Workers, row)
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}

// Start binds addr (":0" picks a free port), serves in the background, and
// runs the lease sweeper until Stop.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve serves the fabric API on ln — which may be wrapped, e.g. by a
// chaosnet.Listener — and runs the lease sweeper until Stop.
func (c *Coordinator) Serve(ln net.Listener) {
	c.mu.Lock()
	c.ln = ln
	c.srv = &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	c.stop = make(chan struct{})
	srv, stop := c.srv, c.stop
	c.mu.Unlock()
	go srv.Serve(ln)
	go func() {
		tick := time.NewTicker(c.sweepEvery())
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.mu.Lock()
				c.sweepLocked()
				c.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}

func (c *Coordinator) sweepEvery() time.Duration {
	d := c.cfg.leaseTTL() / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// FleetSpans returns the merged fleet span set: the coordinator's own
// retained spans plus every span workers shipped on heartbeats and
// completions. The copy is safe to export or inspect after Stop.
func (c *Coordinator) FleetSpans() []trace.Span {
	spans := c.cfg.Tracer.Drain()
	c.cfg.Tracer.Requeue(spans) // keep exportable again later
	c.mu.Lock()
	out := make([]trace.Span, 0, len(spans)+len(c.fleetSpans))
	out = append(out, spans...)
	out = append(out, c.fleetSpans...)
	c.mu.Unlock()
	return out
}

// WriteFleetTrace exports the merged fleet Perfetto trace to path through
// the iofault seam (nil fsys = the real filesystem), atomically published so
// a crash mid-export never leaves a torn trace file.
func (c *Coordinator) WriteFleetTrace(fsys iofault.FS, path string) error {
	if fsys == nil {
		fsys = iofault.Real
	}
	spans := c.FleetSpans()
	if len(spans) == 0 {
		return fmt.Errorf("cluster: no fleet spans collected (is tracing enabled on the coordinator and workers?)")
	}
	var buf bytes.Buffer
	if err := trace.ExportPerfetto(&buf, c.cfg.Tracer.Proc(), spans); err != nil {
		return err
	}
	return iofault.WriteFileAtomic(fsys, path, buf.Bytes(), 0o644)
}

// Stop closes the listener and halts the sweeper. Safe without a prior Start.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	srv, stop := c.srv, c.stop
	c.srv, c.ln, c.stop = nil, nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if srv != nil {
		srv.Close()
	}
}
