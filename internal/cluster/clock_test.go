package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// The client's poll and retry waits must flow through the injected Sleep:
// with a wall-clock poll interval of an hour, only the injection makes the
// batch terminate, so a hang here means a raw time-based sleep crept back in.
func TestClientSleepInjection(t *testing.T) {
	_, url, stop := startFabric(t, Config{Name: "clk"}, 1, WorkerConfig{})
	defer stop()

	var waits atomic.Int64
	client := &Client{
		URL:  url,
		Poll: time.Hour,
		Sleep: func(ctx context.Context, d time.Duration) bool {
			waits.Add(1)
			return sleepCtx(ctx, time.Millisecond)
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := client.RunBatch(ctx, testJobs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if waits.Load() == 0 {
		t.Fatal("result polling never went through the injected sleep")
	}
}

// The worker's idle pull wait and heartbeat timer must flow through the
// injected Sleep too; the injection also drives the shutdown, so a worker
// that bypasses it either hangs (hour-long poll) or never exits.
func TestWorkerSleepInjection(t *testing.T) {
	co := NewCoordinator(Config{Name: "clk-w"})
	addr, err := co.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var idleWaits atomic.Int64
	var calls atomic.Int64
	w := NewWorker(WorkerConfig{
		Name:        "sleepy",
		Coordinator: "http://" + addr,
		Poll:        time.Hour,
		Sleep: func(ctx context.Context, d time.Duration) bool {
			if d == time.Hour {
				idleWaits.Add(1)
			}
			if calls.Add(1) >= 5 {
				cancel()
			}
			return ctx.Err() == nil
		},
	})
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit through the injected sleep")
	}
	if idleWaits.Load() == 0 {
		t.Fatal("idle pull waits never went through the injected sleep")
	}
}
