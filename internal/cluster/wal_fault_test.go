package cluster

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/iofault"
)

// Crash-consistency of the coordinator WAL: replay a coordinator-shaped
// record stream (campaign header, leases, completions, lease returns)
// through the crash-state enumerator and require that -resume reconstructs
// a safe state from every possible crash: every acknowledged completion is
// Done, and every acknowledged-but-unresolved lease is either re-queued
// (still in Leases) or already Done — never silently dropped as if the job
// had never been handed out.
func TestCoordinatorWALCrashConsistency(t *testing.T) {
	root := t.TempDir()
	rec := iofault.NewRecorder(root)
	path := filepath.Join(root, "wal.jsonl")
	j, err := exp.OpenJournalFS(rec, path)
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(r exp.JournalRecord, note string) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
		rec.Note(note)
	}
	appendRec(exp.JournalRecord{T: exp.RecCampaign, Name: "fleet"}, "campaign")
	// job-a: leased and completed.
	appendRec(exp.JournalRecord{T: exp.RecLease, Key: "job-a", Worker: "w1", Lease: 1}, "lease:job-a")
	appendRec(exp.JournalRecord{T: exp.RecJobDone, Key: "job-a", Worker: "w1"}, "done:job-a")
	// job-b: leased, lease voided (worker died), re-leased to another worker.
	appendRec(exp.JournalRecord{T: exp.RecLease, Key: "job-b", Worker: "w2", Lease: 2}, "lease:job-b")
	appendRec(exp.JournalRecord{T: exp.RecLeaseReturn, Key: "job-b", Worker: "w2", Lease: 2}, "return:job-b")
	appendRec(exp.JournalRecord{T: exp.RecLease, Key: "job-b", Worker: "w3", Lease: 3}, "release:job-b")
	// job-c: leased and still in flight at the crash.
	appendRec(exp.JournalRecord{T: exp.RecLease, Key: "job-c", Worker: "w1", Lease: 4}, "lease:job-c")
	appendRec(exp.JournalRecord{T: exp.RecJobDone, Key: "job-b", Worker: "w3"}, "done:job-b")
	j.Close()

	err = iofault.ForEachCrashState(rec.Trace(), t.TempDir(), func(s iofault.CrashState, dir string) error {
		jp := filepath.Join(dir, "wal.jsonl")
		acked := map[string]bool{}
		for _, n := range s.Acked {
			acked[n] = true
		}
		// The coordinator's -resume path: reopen (truncating any torn tail)
		// then replay.
		j2, err := exp.OpenJournal(jp)
		if err != nil {
			if len(s.Acked) == 0 {
				return nil // nothing was promised yet; a missing WAL is legal
			}
			return fmt.Errorf("reopen WAL: %v", err)
		}
		j2.Close()
		st, err := exp.LoadCampaign(jp)
		if err != nil {
			return fmt.Errorf("replay WAL: %v", err)
		}
		// Acked completions are never lost.
		for _, key := range []string{"job-a", "job-b"} {
			if acked["done:"+key] && !st.Done[key] {
				return fmt.Errorf("acked completion of %s lost (done=%v)", key, st.Done)
			}
		}
		// An acked, unresolved lease must surface at resume: the job is
		// either still leased (re-queued by the coordinator) or done.
		if acked["lease:job-c"] && !st.Done["job-c"] {
			if _, leased := st.Leases["job-c"]; !leased {
				return fmt.Errorf("acked in-flight lease for job-c dropped (leases=%v)", st.Leases)
			}
		}
		// A voided lease stays voided until the re-lease lands: job-b must
		// not resurrect lease L2/w2 once the return is durable and the
		// re-lease is not.
		if acked["return:job-b"] && !acked["release:job-b"] && !acked["done:job-b"] {
			if w := st.Leases["job-b"]; w == "w2" {
				return fmt.Errorf("voided lease for job-b resurrected on worker %s", w)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
