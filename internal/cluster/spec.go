// Package cluster is the distributed campaign fabric: a tlsserve
// coordinator that owns a campaign's job set, leases, journal and result
// cache, and a fleet of tlsworker processes that pull job batches over HTTP,
// execute them through the hardened exp.Runner, and stream results and
// heartbeats back.
//
// The design leans entirely on the property that makes the local
// orchestrator sound: a Job is a canonical, content-hashed description of a
// deterministic simulation. That turns distribution into a cache-filling
// problem — any worker may run any job, duplicates are harmless (first valid
// result wins), and a campaign assembled from fleet results is
// reflect.DeepEqual-identical to a serial run of the same grid. Leases bound
// the damage of a dead worker, speculative re-issue bounds the damage of a
// slow one (the scheduling-layer analogue of the paper's squash-and-retry),
// and the PR-4 journal makes the coordinator itself crash-resumable.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

// JobSpec is the wire form of an exp.Job. The machine travels by name, not
// by value: machine.Config carries an unexported topology only its
// constructors can derive, so the receiver rebuilds the config from the name
// and then proves the reconstruction faithful by re-deriving the content
// hash and comparing it to the sender's Key.
type JobSpec struct {
	Machine    string           `json:"machine"`
	Scheme     core.Scheme      `json:"scheme"`
	Profile    workload.Profile `json:"profile"`
	Seed       uint64           `json:"seed"`
	Sequential bool             `json:"sequential,omitempty"`
	Ablation   exp.Ablation     `json:"ablation"`
	Faults     *fault.Config    `json:"faults,omitempty"`
	Invariants bool             `json:"invariants,omitempty"`
	// Key is the sender's Job.Key(): the job identity everything else in
	// the fabric (leases, cache, journal, results) is keyed by.
	Key string `json:"key"`
	// Campaign is the campaign correlation ID stamped by the coordinator at
	// submission. Like Obs it is deliberately NOT part of the job identity —
	// Job() ignores it, so the same job re-submitted under a new campaign
	// still dedupes and cache-hits — but it rides every lease so worker
	// spans, journal records and quarantine manifests name their campaign.
	Campaign string `json:"campaign,omitempty"`
}

// SpecOf converts a job to its wire form. Obs deliberately does not travel:
// observability is a per-worker choice and never part of a job's identity.
func SpecOf(j exp.Job) JobSpec {
	name := ""
	if j.Machine != nil {
		name = j.Machine.Name
	}
	return JobSpec{
		Machine: name, Scheme: j.Scheme, Profile: j.Profile, Seed: j.Seed,
		Sequential: j.Sequential, Ablation: j.Ablation,
		Faults: j.Faults, Invariants: j.Invariants,
		Key: j.Key(),
	}
}

// Job reconstructs the exp.Job a spec describes, verifying that the rebuilt
// job hashes to the sender's Key — a mismatch means the two processes
// disagree about what the job is (a version skew or an unknown machine) and
// running it would poison the cache under the wrong identity.
func (s JobSpec) Job() (exp.Job, error) {
	cfg, err := ResolveMachine(s.Machine)
	if err != nil {
		return exp.Job{}, err
	}
	j := exp.Job{
		Machine: cfg, Scheme: s.Scheme, Profile: s.Profile, Seed: s.Seed,
		Sequential: s.Sequential, Ablation: s.Ablation,
		Faults: s.Faults, Invariants: s.Invariants,
	}
	if key := j.Key(); key != s.Key {
		return exp.Job{}, fmt.Errorf("cluster: job %s rebuilt with key %.12s, sender says %.12s (version skew?)",
			j.Label(), key, s.Key)
	}
	return j, nil
}

// ResolveMachine rebuilds a machine config from its canonical name. The
// special-cased names must come before the NUMA<n> parse: "NUMA16.L2" is not
// a node count.
func ResolveMachine(name string) (*machine.Config, error) {
	switch name {
	case "NUMA16":
		return machine.NUMA16(), nil
	case "NUMA16.L2":
		return machine.NUMA16BigL2(), nil
	case "CMP8":
		return machine.CMP8(), nil
	}
	if rest, ok := strings.CutPrefix(name, "NUMA"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n >= 1 && n <= 4096 {
			return machine.ScalableNUMA(n), nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown machine %q", name)
}
