package cluster

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/exp"
	"repro/internal/obs/trace"
	"repro/internal/sim"
)

// The fabric's HTTP API is five JSON POST endpoints plus the dashboard:
//
//	/v1/submit    client -> coordinator: register jobs (idempotent by Key)
//	/v1/lease     worker -> coordinator: pull a batch of leased jobs
//	/v1/heartbeat worker -> coordinator: extend leases, report obs counters
//	/v1/complete  worker -> coordinator: deliver one job's sealed outcome
//	/v1/release   worker -> coordinator: return leases without an outcome
//	/v1/results   client -> coordinator: poll sealed outcomes by key
//
// Results cross the wire inside a CRC-sealed envelope (the same Castagnoli
// polynomial the result cache uses) so a truncated or bit-rotted body is
// rejected at ingest instead of poisoning the campaign.

// Envelope is a CRC-checked JSON payload.
type Envelope struct {
	Check   uint32          `json:"check"`
	Payload json.RawMessage `json:"payload"`
}

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps v in a checksummed envelope.
func Seal(v any) (Envelope, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Check: crc32.Checksum(payload, wireCRC), Payload: payload}, nil
}

// Open verifies the envelope's checksum and unmarshals the payload into v.
func (e Envelope) Open(v any) error {
	if e.Payload == nil {
		return fmt.Errorf("cluster: empty envelope")
	}
	if got := crc32.Checksum(e.Payload, wireCRC); got != e.Check {
		return fmt.Errorf("cluster: envelope checksum %08x, want %08x", got, e.Check)
	}
	return json.Unmarshal(e.Payload, v)
}

// Outcome is one job's sealed result as it crosses the wire and as the
// coordinator persists it (journal Data for chaotic jobs).
type Outcome struct {
	Key    string            `json:"key"`
	Result sim.Result        `json:"result"`
	Chaos  *exp.ChaosVerdict `json:"chaos,omitempty"`
	// Err is the permanent failure text ("" on success); TimedOut marks a
	// watchdog kill, which the coordinator treats as deterministic (a hung
	// simulation hangs everywhere) and never re-issues.
	Err      string `json:"err,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`
	// Cached marks an outcome the coordinator served from its result cache
	// without leasing the job to anyone.
	Cached bool `json:"cached,omitempty"`
	// Attempts and WallMS describe the winning execution, Worker who ran it.
	Attempts int    `json:"attempts,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
	Worker   string `json:"worker,omitempty"`
}

// SubmitRequest registers jobs with the coordinator. Submission is
// idempotent: a key the coordinator already tracks is joined, not
// duplicated, which is what lets a crashed client (or a resumed campaign)
// simply submit again.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
	// Client names the submitter for fair per-client rate limiting; an empty
	// name (the coordinator's own grid preload, legacy clients) is exempt.
	Client string `json:"client,omitempty"`
}

// SubmitResponse reports how many of the submitted jobs were new and how
// many are already complete (cache hits and previously finished work).
type SubmitResponse struct {
	Accepted int `json:"accepted"`
	Done     int `json:"done"`
	// Rejected lists keys whose specs did not re-hash to their own key —
	// version skew between client and coordinator, or a corrupted submit
	// body. They are not registered; a clean resubmission heals transport
	// corruption, and a client that keeps seeing its keys here gives up.
	Rejected []string `json:"rejected,omitempty"`
}

// LeaseRequest pulls up to Max leased jobs for a named worker. An idle
// worker with nothing pending may be handed a speculative duplicate of
// another worker's long-running lease (work stealing).
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// Lease is one granted job: run Spec, heartbeat before TTL expires, then
// Complete or Release.
type Lease struct {
	ID   uint64  `json:"id"`
	Spec JobSpec `json:"spec"`
	// TTLMS is how long the coordinator holds the lease without a heartbeat.
	TTLMS int64 `json:"ttl_ms"`
	// Speculative marks a duplicate issue of a job another worker already
	// holds (straggler re-execution / steal); first valid result wins.
	Speculative bool `json:"speculative,omitempty"`
}

// LeaseResponse carries the granted leases (possibly none). RetryAfterMS,
// when set, tells the worker its lease request was refused by the circuit
// breaker and how long to back off before asking again.
type LeaseResponse struct {
	Leases       []Lease `json:"leases"`
	RetryAfterMS int64   `json:"retry_after_ms,omitempty"`
}

// HeartbeatRequest extends the named leases and reports the worker's
// cumulative obs counter totals (absolute values, so a lost or repeated
// heartbeat cannot double-count).
type HeartbeatRequest struct {
	Worker   string            `json:"worker"`
	Leases   []uint64          `json:"leases"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Spans ships the worker's retained trace spans since the last
	// successful heartbeat; the coordinator folds them into the merged fleet
	// trace. A failed heartbeat requeues them locally, so spans are
	// delivered at-least-zero, at-most-once — tracing is diagnostic cargo,
	// never load-bearing state.
	Spans []trace.Span `json:"spans,omitempty"`
}

// HeartbeatResponse lists leases the worker should abandon: their jobs were
// completed elsewhere (a speculative duplicate won the race).
type HeartbeatResponse struct {
	Cancel []uint64 `json:"cancel,omitempty"`
}

// CompleteRequest delivers one lease's sealed Outcome.
type CompleteRequest struct {
	Worker string   `json:"worker"`
	Lease  uint64   `json:"lease"`
	Key    string   `json:"key"`
	Env    Envelope `json:"env"`
	// FinishedUS is when (µs since epoch, worker clock) the attempt
	// finished; the coordinator derives result-delivery latency from it.
	FinishedUS int64 `json:"finished_us,omitempty"`
	// Spans ships the attempt's trace spans alongside the result.
	Spans []trace.Span `json:"spans,omitempty"`
}

// CompleteResponse acknowledges an outcome. Duplicate marks a result for a
// job some other issue already completed (counted, then discarded).
type CompleteResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// ReleaseRequest returns leases without outcomes (worker drain, or a cancel
// acknowledged); the jobs go back to the pending queue unless already done.
type ReleaseRequest struct {
	Worker string   `json:"worker"`
	Leases []uint64 `json:"leases"`
}

// ResultsRequest polls outcomes for the given keys.
type ResultsRequest struct {
	Keys []string `json:"keys"`
}

// ResultsResponse maps each finished key to its sealed Outcome; Pending is
// how many requested keys are not finished yet. Unknown lists requested keys
// the coordinator does not track at all — a client that sees its keys here
// (a coordinator restarted without its journal) re-submits them.
type ResultsResponse struct {
	Results map[string]Envelope `json:"results"`
	Pending int                 `json:"pending"`
	Unknown []string            `json:"unknown,omitempty"`
}
