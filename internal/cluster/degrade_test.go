package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/machine"
)

// degradeCoordinator builds an injected-clock coordinator for breaker and
// admission tests (no speculation, so lease accounting stays exact).
func degradeCoordinator(t *testing.T, cfg Config) (*Coordinator, *fixedClock) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = time.Minute
	}
	cfg.StragglerAfter, cfg.StealAfter = -1, -1
	co := NewCoordinator(cfg)
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co.now = clk.now
	return co, clk
}

// corruptComplete delivers one CRC-invalid outcome for the given lease.
func corruptComplete(t *testing.T, co *Coordinator, worker string, l Lease) {
	t.Helper()
	env := sealOutcome(t, Outcome{Key: l.Spec.Key, Worker: worker})
	env.Payload[2] ^= 0x40
	if resp := co.Complete(CompleteRequest{Worker: worker, Lease: l.ID, Key: l.Spec.Key, Env: env}); resp.Accepted {
		t.Fatal("corrupt envelope accepted")
	}
}

// TestBreakerQuarantineAndProbation walks the breaker state machine with an
// injected clock: three consecutive CRC-invalid results quarantine the
// worker (empty leases + Retry-After), the lapsed quarantine re-admits it on
// probation with exactly one probe lease, and a valid delivery closes it.
func TestBreakerQuarantineAndProbation(t *testing.T) {
	co, clk := degradeCoordinator(t, Config{QuarantineFor: 10 * time.Second})
	for seed := uint64(1); seed <= 5; seed++ {
		submitOne(t, co, seed)
	}

	for i := 0; i < 3; i++ {
		lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 1})
		if len(lr.Leases) != 1 {
			t.Fatalf("round %d: lease refused before trip: %+v", i, lr)
		}
		corruptComplete(t, co, "byz", lr.Leases[0])
	}
	if co.ctr.crcRejected != 3 || co.ctr.breakerOpens != 1 {
		t.Fatalf("after 3 bad results: %+v", co.ctr)
	}
	if n := co.Counts(); n.Quarantined != 1 {
		t.Fatalf("quarantined census: %+v", n)
	}

	// Quarantined: no leases, only a Retry-After hint.
	lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 5})
	if len(lr.Leases) != 0 || lr.RetryAfterMS <= 0 {
		t.Fatalf("quarantine not enforced: %+v", lr)
	}
	// A healthy worker is unaffected.
	if lr := co.LeaseJobs(LeaseRequest{Worker: "good", Max: 1}); len(lr.Leases) != 1 {
		t.Fatalf("healthy worker starved: %+v", lr)
	}

	// Quarantine lapses: probation grants exactly one probe, even for Max 5,
	// and nothing more while the probe is outstanding.
	clk.advance(11 * time.Second)
	probe := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 5})
	if len(probe.Leases) != 1 {
		t.Fatalf("probation probe: %+v", probe)
	}
	if co.ctr.breakerProbations != 1 {
		t.Fatalf("probation not counted: %+v", co.ctr)
	}
	if again := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 5}); len(again.Leases) != 0 || again.RetryAfterMS <= 0 {
		t.Fatalf("second probe granted during probation: %+v", again)
	}

	// A CRC-valid delivery graduates the probation; full service resumes.
	l := probe.Leases[0]
	resp := co.Complete(CompleteRequest{
		Worker: "byz", Lease: l.ID, Key: l.Spec.Key,
		Env: sealOutcome(t, Outcome{Key: l.Spec.Key, Worker: "byz"}),
	})
	if !resp.Accepted {
		t.Fatalf("probe completion: %+v", resp)
	}
	if co.ctr.breakerCloses != 1 {
		t.Fatalf("breaker did not close: %+v", co.ctr)
	}
	if lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 5}); len(lr.Leases) < 2 {
		t.Fatalf("full service not restored: %+v", lr)
	}
	if n := co.Counts(); n.Quarantined != 0 {
		t.Fatalf("census after close: %+v", n)
	}
}

// TestBreakerReopensWithDoubledQuarantine fails the probation probe and
// requires the second quarantine to last twice the base span.
func TestBreakerReopensWithDoubledQuarantine(t *testing.T) {
	co, clk := degradeCoordinator(t, Config{QuarantineFor: 10 * time.Second})
	for seed := uint64(1); seed <= 3; seed++ {
		submitOne(t, co, seed)
	}
	for i := 0; i < 3; i++ {
		lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 1})
		corruptComplete(t, co, "byz", lr.Leases[0])
	}
	clk.advance(11 * time.Second)
	probe := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 1})
	if len(probe.Leases) != 1 {
		t.Fatalf("probe: %+v", probe)
	}
	// The probe itself is corrupt: reopen immediately, quarantine doubled.
	corruptComplete(t, co, "byz", probe.Leases[0])
	if co.ctr.breakerOpens != 2 {
		t.Fatalf("failed probe did not reopen: %+v", co.ctr)
	}
	clk.advance(11 * time.Second) // past base, inside doubled span
	if lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 1}); len(lr.Leases) != 0 {
		t.Fatalf("doubled quarantine not honored: %+v", lr)
	}
	clk.advance(10 * time.Second) // past 20s total
	if lr := co.LeaseJobs(LeaseRequest{Worker: "byz", Max: 1}); len(lr.Leases) != 1 {
		t.Fatalf("second probation refused: %+v", lr)
	}
}

// TestBreakerTripsOnExpiryChurn quarantines a flapping worker whose leases
// keep dying without heartbeats.
func TestBreakerTripsOnExpiryChurn(t *testing.T) {
	co, clk := degradeCoordinator(t, Config{LeaseTTL: time.Second, QuarantineFor: 10 * time.Second})
	submitOne(t, co, 1)
	grants := 0
	for i := 0; i < 6; i++ {
		lr := co.LeaseJobs(LeaseRequest{Worker: "flap", Max: 1})
		grants += len(lr.Leases)
		clk.advance(2 * time.Second) // the lease dies unheartbeated
	}
	if co.ctr.breakerOpens != 1 {
		t.Fatalf("expiry churn did not trip the breaker: %+v", co.ctr)
	}
	if grants != 5 {
		t.Fatalf("granted %d leases before trip, want 5 (expiry limit)", grants)
	}
	if lr := co.LeaseJobs(LeaseRequest{Worker: "flap", Max: 1}); len(lr.Leases) != 0 || lr.RetryAfterMS <= 0 {
		t.Fatalf("flapping worker not quarantined: %+v", lr)
	}
}

func degradeSpecs(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = SpecOf(exp.Job{
			Machine: machine.CMP8(), Scheme: core.MultiTMVLazy,
			Profile: tinyProfile(), Seed: uint64(100 + i),
		})
	}
	return specs
}

// TestSubmitShedsOverload bounds the pending queue: excess jobs are shed
// with an OverloadError carrying the partial response, and the HTTP layer
// renders the shed as 429 + Retry-After.
func TestSubmitShedsOverload(t *testing.T) {
	co, _ := degradeCoordinator(t, Config{MaxPending: 2})
	specs := degradeSpecs(5)
	resp, err := co.Submit(SubmitRequest{Jobs: specs, Client: "c1"})
	over, ok := err.(*OverloadError)
	if !ok || over.RetryAfter <= 0 {
		t.Fatalf("overload not shed: %+v %v", resp, err)
	}
	if resp.Accepted != 2 || co.ctr.shedSubmits != 1 {
		t.Fatalf("partial accept: %+v %+v", resp, co.ctr)
	}
	// Accepted keys joined on retry; the rest still shed until drained.
	resp2, err2 := co.Submit(SubmitRequest{Jobs: specs, Client: "c1"})
	if _, ok := err2.(*OverloadError); !ok || resp2.Accepted != 0 || co.ctr.dedupeHits != 2 {
		t.Fatalf("retry: %+v %v %+v", resp2, err2, co.ctr)
	}
	// Preload is exempt: the coordinator's own grid seeding never sheds.
	if resp := co.Preload(degradeSpecs(8)); resp.Accepted != 6 {
		t.Fatalf("preload shed: %+v", resp)
	}

	// HTTP layer: a shed submit is 429 with a Retry-After hint and the
	// partial response in the body.
	co2, _ := degradeCoordinator(t, Config{MaxPending: 2})
	srv := httptest.NewServer(co2.Handler())
	defer srv.Close()
	body, _ := json.Marshal(SubmitRequest{Jobs: degradeSpecs(5), Client: "c1"})
	r, err := http.Post(srv.URL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var sr SubmitResponse
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil || sr.Accepted != 2 {
		t.Fatalf("partial body: %+v %v", sr, err)
	}
}

// TestSubmitRateLimitIsPerClient verifies fair admission: one client
// draining its bucket does not affect another, unnamed clients are exempt,
// and tokens refill with time.
func TestSubmitRateLimitIsPerClient(t *testing.T) {
	co, clk := degradeCoordinator(t, Config{SubmitRate: 10, SubmitBurst: 5})
	if _, err := co.Submit(SubmitRequest{Jobs: degradeSpecs(5), Client: "a"}); err != nil {
		t.Fatalf("burst refused: %v", err)
	}
	_, err := co.Submit(SubmitRequest{Jobs: degradeSpecs(6)[5:], Client: "a"})
	over, ok := err.(*OverloadError)
	if !ok || over.RetryAfter <= 0 {
		t.Fatalf("drained bucket not limited: %v", err)
	}
	if co.ctr.rateLimited != 1 {
		t.Fatalf("counters: %+v", co.ctr)
	}
	// Fairness: client b has its own bucket; unnamed clients are exempt.
	if _, err := co.Submit(SubmitRequest{Jobs: degradeSpecs(10)[5:], Client: "b"}); err != nil {
		t.Fatalf("client b starved by client a: %v", err)
	}
	if _, err := co.Submit(SubmitRequest{Jobs: degradeSpecs(11)[10:]}); err != nil {
		t.Fatalf("unnamed client limited: %v", err)
	}
	// Refill: a second of clock restores client a.
	clk.advance(time.Second)
	if _, err := co.Submit(SubmitRequest{Jobs: degradeSpecs(12)[11:], Client: "a"}); err != nil {
		t.Fatalf("bucket did not refill: %v", err)
	}
}

// TestSubmitRejectsUnresolvableSpec: a spec that does not re-hash to its
// own key is rejected, not registered — so a later clean submission of the
// real spec heals what transport corruption broke.
func TestSubmitRejectsUnresolvableSpec(t *testing.T) {
	co, _ := degradeCoordinator(t, Config{})
	good := SpecOf(exp.Job{Machine: machine.CMP8(), Scheme: core.MultiTMVLazy, Profile: tinyProfile(), Seed: 1})
	bad := good
	bad.Seed++ // corrupted in flight: key no longer matches the payload

	resp, err := co.Submit(SubmitRequest{Jobs: []JobSpec{bad}, Client: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || len(resp.Rejected) != 1 || resp.Rejected[0] != good.Key {
		t.Fatalf("corrupt spec not rejected: %+v", resp)
	}
	if co.ctr.specRejects != 1 {
		t.Fatalf("counters: %+v", co.ctr)
	}
	// Not registered: the key polls as Unknown, prompting client resubmit.
	res := co.Results(ResultsRequest{Keys: []string{good.Key}})
	if len(res.Unknown) != 1 {
		t.Fatalf("rejected key should be unknown: %+v", res)
	}
	// The clean spec heals it.
	resp2, err := co.Submit(SubmitRequest{Jobs: []JobSpec{good}, Client: "c"})
	if err != nil || resp2.Accepted != 1 {
		t.Fatalf("clean resubmission refused: %+v %v", resp2, err)
	}
}

// TestDuplicateAndReorderedCompletes races duplicate and reordered result
// deliveries against lease expiry: the winner is applied once, every
// repeat is counted as a duplicate, exactly one completion record reaches
// the journal, and the losing sibling is cancelled.
func TestDuplicateAndReorderedCompletes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "dup.wal")
	j, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	co, clk := degradeCoordinator(t, Config{Name: "dup", Journal: j, LeaseTTL: time.Second})
	spec := submitOne(t, co, 1)

	// w1's lease expires; the job is re-leased to w2. w1's late result then
	// arrives TWICE (a chaos-net duplicated delivery).
	lr1 := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
	clk.advance(2 * time.Second)
	lr2 := co.LeaseJobs(LeaseRequest{Worker: "w2", Max: 1})
	if len(lr2.Leases) != 1 || lr2.Leases[0].Spec.Key != spec.Key {
		t.Fatalf("expired job not re-leased: %+v", lr2)
	}
	late := CompleteRequest{
		Worker: "w1", Lease: lr1.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w1"}),
	}
	if resp := co.Complete(late); !resp.Accepted || resp.Duplicate {
		t.Fatalf("first delivery: %+v", resp)
	}
	if resp := co.Complete(late); !resp.Accepted || !resp.Duplicate {
		t.Fatalf("duplicated delivery not deduped: %+v", resp)
	}
	// w2 lost the race; its heartbeat carries the cancellation, and its own
	// (reordered, post-finish) result is another counted duplicate.
	hb := co.Heartbeat(HeartbeatRequest{Worker: "w2", Leases: []uint64{lr2.Leases[0].ID}})
	if len(hb.Cancel) != 1 || hb.Cancel[0] != lr2.Leases[0].ID {
		t.Fatalf("sibling not cancelled: %+v", hb)
	}
	slow := CompleteRequest{
		Worker: "w2", Lease: lr2.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w2"}),
	}
	if resp := co.Complete(slow); !resp.Duplicate {
		t.Fatalf("reordered sibling result not deduped: %+v", resp)
	}
	if co.ctr.dupResults != 2 {
		t.Fatalf("dupResults = %d, want 2", co.ctr.dupResults)
	}

	// Exactly one completion record in the WAL: a resumed coordinator must
	// not double-count the job.
	j.Close()
	recs, err := exp.ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, rec := range recs {
		if rec.T == exp.RecJobDone && rec.Key == spec.Key {
			done++
		}
	}
	if done != 1 {
		t.Fatalf("journaled %d completions, want 1", done)
	}
	st, err := exp.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done[spec.Key] || len(st.Leases) != 0 {
		t.Fatalf("replayed state: done=%v leases=%+v", st.Done, st.Leases)
	}
}
