package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sim"
)

// WorkerConfig parameterizes a fleet worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator (lease ownership,
	// journal records, /progress rows). Required.
	Name string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Parallel is how many leased jobs execute concurrently (default 1).
	Parallel int
	// Poll is the idle wait between empty lease pulls (default 500ms).
	Poll time.Duration
	// JobTimeout, Retries, RetryBackoff, CheckpointDir and CheckpointEvery
	// configure the per-job exp.Runner, preserving the local hardening
	// (watchdog, panic retry, checkpoint-at-interrupt) on fleet workers.
	JobTimeout      time.Duration
	Retries         int
	RetryBackoff    time.Duration
	CheckpointDir   string
	CheckpointEvery int
	// Observe attaches a fresh obs registry to every executed job and
	// reports the accumulated counter totals on heartbeats. Observability is
	// per-worker and never part of a job's identity, so observed and
	// unobserved workers produce identical results.
	Observe bool
	// Trace records every attempt, retry and quarantine as wall-clock spans
	// (campaign/key/attempt correlation IDs, lease-ID flow tags) and ships
	// them to the coordinator on heartbeats and completions, where they merge
	// into the fleet Perfetto trace. Like Observe it cannot perturb results:
	// spans live outside the simulated cycle domain.
	Trace bool
	// Metrics, when non-nil, accumulates local run statistics.
	Metrics *exp.Metrics
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// HTTP overrides the transport (tests, chaos injection); nil builds a
	// client from RPCTimeout/DialTimeout.
	HTTP *http.Client
	// RPCTimeout bounds each coordinator RPC (default 30s); DialTimeout
	// bounds the connection attempt alone (default 5s), so a partitioned
	// coordinator fails fast instead of hanging the full RPC timeout.
	RPCTimeout  time.Duration
	DialTimeout time.Duration
	// Seed drives retry-jitter determinism (0 = derived from Name).
	Seed uint64
	// Sleep overrides the context-aware wait used by the pull loop, the
	// heartbeat timer and outcome-delivery retries (nil = real time). Chaos
	// drills and replay harnesses inject a virtual clock here so retry and
	// breaker schedules stay deterministic under wall-clock jitter; it must
	// return false when ctx dies first.
	Sleep func(ctx context.Context, d time.Duration) bool
}

func (c WorkerConfig) parallel() int {
	if c.Parallel <= 0 {
		return 1
	}
	return c.Parallel
}

func (c WorkerConfig) poll() time.Duration {
	if c.Poll <= 0 {
		return 500 * time.Millisecond
	}
	return c.Poll
}

// Worker pulls leased jobs from a coordinator, executes them through a
// hardened exp.Runner, and streams results, releases and heartbeats back.
type Worker struct {
	cfg    WorkerConfig
	hc     *http.Client
	tracer *trace.Tracer // nil unless cfg.Trace

	mu        sync.Mutex
	cancels   map[uint64]context.CancelFunc // per-lease job cancellation
	ttl       time.Duration                 // latest lease TTL seen
	obsTotals map[string]uint64             // cumulative observed counters
}

// NewWorker builds a worker for the config.
func NewWorker(cfg WorkerConfig) *Worker {
	hc := cfg.HTTP
	if hc == nil {
		hc = httpClient(cfg.DialTimeout, cfg.RPCTimeout)
	}
	w := &Worker{
		cfg:     cfg,
		hc:      hc,
		cancels: make(map[uint64]context.CancelFunc),
		ttl:     30 * time.Second,
	}
	if cfg.Trace {
		w.tracer = trace.New(cfg.Name)
		w.tracer.Retain()
	}
	return w
}

// Tracer exposes the worker's tracer (nil when tracing is off), chiefly so
// tests and post-mortems can read the flight recorder.
func (w *Worker) Tracer() *trace.Tracer { return w.tracer }

func (w *Worker) seed() uint64 {
	if w.cfg.Seed != 0 {
		return w.cfg.Seed
	}
	return jitterSeed("worker|" + w.cfg.Name)
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	if w.cfg.Sleep != nil {
		return w.cfg.Sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run pulls and executes jobs until ctx dies, then drains: in-flight
// simulations are interrupted (checkpointing at their next commit when
// checkpointing is on), unfinished leases are returned to the coordinator,
// and one final heartbeat delivers the closing counter totals.
func (w *Worker) Run(ctx context.Context) error {
	hbCtx, hbStop := context.WithCancel(context.Background())
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()

	slots := make(chan struct{}, w.cfg.parallel())
	var wg sync.WaitGroup
	// Seeded full jitter on pull errors: a herd of workers reconnecting to a
	// restarted (or partitioned) coordinator spreads out instead of arriving
	// in lockstep.
	pullBO := newBackoff(w.seed()^0x9d11, 100*time.Millisecond, 10*time.Second)
pull:
	for {
		select {
		case <-ctx.Done():
			break pull
		case slots <- struct{}{}:
		}
		// One slot held; ask for as many jobs as there are free slots plus
		// the one we hold, then start what we got and give back the rest.
		free := cap(slots) - len(slots) + 1
		resp, err := w.lease(LeaseRequest{Worker: w.cfg.Name, Max: free})
		if err != nil || len(resp.Leases) == 0 {
			<-slots
			wait := w.cfg.poll()
			switch {
			case err != nil:
				w.logf("worker %s: lease pull: %v", w.cfg.Name, err)
				wait = pullBO.next()
			case resp.RetryAfterMS > 0:
				// Circuit-broken: the coordinator told us exactly how long
				// the quarantine lasts; jitter on top avoids a synchronized
				// probation stampede.
				wait = time.Duration(resp.RetryAfterMS)*time.Millisecond + pullBO.next()
				w.logf("worker %s: quarantined by coordinator, backing off %v", w.cfg.Name, wait)
			default:
				pullBO.reset()
			}
			if !w.sleep(ctx, wait) {
				break pull
			}
			continue
		}
		pullBO.reset()
		for i, l := range resp.Leases {
			if i > 0 {
				select {
				case slots <- struct{}{}:
				case <-ctx.Done():
					// No slot for an extra lease during shutdown: return it.
					w.release(l.ID)
					continue
				}
			}
			w.noteTTL(l)
			wg.Add(1)
			go func(l Lease) {
				defer wg.Done()
				defer func() { <-slots }()
				w.runLease(ctx, l)
			}(l)
		}
	}
	wg.Wait()
	hbStop()
	hbWG.Wait()
	w.heartbeat() // final counter totals, best-effort
	return ctx.Err()
}

func (w *Worker) noteTTL(l Lease) {
	if l.TTLMS <= 0 {
		return
	}
	w.mu.Lock()
	w.ttl = time.Duration(l.TTLMS) * time.Millisecond
	w.mu.Unlock()
}

// runLease executes one leased job and reports its outcome. A lease whose
// job was interrupted (drain or a lost speculative race) is released, not
// completed: the coordinator re-queues it unless someone else finished it.
func (w *Worker) runLease(ctx context.Context, l Lease) {
	job, err := l.Spec.Job()
	if err != nil {
		// The spec does not reconstruct here (version skew): report the
		// permanent failure rather than silently dropping the lease.
		w.complete(ctx, l, Outcome{Key: l.Spec.Key, Err: err.Error(), Worker: w.cfg.Name})
		return
	}
	if w.cfg.Observe {
		job.Obs = &obs.Config{Registry: obs.NewRegistry()}
	}
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.cancels[l.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.cancels, l.ID)
		w.mu.Unlock()
	}()

	// A fresh single-job Runner per lease keeps the hardened execution path
	// (panic isolation, watchdog, retry, checkpointing) while giving every
	// lease its own cancellation scope.
	r := &exp.Runner{
		Workers:         1,
		Retries:         w.cfg.Retries,
		RetryBackoff:    w.cfg.RetryBackoff,
		JobTimeout:      w.cfg.JobTimeout,
		CheckpointDir:   w.cfg.CheckpointDir,
		CheckpointEvery: w.cfg.CheckpointEvery,
		Metrics:         w.cfg.Metrics,
		Tracer:          w.tracer,
		Campaign:        l.Spec.Campaign,
		Flow:            l.ID,
	}
	results, _ := r.RunBatch(jobCtx, []exp.Job{job})
	jr := results[0]
	if jr.Err != nil && (errors.Is(jr.Err, exp.ErrJobInterrupted) || jobCtx.Err() != nil) && !jr.TimedOut {
		// Drain or cancellation, not the job's fault: give the lease back.
		w.release(l.ID)
		return
	}
	if w.cfg.Observe && jr.Err == nil && job.Obs != nil {
		w.foldObs(job.Obs.Registry)
		// Push the new totals now rather than waiting for the timer, so the
		// fleet dashboard tracks completed jobs, not heartbeat boundaries.
		defer w.heartbeat()
	}
	o := Outcome{
		Key: l.Spec.Key, Result: jr.Result, Chaos: jr.Chaos,
		Attempts: jr.Attempts, WallMS: jr.Wall.Milliseconds(), Worker: w.cfg.Name,
	}
	if jr.Err != nil {
		o.Result, o.Chaos = sim.Result{}, nil
		o.Err = jr.Err.Error()
		o.TimedOut = jr.TimedOut
	}
	w.complete(ctx, l, o)
}

// foldObs accumulates one finished run's counters into the worker totals.
// The registry is only read here, after its simulation completed, so the
// zero-synchronization hot path is preserved.
func (w *Worker) foldObs(reg *obs.Registry) {
	snap := reg.CounterSnapshot()
	if snap == nil {
		return
	}
	w.mu.Lock()
	if w.obsTotals == nil {
		w.obsTotals = make(map[string]uint64)
	}
	obs.MergeCounters(w.obsTotals, snap)
	w.mu.Unlock()
}

// heartbeatLoop extends leases and reports counters until stopped.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		ttl := w.ttl
		w.mu.Unlock()
		every := ttl / 3
		if every < 50*time.Millisecond {
			every = 50 * time.Millisecond
		}
		if every > 5*time.Second {
			every = 5 * time.Second
		}
		if !w.sleep(ctx, every) {
			return
		}
		w.heartbeat()
	}
}

// heartbeat sends one heartbeat and executes any cancellations it returns.
func (w *Worker) heartbeat() {
	w.mu.Lock()
	ids := make([]uint64, 0, len(w.cancels))
	for id := range w.cancels {
		ids = append(ids, id)
	}
	var counters map[string]uint64
	if len(w.obsTotals) > 0 {
		counters = make(map[string]uint64, len(w.obsTotals))
		for k, v := range w.obsTotals {
			counters[k] = v
		}
	}
	w.mu.Unlock()
	// Ship retained spans with the heartbeat; a failed post requeues them so
	// a flaky network delays the fleet trace instead of losing pieces of it.
	spans := w.tracer.Drain()
	var resp HeartbeatResponse
	err := w.post("/v1/heartbeat", HeartbeatRequest{Worker: w.cfg.Name, Leases: ids, Counters: counters, Spans: spans}, &resp)
	if err != nil {
		w.tracer.Requeue(spans)
		return
	}
	for _, id := range resp.Cancel {
		w.mu.Lock()
		cancel := w.cancels[id]
		w.mu.Unlock()
		if cancel != nil {
			// The job finished elsewhere: stop burning cycles on it. The
			// executor releases the lease when it unwinds.
			cancel()
		}
	}
}

func (w *Worker) lease(req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := w.post("/v1/lease", req, &resp)
	return resp, err
}

// complete delivers an outcome, retrying through coordinator restarts: the
// result in hand is the product of real simulation time and is not dropped
// for a transient connection error. Retry sleeps watch ctx so a draining
// worker does not stall on a dead coordinator; when ctx dies mid-wait, one
// final immediate attempt still delivers the result on a live network, and
// otherwise the journal's requeue covers the loss.
func (w *Worker) complete(ctx context.Context, l Lease, o Outcome) {
	env, err := Seal(o)
	if err != nil {
		w.logf("worker %s: sealing outcome for %.12s: %v", w.cfg.Name, o.Key, err)
		return
	}
	req := CompleteRequest{Worker: w.cfg.Name, Lease: l.ID, Key: o.Key, Env: env}
	if w.tracer != nil {
		req.FinishedUS = trace.UnixMicro(w.tracer.Now())
		req.Spans = w.tracer.Drain()
	}
	bo := newBackoff(w.seed()^l.ID, 100*time.Millisecond, 2*time.Second)
	for attempt := 0; attempt < 8; attempt++ {
		var resp CompleteResponse
		err := w.post("/v1/complete", req, &resp)
		if err == nil {
			return
		}
		if attempt == 7 {
			w.logf("worker %s: delivering %.12s failed: %v", w.cfg.Name, o.Key, err)
			w.tracer.Requeue(req.Spans)
			return
		}
		wait := bo.next()
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			wait += se.RetryAfter
		}
		if !w.sleep(ctx, wait) {
			if w.post("/v1/complete", req, &resp) != nil {
				w.logf("worker %s: delivering %.12s abandoned at drain (lease rides out in the journal)", w.cfg.Name, o.Key)
				w.tracer.Requeue(req.Spans)
			}
			return
		}
	}
}

// release returns one lease without an outcome, best-effort.
func (w *Worker) release(id uint64) {
	w.post("/v1/release", ReleaseRequest{Worker: w.cfg.Name, Leases: []uint64{id}}, &struct{}{})
}

// post is one JSON round trip to the coordinator.
func (w *Worker) post(path string, req, resp any) error {
	return postJSON(w.hc, w.cfg.Coordinator+path, req, resp)
}

// postJSON is the shared HTTP JSON call used by workers and clients. A
// non-200 reply becomes a *StatusError carrying any Retry-After hint.
func postJSON(hc *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		se := &StatusError{URL: url, Code: r.StatusCode}
		if secs, err := strconv.Atoi(r.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, r.Body)
		return se
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// sleepCtx sleeps d, returning false if ctx died first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
