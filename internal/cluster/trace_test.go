package cluster

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/obs/trace"
	"repro/internal/report"
)

// TestFleetTraceLoopback runs a batch on a traced loopback fleet (traced
// coordinator, two tracing workers) and checks the whole observability
// chain: results stay DeepEqual-identical to an untraced serial run, the
// merged Perfetto export validates with one pid per fleet process and
// lease→attempt→complete flow arrows, every span carries the campaign ID,
// and the phase-latency histograms show up on /metrics.
func TestFleetTraceLoopback(t *testing.T) {
	jobs := testJobs()
	local, err := (&exp.Runner{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Name:     "loopback",
		LeaseTTL: 5 * time.Second,
		Tracer:   trace.New("coordinator"),
	}
	co, url, stop := startFabric(t, cfg, 2, WorkerConfig{Trace: true})
	client := &Client{URL: url, Name: "trace-client", Poll: 20 * time.Millisecond}
	got, err := client.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("job %d: %v", i, got[i].Err)
		}
		if !reflect.DeepEqual(local[i].Result, got[i].Result) {
			t.Errorf("job %d: traced fleet result diverged from untraced serial run", i)
		}
	}

	campaign := co.Campaign()
	if campaign == "" {
		t.Fatal("coordinator minted no campaign ID")
	}

	// Phase-latency histograms on /metrics.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, m := range []string{
		"tls_fleet_queue_wait_ms", "tls_fleet_lease_hold_ms",
		"tls_fleet_attempt_wall_ms", "tls_fleet_result_delivery_ms",
		"tls_fleet_spans_collected",
	} {
		if !strings.Contains(metrics, m) {
			t.Errorf("/metrics missing %s", m)
		}
	}

	// The merged fleet trace: coordinator lanes plus worker lanes.
	spans := co.FleetSpans()
	if len(spans) == 0 {
		t.Fatal("no fleet spans collected")
	}
	byProc := map[string]int{}
	withCampaign := 0
	for _, sp := range spans {
		byProc[sp.Proc]++
		if sp.Campaign == campaign {
			withCampaign++
		}
	}
	if byProc["coordinator"] == 0 {
		t.Error("no coordinator spans")
	}
	workerProcs := 0
	for p := range byProc {
		if p != "coordinator" {
			workerProcs++
		}
	}
	if workerProcs == 0 {
		t.Errorf("no worker spans shipped home; procs: %v", byProc)
	}
	if withCampaign == 0 {
		t.Error("no span carries the campaign ID")
	}

	kinds := map[string]bool{}
	for _, sp := range spans {
		kinds[sp.Kind] = true
	}
	for _, k := range []string{trace.KindQueue, trace.KindLease, trace.KindAttempt, trace.KindComplete} {
		if !kinds[k] {
			t.Errorf("fleet spans missing kind %q", k)
		}
	}

	path := filepath.Join(t.TempDir(), "fleet.trace.json")
	if err := co.WriteFleetTrace(nil, path); err != nil {
		t.Fatal(err)
	}
	stop()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := report.ValidatePerfetto(f)
	if err != nil {
		t.Fatalf("fleet trace does not validate: %v", err)
	}
	if st.Processes < 2 {
		t.Errorf("fleet trace has %d processes, want coordinator + workers", st.Processes)
	}
	if st.FlowStarts == 0 {
		t.Error("fleet trace has no lease→attempt→complete flow arrows")
	}
	if st.SpanIDs == 0 {
		t.Error("fleet trace events carry no span correlation IDs")
	}
}

// TestFleetTraceWithoutTracerErrors locks the no-tracer diagnostics: a
// coordinator without a Tracer must refuse to write an empty fleet trace
// rather than produce a file that validates but shows nothing.
func TestFleetTraceWithoutTracerErrors(t *testing.T) {
	co := NewCoordinator(Config{Name: "untraced"})
	if err := co.WriteFleetTrace(nil, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("WriteFleetTrace succeeded with no spans")
	}
}
