package cluster

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestCoordinatorResume kills a coordinator mid-campaign (journal left
// behind, process state gone) and verifies that a new coordinator seeded
// from exp.LoadCampaign answers the finished jobs — including a chaotic one
// whose verdict only exists in the journal — without leasing anything, and
// re-queues the job whose lease died with the old process.
func TestCoordinatorResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "campaign.wal")
	cache, err := exp.NewCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs()
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = SpecOf(j)
	}
	chaotic := specs[4] // Faults + Invariants

	j1, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	co1 := NewCoordinator(Config{Name: "resume", Cache: cache, Journal: j1})
	co1.Preload(specs)
	lr := co1.LeaseJobs(LeaseRequest{Worker: "w1", Max: len(specs)})
	if len(lr.Leases) != len(specs) {
		t.Fatalf("leased %d of %d", len(lr.Leases), len(specs))
	}
	// Finish everything except the job in lr.Leases[0]: its lease dies with
	// the coordinator. Chaotic outcomes carry a verdict.
	for _, l := range lr.Leases[1:] {
		o := Outcome{Key: l.Spec.Key, Worker: "w1"}
		if l.Spec.Chaotic() {
			o.Chaos = &exp.ChaosVerdict{Violations: 3, Faults: 7, FaultMix: "test"}
		}
		resp := co1.Complete(CompleteRequest{Worker: "w1", Lease: l.ID, Key: l.Spec.Key, Env: sealOutcome(t, o)})
		if !resp.Accepted || resp.Duplicate {
			t.Fatalf("complete %.12s: %+v", l.Spec.Key, resp)
		}
	}
	interrupted := lr.Leases[0].Spec.Key
	j1.Close() // SIGKILL: no graceful shutdown beyond the synced WAL

	st, err := exp.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != len(specs)-1 {
		t.Fatalf("replayed %d done, want %d", len(st.Done), len(specs)-1)
	}
	if st.Leases[interrupted] != "w1" {
		t.Fatalf("dangling lease lost: %+v", st.Leases)
	}
	if _, ok := st.Outcomes[chaotic.Key]; !ok {
		t.Fatal("chaotic outcome not journaled")
	}

	j2, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	co2 := NewCoordinator(Config{Name: "resume", Cache: cache, Journal: j2, State: st})
	resp := co2.Preload(specs)
	if resp.Done != len(specs)-1 {
		t.Fatalf("resumed submit settled %d, want %d", resp.Done, len(specs)-1)
	}
	if co2.ctr.resumeHits != uint64(len(specs)-1) {
		t.Fatalf("resume hits: %+v", co2.ctr)
	}
	res := co2.Results(ResultsRequest{Keys: []string{chaotic.Key}})
	var o Outcome
	if err := res.Results[chaotic.Key].Open(&o); err != nil {
		t.Fatal(err)
	}
	if o.Chaos == nil || o.Chaos.Violations != 3 || o.Chaos.FaultMix != "test" {
		t.Fatalf("chaotic verdict lost across resume: %+v", o.Chaos)
	}
	// The one unfinished job is pending again and leasable by a new worker.
	lr2 := co2.LeaseJobs(LeaseRequest{Worker: "w2", Max: len(specs)})
	if len(lr2.Leases) != 1 || lr2.Leases[0].Spec.Key != interrupted {
		t.Fatalf("interrupted job not re-leased: %+v", lr2)
	}
}

// TestWorkerDrainReleasesLease cancels a worker mid-simulation and verifies
// the in-flight job's lease is returned to the coordinator and re-queued
// rather than completed or lost.
func TestWorkerDrainReleasesLease(t *testing.T) {
	co := NewCoordinator(Config{Name: "drain", StragglerAfter: -1, StealAfter: -1})
	addr, err := co.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()

	// One deliberately slow job (~500ms) so the cancel lands mid-run.
	slow := exp.Job{
		Machine: machine.CMP8(), Scheme: core.MultiTMVLazy,
		Profile: workload.Tree().Scale(1, 4, 1), Seed: 1,
	}
	co.Preload([]JobSpec{SpecOf(slow)})

	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerConfig{Name: "w1", Coordinator: "http://" + addr, Poll: 10 * time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for co.Counts().Leased != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never leased")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // let the simulation start
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}

	n := co.Counts()
	if n.Leased != 0 || n.Pending != 1 || n.Done != 0 {
		t.Fatalf("after drain: %+v", n)
	}
	if co.ctr.leasesReturned == 0 {
		t.Fatalf("lease not returned: %+v", co.ctr)
	}
}
