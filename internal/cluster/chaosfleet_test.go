package cluster

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster/chaosnet"
	"repro/internal/exp"
)

// hostilePlan is the in-test equivalent of the CLI hostile profile, with a
// bounded fault budget so the network eventually heals and the campaign is
// guaranteed to converge. Corruption is deliberately absent: byzantine
// behaviour is injected through a dedicated worker instead, so the client's
// spec-rejection healing is not racing the breaker drill.
func hostilePlan(seed uint64) *chaosnet.Plan {
	return chaosnet.New(chaosnet.Config{
		Seed:          seed,
		DropProb:      0.15,
		BlackholeProb: 0.10,
		DelayProb:     0.20,
		DelayMax:      25 * time.Millisecond,
		DupProb:       0.12,
		ReorderProb:   0.10,
		ReorderHold:   10 * time.Millisecond,
		TruncProb:     0.10,
		MaxFaults:     60,
	})
}

// TestChaosFleetParity is the end-to-end degradation drill: a campaign run
// through a coordinator behind a refusing/delaying listener, first poisoned
// by a byzantine worker (every request body corrupted) until the circuit
// breaker quarantines it, then finished by healthy workers and a client on
// hostile transports — and the results must be byte-identical to a serial
// local run.
func TestChaosFleetParity(t *testing.T) {
	jobs := testJobs()
	local, err := (&exp.Runner{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := exp.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(Config{
		Name: "chaosparity", Cache: cache,
		LeaseTTL:      2 * time.Second,
		QuarantineFor: 500 * time.Millisecond,
	})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The coordinator's own edge misbehaves too: one accept-refusing
	// partition plus connection delays.
	co.Serve(&chaosnet.Listener{
		Listener: raw,
		Plan: chaosnet.New(chaosnet.Config{
			Seed: 11, DelayProb: 0.2, DelayMax: 10 * time.Millisecond,
			Partitions: []chaosnet.Partition{{Start: 100 * time.Millisecond, Dur: 300 * time.Millisecond}},
			MaxFaults:  40,
		}),
		Self: "coordinator",
		Logf: t.Logf,
	})
	defer co.Stop()
	url := "http://" + raw.Addr().String()

	// Seed the queue so the byzantine worker has something to poison; the
	// client later re-submits the same specs idempotently.
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = SpecOf(j)
	}
	if resp := co.Preload(specs); resp.Accepted != len(jobs) {
		t.Fatalf("preload: %+v", resp)
	}

	// Phase 1: the byzantine worker. Every request it sends has one digit
	// flipped, so its completions are CRC garbage; it must end up
	// quarantined, having contributed nothing.
	byzCtx, byzStop := context.WithCancel(context.Background())
	byz := NewWorker(WorkerConfig{
		Name: "byz", Coordinator: url, Parallel: 3, Poll: 20 * time.Millisecond,
		HTTP: chaosnet.Client(httpClient(0, 0), chaosnet.New(chaosnet.Byzantine(5)), "byz", nil),
	})
	byzDone := make(chan struct{})
	go func() { defer close(byzDone); byz.Run(byzCtx) }()

	quarantined := func() bool { return co.Counts().Quarantined >= 1 }
	for deadline := time.Now().Add(90 * time.Second); !quarantined(); {
		if time.Now().After(deadline) {
			byzStop()
			t.Fatalf("byzantine worker never quarantined: %+v", co.Counts())
		}
		time.Sleep(20 * time.Millisecond)
	}
	byzStop()
	<-byzDone
	co.mu.Lock()
	crcRejected, breakerOpens := co.ctr.crcRejected, co.ctr.breakerOpens
	co.mu.Unlock()
	if crcRejected < 3 || breakerOpens < 1 {
		t.Fatalf("breaker drill: crcRejected=%d breakerOpens=%d", crcRejected, breakerOpens)
	}

	// Phase 2: honest workers behind hostile transports finish the campaign.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var done []chan struct{}
	for i, name := range []string{"good1", "good2"} {
		w := NewWorker(WorkerConfig{
			Name: name, Coordinator: url, Poll: 20 * time.Millisecond, Observe: true,
			HTTP: chaosnet.Client(httpClient(0, 0), hostilePlan(uint64(100+i)), name, nil),
		})
		ch := make(chan struct{})
		done = append(done, ch)
		go func() { defer close(ch); w.Run(ctx) }()
	}
	client := &Client{
		URL: url, Name: "drill", Poll: 20 * time.Millisecond, Seed: 7,
		HTTP: chaosnet.Client(httpClient(0, 0), hostilePlan(900), "client", nil),
		Logf: t.Logf,
	}
	remote, err := client.RunBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for _, ch := range done {
		<-ch
	}

	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d (%s): %v", i, jobs[i].Label(), remote[i].Err)
		}
		if !reflect.DeepEqual(local[i].Result, remote[i].Result) {
			t.Fatalf("job %d (%s): chaos-fleet result differs from local run", i, jobs[i].Label())
		}
		if !reflect.DeepEqual(local[i].Chaos, remote[i].Chaos) {
			t.Fatalf("job %d (%s): chaos verdict differs", i, jobs[i].Label())
		}
	}
	if n := co.Counts(); n.Failed != 0 || n.Pending != 0 || n.Leased != 0 {
		t.Fatalf("campaign census after completion: %+v", n)
	}
}
