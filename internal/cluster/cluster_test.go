package cluster

import (
	"context"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

func tinyProfile() workload.Profile {
	return workload.Tree().Scale(0.05, 0.05, 0.25)
}

// testJobs is a small mixed batch: a sequential baseline, plain speculative
// runs across two schemes, and a chaotic run with fault injection and the
// invariant checker armed.
func testJobs() []exp.Job {
	prof := tinyProfile()
	cfg := machine.CMP8()
	fc := fault.CampaignConfig(3)
	return []exp.Job{
		{Machine: cfg, Profile: prof, Seed: 1, Sequential: true},
		{Machine: cfg, Scheme: core.SingleTEager, Profile: prof, Seed: 1},
		{Machine: cfg, Scheme: core.MultiTMVLazy, Profile: prof, Seed: 1},
		{Machine: cfg, Scheme: core.MultiTMVLazy, Profile: prof, Seed: 2},
		{Machine: cfg, Scheme: core.MultiTSVLazy, Profile: prof, Seed: 1, Faults: &fc, Invariants: true},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	fc := fault.CampaignConfig(7)
	jobs := []exp.Job{
		{Machine: machine.NUMA16(), Scheme: core.MultiTMVLazy, Profile: tinyProfile(), Seed: 1},
		{Machine: machine.NUMA16BigL2(), Scheme: core.MultiTMVLazy, Profile: tinyProfile(), Seed: 2},
		{Machine: machine.CMP8(), Profile: tinyProfile(), Seed: 3, Sequential: true},
		{Machine: machine.ScalableNUMA(8), Scheme: core.SingleTEager, Profile: tinyProfile(), Seed: 4,
			Ablation: exp.Ablation{LineGranularity: true}},
		{Machine: machine.CMP8(), Scheme: core.MultiTSVLazy, Profile: tinyProfile(), Seed: 5,
			Faults: &fc, Invariants: true},
	}
	for i, j := range jobs {
		spec := SpecOf(j)
		back, err := spec.Job()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if back.Key() != j.Key() {
			t.Fatalf("job %d: key changed across the wire", i)
		}
	}
	bad := SpecOf(jobs[0])
	bad.Machine = "PDP11"
	if _, err := bad.Job(); err == nil {
		t.Fatal("unknown machine resolved")
	}
	skewed := SpecOf(jobs[0])
	skewed.Seed++ // sender and receiver now disagree about the job
	if _, err := skewed.Job(); err == nil || !strings.Contains(err.Error(), "key") {
		t.Fatalf("key mismatch not detected: %v", err)
	}
}

func TestEnvelopeChecksum(t *testing.T) {
	env, err := Seal(Outcome{Key: "k", Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	var o Outcome
	if err := env.Open(&o); err != nil || o.Key != "k" {
		t.Fatalf("round trip: %v %+v", err, o)
	}
	env.Payload[2] ^= 0x40
	if err := env.Open(&o); err == nil {
		t.Fatal("tampered envelope opened")
	}
}

// startFabric boots an HTTP coordinator and n workers on the loopback,
// returning the coordinator, its URL, and a shutdown function.
func startFabric(t *testing.T, cfg Config, n int, wcfg WorkerConfig) (*Coordinator, string, func()) {
	t.Helper()
	co := NewCoordinator(cfg)
	addr, err := co.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := wcfg
		w.Coordinator = url
		if w.Name == "" {
			w.Name = "w" + string(rune('1'+i))
		} else {
			w.Name += string(rune('1' + i))
		}
		if w.Poll == 0 {
			w.Poll = 20 * time.Millisecond
		}
		wk := NewWorker(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk.Run(ctx)
		}()
	}
	return co, url, func() {
		cancel()
		wg.Wait()
		co.Stop()
	}
}

// TestFabricParity runs a mixed batch (sequential, plain, and fault-injected
// chaotic jobs) through a coordinator with two observing workers and
// requires results reflect.DeepEqual-identical to a local serial run by
// unobserved workers — the distributed analogue of the observer-effect and
// determinism guarantees.
func TestFabricParity(t *testing.T) {
	jobs := testJobs()
	local, err := (&exp.Runner{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := exp.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, url, stop := startFabric(t, Config{Name: "parity", Cache: cache}, 2, WorkerConfig{Observe: true})
	defer stop()

	client := &Client{URL: url, Poll: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	remote, err := client.RunBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d (%s): %v", i, jobs[i].Label(), remote[i].Err)
		}
		if !reflect.DeepEqual(local[i].Result, remote[i].Result) {
			t.Fatalf("job %d (%s): fleet result differs from local run", i, jobs[i].Label())
		}
		if !reflect.DeepEqual(local[i].Chaos, remote[i].Chaos) {
			t.Fatalf("job %d (%s): chaos verdict differs: local %+v remote %+v",
				i, jobs[i].Label(), local[i].Chaos, remote[i].Chaos)
		}
	}
	if local[4].Chaos == nil {
		t.Fatal("chaotic job produced no verdict")
	}

	// The merged dashboard: fleet counters plus aggregated tls_run_* series
	// from the observing workers.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"tls_fleet_jobs_done 5", "tls_fleet_leases_granted", "tls_fleet_steals",
		"tls_fleet_straggler_reissues", "tls_fleet_dedupe_hits", "tls_run_",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// Idempotent resubmission: every job answers from the fabric's state
	// without re-execution (dedupe on the tracked keys).
	again, err := client.RunBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(remote[i].Result, again[i].Result) {
			t.Fatalf("job %d: resubmission changed the result", i)
		}
	}
}

// fixedClock is an injectable coordinator clock.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fixedClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fixedClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// submitOne registers a single pending job and returns its spec.
func submitOne(t *testing.T, co *Coordinator, seed uint64) JobSpec {
	t.Helper()
	spec := SpecOf(exp.Job{Machine: machine.CMP8(), Scheme: core.MultiTMVLazy, Profile: tinyProfile(), Seed: seed})
	resp, err := co.Submit(SubmitRequest{Jobs: []JobSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Done != 0 {
		t.Fatalf("submit: %+v", resp)
	}
	return spec
}

func sealOutcome(t *testing.T, o Outcome) Envelope {
	t.Helper()
	env, err := Seal(o)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestLeaseExpiryRequeues(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Second, StragglerAfter: -1, StealAfter: -1})
	co.now = clk.now
	spec := submitOne(t, co, 1)

	lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
	if len(lr.Leases) != 1 {
		t.Fatalf("lease: %+v", lr)
	}
	// No heartbeat: the lease dies and the job goes back to the queue.
	clk.advance(2 * time.Second)
	lr2 := co.LeaseJobs(LeaseRequest{Worker: "w2", Max: 1})
	if len(lr2.Leases) != 1 || lr2.Leases[0].Spec.Key != spec.Key {
		t.Fatalf("expired job not re-leased: %+v", lr2)
	}
	if lr2.Leases[0].Speculative {
		t.Fatal("requeued job granted as speculative")
	}
	if co.ctr.leasesExpired != 1 || co.ctr.requeues != 1 {
		t.Fatalf("counters: %+v", co.ctr)
	}
	// The dead worker's late completion still wins: its lease is gone but
	// the result is valid.
	done := co.Complete(CompleteRequest{
		Worker: "w1", Lease: lr.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w1"}),
	})
	if !done.Accepted || done.Duplicate {
		t.Fatalf("late completion: %+v", done)
	}
	// And w2's duplicate is counted, not double-applied.
	dup := co.Complete(CompleteRequest{
		Worker: "w2", Lease: lr2.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w2"}),
	})
	if !dup.Duplicate || co.ctr.dupResults != 1 {
		t.Fatalf("duplicate result not detected: %+v %+v", dup, co.ctr)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Second, StragglerAfter: -1, StealAfter: -1})
	co.now = clk.now
	submitOne(t, co, 1)
	lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
	for i := 0; i < 5; i++ {
		clk.advance(600 * time.Millisecond)
		co.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []uint64{lr.Leases[0].ID}})
	}
	if co.ctr.leasesExpired != 0 {
		t.Fatalf("heartbeated lease expired: %+v", co.ctr)
	}
}

func TestStragglerReissueAndSteal(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Minute, StragglerAfter: 5 * time.Second, StealAfter: 5 * time.Second})
	co.now = clk.now
	spec := submitOne(t, co, 1)

	lr := co.LeaseJobs(LeaseRequest{Worker: "slow", Max: 1})
	if len(lr.Leases) != 1 {
		t.Fatalf("lease: %+v", lr)
	}
	// Not a straggler yet: an idle worker gets nothing.
	if got := co.LeaseJobs(LeaseRequest{Worker: "idle", Max: 1}); len(got.Leases) != 0 {
		t.Fatalf("stole a healthy lease: %+v", got)
	}
	// Past the threshold (heartbeats keep the lease itself alive) the job is
	// re-issued speculatively to the idle worker.
	clk.advance(6 * time.Second)
	co.Heartbeat(HeartbeatRequest{Worker: "slow", Leases: []uint64{lr.Leases[0].ID}})
	got := co.LeaseJobs(LeaseRequest{Worker: "idle", Max: 1})
	if len(got.Leases) != 1 || !got.Leases[0].Speculative || got.Leases[0].Spec.Key != spec.Key {
		t.Fatalf("straggler not re-issued: %+v", got)
	}
	if co.ctr.stragglerReissues != 1 {
		t.Fatalf("counters: %+v", co.ctr)
	}
	// MaxIssues (default 2) caps further duplicates.
	if extra := co.LeaseJobs(LeaseRequest{Worker: "third", Max: 1}); len(extra.Leases) != 0 {
		t.Fatalf("issued past MaxIssues: %+v", extra)
	}
	// The speculative copy wins; the straggler is told to abandon its lease.
	win := co.Complete(CompleteRequest{
		Worker: "idle", Lease: got.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "idle"}),
	})
	if !win.Accepted || win.Duplicate {
		t.Fatalf("winning completion: %+v", win)
	}
	hb := co.Heartbeat(HeartbeatRequest{Worker: "slow", Leases: []uint64{lr.Leases[0].ID}})
	if len(hb.Cancel) != 1 || hb.Cancel[0] != lr.Leases[0].ID {
		t.Fatalf("straggler not cancelled: %+v", hb)
	}
}

func TestCompleteRejectsCorruptEnvelope(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Minute, StragglerAfter: -1, StealAfter: -1})
	co.now = clk.now
	spec := submitOne(t, co, 1)
	lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
	env := sealOutcome(t, Outcome{Key: spec.Key, Worker: "w1"})
	env.Payload[2] ^= 0x40
	resp := co.Complete(CompleteRequest{Worker: "w1", Lease: lr.Leases[0].ID, Key: spec.Key, Env: env})
	if resp.Accepted {
		t.Fatal("corrupt envelope accepted")
	}
	if co.ctr.crcRejected != 1 {
		t.Fatalf("counters: %+v", co.ctr)
	}
	// The job survives the bad body and is re-leasable.
	lr2 := co.LeaseJobs(LeaseRequest{Worker: "w2", Max: 1})
	if len(lr2.Leases) != 1 || lr2.Leases[0].Spec.Key != spec.Key {
		t.Fatalf("job lost after CRC rejection: %+v", lr2)
	}
}

func TestTimeoutFailsPermanently(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Minute, StragglerAfter: -1, StealAfter: -1})
	co.now = clk.now
	spec := submitOne(t, co, 1)
	lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
	co.Complete(CompleteRequest{
		Worker: "w1", Lease: lr.Leases[0].ID, Key: spec.Key,
		Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w1", Err: "job hung", TimedOut: true}),
	})
	res := co.Results(ResultsRequest{Keys: []string{spec.Key}})
	env, ok := res.Results[spec.Key]
	if !ok {
		t.Fatalf("timed-out job still pending: %+v", res)
	}
	var o Outcome
	if err := env.Open(&o); err != nil || !o.TimedOut {
		t.Fatalf("outcome: %v %+v", err, o)
	}
	if n := co.Counts(); n.Failed != 1 {
		t.Fatalf("counts: %+v", n)
	}
}

func TestTransientFailureRetriesThenFails(t *testing.T) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	co := NewCoordinator(Config{LeaseTTL: time.Minute, StragglerAfter: -1, StealAfter: -1})
	co.now = clk.now
	spec := submitOne(t, co, 1)
	for round := 1; round <= 2; round++ {
		lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1})
		if len(lr.Leases) != 1 {
			t.Fatalf("round %d: job not leasable: %+v", round, lr)
		}
		co.Complete(CompleteRequest{
			Worker: "w1", Lease: lr.Leases[0].ID, Key: spec.Key,
			Env: sealOutcome(t, Outcome{Key: spec.Key, Worker: "w1", Err: "panic"}),
		})
	}
	// FailLimit (default 2) reached: permanently failed, no more leases.
	if lr := co.LeaseJobs(LeaseRequest{Worker: "w1", Max: 1}); len(lr.Leases) != 0 {
		t.Fatalf("failed job still leasable: %+v", lr)
	}
	if n := co.Counts(); n.Failed != 1 {
		t.Fatalf("counts: %+v", n)
	}
}
