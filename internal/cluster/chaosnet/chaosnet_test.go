package chaosnet

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// planAt arms a plan on an injectable clock; move *off to travel in time.
func planAt(cfg Config) (*Plan, *time.Duration) {
	p := New(cfg)
	off := new(time.Duration)
	base := time.Unix(1000, 0)
	p.SetClock(func() time.Time { return base.Add(*off) })
	return p, off
}

// SetClock re-anchors the partition schedule at the virtual present: windows
// open on virtual elapsed time, so an hour-long schedule runs in microseconds
// and wall-clock jitter cannot shift an activation edge.
func TestSetClockReanchorsWindows(t *testing.T) {
	p := New(Config{Seed: 1, Partitions: []Partition{{Start: time.Hour, Dur: time.Hour, Mode: Refuse}}})
	base := time.Unix(5000, 0)
	off := new(time.Duration)
	p.SetClock(func() time.Time { return base.Add(*off) })
	if v := p.Verdict("w"); v.Refuse {
		t.Fatalf("window opened before its virtual start: %+v", v)
	}
	*off = 90 * time.Minute
	if v := p.Verdict("w"); !v.Refuse {
		t.Fatalf("window closed inside its virtual span: %+v", v)
	}
	*off = 3 * time.Hour
	if v := p.Verdict("w"); v.Refuse {
		t.Fatalf("window open past its virtual end: %+v", v)
	}
}

func TestVerdictStreamReplays(t *testing.T) {
	cfg := Hostile(42)
	cfg.Partitions = nil // windows are time-driven; the stream is what replays
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		va, vb := a.Verdict("w"), b.Verdict("w")
		if va != vb {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, va, vb)
		}
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverged: %d vs %d", a.Total(), b.Total())
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, b := New(Hostile(1)), New(Hostile(2))
	for i := 0; i < 500; i++ {
		if a.Verdict("w") != b.Verdict("w") {
			return
		}
	}
	t.Fatal("seeds 1 and 2 drew identical verdicts for 500 RPCs")
}

func TestHostileProfileIsReproducible(t *testing.T) {
	a, b := Hostile(7), Hostile(7)
	if a.String() != b.String() {
		t.Fatalf("Hostile(7) not stable:\n%s\n%s", a.String(), b.String())
	}
	if !a.Enabled() {
		t.Fatal("Hostile profile should be enabled")
	}
	if len(a.Partitions) != 2 {
		t.Fatalf("Hostile profile wants 2 partitions, got %d", len(a.Partitions))
	}
}

func TestPartitionWindows(t *testing.T) {
	cfg := Config{
		Seed: 1,
		Partitions: []Partition{
			{Start: 100 * time.Millisecond, Dur: 50 * time.Millisecond, Mode: Refuse},
			{Start: 200 * time.Millisecond, Dur: 50 * time.Millisecond, Mode: BlackholeResp, Peer: "w1"},
		},
	}
	p, off := planAt(cfg)

	if v := p.Verdict("w1"); v.Refuse || v.Blackhole {
		t.Fatalf("before any window: %+v", v)
	}
	*off = 120 * time.Millisecond
	if v := p.Verdict("w1"); !v.Refuse {
		t.Fatalf("inside refuse window: %+v", v)
	}
	if v := p.Verdict("w2"); !v.Refuse {
		t.Fatalf("peerless window should hit everyone: %+v", v)
	}
	*off = 220 * time.Millisecond
	if v := p.Verdict("w1"); !v.Blackhole || v.Refuse {
		t.Fatalf("inside asymmetric window: %+v", v)
	}
	if v := p.Verdict("w2"); v.Blackhole || v.Refuse {
		t.Fatalf("asymmetric window pinned to w1 hit w2: %+v", v)
	}
	*off = 400 * time.Millisecond
	if v := p.Verdict("w1"); v.Refuse || v.Blackhole {
		t.Fatalf("after all windows: %+v", v)
	}
	if p.Count(Refused) == 0 {
		t.Fatal("refused count not recorded")
	}
	if p.Total() != 0 {
		t.Fatalf("partition windows must not spend budget, total=%d", p.Total())
	}
}

func TestBudgetExhaustionHealsNetwork(t *testing.T) {
	p := New(Config{Seed: 3, DropProb: 1, MaxFaults: 5})
	for i := 0; i < 5; i++ {
		if v := p.Verdict("w"); !v.Drop {
			t.Fatalf("draw %d: expected drop, got %+v", i, v)
		}
	}
	for i := 0; i < 50; i++ {
		if v := p.Verdict("w"); v != (Verdict{}) {
			t.Fatalf("budget spent but verdict %d dirty: %+v", i, v)
		}
	}
	if p.Total() != 5 || p.Count(Drop) != 5 {
		t.Fatalf("total=%d drop=%d, want 5/5", p.Total(), p.Count(Drop))
	}
}

func TestCorruptBodyKeepsJSONBreaksCRC(t *testing.T) {
	type msg struct {
		Key  string `json:"key"`
		Seed int    `json:"seed"`
		Vals []int  `json:"vals"`
	}
	table := crc32.MakeTable(crc32.Castagnoli)
	p := New(Config{Seed: 9, CorruptProb: 1, MaxFaults: 1 << 20})
	for i := 0; i < 100; i++ {
		body, err := json.Marshal(msg{Key: "k-1234", Seed: 987654, Vals: []int{1, 22, 333}})
		if err != nil {
			t.Fatal(err)
		}
		before := crc32.Checksum(body, table)
		if !p.CorruptBody(body) {
			t.Fatal("body with digits not corrupted")
		}
		if !json.Valid(body) {
			t.Fatalf("corrupted body is invalid JSON: %s", body)
		}
		if crc32.Checksum(body, table) == before {
			t.Fatal("corruption did not change the checksum")
		}
		var m msg
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("corrupted body no longer decodes: %v", err)
		}
	}
	if p.CorruptBody([]byte(`{"a":true}`)) {
		t.Fatal("digitless body should report no corruption")
	}
}

func TestTransportDupDelivers(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{
		Plan: New(Config{Seed: 5, DupProb: 1, MaxFaults: 1}),
		Self: "client",
	}}
	for i := 0; i < 2; i++ {
		resp, err := hc.Post(srv.URL, "application/json", bytes.NewReader([]byte(`{"n":1}`)))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// First request duplicated (budget 1), second clean: 3 deliveries total.
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d deliveries, want 3", got)
	}
}

func TestTransportBlackholeLosesResponseNotRequest(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{
		Plan: New(Config{Seed: 5, BlackholeProb: 1, MaxFaults: 1}),
		Self: "client",
	}}
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("blackholed RPC should error at the sender")
	}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-budget request: %v", err)
	}
	resp.Body.Close()
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (blackhole still delivers)", got)
	}
}

func TestTransportTruncateTearsResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"key":"abcdef","value":123456789}`)
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{
		Plan: New(Config{Seed: 5, TruncProb: 1, MaxFaults: 1}),
		Self: "client",
	}}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
		t.Fatal("truncated response decoded cleanly")
	}
	resp.Body.Close()
}

func TestTransportDropAndRefuse(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	plan, off := planAt(Config{
		Seed:       5,
		DropProb:   1,
		MaxFaults:  1,
		Partitions: []Partition{{Start: time.Hour, Dur: time.Hour, Mode: Refuse}},
	})
	hc := &http.Client{Transport: &Transport{Plan: plan, Self: "client"}}
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("dropped request should error")
	}
	*off = 90 * time.Minute
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("partitioned request should error")
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests, want 0", got)
	}
}

func TestTransportReorderHoldReleasesAlone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{
		Plan: New(Config{Seed: 5, ReorderProb: 1, ReorderHold: 10 * time.Millisecond, MaxFaults: 1}),
		Self: "client",
	}}
	start := time.Now()
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("held request released after %v, want >= hold bound", elapsed)
	}
}

func TestListenerRefusesThenServes(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &Listener{
		Listener: inner,
		Plan:     New(Config{Seed: 5, DropProb: 1, MaxFaults: 2}),
		Self:     "coordinator",
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	// First two connections are refused (closed on accept): reads see EOF.
	for i := 0; i < 2; i++ {
		c := dial()
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("conn %d: expected refuse, got data", i)
		}
		c.Close()
	}
	// Budget spent: the echo server is reachable again.
	c := dial()
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo after heal: %q, %v", buf, err)
	}
}

func TestProfileNames(t *testing.T) {
	for _, name := range []string{"hostile", "campaign", "byzantine", " Hostile "} {
		if _, err := Profile(name, 1); err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
	}
	if _, err := Profile("gentle", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	b := Byzantine(1)
	if b.CorruptProb != 1 {
		t.Fatal("byzantine profile must corrupt every request")
	}
}
