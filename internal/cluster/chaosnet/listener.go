package chaosnet

import (
	"net"
	"time"
)

// Listener wraps a net.Listener with accept-side chaos: inside a Refuse
// partition window (or on a Drop draw) an accepted connection is closed
// immediately — the dialer sees a reset, exactly like a peer behind a
// partition — and the accept loop keeps going. Faults are never surfaced
// as Accept errors, because http.Server.Serve treats a non-temporary
// Accept error as fatal and would stop serving for good; a chaotic
// network degrades service, it must not end it.
type Listener struct {
	net.Listener
	// Plan supplies accept verdicts; nil passes every connection through.
	Plan *Plan
	// Self names this endpoint for partition matching (e.g. "coordinator").
	Self string
	// Logf, when non-nil, receives one line per refused connection.
	Logf func(format string, args ...any)
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil || l.Plan == nil {
			return conn, err
		}
		v := l.Plan.Accept(l.Self)
		if v.Refuse {
			if l.Logf != nil {
				l.Logf("chaosnet %s: connection from %s refused", l.Self, conn.RemoteAddr())
			}
			conn.Close()
			continue
		}
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
		return conn, nil
	}
}
