package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// Transport is a fault-injecting http.RoundTripper. It buffers each request
// body, draws a verdict from the plan, and then drops, delays, holds,
// duplicates, corrupts or forwards the request — and loses or truncates the
// response — accordingly. Errors it synthesizes are ordinary transport
// errors, indistinguishable from a flaky network to the caller, which is
// the point: the fabric's retry, idempotency and CRC layers must absorb
// them without help.
type Transport struct {
	// Base performs real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Plan supplies verdicts; a nil Plan forwards everything untouched.
	Plan *Plan
	// Self names this endpoint for partition matching (e.g. the worker
	// name, or "client").
	Self string
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	// gate implements reordering: a held request waits on the gate that was
	// current when it drew its verdict; every request that proceeds to send
	// replaces and closes the gate, releasing any holder it overtook.
	gateMu sync.Mutex
	gate   chan struct{}
}

var (
	errDropped   = errors.New("chaosnet: request dropped")
	errBlackhole = errors.New("chaosnet: response lost")
	errRefused   = errors.New("chaosnet: connection refused (partition)")
)

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Plan == nil {
		return t.base().RoundTrip(req)
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	v := t.Plan.Verdict(t.Self)
	switch {
	case v.Refuse:
		t.logf("chaosnet %s: %s %s refused (partition)", t.Self, req.Method, req.URL.Path)
		return nil, errRefused
	case v.Drop:
		t.logf("chaosnet %s: %s %s dropped", t.Self, req.Method, req.URL.Path)
		return nil, errDropped
	}
	if v.Hold {
		t.hold(req)
	}
	if v.Delay > 0 {
		t.logf("chaosnet %s: %s %s delayed %v", t.Self, req.Method, req.URL.Path, v.Delay)
		if !sleepReq(req, v.Delay) {
			return nil, req.Context().Err()
		}
	}
	if v.Corrupt && len(body) > 0 {
		if t.Plan.CorruptBody(body) {
			t.logf("chaosnet %s: %s %s corrupted", t.Self, req.Method, req.URL.Path)
		}
	}
	resp, err := t.send(req, body)
	if v.Dup {
		// Deliver the (possibly corrupted) request a second time; the
		// duplicate's response is discarded. The receiver must treat the
		// repeat as idempotent — dedupe, dup-result counting, absolute
		// counters — for the campaign to stay correct.
		t.logf("chaosnet %s: %s %s duplicated", t.Self, req.Method, req.URL.Path)
		if dresp, derr := t.send(req, body); derr == nil {
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
	}
	if err != nil {
		return nil, err
	}
	if v.Blackhole {
		t.logf("chaosnet %s: %s %s response lost", t.Self, req.Method, req.URL.Path)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errBlackhole
	}
	if v.Trunc {
		t.logf("chaosnet %s: %s %s response truncated", t.Self, req.Method, req.URL.Path)
		resp.Body = truncateBody(resp.Body)
	}
	return resp, nil
}

// send performs one real round trip with a fresh body reader, announcing
// the send to any held (reordered) request first.
func (t *Transport) send(req *http.Request, body []byte) (*http.Response, error) {
	t.announce()
	r := req.Clone(req.Context())
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		r.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	return t.base().RoundTrip(r)
}

// announce closes the current reorder gate (releasing any held request this
// send overtakes) and installs a fresh one.
func (t *Transport) announce() {
	t.gateMu.Lock()
	if t.gate != nil {
		close(t.gate)
	}
	t.gate = make(chan struct{})
	t.gateMu.Unlock()
}

// hold parks the request until another request overtakes it, ReorderHold
// elapses, or the request's context dies.
func (t *Transport) hold(req *http.Request) {
	t.gateMu.Lock()
	if t.gate == nil {
		t.gate = make(chan struct{})
	}
	gate := t.gate
	t.gateMu.Unlock()
	holdFor := t.Plan.Config().ReorderHold
	if holdFor <= 0 {
		holdFor = 20 * time.Millisecond
	}
	t.logf("chaosnet %s: %s %s held for reorder", t.Self, req.Method, req.URL.Path)
	timer := time.NewTimer(holdFor)
	defer timer.Stop()
	select {
	case <-gate: // overtaken: genuine reordering happened
	case <-timer.C: // nobody came: release on the hold bound
	case <-req.Context().Done():
	}
}

// sleepReq sleeps d, returning false if the request's context died first.
func sleepReq(req *http.Request, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-req.Context().Done():
		return false
	}
}

// truncateBody cuts a response body roughly in half, so the receiver's
// decoder sees a torn read and must reject rather than half-apply it.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, err := io.ReadAll(body)
	body.Close()
	if err != nil || len(data) < 2 {
		return io.NopCloser(bytes.NewReader(nil))
	}
	return io.NopCloser(bytes.NewReader(data[:len(data)/2]))
}

// Client wraps an existing http.Client with a chaos transport, preserving
// its timeout. A nil plan returns hc unchanged.
func Client(hc *http.Client, plan *Plan, self string, logf func(string, ...any)) *http.Client {
	if plan == nil {
		return hc
	}
	var base http.RoundTripper
	var timeout time.Duration
	if hc != nil {
		base = hc.Transport
		timeout = hc.Timeout
	}
	return &http.Client{
		Timeout:   timeout,
		Transport: &Transport{Base: base, Plan: plan, Self: self, Logf: logf},
	}
}
