// Package chaosnet injects seeded, deterministic network faults into the
// campaign fabric's coordinator<->worker RPCs. It is the process-boundary
// sibling of internal/fault: where a fault.Plan decides at hook points
// inside the simulator whether to squash, delay or overflow, a chaosnet.Plan
// decides at the HTTP layer whether to drop, delay, duplicate, reorder,
// truncate or corrupt a message — plus time-windowed partition schedules
// (worker isolated, coordinator unreachable, asymmetric request-only
// delivery).
//
// Two properties carry over from the fault package:
//
//   - Replayability: a Plan's decision stream and its partition schedule are
//     pure functions of its Config, so the same -chaos-seed arms the
//     identical fault schedule on every run. (Unlike the single-threaded
//     simulator, the network is concurrent: which RPC draws which verdict
//     depends on goroutine interleaving, so chaosnet promises an identical
//     schedule, not an identical interleaving — the fabric's own determinism
//     guarantee, artifacts byte-identical to a serial run, is what must hold
//     under ANY interleaving.)
//   - Boundedness: every plan carries a MaxFaults budget; once spent, all
//     verdicts are clean and the network heals, so an injection storm cannot
//     livelock a campaign. Partition windows are schedule-driven and end on
//     their own; they do not consume budget.
//
// Every fault class maps to a failure the fabric claims to survive:
//
//	Drop      request vanishes before the peer sees it (lost packet)
//	Blackhole request delivered, response lost (the duplicate-delivery
//	          generator: the sender must retry an already-applied RPC)
//	Delay     request held 1..DelayMax before sending (congestion)
//	Dup       request delivered twice (retransmission storm)
//	Reorder   request held until the NEXT request overtakes it (or
//	          ReorderHold elapses), producing genuine pairwise reordering
//	Truncate  response body cut short (torn read; decoder must reject)
//	Corrupt   one digit of the request body is flipped — the outer JSON
//	          stays well-formed, so the corruption can only be caught by
//	          the envelope CRC (a byzantine sender looks exactly like this)
//
// Corruption targets requests and truncation targets responses on purpose:
// a corrupted response could silently rewrite a leased JobSpec before the
// worker re-hashes it, turning transport noise into a permanent job failure,
// whereas corrupted requests always land on a CRC- or idempotency-protected
// ingest path.
package chaosnet

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind names one network-fault class.
type Kind uint8

const (
	Drop Kind = iota
	Blackhole
	Delay
	Dup
	Reorder
	Truncate
	Corrupt
	// Refused counts connections rejected by a partition window (schedule-
	// driven; does not consume the probabilistic budget).
	Refused

	numKinds
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Refused:
		return "refused"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mode is what a partition window does to matching traffic.
type Mode uint8

const (
	// Refuse fails the RPC immediately (connection refused / peer gone).
	Refuse Mode = iota
	// BlackholeResp delivers requests but discards responses — the
	// asymmetric partition, and the nastiest: every RPC in the window is
	// applied exactly once on the far side yet looks failed to the sender.
	BlackholeResp
)

func (m Mode) String() string {
	if m == BlackholeResp {
		return "blackhole-resp"
	}
	return "refuse"
}

// Partition is one scheduled outage window, relative to the plan's arming.
type Partition struct {
	// Start and Dur bound the window ([Start, Start+Dur) since Arm).
	Start, Dur time.Duration
	// Peer selects whose traffic the window hits: "" matches every
	// endpoint, otherwise the Transport/Listener whose Self equals Peer.
	Peer string
	// Mode is what happens to matching traffic inside the window.
	Mode Mode
}

func (p Partition) String() string {
	peer := p.Peer
	if peer == "" {
		peer = "*"
	}
	return fmt.Sprintf("%s@%v+%v:%s", peer, p.Start, p.Dur, p.Mode)
}

// Config parameterizes one plan. The zero value injects nothing;
// probabilities are per RPC.
type Config struct {
	// Seed drives the plan's private decision stream.
	Seed uint64
	// DropProb is the chance a request is dropped before it is sent.
	DropProb float64
	// BlackholeProb is the chance a delivered request's response is lost.
	BlackholeProb float64
	// DelayProb is the chance a request is held 1..DelayMax before sending.
	DelayProb float64
	DelayMax  time.Duration
	// DupProb is the chance a request is delivered twice.
	DupProb float64
	// ReorderProb is the chance a request is held until the next request
	// overtakes it, or ReorderHold elapses with no overtaker.
	ReorderProb float64
	ReorderHold time.Duration
	// TruncProb is the chance a response body is cut short.
	TruncProb float64
	// CorruptProb is the chance one digit of the request body is flipped.
	CorruptProb float64
	// Partitions is the outage schedule (windows relative to Arm).
	Partitions []Partition
	// MaxFaults bounds total probabilistic injections (0 = DefaultBudget).
	MaxFaults int
}

// DefaultBudget is the injection budget used when MaxFaults is 0. Network
// RPCs are far more numerous than simulator hook firings, so the budget is
// correspondingly larger than fault.DefaultBudget.
const DefaultBudget = 4096

// Enabled reports whether the config can disturb anything at all.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.BlackholeProb > 0 || c.DelayProb > 0 ||
		c.DupProb > 0 || c.ReorderProb > 0 || c.TruncProb > 0 ||
		c.CorruptProb > 0 || len(c.Partitions) > 0
}

func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d drop=%.3f blackhole=%.3f delay=%.3f/%v dup=%.3f reorder=%.3f/%v trunc=%.3f corrupt=%.3f budget=%d",
		c.Seed, c.DropProb, c.BlackholeProb, c.DelayProb, c.DelayMax,
		c.DupProb, c.ReorderProb, c.ReorderHold, c.TruncProb, c.CorruptProb, c.max())}
	for _, p := range c.Partitions {
		parts = append(parts, "partition="+p.String())
	}
	return strings.Join(parts, " ")
}

func (c Config) max() int {
	if c.MaxFaults <= 0 {
		return DefaultBudget
	}
	return c.MaxFaults
}

// Hostile derives the drill profile from a seed: every fault class armed at
// meaningful rates, one full partition (everyone loses the coordinator) and
// one asymmetric partition (requests land, responses vanish). This is the
// plan the cluster-chaos drill and the acceptance tests run under.
func Hostile(seed uint64) Config {
	r := rng.New(seed ^ 0x9e7c0ffee7c0ffee)
	c := Config{
		Seed:          seed,
		DropProb:      0.03 + 0.03*r.Float64(),
		BlackholeProb: 0.03 + 0.03*r.Float64(),
		DelayProb:     0.10 + 0.15*r.Float64(),
		DelayMax:      time.Duration(10+r.Intn(40)) * time.Millisecond,
		DupProb:       0.05 + 0.08*r.Float64(),
		ReorderProb:   0.05 + 0.08*r.Float64(),
		ReorderHold:   time.Duration(10+r.Intn(30)) * time.Millisecond,
		TruncProb:     0.02 + 0.04*r.Float64(),
		CorruptProb:   0.02 + 0.03*r.Float64(),
		MaxFaults:     2048 + r.Intn(2048),
	}
	c.Partitions = []Partition{
		{ // coordinator unreachable for everyone
			Start: time.Duration(200+r.Intn(400)) * time.Millisecond,
			Dur:   time.Duration(150+r.Intn(250)) * time.Millisecond,
			Mode:  Refuse,
		},
		{ // asymmetric: delivered but unacknowledged
			Start: time.Duration(900+r.Intn(400)) * time.Millisecond,
			Dur:   time.Duration(100+r.Intn(200)) * time.Millisecond,
			Mode:  BlackholeResp,
		},
	}
	return c
}

// Campaign derives a randomized moderate profile from a seed, in the style
// of fault.CampaignConfig: each seed turns a different mix of classes on, so
// a sweep of seeds covers quiet networks, single-fault stress and storms.
func Campaign(seed uint64) Config {
	r := rng.New(seed ^ 0xc8a05ca05ca05)
	c := Config{Seed: seed}
	if r.Bool(0.7) {
		c.DropProb = 0.01 + 0.04*r.Float64()
	}
	if r.Bool(0.7) {
		c.BlackholeProb = 0.01 + 0.04*r.Float64()
	}
	if r.Bool(0.7) {
		c.DelayProb = 0.05 + 0.2*r.Float64()
		c.DelayMax = time.Duration(5+r.Intn(60)) * time.Millisecond
	}
	if r.Bool(0.7) {
		c.DupProb = 0.02 + 0.08*r.Float64()
	}
	if r.Bool(0.5) {
		c.ReorderProb = 0.02 + 0.08*r.Float64()
		c.ReorderHold = time.Duration(5+r.Intn(30)) * time.Millisecond
	}
	if r.Bool(0.5) {
		c.TruncProb = 0.01 + 0.03*r.Float64()
	}
	if r.Bool(0.5) {
		c.CorruptProb = 0.01 + 0.03*r.Float64()
	}
	if r.Bool(0.5) {
		c.Partitions = append(c.Partitions, Partition{
			Start: time.Duration(200+r.Intn(800)) * time.Millisecond,
			Dur:   time.Duration(100+r.Intn(400)) * time.Millisecond,
			Mode:  Refuse,
		})
	}
	c.MaxFaults = 512 + r.Intn(2048)
	return c
}

// Byzantine is the lying-endpoint profile: every request body is corrupted
// (well-formed JSON, broken CRC seal) with an effectively unlimited budget.
// A worker armed with it exercises the coordinator's envelope rejection and
// circuit-breaker quarantine end to end.
func Byzantine(seed uint64) Config {
	return Config{Seed: seed, CorruptProb: 1, MaxFaults: 1 << 30}
}

// Profile resolves a -chaos-net profile name ("hostile", "campaign",
// "byzantine") and seed to a Config.
func Profile(name string, seed uint64) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hostile":
		return Hostile(seed), nil
	case "campaign":
		return Campaign(seed), nil
	case "byzantine":
		return Byzantine(seed), nil
	}
	return Config{}, fmt.Errorf("chaosnet: unknown profile %q (hostile, campaign, byzantine)", name)
}

// Verdict is one RPC's fate, drawn from the plan's decision stream.
type Verdict struct {
	// Refuse fails the RPC immediately (partition window).
	Refuse bool
	// Drop loses the request before it is sent.
	Drop bool
	// Blackhole delivers the request but loses the response (a partition
	// window in BlackholeResp mode sets it too).
	Blackhole bool
	// Delay holds the request this long before sending (0 = on time).
	Delay time.Duration
	// Hold parks the request until the next one overtakes it.
	Hold bool
	// Dup delivers the request twice.
	Dup bool
	// Corrupt flips one digit of the request body.
	Corrupt bool
	// Trunc cuts the response body short.
	Trunc bool
}

// AcceptVerdict is one inbound connection's fate on a chaotic listener.
type AcceptVerdict struct {
	// Refuse closes the connection immediately after accepting it.
	Refuse bool
	// Delay stalls the accept loop this long before handing the
	// connection to the server (0 = on time).
	Delay time.Duration
}

// Plan is one endpoint's armed fault schedule. It is safe for concurrent
// use: the fabric's RPCs race by design, so the decision stream is drawn
// under a lock (the stream itself stays a pure function of the Config; the
// assignment of verdicts to RPCs follows arrival order).
type Plan struct {
	cfg Config
	now func() time.Time

	mu     sync.Mutex
	r      *rng.Source
	start  time.Time
	counts [numKinds]int
	total  int
}

// New builds and arms the plan: partition windows are measured from now.
func New(cfg Config) *Plan {
	p := &Plan{cfg: cfg, now: time.Now, r: rng.New(cfg.Seed ^ 0x5eedfee1dab1e)}
	p.start = p.now()
	return p
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// SetClock replaces the plan's wall clock and re-anchors the partition
// windows at the new clock's present. Deterministic drills inject a virtual
// clock here so window activation follows simulated time, not the host's.
func (p *Plan) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

// note records an injection and reports whether the budget allowed it.
// Callers hold p.mu.
func (p *Plan) note(k Kind) bool {
	if k != Refused && p.total >= p.cfg.max() {
		return false
	}
	if k != Refused {
		p.total++
	}
	p.counts[k]++
	return true
}

// partitionLocked returns the active window for peer, if any.
func (p *Plan) partitionLocked(peer string) (Partition, bool) {
	elapsed := p.now().Sub(p.start)
	for _, w := range p.cfg.Partitions {
		if w.Peer != "" && w.Peer != peer {
			continue
		}
		if elapsed >= w.Start && elapsed < w.Start+w.Dur {
			return w, true
		}
	}
	return Partition{}, false
}

// Verdict draws one RPC's fate for the endpoint named self. The draw order
// is fixed (drop, blackhole, delay, dup, reorder, trunc, corrupt) so the
// decision stream replays identically for a given seed.
func (p *Plan) Verdict(self string) Verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	var v Verdict
	if w, ok := p.partitionLocked(self); ok {
		if w.Mode == Refuse {
			p.note(Refused)
			v.Refuse = true
			return v
		}
		v.Blackhole = true // BlackholeResp: deliver, lose the response
		p.note(Refused)
	}
	if p.r.Bool(p.cfg.DropProb) && p.note(Drop) {
		v.Drop = true
	}
	if p.r.Bool(p.cfg.BlackholeProb) && p.note(Blackhole) {
		v.Blackhole = true
	}
	if p.r.Bool(p.cfg.DelayProb) && p.cfg.DelayMax > 0 && !p.exhaustedLocked() {
		v.Delay = time.Duration(1 + p.r.Intn(int(p.cfg.DelayMax)))
		p.note(Delay)
	}
	if p.r.Bool(p.cfg.DupProb) && p.note(Dup) {
		v.Dup = true
	}
	if p.r.Bool(p.cfg.ReorderProb) && p.note(Reorder) {
		v.Hold = true
	}
	if p.r.Bool(p.cfg.TruncProb) && p.note(Truncate) {
		v.Trunc = true
	}
	if p.r.Bool(p.cfg.CorruptProb) && p.note(Corrupt) {
		v.Corrupt = true
	}
	return v
}

// Accept draws one inbound connection's fate for a chaotic listener named
// self. Drop plays as refuse-at-accept; delay stalls the accept loop.
func (p *Plan) Accept(self string) AcceptVerdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	var v AcceptVerdict
	if w, ok := p.partitionLocked(self); ok && w.Mode == Refuse {
		p.note(Refused)
		v.Refuse = true
		return v
	}
	if p.r.Bool(p.cfg.DropProb) && p.note(Drop) {
		v.Refuse = true
		return v
	}
	if p.r.Bool(p.cfg.DelayProb) && p.cfg.DelayMax > 0 && !p.exhaustedLocked() {
		v.Delay = time.Duration(1 + p.r.Intn(int(p.cfg.DelayMax)))
		p.note(Delay)
	}
	return v
}

func (p *Plan) exhaustedLocked() bool { return p.total >= p.cfg.max() }

// Pick returns a deterministic index in [0, n) for choosing a corruption
// target. It panics if n <= 0.
func (p *Plan) Pick(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.r.Intn(n)
}

// Total returns how many probabilistic faults have been injected.
func (p *Plan) Total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Count returns how many injections of kind k have occurred.
func (p *Plan) Count(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[k]
}

// Summary renders the per-kind injection counts ("none" when quiet).
func (p *Plan) Summary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total == 0 && p.counts[Refused] == 0 {
		return "none"
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if n := p.counts[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	return strings.Join(parts, " ")
}

// CorruptBody flips one digit of body in place, choosing the position from
// the plan's stream. Digits XOR 1 stay digits, so JSON structure survives
// while any CRC seal over the bytes breaks — transport corruption that can
// only be caught by end-to-end checks. Returns false if body has no digits.
func (p *Plan) CorruptBody(body []byte) bool {
	digits := 0
	for _, b := range body {
		if b >= '0' && b <= '9' {
			digits++
		}
	}
	if digits == 0 {
		return false
	}
	target := p.Pick(digits)
	for i, b := range body {
		if b >= '0' && b <= '9' {
			if target == 0 {
				body[i] ^= 1
				return true
			}
			target--
		}
	}
	return false
}
