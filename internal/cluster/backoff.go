package cluster

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/rng"
)

// jitterSeed derives a stable seed from an endpoint's name (FNV-1a), so a
// fleet of distinctly named workers decorrelates its retry schedules
// without configuration while any single endpoint stays reproducible.
func jitterSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// backoff is a seeded full-jitter retry schedule: retry n sleeps
// uniform(1, min(cap, base<<n)). Full jitter is what breaks the thundering
// herd a restarted fleet produces under synchronized pure-doubling backoff;
// the explicit seed keeps tests and replayed chaos campaigns deterministic.
type backoff struct {
	r       *rng.Source
	base    time.Duration
	cap     time.Duration
	attempt int
}

func newBackoff(seed uint64, base, cap time.Duration) *backoff {
	return &backoff{r: rng.New(seed), base: base, cap: cap}
}

// next draws the sleep before the upcoming retry and advances the schedule.
func (b *backoff) next() time.Duration {
	shift := b.attempt
	if shift > 20 {
		shift = 20
	}
	ceil := b.base << uint(shift)
	if ceil <= 0 || ceil > b.cap {
		ceil = b.cap
	}
	b.attempt++
	if ceil <= 0 {
		return 0
	}
	return 1 + time.Duration(b.r.Uint64()%uint64(ceil))
}

// reset rewinds the schedule after a success.
func (b *backoff) reset() { b.attempt = 0 }

// StatusError is a non-200 coordinator reply. RetryAfter carries the
// Retry-After header when the coordinator shed the request (429), so retry
// loops can honor the coordinator's own estimate instead of guessing.
type StatusError struct {
	URL        string
	Code       int
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("cluster: %s: %d (retry after %v)", e.URL, e.Code, e.RetryAfter)
	}
	return fmt.Sprintf("cluster: %s: %d", e.URL, e.Code)
}

// HTTPClient builds the fabric's default HTTP client explicitly — the same
// one Client/Worker build when their HTTP field is nil. CLIs use it as the
// base transport under a chaosnet wrapper.
func HTTPClient(dial, total time.Duration) *http.Client { return httpClient(dial, total) }

// httpClient builds the fabric's default HTTP client: connection attempts
// fail fast on their own clock (dial, default 5s) while the whole RPC is
// bounded separately (total, default 30s) — so a partitioned peer costs a
// quick connect timeout instead of hanging a full request timeout.
func httpClient(dial, total time.Duration) *http.Client {
	if dial <= 0 {
		dial = 5 * time.Second
	}
	if total <= 0 {
		total = 30 * time.Second
	}
	return &http.Client{
		Timeout: total,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: dial}).DialContext,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}
