package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/exp"
)

// Client submits jobs to a coordinator and polls for their outcomes. It
// implements the report.Batcher shape (RunBatch with the exp.Runner
// signature), so `tlsreport -coordinator URL` renders the same artifacts
// from fleet results that it renders from local ones.
//
// The client is crash-tolerant on both sides: submission is idempotent by
// job key, transient connection errors back off and retry, and keys a
// restarted coordinator no longer recognizes are simply re-submitted — so a
// coordinator SIGKILL'd and resumed mid-campaign is survived without caller
// involvement.
type Client struct {
	// URL is the coordinator's base URL (http://host:port).
	URL string
	// Name identifies this client to the coordinator's fair per-client
	// submit admission; unnamed clients are exempt from rate limiting.
	Name string
	// Poll is the result-polling interval (default 200ms).
	Poll time.Duration
	// Progress, when non-nil, is called once per job as its outcome arrives.
	Progress func(exp.JobResult)
	// Logf, when non-nil, receives operational log lines (reconnects).
	Logf func(format string, args ...any)
	// HTTP overrides the transport (tests, chaos injection); nil builds a
	// client from RPCTimeout/DialTimeout.
	HTTP *http.Client
	// RPCTimeout bounds each coordinator RPC (default 30s); DialTimeout
	// bounds the connection attempt alone (default 5s), so a partitioned
	// coordinator fails fast instead of hanging the full RPC timeout.
	RPCTimeout  time.Duration
	DialTimeout time.Duration
	// Seed drives retry-jitter determinism (0 = derived from Name and URL).
	Seed uint64
	// Sleep overrides the context-aware wait used between polls and retry
	// attempts (nil = real time). Chaos drills and replay harnesses inject a
	// virtual clock here so backoff schedules stay deterministic under
	// wall-clock jitter; it must return false when ctx dies first.
	Sleep func(ctx context.Context, d time.Duration) bool

	hcOnce sync.Once
	hc     *http.Client
}

// ClientName derives a fleet-unique client identity (prefix-host-pid) for
// the coordinator's fair per-client submit admission.
func ClientName(prefix string) string {
	host, _ := os.Hostname()
	if host == "" {
		host = "client"
	}
	return fmt.Sprintf("%s-%s-%d", prefix, host, os.Getpid())
}

// maxRejections is how many coordinator spec rejections a key absorbs
// before the client fails it permanently: transient submit-body corruption
// heals on resubmission, genuine client/coordinator version skew does not.
const maxRejections = 3

// submitChunk bounds jobs per submit POST; resultsChunk keys per poll.
const (
	submitChunk  = 200
	resultsChunk = 500
)

func (c *Client) poll() time.Duration {
	if c.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return c.Poll
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.hcOnce.Do(func() { c.hc = httpClient(c.DialTimeout, c.RPCTimeout) })
	return c.hc
}

func (c *Client) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return jitterSeed("client|" + c.Name + "|" + c.URL)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) bool {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// RunBatch submits the jobs and blocks until every outcome arrived or ctx
// died. Results come back in submission order; like exp.Runner.RunBatch, the
// returned error is only non-nil when ctx is cancelled, in which case
// unresolved jobs carry ctx's error.
func (c *Client) RunBatch(ctx context.Context, jobs []exp.Job) ([]exp.JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]exp.JobResult, len(jobs))
	resolved := make([]bool, len(jobs))

	// Duplicate keys within a batch resolve together from one outcome.
	specs := make([]JobSpec, len(jobs))
	byKey := make(map[string][]int)
	var keys []string // distinct, submission order
	for i, j := range jobs {
		specs[i] = SpecOf(j)
		key := specs[i].Key
		if _, ok := byKey[key]; !ok {
			keys = append(keys, key)
		}
		byKey[key] = append(byKey[key], i)
	}

	pending := make(map[string]bool, len(keys))
	for _, key := range keys {
		pending[key] = true
	}

	// The coordinator rejects (rather than registers) specs that do not
	// re-hash to their key — version skew, or a corrupted submit body. A
	// rejected key stays pending, comes back Unknown from the results poll,
	// and is resubmitted; only a key rejected maxRejections times is failed.
	rejections := make(map[string]int)
	applyRejections := func(rejected []string) {
		for _, key := range rejected {
			if !pending[key] {
				continue
			}
			rejections[key]++
			c.logf("cluster client: coordinator rejected spec %.12s (%d/%d)", key, rejections[key], maxRejections)
			if rejections[key] < maxRejections {
				continue
			}
			delete(pending, key)
			for _, i := range byKey[key] {
				out[i] = exp.JobResult{
					Job: jobs[i],
					Err: fmt.Errorf("job %s: coordinator rejected the spec %d times (client/coordinator version skew?)",
						jobs[i].Label(), maxRejections),
				}
				resolved[i] = true
				if c.Progress != nil {
					c.Progress(out[i])
				}
			}
		}
	}

	rejected, err := c.submit(ctx, specs)
	if err != nil {
		return c.abandon(ctx, jobs, out, resolved), err
	}
	applyRejections(rejected)
	hc := c.client()
	for len(pending) > 0 {
		if !c.sleep(ctx, c.poll()) {
			return c.abandon(ctx, jobs, out, resolved), ctx.Err()
		}
		ask := make([]string, 0, len(pending))
		for _, key := range keys {
			if pending[key] {
				ask = append(ask, key)
			}
		}
		var unknown []string
		failed := false
		for start := 0; start < len(ask); start += resultsChunk {
			end := min(start+resultsChunk, len(ask))
			var resp ResultsResponse
			if err := postJSON(hc, c.URL+"/v1/results", ResultsRequest{Keys: ask[start:end]}, &resp); err != nil {
				c.logf("cluster client: poll: %v (will retry)", err)
				failed = true
				break
			}
			for key, env := range resp.Results {
				if !pending[key] {
					continue
				}
				jr, ok := c.decode(jobs, byKey[key], env)
				if !ok {
					continue // corrupt envelope: re-poll
				}
				delete(pending, key)
				for _, i := range byKey[key] {
					out[i] = jr
					out[i].Job = jobs[i]
					resolved[i] = true
					if c.Progress != nil {
						c.Progress(out[i])
					}
				}
			}
			unknown = append(unknown, resp.Unknown...)
		}
		if failed || len(unknown) > 0 {
			// A coordinator restart: back off, then re-submit whatever is
			// still pending (idempotent; a resumed coordinator answers the
			// finished ones from its journal and cache instantly).
			if !c.sleep(ctx, c.poll()) {
				return c.abandon(ctx, jobs, out, resolved), ctx.Err()
			}
			remaining := make([]JobSpec, 0, len(pending))
			seen := make(map[string]bool, len(pending))
			for _, s := range specs {
				if pending[s.Key] && !seen[s.Key] {
					seen[s.Key] = true
					remaining = append(remaining, s)
				}
			}
			rejected, err := c.submit(ctx, remaining)
			if err != nil {
				return c.abandon(ctx, jobs, out, resolved), err
			}
			applyRejections(rejected)
		}
	}
	return out, nil
}

// decode maps one sealed outcome onto a JobResult template for its indices.
func (c *Client) decode(jobs []exp.Job, idx []int, env Envelope) (exp.JobResult, bool) {
	var o Outcome
	if err := env.Open(&o); err != nil {
		c.logf("cluster client: rejecting outcome: %v", err)
		return exp.JobResult{}, false
	}
	jr := exp.JobResult{
		Result: o.Result, Chaos: o.Chaos, Cached: o.Cached,
		Attempts: o.Attempts, Wall: time.Duration(o.WallMS) * time.Millisecond,
	}
	if o.Err != "" {
		job := jobs[idx[0]]
		jr.Err = fmt.Errorf("job %s (remote %s): %s", job.Label(), o.Worker, o.Err)
		jr.TimedOut = o.TimedOut
	}
	return jr, true
}

// submit registers specs with the coordinator, retrying through transient
// errors and overload sheds (429 + Retry-After, honored with jitter on top)
// until ctx dies. It returns the keys the coordinator rejected as
// unresolvable.
func (c *Client) submit(ctx context.Context, specs []JobSpec) ([]string, error) {
	hc := c.client()
	bo := newBackoff(c.seed(), 100*time.Millisecond, 5*time.Second)
	var rejected []string
	for start := 0; start < len(specs); start += submitChunk {
		end := min(start+submitChunk, len(specs))
		bo.reset()
		for {
			var resp SubmitResponse
			err := postJSON(hc, c.URL+"/v1/submit", SubmitRequest{Jobs: specs[start:end], Client: c.Name}, &resp)
			if err == nil {
				rejected = append(rejected, resp.Rejected...)
				break
			}
			wait := bo.next()
			var se *StatusError
			if errors.As(err, &se) && se.RetryAfter > 0 {
				// The coordinator shed us: its Retry-After estimate plus our
				// own jitter, so a shed fleet does not return in lockstep.
				wait += se.RetryAfter
			}
			c.logf("cluster client: submit: %v (retry in %v)", err, wait)
			if !c.sleep(ctx, wait) {
				return rejected, ctx.Err()
			}
		}
	}
	return rejected, nil
}

// abandon fills every unresolved slot with ctx's error, mirroring the local
// Runner's cancellation contract.
func (c *Client) abandon(ctx context.Context, jobs []exp.Job, out []exp.JobResult, resolved []bool) []exp.JobResult {
	err := ctx.Err()
	if err == nil {
		err = errors.New("cluster: batch abandoned")
	}
	for i := range out {
		if !resolved[i] {
			out[i] = exp.JobResult{Job: jobs[i], Err: fmt.Errorf("job %s: %w", jobs[i].Label(), err)}
		}
	}
	return out
}
