// Package profiling wires the standard runtime/pprof CPU and heap profiles
// into the CLIs behind -cpuprofile/-memprofile flags, so any slow
// tlssim/tlsreport/tlsbench invocation can be profiled without recompiling.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (when non-empty). The stop function must run before the process exits —
// deferred in the normal path and called explicitly before os.Exit.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
