package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkLogNormalCV(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.LogNormalCV(100, 0.5)
	}
}
