// Package rng provides a small, fast, fully deterministic pseudo-random
// number generator and the distributions the workload generators need.
//
// The simulator must be bit-for-bit reproducible from a seed across runs
// and platforms (regression tests and the paper-reproduction harness depend
// on it), so we implement the generator ourselves rather than depending on
// unspecified properties of other sources. The core generator is
// xoshiro256**, seeded through splitmix64, both public-domain algorithms by
// Blackman and Vigna.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; the simulator owns one Source per independent stream.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed state and returns the next seed word. It is
// the recommended seeding procedure for xoshiro generators.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams for any practical purpose.
func New(seed uint64) *Source {
	var r Source
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// A pathological all-zero state cannot occur: splitmix64 is a bijection
	// composed with a mixing function whose only zero preimage would need
	// four consecutive zero outputs, which the constants prevent. Guard
	// anyway so the invariant is local.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new independent Source from r. The derived stream is a
// deterministic function of r's current state, so call order matters (and
// is fixed in the simulator).
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Source) Exp(mean float64) float64 {
	// Inverse CDF; clamp the uniform away from 0 to keep the result finite.
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller, one value per call for determinism).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalCV returns a log-normally distributed value with the given mean
// and coefficient of variation (stddev/mean). Task-length distributions in
// the workload models use this: it is positive, right-skewed, and its tail
// weight grows with cv, which matches the "load imbalance" characteristic
// of Table 3.
func (r *Source) LogNormalCV(mean, cv float64) float64 {
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.Normal(mu, math.Sqrt(sigma2)))
}

// Pareto returns a bounded Pareto-distributed value in [lo, hi] with shape
// alpha. Used for the heavy-tailed component of highly imbalanced loads
// (P3m's one-long-task-per-wave behaviour).
func (r *Source) Pareto(lo, hi, alpha float64) float64 {
	if lo >= hi {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// State returns the generator's current internal state for a checkpoint.
func (r *Source) State() [4]uint64 { return r.s }

// SetState reinstates a checkpointed state. An all-zero state is invalid for
// xoshiro256** and panics rather than silently degenerating.
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s = s
}
