package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	d := a.Split()
	if c.Uint64() == d.Uint64() && c.Uint64() == d.Uint64() {
		t.Fatal("two splits produced identical streams")
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatal("Exp returned negative value")
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-50) > 1 {
		t.Fatalf("Exp(50) sample mean = %.3f", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %.4f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Normal stddev = %.4f, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalCVMoments(t *testing.T) {
	r := New(19)
	const draws = 400000
	mean, cv := 100.0, 0.8
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.LogNormalCV(mean, cv)
		if v <= 0 {
			t.Fatal("LogNormalCV returned non-positive value")
		}
		sum += v
		sumsq += v * v
	}
	m := sum / draws
	sd := math.Sqrt(sumsq/draws - m*m)
	if math.Abs(m-mean)/mean > 0.03 {
		t.Errorf("mean = %.3f, want ~%.0f", m, mean)
	}
	if math.Abs(sd/m-cv)/cv > 0.08 {
		t.Errorf("cv = %.3f, want ~%.2f", sd/m, cv)
	}
}

func TestLogNormalCVZeroCV(t *testing.T) {
	r := New(21)
	if got := r.LogNormalCV(42, 0); got != 42 {
		t.Fatalf("LogNormalCV(42, 0) = %v, want exactly the mean", got)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(23)
	lo, hi := 10.0, 1000.0
	for i := 0; i < 10000; i++ {
		v := r.Pareto(lo, hi, 1.1)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoDegenerate(t *testing.T) {
	r := New(29)
	if got := r.Pareto(5, 5, 2); got != 5 {
		t.Fatalf("Pareto(5,5) = %v", got)
	}
}

func TestParetoSkew(t *testing.T) {
	// A heavy-tailed draw should have mean well above the lower bound and a
	// median near it.
	r := New(31)
	const draws = 50000
	lo, hi := 1.0, 10000.0
	sum := 0.0
	belowTwice := 0
	for i := 0; i < draws; i++ {
		v := r.Pareto(lo, hi, 1.0)
		sum += v
		if v < 2*lo {
			belowTwice++
		}
	}
	if mean := sum / draws; mean < 3*lo {
		t.Errorf("Pareto(alpha=1) mean = %.2f, expected a heavy tail", mean)
	}
	if frac := float64(belowTwice) / draws; frac < 0.4 {
		t.Errorf("only %.2f of draws near the lower bound; distribution not skewed", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", out[:10])
		}
		seen[v] = true
	}
}

func TestPermEmpty(t *testing.T) {
	r := New(41)
	r.Perm(nil) // must not panic
	one := make([]int, 1)
	r.Perm(one)
	if one[0] != 0 {
		t.Fatal("Perm of length 1 must be [0]")
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tt := range tests {
		hi, lo := mul64(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}
