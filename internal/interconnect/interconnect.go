// Package interconnect models the networks of the two evaluated machines:
// the 2D mesh connecting the 16 nodes of the CC-NUMA, and the crossbar
// connecting the 8 processors of the CMP to the on-chip directory/L3 banks.
//
// The paper specifies minimum round-trip latencies (Section 4.1) rather
// than a full network model; we expose topology distance for statistics and
// model contention with busy-until occupancy on each node's network
// interface and on the shared banks. This is the level of detail at which
// "contention is accurately modeled in the whole system" influences the
// buffering results: bursts (e.g. eager commit write-backs) queue behind
// each other.
package interconnect

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/obs"
)

// Topology exposes the node-to-node distance of a network.
type Topology interface {
	// Hops returns the network distance between two nodes.
	Hops(a, b ids.ProcID) int
	// Name identifies the topology in reports.
	Name() string
	// Nodes returns the number of endpoints.
	Nodes() int
}

// Mesh2D is the bidirectional 2D mesh of the CC-NUMA machine. Nodes are
// numbered row-major.
type Mesh2D struct {
	Cols, Rows int
}

// NewMesh2D returns a cols×rows mesh.
func NewMesh2D(cols, rows int) Mesh2D {
	if cols <= 0 || rows <= 0 {
		panic("interconnect: mesh with non-positive dimension")
	}
	return Mesh2D{Cols: cols, Rows: rows}
}

// Hops returns the Manhattan distance between nodes a and b.
func (m Mesh2D) Hops(a, b ids.ProcID) int {
	ax, ay := int(a)%m.Cols, int(a)/m.Cols
	bx, by := int(b)%m.Cols, int(b)/m.Cols
	return abs(ax-bx) + abs(ay-by)
}

// Name implements Topology.
func (m Mesh2D) Name() string { return fmt.Sprintf("%dx%d mesh", m.Cols, m.Rows) }

// Nodes implements Topology.
func (m Mesh2D) Nodes() int { return m.Cols * m.Rows }

// Crossbar is the single-hop network of the CMP: every processor reaches
// every bank in one hop.
type Crossbar struct {
	N int
}

// NewCrossbar returns an n-endpoint crossbar.
func NewCrossbar(n int) Crossbar {
	if n <= 0 {
		panic("interconnect: crossbar with non-positive size")
	}
	return Crossbar{N: n}
}

// Hops implements Topology: 0 for self, 1 otherwise.
func (c Crossbar) Hops(a, b ids.ProcID) int {
	if a == b {
		return 0
	}
	return 1
}

// Name implements Topology.
func (c Crossbar) Name() string { return fmt.Sprintf("%d-port crossbar", c.N) }

// Nodes implements Topology.
func (c Crossbar) Nodes() int { return c.N }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Network combines a topology with per-node interface occupancy and shared
// memory/directory bank occupancy. All times are in cycles.
type Network struct {
	topo  Topology
	ifs   []event.Resource // one network interface per node
	banks *event.Banks     // memory/directory banks, interleaved by line

	// msgOccupancy is how long one message occupies a network interface.
	msgOccupancy event.Time
	// bankOccupancy is how long one line transfer occupies a bank.
	bankOccupancy event.Time

	// obsMessages counts transfers for the observability layer (nil =
	// disabled, free).
	obsMessages *obs.Counter

	// lookahead is the minimum latency of any cross-node interaction on this
	// network — the conservative-PDES lookahead the parallel simulator
	// derives its synchronization window from. The machine config wires it
	// (it owns the latency table); 0 means "not set".
	lookahead event.Time
}

// SetLookahead records the machine's minimum cross-node interaction latency.
func (n *Network) SetLookahead(d event.Time) { n.lookahead = d }

// Lookahead returns the minimum cross-node interaction latency: no event on
// one node can affect another node sooner than this, which is the safe
// horizon increment of the parallel simulation loop. 0 when never set.
func (n *Network) Lookahead() event.Time { return n.lookahead }

// SetObs installs an observability counter incremented per Transfer. A nil
// counter (the default) is a free no-op.
func (n *Network) SetObs(messages *obs.Counter) { n.obsMessages = messages }

// InFlight returns how many network interfaces and banks are occupied at
// time now — the in-flight-messages gauge. A pure observability read.
func (n *Network) InFlight(now event.Time) int {
	busy := n.banks.BusyAt(now)
	for i := range n.ifs {
		if n.ifs[i].BusyUntil() > now {
			busy++
		}
	}
	return busy
}

// NewNetwork builds a network over topo with the given bank count and
// occupancies.
func NewNetwork(topo Topology, banks int, msgOccupancy, bankOccupancy event.Time) *Network {
	return &Network{
		topo:          topo,
		ifs:           make([]event.Resource, topo.Nodes()),
		banks:         event.NewBanks(banks),
		msgOccupancy:  msgOccupancy,
		bankOccupancy: bankOccupancy,
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() Topology { return n.topo }

// Home returns the home bank/node index for a line key.
func (n *Network) Home(key uint64) ids.ProcID {
	return ids.ProcID(key % uint64(n.topo.Nodes()))
}

// Transfer accounts for one round-trip transaction issued by node from at
// time now with intrinsic latency lat: the requester's interface and the
// target bank are occupied, and the completion time (including any queuing
// delay) is returned. Local L1/L2 hits must not call Transfer — they don't
// touch the network.
func (n *Network) Transfer(from ids.ProcID, bankKey uint64, now, lat event.Time) (done event.Time) {
	n.obsMessages.Inc()
	start := now
	if int(from) >= 0 && int(from) < len(n.ifs) {
		start, _ = n.ifs[from].Acquire(now, n.msgOccupancy)
	}
	bankStart, _ := n.banks.Acquire(bankKey, start, n.bankOccupancy)
	return bankStart + lat
}

// QueueDelay returns the cumulative queuing delay observed at the banks;
// interface delay is reported separately by IfDelay.
func (n *Network) QueueDelay() event.Time { return n.banks.TotalWait() }

// IfDelay returns the cumulative queuing delay at node interfaces.
func (n *Network) IfDelay() event.Time {
	var w event.Time
	for i := range n.ifs {
		w += n.ifs[i].WaitCycles()
	}
	return w
}

// NetworkState is the serializable occupancy state of a Network. Topology
// and occupancy parameters are machine configuration, rebuilt on restore;
// only the busy-until bookkeeping and its statistics are checkpointed.
type NetworkState struct {
	Ifs   []event.ResourceState
	Banks []event.ResourceState
}

// State captures the network occupancy for a checkpoint.
func (n *Network) State() NetworkState {
	s := NetworkState{Ifs: make([]event.ResourceState, len(n.ifs))}
	for i := range n.ifs {
		s.Ifs[i] = n.ifs[i].State()
	}
	s.Banks = n.banks.State()
	return s
}

// RestoreState reinstates checkpointed occupancy; the interface and bank
// counts must match the machine geometry the network was built with.
func (n *Network) RestoreState(s NetworkState) error {
	if len(s.Ifs) != len(n.ifs) {
		return fmt.Errorf("interconnect: restoring %d interface states into %d interfaces",
			len(s.Ifs), len(n.ifs))
	}
	for i := range s.Ifs {
		n.ifs[i].RestoreState(s.Ifs[i])
	}
	return n.banks.RestoreState(s.Banks)
}
