package interconnect

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestMeshHops(t *testing.T) {
	m := NewMesh2D(4, 4)
	tests := []struct {
		a, b ids.ProcID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 15, 6}, // opposite corners of a 4x4
		{5, 10, 2}, // (1,1) to (2,2)
	}
	for _, tt := range tests {
		if got := m.Hops(tt.a, tt.b); got != tt.want {
			t.Errorf("Hops(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if m.Nodes() != 16 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	if m.Name() != "4x4 mesh" {
		t.Fatalf("Name = %q", m.Name())
	}
}

// Property: mesh distance is a symmetric metric.
func TestMeshMetricProperty(t *testing.T) {
	m := NewMesh2D(4, 4)
	f := func(a, b, c uint8) bool {
		x, y, z := ids.ProcID(a%16), ids.ProcID(b%16), ids.ProcID(c%16)
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if x == y && m.Hops(x, y) != 0 {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossbarHops(t *testing.T) {
	c := NewCrossbar(8)
	if c.Hops(3, 3) != 0 {
		t.Fatal("self distance != 0")
	}
	if c.Hops(0, 7) != 1 {
		t.Fatal("crossbar distance != 1")
	}
	if c.Nodes() != 8 || c.Name() != "8-port crossbar" {
		t.Fatalf("Nodes/Name wrong: %d %q", c.Nodes(), c.Name())
	}
}

func TestTopologyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMesh2D(0, 4) },
		func() { NewCrossbar(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid topology did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNetworkTransferUncontended(t *testing.T) {
	n := NewNetwork(NewCrossbar(4), 4, 2, 8)
	done := n.Transfer(0, 0, 100, 50)
	// Interface at 100 (occupies 2), bank free at 100 (start >= interface
	// grant time 100), done = bankStart + lat.
	if done != 150 {
		t.Fatalf("done = %d, want 150", done)
	}
	if n.QueueDelay() != 0 || n.IfDelay() != 0 {
		t.Fatal("uncontended transfer queued")
	}
}

func TestNetworkBankContention(t *testing.T) {
	n := NewNetwork(NewCrossbar(4), 1, 0, 10)
	d1 := n.Transfer(0, 0, 0, 100)
	d2 := n.Transfer(1, 0, 0, 100)
	if d1 != 100 {
		t.Fatalf("first transfer done = %d", d1)
	}
	if d2 != 110 {
		t.Fatalf("second transfer must queue behind bank occupancy: done = %d, want 110", d2)
	}
	if n.QueueDelay() != 10 {
		t.Fatalf("QueueDelay = %d, want 10", n.QueueDelay())
	}
}

func TestNetworkInterfaceContention(t *testing.T) {
	n := NewNetwork(NewCrossbar(4), 8, 5, 0)
	n.Transfer(2, 0, 0, 100)
	done := n.Transfer(2, 1, 0, 100) // same node, different bank
	if done != 105 {
		t.Fatalf("second message from same node: done = %d, want 105", done)
	}
	if n.IfDelay() != 5 {
		t.Fatalf("IfDelay = %d, want 5", n.IfDelay())
	}
}

func TestNetworkHome(t *testing.T) {
	n := NewNetwork(NewMesh2D(4, 4), 16, 0, 0)
	if n.Home(0) != 0 || n.Home(17) != 1 || n.Home(31) != 15 {
		t.Fatal("home interleaving wrong")
	}
	if n.Topology().Nodes() != 16 {
		t.Fatal("Topology accessor broken")
	}
}

func TestNetworkIgnoresInvalidNode(t *testing.T) {
	n := NewNetwork(NewCrossbar(2), 2, 5, 0)
	// NoProc (e.g. a background engine) skips interface accounting.
	done := n.Transfer(ids.NoProc, 0, 10, 40)
	if done != 50 {
		t.Fatalf("done = %d, want 50", done)
	}
}
