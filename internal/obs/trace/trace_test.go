package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func fixedClock(start time.Time, step time.Duration) func() time.Time {
	at := start
	return func() time.Time {
		at = at.Add(step)
		return at
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Retain()
	tr.SetClock(time.Now)
	if id := tr.Emit(Span{Name: "x"}); id != 0 {
		t.Fatalf("nil Emit returned %d, want 0", id)
	}
	if id := tr.Instant(Span{Name: "x"}); id != 0 {
		t.Fatalf("nil Instant returned %d, want 0", id)
	}
	if id := tr.Since(time.Now(), Span{Name: "x"}); id != 0 {
		t.Fatalf("nil Since returned %d, want 0", id)
	}
	if got := tr.Dump(); got != nil {
		t.Fatalf("nil Dump returned %v, want nil", got)
	}
	if got := tr.Drain(); got != nil {
		t.Fatalf("nil Drain returned %v, want nil", got)
	}
	tr.Requeue([]Span{{Name: "x"}})
	if tr.NextID() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Proc() != "" {
		t.Fatal("nil accessors should all be zero")
	}
	if !tr.Now().IsZero() {
		t.Fatal("nil Now should be the zero time")
	}
}

func TestRingWrap(t *testing.T) {
	tr := New("w1")
	total := DefaultRingSize*2 + 7
	for i := 0; i < total; i++ {
		tr.Emit(Span{Name: fmt.Sprintf("s%d", i), Start: int64(i)})
	}
	dump := tr.Dump()
	if len(dump) != DefaultRingSize {
		t.Fatalf("dump length %d, want %d", len(dump), DefaultRingSize)
	}
	// Oldest first: the dump must be exactly the last DefaultRingSize spans.
	for i, sp := range dump {
		want := fmt.Sprintf("s%d", total-DefaultRingSize+i)
		if sp.Name != want {
			t.Fatalf("dump[%d].Name = %q, want %q", i, sp.Name, want)
		}
	}
	if tr.Emitted() != uint64(total) {
		t.Fatalf("Emitted = %d, want %d", tr.Emitted(), total)
	}
}

func TestPartialRingDump(t *testing.T) {
	tr := New("w1")
	tr.Emit(Span{Name: "a"})
	tr.Emit(Span{Name: "b"})
	dump := tr.Dump()
	if len(dump) != 2 || dump[0].Name != "a" || dump[1].Name != "b" {
		t.Fatalf("partial dump = %v", dump)
	}
}

func TestCrossProcessIDUniqueness(t *testing.T) {
	a, b := New("worker-a"), New("worker-b")
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			id := tr.Emit(Span{Name: "s"})
			if id == 0 {
				t.Fatal("minted span ID 0")
			}
			if seen[id] {
				t.Fatalf("duplicate span ID %d across processes", id)
			}
			seen[id] = true
		}
	}
}

func TestDrainAndRequeue(t *testing.T) {
	tr := New("w1")
	tr.Retain()
	tr.Emit(Span{Name: "a"})
	tr.Emit(Span{Name: "b"})
	got := tr.Drain()
	if len(got) != 2 {
		t.Fatalf("drained %d spans, want 2", len(got))
	}
	if tr.Drain() != nil {
		t.Fatal("second drain should be empty")
	}
	// A failed shipment requeues; new emissions append after the requeued.
	tr.Requeue(got)
	tr.Emit(Span{Name: "c"})
	again := tr.Drain()
	if len(again) != 3 || again[0].Name != "a" || again[2].Name != "c" {
		t.Fatalf("requeue+drain = %v", again)
	}
	// Drain never clears the flight recorder.
	if len(tr.Dump()) != 3 {
		t.Fatalf("flight recorder lost spans after drain: %d", len(tr.Dump()))
	}
}

func TestNoRetentionWithoutRetain(t *testing.T) {
	tr := New("w1")
	tr.Emit(Span{Name: "a"})
	if tr.Drain() != nil {
		t.Fatal("tracer without Retain should keep nothing to drain")
	}
}

func TestSinceAndInstant(t *testing.T) {
	tr := New("w1")
	base := time.Unix(1000, 0)
	tr.SetClock(fixedClock(base, time.Millisecond))
	start := tr.Now() // base+1ms
	id := tr.Since(start, Span{Name: "op", Kind: KindAttempt})
	if id == 0 {
		t.Fatal("Since returned 0")
	}
	dump := tr.Dump()
	sp := dump[len(dump)-1]
	if sp.Start != UnixMicro(start) {
		t.Fatalf("span start %d, want %d", sp.Start, UnixMicro(start))
	}
	if sp.Dur != 1000 { // one 1ms clock step
		t.Fatalf("span dur %d µs, want 1000", sp.Dur)
	}
	if sp.Proc != "w1" {
		t.Fatalf("span proc %q, want w1", sp.Proc)
	}
	tr.Instant(Span{Name: "mark"})
	dump = tr.Dump()
	if got := dump[len(dump)-1]; got.Dur != 0 || got.Start == 0 {
		t.Fatalf("instant span = %+v", got)
	}
}

// TestConcurrentSpanEmission exercises concurrent Emit/Dump/Drain from many
// goroutines — the shard-lane emission pattern — and is meaningful chiefly
// under -race.
func TestConcurrentSpanEmission(t *testing.T) {
	tr := New("w1")
	tr.Retain()
	const lanes, per = 8, 200
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Span{Name: "lane", Attempt: lane, Start: int64(i)})
				if i%16 == 0 {
					tr.Dump()
				}
			}
		}(l)
	}
	drained := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		drained += len(tr.Drain())
		select {
		case <-done:
			drained += len(tr.Drain())
			if tr.Emitted() != lanes*per {
				t.Fatalf("emitted %d, want %d", tr.Emitted(), lanes*per)
			}
			if uint64(drained)+tr.Dropped() != lanes*per {
				t.Fatalf("drained %d + dropped %d, want %d", drained, tr.Dropped(), lanes*per)
			}
			return
		default:
		}
	}
}

func TestMintCampaign(t *testing.T) {
	a := MintCampaign("sweep", time.Unix(1, 0))
	b := MintCampaign("sweep", time.Unix(2, 0))
	if a == b {
		t.Fatalf("two mints at different instants collided: %s", a)
	}
	if len(a) < len("sweep-")+8 {
		t.Fatalf("campaign ID too short: %s", a)
	}
}

func TestExportPerfettoLayout(t *testing.T) {
	coord := New("coordinator")
	coord.Retain()
	w1 := New("worker-1")
	w1.Retain()

	// One job's life: queue wait and lease on the coordinator, attempt on
	// the worker, completion back on the coordinator — all tied by Flow 42.
	coord.Emit(Span{Name: "job1", Kind: KindQueue, Start: 100, Dur: 50, Campaign: "c-1", Key: "k1"})
	coord.Emit(Span{Name: "job1", Kind: KindLease, Start: 150, Dur: 400, Campaign: "c-1", Key: "k1", Flow: 42})
	w1.Emit(Span{Name: "job1", Kind: KindAttempt, Start: 200, Dur: 250, Campaign: "c-1", Key: "k1", Attempt: 1, Flow: 42})
	coord.Emit(Span{Name: "job1", Kind: KindComplete, Start: 500, Campaign: "c-1", Key: "k1", Flow: 42})

	spans := append(coord.Drain(), w1.Drain()...)
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, "coordinator", spans); err != nil {
		t.Fatalf("ExportPerfetto: %v", err)
	}

	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	pids := make(map[float64]string)
	starts, finishes, steps := 0, 0, 0
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				args := ev["args"].(map[string]any)
				pids[ev["pid"].(float64)] = args["name"].(string)
			}
		case "s":
			starts++
		case "f":
			finishes++
		case "t":
			steps++
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 processes, got %v", pids)
	}
	if pids[0] != "coordinator" {
		t.Fatalf("pid 0 = %q, want coordinator", pids[0])
	}
	if starts != 1 || finishes != 1 || steps != 1 {
		t.Fatalf("flow chain s/t/f = %d/%d/%d, want 1/1/1", starts, steps, finishes)
	}
}

func TestExportPerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, "coordinator", nil); err == nil {
		t.Fatal("exporting zero spans should error")
	}
}
