// Package trace is the fleet's wall-clock observability layer: a span model
// with campaign/job/attempt correlation IDs that follows one job from
// coordinator submit through lease, worker attempt (watchdog, retry,
// checkpoint, quarantine) and result delivery, and a Tracer that doubles as
// an always-on bounded flight recorder.
//
// The package mirrors the two load-bearing properties of internal/obs:
//
//   - Disabled tracing is free. Every Tracer method is defined on a nil
//     receiver as a no-op after a single nil check, so code paths thread a
//     *Tracer unconditionally and pay nothing when tracing is off.
//   - The hot path does not allocate. Spans are values; Emit copies one into
//     a preallocated ring slot. Only explicit retention mode (Retain, for
//     shipping spans to a coordinator or exporting a trace file) appends to
//     a growable buffer.
//
// Spans live in the wall-clock domain of the orchestration layer — the
// coordinator's queue, the worker's attempts — never in the simulator's
// cycle domain, so tracing cannot perturb simulation results: the
// observer-effect regression tests run with tracing on and demand
// reflect.DeepEqual against untraced runs.
package trace

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"
)

// Span kinds emitted by the fabric. Kind is an open set — these constants
// just keep the emitters and the exporter agreeing on lane assignment.
const (
	KindQueue      = "queue"      // coordinator: submit -> first lease grant
	KindLease      = "lease"      // coordinator: lease grant -> settle
	KindStraggler  = "straggler"  // coordinator: speculative re-issue decision
	KindSteal      = "steal"      // coordinator: work-steal grant decision
	KindComplete   = "complete"   // coordinator: outcome ingested
	KindAttempt    = "attempt"    // runner: one execution attempt
	KindRetry      = "retry"      // runner: retry decision after a failure
	KindCheckpoint = "checkpoint" // runner: checkpoint file made durable
	KindQuarantine = "quarantine" // runner: job quarantined permanently
	KindCacheHit   = "cache-hit"  // runner: job answered from the result cache
)

// Span is one timed (or instantaneous, Dur == 0) operation in the
// orchestration layer. The correlation fields tie the fleet's records
// together: Campaign is minted once per campaign (cluster.Coordinator.Submit
// or the CLI), Key is the job's content hash, Attempt the runner's attempt
// ordinal, and Flow an opaque cross-process correlation tag (the lease ID)
// that the Perfetto exporter renders as lease→attempt→complete flow arrows.
type Span struct {
	// ID is process-unique (see Tracer): the high bits derive from the
	// process lane name, the low bits count up, so spans merged from many
	// fleet processes never collide.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`

	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`

	Campaign string `json:"campaign,omitempty"`
	Key      string `json:"key,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Flow     uint64 `json:"flow,omitempty"`

	// Proc is the process lane ("coordinator", a worker name); the exporter
	// maps each distinct Proc to its own Perfetto pid.
	Proc string `json:"proc,omitempty"`

	// Start is µs since the Unix epoch; Dur the span length in µs (0 for an
	// instant event).
	Start int64 `json:"start_us"`
	Dur   int64 `json:"dur_us,omitempty"`

	Err  string `json:"err,omitempty"`
	Note string `json:"note,omitempty"`
}

// End returns the span's end time in µs since the epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// DefaultRingSize is the flight-recorder depth: enough spans to explain the
// last few jobs' worth of orchestration when a dump lands in a quarantine
// manifest or a stuck post-mortem.
const DefaultRingSize = 64

// retainCap bounds the retention buffer so a retaining tracer on a very long
// campaign cannot grow without bound between drains; spans past the cap are
// dropped and counted.
const retainCap = 1 << 16

// Tracer mints span IDs and records finished spans. It is safe for
// concurrent use (fleet workers emit from several lease executors at once).
// A nil *Tracer is the disabled layer: every method no-ops.
//
// The ring buffer is the always-on flight recorder: the last DefaultRingSize
// spans, overwritten in place with no allocation. Retain() additionally
// keeps every span in a growable buffer for Drain — the export and
// span-shipping mode.
type Tracer struct {
	mu     sync.Mutex
	proc   string
	idBase uint64 // process-unique high bits of every minted ID
	nextID uint64

	ring     []Span // flight recorder: fixed capacity, preallocated
	ringNext int    // next write slot
	ringSeen uint64 // total spans ever emitted

	retain  bool
	kept    []Span
	dropped uint64 // spans lost to the retention cap

	clock func() time.Time
}

// New returns a tracer for the named process lane with a DefaultRingSize
// flight recorder. Span IDs are unique across processes with distinct
// names: the name hashes into the IDs' high 32 bits.
func New(proc string) *Tracer {
	h := fnv.New32a()
	h.Write([]byte(proc))
	return &Tracer{
		proc:   proc,
		idBase: uint64(h.Sum32()) << 32,
		ring:   make([]Span, DefaultRingSize),
		clock:  time.Now,
	}
}

// Proc returns the tracer's process lane name ("" on nil).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// Retain switches the tracer into retention mode: every emitted span is
// kept (up to an internal cap) until Drain collects it. No-op on nil.
func (t *Tracer) Retain() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.retain = true
	t.mu.Unlock()
}

// SetClock replaces the wall clock (deterministic tests). No-op on nil.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = now
	t.mu.Unlock()
}

// Now returns the tracer's current wall-clock time (zero time on nil), the
// start stamp callers take before timing a section.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	return clock()
}

// UnixMicro converts a time taken from Now to span µs (0 for zero time).
func UnixMicro(at time.Time) int64 {
	if at.IsZero() {
		return 0
	}
	return at.UnixMicro()
}

// NextID mints a fresh process-unique span ID (0 on nil).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	id := t.mintLocked()
	t.mu.Unlock()
	return id
}

func (t *Tracer) mintLocked() uint64 {
	t.nextID++
	return t.idBase | (t.nextID & 0xFFFFFFFF)
}

// Emit records one finished span, stamping Proc and (when sp.ID is zero) a
// fresh ID, and returns the span's ID. The span lands in the flight-recorder
// ring always, and in the retention buffer when Retain is on. Returns 0 on a
// nil tracer.
func (t *Tracer) Emit(sp Span) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	if sp.ID == 0 {
		sp.ID = t.mintLocked()
	}
	if sp.Proc == "" {
		sp.Proc = t.proc
	}
	t.ring[t.ringNext] = sp
	t.ringNext = (t.ringNext + 1) % len(t.ring)
	t.ringSeen++
	if t.retain {
		if len(t.kept) < retainCap {
			t.kept = append(t.kept, sp)
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
	return sp.ID
}

// Instant emits a zero-duration span at the current clock and returns its
// ID. Convenience over Emit for decision points (retries, straggler
// re-issues, quarantines).
func (t *Tracer) Instant(sp Span) uint64 {
	if t == nil {
		return 0
	}
	sp.Start = UnixMicro(t.Now())
	sp.Dur = 0
	return t.Emit(sp)
}

// Since emits sp with Start/Dur computed from start (taken from Now) to the
// current clock, returning the span's ID.
func (t *Tracer) Since(start time.Time, sp Span) uint64 {
	if t == nil {
		return 0
	}
	end := t.Now()
	sp.Start = UnixMicro(start)
	if d := end.Sub(start); d > 0 {
		sp.Dur = d.Microseconds()
	}
	return t.Emit(sp)
}

// Dump returns the flight recorder's contents, oldest first — the last
// DefaultRingSize spans emitted. Safe to call at any time; nil returns nil.
func (t *Tracer) Dump() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if t.ringSeen < uint64(n) {
		n = int(t.ringSeen)
	}
	out := make([]Span, 0, n)
	if t.ringSeen < uint64(len(t.ring)) {
		out = append(out, t.ring[:t.ringSeen]...)
		return out
	}
	out = append(out, t.ring[t.ringNext:]...)
	out = append(out, t.ring[:t.ringNext]...)
	return out
}

// Drain returns and clears the retention buffer (nil when empty, when
// retention is off, or on a nil tracer). The flight-recorder ring is
// untouched: a drain never erases the post-mortem view.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	kept := t.kept
	t.kept = nil
	t.mu.Unlock()
	if len(kept) == 0 {
		return nil
	}
	return kept
}

// Requeue puts drained spans back at the head of the retention buffer — the
// undo for a Drain whose shipment failed (a worker's heartbeat that never
// reached the coordinator must not lose its spans).
func (t *Tracer) Requeue(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	if t.retain {
		if room := retainCap - len(spans); room >= 0 {
			t.kept = append(spans, t.kept...)
			if len(t.kept) > retainCap {
				t.dropped += uint64(len(t.kept) - retainCap)
				t.kept = t.kept[:retainCap]
			}
		} else {
			t.dropped += uint64(len(spans))
		}
	}
	t.mu.Unlock()
}

// Dropped returns how many spans the retention cap discarded (0 on nil).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Emitted returns how many spans the tracer has ever recorded (0 on nil).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ringSeen
}

// MintCampaign derives a campaign correlation ID from the campaign name, the
// host, the process and the given instant: short enough for log lines,
// unique enough that two campaigns' records never merge by accident.
func MintCampaign(name string, at time.Time) string {
	host, _ := os.Hostname()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", name, host, os.Getpid(), at.UnixNano())
	return fmt.Sprintf("%s-%08x", name, uint32(h.Sum64()^h.Sum64()>>32))
}
