package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders a merged fleet span set as a Chrome/Perfetto
// trace-event JSON file: one Perfetto process (pid) per fleet process lane
// (the coordinator plus each worker), one thread (tid) per span kind inside
// it, and flow arrows stitching lease→attempt→complete chains across
// processes wherever spans share a Flow tag (the lease ID).
//
// The layout deliberately differs from report.ExportPerfetto (which renders
// one simulation's cycle domain into a single pid): here each fleet process
// gets its own pid so ui.perfetto.dev shows the coordinator's decision lanes
// above a stack of worker lanes, all on one shared wall-clock axis.

type fleetEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type fleetFile struct {
	TraceEvents     []fleetEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// flowCat is the category carried by every cross-process flow arrow; start
// and finish events must agree on cat+id for Perfetto to draw the arrow.
const flowCat = "fleet-flow"

// ExportPerfetto writes the merged fleet trace for spans collected from any
// number of fleet processes. Spans are grouped into one Perfetto process per
// Span.Proc (the coordinator lane sorts first when its name is coordProc;
// pass "" to sort all lanes alphabetically), one named thread per span kind,
// and flow arrows connect spans sharing a nonzero Flow tag in start-time
// order. Timestamps are normalized so the earliest span starts at 0.
func ExportPerfetto(w io.Writer, coordProc string, spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("trace: no spans to export")
	}

	// Deterministic process lanes: coordinator first, workers alphabetical.
	procSet := make(map[string]bool)
	for _, sp := range spans {
		procSet[sp.Proc] = true
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if (procs[i] == coordProc) != (procs[j] == coordProc) {
			return procs[i] == coordProc
		}
		return procs[i] < procs[j]
	})
	pidOf := make(map[string]int, len(procs))
	for i, p := range procs {
		pidOf[p] = i
	}

	// One thread per (proc, kind), numbered in a stable order so the lane
	// layout survives re-export.
	kindSet := make(map[string]map[string]bool)
	for _, sp := range spans {
		if kindSet[sp.Proc] == nil {
			kindSet[sp.Proc] = make(map[string]bool)
		}
		kindSet[sp.Proc][kindLane(sp.Kind)] = true
	}
	type lane struct{ proc, kind string }
	tidOf := make(map[lane]int)
	var events []fleetEvent
	for _, p := range procs {
		kinds := make([]string, 0, len(kindSet[p]))
		for k := range kindSet[p] {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool {
			return laneOrder(kinds[i]) < laneOrder(kinds[j])
		})
		events = append(events, fleetEvent{
			Name: "process_name", Ph: "M", Pid: pidOf[p], Tid: 0,
			Args: map[string]any{"name": p},
		})
		for i, k := range kinds {
			tidOf[lane{p, k}] = i
			events = append(events, fleetEvent{
				Name: "thread_name", Ph: "M", Pid: pidOf[p], Tid: i,
				Args: map[string]any{"name": k},
			})
		}
	}

	// Normalize the time axis: fleet spans carry µs-since-epoch stamps that
	// dwarf the trace's extent; shift so the first span starts at 0.
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start < base {
			base = sp.Start
		}
	}

	// Render spans in a deterministic order (start, then ID) regardless of
	// the merge order the coordinator collected them in.
	ordered := append([]Span(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].ID < ordered[j].ID
	})

	flows := make(map[uint64][]Span)
	for _, sp := range ordered {
		pid := pidOf[sp.Proc]
		tid := tidOf[lane{sp.Proc, kindLane(sp.Kind)}]
		args := map[string]any{"span": strconv.FormatUint(sp.ID, 10)}
		if sp.Campaign != "" {
			args["campaign"] = sp.Campaign
		}
		if sp.Key != "" {
			args["key"] = sp.Key
		}
		if sp.Attempt != 0 {
			args["attempt"] = sp.Attempt
		}
		if sp.Flow != 0 {
			args["flow"] = strconv.FormatUint(sp.Flow, 10)
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		if sp.Note != "" {
			args["note"] = sp.Note
		}
		ev := fleetEvent{
			Name: sp.Name, Cat: sp.Kind, Ts: float64(sp.Start - base),
			Pid: pid, Tid: tid, Args: args,
		}
		if sp.Dur > 0 {
			ev.Ph = "X"
			ev.Dur = float64(sp.Dur)
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		events = append(events, ev)
		if sp.Flow != 0 {
			flows[sp.Flow] = append(flows[sp.Flow], sp)
		}
	}

	// Flow arrows: each Flow tag's spans, in time order, become one chain of
	// s → t... → f events. A chain needs at least two spans to draw.
	flowIDs := make([]uint64, 0, len(flows))
	for id := range flows {
		if len(flows[id]) >= 2 {
			flowIDs = append(flowIDs, id)
		}
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		chain := flows[id]
		sort.Slice(chain, func(i, j int) bool {
			if chain[i].Start != chain[j].Start {
				return chain[i].Start < chain[j].Start
			}
			return chain[i].ID < chain[j].ID
		})
		fid := strconv.FormatUint(id, 10)
		for i, sp := range chain {
			ev := fleetEvent{
				Name: "lease-flow", Cat: flowCat, ID: fid,
				Pid: pidOf[sp.Proc], Tid: tidOf[lane{sp.Proc, kindLane(sp.Kind)}],
			}
			switch {
			case i == 0:
				ev.Ph = "s"
				ev.Ts = float64(sp.Start - base)
			case i == len(chain)-1:
				ev.Ph = "f"
				ev.BP = "e"
				ev.Ts = float64(sp.End() - base)
			default:
				ev.Ph = "t"
				ev.Ts = float64(sp.Start - base)
			}
			events = append(events, ev)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fleetFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// kindLane maps a span kind to its thread lane name; unknown kinds share an
// "events" lane rather than spawning one lane each.
func kindLane(kind string) string {
	switch kind {
	case KindQueue, KindLease, KindStraggler, KindSteal, KindComplete,
		KindAttempt, KindRetry, KindCheckpoint, KindQuarantine, KindCacheHit:
		return kind
	case "":
		return "events"
	default:
		return "events"
	}
}

// laneOrder fixes the top-to-bottom lane layout inside each process: the
// coordinator's decision lanes first, then the runner's execution lanes.
func laneOrder(kind string) int {
	switch kind {
	case KindQueue:
		return 0
	case KindLease:
		return 1
	case KindStraggler:
		return 2
	case KindSteal:
		return 3
	case KindComplete:
		return 4
	case KindAttempt:
		return 5
	case KindRetry:
		return 6
	case KindCheckpoint:
		return 7
	case KindCacheHit:
		return 8
	case KindQuarantine:
		return 9
	default:
		return 10
	}
}
