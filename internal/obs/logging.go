package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the fleet's structured logger: log/slog text lines on w,
// tagged with the component name ("tlsserve", "tlsworker", ...) plus any
// extra correlation attrs (campaign ID, worker name). Every CLI logs through
// this so fleet-wide greps can pivot on component=... campaign=... keys.
func NewLogger(w io.Writer, component string, attrs ...any) *slog.Logger {
	h := slog.NewTextHandler(w, nil)
	l := slog.New(h).With("component", component)
	if len(attrs) > 0 {
		l = l.With(attrs...)
	}
	return l
}

// Logf adapts a structured logger to the printf-style Logf seams threaded
// through cluster.Client, exp.Runner and friends; nil yields a discard
// function so call sites need no guard.
func Logf(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
