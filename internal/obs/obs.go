// Package obs is the simulator's cycle-domain observability layer: a
// registry of named counters, gauges, and fixed-bucket histograms that
// components increment on their hot paths, plus a periodic time-series
// sampler (sampler.go) whose snapshots feed the Perfetto and Prometheus
// exporters.
//
// Two properties are load-bearing and enforced by tests:
//
//   - Disabled observability is free. Every handle method is defined on a
//     nil receiver as a no-op, and a nil *Registry returns nil handles, so
//     an uninstrumented run executes a single nil check per hook — no
//     allocations, no branches on simulated timing, and byte-identical
//     results (the observer-effect regression tests in internal/sim).
//   - Everything is deterministic and cycle-domain. Metrics are functions
//     of the simulated event stream only: no wall clock, no goroutines, no
//     map iteration reaching an exporter unordered. Two runs of the same
//     (machine, scheme, profile, seed) produce identical registries.
//
// A Registry is single-goroutine, like the simulator that owns it: one
// registry per run, never shared across concurrent simulations.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing count. The zero value of the handle
// (nil) is a valid no-op counter.
type Counter struct {
	v uint64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that can move both ways (an occupancy, a
// queue depth). The zero handle (nil) is a valid no-op gauge.
type Gauge struct {
	v int64
}

// Set replaces the gauge value. No-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge by dv (negative to decrease). No-op on a nil handle.
func (g *Gauge) Add(dv int64) {
	if g != nil {
		g.v += dv
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets chosen at registration:
// bucket i counts observations <= Bounds[i], with one implicit overflow
// bucket above the last bound. Fixed bounds keep Observe allocation-free
// and the export deterministic. The zero handle (nil) is a valid no-op.
type Histogram struct {
	bounds []uint64 // ascending upper bounds
	counts []uint64 // len(bounds)+1: last is the overflow bucket
	sum    uint64
	n      uint64
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the bucket upper bounds (nil on a nil handle).
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket counts, the last entry being the
// overflow bucket (nil on a nil handle).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Registry holds one run's metrics by name. The zero value is NOT usable;
// call NewRegistry. A nil *Registry is the disabled layer: every
// registration returns a nil (no-op) handle.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the counter named name, or a
// nil no-op handle when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge named name, or a nil
// no-op handle when the registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram named name
// with the given ascending bucket upper bounds, or a nil no-op handle when
// the registry is nil. Re-registering an existing name returns the existing
// histogram; its original bounds win.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		h = &Histogram{
			bounds: append([]uint64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the value of a named counter (0 when absent or on a
// nil registry) — the exporters' and tests' read path.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name].Value()
}

// GaugeValue returns the value of a named gauge (0 when absent).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[name].Value()
}

// CounterNames returns the registered counter names, sorted (deterministic
// export order).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.counters)
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.gauges)
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.hists)
}

// FindHistogram returns a registered histogram by name (nil when absent).
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, metric names prefixed with prefix, in sorted name
// order. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	if r == nil {
		return nil
	}
	for _, name := range r.CounterNames() {
		if err := PromMetric(w, prefix+name, "counter", float64(r.counters[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range r.GaugeNames() {
		if err := PromMetric(w, prefix+name, "gauge", float64(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range r.HistogramNames() {
		h := r.hists[name]
		full := prefix + name
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", full); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", full, b, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			full, cum, full, h.sum, full, h.n); err != nil {
			return err
		}
	}
	return nil
}

// PromMetric writes one `# TYPE` header plus a sample in the Prometheus
// text exposition format — shared by the registry export and the campaign
// telemetry endpoint.
func PromMetric(w io.Writer, name, typ string, v float64) error {
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", name, typ, name, v)
	return err
}

// Config bundles the two knobs callers thread through simulator builders:
// where metrics land, and how often gauge sources are sampled.
type Config struct {
	// Registry receives the run's counters, gauges, and histograms.
	Registry *Registry
	// SamplePeriod is the gauge-sampling cadence in simulated cycles
	// (0 selects DefaultSamplePeriod).
	SamplePeriod uint64
}

// DefaultSamplePeriod is the sampling cadence used when a Config does not
// set one: fine enough to resolve commit/squash phases of the evaluated
// sections, coarse enough to keep series small.
const DefaultSamplePeriod = 1000
