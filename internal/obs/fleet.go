package obs

// Fleet-level aggregation helpers. A distributed campaign has one registry
// per observed run on each worker; workers fold finished runs into a plain
// name→value map and report absolute totals, and the coordinator merges the
// per-worker maps at scrape time. Maps (not registries) cross these
// boundaries: a Registry's counters are deliberately unsynchronized for the
// zero-overhead hot path, so they are only read after the run that owns them
// has finished.

// CounterSnapshot copies every counter of the registry into a map. The
// registry must be quiescent (its simulation finished); returns nil for a
// nil registry.
func (r *Registry) CounterSnapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	names := r.CounterNames()
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(names))
	for _, name := range names {
		m[name] = r.CounterValue(name)
	}
	return m
}

// MergeCounters adds every counter of src into dst (dst must be non-nil).
func MergeCounters(dst, src map[string]uint64) {
	for name, v := range src {
		dst[name] += v
	}
}
