package obs

// Source is one sampled gauge: a name and a function returning its value at
// a given simulated cycle. Sources must be pure observers — reading them
// must not change any simulation state.
type Source struct {
	Name string
	Fn   func(cycle uint64) int64
}

// Sample is one row of the time series: every source's value at one cycle.
// Values are ordered as the sources were registered.
type Sample struct {
	Cycle  uint64
	Values []int64
}

// Series is a sampler's complete output: the source names and the rows, in
// cycle order.
type Series struct {
	Names   []string
	Samples []Sample
}

// Sampler records every registered source at a fixed cycle period. It is
// polled opportunistically from the simulator's instrumentation points: the
// first poll at or after each period boundary takes the row (the simulator
// is event-driven, so there is no "exactly at cycle N" to hook). Rows are
// therefore stamped with the polling cycle, and the sequence of rows is a
// deterministic function of the simulated event stream alone — no wall
// clock, no background goroutine.
//
// A nil *Sampler is the disabled sampler: Poll and Force are no-ops.
type Sampler struct {
	period  uint64
	next    uint64
	sources []Source
	samples []Sample
	// flat backs every row's Values to keep steady-state sampling down to
	// amortized append growth only.
	flat []int64
}

// NewSampler returns a sampler with the given cycle period (0 selects
// DefaultSamplePeriod).
func NewSampler(period uint64) *Sampler {
	if period == 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{period: period}
}

// Register adds a source. Registration order fixes the column order of the
// series. No-op on a nil sampler.
func (s *Sampler) Register(name string, fn func(cycle uint64) int64) {
	if s == nil {
		return
	}
	s.sources = append(s.sources, Source{Name: name, Fn: fn})
}

// Period returns the sampling cadence in cycles (0 on a nil sampler).
func (s *Sampler) Period() uint64 {
	if s == nil {
		return 0
	}
	return s.period
}

// Poll records a row if cycle has reached the next period boundary; no-op
// otherwise and on a nil sampler. The next boundary is aligned down to a
// period multiple so sparse polling cannot drift the cadence.
func (s *Sampler) Poll(cycle uint64) {
	if s == nil || cycle < s.next {
		return
	}
	s.record(cycle)
	s.next = cycle - cycle%s.period + s.period
}

// Force records a row at cycle regardless of the period — the final
// end-of-section snapshot. Duplicate cycles collapse: forcing the cycle of
// the latest row refreshes it instead of appending. No-op on a nil sampler.
func (s *Sampler) Force(cycle uint64) {
	if s == nil {
		return
	}
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle == cycle {
		row := s.samples[n-1].Values
		for i, src := range s.sources {
			row[i] = src.Fn(cycle)
		}
		return
	}
	s.record(cycle)
	if next := cycle - cycle%s.period + s.period; next > s.next {
		s.next = next
	}
}

func (s *Sampler) record(cycle uint64) {
	base := len(s.flat)
	for _, src := range s.sources {
		s.flat = append(s.flat, src.Fn(cycle))
	}
	s.samples = append(s.samples, Sample{Cycle: cycle, Values: s.flat[base:len(s.flat):len(s.flat)]})
}

// Len returns the number of recorded rows (0 on a nil sampler).
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Series returns the recorded time series. The returned slices alias the
// sampler's storage; callers must not mutate them. Nil sampler returns a
// zero Series.
func (s *Sampler) Series() Series {
	if s == nil {
		return Series{}
	}
	names := make([]string, len(s.sources))
	for i, src := range s.sources {
		names[i] = src.Name
	}
	return Series{Names: names, Samples: s.samples}
}
