package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(-2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.CounterValue("c") != 0 || r.GaugeValue("g") != 0 {
		t.Fatal("nil registry reads must be zero")
	}
	if r.CounterNames() != nil || r.GaugeNames() != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry must list nothing")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "x_"); err != nil || sb.Len() != 0 {
		t.Fatal("nil registry must export nothing")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("commits_total")
	c.Inc()
	c.Add(4)
	if got := r.CounterValue("commits_total"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("commits_total") != c {
		t.Fatal("re-registering a name must return the same handle")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-3)
	if got := r.GaugeValue("inflight"); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{0, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 0, 1} // <=10: {0,10}; <=100: {11,100}; <=1000: none; over: 5000
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 0+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", []uint64{10, 10})
}

// The BENCH allocs/op gates require that disabled observability adds zero
// allocations to hot paths; increments on live handles must be free too.
func TestIncrementsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{8, 64, 512})
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		h.Observe(9)
		nilC.Inc()
	}); n != 0 {
		t.Fatalf("hot-path increments allocate %v/op, want 0", n)
	}
}

func TestSamplerCadenceAndDeterminism(t *testing.T) {
	run := func() Series {
		s := NewSampler(100)
		v := int64(0)
		s.Register("v", func(cycle uint64) int64 { return v })
		s.Register("cycle2", func(cycle uint64) int64 { return int64(cycle) * 2 })
		for cycle := uint64(0); cycle < 1000; cycle += 30 {
			v = int64(cycle) / 10
			s.Poll(cycle)
		}
		s.Force(999)
		return s.Series()
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("non-deterministic sample count: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Cycle != b.Samples[i].Cycle {
			t.Fatalf("row %d cycle differs: %d vs %d", i, a.Samples[i].Cycle, b.Samples[i].Cycle)
		}
		for j := range a.Samples[i].Values {
			if a.Samples[i].Values[j] != b.Samples[i].Values[j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	// Poll at 0 records; next boundaries are 100-aligned: rows at 0, 120,
	// 210, 300, ... (first poll at or after each boundary), plus the forced
	// final row at 999.
	if a.Samples[0].Cycle != 0 {
		t.Fatalf("first row at %d, want 0", a.Samples[0].Cycle)
	}
	if a.Samples[1].Cycle != 120 {
		t.Fatalf("second row at %d, want 120 (first poll past boundary 100)", a.Samples[1].Cycle)
	}
	if last := a.Samples[len(a.Samples)-1]; last.Cycle != 999 {
		t.Fatalf("forced final row at %d, want 999", last.Cycle)
	}
	if len(a.Names) != 2 || a.Names[0] != "v" || a.Names[1] != "cycle2" {
		t.Fatalf("names = %v", a.Names)
	}
	for _, row := range a.Samples {
		if row.Values[1] != int64(row.Cycle)*2 {
			t.Fatalf("row %d: col cycle2 = %d, want %d", row.Cycle, row.Values[1], row.Cycle*2)
		}
	}
}

func TestSamplerForceDedupsSameCycle(t *testing.T) {
	s := NewSampler(50)
	v := int64(1)
	s.Register("v", func(uint64) int64 { return v })
	s.Poll(0)
	v = 2
	s.Force(0) // same cycle: refresh the row in place
	if s.Len() != 1 {
		t.Fatalf("rows = %d, want 1", s.Len())
	}
	if got := s.Series().Samples[0].Values[0]; got != 2 {
		t.Fatalf("refreshed value = %d, want 2", got)
	}
}

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	s.Register("x", func(uint64) int64 { return 1 })
	s.Poll(10)
	s.Force(20)
	if s.Len() != 0 || s.Period() != 0 {
		t.Fatal("nil sampler must observe nothing")
	}
	if got := s.Series(); got.Names != nil || got.Samples != nil {
		t.Fatal("nil sampler series must be zero")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter("a_total").Add(1)
	r.Gauge("depth").Set(-4)
	h := r.Histogram("exec_cycles", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "tls_"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tls_a_total counter\ntls_a_total 1\n",
		"# TYPE tls_b_total counter\ntls_b_total 3\n",
		"# TYPE tls_depth gauge\ntls_depth -4\n",
		"# TYPE tls_exec_cycles histogram\n",
		"tls_exec_cycles_bucket{le=\"10\"} 1\n",
		"tls_exec_cycles_bucket{le=\"100\"} 2\n",
		"tls_exec_cycles_bucket{le=\"+Inf\"} 3\n",
		"tls_exec_cycles_sum 555\n",
		"tls_exec_cycles_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Counters export in sorted name order (deterministic scrapes).
	if strings.Index(out, "tls_a_total") > strings.Index(out, "tls_b_total") {
		t.Error("counters not sorted by name")
	}
}
