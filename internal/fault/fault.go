// Package fault builds seeded, deterministic fault plans for stress-testing
// the speculative buffering protocols. A Plan decides, at named hook points
// inside the simulator (spurious squash triggers in the coherence layer,
// delayed remote transfers, forced speculative-buffer overflows in the
// cache, stalled commits, and bit-flipped version tags), whether to inject
// a fault, drawing every decision from a private deterministic stream.
//
// Two properties make the plans usable for campaigns:
//
//   - Determinism: a Plan is a pure function of its Config. Because the
//     simulator itself is deterministic, replaying a (machine, scheme,
//     profile, seed, fault config) tuple reproduces the identical run —
//     including the identical injected faults and the identical invariant
//     report — which is what `tlschaos -replay` relies on.
//   - Boundedness: every plan carries a MaxFaults budget; once spent, all
//     hooks answer "no fault", so an injection storm cannot livelock a run
//     (the head task always eventually commits).
//
// The recoverable kinds (SpuriousSquash, DelayMessage, ForceOverflow,
// StallCommit) only exercise paths the protocol must survive: a correct
// protocol completes the section with zero invariant violations and a
// sequential-equivalent memory image. FlipTag is different — it corrupts a
// version tag, which a correct protocol can NOT survive; it exists to
// prove the runtime invariant checker detects corruption.
package fault

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/rng"
)

// Kind names one fault class.
type Kind uint8

const (
	// SpuriousSquash delivers a violation message for a task that did not
	// actually violate, squashing it and its successors.
	SpuriousSquash Kind = iota
	// DelayMessage adds latency to a remote version transfer or memory
	// round trip (a slow or retried coherence message).
	DelayMessage
	// ForceOverflow steals cache capacity: an insert victimizes a resident
	// line even though a free way exists, forcing speculative versions out
	// to the overflow area (AMM) or to memory (FMM).
	ForceOverflow
	// StallCommit holds the commit token extra cycles (a slow merge or an
	// arbitration stall at the commit point).
	StallCommit
	// FlipTag corrupts the producer task-ID tag of a cached dirty version —
	// deliberate state corruption used to validate the invariant checker.
	FlipTag

	numKinds
)

func (k Kind) String() string {
	switch k {
	case SpuriousSquash:
		return "spurious-squash"
	case DelayMessage:
		return "delay-message"
	case ForceOverflow:
		return "force-overflow"
	case StallCommit:
		return "stall-commit"
	case FlipTag:
		return "flip-tag"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists every fault class.
func Kinds() []Kind {
	return []Kind{SpuriousSquash, DelayMessage, ForceOverflow, StallCommit, FlipTag}
}

// KindFromString parses a Kind by its String() name.
func KindFromString(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if strings.EqualFold(k.String(), name) {
			return k, true
		}
	}
	return 0, false
}

// Config parameterizes one run's fault plan. The zero value injects
// nothing; probabilities are per hook invocation.
type Config struct {
	// Seed drives the plan's private decision stream.
	Seed uint64
	// SquashProb is the chance, per conflict-free write to a word with
	// speculative readers, of delivering a spurious violation.
	SquashProb float64
	// DelayProb is the chance, per remote transfer, of extra latency; a
	// delayed message is late by 1..DelayCycles cycles.
	DelayProb   float64
	DelayCycles uint64
	// OverflowProb is the chance, per cache insert that found a free way,
	// of victimizing a resident line anyway (capacity theft).
	OverflowProb float64
	// StallProb is the chance, per commit, of holding the token an extra
	// 1..StallCycles cycles.
	StallProb   float64
	StallCycles uint64
	// FlipProb is the chance, per completed store, of corrupting the
	// producer tag of one locally cached dirty version.
	FlipProb float64
	// MaxFaults bounds the total injections of the plan (0 = DefaultBudget).
	MaxFaults int
}

// DefaultBudget is the injection budget used when MaxFaults is 0.
const DefaultBudget = 256

// Enabled reports whether the config can inject anything at all.
func (c Config) Enabled() bool {
	return c.SquashProb > 0 || c.DelayProb > 0 || c.OverflowProb > 0 ||
		c.StallProb > 0 || c.FlipProb > 0
}

func (c Config) String() string {
	return fmt.Sprintf("seed=%d squash=%.3f delay=%.3f/%d overflow=%.3f stall=%.3f/%d flip=%.3f budget=%d",
		c.Seed, c.SquashProb, c.DelayProb, c.DelayCycles, c.OverflowProb,
		c.StallProb, c.StallCycles, c.FlipProb, c.max())
}

func (c Config) max() int {
	if c.MaxFaults <= 0 {
		return DefaultBudget
	}
	return c.MaxFaults
}

// CampaignConfig derives a randomized recoverable-fault Config from a
// campaign seed: each seed turns a different mix of fault classes on at
// different rates and magnitudes, so a sweep of seeds covers quiet runs,
// single-fault stress, and combined storms. FlipTag stays off — it injects
// detectable corruption, not survivable stress — and is selected explicitly
// (tlschaos -faults flip-tag).
func CampaignConfig(seed uint64) Config {
	r := rng.New(seed ^ 0xfa017fa017)
	c := Config{Seed: seed}
	if r.Bool(0.7) {
		c.SquashProb = 0.002 + 0.03*r.Float64()
	}
	if r.Bool(0.7) {
		c.DelayProb = 0.05 + 0.3*r.Float64()
		c.DelayCycles = 20 + uint64(r.Intn(500))
	}
	if r.Bool(0.7) {
		c.OverflowProb = 0.02 + 0.2*r.Float64()
	}
	if r.Bool(0.7) {
		c.StallProb = 0.1 + 0.5*r.Float64()
		c.StallCycles = 50 + uint64(r.Intn(2000))
	}
	c.MaxFaults = 64 + r.Intn(512)
	return c
}

// Plan is one run's injector. It is not safe for concurrent use: a plan
// belongs to exactly one (single-threaded) simulation.
type Plan struct {
	cfg    Config
	r      *rng.Source
	counts [numKinds]int
	total  int
}

// NewPlan builds the injector for cfg.
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg, r: rng.New(cfg.Seed ^ 0x9d8f0c3b55aa1234)}
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// note records an injection and reports whether the budget allowed it.
func (p *Plan) note(k Kind) bool {
	if p.total >= p.cfg.max() {
		return false
	}
	p.total++
	p.counts[k]++
	return true
}

// exhausted reports whether the injection budget is spent. Hooks still
// consume one decision draw before checking, so the stream stays aligned
// between runs that differ only in budget.
func (p *Plan) exhausted() bool { return p.total >= p.cfg.max() }

// SpuriousSquash decides whether the current conflict-free write should
// deliver a spurious violation.
func (p *Plan) SpuriousSquash() bool {
	return p.r.Bool(p.cfg.SquashProb) && p.note(SpuriousSquash)
}

// MessageDelay returns extra latency for the current remote transfer
// (0 = on time).
func (p *Plan) MessageDelay() event.Time {
	if !p.r.Bool(p.cfg.DelayProb) || p.exhausted() {
		return 0
	}
	d := event.Time(1 + uint64(p.r.Intn(int(p.cfg.DelayCycles)+1)))
	p.note(DelayMessage)
	return d
}

// ForceOverflow decides whether the current cache insert must evict a
// resident line despite a free way.
func (p *Plan) ForceOverflow() bool {
	return p.r.Bool(p.cfg.OverflowProb) && p.note(ForceOverflow)
}

// CommitStall returns extra cycles the current commit holds the token
// (0 = none).
func (p *Plan) CommitStall() event.Time {
	if !p.r.Bool(p.cfg.StallProb) || p.exhausted() {
		return 0
	}
	d := event.Time(1 + uint64(p.r.Intn(int(p.cfg.StallCycles)+1)))
	p.note(StallCommit)
	return d
}

// FlipTag decides whether to corrupt a cached version tag after the
// current store.
func (p *Plan) FlipTag() bool {
	return p.r.Bool(p.cfg.FlipProb) && p.note(FlipTag)
}

// Pick returns a deterministic index in [0, n) for choosing a fault target
// (e.g. which cached line to corrupt). It panics if n <= 0.
func (p *Plan) Pick(n int) int { return p.r.Intn(n) }

// Total returns how many faults have been injected.
func (p *Plan) Total() int { return p.total }

// Count returns how many faults of kind k have been injected.
func (p *Plan) Count(k Kind) int { return p.counts[k] }

// Summary renders the per-kind injection counts ("none" when quiet).
func (p *Plan) Summary() string {
	if p.total == 0 {
		return "none"
	}
	var parts []string
	for _, k := range Kinds() {
		if n := p.counts[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	return strings.Join(parts, " ")
}

// PlanState is the serializable mid-run state of a Plan: the decision
// stream's RNG and the injection counters. The Config itself travels in the
// checkpoint so a restore can verify the plan matches.
type PlanState struct {
	Config Config
	RNG    [4]uint64
	Counts [int(numKinds)]int
	Total  int
}

// State captures the plan for a checkpoint.
func (p *Plan) State() PlanState {
	return PlanState{Config: p.cfg, RNG: p.r.State(), Counts: p.counts, Total: p.total}
}

// RestoreState reinstates a checkpointed plan. The stored Config must equal
// the plan's: an injector resumed under different parameters would diverge
// from the original run.
func (p *Plan) RestoreState(s PlanState) error {
	if s.Config != p.cfg {
		return fmt.Errorf("fault: checkpoint plan config %v does not match %v", s.Config, p.cfg)
	}
	p.r.SetState(s.RNG)
	p.counts = s.Counts
	p.total = s.Total
	return nil
}

// InjectorState and RestoreInjectorState implement the simulator's
// InjectorCheckpointer interface (sim cannot import fault — fault imports
// sim's dependencies the other way around — so the state travels opaquely as
// gob bytes inside the checkpoint).

// InjectorState serializes the plan's mid-run state.
func (p *Plan) InjectorState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreInjectorState reinstates state produced by InjectorState.
func (p *Plan) RestoreInjectorState(b []byte) error {
	var s PlanState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return fmt.Errorf("fault: decoding injector state: %w", err)
	}
	return p.RestoreState(s)
}
