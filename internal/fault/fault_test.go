package fault

import "testing"

func TestZeroConfigInjectsNothing(t *testing.T) {
	p := NewPlan(Config{Seed: 7})
	for i := 0; i < 10_000; i++ {
		if p.SpuriousSquash() || p.MessageDelay() != 0 || p.ForceOverflow() ||
			p.CommitStall() != 0 || p.FlipTag() {
			t.Fatal("zero config injected a fault")
		}
	}
	if p.Total() != 0 {
		t.Fatalf("zero config counted %d faults", p.Total())
	}
	if p.Summary() != "none" {
		t.Fatalf("summary %q, want none", p.Summary())
	}
}

// drive exercises every hook a fixed number of times and returns the
// resulting decision trace.
func drive(p *Plan, n int) []uint64 {
	var trace []uint64
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		trace = append(trace,
			b(p.SpuriousSquash()),
			uint64(p.MessageDelay()),
			b(p.ForceOverflow()),
			uint64(p.CommitStall()),
			b(p.FlipTag()))
	}
	return trace
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, SquashProb: 0.1, DelayProb: 0.2, DelayCycles: 100,
		OverflowProb: 0.15, StallProb: 0.3, StallCycles: 500, FlipProb: 0.05,
	}
	a := drive(NewPlan(cfg), 2000)
	b := drive(NewPlan(cfg), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	other := cfg
	other.Seed = 43
	c := drive(NewPlan(other), 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision traces")
	}
}

func TestBudgetBoundsInjection(t *testing.T) {
	cfg := Config{Seed: 1, SquashProb: 1, FlipProb: 1, MaxFaults: 10}
	p := NewPlan(cfg)
	for i := 0; i < 1000; i++ {
		p.SpuriousSquash()
		p.FlipTag()
	}
	if p.Total() != 10 {
		t.Fatalf("budget 10 but injected %d", p.Total())
	}
	if p.Count(SpuriousSquash)+p.Count(FlipTag) != 10 {
		t.Fatalf("per-kind counts do not sum to the budget: squash=%d flip=%d",
			p.Count(SpuriousSquash), p.Count(FlipTag))
	}
}

func TestCampaignConfigDeterministicAndRecoverable(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a, b := CampaignConfig(seed), CampaignConfig(seed)
		if a != b {
			t.Fatalf("seed %d: CampaignConfig not deterministic", seed)
		}
		if a.FlipProb != 0 {
			t.Fatalf("seed %d: campaign config enables tag flips", seed)
		}
		if a.MaxFaults <= 0 {
			t.Fatalf("seed %d: unbounded campaign config", seed)
		}
	}
	// Across a window of seeds, every recoverable kind must get exercised.
	var squash, delay, overflow, stall int
	for seed := uint64(0); seed < 100; seed++ {
		c := CampaignConfig(seed)
		if c.SquashProb > 0 {
			squash++
		}
		if c.DelayProb > 0 {
			delay++
		}
		if c.OverflowProb > 0 {
			overflow++
		}
		if c.StallProb > 0 {
			stall++
		}
	}
	if squash == 0 || delay == 0 || overflow == 0 || stall == 0 {
		t.Fatalf("a fault class is never enabled: squash=%d delay=%d overflow=%d stall=%d",
			squash, delay, overflow, stall)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("parsed a bogus kind")
	}
}
