package memsys

import (
	"fmt"

	"repro/internal/ids"
)

// LineKind classifies what a cached line holds with respect to the
// buffering taxonomy.
type LineKind uint8

const (
	// KindInvalid marks an empty way.
	KindInvalid LineKind = iota
	// KindCopy is a read-only copy of some version (architectural data when
	// Producer is None, another task's speculative version otherwise). Copies
	// are never dirty and are silently discarded on displacement —
	// "overflowing read-only, non-speculative data is silently discarded".
	KindCopy
	// KindOwnVersion is a dirty version produced by a local task. Under AMM
	// it is part of the distributed MROB while the task is speculative; under
	// FMM it is (part of) the future state.
	KindOwnVersion
	// KindCommitted is a committed version that has not yet merged with main
	// memory — the lingering state of Lazy AMM schemes.
	KindCommitted
)

func (k LineKind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindCopy:
		return "copy"
	case KindOwnVersion:
		return "own"
	case KindCommitted:
		return "committed"
	default:
		return fmt.Sprintf("LineKind(%d)", uint8(k))
	}
}

// Line is one cache way. Every line carries its producer task ID: this is
// the CTID support of Table 1, required by all MultiT schemes, by Lazy AMM
// version combining, and by all FMM schemes.
type Line struct {
	Tag      LineAddr
	Producer ids.TaskID // task that produced this version; None = architectural
	Kind     LineKind
	Written  WordMask // words written by Producer (own versions only)
	lastUse  uint64
}

// Valid reports whether the way holds a line.
func (l *Line) Valid() bool { return l.Kind != KindInvalid }

// Dirty reports whether displacing the line loses data unless it is saved.
func (l *Line) Dirty() bool { return l.Kind == KindOwnVersion || l.Kind == KindCommitted }

// Config describes a cache's geometry.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	sets := c.SizeBytes / (LineBytes * c.Ways)
	if sets < 1 {
		sets = 1
	}
	return sets
}

// Cache is a set-associative, write-back cache whose tag match includes the
// producer task ID (CTID + the cache retrieval logic, CRL). A MultiT&MV
// cache may hold several lines with the same address tag and different task
// IDs in the same set; that is exactly what creates same-set version
// pressure for mostly-privatization applications (P3m in Figure 10).
type Cache struct {
	cfg     Config
	sets    int
	ways    int
	lines   []Line
	useTick uint64

	// Statistics.
	hits      uint64
	misses    uint64
	evictions uint64

	// pressure, when non-nil, is the fault-injection capacity thief: an
	// Insert that found a free way consults it and, if it fires, victimizes
	// a resident line of the set anyway. Nil (the default) costs nothing.
	pressure func() bool
}

// NewCache returns an empty cache with the given geometry.
func NewCache(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic("memsys: cache with no ways")
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]Line, sets*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

func (c *Cache) set(tag LineAddr) []Line {
	s := int(uint64(tag) % uint64(c.sets))
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *Cache) touch(l *Line) {
	c.useTick++
	l.lastUse = c.useTick
}

// Probe looks up the exact version (tag, producer). It returns the line and
// whether it was found, updating LRU state and hit/miss counters.
func (c *Cache) Probe(tag LineAddr, producer ids.TaskID) (*Line, bool) {
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if l.Valid() && l.Tag == tag && l.Producer == producer {
			c.touch(l)
			c.hits++
			return l, true
		}
	}
	c.misses++
	return nil, false
}

// Peek is Probe without statistics or LRU side effects.
func (c *Cache) Peek(tag LineAddr, producer ids.TaskID) (*Line, bool) {
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if l.Valid() && l.Tag == tag && l.Producer == producer {
			return l, true
		}
	}
	return nil, false
}

// VersionsOf returns all valid lines with the given tag, in no particular
// order. This is the multi-match case the cache retrieval logic (CRL) must
// resolve on external requests under MultiT&MV.
func (c *Cache) VersionsOf(tag LineAddr) []*Line {
	var out []*Line
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if l.Valid() && l.Tag == tag {
			out = append(out, l)
		}
	}
	return out
}

// ForVersionsOf visits every valid line with the given tag in way order —
// the allocation-free form of VersionsOf for hot paths (VCL merging). The
// visitor may mutate the line but must not insert or invalidate.
func (c *Cache) ForVersionsOf(tag LineAddr, visit func(*Line)) {
	set := c.set(tag)
	for i := range set {
		l := &set[i]
		if l.Valid() && l.Tag == tag {
			visit(l)
		}
	}
}

// BestVersionFor performs the CRL selection: among cached versions of tag,
// it returns the one with the highest producer ID that is still at or below
// reader, preferring later versions. Copies and versions alike qualify —
// the reader needs data, not ownership. It returns nil when no qualifying
// version is cached.
func (c *Cache) BestVersionFor(tag LineAddr, reader ids.TaskID) *Line {
	var best *Line
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if !l.Valid() || l.Tag != tag {
			continue
		}
		if l.Producer.After(reader) {
			continue
		}
		if best == nil || l.Producer.After(best.Producer) {
			best = l
		}
	}
	return best
}

// EvictionCandidate reports the line that would be displaced to make room
// for a new line with the given tag, or nil if a free way exists.
// Replaceable lines — clean copies (dropped silently) and committed-unmerged
// versions (merged on displacement by the VCL/MTID) — are plain LRU
// citizens; speculative versions are protected and only victimized when a
// set holds nothing else (they must go to the overflow area or, under FMM,
// to memory).
func (c *Cache) EvictionCandidate(tag LineAddr) *Line {
	set := c.set(tag)
	for i := range set {
		if !set[i].Valid() {
			return nil
		}
	}
	return victimAmong(set)
}

// victimAmong applies the replacement policy to the valid lines of a set,
// ignoring free ways: LRU among replaceable lines first, LRU speculative
// version as a last resort. It returns nil for an all-invalid set.
func victimAmong(set []Line) *Line {
	var bestReplaceable, bestOwn *Line
	for i := range set {
		l := &set[i]
		if !l.Valid() {
			continue
		}
		if l.Kind == KindOwnVersion {
			if bestOwn == nil || l.lastUse < bestOwn.lastUse {
				bestOwn = l
			}
		} else if bestReplaceable == nil || l.lastUse < bestReplaceable.lastUse {
			bestReplaceable = l
		}
	}
	if bestReplaceable != nil {
		return bestReplaceable
	}
	return bestOwn
}

// Insert places a new line, returning the displaced line (by value) and
// whether a displacement of a dirty line occurred. The caller decides what
// to do with the victim (drop, overflow area, VCL merge, memory write-back)
// according to the scheme in force. Inserting a (tag, producer) pair that is
// already present updates it in place with no eviction.
func (c *Cache) Insert(tag LineAddr, producer ids.TaskID, kind LineKind) (victim Line, displacedDirty bool) {
	if kind == KindInvalid {
		panic("memsys: inserting an invalid line")
	}
	if l, ok := c.Peek(tag, producer); ok {
		l.Kind = kind
		c.touch(l)
		return Line{}, false
	}
	set := c.set(tag)
	var slot *Line
	for i := range set {
		if !set[i].Valid() {
			slot = &set[i]
			break
		}
	}
	if slot != nil && c.pressure != nil && c.pressure() {
		// Capacity theft: displace a resident line despite the free way.
		if v := victimAmong(set); v != nil {
			slot = v
		}
	}
	if slot == nil {
		slot = victimAmong(set)
	}
	if slot.Valid() {
		victim = *slot
		displacedDirty = victim.Dirty()
		c.evictions++
	}
	*slot = Line{Tag: tag, Producer: producer, Kind: kind}
	c.touch(slot)
	return victim, displacedDirty
}

// Invalidate removes the exact version (tag, producer) if present and
// returns it.
func (c *Cache) Invalidate(tag LineAddr, producer ids.TaskID) (Line, bool) {
	if l, ok := c.Peek(tag, producer); ok {
		old := *l
		*l = Line{}
		return old, true
	}
	return Line{}, false
}

// InvalidateWhere removes every line for which keep returns true and
// returns how many were removed. Squash recovery under AMM is exactly this:
// gang-invalidating the speculative lines of the offending tasks.
func (c *Cache) InvalidateWhere(match func(*Line) bool) int {
	n := 0
	for i := range c.lines {
		l := &c.lines[i]
		if l.Valid() && match(l) {
			*l = Line{}
			n++
		}
	}
	return n
}

// ForEach visits every valid line. The visitor must not insert or
// invalidate.
func (c *Cache) ForEach(visit func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid() {
			visit(&c.lines[i])
		}
	}
}

// LiveLines returns the number of valid lines — the occupancy gauge sampled
// by the observability layer.
func (c *Cache) LiveLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}

// CountWhere returns the number of valid lines matching the predicate.
func (c *Cache) CountWhere(match func(*Line) bool) int {
	n := 0
	c.ForEach(func(l *Line) {
		if match(l) {
			n++
		}
	})
	return n
}

// TaskLines returns the lines whose producer is the given task.
func (c *Cache) TaskLines(task ids.TaskID) []*Line {
	var out []*Line
	c.ForEach(func(l *Line) {
		if l.Producer == task {
			out = append(out, l)
		}
	})
	return out
}

// LocalSpecVersionOwner returns the producer of a dirty speculative version
// of tag held locally that belongs to a task other than writer, or None.
// This is the check that makes MultiT&SV stall: "the processor stalls when
// a local speculative task is about to create its own version of a variable
// that already has a speculative version in the local buffer".
func (c *Cache) LocalSpecVersionOwner(tag LineAddr, writer ids.TaskID) ids.TaskID {
	owner := ids.None
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if l.Valid() && l.Tag == tag && l.Kind == KindOwnVersion && l.Producer != writer {
			if owner == ids.None || l.Producer.Before(owner) {
				owner = l.Producer
			}
		}
	}
	return owner
}

// SetPressure installs the fault-injection capacity thief consulted by
// Insert whenever a free way is found; when it fires, the insert victimizes
// a resident line of the set anyway, forcing speculative versions out to the
// overflow area or to memory. A nil hook (the default) restores normal
// behavior.
func (c *Cache) SetPressure(h func() bool) { c.pressure = h }

// Stats returns cumulative (hits, misses, evictions).
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// Flush invalidates the entire cache without writing anything back; tests
// and section boundaries use it.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
}
