package memsys

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestMHBAppendLen(t *testing.T) {
	m := NewMHB()
	if m.Len() != 0 {
		t.Fatal("new MHB not empty")
	}
	m.Append(4, ids.None, ids.TaskID(1))
	m.Append(4, ids.TaskID(1), ids.TaskID(2))
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.EntriesOverwrittenBy(ids.TaskID(2)) != 1 {
		t.Fatal("EntriesOverwrittenBy wrong")
	}
}

func TestMHBAppendOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append must panic")
		}
	}()
	m := NewMHB()
	m.Append(4, ids.None, ids.TaskID(3))
	m.Append(8, ids.None, ids.TaskID(2))
}

func TestMHBRecoveryReverseOrder(t *testing.T) {
	m := NewMHB()
	// Task 2 overwrote twice (lines 4, 8), task 3 once (line 4 again).
	m.Append(4, ids.None, ids.TaskID(2))
	m.Append(8, ids.TaskID(1), ids.TaskID(2))
	m.Append(4, ids.TaskID(2), ids.TaskID(3))
	undo := m.PopForRecovery(ids.TaskID(2))
	if len(undo) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(undo))
	}
	// Youngest first: the overwrite by task 3 must be undone before the
	// overwrites by task 2, and within a task in reverse program order.
	if undo[0].Overwriter != ids.TaskID(3) || undo[0].Producer != ids.TaskID(2) {
		t.Fatalf("first undo = %+v, want task 3's overwrite", undo[0])
	}
	if undo[1].Tag != 8 || undo[2].Tag != 4 {
		t.Fatalf("intra-task undo order wrong: %+v", undo[1:])
	}
	if m.Len() != 0 {
		t.Fatal("entries left after full recovery")
	}
}

func TestMHBRecoveryKeepsPredecessors(t *testing.T) {
	m := NewMHB()
	m.Append(4, ids.None, ids.TaskID(1))
	m.Append(8, ids.None, ids.TaskID(3))
	undo := m.PopForRecovery(ids.TaskID(2))
	if len(undo) != 1 || undo[0].Overwriter != ids.TaskID(3) {
		t.Fatalf("undo = %+v", undo)
	}
	if m.Len() != 1 {
		t.Fatal("predecessor entry was dropped")
	}
}

func TestMHBReleaseCommitted(t *testing.T) {
	m := NewMHB()
	m.Append(4, ids.None, ids.TaskID(1))
	m.Append(8, ids.None, ids.TaskID(2))
	m.Append(12, ids.None, ids.TaskID(3))
	if freed := m.ReleaseCommitted(ids.TaskID(2)); freed != 2 {
		t.Fatalf("freed %d, want 2", freed)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after release", m.Len())
	}
}

func TestMHBStats(t *testing.T) {
	m := NewMHB()
	m.Append(4, ids.None, ids.TaskID(1))
	m.Append(8, ids.None, ids.TaskID(2))
	m.PopForRecovery(ids.TaskID(2))
	appends, restored, peak := m.Stats()
	if appends != 2 || restored != 1 || peak != 2 {
		t.Fatalf("stats = (%d, %d, %d)", appends, restored, peak)
	}
}

// Property: recovery plus retained entries partition the log, and the undo
// list is in non-increasing overwriter order (reverse task order).
func TestMHBRecoveryProperty(t *testing.T) {
	f := func(overwriters []uint8, cut uint8) bool {
		m := NewMHB()
		// Entries arrive in local program order: sort the random overwriters.
		sorted := append([]uint8(nil), overwriters...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i]%8 < sorted[j]%8 })
		for i, o := range sorted {
			m.Append(LineAddr(i), ids.None, ids.TaskID(o%8)+1)
		}
		first := ids.TaskID(cut%8) + 1
		before := m.Len()
		undo := m.PopForRecovery(first)
		if len(undo)+m.Len() != before {
			return false
		}
		for i := 1; i < len(undo); i++ {
			if undo[i].Overwriter.After(undo[i-1].Overwriter) {
				return false
			}
		}
		for _, e := range undo {
			if e.Overwriter.Before(first) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverflowSpillRetrieve(t *testing.T) {
	o := NewOverflow()
	o.Spill(4, ids.TaskID(1), WordMask(0).Set(3))
	if !o.Has(4, ids.TaskID(1)) {
		t.Fatal("spilled version not found")
	}
	if o.Has(4, ids.TaskID(2)) {
		t.Fatal("wrong version found")
	}
	w, ok := o.Retrieve(4, ids.TaskID(1))
	if !ok || !w.Has(3) {
		t.Fatal("retrieve failed")
	}
	if o.Has(4, ids.TaskID(1)) {
		t.Fatal("version still present after retrieve")
	}
	if _, ok := o.Retrieve(4, ids.TaskID(1)); ok {
		t.Fatal("double retrieve succeeded")
	}
}

func TestOverflowSpillMergesMasks(t *testing.T) {
	o := NewOverflow()
	o.Spill(4, ids.TaskID(1), WordMask(0).Set(1))
	o.Spill(4, ids.TaskID(1), WordMask(0).Set(2))
	w, _ := o.Retrieve(4, ids.TaskID(1))
	if !w.Has(1) || !w.Has(2) {
		t.Fatal("re-spill did not merge written masks")
	}
}

func TestOverflowTaskLinesAndDrop(t *testing.T) {
	o := NewOverflow()
	o.Spill(4, ids.TaskID(1), 1)
	o.Spill(8, ids.TaskID(1), 1)
	o.Spill(12, ids.TaskID(2), 1)
	if got := len(o.TaskLines(ids.TaskID(1))); got != 2 {
		t.Fatalf("TaskLines = %d, want 2", got)
	}
	if n := o.DropTask(ids.TaskID(1)); n != 2 {
		t.Fatalf("DropTask = %d, want 2", n)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d after drop", o.Len())
	}
}

func TestOverflowStats(t *testing.T) {
	o := NewOverflow()
	o.Spill(4, ids.TaskID(1), 1)
	o.Spill(8, ids.TaskID(1), 1)
	o.Retrieve(4, ids.TaskID(1))
	spills, retrievals, peak := o.Stats()
	if spills != 2 || retrievals != 1 || peak != 2 {
		t.Fatalf("stats = (%d, %d, %d)", spills, retrievals, peak)
	}
}

func TestMemoryWithoutMTIDAcceptsEverything(t *testing.T) {
	m := NewMemory(false)
	if !m.WriteBack(4, ids.TaskID(5)) {
		t.Fatal("write-back rejected without MTID")
	}
	if !m.WriteBack(4, ids.TaskID(2)) {
		t.Fatal("stale write-back rejected without MTID")
	}
	if m.Version(4) != ids.TaskID(2) {
		t.Fatal("without MTID, last write wins (caller must order)")
	}
}

func TestMemoryMTIDRejectsStale(t *testing.T) {
	m := NewMemory(true)
	if !m.WriteBack(4, ids.TaskID(5)) {
		t.Fatal("first write-back rejected")
	}
	if m.WriteBack(4, ids.TaskID(2)) {
		t.Fatal("MTID accepted an earlier version over a later one")
	}
	if m.Version(4) != ids.TaskID(5) {
		t.Fatal("memory lost the newer version")
	}
	if m.WriteBack(4, ids.TaskID(5)) {
		t.Fatal("MTID accepted a duplicate of the same version")
	}
	if !m.WriteBack(4, ids.TaskID(7)) {
		t.Fatal("newer version rejected")
	}
	wb, rej := m.Stats()
	if wb != 4 || rej != 2 {
		t.Fatalf("stats = (%d, %d)", wb, rej)
	}
}

func TestMemoryRestoreBypassesMTID(t *testing.T) {
	m := NewMemory(true)
	m.WriteBack(4, ids.TaskID(7))
	m.Restore(4, ids.TaskID(3))
	if m.Version(4) != ids.TaskID(3) {
		t.Fatal("restore did not bypass MTID")
	}
	m.Restore(4, ids.None)
	if m.Version(4) != ids.None {
		t.Fatal("restore to architectural state failed")
	}
	if m.LinesWithVersions() != 0 {
		t.Fatal("architectural restore should clear the version entry")
	}
}

// Property: with MTID, memory's version for a line is the maximum producer
// ever offered.
func TestMTIDMaxProperty(t *testing.T) {
	f := func(producers []uint8) bool {
		m := NewMemory(true)
		var max ids.TaskID
		for _, p := range producers {
			task := ids.TaskID(p) + 1
			m.WriteBack(4, task)
			if task.After(max) {
				max = task
			}
		}
		return m.Version(4) == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
