package memsys

import "repro/internal/ids"

// versionKey identifies one version of one line.
type versionKey struct {
	tag      LineAddr
	producer ids.TaskID
}

// Overflow is the per-processor special memory area into which speculative
// versions displaced from the cache hierarchy safely overflow under AMM
// schemes ([16], modelled in Section 4.1 of the paper). It prevents
// processor stalls on cache conflicts, but "such an overflow area is slow
// when asked to return versions, which especially hurts when committing a
// task" — the timing model charges OverflowAccess cycles for every retrieval
// from here.
//
// Besides the version store itself, the area keeps a per-task index in
// spill order so that commit-time drains visit lines deterministically (map
// iteration order must never reach the timing model) and without
// allocating. Index lists may lag behind individual retrievals — entries
// are checked against the store when the index is read — and are recycled
// once their task drains or is dropped.
type Overflow struct {
	entries map[versionKey]WordMask
	// byTask lists each task's spilled line addresses in first-spill order;
	// a listed address whose entry has been retrieved is skipped on read.
	byTask map[ids.TaskID][]LineAddr
	// listFree pools the per-task lists of drained/dropped tasks.
	listFree [][]LineAddr

	// Statistics.
	spills     uint64
	retrievals uint64
	peak       int
}

// NewOverflow returns an empty overflow area.
func NewOverflow() *Overflow {
	return &Overflow{
		entries: make(map[versionKey]WordMask),
		byTask:  make(map[ids.TaskID][]LineAddr),
	}
}

// Spill stores a displaced speculative version.
func (o *Overflow) Spill(tag LineAddr, producer ids.TaskID, written WordMask) {
	k := versionKey{tag, producer}
	if _, ok := o.entries[k]; !ok {
		l, exists := o.byTask[producer]
		if !exists && len(o.listFree) > 0 {
			n := len(o.listFree)
			l = o.listFree[n-1]
			o.listFree = o.listFree[:n-1]
		}
		// A spill-retrieve-respill cycle leaves the tag listed; don't list it
		// twice or TaskCount would overcount.
		dup := false
		for _, t := range l {
			if t == tag {
				dup = true
				break
			}
		}
		if !dup {
			l = append(l, tag)
		}
		o.byTask[producer] = l
	}
	o.entries[k] |= written
	o.spills++
	if len(o.entries) > o.peak {
		o.peak = len(o.entries)
	}
}

// Has reports whether the exact version is in the overflow area.
func (o *Overflow) Has(tag LineAddr, producer ids.TaskID) bool {
	_, ok := o.entries[versionKey{tag, producer}]
	return ok
}

// Retrieve removes and returns the version, recording the (slow) access.
// The task's index entry is left to lazy cleanup.
func (o *Overflow) Retrieve(tag LineAddr, producer ids.TaskID) (WordMask, bool) {
	k := versionKey{tag, producer}
	w, ok := o.entries[k]
	if ok {
		delete(o.entries, k)
		o.retrievals++
	}
	return w, ok
}

// TaskCount returns how many versions owned by task are currently
// overflowed, without allocating.
func (o *Overflow) TaskCount(task ids.TaskID) int {
	n := 0
	for _, tag := range o.byTask[task] {
		if _, ok := o.entries[versionKey{tag, task}]; ok {
			n++
		}
	}
	return n
}

// DrainTask retrieves every version owned by task in first-spill order,
// calling visit for each, then releases the task's index. It is the
// allocation-free, deterministic commit-time drain ("especially hurts when
// committing a task" — the caller charges the per-line retrieval cost).
func (o *Overflow) DrainTask(task ids.TaskID, visit func(tag LineAddr, written WordMask)) {
	list, ok := o.byTask[task]
	if !ok {
		return
	}
	for _, tag := range list {
		k := versionKey{tag, task}
		w, live := o.entries[k]
		if !live {
			continue // retrieved individually earlier
		}
		delete(o.entries, k)
		o.retrievals++
		visit(tag, w)
	}
	delete(o.byTask, task)
	o.listFree = append(o.listFree, list[:0])
}

// TaskLines returns the line addresses of versions owned by task, in
// first-spill order. Commit of a task with overflowed state must visit all
// of them; prefer TaskCount/DrainTask on hot paths (this form allocates).
func (o *Overflow) TaskLines(task ids.TaskID) []LineAddr {
	var out []LineAddr
	for _, tag := range o.byTask[task] {
		if _, ok := o.entries[versionKey{tag, task}]; ok {
			out = append(out, tag)
		}
	}
	return out
}

// DropTask removes every version owned by task (squash recovery) and
// returns how many were dropped.
func (o *Overflow) DropTask(task ids.TaskID) int {
	n := 0
	list, ok := o.byTask[task]
	if !ok {
		return 0
	}
	for _, tag := range list {
		k := versionKey{tag, task}
		if _, live := o.entries[k]; live {
			delete(o.entries, k)
			n++
		}
	}
	delete(o.byTask, task)
	o.listFree = append(o.listFree, list[:0])
	return n
}

// Len returns the number of versions currently overflowed.
func (o *Overflow) Len() int { return len(o.entries) }

// Stats returns cumulative (spills, retrievals, peak occupancy).
func (o *Overflow) Stats() (spills, retrievals uint64, peak int) {
	return o.spills, o.retrievals, o.peak
}
