package memsys

import "repro/internal/ids"

// versionKey identifies one version of one line.
type versionKey struct {
	tag      LineAddr
	producer ids.TaskID
}

// Overflow is the per-processor special memory area into which speculative
// versions displaced from the cache hierarchy safely overflow under AMM
// schemes ([16], modelled in Section 4.1 of the paper). It prevents
// processor stalls on cache conflicts, but "such an overflow area is slow
// when asked to return versions, which especially hurts when committing a
// task" — the timing model charges OverflowAccess cycles for every retrieval
// from here.
type Overflow struct {
	entries map[versionKey]WordMask

	// Statistics.
	spills     uint64
	retrievals uint64
	peak       int
}

// NewOverflow returns an empty overflow area.
func NewOverflow() *Overflow {
	return &Overflow{entries: make(map[versionKey]WordMask)}
}

// Spill stores a displaced speculative version.
func (o *Overflow) Spill(tag LineAddr, producer ids.TaskID, written WordMask) {
	o.entries[versionKey{tag, producer}] |= written
	o.spills++
	if len(o.entries) > o.peak {
		o.peak = len(o.entries)
	}
}

// Has reports whether the exact version is in the overflow area.
func (o *Overflow) Has(tag LineAddr, producer ids.TaskID) bool {
	_, ok := o.entries[versionKey{tag, producer}]
	return ok
}

// Retrieve removes and returns the version, recording the (slow) access.
func (o *Overflow) Retrieve(tag LineAddr, producer ids.TaskID) (WordMask, bool) {
	k := versionKey{tag, producer}
	w, ok := o.entries[k]
	if ok {
		delete(o.entries, k)
		o.retrievals++
	}
	return w, ok
}

// TaskLines returns the line addresses of versions owned by task, in
// unspecified order. Commit of a task with overflowed state must visit all
// of them.
func (o *Overflow) TaskLines(task ids.TaskID) []LineAddr {
	var out []LineAddr
	for k := range o.entries {
		if k.producer == task {
			out = append(out, k.tag)
		}
	}
	return out
}

// DropTask removes every version owned by task (squash recovery) and
// returns how many were dropped.
func (o *Overflow) DropTask(task ids.TaskID) int {
	n := 0
	for k := range o.entries {
		if k.producer == task {
			delete(o.entries, k)
			n++
		}
	}
	return n
}

// Len returns the number of versions currently overflowed.
func (o *Overflow) Len() int { return len(o.entries) }

// Stats returns cumulative (spills, retrievals, peak occupancy).
func (o *Overflow) Stats() (spills, retrievals uint64, peak int) {
	return o.spills, o.retrievals, o.peak
}
