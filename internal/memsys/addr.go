// Package memsys models the memory-system state the buffering schemes
// manage: word/line addressing, versioned set-associative caches with task-ID
// tags (the CTID support), the per-processor overflow area for speculative
// state, the per-processor memory-system history buffer (MHB / undo log) of
// FMM schemes, and main memory with the memory task-ID filter (MTID).
package memsys

import "fmt"

// Addr is a word address. Words are 4 bytes, matching the Fortran numerical
// codes of the evaluation; violation detection in the baseline protocol is
// word-granularity ("squashes only on out-of-order RAWs to the same word").
type Addr uint64

// LineAddr is a cache-line address. Lines are 64 bytes = 16 words, the line
// size of every cache in the paper's two machines.
type LineAddr uint64

const (
	// WordsPerLine is the number of 4-byte words in a 64-byte line.
	WordsPerLine = 16
	// lineShift converts between word and line addresses.
	lineShift = 4
	// LineBytes is the line size in bytes.
	LineBytes = 64
	// WordBytes is the word size in bytes.
	WordBytes = 4
)

// Line returns the address of the line containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> lineShift) }

// Offset returns the word offset of a within its line, in [0, WordsPerLine).
func (a Addr) Offset() int { return int(a & (WordsPerLine - 1)) }

func (a Addr) String() string { return fmt.Sprintf("w%#x", uint64(a)) }

// Word returns the address of word offset off within line l.
func (l LineAddr) Word(off int) Addr {
	return Addr(uint64(l)<<lineShift | uint64(off&(WordsPerLine-1)))
}

func (l LineAddr) String() string { return fmt.Sprintf("l%#x", uint64(l)) }

// WordMask is a bitmask over the words of one line.
type WordMask uint16

// Set returns m with word off marked.
func (m WordMask) Set(off int) WordMask { return m | 1<<uint(off&(WordsPerLine-1)) }

// Has reports whether word off is marked.
func (m WordMask) Has(off int) bool { return m&(1<<uint(off&(WordsPerLine-1))) != 0 }

// Count returns the number of marked words.
func (m WordMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
