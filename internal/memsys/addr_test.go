package memsys

import (
	"testing"
	"testing/quick"
)

func TestAddrLineOffset(t *testing.T) {
	tests := []struct {
		addr Addr
		line LineAddr
		off  int
	}{
		{0, 0, 0},
		{15, 0, 15},
		{16, 1, 0},
		{17, 1, 1},
		{0xabcd, 0xabc, 0xd},
	}
	for _, tt := range tests {
		if got := tt.addr.Line(); got != tt.line {
			t.Errorf("%v.Line() = %v, want %v", tt.addr, got, tt.line)
		}
		if got := tt.addr.Offset(); got != tt.off {
			t.Errorf("%v.Offset() = %d, want %d", tt.addr, got, tt.off)
		}
	}
}

// Property: Line/Offset decompose and Word recomposes exactly.
func TestAddrRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		return addr.Line().Word(addr.Offset()) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordMask(t *testing.T) {
	var m WordMask
	if m.Count() != 0 {
		t.Fatal("empty mask count != 0")
	}
	m = m.Set(0).Set(15).Set(7)
	if !m.Has(0) || !m.Has(7) || !m.Has(15) {
		t.Fatal("set words not reported")
	}
	if m.Has(1) {
		t.Fatal("unset word reported")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if m.Set(7).Count() != 3 {
		t.Fatal("re-setting a word changed the count")
	}
}

func TestWordMaskOffsetWraps(t *testing.T) {
	// Offsets are masked to the line width, matching Addr.Offset semantics.
	m := WordMask(0).Set(16)
	if !m.Has(0) {
		t.Fatal("offset 16 should alias word 0")
	}
}

func TestStrings(t *testing.T) {
	if Addr(0x20).String() != "w0x20" {
		t.Errorf("Addr string = %q", Addr(0x20).String())
	}
	if LineAddr(0x2).String() != "l0x2" {
		t.Errorf("LineAddr string = %q", LineAddr(0x2).String())
	}
}
