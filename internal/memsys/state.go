package memsys

import (
	"fmt"
	"sort"

	"repro/internal/ids"
)

// This file is the checkpoint surface of the memory system. Every state
// struct is fully exported (the checkpoint codec is encoding/gob, which
// skips unexported fields) and serializes in a canonical order so identical
// simulator states produce identical checkpoint bytes.
//
// Byte-exactness of a restored run leans on two subtleties here:
//   - Cache lines restore into their exact way slots with their exact
//     lastUse ticks, because LRU victim selection and the way-order walks
//     (ForVersionsOf, BestVersionFor ties) depend on both.
//   - Overflow per-task index lists restore verbatim, including entries
//     whose version has been retrieved: the re-spill duplicate check and the
//     commit-time drain order read the raw list.

// CacheLineState is one valid cache way in a checkpoint.
type CacheLineState struct {
	Way      int32 // index into the cache's lines slice
	Tag      LineAddr
	Producer ids.TaskID
	Kind     LineKind
	Written  WordMask
	LastUse  uint64
}

// CacheState is the serializable state of a Cache.
type CacheState struct {
	Sets    int
	Ways    int
	Lines   []CacheLineState // valid lines in way order
	UseTick uint64

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// State captures the cache for a checkpoint.
func (c *Cache) State() CacheState {
	s := CacheState{
		Sets: c.sets, Ways: c.ways, UseTick: c.useTick,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
	for i := range c.lines {
		l := &c.lines[i]
		if !l.Valid() {
			continue
		}
		s.Lines = append(s.Lines, CacheLineState{
			Way: int32(i), Tag: l.Tag, Producer: l.Producer,
			Kind: l.Kind, Written: l.Written, LastUse: l.lastUse,
		})
	}
	return s
}

// RestoreState reinstates a checkpointed cache. The geometry must match the
// machine configuration the cache was built with.
func (c *Cache) RestoreState(s CacheState) error {
	if s.Sets != c.sets || s.Ways != c.ways {
		return fmt.Errorf("memsys: cache %s geometry mismatch: checkpoint %dx%d, machine %dx%d",
			c.cfg.Name, s.Sets, s.Ways, c.sets, c.ways)
	}
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	for _, ls := range s.Lines {
		if int(ls.Way) < 0 || int(ls.Way) >= len(c.lines) {
			return fmt.Errorf("memsys: cache %s way %d out of range", c.cfg.Name, ls.Way)
		}
		c.lines[ls.Way] = Line{
			Tag: ls.Tag, Producer: ls.Producer, Kind: ls.Kind,
			Written: ls.Written, lastUse: ls.LastUse,
		}
	}
	c.useTick = s.UseTick
	c.hits, c.misses, c.evictions = s.Hits, s.Misses, s.Evictions
	return nil
}

// OverflowEntryState is one spilled version in a checkpoint.
type OverflowEntryState struct {
	Tag      LineAddr
	Producer ids.TaskID
	Written  WordMask
}

// OverflowTaskState is one task's spill-order index list, verbatim.
type OverflowTaskState struct {
	Task ids.TaskID
	Tags []LineAddr
}

// OverflowState is the serializable state of an Overflow area.
type OverflowState struct {
	Entries []OverflowEntryState // sorted by (tag, producer)
	ByTask  []OverflowTaskState  // sorted by task; lists verbatim

	Spills     uint64
	Retrievals uint64
	Peak       int
}

// State captures the overflow area for a checkpoint.
func (o *Overflow) State() OverflowState {
	s := OverflowState{Spills: o.spills, Retrievals: o.retrievals, Peak: o.peak}
	for k, w := range o.entries {
		s.Entries = append(s.Entries, OverflowEntryState{Tag: k.tag, Producer: k.producer, Written: w})
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		if s.Entries[i].Tag != s.Entries[j].Tag {
			return s.Entries[i].Tag < s.Entries[j].Tag
		}
		return s.Entries[i].Producer < s.Entries[j].Producer
	})
	for task, list := range o.byTask {
		s.ByTask = append(s.ByTask, OverflowTaskState{
			Task: task, Tags: append([]LineAddr(nil), list...),
		})
	}
	sort.Slice(s.ByTask, func(i, j int) bool { return s.ByTask[i].Task < s.ByTask[j].Task })
	return s
}

// RestoreState reinstates a checkpointed overflow area.
func (o *Overflow) RestoreState(s OverflowState) {
	o.entries = make(map[versionKey]WordMask, len(s.Entries))
	for _, e := range s.Entries {
		o.entries[versionKey{e.Tag, e.Producer}] = e.Written
	}
	o.byTask = make(map[ids.TaskID][]LineAddr, len(s.ByTask))
	for _, t := range s.ByTask {
		o.byTask[t.Task] = append([]LineAddr(nil), t.Tags...)
	}
	o.listFree = nil
	o.spills, o.retrievals, o.peak = s.Spills, s.Retrievals, s.Peak
}

// MHBState is the serializable state of an MHB undo log.
type MHBState struct {
	Entries []LogEntry // live entries in append order

	Appends  uint64
	Restored uint64
	Peak     int
}

// State captures the undo log for a checkpoint.
func (m *MHB) State() MHBState {
	return MHBState{
		Entries: append([]LogEntry(nil), m.entries...),
		Appends: m.appends, Restored: m.restored, Peak: m.peak,
	}
}

// RestoreState reinstates a checkpointed undo log.
func (m *MHB) RestoreState(s MHBState) {
	m.entries = append(m.entries[:0], s.Entries...)
	m.appends, m.restored, m.peak = s.Appends, s.Restored, s.Peak
}

// MemoryVersionState is one line's merged version in a checkpoint.
type MemoryVersionState struct {
	Tag      LineAddr
	Producer ids.TaskID
}

// MemoryState is the serializable state of a Memory.
type MemoryState struct {
	MTIDEnabled bool
	Versions    []MemoryVersionState // sorted by tag

	Writebacks uint64
	Rejected   uint64
}

// State captures main memory for a checkpoint.
func (m *Memory) State() MemoryState {
	s := MemoryState{MTIDEnabled: m.mtidEnabled, Writebacks: m.writebacks, Rejected: m.rejected}
	for tag, producer := range m.version {
		s.Versions = append(s.Versions, MemoryVersionState{Tag: tag, Producer: producer})
	}
	sort.Slice(s.Versions, func(i, j int) bool { return s.Versions[i].Tag < s.Versions[j].Tag })
	return s
}

// RestoreState reinstates checkpointed main memory, including whether the
// MTID filter is armed.
func (m *Memory) RestoreState(s MemoryState) {
	m.mtidEnabled = s.MTIDEnabled
	m.version = make(map[LineAddr]ids.TaskID, len(s.Versions))
	for _, v := range s.Versions {
		m.version[v.Tag] = v.Producer
	}
	m.writebacks, m.rejected = s.Writebacks, s.Rejected
}
