package memsys

import (
	"repro/internal/ids"
	"repro/internal/obs"
)

// Memory models main memory's version state. Under AMM it holds only
// architectural (safe) data; under FMM it holds the latest future state and
// uses the memory task-ID (MTID) support to selectively reject write-backs
// of versions older than the one it already has, keeping memory updated "in
// increasing task-ID order for any given variable" without the VCL.
type Memory struct {
	mtidEnabled bool
	version     map[LineAddr]ids.TaskID // latest producer merged per line

	// Statistics.
	writebacks uint64
	rejected   uint64

	// Observability mirrors of the statistics (nil = disabled, free).
	obsWritebacks *obs.Counter
	obsRejected   *obs.Counter
}

// SetObs installs observability counters mirroring the write-back
// statistics. Nil counters (the default) are free no-ops.
func (m *Memory) SetObs(writebacks, rejected *obs.Counter) {
	m.obsWritebacks = writebacks
	m.obsRejected = rejected
}

// NewMemory returns an empty memory. When mtid is true the memory carries
// task-ID tags per line and filters stale write-backs; when false every
// write-back is accepted (the caller — an AMM scheme using the VCL — must
// itself guarantee in-order merging).
func NewMemory(mtid bool) *Memory {
	return &Memory{
		mtidEnabled: mtid,
		version:     make(map[LineAddr]ids.TaskID),
	}
}

// MTIDEnabled reports whether the memory filters stale write-backs.
func (m *Memory) MTIDEnabled() bool { return m.mtidEnabled }

// Version returns the producer of the version currently in memory for tag
// (None when only the pre-section architectural data is there).
func (m *Memory) Version(tag LineAddr) ids.TaskID { return m.version[tag] }

// WriteBack merges a version into memory. With MTID, the write-back is
// discarded if memory already holds a version from the same or a later
// task; it returns whether the write-back was accepted. Without MTID every
// write-back is accepted in arrival order.
func (m *Memory) WriteBack(tag LineAddr, producer ids.TaskID) bool {
	m.writebacks++
	m.obsWritebacks.Inc()
	if m.mtidEnabled {
		if cur, ok := m.version[tag]; ok && !cur.Before(producer) {
			m.rejected++
			m.obsRejected.Inc()
			return false
		}
	}
	m.version[tag] = producer
	return true
}

// Restore forces a version into memory, bypassing the MTID filter. FMM
// recovery uses it: the undo walk writes strictly older versions back over
// squashed future state, in reverse task order.
func (m *Memory) Restore(tag LineAddr, producer ids.TaskID) {
	if producer == ids.None {
		delete(m.version, tag)
		return
	}
	m.version[tag] = producer
}

// LinesWithVersions returns how many lines hold a post-section version.
func (m *Memory) LinesWithVersions() int { return len(m.version) }

// Stats returns cumulative (write-backs attempted, write-backs rejected by
// MTID).
func (m *Memory) Stats() (writebacks, rejected uint64) {
	return m.writebacks, m.rejected
}
