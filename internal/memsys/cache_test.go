package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func tinyCache(ways int) *Cache {
	// 4 sets of `ways` lines.
	return NewCache(Config{Name: "t", SizeBytes: 4 * ways * LineBytes, Ways: ways})
}

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 32 * 1024, Ways: 2}
	if got := c.Sets(); got != 256 {
		t.Fatalf("32KB 2-way: Sets = %d, want 256", got)
	}
	small := Config{SizeBytes: 64, Ways: 4}
	if got := small.Sets(); got != 1 {
		t.Fatalf("degenerate config: Sets = %d, want 1", got)
	}
}

func TestNewCachePanicsWithoutWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache with 0 ways must panic")
		}
	}()
	NewCache(Config{SizeBytes: 1024})
}

func TestProbeMissThenHit(t *testing.T) {
	c := tinyCache(2)
	if _, ok := c.Probe(5, ids.TaskID(1)); ok {
		t.Fatal("probe of empty cache hit")
	}
	c.Insert(5, ids.TaskID(1), KindOwnVersion)
	l, ok := c.Probe(5, ids.TaskID(1))
	if !ok || l.Tag != 5 || l.Producer != ids.TaskID(1) {
		t.Fatal("probe after insert missed")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestProbeDistinguishesProducers(t *testing.T) {
	c := tinyCache(4)
	c.Insert(5, ids.TaskID(1), KindOwnVersion)
	c.Insert(5, ids.TaskID(2), KindOwnVersion)
	if _, ok := c.Probe(5, ids.TaskID(3)); ok {
		t.Fatal("probe hit a version that was never inserted")
	}
	l, ok := c.Probe(5, ids.TaskID(2))
	if !ok || l.Producer != ids.TaskID(2) {
		t.Fatal("exact version probe failed")
	}
}

func TestInsertSameVersionUpdatesInPlace(t *testing.T) {
	c := tinyCache(2)
	c.Insert(5, ids.TaskID(1), KindOwnVersion)
	victim, dirty := c.Insert(5, ids.TaskID(1), KindCommitted)
	if dirty || victim.Valid() {
		t.Fatal("reinsert displaced a line")
	}
	l, _ := c.Peek(5, ids.TaskID(1))
	if l.Kind != KindCommitted {
		t.Fatal("reinsert did not update kind")
	}
	if n := c.CountWhere(func(l *Line) bool { return l.Tag == 5 }); n != 1 {
		t.Fatalf("duplicate lines after reinsert: %d", n)
	}
}

func TestMultipleVersionsSameSet(t *testing.T) {
	// The defining MultiT&MV property: same tag, different task IDs coexist.
	c := tinyCache(4)
	for task := ids.TaskID(1); task <= 4; task++ {
		c.Insert(8, task, KindOwnVersion)
	}
	if got := len(c.VersionsOf(8)); got != 4 {
		t.Fatalf("VersionsOf = %d lines, want 4", got)
	}
}

func TestBestVersionFor(t *testing.T) {
	c := tinyCache(8)
	c.Insert(8, ids.TaskID(2), KindOwnVersion)
	c.Insert(8, ids.TaskID(5), KindOwnVersion)
	c.Insert(8, ids.None, KindCopy) // architectural copy
	tests := []struct {
		reader ids.TaskID
		want   ids.TaskID
	}{
		{ids.TaskID(1), ids.None},      // before all versions: architectural
		{ids.TaskID(2), ids.TaskID(2)}, // own version
		{ids.TaskID(4), ids.TaskID(2)}, // latest predecessor
		{ids.TaskID(9), ids.TaskID(5)},
	}
	for _, tt := range tests {
		got := c.BestVersionFor(8, tt.reader)
		if got == nil {
			t.Fatalf("reader %v: no version found", tt.reader)
		}
		if got.Producer != tt.want {
			t.Errorf("reader %v: producer %v, want %v", tt.reader, got.Producer, tt.want)
		}
	}
}

func TestBestVersionForNone(t *testing.T) {
	c := tinyCache(2)
	c.Insert(8, ids.TaskID(5), KindOwnVersion)
	if got := c.BestVersionFor(8, ids.TaskID(3)); got != nil {
		t.Fatalf("reader T2 got successor's version from %v", got.Producer)
	}
	if got := c.BestVersionFor(9, ids.TaskID(9)); got != nil {
		t.Fatal("version for absent tag")
	}
}

// Property: BestVersionFor returns the maximum producer <= reader among the
// inserted versions, matching a brute-force oracle.
func TestBestVersionForProperty(t *testing.T) {
	f := func(producers []uint8, reader uint8) bool {
		c := tinyCache(16)
		want := ids.TaskID(0)
		found := false
		for _, p := range producers {
			task := ids.TaskID(p%16) + 1
			c.Insert(4, task, KindOwnVersion)
			r := ids.TaskID(reader%16) + 1
			_ = r
		}
		r := ids.TaskID(reader%16) + 1
		for _, p := range producers {
			task := ids.TaskID(p%16) + 1
			if !task.After(r) && (!found || task.After(want)) {
				want, found = task, true
			}
		}
		got := c.BestVersionFor(4, r)
		if !found {
			return got == nil
		}
		return got != nil && got.Producer == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvictionPrefersCopies(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	c.Insert(8, ids.None, KindCopy) // same set (4 sets: tags 4 and 8 both map to set 0)
	victim, dirty := c.Insert(12, ids.TaskID(2), KindOwnVersion)
	if dirty {
		t.Fatal("displaced a dirty line while a clean copy was present")
	}
	if victim.Kind != KindCopy || victim.Tag != 8 {
		t.Fatalf("victim = %+v, want the clean copy of tag 8", victim)
	}
}

func TestEvictionPrefersCommittedOverSpec(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindCommitted)
	c.Insert(8, ids.TaskID(2), KindOwnVersion)
	victim, dirty := c.Insert(12, ids.TaskID(3), KindOwnVersion)
	if !dirty || victim.Kind != KindCommitted {
		t.Fatalf("victim = %+v, want the committed-unmerged line", victim)
	}
}

func TestEvictionLRUAmongReplaceable(t *testing.T) {
	// Copies and committed-unmerged lines compete by plain LRU: a hot copy
	// survives a cold committed line.
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindCommitted)
	c.Insert(8, ids.None, KindCopy)
	c.Probe(8, ids.None) // copy is hotter
	victim, _ := c.Insert(12, ids.TaskID(3), KindOwnVersion)
	if victim.Kind != KindCommitted {
		t.Fatalf("victim = %+v, want the cold committed line", victim)
	}
}

func TestEvictionLRUWithinClass(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	c.Insert(8, ids.TaskID(2), KindOwnVersion)
	c.Probe(4, ids.TaskID(1)) // touch tag 4; tag 8 becomes LRU
	victim, _ := c.Insert(12, ids.TaskID(3), KindOwnVersion)
	if victim.Tag != 8 {
		t.Fatalf("victim tag = %v, want the LRU line 8", victim.Tag)
	}
}

func TestEvictionCandidateNilWhenFree(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	if c.EvictionCandidate(8) != nil {
		t.Fatal("eviction candidate reported while a free way exists")
	}
}

func TestInvalidate(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	old, ok := c.Invalidate(4, ids.TaskID(1))
	if !ok || old.Tag != 4 {
		t.Fatal("invalidate missed")
	}
	if _, ok := c.Peek(4, ids.TaskID(1)); ok {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(4, ids.TaskID(1)); ok {
		t.Fatal("second invalidate claimed success")
	}
}

func TestInvalidateWhere(t *testing.T) {
	c := tinyCache(4)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	c.Insert(8, ids.TaskID(2), KindOwnVersion)
	c.Insert(12, ids.TaskID(3), KindOwnVersion)
	// Squash tasks >= 2.
	n := c.InvalidateWhere(func(l *Line) bool { return !l.Producer.Before(ids.TaskID(2)) })
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Peek(4, ids.TaskID(1)); !ok {
		t.Fatal("survivor was invalidated")
	}
}

func TestLocalSpecVersionOwner(t *testing.T) {
	c := tinyCache(4)
	if got := c.LocalSpecVersionOwner(4, ids.TaskID(3)); got != ids.None {
		t.Fatalf("empty cache reported owner %v", got)
	}
	c.Insert(4, ids.TaskID(2), KindOwnVersion)
	if got := c.LocalSpecVersionOwner(4, ids.TaskID(2)); got != ids.None {
		t.Fatal("a task's own version must not block it")
	}
	if got := c.LocalSpecVersionOwner(4, ids.TaskID(3)); got != ids.TaskID(2) {
		t.Fatalf("owner = %v, want T1", got)
	}
	// Copies and committed lines do not trigger the MultiT&SV stall.
	c2 := tinyCache(4)
	c2.Insert(4, ids.TaskID(2), KindCopy)
	c2.Insert(4, ids.TaskID(1), KindCommitted)
	if got := c2.LocalSpecVersionOwner(4, ids.TaskID(3)); got != ids.None {
		t.Fatalf("non-spec lines blocked the write (owner %v)", got)
	}
}

func TestTaskLinesAndForEach(t *testing.T) {
	c := tinyCache(4)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	c.Insert(8, ids.TaskID(1), KindOwnVersion)
	c.Insert(12, ids.TaskID(2), KindOwnVersion)
	if got := len(c.TaskLines(ids.TaskID(1))); got != 2 {
		t.Fatalf("TaskLines = %d, want 2", got)
	}
	total := 0
	c.ForEach(func(*Line) { total++ })
	if total != 3 {
		t.Fatalf("ForEach visited %d, want 3", total)
	}
}

func TestFlush(t *testing.T) {
	c := tinyCache(2)
	c.Insert(4, ids.TaskID(1), KindOwnVersion)
	c.Flush()
	if c.CountWhere(func(*Line) bool { return true }) != 0 {
		t.Fatal("flush left lines behind")
	}
}

func TestDirtyClassification(t *testing.T) {
	cases := []struct {
		kind  LineKind
		dirty bool
	}{
		{KindCopy, false},
		{KindOwnVersion, true},
		{KindCommitted, true},
		{KindInvalid, false},
	}
	for _, tt := range cases {
		l := Line{Kind: tt.kind}
		if l.Dirty() != tt.dirty {
			t.Errorf("kind %v: Dirty = %v", tt.kind, l.Dirty())
		}
	}
}

func TestLineKindString(t *testing.T) {
	for k, want := range map[LineKind]string{
		KindInvalid: "invalid", KindCopy: "copy", KindOwnVersion: "own",
		KindCommitted: "committed", LineKind(99): "LineKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", uint8(k), got, want)
		}
	}
}

// Property: the cache never holds more lines than its capacity and never
// two lines with identical (tag, producer).
func TestCapacityProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := tinyCache(2) // 8 lines total
		for _, op := range ops {
			tag := LineAddr(op % 32)
			task := ids.TaskID(op%5) + 1
			c.Insert(tag, task, KindOwnVersion)
		}
		seen := map[versionKey]bool{}
		count := 0
		dup := false
		c.ForEach(func(l *Line) {
			count++
			k := versionKey{l.Tag, l.Producer}
			if seen[k] {
				dup = true
			}
			seen[k] = true
		})
		return count <= 8 && !dup
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
