package memsys

import "repro/internal/ids"

// LogEntry is one record of the memory-system history buffer: before task
// Overwriter generated its own version of line Tag, the most recent local
// version (produced by Producer, possibly None for architectural data) was
// saved. Both IDs are required for recovery: the producer ID "cannot be
// deduced from the task that overwrites the version" (Section 3.3.4,
// Figure 7-(c)).
type LogEntry struct {
	Tag        LineAddr
	Producer   ids.TaskID // task that produced the saved version; None = architectural
	Overwriter ids.TaskID // task whose write caused the save
}

// MHB is the per-processor, sequentially-accessed undo log (ULOG) that
// implements the memory-system history buffer of FMM schemes. Entries are
// appended in program order of the local tasks; recovery walks them in
// strict reverse order.
type MHB struct {
	entries []LogEntry

	// Statistics.
	appends  uint64
	restored uint64
	peak     int
}

// NewMHB returns an empty log.
func NewMHB() *MHB {
	return &MHB{}
}

// Append records that overwriter saved producer's version of tag before
// overwriting it. A processor executes its tasks in increasing task-ID
// order (and recovery pops the squashed suffix before re-execution), so the
// log is append-only in non-decreasing overwriter order; Append panics if a
// caller violates that, since reverse-order recovery depends on it.
func (m *MHB) Append(tag LineAddr, producer, overwriter ids.TaskID) {
	if n := len(m.entries); n > 0 && overwriter.Before(m.entries[n-1].Overwriter) {
		panic("memsys: MHB append out of local program order")
	}
	m.entries = append(m.entries, LogEntry{Tag: tag, Producer: producer, Overwriter: overwriter})
	m.appends++
	if len(m.entries) > m.peak {
		m.peak = len(m.entries)
	}
}

// Len returns the number of live entries.
func (m *MHB) Len() int { return len(m.entries) }

// EntriesOverwrittenBy returns how many live entries were created by the
// given overwriting task; recovery cost is proportional to this.
func (m *MHB) EntriesOverwrittenBy(task ids.TaskID) int {
	n := 0
	for _, e := range m.entries {
		if e.Overwriter == task {
			n++
		}
	}
	return n
}

// PopForRecovery removes, in reverse insertion order, every entry whose
// overwriter is at or after firstSquashed, returning them in the order they
// must be undone (youngest first). This is FMM recovery: "copying all the
// versions overwritten by the offending task and successors from the MHB to
// main memory, in strict reverse task order".
func (m *MHB) PopForRecovery(firstSquashed ids.TaskID) []LogEntry {
	var undo []LogEntry
	kept := m.entries[:0]
	for _, e := range m.entries {
		if e.Overwriter == firstSquashed || e.Overwriter.After(firstSquashed) {
			undo = append(undo, e)
		} else {
			kept = append(kept, e)
		}
	}
	m.entries = kept
	// Reverse so the youngest overwrite is undone first.
	for i, j := 0, len(undo)-1; i < j; i, j = i+1, j-1 {
		undo[i], undo[j] = undo[j], undo[i]
	}
	m.restored += uint64(len(undo))
	return undo
}

// ReleaseCommitted frees entries whose overwriter has committed: once the
// overwriting task is safe, the saved older version can never be needed
// again (the analogue of freeing a history-buffer entry at instruction
// commit in Smith & Pleszkun). Returns the number freed.
func (m *MHB) ReleaseCommitted(committedThrough ids.TaskID) int {
	kept := m.entries[:0]
	freed := 0
	for _, e := range m.entries {
		if e.Overwriter == committedThrough || e.Overwriter.Before(committedThrough) {
			freed++
		} else {
			kept = append(kept, e)
		}
	}
	m.entries = kept
	return freed
}

// Stats returns cumulative (appends, entries restored by recovery, peak
// live size).
func (m *MHB) Stats() (appends, restored uint64, peak int) {
	return m.appends, m.restored, m.peak
}
