package memsys

import (
	"testing"

	"repro/internal/ids"
)

func BenchmarkCacheProbeHit(b *testing.B) {
	c := NewCache(Config{Name: "L2", SizeBytes: 512 << 10, Ways: 4})
	c.Insert(100, ids.TaskID(1), KindOwnVersion)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(100, ids.TaskID(1))
	}
}

func BenchmarkCacheProbeMiss(b *testing.B) {
	c := NewCache(Config{Name: "L2", SizeBytes: 512 << 10, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(LineAddr(i), ids.TaskID(1))
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := NewCache(Config{Name: "L2", SizeBytes: 64 << 10, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(LineAddr(i), ids.TaskID(i%8+1), KindOwnVersion)
	}
}

func BenchmarkBestVersionFor(b *testing.B) {
	c := NewCache(Config{Name: "L2", SizeBytes: 64 << 10, Ways: 8})
	for t := ids.TaskID(1); t <= 8; t++ {
		c.Insert(4, t, KindOwnVersion)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BestVersionFor(4, ids.TaskID(5))
	}
}

func BenchmarkMHBAppendRelease(b *testing.B) {
	m := NewMHB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ids.TaskID(i + 1)
		for j := 0; j < 8; j++ {
			m.Append(LineAddr(j), ids.None, t)
		}
		m.ReleaseCommitted(t)
	}
}

func BenchmarkOverflowSpillRetrieve(b *testing.B) {
	o := NewOverflow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Spill(LineAddr(i%1024), ids.TaskID(i%16+1), 1)
		o.Retrieve(LineAddr(i%1024), ids.TaskID(i%16+1))
	}
}

func BenchmarkMemoryWriteBackMTID(b *testing.B) {
	m := NewMemory(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteBack(LineAddr(i%4096), ids.TaskID(i+1))
	}
}
