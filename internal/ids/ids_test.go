package ids

import (
	"testing"
	"testing/quick"
)

func TestNoneOrdering(t *testing.T) {
	if !None.IsNone() {
		t.Fatal("None.IsNone() = false")
	}
	if First.IsNone() {
		t.Fatal("First.IsNone() = true")
	}
	if !None.Before(First) {
		t.Fatal("None must precede First")
	}
	if None.After(First) {
		t.Fatal("None.After(First) = true")
	}
}

func TestNextPrev(t *testing.T) {
	tests := []struct {
		in   TaskID
		next TaskID
		prev TaskID
	}{
		{First, First + 1, None},
		{None, First, None},
		{TaskID(10), TaskID(11), TaskID(9)},
	}
	for _, tt := range tests {
		if got := tt.in.Next(); got != tt.next {
			t.Errorf("%v.Next() = %v, want %v", tt.in, got, tt.next)
		}
		if got := tt.in.Prev(); got != tt.prev {
			t.Errorf("%v.Prev() = %v, want %v", tt.in, got, tt.prev)
		}
	}
}

func TestString(t *testing.T) {
	if got := None.String(); got != "T-none" {
		t.Errorf("None.String() = %q", got)
	}
	if got := First.String(); got != "T0" {
		t.Errorf("First.String() = %q, want T0 (tasks print zero-based as in the paper's figures)", got)
	}
	if got := TaskID(4).String(); got != "T3" {
		t.Errorf("TaskID(4).String() = %q", got)
	}
	if got := NoProc.String(); got != "P-none" {
		t.Errorf("NoProc.String() = %q", got)
	}
	if got := ProcID(2).String(); got != "P2" {
		t.Errorf("ProcID(2).String() = %q", got)
	}
}

func TestMinMax(t *testing.T) {
	a, b := TaskID(3), TaskID(7)
	if MaxID(a, b) != b || MaxID(b, a) != b {
		t.Error("MaxID wrong")
	}
	if MinID(a, b) != a || MinID(b, a) != a {
		t.Error("MinID wrong")
	}
	if MinID(None, a) != None {
		t.Error("MinID(None, a) should be None")
	}
}

// Property: Before is a strict total order consistent with After.
func TestOrderProperties(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := TaskID(x), TaskID(y)
		if a == b {
			return !a.Before(b) && !a.After(b)
		}
		return a.Before(b) != a.After(b) && a.Before(b) == b.After(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Next is monotone and Prev inverts it for real tasks.
func TestNextPrevProperties(t *testing.T) {
	f := func(x uint64) bool {
		a := TaskID(x % (1 << 62)) // keep away from overflow
		if a == None {
			a = First
		}
		return a.Before(a.Next()) && a.Next().Prev() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommitOrderSequence(t *testing.T) {
	c := NewCommitOrder(TaskID(3))
	if c.Head() != First {
		t.Fatalf("head = %v, want %v", c.Head(), First)
	}
	if c.Done() {
		t.Fatal("Done before any commit")
	}
	if !c.IsNonSpeculative(First) {
		t.Fatal("First should be non-speculative at start")
	}
	if !c.IsSpeculative(TaskID(2)) {
		t.Fatal("T1 should be speculative at start")
	}
	if c.IsCommitted(First) {
		t.Fatal("First not committed yet")
	}
	c.Advance(First)
	if !c.IsCommitted(First) {
		t.Fatal("First should be committed")
	}
	if c.Head() != TaskID(2) {
		t.Fatalf("head = %v after one commit", c.Head())
	}
	c.Advance(TaskID(2))
	c.Advance(TaskID(3))
	if !c.Done() {
		t.Fatal("section should be done after last task commits")
	}
}

func TestCommitOrderPanicsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance out of order must panic")
		}
	}()
	c := NewCommitOrder(TaskID(5))
	c.Advance(TaskID(2)) // head is First
}

func TestCommitOrderNoneIsCommittedFalse(t *testing.T) {
	c := NewCommitOrder(TaskID(5))
	c.Advance(First)
	if c.IsCommitted(None) {
		t.Fatal("None must never report committed")
	}
}

func TestCommitOrderUnbounded(t *testing.T) {
	c := NewCommitOrder(None)
	for i := 0; i < 100; i++ {
		c.Advance(c.Head())
		if c.Done() {
			t.Fatal("unbounded order can never be done")
		}
	}
}
