// Package ids defines task identity and ordering for thread-level
// speculation.
//
// Under TLS, tasks have a total order given by sequential semantics. The
// lowest-ID uncommitted task is non-speculative; its successors are
// speculative and its predecessors are committed. All buffering schemes in
// the taxonomy tag cached versions with the producing task's ID (the CTID
// support of Table 1 in the paper), and both the version-combining logic
// (VCL) and the memory task-ID filter (MTID) order versions by this ID.
package ids

import "fmt"

// TaskID identifies a speculative task. IDs increase in sequential program
// order: if a.Before(b), then task a precedes task b in the original
// sequential execution. The zero value None is reserved for "no task".
type TaskID uint64

// None is the reserved "no task" identifier. Real tasks start at First.
const None TaskID = 0

// First is the identifier of the first task of a speculative section.
const First TaskID = 1

// IsNone reports whether t is the reserved empty identifier.
func (t TaskID) IsNone() bool { return t == None }

// Before reports whether t precedes u in sequential order. None precedes
// every real task, which makes the "memory holds no version yet" state in
// MTID comparisons fall out naturally.
func (t TaskID) Before(u TaskID) bool { return t < u }

// After reports whether t succeeds u in sequential order.
func (t TaskID) After(u TaskID) bool { return t > u }

// Next returns the identifier of the immediate successor task.
func (t TaskID) Next() TaskID { return t + 1 }

// Prev returns the identifier of the immediate predecessor task, or None
// when t is First or None.
func (t TaskID) Prev() TaskID {
	if t <= First {
		return None
	}
	return t - 1
}

func (t TaskID) String() string {
	if t == None {
		return "T-none"
	}
	return fmt.Sprintf("T%d", uint64(t)-1)
}

// MaxID returns the later of a and b in sequential order.
func MaxID(a, b TaskID) TaskID {
	if a.After(b) {
		return a
	}
	return b
}

// MinID returns the earlier of a and b in sequential order. None counts as
// earlier than any real task.
func MinID(a, b TaskID) TaskID {
	if a.Before(b) {
		return a
	}
	return b
}

// ProcID identifies a processor (node) in the simulated machine.
type ProcID int

// NoProc is the reserved "no processor" identifier.
const NoProc ProcID = -1

func (p ProcID) String() string {
	if p == NoProc {
		return "P-none"
	}
	return fmt.Sprintf("P%d", int(p))
}

// CommitOrder tracks the strict task-ID order in which tasks must merge
// with architectural (or future) main memory. It is the bookkeeping behind
// the commit token: Head is the only task allowed to commit.
type CommitOrder struct {
	head TaskID // next task to commit
	last TaskID // last task of the section (inclusive); None if open-ended
}

// NewCommitOrder returns a CommitOrder whose head is the first task. If
// last is not None, the order is bounded and Done reports completion.
func NewCommitOrder(last TaskID) *CommitOrder {
	return &CommitOrder{head: First, last: last}
}

// Head returns the task currently holding the commit token.
func (c *CommitOrder) Head() TaskID { return c.head }

// IsNonSpeculative reports whether task t is the current non-speculative
// task (the token holder).
func (c *CommitOrder) IsNonSpeculative(t TaskID) bool { return t == c.head }

// IsCommitted reports whether task t has already committed.
func (c *CommitOrder) IsCommitted(t TaskID) bool {
	return !t.IsNone() && t.Before(c.head)
}

// IsSpeculative reports whether task t has not yet received the token.
func (c *CommitOrder) IsSpeculative(t TaskID) bool { return t.After(c.head) }

// Advance commits the head task and moves the token to its successor. It
// panics if t is not the head: out-of-order commit is a protocol bug, not
// a recoverable condition.
func (c *CommitOrder) Advance(t TaskID) {
	if t != c.head {
		panic(fmt.Sprintf("ids: out-of-order commit of %v while token is at %v", t, c.head))
	}
	c.head = c.head.Next()
}

// Done reports whether every task of a bounded section has committed.
func (c *CommitOrder) Done() bool {
	return c.last != None && c.head.After(c.last)
}

// Last returns the final task of a bounded section (None if open-ended).
func (c *CommitOrder) Last() TaskID { return c.last }

// RestoreCommitOrder rebuilds a CommitOrder from checkpointed head/last
// positions, bypassing the strict Advance sequencing.
func RestoreCommitOrder(head, last TaskID) *CommitOrder {
	return &CommitOrder{head: head, last: last}
}
