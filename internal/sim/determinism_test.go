package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestRepeatRunIsIdentical locks determinism through the pooled hot paths:
// two runs of the same (machine, scheme, profile, seed) must agree on every
// reported quantity, not just the final cycle count. Object pooling, arena
// recycling, and heap compaction all reuse state across a run — none of
// that reuse may leak into results.
func TestRepeatRunIsIdentical(t *testing.T) {
	p := workload.Bdna().Scale(0.25, 0.25, 0.25)
	first := Run(machine.NUMA16(), core.MultiTMVEager, p, 1)
	second := Run(machine.NUMA16(), core.MultiTMVEager, p, 1)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeat run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	// The squash-prone Euler exercises the compaction and recycling paths
	// hardest; lock it too.
	ep := workload.Euler().Scale(0.1, 0.1, 0.25)
	ep.DepProb = 0.3
	ef := Run(machine.NUMA16(), core.MultiTMVFMM, ep, 99)
	es := Run(machine.NUMA16(), core.MultiTMVFMM, ep, 99)
	if !reflect.DeepEqual(ef, es) {
		t.Fatalf("repeat Euler/FMM run diverged:\nfirst:  %+v\nsecond: %+v", ef, es)
	}
}
