package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// TestFMMRecoveryRestoresGlobalReverseOrder pins the cross-processor undo
// ordering of FMM squash recovery. Two squashed tasks on different
// processors overwrote the same line: task 3 (no prior version) and task 4
// (which first read task 3's version, so its undo record names producer 3).
// Recovery must apply the records globally youngest-overwriter-first —
// restore producer 3 for task 4's overwrite, then erase it for task 3's —
// leaving memory with no squashed version. A per-processor walk in
// processor order finishes by re-instating squashed version 3, which the
// undo-memory invariant flags.
func TestFMMRecoveryRestoresGlobalReverseOrder(t *testing.T) {
	const (
		wordW = memsys.Addr(0x1000) // violation trigger word
		wordL = memsys.Addr(0x2000) // line both task 3 and task 4 overwrite
	)
	mk := func(build func(*workload.TraceBuilder)) []workload.Op {
		var b workload.TraceBuilder
		build(&b)
		return b.Ops()
	}
	// Dispatch at time 0 hands task i to processor i-1.
	gen := workload.NewTrace("undo-order", [][]workload.Op{
		// Task 1: writes W late, squashing task 2 (and successors 3, 4).
		mk(func(b *workload.TraceBuilder) { b.Compute(2000).Write(wordW).Compute(10) }),
		// Task 2: reads W before task 1 wrote it — the out-of-order RAW.
		mk(func(b *workload.TraceBuilder) { b.Read(wordW).Compute(4000) }),
		// Task 3: versions line L early with no prior version anywhere.
		mk(func(b *workload.TraceBuilder) { b.Compute(100).Write(wordL).Compute(4000) }),
		// Task 4: observes task 3's version of L, then overwrites it, so its
		// undo record is (L, producer 3, overwriter 4) on a different
		// processor than task 3's (L, none, 3).
		mk(func(b *workload.TraceBuilder) { b.Compute(300).Read(wordL).Write(wordL).Compute(4000) }),
	}, 0)

	s := New(machine.NUMA16(), core.MultiTMVFMM, gen)
	s.EnableInvariantChecks()
	res := s.Run()

	if res.SquashEvents == 0 || res.TasksSquashed < 3 {
		t.Fatalf("scenario did not squash as designed: %d events, %d tasks",
			res.SquashEvents, res.TasksSquashed)
	}
	if n := s.InvariantViolationCount(); n != 0 {
		t.Fatalf("recovery broke invariants: %s", s.InvariantSummary())
	}
	if v := s.mem.Version(wordL.Line()); v != ids.TaskID(0) && v != ids.TaskID(4) {
		t.Fatalf("memory holds version %v of the contended line", v)
	}
	if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
		t.Fatalf("final memory wrong on %d lines", wrong)
	}
}

// TestInvariantCheckerDetectsTagFlips validates the checker the way the
// fault taxonomy intends: FlipTag corrupts version tags, which no correct
// protocol can absorb, so a campaign of flip-only runs must produce
// invariant violations (or, at minimum, a wrong final memory image).
func TestInvariantCheckerDetectsTagFlips(t *testing.T) {
	detected := 0
	for seed := uint64(0); seed < 5; seed++ {
		p := workload.Profile{
			Name: "flip", Tasks: 24, InstrPerTask: 1500, FootprintBytes: 512,
			WriteDensity: 4, PrivFrac: 0.5, WritePhase: 0.8,
			ReadsPerWrite: 1, SharedReadFrac: 0.5,
		}
		gen := workload.NewGenerator(p, seed)
		s := New(machine.NUMA16(), core.MultiTMVEager, gen)
		s.EnableInvariantChecks()
		s.InjectFaults(fault.NewPlan(fault.Config{Seed: seed, FlipProb: 0.02, MaxFaults: 8}))
		s.Run()
		_, wrong := s.VerifyFinalMemory()
		if s.InvariantViolationCount() > 0 || wrong > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no flip campaign was detected by the checker or the final-memory verification")
	}
}

// TestRecoverableFaultsKeepInvariants is the in-tree slice of the tlschaos
// campaign: randomized recoverable faults (spurious squashes, delays,
// forced overflows, commit stalls) over representative schemes must never
// break a protocol invariant or corrupt the final memory image.
func TestRecoverableFaultsKeepInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign is slow")
	}
	schemes := []core.Scheme{
		core.SingleTEager, core.MultiTMVEager, core.MultiTMVLazy,
		core.MultiTMVFMM, core.MultiTMVFMMSw,
	}
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := fault.CampaignConfig(seed)
		p := workload.Profile{
			Name: "campaign", Tasks: 40, InstrPerTask: 1200, FootprintBytes: 768,
			WriteDensity: 4, PrivFrac: 0.4, WritePhase: 0.6,
			ReadsPerWrite: 1.5, SharedReadFrac: 0.5, DepProb: 0.1, DepReach: 4,
		}
		for _, sch := range schemes {
			gen := workload.NewGenerator(p, seed)
			s := New(machine.NUMA16(), sch, gen)
			s.EnableInvariantChecks()
			plan := fault.NewPlan(cfg)
			s.InjectFaults(plan)
			res := s.Run()
			if res.Commits != res.Tasks {
				t.Errorf("seed %d %v: %d of %d tasks committed under faults (%s)",
					seed, sch, res.Commits, res.Tasks, plan.Summary())
			}
			if n := s.InvariantViolationCount(); n != 0 {
				t.Errorf("seed %d %v: %d invariant violations under recoverable faults (%s): %s",
					seed, sch, n, plan.Summary(), s.InvariantSummary())
			}
			if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
				t.Errorf("seed %d %v: %d wrong lines after faults (%s)",
					seed, sch, wrong, plan.Summary())
			}
		}
	}
}

// TestVerifyFinalMemoryDetectsWrongVersion covers the detector's failure
// path: corrupt one line of the final image and the check must report it.
func TestVerifyFinalMemoryDetectsWrongVersion(t *testing.T) {
	p := workload.Profile{
		Name: "verify", Tasks: 10, InstrPerTask: 800, FootprintBytes: 256,
		WriteDensity: 4, PrivFrac: 0.5, WritePhase: 0.5,
	}
	gen := workload.NewGenerator(p, 11)
	s := New(machine.NUMA16(), core.MultiTMVEager, gen)
	s.Run()
	checked, wrong := s.VerifyFinalMemory()
	if checked == 0 || wrong != 0 {
		t.Fatalf("clean run: %d/%d lines wrong", wrong, checked)
	}
	// Find a written line by replaying the workload, then corrupt it.
	var buf []workload.Op
	buf, _ = gen.Task(0, buf)
	var line memsys.LineAddr
	found := false
	for _, op := range buf {
		if op.Kind == workload.OpWrite {
			line, found = op.Addr.Line(), true
			break
		}
	}
	if !found {
		t.Fatal("task 0 wrote nothing")
	}
	s.mem.Restore(line, ids.TaskID(p.Tasks+7))
	if _, wrong := s.VerifyFinalMemory(); wrong == 0 {
		t.Fatal("corrupted line not detected")
	}
}
