package sim

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// This file is the runtime protocol checker: an optional observer that
// validates the buffering invariants the paper's argument rests on at every
// commit, squash-recovery, and merge event, while the section is running —
// localizing a protocol bug to the event that broke the invariant instead
// of a corrupt final memory image. Violations are collected as structured
// reports, never panics: fault campaigns need the run to finish so the
// report can say which injected fault sequence broke what.
//
// The rules, by event:
//
//	commit        commit-order      only the token holder commits
//	              commit-state      the committing task has finished executing
//	              unmerged-version  no speculative line of the task survives its commit
//	              unmerged-overflow no overflowed version of the task survives its commit
//	              foreign-version   no other processor holds dirty state of the task
//	merge         spec-escape       under AMM, only committed (or currently
//	                                committing) versions reach main memory
//	              merge-order       without MTID, memory versions only move forward
//	              dup-committed     after a VCL merge, at most one committed
//	                                version of the line remains cached
//	squash (FMM)  undo-entry        every undo record's saved producer precedes
//	                                its overwriter, and the overwriter is squashed
//	              undo-memory       after recovery, memory holds no squashed version
//	                                of a restored line
//	section end   leftover-spec     no speculative line survives the section
//	              leftover-overflow the overflow areas end empty
//	              leftover-undo     the undo logs end empty
type InvariantViolation struct {
	Rule   string
	Cycle  event.Time
	Task   ids.TaskID
	Line   memsys.LineAddr
	Detail string
}

func (v InvariantViolation) String() string {
	return fmt.Sprintf("[%s] cycle %d %v line %#x: %s", v.Rule, uint64(v.Cycle), v.Task, uint64(v.Line), v.Detail)
}

// invariantSampleCap bounds how many violation samples are retained; the
// per-rule counts keep counting past it.
const invariantSampleCap = 64

type invariantChecker struct {
	samples []InvariantViolation
	total   int
	byRule  map[string]int
}

// EnableInvariantChecks turns the runtime protocol checker on. Call before
// Run. The checker only observes — timing and results are unchanged — so it
// composes with fault injection to distinguish "survived the faults" from
// "silently corrupted state".
func (s *Simulator) EnableInvariantChecks() {
	s.inv = &invariantChecker{byRule: make(map[string]int)}
}

// InvariantViolationCount returns how many violations the checker saw
// (0 when the checker is off).
func (s *Simulator) InvariantViolationCount() int {
	if s.inv == nil {
		return 0
	}
	return s.inv.total
}

// InvariantViolations returns the retained violation samples (at most
// invariantSampleCap; the count keeps going).
func (s *Simulator) InvariantViolations() []InvariantViolation {
	if s.inv == nil {
		return nil
	}
	return s.inv.samples
}

// InvariantSummary renders per-rule violation counts, "" when clean or off.
func (s *Simulator) InvariantSummary() string {
	if s.inv == nil || s.inv.total == 0 {
		return ""
	}
	rules := make([]string, 0, len(s.inv.byRule))
	for r := range s.inv.byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	out := ""
	for i, r := range rules {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", r, s.inv.byRule[r])
	}
	return out
}

func (c *invariantChecker) report(rule string, now event.Time, t ids.TaskID, line memsys.LineAddr, format string, args ...any) {
	c.total++
	c.byRule[rule]++
	if len(c.samples) < invariantSampleCap {
		c.samples = append(c.samples, InvariantViolation{
			Rule: rule, Cycle: now, Task: t, Line: line,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// checkCommitStart validates the in-order-commit invariant as t's commit
// completes its token hold.
func (s *Simulator) checkCommitStart(t *task, now event.Time) {
	if s.inv == nil {
		return
	}
	if head := s.order.Head(); t.id != head {
		s.inv.report("commit-order", now, t.id, 0, "committing while token is at %v", head)
	}
	if t.state != taskFinished {
		s.inv.report("commit-state", now, t.id, 0, "committing in state %d", t.state)
	}
}

// checkCommitEnd validates that t's commit disposed of every version it
// produced: nothing speculative of t survives in its own hierarchy, its
// overflow area, or (dirty) anywhere else in the machine.
func (s *Simulator) checkCommitEnd(p *processor, t *task, now event.Time) {
	if s.inv == nil {
		return
	}
	p.l2.ForEach(func(l *memsys.Line) {
		if l.Producer == t.id && l.Kind == memsys.KindOwnVersion {
			s.inv.report("unmerged-version", now, t.id, l.Tag, "speculative line survived commit")
		}
	})
	for _, line := range p.ovf.TaskLines(t.id) {
		s.inv.report("unmerged-overflow", now, t.id, line, "overflowed version survived commit")
	}
	for _, q := range s.procs {
		if q == p {
			continue
		}
		q.l2.ForEach(func(l *memsys.Line) {
			if l.Producer == t.id && l.Dirty() {
				s.inv.report("foreign-version", now, t.id, l.Tag,
					"dirty %s line on %v, but the task ran on %v", l.Kind, q.id, p.id)
			}
		})
	}
}

// checkWriteBack validates a main-memory merge before it is applied: under
// AMM, speculative state must never escape to memory (only committed
// versions, or the version of the task whose commit is merging right now);
// and without the MTID filter, memory must only move forward in task order.
func (s *Simulator) checkWriteBack(tag memsys.LineAddr, producer ids.TaskID, now event.Time) {
	if s.inv == nil {
		return
	}
	if !s.scheme.UsesUndoLog() && producer != ids.None && !s.order.IsCommitted(producer) {
		if s.committing == nil || producer != s.committing.id {
			s.inv.report("spec-escape", now, producer, tag,
				"speculative version written back to main memory before commit")
		}
	}
	if !s.mem.MTIDEnabled() {
		if cur := s.mem.Version(tag); cur != ids.None && cur.After(producer) {
			s.inv.report("merge-order", now, producer, tag,
				"write-back over newer version %v", cur)
		}
	}
}

// memWriteBack funnels a main-memory merge through the invariant checker.
// Every write-back that models protocol behavior goes through here; only
// squash-recovery restores (which legitimately move memory backwards) call
// mem.Restore directly.
func (s *Simulator) memWriteBack(tag memsys.LineAddr, producer ids.TaskID, now event.Time) {
	s.checkWriteBack(tag, producer, now)
	s.mem.WriteBack(tag, producer)
}

// checkVCLMerge validates the at-most-one-committed-version-per-line
// invariant the VCL maintains: after merging `latest`, no other committed
// version of the line may remain cached anywhere.
func (s *Simulator) checkVCLMerge(tag memsys.LineAddr, latest ids.TaskID, now event.Time) {
	if s.inv == nil {
		return
	}
	for _, q := range s.procs {
		for _, l := range q.l2.VersionsOf(tag) {
			if l.Kind == memsys.KindCommitted && l.Producer != latest {
				s.inv.report("dup-committed", now, l.Producer, tag,
					"committed version survived VCL merge of %v", latest)
			}
		}
	}
}

// checkRecovery validates an FMM undo walk: every popped record must have a
// squashed overwriter and a saved producer that precedes it, and once every
// restore has been applied, memory must hold no squashed version (at or
// after first) of any restored line.
func (s *Simulator) checkRecovery(first ids.TaskID, undo []memsys.LogEntry, now event.Time) {
	if s.inv == nil {
		return
	}
	for _, e := range undo {
		if e.Overwriter.Before(first) {
			s.inv.report("undo-entry", now, e.Overwriter, e.Tag,
				"undo record popped for unsquashed overwriter (squash from %v)", first)
		}
		if e.Producer != ids.None && !e.Producer.Before(e.Overwriter) {
			s.inv.report("undo-entry", now, e.Overwriter, e.Tag,
				"saved producer %v does not precede its overwriter", e.Producer)
		}
	}
	for _, e := range undo {
		if v := s.mem.Version(e.Tag); v != ids.None && !v.Before(first) {
			s.inv.report("undo-memory", now, v, e.Tag,
				"memory still holds squashed version after recovery (squash from %v)", first)
		}
	}
}

// checkSectionEnd validates that the section retired cleanly: every
// speculative version merged or died, the overflow areas drained, and the
// undo logs were released.
func (s *Simulator) checkSectionEnd(now event.Time) {
	if s.inv == nil {
		return
	}
	for _, p := range s.procs {
		p.l2.ForEach(func(l *memsys.Line) {
			if l.Kind == memsys.KindOwnVersion {
				s.inv.report("leftover-spec", now, l.Producer, l.Tag,
					"speculative line survived the section on %v", p.id)
			}
		})
		if n := p.ovf.Len(); n > 0 {
			s.inv.report("leftover-overflow", now, ids.None, 0,
				"%d versions left in %v's overflow area", n, p.id)
		}
		if n := p.mhb.Len(); n > 0 {
			s.inv.report("leftover-undo", now, ids.None, 0,
				"%d undo records left in %v's MHB", n, p.id)
		}
	}
}
