package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Golden regression lock: exact cycle counts for a fixed workload and seed
// under every scheme. Simulation results are specified to be bit-for-bit
// deterministic functions of (machine, scheme, profile, seed); any change
// to the simulator, protocol, workload generation, or cost model that
// shifts timing shows up here first. If a change is INTENDED to shift
// timing, regenerate these constants (run with -update-goldens logic: just
// read the failure messages) and mention it in the commit.
func TestGoldenCycleCounts(t *testing.T) {
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	p.DepProb = 0.3
	numa := []struct {
		scheme core.Scheme
		want   event.Time
	}{
		{core.SingleTEager, 343071},
		{core.SingleTLazy, 278376},
		{core.MultiTSVEager, 327983},
		{core.MultiTSVLazy, 271678},
		{core.MultiTMVEager, 327983},
		{core.MultiTMVLazy, 271678},
		{core.MultiTMVFMM, 447958},
		{core.MultiTMVFMMSw, 407282},
	}
	for _, g := range numa {
		r := Run(machine.NUMA16(), g.scheme, p, 99)
		if r.ExecCycles != g.want {
			t.Errorf("NUMA16/%v: %d cycles, golden %d", g.scheme, r.ExecCycles, g.want)
		}
	}
	cmp := []struct {
		scheme core.Scheme
		want   event.Time
	}{
		{core.SingleTEager, 187312},
		{core.MultiTMVLazy, 172536},
	}
	for _, g := range cmp {
		r := Run(machine.CMP8(), g.scheme, p, 99)
		if r.ExecCycles != g.want {
			t.Errorf("CMP8/%v: %d cycles, golden %d", g.scheme, r.ExecCycles, g.want)
		}
	}
}
