package sim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

// captureAt runs the simulation with an auto-checkpoint every `every`
// commits, keeping the first checkpoint delivered, and returns it together
// with the run's result. The checkpoint is pushed through the binary codec,
// exactly as a resume in a fresh process would receive it.
func captureAt(t *testing.T, build func() *Simulator, every int) (*Checkpoint, Result) {
	t.Helper()
	s := build()
	var ck *Checkpoint
	s.SetAutoCheckpoint(every)
	s.SetCheckpointSink(func(c *Checkpoint) {
		if ck == nil {
			ck = c
		}
	})
	res := s.Run()
	if ck == nil {
		t.Fatalf("%s/%v: no checkpoint captured (every=%d, %d commits)",
			s.cfg.Name, s.scheme, every, res.Commits)
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return decoded, res
}

// The tentpole acceptance test: for every app × design point on NUMA16,
// checkpoint at a mid-run commit, restore into a fresh simulator through the
// full binary codec (a fresh-process image of the state), and require the
// resumed run's Result to be deeply identical to the uninterrupted run's.
// The checkpointed run itself must also equal the checkpoint-free run:
// snapshotting must not perturb timing.
func TestCheckpointEquivalenceAllAppsAllSchemes(t *testing.T) {
	mach := machine.NUMA16()
	for _, app := range workload.Apps() {
		p := app.Scale(0.1, 0.1, 0.25)
		for _, sch := range core.AllSchemes() {
			golden := Run(mach, sch, p, 99)
			build := func() *Simulator {
				return New(mach, sch, workload.NewGenerator(p, 99))
			}
			ck, withCkpt := captureAt(t, build, max(1, golden.Commits/2))
			if !reflect.DeepEqual(golden, withCkpt) {
				t.Errorf("%s/%v/%s: taking a checkpoint perturbed the run", mach.Name, sch, p.Name)
				continue
			}
			resumed := build()
			if err := resumed.Restore(ck); err != nil {
				t.Errorf("%s/%v/%s: restore: %v", mach.Name, sch, p.Name, err)
				continue
			}
			got := resumed.Run()
			if !reflect.DeepEqual(golden, got) {
				t.Errorf("%s/%v/%s: resumed result differs from uninterrupted run (%d vs %d cycles)",
					mach.Name, sch, p.Name, got.ExecCycles, golden.ExecCycles)
			}
		}
	}
}

// Interrupt must stop the run at the next commit boundary, hand the sink a
// final checkpoint, and leave Run returning a zero Result with Halted()
// set; resuming from that checkpoint completes the run bit-identically.
func TestInterruptCheckpointResume(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	build := func() *Simulator {
		return New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	}
	golden := build().Run()

	s := build()
	var last *Checkpoint
	calls := 0
	s.SetAutoCheckpoint(1)
	s.SetCheckpointSink(func(c *Checkpoint) {
		last = c
		calls++
		if calls == 5 {
			s.Interrupt()
		}
	})
	res := s.Run()
	if !s.Halted() {
		t.Fatal("interrupted run did not report Halted")
	}
	if res.Commits != 0 || res.ExecCycles != 0 {
		t.Fatalf("interrupted run returned a non-zero result: %+v", res)
	}
	if last == nil || last.Commits < 5 {
		t.Fatalf("expected an interrupt checkpoint after commit 5, got %+v", last)
	}

	resumed := build()
	if err := resumed.Restore(last); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := resumed.Run()
	if !reflect.DeepEqual(golden, got) {
		t.Errorf("resume after interrupt differs from uninterrupted run (%d vs %d cycles)",
			got.ExecCycles, golden.ExecCycles)
	}
}

// Sequential-baseline simulators checkpoint and restore like any other run.
func TestCheckpointSequentialBaseline(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Tree().Scale(0.1, 0.1, 0.25)
	golden := RunSequential(mach, p, 99)
	build := func() *Simulator { return NewSequential(mach, p, 99) }
	ck, _ := captureAt(t, build, max(1, golden.Commits/2))
	resumed := build()
	if err := resumed.Restore(ck); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(golden, got) {
		t.Errorf("resumed sequential baseline differs from uninterrupted run")
	}
}

// A run with a fault injector checkpoints the plan's decision stream too:
// the resumed run replays the identical fault schedule.
func TestCheckpointWithFaultInjector(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	fcfg := fault.Config{Seed: 7, SquashProb: 0.02, DelayProb: 0.05, DelayCycles: 40, StallProb: 0.05, StallCycles: 30}
	build := func() *Simulator {
		s := New(mach, core.MultiTMVEager, workload.NewGenerator(p, 99))
		s.InjectFaults(fault.NewPlan(fcfg))
		return s
	}
	golden := build().Run()
	ck, withCkpt := captureAt(t, build, max(1, golden.Commits/2))
	if !reflect.DeepEqual(golden, withCkpt) {
		t.Fatal("taking a checkpoint perturbed the injected run")
	}
	if !ck.HasInjector {
		t.Fatal("checkpoint did not record the injector state")
	}
	resumed := build()
	if err := resumed.Restore(ck); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(golden, got) {
		t.Errorf("resumed injected run differs from uninterrupted run")
	}

	// Restoring an injected checkpoint without installing the injector, or
	// into a run that has one when the checkpoint does not, must fail loudly.
	bare := New(mach, core.MultiTMVEager, workload.NewGenerator(p, 99))
	if err := bare.Restore(ck); err == nil {
		t.Error("restore without the injector unexpectedly succeeded")
	}
}

// Restore validates the checkpoint's identity against the simulator.
func TestRestoreIdentityMismatch(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	build := func() *Simulator {
		return New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	}
	ck, _ := captureAt(t, build, 3)

	wrongScheme := New(mach, core.MultiTMVEager, workload.NewGenerator(p, 99))
	if err := wrongScheme.Restore(ck); err == nil {
		t.Error("restore into a different scheme unexpectedly succeeded")
	}
	wrongMachine := New(machine.CMP8(), core.MultiTMVLazy, workload.NewGenerator(p, 99))
	if err := wrongMachine.Restore(ck); err == nil {
		t.Error("restore into a different machine unexpectedly succeeded")
	}
	ran := build()
	ran.Run()
	if err := ran.Restore(ck); err == nil {
		t.Error("restore into an already-run simulator unexpectedly succeeded")
	}
}

// The codec distinguishes truncation, corruption, and version mismatches.
func TestCheckpointCodecErrors(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	build := func() *Simulator {
		return New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	}
	ck, _ := captureAt(t, build, 3)
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()

	if _, err := DecodeCheckpoint(bytes.NewReader(raw[:10])); !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("truncated header: got %v, want ErrCheckpointTruncated", err)
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("truncated payload: got %v, want ErrCheckpointTruncated", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := DecodeCheckpoint(bytes.NewReader(flipped)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("flipped payload byte: got %v, want ErrCheckpointCorrupt", err)
	}
	badMagic := append([]byte(nil), raw...)
	badMagic[0] = 'X'
	if _, err := DecodeCheckpoint(bytes.NewReader(badMagic)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("bad magic: got %v, want ErrCheckpointCorrupt", err)
	}
	badVersion := append([]byte(nil), raw...)
	badVersion[7] = CheckpointVersion + 1
	if _, err := DecodeCheckpoint(bytes.NewReader(badVersion)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("future version: got %v, want ErrCheckpointVersion", err)
	}
}

// WriteCheckpointFile persists atomically and ReadCheckpointFile detects a
// torn tail (the kill -9 mid-write case).
func TestCheckpointFileRoundTrip(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	build := func() *Simulator {
		return New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	}
	golden := build().Run()
	ck, _ := captureAt(t, build, max(1, golden.Commits/2))

	dir := t.TempDir()
	path := filepath.Join(dir, "job.ckpt")
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	resumed := build()
	if err := resumed.Restore(loaded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(golden, got) {
		t.Errorf("file round-trip resume differs from uninterrupted run")
	}

	// No temp litter after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("cache dir has %d entries after write, want 1", len(entries))
	}

	// Torn write: truncate the file and expect a typed, path-bearing error.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("torn file: got %v, want ErrCheckpointTruncated", err)
	}
}

// ProgressReport (taken inside the sink, on the simulation goroutine)
// describes where the run is — the watchdog post-mortem payload.
func TestProgressReport(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	s := New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	var rep ProgressReport
	got := false
	s.SetAutoCheckpoint(3)
	s.SetCheckpointSink(func(*Checkpoint) {
		if !got {
			rep = s.ProgressReport()
			got = true
		}
	})
	s.Run()
	if !got {
		t.Fatal("sink never fired")
	}
	if rep.Machine != mach.Name || rep.App != p.Name {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.Cycle == 0 || rep.Commits == 0 || len(rep.Procs) != mach.Procs {
		t.Errorf("report not mid-run shaped: cycle=%d commits=%d procs=%d",
			rep.Cycle, rep.Commits, len(rep.Procs))
	}
}
