// Package sim is the execution-driven simulator that runs a workload's
// speculative section on a machine under one buffering scheme and accounts
// for every cycle: instruction execution, memory stalls, task/version
// stalls, commit work, squash recovery, and end-of-section idling.
//
// Processors execute their tasks' operation streams in bounded time quanta
// over a global discrete-event queue, so cross-processor interactions
// (version forwarding, violations, the commit token) interleave
// deterministically with bounded skew.
package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// taskState is the lifecycle of a speculative task.
type taskState uint8

const (
	taskRunning taskState = iota
	taskFinished
	taskSquashed
	taskCommitted
)

// task is one speculative task in flight.
type task struct {
	id    ids.TaskID
	index int // 0-based workload index
	proc  ids.ProcID
	state taskState

	ops []workload.Op
	pc  int

	startedAt  event.Time
	finishedAt event.Time

	// Footprint counters for Figure 1 (reset on squash).
	wordsWritten int
	privWords    int

	// consumed records, for communication-region reads, the producer whose
	// version the first read of each address observed — checked against the
	// sequential-order oracle at commit (the protocol-correctness
	// invariant). Kept as a first-read-ordered slice: communication
	// footprints are small, and the backing array survives squashes.
	consumed []consumedRead

	// commitStart is when the commit token reached the task.
	commitStart event.Time

	squashCount int
}

// consumedRead is one communication-region address and the producer whose
// version its first read observed.
type consumedRead struct {
	addr     memsys.Addr
	producer ids.TaskID
}

// recordConsumed notes the producer observed by the first read of addr.
func (t *task) recordConsumed(addr memsys.Addr, producer ids.TaskID) {
	for i := range t.consumed {
		if t.consumed[i].addr == addr {
			return
		}
	}
	t.consumed = append(t.consumed, consumedRead{addr: addr, producer: producer})
}

// reset prepares the task for (re-)execution after a squash.
func (t *task) reset() {
	t.state = taskRunning
	t.ops = nil
	t.pc = 0
	t.wordsWritten = 0
	t.privWords = 0
	t.consumed = t.consumed[:0]
}
