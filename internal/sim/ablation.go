package sim

import "repro/internal/memsys"

// Ablation knobs. These are not part of any paper scheme; they let the
// benchmark harness quantify design decisions DESIGN.md calls out.

// SetLineGranularityConflicts makes violation detection operate at cache-
// line granularity instead of the baseline protocol's word granularity
// ("triggers squashes only on out-of-order RAWs to the same word"). With
// line granularity, false sharing between tasks triggers spurious squashes;
// the ablation benchmark measures how much the word-level support buys.
// Call before Run.
func (s *Simulator) SetLineGranularityConflicts(on bool) {
	s.lineGranularity = on
}

// ForceMTID replaces the version-combining logic with the Zhang99&T
// alternative for in-order lazy merging (Section 3.3.3): main memory gains
// the task-ID filter and committed versions are written back without VCL
// combining/invalidation — memory itself rejects the stale ones. The two
// supports are functionally interchangeable for Lazy AMM; the ablation
// benchmark compares their behaviour and counts MTID's rejections. Call
// before Run.
func (s *Simulator) ForceMTID() {
	s.mem = memsys.NewMemory(true)
	s.forceMTID = true
}

// SetORBCommit switches eager merging from write-backs to ORB-style
// ownership requests (Steffan et al., discussed in Section 4.1's footnote):
// at commit, the task's modified non-owned lines are upgraded to owned with
// coherence requests instead of being written back; the data itself merges
// later, on displacement. Commit holds the token for less time, at the cost
// of the ORB table and a compatible protocol. Only meaningful for Eager AMM
// schemes. Call before Run.
func (s *Simulator) SetORBCommit(on bool) {
	s.orbCommit = on
}

// dirAddr maps an address to its conflict-detection granule.
func (s *Simulator) dirAddr(a memsys.Addr) memsys.Addr {
	if s.lineGranularity {
		return a.Line().Word(0)
	}
	return a
}
