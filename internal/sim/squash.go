package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// squashFrom handles a detected out-of-order RAW: the offending reader and
// every uncommitted successor are squashed, their polluted state is
// repaired, and they restart after recovery completes. word and writer name
// the cause — the violated word and the task whose write exposed the RAW —
// and flow into the trace's squash attribution and the obs wasted-cycles
// accounting; they do not influence timing.
//
// Recovery cost is where AMM and FMM differ most (Section 3.3.4): AMM
// recovery gang-invalidates the squashed speculative versions from the
// MROB (cheap, parallel across processors); FMM recovery runs a software
// handler that walks the distributed MHB and copies every overwritten
// version back to main memory in strict reverse task order (serialized
// across processors).
func (s *Simulator) squashFrom(first ids.TaskID, now event.Time, word memsys.Addr, writer ids.TaskID) {
	s.squashEvents++
	s.obs.squashEvent()

	// Collect the victims: every uncommitted task at or after first,
	// grouped per processor, in deterministic ID order. The per-processor
	// lists are scratch reused across squashes.
	perProc := s.squashScratch
	for i := range perProc {
		perProc[i] = perProc[i][:0]
	}
	for id, t := range s.tasks {
		if !id.Before(first) && t.state != taskCommitted {
			perProc[t.proc] = append(perProc[t.proc], t)
		}
	}
	for _, victims := range perProc {
		for i := 1; i < len(victims); i++ {
			for j := i; j > 0 && victims[j].id.Before(victims[j-1].id); j-- {
				victims[j], victims[j-1] = victims[j-1], victims[j]
			}
		}
	}

	for pi, victims := range perProc {
		p := s.procs[pi]
		for _, t := range victims {
			s.tasksSquashed++
			t.squashCount++
			s.dir.Squash(t.id)
			// Attribution: cycles of discarded execution. A finished victim
			// wasted its whole run; a running victim wasted up to its
			// processor's local time (>= startedAt by construction); a victim
			// already sitting squashed in the redo queue did no new work.
			var wasted event.Time
			switch t.state {
			case taskFinished:
				wasted = t.finishedAt - t.startedAt
			case taskRunning:
				wasted = p.lastTime - t.startedAt
			}
			s.traceSquash(now, t, word, writer, wasted)
			s.obs.taskSquashed(wasted, t.id, writer)
			t.reset()
			t.state = taskSquashed
			if p.cur == t {
				p.cur = nil
			}
			p.pushRedo(t)
			if s.pf != nil {
				// Re-request the stream so the re-dispatch after recovery
				// finds it pregenerated.
				s.pf.redo(t.index)
			}
		}
	}

	// Stale copies of squashed versions anywhere in the system are purged
	// (the squash protocol's invalidations; their latency is folded into
	// the recovery delay below).
	for _, p := range s.procs {
		purge := func(l *memsys.Line) bool {
			return l.Producer != ids.None && !l.Producer.Before(first) && l.Kind == memsys.KindCopy
		}
		p.l1.InvalidateWhere(func(l *memsys.Line) bool {
			return l.Producer != ids.None && !l.Producer.Before(first)
		})
		p.l2.InvalidateWhere(purge)
	}

	// Repair the squashed versions and compute the restart time.
	restart := now + s.cfg.SquashMsg
	if s.scheme.UsesUndoLog() {
		// FMM: the log walks run serially in reverse task order across the
		// distributed MHBs (undo entries of different processors interleave
		// in task order), so the handler times add up. The pops are per
		// processor, but the restores must be applied globally youngest-
		// overwriter-first: when squashed tasks on different processors
		// overwrote the same line, a per-processor walk can finish by
		// re-instating a squashed version that an earlier walk had already
		// undone.
		var undo []memsys.LogEntry
		var serial event.Time
		for pi, victims := range perProc {
			if len(victims) == 0 {
				continue
			}
			p := s.procs[pi]
			popped := p.mhb.PopForRecovery(victims[0].id)
			undo = append(undo, popped...)
			serial += s.cfg.FMMRestoreFixed + event.Time(len(popped))*s.cfg.FMMRestoreLine
			s.invalidateVersions(p, victims)
		}
		// Stable insertion sort, youngest overwriter first (equal overwriters
		// keep their per-processor pop order): undo lists are short, and this
		// avoids the sort package's allocating closure path.
		for i := 1; i < len(undo); i++ {
			for j := i; j > 0 && undo[j].Overwriter.After(undo[j-1].Overwriter); j-- {
				undo[j], undo[j-1] = undo[j-1], undo[j]
			}
		}
		for _, e := range undo {
			s.mem.Restore(e.Tag, e.Producer)
		}
		s.checkRecovery(first, undo, now)
		restart += serial
	} else {
		// AMM: gang-invalidate the MROB entries, processors in parallel.
		var worst event.Time
		for pi, victims := range perProc {
			if len(victims) == 0 {
				continue
			}
			lines := s.invalidateVersions(s.procs[pi], victims)
			if d := event.Time(lines) * s.cfg.AMMInvalidate; d > worst {
				worst = d
			}
		}
		restart += worst
	}

	// Stall the affected processors until recovery completes.
	for pi, victims := range perProc {
		if len(victims) == 0 {
			continue
		}
		p := s.procs[pi]
		p.blockedUntil = restart
		s.wake(p, restart)
	}
}

// invalidateVersions removes the cached and overflowed versions produced by
// the given squashed tasks on processor p, returning how many lines were
// touched.
func (s *Simulator) invalidateVersions(p *processor, victims []*task) int {
	first := victims[0].id
	n := p.l2.InvalidateWhere(func(l *memsys.Line) bool {
		return l.Kind == memsys.KindOwnVersion && !l.Producer.Before(first)
	})
	for _, t := range victims {
		n += p.ovf.DropTask(t.id)
	}
	return n
}
