package sim

import (
	"strconv"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/obs"
)

// simObs bundles the simulator's observability handles. A nil *simObs is the
// disabled layer: every hook method no-ops after one nil check, so an
// unobserved run is bit-for-bit the run a simulator without the field would
// execute (the observer-effect regression tests hold it to that).
type simObs struct {
	reg     *obs.Registry
	sampler *obs.Sampler

	tasksStarted  *obs.Counter
	tasksFinished *obs.Counter
	commits       *obs.Counter
	squashEvents  *obs.Counter
	tasksSquashed *obs.Counter
	wastedCycles  *obs.Counter

	execHist   *obs.Histogram
	commitHist *obs.Histogram
	distHist   *obs.Histogram
}

// Observe installs an observability registry and gauge sampler on the
// simulator. Call before Run; a nil cfg.Registry leaves observability
// disabled. Metrics are pure reads of simulation state — installing them
// never changes a run's Result (enforced by the observer-effect tests).
func (s *Simulator) Observe(cfg obs.Config) {
	if cfg.Registry == nil {
		return
	}
	o := &simObs{
		reg:     cfg.Registry,
		sampler: obs.NewSampler(cfg.SamplePeriod),

		tasksStarted:  cfg.Registry.Counter("sim_tasks_started"),
		tasksFinished: cfg.Registry.Counter("sim_tasks_finished"),
		commits:       cfg.Registry.Counter("sim_commits"),
		squashEvents:  cfg.Registry.Counter("sim_squash_events"),
		tasksSquashed: cfg.Registry.Counter("sim_tasks_squashed"),
		wastedCycles:  cfg.Registry.Counter("sim_wasted_cycles"),

		execHist:   cfg.Registry.Histogram("sim_exec_cycles_per_task", []uint64{100, 300, 1000, 3000, 10000, 30000, 100000}),
		commitHist: cfg.Registry.Histogram("sim_commit_cycles_per_task", []uint64{10, 30, 100, 300, 1000, 3000, 10000}),
		distHist:   cfg.Registry.Histogram("sim_squash_distance", []uint64{1, 2, 4, 8, 16, 32}),
	}

	// Component counters: the components mirror their own statistics into
	// these handles on their hot paths.
	s.dir.SetObs(
		cfg.Registry.Counter("dir_reads"),
		cfg.Registry.Counter("dir_writes"),
		cfg.Registry.Counter("dir_violations"),
	)
	s.mem.SetObs(
		cfg.Registry.Counter("mem_writebacks"),
		cfg.Registry.Counter("mem_writebacks_rejected"),
	)
	s.net.SetObs(cfg.Registry.Counter("net_messages"))

	// Gauge sources, polled at the sampling cadence. Every closure only
	// reads state. Aggregate occupancies first, then one cache-occupancy
	// track per processor.
	o.sampler.Register("spec_tasks_live", func(uint64) int64 {
		return int64(s.liveSpec)
	})
	o.sampler.Register("dir_words_live", func(uint64) int64 {
		return int64(s.dir.LiveWords())
	})
	o.sampler.Register("net_inflight", func(cycle uint64) int64 {
		return int64(s.net.InFlight(event.Time(cycle)))
	})
	o.sampler.Register("event_queue_len", func(uint64) int64 {
		return int64(s.qLen())
	})
	o.sampler.Register("ovf_lines", func(uint64) int64 {
		n := 0
		for _, p := range s.procs {
			n += p.ovf.Len()
		}
		return int64(n)
	})
	o.sampler.Register("mhb_entries", func(uint64) int64 {
		n := 0
		for _, p := range s.procs {
			n += p.mhb.Len()
		}
		return int64(n)
	})
	for _, p := range s.procs {
		p := p
		o.sampler.Register("l2_lines_p"+strconv.Itoa(int(p.id)), func(uint64) int64 {
			return int64(p.l2.LiveLines())
		})
	}

	s.obs = o
}

// Sampled returns the gauge time series recorded so far (zero Series when
// observability is disabled).
func (s *Simulator) Sampled() obs.Series {
	if s.obs == nil {
		return obs.Series{}
	}
	return s.obs.sampler.Series()
}

// ObsRegistry returns the installed registry (nil when disabled).
func (s *Simulator) ObsRegistry() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

func (o *simObs) poll(now event.Time) {
	if o == nil {
		return
	}
	o.sampler.Poll(uint64(now))
}

// force takes the final end-of-section row.
func (o *simObs) force(now event.Time) {
	if o == nil {
		return
	}
	o.sampler.Force(uint64(now))
}

func (o *simObs) taskStarted() {
	if o == nil {
		return
	}
	o.tasksStarted.Inc()
}

func (o *simObs) taskFinished(execCycles event.Time) {
	if o == nil {
		return
	}
	o.tasksFinished.Inc()
	o.execHist.Observe(uint64(execCycles))
}

func (o *simObs) commitDone(commitCycles event.Time) {
	if o == nil {
		return
	}
	o.commits.Inc()
	o.commitHist.Observe(uint64(commitCycles))
}

func (o *simObs) squashEvent() {
	if o == nil {
		return
	}
	o.squashEvents.Inc()
}

func (o *simObs) taskSquashed(wasted event.Time, reader, writer ids.TaskID) {
	if o == nil {
		return
	}
	o.tasksSquashed.Inc()
	o.wastedCycles.Add(uint64(wasted))
	if writer != ids.None && reader.After(writer) {
		o.distHist.Observe(uint64(reader) - uint64(writer))
	}
}
