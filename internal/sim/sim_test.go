package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// tinyProfile is a fast synthetic profile exercising every mechanism:
// privatization (version stalls, multi-version sets), cross-task
// dependences (squashes), shared reads, and some imbalance.
func tinyProfile() workload.Profile {
	return workload.Profile{
		Name:           "tiny",
		Tasks:          60,
		InstrPerTask:   2000,
		FootprintBytes: 512,
		WriteDensity:   4,
		PrivFrac:       0.5,
		WritePhase:     0.5,
		ImbalanceCV:    0.4,
		ReadsPerWrite:  1.5,
		SharedReadFrac: 0.3,
		HotReadWords:   2048,
		DepProb:        0.2,
		DepReach:       8,
	}
}

func allSchemes() []core.Scheme { return core.AllSchemes() }

func TestAllSchemesComplete(t *testing.T) {
	for _, mach := range []*machine.Config{machine.NUMA16(), machine.CMP8()} {
		for _, sch := range allSchemes() {
			r := Run(mach, sch, tinyProfile(), 7)
			if r.Commits != r.Tasks {
				t.Errorf("%s/%v: committed %d of %d tasks", mach.Name, sch, r.Commits, r.Tasks)
			}
			if r.ExecCycles == 0 {
				t.Errorf("%s/%v: zero execution time", mach.Name, sch)
			}
		}
	}
}

// The central protocol-correctness invariant: every committed cross-task
// read observed exactly the version sequential semantics dictates, under
// every scheme, machine, and seed — squashes, version forwarding, lazy
// merging, overflow, and undo-log recovery all have to cooperate for this
// to hold.
func TestSequentialSemanticsInvariant(t *testing.T) {
	for _, mach := range []*machine.Config{machine.NUMA16(), machine.CMP8()} {
		for _, sch := range allSchemes() {
			for seed := uint64(1); seed <= 5; seed++ {
				r := Run(mach, sch, tinyProfile(), seed)
				if r.OracleChecks == 0 {
					t.Fatalf("%s/%v seed %d: no cross-task reads checked", mach.Name, sch, seed)
				}
				if r.OracleViolations != 0 {
					t.Errorf("%s/%v seed %d: %d/%d committed reads observed the wrong version",
						mach.Name, sch, seed, r.OracleViolations, r.OracleChecks)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, sch := range []core.Scheme{core.SingleTEager, core.MultiTMVLazy, core.MultiTMVFMM} {
		a := Run(machine.NUMA16(), sch, tinyProfile(), 3)
		b := Run(machine.NUMA16(), sch, tinyProfile(), 3)
		if a.ExecCycles != b.ExecCycles || a.SquashEvents != b.SquashEvents ||
			a.Agg != b.Agg {
			t.Errorf("%v: identical runs differ: %d vs %d cycles", sch, a.ExecCycles, b.ExecCycles)
		}
	}
}

func TestBreakdownSumsToWallClock(t *testing.T) {
	for _, sch := range allSchemes() {
		r := Run(machine.CMP8(), sch, tinyProfile(), 11)
		for i, bd := range r.PerProc {
			if bd.Total() != r.ExecCycles {
				t.Errorf("%v proc %d: breakdown %d != wall clock %d", sch, i, bd.Total(), r.ExecCycles)
			}
		}
	}
}

func TestSqushesOnlyWithDependences(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0
	p.DepReach = 0
	for _, sch := range allSchemes() {
		r := Run(machine.NUMA16(), sch, p, 13)
		if r.SquashEvents != 0 || r.TasksSquashed != 0 {
			t.Errorf("%v: squashes without cross-task dependences (%d events)", sch, r.SquashEvents)
		}
		if r.Violations != 0 {
			t.Errorf("%v: directory flagged %d violations", sch, r.Violations)
		}
	}
}

func TestDependencesCauseSquashes(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0.5
	r := Run(machine.NUMA16(), core.MultiTMVLazy, p, 17)
	if r.SquashEvents == 0 {
		t.Fatal("heavy cross-task dependences produced no squashes")
	}
	if r.Commits != r.Tasks {
		t.Fatal("squashes lost tasks")
	}
	if r.OracleViolations != 0 {
		t.Fatal("squash recovery broke sequential semantics")
	}
}

func TestSingleTStallsMoreThanMultiT(t *testing.T) {
	// An imbalanced workload: SingleT must lose task-stall time that
	// MultiT&MV does not.
	p := tinyProfile()
	p.ImbalanceCV = 1.0
	p.HeavyTailFrac = 0.05
	p.HeavyTailMax = 60
	p.DepProb = 0
	single := Run(machine.NUMA16(), core.SingleTEager, p, 19)
	multi := Run(machine.NUMA16(), core.MultiTMVEager, p, 19)
	if single.ExecCycles <= multi.ExecCycles {
		t.Errorf("SingleT (%d) should be slower than MultiT&MV (%d) under load imbalance",
			single.ExecCycles, multi.ExecCycles)
	}
	if single.Agg.StallTask == 0 {
		t.Error("SingleT must accumulate task stall (token waits)")
	}
	if multi.Agg.StallTask != 0 {
		t.Error("MultiT&MV must never stall for task/version support")
	}
}

func TestMultiTSVStallsOnPrivatization(t *testing.T) {
	p := tinyProfile()
	p.PrivFrac = 1.0
	p.WritePhase = 0.2
	p.DepProb = 0
	p.ImbalanceCV = 0.8
	sv := Run(machine.NUMA16(), core.MultiTSVEager, p, 23)
	mv := Run(machine.NUMA16(), core.MultiTMVEager, p, 23)
	if sv.Agg.StallTask == 0 {
		t.Error("MultiT&SV with dominant privatization must stall on second versions")
	}
	if mv.ExecCycles >= sv.ExecCycles {
		t.Errorf("MultiT&MV (%d) must beat MultiT&SV (%d) under privatization",
			mv.ExecCycles, sv.ExecCycles)
	}
}

func TestMultiTSVMatchesMVWithoutPrivatization(t *testing.T) {
	p := tinyProfile()
	p.PrivFrac = 0
	sv := Run(machine.NUMA16(), core.MultiTSVEager, p, 29)
	mv := Run(machine.NUMA16(), core.MultiTMVEager, p, 29)
	if sv.ExecCycles != mv.ExecCycles {
		t.Errorf("without privatization MultiT&SV (%d) must match MultiT&MV (%d)",
			sv.ExecCycles, mv.ExecCycles)
	}
}

func TestLazinessRemovesCommitFromCriticalPath(t *testing.T) {
	// A high Commit/Execution-ratio workload: laziness must win and the
	// measured commit duration must collapse.
	p := tinyProfile()
	p.FootprintBytes = 4096
	p.WriteDensity = 1
	p.DepProb = 0
	eager := Run(machine.NUMA16(), core.MultiTMVEager, p, 31)
	lazy := Run(machine.NUMA16(), core.MultiTMVLazy, p, 31)
	if lazy.ExecCycles >= eager.ExecCycles {
		t.Errorf("laziness (%d) must beat eager merging (%d) at high commit ratios",
			lazy.ExecCycles, eager.ExecCycles)
	}
	if lazy.AvgCommitPerTask >= eager.AvgCommitPerTask/4 {
		t.Errorf("lazy commit (%f) must be far below eager commit (%f)",
			lazy.AvgCommitPerTask, eager.AvgCommitPerTask)
	}
	if lazy.VCLMerges == 0 {
		t.Error("lazy AMM must merge committed versions through the VCL")
	}
}

func TestFMMRecoveryCostlierThanAMM(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0.4
	lazy := Run(machine.NUMA16(), core.MultiTMVLazy, p, 37)
	fmm := Run(machine.NUMA16(), core.MultiTMVFMM, p, 37)
	if lazy.SquashEvents == 0 || fmm.SquashEvents == 0 {
		t.Skip("seed produced no squashes")
	}
	perLazy := float64(lazy.Agg.StallRecovery) / float64(lazy.SquashEvents)
	perFMM := float64(fmm.Agg.StallRecovery) / float64(fmm.SquashEvents)
	if perFMM <= perLazy {
		t.Errorf("FMM recovery per squash (%f) must exceed AMM recovery (%f)", perFMM, perLazy)
	}
	if fmm.MHBRestored == 0 {
		t.Error("FMM recovery must walk the MHB")
	}
}

func TestFMMSwAddsLoggingInstructions(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0
	hw := Run(machine.NUMA16(), core.MultiTMVFMM, p, 41)
	sw := Run(machine.NUMA16(), core.MultiTMVFMMSw, p, 41)
	if sw.Agg.Busy <= hw.Agg.Busy {
		t.Error("software logging must add busy instructions")
	}
	if hw.MHBAppends == 0 || hw.MHBAppends != sw.MHBAppends {
		t.Errorf("logging volume must match: %d vs %d", hw.MHBAppends, sw.MHBAppends)
	}
}

func TestOverflowOnlyUnderAMM(t *testing.T) {
	// Deep per-processor version stacks: same lines written by every task.
	p := tinyProfile()
	p.PrivFrac = 1.0
	p.ImbalanceCV = 1.2
	p.DepProb = 0
	p.Tasks = 120
	amm := Run(machine.NUMA16(), core.MultiTMVEager, p, 43)
	fmm := Run(machine.NUMA16(), core.MultiTMVFMM, p, 43)
	if amm.OverflowSpills == 0 {
		t.Skip("workload did not pressure the buffers")
	}
	if fmm.OverflowSpills != 0 {
		t.Error("FMM must never use the overflow area")
	}
	if fmm.FMMWritebacks == 0 {
		t.Error("FMM displacements must write back to memory")
	}
	if amm.MemRejected != 0 {
		t.Error("AMM runs memory without MTID; nothing can be rejected")
	}
}

func TestBigL2RemovesOverflow(t *testing.T) {
	p := tinyProfile()
	p.PrivFrac = 1.0
	p.ImbalanceCV = 1.2
	p.DepProb = 0
	p.Tasks = 120
	small := Run(machine.NUMA16(), core.MultiTMVLazy, p, 43)
	big := Run(machine.NUMA16BigL2(), core.MultiTMVLazy, p, 43)
	if small.OverflowSpills == 0 {
		t.Skip("workload did not pressure the buffers")
	}
	if big.OverflowSpills >= small.OverflowSpills {
		t.Errorf("the 16-way 4-MB L2 must reduce spills (%d -> %d)",
			small.OverflowSpills, big.OverflowSpills)
	}
}

func TestSequentialBaseline(t *testing.T) {
	seq := RunSequential(machine.NUMA16(), tinyProfile(), 47)
	if seq.Commits != seq.Tasks {
		t.Fatal("sequential run lost tasks")
	}
	if seq.SquashEvents != 0 {
		t.Fatal("a single-processor run can have no violations")
	}
	par := Run(machine.NUMA16(), core.MultiTMVLazy, tinyProfile(), 47)
	sp := par.Speedup(seq.ExecCycles)
	if sp < 1 || sp > 16 {
		t.Fatalf("speedup %f out of (1, 16)", sp)
	}
}

func TestCommitExecRatioMeasured(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0
	r := Run(machine.NUMA16(), core.MultiTMVEager, p, 53)
	if r.CommitExecRatio() <= 0 {
		t.Fatal("eager runs must measure a positive Commit/Execution ratio")
	}
	if r.AvgFootprintBytes <= 0 || r.AvgSpecTasksSystem <= 0 {
		t.Fatal("Figure 1 statistics missing")
	}
	if r.AvgPrivFrac <= 0.2 || r.AvgPrivFrac > 1 {
		t.Fatalf("priv fraction %f implausible for a 50%%-priv profile", r.AvgPrivFrac)
	}
}

func TestInvalidSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shaded scheme must panic")
		}
	}()
	gen := workload.NewGenerator(tinyProfile(), 1)
	New(machine.NUMA16(), core.Scheme{Sep: core.SingleT, Merge: core.FMM}, gen)
}

func TestSquashesPerTaskAndSpeedupHelpers(t *testing.T) {
	r := Result{Commits: 100, TasksSquashed: 5, ExecCycles: 200}
	if r.SquashesPerTask() != 0.05 {
		t.Fatal("SquashesPerTask wrong")
	}
	if r.Speedup(400) != 2 {
		t.Fatal("Speedup wrong")
	}
	var zero Result
	if zero.SquashesPerTask() != 0 || zero.Speedup(5) != 0 || zero.CommitExecRatio() != 0 {
		t.Fatal("zero-value helpers must not divide by zero")
	}
}

func TestCMPFasterMemorySmallerDeltas(t *testing.T) {
	// The CMP's lower latencies must raise the busy fraction relative to
	// the NUMA machine (Section 5.3's headline observation).
	p := tinyProfile()
	p.DepProb = 0
	numa := Run(machine.NUMA16(), core.MultiTMVEager, p, 59)
	cmp := Run(machine.CMP8(), core.MultiTMVEager, p, 59)
	if cmp.Agg.BusyFraction() <= numa.Agg.BusyFraction() {
		t.Errorf("CMP busy fraction (%f) must exceed NUMA (%f)",
			cmp.Agg.BusyFraction(), numa.Agg.BusyFraction())
	}
}

func TestORBCommitBetweenEagerAndLazy(t *testing.T) {
	// ORB-style eager merging (ownership requests) must beat write-back
	// eager merging on a high commit-ratio workload, while remaining an
	// eager scheme (token held per line, just more cheaply).
	p := tinyProfile()
	p.FootprintBytes = 4096
	p.WriteDensity = 1
	p.DepProb = 0
	gen := func() *workload.Generator { return workload.NewGenerator(p, 61) }
	eager := New(machine.NUMA16(), core.MultiTMVEager, gen()).Run()
	orb := New(machine.NUMA16(), core.MultiTMVEager, gen())
	orb.SetORBCommit(true)
	or := orb.Run()
	lazy := New(machine.NUMA16(), core.MultiTMVLazy, gen()).Run()
	if !(or.ExecCycles < eager.ExecCycles) {
		t.Errorf("ORB commit (%d) must beat write-back commit (%d)", or.ExecCycles, eager.ExecCycles)
	}
	if !(lazy.ExecCycles <= or.ExecCycles) {
		t.Errorf("laziness (%d) must still be at least as fast as ORB (%d)", lazy.ExecCycles, or.ExecCycles)
	}
	if or.OracleViolations != 0 || or.Commits != or.Tasks {
		t.Error("ORB commit broke the protocol")
	}
}

func TestLineGranularityCausesFalseSharingSquashes(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0.3
	p.PackedChannels = true
	gen := func() *workload.Generator { return workload.NewGenerator(p, 67) }
	word := New(machine.NUMA16(), core.MultiTMVLazy, gen()).Run()
	line := New(machine.NUMA16(), core.MultiTMVLazy, gen())
	line.SetLineGranularityConflicts(true)
	lr := line.Run()
	if lr.SquashEvents <= word.SquashEvents {
		t.Errorf("line granularity (%d squashes) must add false-sharing squashes over word granularity (%d)",
			lr.SquashEvents, word.SquashEvents)
	}
	if lr.Commits != lr.Tasks {
		t.Error("line-granularity run lost tasks")
	}
}

func TestForceMTIDInterchangeableWithVCL(t *testing.T) {
	p := tinyProfile()
	p.PrivFrac = 1.0
	p.DepProb = 0
	gen := func() *workload.Generator { return workload.NewGenerator(p, 71) }
	vcl := New(machine.NUMA16(), core.MultiTMVLazy, gen()).Run()
	m := New(machine.NUMA16(), core.MultiTMVLazy, gen())
	m.ForceMTID()
	mr := m.Run()
	// The two in-order merging supports are interchangeable: both complete
	// the section with correct semantics and near-identical timing (MTID
	// skips the VCL invalidations, so cache contents differ marginally).
	ratio := float64(mr.ExecCycles) / float64(vcl.ExecCycles)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("VCL (%d) and MTID (%d) lazy merging diverge by more than 5%%",
			vcl.ExecCycles, mr.ExecCycles)
	}
	if vcl.MemRejected != 0 {
		t.Error("VCL memory must not reject write-backs")
	}
	// MTID must earn its keep: stale write-backs of superseded committed
	// versions are rejected instead of combined away.
	if mr.MemRejected == 0 {
		t.Error("MTID rejected nothing; the ablation is vacuous")
	}
	// And the final memory image stays sequential either way.
	m2 := New(machine.NUMA16(), core.MultiTMVLazy, gen())
	m2.ForceMTID()
	m2.Run()
	if _, wrong := m2.VerifyFinalMemory(); wrong != 0 {
		t.Error("MTID merging corrupted the final memory image")
	}
}

func TestInvocationBarrierBoundsSpeculation(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0
	p.Tasks = 120
	unbounded := Run(machine.NUMA16(), core.MultiTMVEager, p, 73)
	p.TasksPerInvoc = 20
	bounded := Run(machine.NUMA16(), core.MultiTMVEager, p, 73)
	if bounded.Commits != bounded.Tasks {
		t.Fatal("invocation barriers lost tasks")
	}
	if bounded.AvgSpecTasksSystem > 21 {
		t.Errorf("avg speculative tasks %f exceeds the invocation bound",
			bounded.AvgSpecTasksSystem)
	}
	if bounded.AvgSpecTasksSystem >= unbounded.AvgSpecTasksSystem {
		t.Errorf("barriers must reduce co-existing tasks (%f vs %f)",
			bounded.AvgSpecTasksSystem, unbounded.AvgSpecTasksSystem)
	}
	if bounded.OracleViolations != 0 {
		t.Error("barriers broke sequential semantics")
	}
}

func TestTraceWellFormed(t *testing.T) {
	p := tinyProfile()
	p.DepProb = 0.3
	gen := workload.NewGenerator(p, 79)
	s := New(machine.NUMA16(), core.MultiTMVLazy, gen)
	s.EnableTrace()
	r := s.Run()
	starts := map[string]int{}
	type key struct{ k TraceKind }
	counts := map[TraceKind]int{}
	var last event.Time
	for _, ev := range r.Trace {
		if ev.When < last {
			// Events are appended from per-processor local clocks, which may
			// interleave; but each is bounded by the quantum. Only flag
			// egregious disorder.
			if last-ev.When > 10*quantum {
				t.Fatalf("trace time went backwards by %d", last-ev.When)
			}
		} else {
			last = ev.When
		}
		counts[ev.Kind]++
		_ = starts
	}
	if counts[TraceStart] == 0 || counts[TraceFinish] == 0 ||
		counts[TraceCommitStart] != r.Tasks || counts[TraceCommitEnd] != r.Tasks {
		t.Fatalf("trace counts wrong: %v (tasks %d)", counts, r.Tasks)
	}
	// Every committed task started at least once; a squashed task restarts,
	// except when it is squashed again while still queued for re-execution.
	if counts[TraceStart] < r.Tasks || counts[TraceStart] > r.Tasks+r.TasksSquashed {
		t.Errorf("starts = %d, want within [tasks(%d), tasks+squashed(%d)]",
			counts[TraceStart], r.Tasks, r.Tasks+r.TasksSquashed)
	}
	if counts[TraceSquash] != r.TasksSquashed {
		t.Errorf("squash events = %d, want %d", counts[TraceSquash], r.TasksSquashed)
	}
}

func TestTraceKindStrings(t *testing.T) {
	for k, want := range map[TraceKind]string{
		TraceStart: "start", TraceFinish: "finish", TraceCommitStart: "commit-start",
		TraceCommitEnd: "commit-end", TraceSquash: "squash", TraceKind(99): "trace(?)",
	} {
		if got := k.String(); got != want {
			t.Errorf("TraceKind(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestNoTraceWithoutEnable(t *testing.T) {
	r := Run(machine.CMP8(), core.SingleTEager, tinyProfile(), 83)
	if len(r.Trace) != 0 {
		t.Fatal("trace recorded without EnableTrace")
	}
}

// The strongest end-to-end invariant: after the section completes and all
// lingering state merges, main memory's version image must equal the
// sequential execution's final state, under every scheme and machine —
// in-order eager merging, VCL-ordered lazy merging, MTID-filtered FMM
// write-backs, overflow drains, and undo-log recovery all have to conspire
// correctly.
func TestFinalMemoryImage(t *testing.T) {
	for _, mach := range []*machine.Config{machine.NUMA16(), machine.CMP8()} {
		for _, sch := range allSchemes() {
			for seed := uint64(1); seed <= 3; seed++ {
				gen := workload.NewGenerator(tinyProfile(), seed)
				s := New(mach, sch, gen)
				s.Run()
				checked, wrong := s.VerifyFinalMemory()
				if checked == 0 {
					t.Fatalf("%s/%v: nothing checked", mach.Name, sch)
				}
				if wrong != 0 {
					t.Errorf("%s/%v seed %d: %d/%d lines hold the wrong final version",
						mach.Name, sch, seed, wrong, checked)
				}
			}
		}
	}
}

func TestFinalMemoryImageWithORB(t *testing.T) {
	gen := workload.NewGenerator(tinyProfile(), 5)
	s := New(machine.NUMA16(), core.MultiTMVEager, gen)
	s.SetORBCommit(true)
	s.Run()
	if checked, wrong := s.VerifyFinalMemory(); wrong != 0 || checked == 0 {
		t.Fatalf("ORB commit corrupted memory: %d/%d wrong", wrong, checked)
	}
}

func TestVerifyBeforeRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyFinalMemory before Run must panic")
		}
	}()
	gen := workload.NewGenerator(tinyProfile(), 1)
	New(machine.NUMA16(), core.SingleTEager, gen).VerifyFinalMemory()
}

func TestCoarseRecoveryWithoutViolations(t *testing.T) {
	// Dependence-free loop: the LRPD-style baseline runs as a doall and
	// should beat SingleT Eager (no token waits, trivial commits), paying
	// only the software marking overhead versus MultiT&MV FMM.
	p := tinyProfile()
	p.DepProb = 0
	coarse := Run(machine.NUMA16(), core.CoarseRecovery, p, 87)
	single := Run(machine.NUMA16(), core.SingleTEager, p, 87)
	if coarse.Commits != coarse.Tasks {
		t.Fatal("coarse recovery lost tasks")
	}
	if coarse.SquashEvents != 0 {
		t.Fatal("no violations, so the end-of-section test must pass")
	}
	if coarse.ExecCycles >= single.ExecCycles {
		t.Errorf("a passing speculative doall (%d) must beat SingleT (%d)",
			coarse.ExecCycles, single.ExecCycles)
	}
	if coarse.MHBAppends != 0 {
		t.Error("coarse recovery keeps no undo log")
	}
	gen := workload.NewGenerator(p, 87)
	s := New(machine.NUMA16(), core.CoarseRecovery, gen)
	s.Run()
	if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
		t.Error("final memory image wrong without violations")
	}
}

func TestCoarseRecoveryWithViolations(t *testing.T) {
	// A loop with cross-task dependences: the end-of-section test fails and
	// the whole section re-executes serially — catastrophic, which is the
	// point of fine-grain recovery.
	p := tinyProfile()
	p.DepProb = 0.3
	gen := workload.NewGenerator(p, 89)
	s := New(machine.NUMA16(), core.CoarseRecovery, gen)
	r := s.Run()
	if r.SquashEvents != 1 || r.TasksSquashed != r.Tasks {
		t.Fatalf("failed test must re-execute the whole section: %d events, %d squashed",
			r.SquashEvents, r.TasksSquashed)
	}
	fine := Run(machine.NUMA16(), core.MultiTMVLazy, p, 89)
	if r.ExecCycles <= fine.ExecCycles {
		t.Errorf("coarse recovery (%d) must lose badly to fine-grain recovery (%d) under violations",
			r.ExecCycles, fine.ExecCycles)
	}
	if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
		t.Error("serial re-execution must restore the sequential memory image")
	}
	for i, bd := range r.PerProc {
		if bd.Total() != r.ExecCycles {
			t.Errorf("proc %d breakdown %d != wall clock %d", i, bd.Total(), r.ExecCycles)
		}
	}
}

func TestCoarseSchemeProperties(t *testing.T) {
	if !core.CoarseRecovery.Valid() || !core.CoarseRecovery.Interesting() {
		t.Fatal("coarse recovery must be a valid, modelled point")
	}
	if len(core.RequiredSupports(core.CoarseRecovery)) != 0 {
		t.Fatal("coarse recovery needs no buffering hardware beyond plain caches")
	}
	if !core.CoarseRecovery.MultipleTasksPerProc() {
		t.Fatal("the speculative doall must not stall on the commit token")
	}
	if got, ok := core.SchemeFromString("Coarse Recovery (LRPD)"); !ok || !got.Coarse {
		t.Fatal("coarse scheme must parse by name")
	}
	if len(core.ExtendedSchemes()) != len(core.AllSchemes())+1 {
		t.Fatal("ExtendedSchemes must add exactly the coarse baseline")
	}
}

func TestExplicitTraceWorkload(t *testing.T) {
	// Producer/consumer chain: task i writes word i, task i+1 reads word i
	// early — guaranteed out-of-order RAWs when run speculatively.
	var streams [][]workload.Op
	const n = 12
	base := memsys.Addr(1 << 16)
	for i := 0; i < n; i++ {
		var b workload.TraceBuilder
		if i > 0 {
			b.Read(base + memsys.Addr(i-1)*memsys.WordsPerLine)
		}
		b.Compute(3000)
		b.Write(base + memsys.Addr(i)*memsys.WordsPerLine)
		streams = append(streams, b.Ops())
	}
	tr := workload.NewTrace("chain", streams, 0)
	s := New(machine.NUMA16(), core.MultiTMVLazy, tr)
	r := s.Run()
	if r.Commits != n {
		t.Fatalf("commits = %d", r.Commits)
	}
	if r.SquashEvents == 0 {
		t.Fatal("a serial dependence chain must squash under speculation")
	}
	// No OrderOracle on traces: the oracle counters stay untouched.
	if r.OracleChecks != 0 {
		t.Fatal("traces without an oracle must not report checks")
	}
	// But the memory image must still be the sequential one.
	if checked, wrong := s.VerifyFinalMemory(); wrong != 0 || checked != n {
		t.Fatalf("final memory %d/%d wrong", wrong, checked)
	}
	if r.App != "chain" {
		t.Fatalf("workload name lost: %q", r.App)
	}
}

func TestTraceWithInvocations(t *testing.T) {
	var streams [][]workload.Op
	for i := 0; i < 8; i++ {
		var b workload.TraceBuilder
		b.Compute(1000).Write(memsys.Addr(1<<16) + memsys.Addr(i*16))
		streams = append(streams, b.Ops())
	}
	tr := workload.NewTrace("inv", streams, 4)
	s := New(machine.CMP8(), core.MultiTMVEager, tr)
	r := s.Run()
	if r.Commits != 8 {
		t.Fatalf("commits = %d", r.Commits)
	}
	// The barrier holds the second invocation back: with 8 processors and
	// 4-task invocations, at most 4 tasks co-exist.
	if r.AvgSpecTasksSystem > 4.5 {
		t.Fatalf("invocation barrier ignored: %f tasks in flight", r.AvgSpecTasksSystem)
	}
}

// setStride returns a line-address stride that maps consecutive lines onto
// the same L2 set of the NUMA machine, forcing same-set version pressure.
func setStride() memsys.Addr {
	sets := memsys.Addr(machine.NUMA16().L2.Sets())
	return sets * memsys.WordsPerLine
}

func TestOwnOverflowReaccess(t *testing.T) {
	// One task overflows its own speculative lines (same-set writes beyond
	// the associativity), then re-reads and re-writes the first of them:
	// the version must come back from the overflow area.
	stride := setStride()
	base := memsys.Addr(1 << 18)
	var b workload.TraceBuilder
	for i := 0; i < 7; i++ {
		b.Write(base + memsys.Addr(i)*stride)
		b.Compute(50)
	}
	b.Compute(500)
	b.Read(base)  // re-read the (by now displaced) first line
	b.Write(base) // and re-write it
	b.Compute(100)
	// A second task spills and then RE-WRITES a displaced line without
	// reading it first: the write path itself must retrieve from overflow.
	base2 := base + 16
	var b2 workload.TraceBuilder
	for i := 0; i < 7; i++ {
		b2.Write(base2 + memsys.Addr(i)*stride)
		b2.Compute(50)
	}
	b2.Compute(500)
	b2.Write(base2)
	b2.Compute(100)
	tr := workload.NewTrace("ovfself", [][]workload.Op{b.Ops(), b2.Ops()}, 0)
	s := New(machine.NUMA16(), core.MultiTMVEager, tr)
	r := s.Run()
	if r.OverflowSpills == 0 {
		t.Fatal("same-set writes beyond associativity must spill")
	}
	if r.OverflowRetrievals == 0 {
		t.Fatal("re-accessing a displaced version must retrieve from the overflow area")
	}
	if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
		t.Fatal("overflow round trip corrupted memory")
	}
}

func TestRemoteOverflowFetch(t *testing.T) {
	// Task 0 writes a same-set burst (spilling some of its versions) and
	// then computes for a long time; task 1 reads one of task 0's words
	// while task 0 is still speculative, so the version must be served
	// from task 0's node — cache or overflow area.
	stride := setStride()
	base := memsys.Addr(1 << 18)
	var producer workload.TraceBuilder
	for i := 0; i < 8; i++ {
		producer.Write(base + memsys.Addr(i)*stride)
	}
	producer.Compute(60000) // stay speculative for a long time
	var consumer workload.TraceBuilder
	consumer.Compute(2000) // give the producer time to write
	for i := 0; i < 8; i++ {
		consumer.Read(base + memsys.Addr(i)*stride)
	}
	consumer.Compute(1000)
	tr := workload.NewTrace("ovfremote", [][]workload.Op{producer.Ops(), consumer.Ops()}, 0)
	s := New(machine.NUMA16(), core.MultiTMVEager, tr)
	r := s.Run()
	if r.Commits != 2 {
		t.Fatalf("commits = %d", r.Commits)
	}
	if r.OverflowSpills == 0 {
		t.Fatal("producer must spill")
	}
	if _, wrong := s.VerifyFinalMemory(); wrong != 0 {
		t.Fatal("cross-node versions corrupted memory")
	}
}

func TestMultiTSVStallsOnOverflowedVersion(t *testing.T) {
	// Under MultiT&SV the second-version stall must also see versions that
	// were displaced into the overflow area, not just cached ones.
	p := tinyProfile()
	p.PrivFrac = 1.0
	p.FootprintBytes = 2048
	p.WriteDensity = 16
	p.WritePhase = 0.2
	p.DepProb = 0
	p.ImbalanceCV = 1.2
	p.Tasks = 100
	r := Run(machine.NUMA16(), core.MultiTSVEager, p, 91)
	if r.Commits != r.Tasks {
		t.Fatal("lost tasks")
	}
	if r.Agg.StallTask == 0 {
		t.Fatal("privatization under MultiT&SV must stall")
	}
}

func TestContentionObserved(t *testing.T) {
	// A memory-heavy run must exhibit bank queuing.
	p := tinyProfile()
	p.SharedReadFrac = 0.9
	p.ReadsPerWrite = 3
	p.HotReadWords = 1 << 15
	r := Run(machine.NUMA16(), core.MultiTMVEager, p, 93)
	if r.BankQueueCycles == 0 {
		t.Fatal("no bank contention observed on a memory-heavy run")
	}
}
