package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

// runParallelN builds and runs one simulation in parallel mode.
func runParallelN(mach *machine.Config, sch core.Scheme, p workload.Profile, seed uint64, n int) Result {
	s := New(mach, sch, workload.NewGenerator(p, seed))
	s.SetParallel(n)
	return s.Run()
}

// The tentpole acceptance test: for every app × scheme, the parallel loop
// at every worker count — including 1, which must select the serial code
// path — produces a Result deeply identical to the serial loop, on both
// machine families (different topologies, hence different lookaheads).
func TestParallelMatchesSerialGrid(t *testing.T) {
	machines := []*machine.Config{machine.NUMA16(), machine.CMP8()}
	apps := workload.Apps()
	schemes := allSchemes()
	if testing.Short() {
		machines = machines[:1]
		apps = apps[:3]
		schemes = []core.Scheme{core.SingleTEager, core.MultiTMVLazy, core.MultiTMVFMM}
	}
	for _, mach := range machines {
		for _, app := range apps {
			p := app.Scale(0.1, 0.1, 0.25)
			for _, sch := range schemes {
				serial := Run(mach, sch, p, 99)
				for _, n := range []int{1, 2, 8} {
					got := runParallelN(mach, sch, p, 99, n)
					if !reflect.DeepEqual(serial, got) {
						t.Errorf("%s/%v/%s parallel=%d: result differs from serial (%d vs %d cycles, %d vs %d events)",
							mach.Name, sch, p.Name, n, got.ExecCycles, serial.ExecCycles, got.Events, serial.Events)
					}
				}
			}
		}
	}
}

// Fault-injected runs must stay identical too: squashes are the events
// most sensitive to ordering (they roll back several processors in one
// same-cycle step) and the injector adds more of them.
func TestParallelMatchesSerialWithFaults(t *testing.T) {
	mach := machine.NUMA16()
	p := tinyProfile()
	fcfg := fault.Config{Seed: 7, SquashProb: 0.2, DelayProb: 0.05, DelayCycles: 40, StallProb: 0.05, StallCycles: 30}
	build := func(n int) *Simulator {
		s := New(mach, core.MultiTMVEager, workload.NewGenerator(p, 99))
		s.InjectFaults(fault.NewPlan(fcfg))
		if n > 1 {
			s.SetParallel(n)
		}
		return s
	}
	serial := build(1).Run()
	if serial.SquashEvents == 0 {
		t.Fatal("fault plan injected no squashes; the test is vacuous")
	}
	for _, n := range []int{2, 8} {
		if got := build(n).Run(); !reflect.DeepEqual(serial, got) {
			t.Errorf("parallel=%d: fault-injected result differs from serial", n)
		}
	}
}

// Checkpoints must be mode-portable: one taken mid-run by a parallel
// simulator restores into a serial one (and vice versa) and the resumed
// run completes identically to the uninterrupted serial run.
func TestParallelCheckpointCrossModeRestore(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Tree().Scale(0.1, 0.1, 0.25)
	sch := core.MultiTMVLazy
	golden := Run(mach, sch, p, 99)
	build := func(n int) func() *Simulator {
		return func() *Simulator {
			s := New(mach, sch, workload.NewGenerator(p, 99))
			if n > 1 {
				s.SetParallel(n)
			}
			return s
		}
	}

	// Parallel runs checkpoint without perturbing their (serial-identical)
	// results; each capture mode restores into each run mode.
	for _, capN := range []int{1, 8} {
		ck, withCkpt := captureAt(t, build(capN), max(1, golden.Commits/2))
		if !reflect.DeepEqual(golden, withCkpt) {
			t.Errorf("capture parallel=%d: taking a checkpoint perturbed the run", capN)
		}
		for _, resN := range []int{1, 8} {
			resumed := build(resN)()
			if err := resumed.Restore(ck); err != nil {
				t.Errorf("capture parallel=%d restore parallel=%d: %v", capN, resN, err)
				continue
			}
			if got := resumed.Run(); !reflect.DeepEqual(golden, got) {
				t.Errorf("capture parallel=%d restore parallel=%d: resumed result differs (%d vs %d cycles)",
					capN, resN, got.ExecCycles, golden.ExecCycles)
			}
		}
	}
}

// The sequential baseline (one processor, one lane) runs in parallel mode
// too — the degenerate machine must not trip the sharded loop.
func TestParallelSequentialBaseline(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Tree().Scale(0.1, 0.1, 0.25)
	golden := RunSequential(mach, p, 99)
	s := NewSequential(mach, p, 99)
	s.SetParallel(4)
	if got := s.Run(); !reflect.DeepEqual(golden, got) {
		t.Error("parallel sequential baseline differs from serial")
	}
}

// Interrupting a parallel run halts at a commit boundary exactly like the
// serial loop, and the checkpoint resumes to the identical result.
func TestParallelInterruptResume(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	build := func(n int) *Simulator {
		s := New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
		if n > 1 {
			s.SetParallel(n)
		}
		return s
	}
	golden := build(1).Run()

	s := build(8)
	var last *Checkpoint
	calls := 0
	s.SetAutoCheckpoint(1)
	s.SetCheckpointSink(func(c *Checkpoint) {
		last = c
		calls++
		if calls == 5 {
			s.Interrupt()
		}
	})
	if res := s.Run(); !s.Halted() || res.Commits != 0 {
		t.Fatalf("interrupted parallel run: halted=%v result=%+v", s.Halted(), res)
	}
	resumed := build(8)
	if err := resumed.Restore(last); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(golden, got) {
		t.Errorf("parallel interrupt-resume differs from uninterrupted serial run")
	}
}

// SetParallel is a pre-run knob only.
func TestSetParallelAfterStartPanics(t *testing.T) {
	mach := machine.NUMA16()
	p := workload.Tree().Scale(0.1, 0.1, 0.25)
	s := New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	if s.Parallel() != 0 {
		t.Fatalf("fresh simulator reports parallel=%d", s.Parallel())
	}
	s.SetParallel(8)
	if s.Parallel() != 8 {
		t.Fatalf("Parallel() = %d after SetParallel(8)", s.Parallel())
	}
	s.SetParallel(1) // back to serial is allowed before Run
	if s.Parallel() != 0 {
		t.Fatalf("Parallel() = %d after SetParallel(1)", s.Parallel())
	}
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("SetParallel after Run did not panic")
		}
	}()
	s.SetParallel(8)
}
