package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// coarseRecover implements the failure path of coarse-grain recovery
// (LRPD/SUDS): the end-of-section dependence test has failed, so the state
// reverts to the beginning of the entire speculative section and the loop
// re-executes serially. The time penalty is the serial re-execution (the
// sum of the tasks' execution times); the memory image afterwards is
// exactly the sequential outcome.
func (s *Simulator) coarseRecover(end event.Time) event.Time {
	s.squashEvents++
	s.tasksSquashed += s.commits

	// Serial re-execution of every task, on one processor.
	penalty := event.Time(s.execPerTask.Value() * float64(s.commits))
	newEnd := end + penalty
	for _, p := range s.procs {
		// Close each processor's books through the parallel section's end,
		// then extend them: processor 0 re-executes, the rest wait.
		p.account(end)
		if p.id == 0 {
			p.bd.Busy += penalty
		} else {
			p.bd.StallRecovery += penalty
		}
		p.lastTime = newEnd
	}

	// The re-execution produces the sequential memory image.
	last := make(map[memsys.LineAddr]ids.TaskID)
	var buf []workload.Op
	for idx := 0; idx < s.total; idx++ {
		buf, _ = s.gen.Task(idx, buf[:0])
		for _, op := range buf {
			if op.Kind == workload.OpWrite {
				last[op.Addr.Line()] = ids.TaskID(idx + 1)
			}
		}
	}
	for line, producer := range last {
		s.mem.Restore(line, producer)
	}
	return newEnd
}
