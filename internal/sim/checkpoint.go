package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/coherence"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/interconnect"
	"repro/internal/iofault"
	"repro/internal/memsys"
	"repro/internal/stats"
)

// This file implements simulator checkpoint/restore: a Checkpoint captures
// the complete logical state of a run at a task-commit boundary, and Restore
// reinstates it into a freshly constructed Simulator so that resuming
// produces a Result identical to the uninterrupted run, byte for byte.
//
// Why commit boundaries: commits are strictly serialized and the commit-done
// event is the only event besides per-processor continuations that ever
// enters the queue. At the end of finishCommit, therefore, the entire
// pending schedule is describable without serializing closures — it is at
// most one continuation per processor (p.scheduled marks it, p.contHandle
// names its (when, seq)) plus at most one commit event (s.committing marks
// it). Restore rebuilds the closures against the new Simulator and re-
// inserts each occurrence with its original (when, seq); since queue firing
// order is a total order on exactly that pair, the restored run replays the
// identical event sequence.
//
// Physical layout (event free lists, directory arenas, marks rings, pooled
// buffers) is deliberately not checkpointed: it is invisible to the protocol
// and the timing model, and rebuilding it fresh keeps the format small and
// the restore validatable.

// TaskCheckpoint is one in-flight task's state.
type TaskCheckpoint struct {
	ID           ids.TaskID
	Index        int
	Proc         ids.ProcID
	State        uint8
	PC           int
	StartedAt    event.Time
	FinishedAt   event.Time
	WordsWritten int
	PrivWords    int
	Consumed     []ConsumedCheckpoint
	CommitStart  event.Time
	SquashCount  int
}

// ConsumedCheckpoint is one recorded communication-region read.
type ConsumedCheckpoint struct {
	Addr     memsys.Addr
	Producer ids.TaskID
}

// ProcCheckpoint is one processor's state.
type ProcCheckpoint struct {
	L1  memsys.CacheState
	L2  memsys.CacheState
	Ovf memsys.OverflowState
	MHB memsys.MHBState

	Cur   ids.TaskID // ids.None when idle
	Local []ids.TaskID
	Redo  []ids.TaskID

	BD           stats.Breakdown
	LastTime     event.Time
	Wait         uint8
	BlockedUntil event.Time

	// Scheduled records a pending continuation occurrence at (ContWhen,
	// ContSeq); restore re-inserts it with the same coordinates.
	Scheduled bool
	ContWhen  event.Time
	ContSeq   uint64
}

// WaiterCheckpoint is the ordered list of processors stalled on one task's
// version (MultiT&SV write stalls). Order matters: wakes assign fresh event
// sequence numbers in list order.
type WaiterCheckpoint struct {
	Task  ids.TaskID
	Procs []ids.ProcID
}

// QueueCheckpoint is the event queue's clock and counters.
type QueueCheckpoint struct {
	Now         event.Time
	NextSq      uint64
	Fired       uint64
	Compactions uint64
}

// InvariantCheckpoint is the runtime protocol checker's accumulated state.
type InvariantCheckpoint struct {
	Samples []InvariantViolation
	Total   int
	Rules   []RuleCount
}

// RuleCount is one rule's violation count.
type RuleCount struct {
	Rule  string
	Count int
}

// Checkpoint is the complete state of a simulation at a commit boundary.
// All fields are exported for the gob codec; treat the struct as opaque.
type Checkpoint struct {
	// Identity, validated by Restore: a checkpoint only restores into a
	// simulator built for the same machine, scheme, workload and length.
	Machine string
	Scheme  string
	App     string
	Total   int

	Queue QueueCheckpoint

	// CommitPending records the commit-done occurrence when a commit is in
	// flight (Committing != None).
	Committing    ids.TaskID
	CommitPending bool
	CommitWhen    event.Time
	CommitSeq     uint64

	Tasks    []TaskCheckpoint // sorted by ID
	TaskProc []ids.ProcID
	Next     int

	TokenFreeAt  event.Time
	LastCommitBy ids.ProcID
	Waiters      []WaiterCheckpoint // sorted by task

	OrderHead ids.TaskID
	OrderLast ids.TaskID

	L3 []memsys.LineAddr // CMP touched-lines filter, sorted; nil on NUMA

	OracleChecks     int
	OracleViolations int

	LiveSpec      int
	SpecSampler   stats.SamplerState
	ExecPerTask   stats.MeanState
	CommitPerTask stats.MeanState
	FootBytes     stats.MeanState
	FootPrivFrac  stats.MeanState
	SquashEvents  int
	TasksSquashed int
	Commits       int

	Tracing  bool
	TraceLog []TraceEvent

	LineGranularity bool
	ORBCommit       bool
	ForceMTID       bool

	CoarseViolated bool
	VCLMerges      uint64
	FMMWritebacks  uint64

	Procs []ProcCheckpoint

	Mem memsys.MemoryState
	Dir coherence.DirectoryState
	Net interconnect.NetworkState

	Invariants *InvariantCheckpoint

	// Injector is the opaque fault-plan state when the run has an injector
	// that supports checkpointing (see InjectorCheckpointer).
	HasInjector bool
	Injector    []byte
}

// InjectorCheckpointer is optionally implemented by fault injectors whose
// decision stream must survive a checkpoint (internal/fault.Plan does). A
// run with an injector that does not implement it cannot be checkpointed.
type InjectorCheckpointer interface {
	InjectorState() ([]byte, error)
	RestoreInjectorState([]byte) error
}

// SetCheckpointSink installs the consumer of checkpoints the simulator
// produces (auto-checkpoints and the interrupt checkpoint). The sink runs on
// the simulation's goroutine, at a commit boundary, so it may safely call
// ProgressReport. With no sink installed the run never snapshots and is
// byte-identical to a simulator built without checkpoint support.
func (s *Simulator) SetCheckpointSink(sink func(*Checkpoint)) { s.ckptSink = sink }

// SetAutoCheckpoint makes the simulator hand a checkpoint to the sink every
// `every` commits (0 disables; interrupts still checkpoint).
func (s *Simulator) SetAutoCheckpoint(every int) { s.ckptEvery = every }

// Interrupt requests a cooperative stop: at the next commit boundary the
// simulator snapshots (delivering the checkpoint to the sink, if any), halts
// the event queue, and Run returns a zero Result with Halted() true. Safe to
// call from another goroutine — this is the graceful-shutdown and watchdog-
// escalation entry point.
func (s *Simulator) Interrupt() { s.interrupt.Store(true) }

// Halted reports whether the run was stopped by Interrupt before finishing.
func (s *Simulator) Halted() bool { return s.halted }

// afterCommit runs at the very end of every mid-section finishCommit: the
// only point where the pending event set is fully described by the
// simulator's own bookkeeping. It services interrupts and auto-checkpoints.
func (s *Simulator) afterCommit() {
	if s.interrupt.Load() {
		if s.ckptSink != nil {
			s.ckptSink(s.snapshot())
		}
		s.halted = true
		s.qHalt()
		return
	}
	if s.ckptSink != nil && s.ckptEvery > 0 && s.commits%s.ckptEvery == 0 {
		s.ckptSink(s.snapshot())
	}
}

// snapshot captures the complete simulator state. Only valid at a commit
// boundary (afterCommit).
func (s *Simulator) snapshot() *Checkpoint {
	ck := &Checkpoint{
		Machine: s.cfg.Name,
		Scheme:  s.scheme.String(),
		App:     s.gen.Name(),
		Total:   s.total,

		Queue: QueueCheckpoint{
			Now:    s.qNow(),
			NextSq: s.qNextSeq(),
			Fired:  s.qFired(),

			Compactions: s.qCompactions(),
		},

		TaskProc: append([]ids.ProcID(nil), s.taskProc...),
		Next:     s.next,

		TokenFreeAt:  s.tokenFreeAt,
		LastCommitBy: s.lastCommitBy,

		OrderHead: s.order.Head(),
		OrderLast: s.order.Last(),

		OracleChecks:     s.oracleChecks,
		OracleViolations: s.oracleViolations,

		LiveSpec:      s.liveSpec,
		SpecSampler:   s.specSampler.State(),
		ExecPerTask:   s.execPerTask.State(),
		CommitPerTask: s.commitPerTask.State(),
		FootBytes:     s.footBytes.State(),
		FootPrivFrac:  s.footPrivFrac.State(),
		SquashEvents:  s.squashEvents,
		TasksSquashed: s.tasksSquashed,
		Commits:       s.commits,

		Tracing: s.tracing,

		LineGranularity: s.lineGranularity,
		ORBCommit:       s.orbCommit,
		ForceMTID:       s.forceMTID,

		CoarseViolated: s.coarseViolated,
		VCLMerges:      s.vclMerges,
		FMMWritebacks:  s.fmmWritebacks,

		Mem: s.mem.State(),
		Dir: s.dir.State(),
		Net: s.net.State(),
	}
	if s.tracing {
		ck.TraceLog = append([]TraceEvent(nil), s.traceLog...)
	}
	if s.committing != nil {
		ck.Committing = s.committing.id
		ck.CommitPending = true
		ck.CommitWhen = s.commitHandle.When()
		ck.CommitSeq = s.commitHandle.Seq()
	}
	for _, t := range s.tasks {
		tc := TaskCheckpoint{
			ID: t.id, Index: t.index, Proc: t.proc, State: uint8(t.state),
			PC: t.pc, StartedAt: t.startedAt, FinishedAt: t.finishedAt,
			WordsWritten: t.wordsWritten, PrivWords: t.privWords,
			CommitStart: t.commitStart, SquashCount: t.squashCount,
		}
		for _, cr := range t.consumed {
			tc.Consumed = append(tc.Consumed, ConsumedCheckpoint{Addr: cr.addr, Producer: cr.producer})
		}
		ck.Tasks = append(ck.Tasks, tc)
	}
	sort.Slice(ck.Tasks, func(i, j int) bool { return ck.Tasks[i].ID < ck.Tasks[j].ID })
	for taskID, procs := range s.waiters {
		w := WaiterCheckpoint{Task: taskID}
		for _, p := range procs {
			w.Procs = append(w.Procs, p.id)
		}
		ck.Waiters = append(ck.Waiters, w)
	}
	sort.Slice(ck.Waiters, func(i, j int) bool { return ck.Waiters[i].Task < ck.Waiters[j].Task })
	if s.l3 != nil {
		ck.L3 = make([]memsys.LineAddr, 0, len(s.l3))
		for line := range s.l3 {
			ck.L3 = append(ck.L3, line)
		}
		sort.Slice(ck.L3, func(i, j int) bool { return ck.L3[i] < ck.L3[j] })
	}
	for _, p := range s.procs {
		pc := ProcCheckpoint{
			L1: p.l1.State(), L2: p.l2.State(),
			Ovf: p.ovf.State(), MHB: p.mhb.State(),
			Cur: ids.None, BD: p.bd, LastTime: p.lastTime,
			Wait: uint8(p.wait), BlockedUntil: p.blockedUntil,
		}
		if p.cur != nil {
			pc.Cur = p.cur.id
		}
		for _, t := range p.local {
			pc.Local = append(pc.Local, t.id)
		}
		for _, t := range p.redo {
			pc.Redo = append(pc.Redo, t.id)
		}
		if p.scheduled {
			pc.Scheduled = true
			pc.ContWhen = p.contHandle.When()
			pc.ContSeq = p.contHandle.Seq()
		}
		ck.Procs = append(ck.Procs, pc)
	}
	if s.inv != nil {
		inv := &InvariantCheckpoint{
			Samples: append([]InvariantViolation(nil), s.inv.samples...),
			Total:   s.inv.total,
		}
		for rule, n := range s.inv.byRule {
			inv.Rules = append(inv.Rules, RuleCount{Rule: rule, Count: n})
		}
		sort.Slice(inv.Rules, func(i, j int) bool { return inv.Rules[i].Rule < inv.Rules[j].Rule })
		ck.Invariants = inv
	}
	if s.inject != nil {
		ck.HasInjector = true
		ic, ok := s.inject.(InjectorCheckpointer)
		if !ok {
			panic("sim: checkpointing a run whose fault injector does not implement InjectorCheckpointer")
		}
		st, err := ic.InjectorState()
		if err != nil {
			panic(fmt.Sprintf("sim: serializing injector state: %v", err))
		}
		ck.Injector = st
	}
	return ck
}

// Restore reinstates a checkpoint into s, which must be freshly built by New
// (or NewSequential) with the same machine, scheme and workload, and not yet
// run. Ablation knobs, tracing and the invariant checker are restored from
// the checkpoint; a fault injector, if the original run had one, must be
// installed with InjectFaults before calling Restore (its decision stream is
// then restored too). After Restore, Run continues the section to completion
// and returns a Result identical to the uninterrupted run's.
func (s *Simulator) Restore(ck *Checkpoint) error {
	switch {
	case s.started:
		return errors.New("sim: Restore on a simulator that has already run")
	case ck.Machine != s.cfg.Name:
		return fmt.Errorf("sim: checkpoint machine %q does not match %q", ck.Machine, s.cfg.Name)
	case ck.Scheme != s.scheme.String():
		return fmt.Errorf("sim: checkpoint scheme %q does not match %q", ck.Scheme, s.scheme)
	case ck.App != s.gen.Name():
		return fmt.Errorf("sim: checkpoint workload %q does not match %q", ck.App, s.gen.Name())
	case ck.Total != s.total:
		return fmt.Errorf("sim: checkpoint has %d tasks, workload has %d", ck.Total, s.total)
	case len(ck.Procs) != len(s.procs):
		return fmt.Errorf("sim: checkpoint has %d processors, machine has %d", len(ck.Procs), len(s.procs))
	case len(ck.TaskProc) != len(s.taskProc):
		return fmt.Errorf("sim: checkpoint task map covers %d tasks, workload has %d", len(ck.TaskProc), len(s.taskProc))
	case ck.HasInjector && s.inject == nil:
		return errors.New("sim: checkpoint was taken with fault injection; call InjectFaults before Restore")
	case !ck.HasInjector && s.inject != nil:
		return errors.New("sim: checkpoint was taken without fault injection but an injector is installed")
	}
	if ck.HasInjector {
		ic, ok := s.inject.(InjectorCheckpointer)
		if !ok {
			return errors.New("sim: installed fault injector does not implement InjectorCheckpointer")
		}
		if err := ic.RestoreInjectorState(ck.Injector); err != nil {
			return fmt.Errorf("sim: restoring injector state: %w", err)
		}
	}

	s.qRestoreClock(ck.Queue.Now, ck.Queue.NextSq, ck.Queue.Fired, ck.Queue.Compactions)

	s.lineGranularity = ck.LineGranularity
	s.orbCommit = ck.ORBCommit
	s.forceMTID = ck.ForceMTID
	s.tracing = ck.Tracing
	s.traceLog = append([]TraceEvent(nil), ck.TraceLog...)

	s.mem.RestoreState(ck.Mem)
	s.dir.RestoreState(ck.Dir)
	if err := s.net.RestoreState(ck.Net); err != nil {
		return err
	}
	if len(ck.L3) > 0 && s.l3 == nil {
		return errors.New("sim: checkpoint has L3 filter state but the machine has no L3")
	}
	for _, line := range ck.L3 {
		s.l3[line] = true
	}

	s.tasks = make(map[ids.TaskID]*task, len(ck.Tasks))
	for _, tc := range ck.Tasks {
		t := &task{
			id: tc.ID, index: tc.Index, proc: tc.Proc, state: taskState(tc.State),
			pc: tc.PC, startedAt: tc.StartedAt, finishedAt: tc.FinishedAt,
			wordsWritten: tc.WordsWritten, privWords: tc.PrivWords,
			commitStart: tc.CommitStart, squashCount: tc.SquashCount,
		}
		for _, cr := range tc.Consumed {
			t.consumed = append(t.consumed, consumedRead{addr: cr.Addr, producer: cr.Producer})
		}
		s.tasks[t.id] = t
	}
	copy(s.taskProc, ck.TaskProc)
	s.next = ck.Next
	s.order = ids.RestoreCommitOrder(ck.OrderHead, ck.OrderLast)

	s.tokenFreeAt = ck.TokenFreeAt
	s.lastCommitBy = ck.LastCommitBy
	s.waiters = make(map[ids.TaskID][]*processor, len(ck.Waiters))
	for _, w := range ck.Waiters {
		var procs []*processor
		for _, pid := range w.Procs {
			procs = append(procs, s.procs[pid])
		}
		s.waiters[w.Task] = procs
	}

	s.oracleChecks, s.oracleViolations = ck.OracleChecks, ck.OracleViolations
	s.liveSpec = ck.LiveSpec
	s.specSampler.RestoreState(ck.SpecSampler)
	s.execPerTask.RestoreState(ck.ExecPerTask)
	s.commitPerTask.RestoreState(ck.CommitPerTask)
	s.footBytes.RestoreState(ck.FootBytes)
	s.footPrivFrac.RestoreState(ck.FootPrivFrac)
	s.squashEvents = ck.SquashEvents
	s.tasksSquashed = ck.TasksSquashed
	s.commits = ck.Commits
	s.coarseViolated = ck.CoarseViolated
	s.vclMerges = ck.VCLMerges
	s.fmmWritebacks = ck.FMMWritebacks

	for i, pc := range ck.Procs {
		p := s.procs[i]
		if err := p.l1.RestoreState(pc.L1); err != nil {
			return err
		}
		if err := p.l2.RestoreState(pc.L2); err != nil {
			return err
		}
		p.ovf.RestoreState(pc.Ovf)
		p.mhb.RestoreState(pc.MHB)
		p.cur = nil
		if pc.Cur != ids.None {
			p.cur = s.tasks[pc.Cur]
			if p.cur == nil {
				return fmt.Errorf("sim: processor %d's current task %v missing from checkpoint", i, pc.Cur)
			}
		}
		p.local = nil
		for _, id := range pc.Local {
			t := s.tasks[id]
			if t == nil {
				return fmt.Errorf("sim: processor %d's local task %v missing from checkpoint", i, id)
			}
			p.local = append(p.local, t)
		}
		p.redo = nil
		for _, id := range pc.Redo {
			t := s.tasks[id]
			if t == nil {
				return fmt.Errorf("sim: processor %d's redo task %v missing from checkpoint", i, id)
			}
			p.redo = append(p.redo, t)
		}
		p.bd = pc.BD
		p.lastTime = pc.LastTime
		p.wait = waitKind(pc.Wait)
		p.blockedUntil = pc.BlockedUntil
		if pc.Scheduled {
			p.scheduled = true
			p.contHandle = s.qScheduleAt(p.id, pc.ContWhen, pc.ContSeq, p.cont)
		}
		// Re-generate the running task's operation stream: Workload.Task is
		// deterministic, so the regenerated ops equal the checkpointed run's.
		if p.cur != nil && p.cur.state == taskRunning {
			p.cur.ops, _ = s.gen.Task(p.cur.index, nil)
			p.opBuf = p.cur.ops[:0]
		}
	}

	if ck.CommitPending {
		t := s.tasks[ck.Committing]
		if t == nil {
			return fmt.Errorf("sim: committing task %v missing from checkpoint", ck.Committing)
		}
		s.committing = t
		if s.commitDone == nil {
			s.commitDone = func(done event.Time) { s.finishCommit(s.committing, done) }
		}
		s.commitHandle = s.qScheduleAt(t.proc, ck.CommitWhen, ck.CommitSeq, s.commitDone)
	}

	s.inv = nil
	if ck.Invariants != nil {
		s.inv = &invariantChecker{
			samples: append([]InvariantViolation(nil), ck.Invariants.Samples...),
			total:   ck.Invariants.Total,
			byRule:  make(map[string]int, len(ck.Invariants.Rules)),
		}
		for _, rc := range ck.Invariants.Rules {
			s.inv.byRule[rc.Rule] = rc.Count
		}
	}

	s.started = true
	return nil
}

// ProcProgress is one processor's slice of a ProgressReport.
type ProcProgress struct {
	Proc         int    `json:"proc"`
	Task         string `json:"task,omitempty"` // current task, "" when idle
	Wait         string `json:"wait"`
	LocalTasks   int    `json:"local_tasks"`
	RedoTasks    int    `json:"redo_tasks"`
	BlockedUntil uint64 `json:"blocked_until,omitempty"`
}

// ProgressReport is a human-readable snapshot of where a run is — the
// post-mortem attached to a watchdog-killed job. It must be taken from the
// simulation's goroutine (e.g. inside the checkpoint sink).
type ProgressReport struct {
	Machine    string         `json:"machine"`
	Scheme     string         `json:"scheme"`
	App        string         `json:"app"`
	Cycle      uint64         `json:"cycle"`
	QueueDepth int            `json:"queue_depth"`
	Events     uint64         `json:"events_fired"`
	Commits    int            `json:"commits"`
	Tasks      int            `json:"tasks"`
	LiveSpec   int            `json:"live_speculative"`
	Committing string         `json:"committing,omitempty"`
	Procs      []ProcProgress `json:"procs"`
}

// ProgressReport captures the run's current position.
func (s *Simulator) ProgressReport() ProgressReport {
	r := ProgressReport{
		Machine:    s.cfg.Name,
		Scheme:     s.scheme.String(),
		App:        s.gen.Name(),
		Cycle:      uint64(s.qNow()),
		QueueDepth: s.qLen(),
		Events:     s.qFired(),
		Commits:    s.commits,
		Tasks:      s.total,
		LiveSpec:   s.liveSpec,
	}
	if s.committing != nil {
		r.Committing = s.committing.id.String()
	}
	for _, p := range s.procs {
		pp := ProcProgress{
			Proc: int(p.id), Wait: p.wait.String(),
			LocalTasks: len(p.local), RedoTasks: len(p.redo),
			BlockedUntil: uint64(p.blockedUntil),
		}
		if p.cur != nil {
			pp.Task = p.cur.id.String()
		}
		r.Procs = append(r.Procs, pp)
	}
	return r
}

// Checkpoint file format: a fixed header followed by a gob payload.
//
//	offset  size  field
//	0       7     magic "TLSCKPT"
//	7       1     format version (1)
//	8       8     payload length, little-endian
//	16      4     CRC-32C (Castagnoli) of the payload, little-endian
//	20      n     gob-encoded Checkpoint
//
// The length and checksum make torn writes (kill -9 mid-write) and bit rot
// detectable before the gob decoder sees the bytes.

const checkpointMagic = "TLSCKPT"

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// Typed checkpoint codec failures, distinguishable with errors.Is.
var (
	ErrCheckpointTruncated = errors.New("checkpoint truncated")
	ErrCheckpointCorrupt   = errors.New("checkpoint corrupt")
	ErrCheckpointVersion   = errors.New("unsupported checkpoint version")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeCheckpoint writes ck to w in the versioned, checksummed format.
func EncodeCheckpoint(w io.Writer, ck *Checkpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	header := make([]byte, 20)
	copy(header, checkpointMagic)
	header[7] = CheckpointVersion
	binary.LittleEndian.PutUint64(header[8:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint,
// distinguishing truncation, corruption and version mismatches.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	header := make([]byte, 20)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCheckpointTruncated, err)
	}
	if string(header[:7]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	if v := header[7]; v != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrCheckpointVersion, v, CheckpointVersion)
	}
	n := binary.LittleEndian.Uint64(header[8:])
	want := binary.LittleEndian.Uint32(header[16:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCheckpointTruncated, err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCheckpointCorrupt, got, want)
	}
	ck := new(Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(ck); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCheckpointCorrupt, err)
	}
	return ck, nil
}

// WriteCheckpointFile atomically persists ck at path: write to a temp file
// in the same directory, fsync it, rename over path, fsync the directory. A
// crash leaves either the old file or the new one, never a torn mix.
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	return WriteCheckpointFileFS(iofault.Real, path, ck)
}

// WriteCheckpointFileFS is WriteCheckpointFile writing through an explicit
// filesystem seam (fault drills and crash-consistency tests inject one; nil
// means the real OS). A failed directory sync is an error: until it
// succeeds the rename is not durable, so the checkpoint must not be
// reported (or journaled) as such.
func WriteCheckpointFileFS(fsys iofault.FS, path string, ck *Checkpoint) error {
	if fsys == nil {
		fsys = iofault.Real
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return err
	}
	if err := EncodeCheckpoint(tmp, ck); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint %s: directory sync: %w", path, err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint persisted by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return ck, nil
}
