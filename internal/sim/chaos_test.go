package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestChaosInvariants runs randomized workloads through every scheme on
// both machines and checks every invariant the simulator promises:
//
//   - every task commits exactly once;
//   - per-processor breakdowns sum to the wall clock;
//   - committed cross-task reads observed the sequential-order version;
//   - the runtime protocol checker saw no violation at any commit, squash,
//     or merge event;
//   - the final memory image equals sequential execution's;
//   - identical inputs give identical outputs.
//
// This is the repository's fuzzing layer: the fixed app profiles exercise
// the paper's corners, the fuzz profiles everything in between.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}
	r := rng.New(0xc4a05)
	machines := []*machine.Config{machine.NUMA16(), machine.CMP8()}
	schemes := append(core.AllSchemes(), core.CoarseRecovery)
	const rounds = 12
	for round := 0; round < rounds; round++ {
		p := workload.FuzzProfile(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("round %d: generated invalid profile: %v", round, err)
		}
		seed := r.Uint64()
		mach := machines[round%len(machines)]
		for _, sch := range schemes {
			gen := workload.NewGenerator(p, seed)
			s := New(mach, sch, gen)
			s.EnableInvariantChecks()
			res := s.Run()

			if res.Commits != res.Tasks {
				t.Errorf("round %d %s/%v: %d of %d tasks committed",
					round, mach.Name, sch, res.Commits, res.Tasks)
			}
			for i, bd := range res.PerProc {
				if bd.Total() != res.ExecCycles {
					t.Errorf("round %d %s/%v proc %d: breakdown %d != wall clock %d",
						round, mach.Name, sch, i, bd.Total(), res.ExecCycles)
				}
			}
			if !sch.Coarse && res.OracleViolations != 0 {
				t.Errorf("round %d %s/%v: %d/%d committed reads wrong",
					round, mach.Name, sch, res.OracleViolations, res.OracleChecks)
			}
			if n := s.InvariantViolationCount(); n != 0 {
				t.Errorf("round %d %s/%v: %d invariant violations: %s",
					round, mach.Name, sch, n, s.InvariantSummary())
				for _, v := range s.InvariantViolations()[:min(3, len(s.InvariantViolations()))] {
					t.Logf("  %s", v)
				}
			}
			if checked, wrong := s.VerifyFinalMemory(); wrong != 0 || checked == 0 {
				t.Errorf("round %d %s/%v: final memory %d/%d lines wrong",
					round, mach.Name, sch, wrong, checked)
			}
			// Determinism: a replay must be bit-identical.
			replay := Run(mach, sch, p, seed)
			if replay.ExecCycles != res.ExecCycles || replay.Agg != res.Agg {
				t.Errorf("round %d %s/%v: replay diverged (%d vs %d cycles)",
					round, mach.Name, sch, replay.ExecCycles, res.ExecCycles)
			}
		}
	}
}
