package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/workload"
)

// randomProfile derives a small random-but-valid profile from a seed,
// spanning the whole parameter space the generators accept: dense and
// sparse writes, any privatization weight, early or late write phases,
// balanced through heavy-tailed task lengths, and dependence intensities
// from none to squash storms.
func randomProfile(r *rng.Source) workload.Profile {
	p := workload.Profile{
		Name:           "chaos",
		Tasks:          20 + r.Intn(60),
		InstrPerTask:   500 + r.Intn(4000),
		FootprintBytes: 64 + r.Intn(2048),
		WriteDensity:   1 + r.Intn(16),
		PrivFrac:       r.Float64(),
		WritePhase:     0.1 + 0.9*r.Float64(),
		ImbalanceCV:    r.Float64() * 1.5,
		ReadsPerWrite:  r.Float64() * 3,
		SharedReadFrac: r.Float64(),
		HotReadWords:   256 << r.Intn(5),
		DepProb:        r.Float64() * 0.5,
		DepReach:       1 + r.Intn(16),
		PackedChannels: r.Bool(0.3),
	}
	if r.Bool(0.3) {
		p.HeavyTailFrac = 0.02 + r.Float64()*0.1
		p.HeavyTailMax = 10 + r.Float64()*80
	}
	if r.Bool(0.4) {
		p.TasksPerInvoc = 4 + r.Intn(16)
	}
	return p
}

// TestChaosInvariants runs randomized workloads through every scheme on
// both machines and checks every invariant the simulator promises:
//
//   - every task commits exactly once;
//   - per-processor breakdowns sum to the wall clock;
//   - committed cross-task reads observed the sequential-order version;
//   - the final memory image equals sequential execution's;
//   - identical inputs give identical outputs.
//
// This is the repository's fuzzing layer: the fixed app profiles exercise
// the paper's corners, the chaos profiles everything in between.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}
	r := rng.New(0xc4a05)
	machines := []*machine.Config{machine.NUMA16(), machine.CMP8()}
	schemes := append(core.AllSchemes(), core.CoarseRecovery)
	const rounds = 12
	for round := 0; round < rounds; round++ {
		p := randomProfile(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("round %d: generated invalid profile: %v", round, err)
		}
		seed := r.Uint64()
		mach := machines[round%len(machines)]
		for _, sch := range schemes {
			gen := workload.NewGenerator(p, seed)
			s := New(mach, sch, gen)
			res := s.Run()

			if res.Commits != res.Tasks {
				t.Errorf("round %d %s/%v: %d of %d tasks committed",
					round, mach.Name, sch, res.Commits, res.Tasks)
			}
			for i, bd := range res.PerProc {
				if bd.Total() != res.ExecCycles {
					t.Errorf("round %d %s/%v proc %d: breakdown %d != wall clock %d",
						round, mach.Name, sch, i, bd.Total(), res.ExecCycles)
				}
			}
			if !sch.Coarse && res.OracleViolations != 0 {
				t.Errorf("round %d %s/%v: %d/%d committed reads wrong",
					round, mach.Name, sch, res.OracleViolations, res.OracleChecks)
			}
			if checked, wrong := s.VerifyFinalMemory(); wrong != 0 || checked == 0 {
				t.Errorf("round %d %s/%v: final memory %d/%d lines wrong",
					round, mach.Name, sch, wrong, checked)
			}
			// Determinism: a replay must be bit-identical.
			replay := Run(mach, sch, p, seed)
			if replay.ExecCycles != res.ExecCycles || replay.Agg != res.Agg {
				t.Errorf("round %d %s/%v: replay diverged (%d vs %d cycles)",
					round, mach.Name, sch, replay.ExecCycles, res.ExecCycles)
			}
		}
	}
}
