package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/workload"
)

// waitKind says what a processor is waiting for while it has no scheduled
// continuation; the gap until its next event is attributed to the matching
// stall category.
type waitKind uint8

const (
	waitNone     waitKind = iota
	waitToken             // SingleT: finished task awaiting the commit token
	waitVersion           // MultiT&SV: blocked creating a second local version
	waitCommit            // SingleT: the processor itself performs the merge
	waitRecovery          // squash recovery in progress
	waitIdle              // no tasks left to run
)

func (w waitKind) String() string {
	switch w {
	case waitNone:
		return "running"
	case waitToken:
		return "token"
	case waitVersion:
		return "version"
	case waitCommit:
		return "commit"
	case waitRecovery:
		return "recovery"
	case waitIdle:
		return "idle"
	}
	return "unknown"
}

func (w waitKind) charge(bd *stats.Breakdown, dt event.Time) {
	switch w {
	case waitToken, waitVersion:
		bd.StallTask += dt
	case waitCommit:
		bd.StallCommit += dt
	case waitRecovery:
		bd.StallRecovery += dt
	default:
		bd.StallIdle += dt
	}
}

// processor models one node: its private cache hierarchy, overflow area,
// undo log, and the task it is executing.
type processor struct {
	id  ids.ProcID
	l1  *memsys.Cache
	l2  *memsys.Cache
	ovf *memsys.Overflow
	mhb *memsys.MHB

	cur *task
	// local holds this processor's uncommitted tasks in ID order
	// (including cur). SingleT keeps at most one.
	local []*task
	// redo holds squashed local tasks awaiting re-execution, in ID order.
	redo []*task

	bd stats.Breakdown
	// lastTime is the local time through which bd is complete.
	lastTime event.Time
	wait     waitKind

	// blockedUntil delays execution during squash recovery.
	blockedUntil event.Time

	// scheduled is true while a continuation event is pending; cont is the
	// processor's single continuation closure, built once in New so the
	// per-event schedule path does not allocate. contHandle names the pending
	// occurrence so a checkpoint can record its (when, seq).
	scheduled  bool
	cont       func(now event.Time)
	contHandle event.Handle

	opBuf []workload.Op
}

// removeLocal drops t from the local task list.
func (p *processor) removeLocal(t *task) {
	for i, lt := range p.local {
		if lt == t {
			p.local = append(p.local[:i], p.local[i+1:]...)
			return
		}
	}
}

// pushRedo inserts t into the redo queue keeping ID order.
func (p *processor) pushRedo(t *task) {
	for _, rt := range p.redo {
		if rt == t {
			return
		}
	}
	i := len(p.redo)
	for i > 0 && p.redo[i-1].id.After(t.id) {
		i--
	}
	p.redo = append(p.redo, nil)
	copy(p.redo[i+1:], p.redo[i:])
	p.redo[i] = t
}

// popRedo removes and returns the earliest squashed task, or nil.
func (p *processor) popRedo() *task {
	if len(p.redo) == 0 {
		return nil
	}
	t := p.redo[0]
	p.redo = append(p.redo[:0], p.redo[1:]...)
	return t
}

// account closes the books through now, attributing any gap to the current
// wait kind.
func (p *processor) account(now event.Time) {
	if now > p.lastTime {
		p.wait.charge(&p.bd, now-p.lastTime)
		p.lastTime = now
	}
}

// spend advances local time by dt, attributing it to the given category.
func (p *processor) spend(dt event.Time, to *event.Time) {
	*to += dt
	p.lastTime += dt
}
