package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// obsTestProfile is the squash-heavy golden workload: Euler with a high
// dependence probability exercises every attribution path.
func obsTestProfile() workload.Profile {
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	p.DepProb = 0.3
	return p
}

// TestObserverEffectFreedom is the observer-effect regression lock: for a
// representative app × scheme grid, a run with the full observability layer
// enabled (registry, component counters, gauge sampler) must produce a
// Result identical to a run with observability disabled. Instrumentation
// must never perturb simulation.
func TestObserverEffectFreedom(t *testing.T) {
	apps := []workload.Profile{obsTestProfile(), workload.StandardScale(workload.P3m()), workload.StandardScale(workload.Tree())}
	schemes := []core.Scheme{core.SingleTEager, core.MultiTMVLazy, core.MultiTMVFMM}
	for _, prof := range apps {
		for _, scheme := range schemes {
			baseSim := New(machine.CMP8(), scheme, workload.NewGenerator(prof, 99))
			baseSim.EnableTrace()
			base := baseSim.Run()

			reg := obs.NewRegistry()
			obsSim := New(machine.CMP8(), scheme, workload.NewGenerator(prof, 99))
			obsSim.EnableTrace()
			obsSim.Observe(obs.Config{Registry: reg, SamplePeriod: 500})
			got := obsSim.Run()

			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s/%v: observed run diverged from unobserved run", prof.Name, scheme)
			}
			// Cross-validate the registry against the Result it observed.
			if c := reg.CounterValue("sim_commits"); c != uint64(got.Commits) {
				t.Errorf("%s/%v: obs commits %d, result %d", prof.Name, scheme, c, got.Commits)
			}
			if c := reg.CounterValue("sim_tasks_squashed"); c != uint64(got.TasksSquashed) {
				t.Errorf("%s/%v: obs squashed %d, result %d", prof.Name, scheme, c, got.TasksSquashed)
			}
			if c := reg.CounterValue("dir_violations"); c != got.Violations {
				t.Errorf("%s/%v: obs violations %d, result %d", prof.Name, scheme, c, got.Violations)
			}
			if c := reg.CounterValue("mem_writebacks"); c != got.MemWritebacks {
				t.Errorf("%s/%v: obs writebacks %d, result %d", prof.Name, scheme, c, got.MemWritebacks)
			}
			series := obsSim.Sampled()
			if len(series.Samples) == 0 {
				t.Fatalf("%s/%v: sampler recorded nothing", prof.Name, scheme)
			}
			last := series.Samples[len(series.Samples)-1]
			if last.Cycle != uint64(got.ExecCycles) {
				t.Errorf("%s/%v: final sample at %d, want end time %d", prof.Name, scheme, last.Cycle, got.ExecCycles)
			}
			for i := 1; i < len(series.Samples); i++ {
				if series.Samples[i].Cycle < series.Samples[i-1].Cycle {
					t.Fatalf("%s/%v: sample cycles not monotone", prof.Name, scheme)
				}
			}
		}
	}
}

// TestObserverEffectFreedomParallel extends the observer-effect lock to the
// parallel simulation core: with obs AND tracing on, a -parallel {2,8} run
// must produce a Result identical to an obs-off serial run. The flight
// recorder is always-on in every one of these runs, so this also locks its
// zero-observer-effect property.
func TestObserverEffectFreedomParallel(t *testing.T) {
	apps := []workload.Profile{obsTestProfile(), workload.StandardScale(workload.Tree())}
	schemes := []core.Scheme{core.MultiTMVLazy, core.MultiTMVFMM}
	for _, prof := range apps {
		for _, scheme := range schemes {
			baseSim := New(machine.CMP8(), scheme, workload.NewGenerator(prof, 99))
			baseSim.EnableTrace()
			base := baseSim.Run()
			if len(baseSim.FlightRecorder()) == 0 {
				t.Fatal("flight recorder recorded nothing")
			}

			for _, workers := range []int{2, 8} {
				parSim := New(machine.CMP8(), scheme, workload.NewGenerator(prof, 99))
				parSim.SetParallel(workers)
				parSim.EnableTrace()
				parSim.Observe(obs.Config{Registry: obs.NewRegistry(), SamplePeriod: 500})
				got := parSim.Run()
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s/%v -parallel %d: observed+traced parallel run diverged from obs-off serial run",
						prof.Name, scheme, workers)
				}
				st := parSim.ParallelStats()
				if st.Windows == 0 {
					t.Errorf("%s/%v -parallel %d: no conservative windows counted", prof.Name, scheme, workers)
				}
				var laneTotal uint64
				for _, n := range st.LaneFired {
					laneTotal += n
				}
				if laneTotal != got.Events {
					t.Errorf("%s/%v -parallel %d: lanes fired %d events, result says %d",
						prof.Name, scheme, workers, laneTotal, got.Events)
				}
			}
		}
	}
}

// TestObserveIsDeterministic locks the registry and series themselves: two
// observed runs of the same inputs must agree metric for metric, row for row.
func TestObserveIsDeterministic(t *testing.T) {
	run := func() (*obs.Registry, obs.Series) {
		reg := obs.NewRegistry()
		s := New(machine.CMP8(), core.MultiTMVLazy, workload.NewGenerator(obsTestProfile(), 99))
		s.Observe(obs.Config{Registry: reg, SamplePeriod: 500})
		s.Run()
		return reg, s.Sampled()
	}
	regA, serA := run()
	regB, serB := run()
	namesA, namesB := regA.CounterNames(), regB.CounterNames()
	if !reflect.DeepEqual(namesA, namesB) {
		t.Fatalf("counter names differ: %v vs %v", namesA, namesB)
	}
	for _, n := range namesA {
		if regA.CounterValue(n) != regB.CounterValue(n) {
			t.Errorf("counter %s: %d vs %d", n, regA.CounterValue(n), regB.CounterValue(n))
		}
	}
	if !reflect.DeepEqual(serA, serB) {
		t.Error("sampled series differ between identical runs")
	}
}

// TestSquashAttribution checks the causal fields on TraceSquash events and
// the hotspot aggregation built from them.
func TestSquashAttribution(t *testing.T) {
	s := New(machine.NUMA16(), core.MultiTMVEager, workload.NewGenerator(obsTestProfile(), 99))
	s.EnableTrace()
	r := s.Run()
	if r.TasksSquashed == 0 {
		t.Fatal("workload produced no squashes; attribution untestable")
	}
	squashes := 0
	attributed := 0
	for _, e := range r.Trace {
		if e.Kind != TraceSquash {
			if e.Word != 0 || e.Writer != 0 || e.Wasted != 0 {
				t.Fatalf("non-squash event %v carries cause fields", e)
			}
			continue
		}
		squashes++
		if e.Writer != 0 {
			attributed++
			// Every victim is at or after the out-of-order RAW's reader,
			// which in turn is after the writer: the writer precedes every
			// victim and the task distance is positive.
			if !e.Writer.Before(e.Task) {
				t.Fatalf("squash of %v attributed to non-preceding writer %v", e.Task, e.Writer)
			}
			if e.Distance() <= 0 {
				t.Fatalf("squash of %v by %v has non-positive distance %d", e.Task, e.Writer, e.Distance())
			}
		}
	}
	if squashes != r.TasksSquashed {
		t.Fatalf("trace has %d squash events, result says %d", squashes, r.TasksSquashed)
	}
	if attributed == 0 {
		t.Fatal("no squash carries a writer attribution")
	}

	hot := SquashHotspots(r.Trace)
	if len(hot) == 0 {
		t.Fatal("no hotspots aggregated")
	}
	total := 0
	for _, h := range hot {
		total += h.Squashes
	}
	if total != squashes {
		t.Fatalf("hotspots cover %d squashes, trace has %d", total, squashes)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].WastedCycles > hot[i-1].WastedCycles {
			t.Fatal("hotspots not sorted by wasted cycles descending")
		}
	}
	if again := SquashHotspots(r.Trace); !reflect.DeepEqual(hot, again) {
		t.Fatal("hotspot aggregation is not deterministic")
	}
}
