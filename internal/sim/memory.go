package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// read performs a load by task t on processor p and returns its latency.
// The version to observe is resolved by the directory (the protocol
// guarantees a reader receives the correct predecessor version); the cache
// walk determines the cost.
func (s *Simulator) read(p *processor, t *task, addr memsys.Addr) event.Time {
	producer := s.dir.RecordRead(s.dirAddr(addr), t.id)
	if addr >= workload.CommBase {
		t.recordConsumed(addr, producer)
	}
	line := addr.Line()
	if _, ok := p.l1.Probe(line, producer); ok {
		return s.cfg.LatL1
	}
	if _, ok := p.l2.Probe(line, producer); ok {
		s.fillL1(p, line, producer)
		return s.cfg.LatL2
	}
	dt := s.fetch(p, line, producer)
	// fetch may have reinstated an overflowed own version; only cache a
	// clean copy when the version is not already resident.
	if _, ok := p.l2.Peek(line, producer); !ok {
		s.insertL2(p, line, producer, memsys.KindCopy)
	}
	s.fillL1(p, line, producer)
	return dt
}

// fetch computes the cost of obtaining version (line, producer) from
// wherever it lives: the producer's cache hierarchy, its overflow area, or
// memory. The requester's L1/L2 have already missed.
func (s *Simulator) fetch(p *processor, line memsys.LineAddr, producer ids.TaskID) event.Time {
	now := p.lastTime
	if producer == ids.None {
		return s.memLatency(p, line, now)
	}
	owner := s.procs[s.taskProc[int(producer)-1]]
	if owner == p {
		// Our own node produced it but the caches missed: the version was
		// displaced — to the overflow area (AMM) or to memory (FMM/merged).
		if w, ok := p.ovf.Retrieve(line, producer); ok {
			s.insertL2(p, line, producer, memsys.KindOwnVersion)
			if l, found := p.l2.Peek(line, producer); found {
				l.Written = w
			}
			return s.cfg.LatOverflow
		}
		return s.memLatency(p, line, now)
	}
	// Remote versions: serviced from the owner's cache (3-hop), its
	// overflow area, or memory.
	if _, ok := owner.l2.Peek(line, producer); ok {
		done := s.net.Transfer(p.id, uint64(line), now, s.cfg.LatCacheRemote+s.faultDelay())
		return done - now
	}
	if owner.ovf.Has(line, producer) {
		done := s.net.Transfer(p.id, uint64(line), now, s.cfg.LatCacheRemote+s.cfg.LatOverflow+s.faultDelay())
		return done - now
	}
	return s.memLatency(p, line, now)
}

// memLatency is the round-trip cost of reaching the memory (or L3) that
// backs a line, including bank/interface queuing.
func (s *Simulator) memLatency(p *processor, line memsys.LineAddr, now event.Time) event.Time {
	var lat event.Time
	if s.l3 != nil {
		// CMP: previously touched lines are L3 hits; cold lines come from
		// off-chip memory (and are then resident in the 16-MB L3).
		if s.l3[line] {
			lat = s.cfg.LatL3
		} else {
			lat = s.cfg.LatMemLocal
			s.l3[line] = true
		}
	} else {
		home := s.net.Home(uint64(line))
		lat = s.cfg.LatMemory(home == p.id)
	}
	done := s.net.Transfer(p.id, uint64(line), now, lat+s.faultDelay())
	return done - now
}

// fillL1 caches a read-only copy in the L1. L1 victims are always clean
// copies (all dirty/versioned state lives in the L2), so they drop
// silently.
func (s *Simulator) fillL1(p *processor, line memsys.LineAddr, producer ids.TaskID) {
	p.l1.Insert(line, producer, memsys.KindCopy)
}

// insertL2 places a line in the L2 and disposes of any displaced victim
// according to the merging policy in force:
//
//   - clean copies drop silently;
//   - speculative versions overflow to the per-processor area (AMM) or are
//     written back to memory under MTID (FMM);
//   - committed-unmerged versions are merged by the VCL (Lazy AMM) or
//     written back under MTID (FMM).
//
// Displacements are background traffic: they occupy the network/banks but
// do not stall the processor.
func (s *Simulator) insertL2(p *processor, line memsys.LineAddr, producer ids.TaskID, kind memsys.LineKind) {
	victim, dirty := p.l2.Insert(line, producer, kind)
	if !victim.Valid() {
		return
	}
	// Keep the L1 free of lines whose L2 backing is gone.
	p.l1.Invalidate(victim.Tag, victim.Producer)
	if !dirty {
		return
	}
	switch victim.Kind {
	case memsys.KindOwnVersion:
		if s.scheme.UsesOverflowArea() {
			p.ovf.Spill(victim.Tag, victim.Producer, victim.Written)
		} else {
			s.memWriteBack(victim.Tag, victim.Producer, p.lastTime)
			s.fmmWritebacks++
		}
		s.net.Transfer(p.id, uint64(victim.Tag), p.lastTime, 0)
	case memsys.KindCommitted:
		if s.scheme.UsesUndoLog() || s.forceMTID {
			// FMM (or the MTID ablation): the task-ID filter at memory
			// rejects stale write-backs; no combining needed.
			s.memWriteBack(victim.Tag, victim.Producer, p.lastTime)
		} else {
			// Lazy AMM / ORB: the version-combining logic merges in order.
			s.vclWriteBack(p, victim.Tag, victim.Producer)
		}
		s.vclMerges++
		s.net.Transfer(p.id, uint64(victim.Tag), p.lastTime, 0)
	}
}

// vclWriteBack emulates the version-combining logic: on displacement of a
// committed version, "the VCL identifies the latest committed version of
// the same variable still in the caches, writes it back to memory, and
// invalidates the other versions. This prevents the earlier committed
// versions from overwriting memory later." Commits are in task order, so
// every version of the line older than the latest committed one is itself
// committed and safe to drop.
func (s *Simulator) vclWriteBack(p *processor, tag memsys.LineAddr, producer ids.TaskID) {
	latest := producer
	for _, q := range s.procs {
		q.l2.ForVersionsOf(tag, func(l *memsys.Line) {
			if l.Kind == memsys.KindCommitted && l.Producer.After(latest) {
				latest = l.Producer
			}
		})
	}
	s.memWriteBack(tag, latest, p.lastTime)
	for _, q := range s.procs {
		// Collect-then-invalidate: the visitor must not invalidate mid-walk.
		stale := s.vclStale[:0]
		q.l2.ForVersionsOf(tag, func(l *memsys.Line) {
			if l.Kind == memsys.KindCommitted && l.Producer.Before(latest) {
				stale = append(stale, l.Producer)
			}
		})
		for _, old := range stale {
			q.l2.Invalidate(tag, old)
			q.l1.Invalidate(tag, old)
		}
		s.vclStale = stale[:0]
	}
	s.checkVCLMerge(tag, latest, p.lastTime)
}

// write performs a store by task t on processor p. It returns the latency
// and whether the processor must stall (MultiT&SV second-version rule; the
// operation is retried after the blocking task commits).
func (s *Simulator) write(p *processor, t *task, addr memsys.Addr) (event.Time, bool) {
	line := addr.Line()

	// Fast path: the task already owns a version of this line locally.
	if l, ok := p.l2.Probe(line, t.id); ok && l.Kind == memsys.KindOwnVersion {
		l.Written = l.Written.Set(addr.Offset())
		s.recordWrite(p, t, addr)
		var dt event.Time
		if _, hit := p.l1.Probe(line, t.id); hit {
			dt = s.cfg.LatL1
		} else {
			dt = s.cfg.LatL2
			s.fillL1(p, line, t.id)
		}
		return dt, false
	}

	// Version creation. MultiT&SV: stall if another uncommitted local task
	// already has a speculative version of this line.
	if s.scheme.StallsOnSecondLocalVersion() {
		if owner := p.l2.LocalSpecVersionOwner(line, t.id); owner != ids.None && !s.order.IsCommitted(owner) {
			s.waiters[owner] = append(s.waiters[owner], p)
			return 0, true
		}
		// A version might also sit in the overflow area.
		for _, lt := range p.local {
			if lt.id != t.id && lt.state != taskCommitted && p.ovf.Has(line, lt.id) {
				s.waiters[lt.id] = append(s.waiters[lt.id], p)
				return 0, true
			}
		}
	}

	dt := s.cfg.LatL2 // no-fetch write allocation (per-word dirty bits)

	// A displaced version of our own may need to come back from overflow.
	if w, ok := p.ovf.Retrieve(line, t.id); ok {
		dt += s.cfg.LatOverflow
		s.insertL2(p, line, t.id, memsys.KindOwnVersion)
		if l, found := p.l2.Peek(line, t.id); found {
			l.Written = w.Set(addr.Offset())
		}
		s.recordWrite(p, t, addr)
		s.fillL1(p, line, t.id)
		return dt, false
	}

	// FMM: before the task generates its own version, the most recent local
	// version is saved into the MHB (hardware logs overlap with the write;
	// software logs add instructions). Coarse-recovery schemes keep no undo
	// log — only the software access marking (shadow arrays) — because
	// recovery is re-execution of the whole section.
	if s.scheme.UsesUndoLog() {
		if !s.scheme.Coarse {
			prev := ids.None
			if best := p.l2.BestVersionFor(line, t.id); best != nil {
				prev = best.Producer
			} else if v := s.mem.Version(line); v != ids.None && v.Before(t.id) {
				prev = v
			}
			p.mhb.Append(line, prev, t.id)
		}
		if s.scheme.SoftwareLog {
			p.spend(s.cfg.LogAppendSW, &p.bd.Busy)
		} else {
			dt += s.cfg.LogAppendHW
		}
	}

	s.insertL2(p, line, t.id, memsys.KindOwnVersion)
	if l, found := p.l2.Peek(line, t.id); found {
		l.Written = memsys.WordMask(0).Set(addr.Offset())
	}
	s.fillL1(p, line, t.id)
	s.recordWrite(p, t, addr)
	return dt, false
}

// recordWrite updates the directory (possibly detecting a violation) and
// the task's footprint counters.
func (s *Simulator) recordWrite(p *processor, t *task, addr memsys.Addr) {
	t.wordsWritten++
	if addr >= workload.PrivBase && addr < workload.UniqueBase {
		t.privWords++
	}
	if victim := s.dir.RecordWrite(s.dirAddr(addr), t.id); victim != ids.None {
		if s.scheme.Coarse {
			// Coarse recovery defers detection to the end-of-section test
			// (the LRPD test); nothing is squashed mid-run.
			s.coarseViolated = true
		} else {
			s.squashFrom(victim, p.lastTime, addr, t.id)
		}
	}
}
