package sim

import (
	"sort"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// TraceKind labels one execution-trace event.
type TraceKind uint8

const (
	// TraceStart — a task began (or re-began) executing.
	TraceStart TraceKind = iota
	// TraceFinish — a task finished executing (still speculative).
	TraceFinish
	// TraceCommitStart — the commit token reached the task.
	TraceCommitStart
	// TraceCommitEnd — the task's state finished merging; the token moves on.
	TraceCommitEnd
	// TraceSquash — the task was squashed and will re-execute.
	TraceSquash
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceFinish:
		return "finish"
	case TraceCommitStart:
		return "commit-start"
	case TraceCommitEnd:
		return "commit-end"
	case TraceSquash:
		return "squash"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one timeline record. The execution and commit wavefronts of
// Figures 5 and 6 are renderings of these events.
//
// TraceSquash events additionally carry their cause — the out-of-order RAW
// that triggered the squash — so dependence chains are attributable: Word is
// the violated word, Writer the task whose write exposed the violation, and
// Wasted the execution cycles this victim discards (zero for a victim that
// was already sitting squashed in the redo queue). The cause fields are zero
// on every other kind.
type TraceEvent struct {
	When event.Time
	Kind TraceKind
	Task ids.TaskID
	Proc ids.ProcID

	Word   memsys.Addr
	Writer ids.TaskID
	Wasted event.Time
}

// Distance returns the task distance of a squash's RAW (reader − writer),
// 0 for non-squash events.
func (e TraceEvent) Distance() int {
	if e.Kind != TraceSquash || e.Writer == ids.None {
		return 0
	}
	return int(e.Task) - int(e.Writer)
}

// EnableTrace turns on timeline recording; call before Run.
func (s *Simulator) EnableTrace() { s.tracing = true }

func (s *Simulator) trace(when event.Time, kind TraceKind, t *task) {
	if !s.tracing {
		return
	}
	s.traceLog = append(s.traceLog, TraceEvent{When: when, Kind: kind, Task: t.id, Proc: t.proc})
}

// traceSquash records a squash with its cause attribution.
func (s *Simulator) traceSquash(when event.Time, t *task, word memsys.Addr, writer ids.TaskID, wasted event.Time) {
	if !s.tracing {
		return
	}
	s.traceLog = append(s.traceLog, TraceEvent{
		When: when, Kind: TraceSquash, Task: t.id, Proc: t.proc,
		Word: word, Writer: writer, Wasted: wasted,
	})
}

// SquashHotspot aggregates every squash a single word caused: the per-word
// row of the "which dependence chains squash this application" table.
type SquashHotspot struct {
	Word         memsys.Addr
	Squashes     int        // victim squashes attributed to the word
	WastedCycles event.Time // total discarded execution cycles
	MaxDistance  int        // largest reader−writer task distance observed
	// SampleWriter/SampleReader name one offending pair (the first seen),
	// anchoring the hotspot to concrete tasks.
	SampleWriter ids.TaskID
	SampleReader ids.TaskID
}

// SquashHotspots aggregates a trace's squash events into per-word hotspots,
// sorted by wasted cycles descending (ties: more squashes first, then lower
// word address — a total, deterministic order).
func SquashHotspots(trace []TraceEvent) []SquashHotspot {
	byWord := map[memsys.Addr]*SquashHotspot{}
	var order []memsys.Addr
	for _, e := range trace {
		if e.Kind != TraceSquash {
			continue
		}
		h, ok := byWord[e.Word]
		if !ok {
			h = &SquashHotspot{Word: e.Word, SampleWriter: e.Writer, SampleReader: e.Task}
			byWord[e.Word] = h
			order = append(order, e.Word)
		}
		h.Squashes++
		h.WastedCycles += e.Wasted
		if d := e.Distance(); d > h.MaxDistance {
			h.MaxDistance = d
		}
	}
	out := make([]SquashHotspot, 0, len(order))
	for _, w := range order {
		out = append(out, *byWord[w])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WastedCycles != out[j].WastedCycles {
			return out[i].WastedCycles > out[j].WastedCycles
		}
		if out[i].Squashes != out[j].Squashes {
			return out[i].Squashes > out[j].Squashes
		}
		return out[i].Word < out[j].Word
	})
	return out
}
