package sim

import (
	"sort"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// TraceKind labels one execution-trace event.
type TraceKind uint8

const (
	// TraceStart — a task began (or re-began) executing.
	TraceStart TraceKind = iota
	// TraceFinish — a task finished executing (still speculative).
	TraceFinish
	// TraceCommitStart — the commit token reached the task.
	TraceCommitStart
	// TraceCommitEnd — the task's state finished merging; the token moves on.
	TraceCommitEnd
	// TraceSquash — the task was squashed and will re-execute.
	TraceSquash
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceFinish:
		return "finish"
	case TraceCommitStart:
		return "commit-start"
	case TraceCommitEnd:
		return "commit-end"
	case TraceSquash:
		return "squash"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one timeline record. The execution and commit wavefronts of
// Figures 5 and 6 are renderings of these events.
//
// TraceSquash events additionally carry their cause — the out-of-order RAW
// that triggered the squash — so dependence chains are attributable: Word is
// the violated word, Writer the task whose write exposed the violation, and
// Wasted the execution cycles this victim discards (zero for a victim that
// was already sitting squashed in the redo queue). The cause fields are zero
// on every other kind.
type TraceEvent struct {
	When event.Time
	Kind TraceKind
	Task ids.TaskID
	Proc ids.ProcID

	Word   memsys.Addr
	Writer ids.TaskID
	Wasted event.Time
}

// Distance returns the task distance of a squash's RAW (reader − writer),
// 0 for non-squash events.
func (e TraceEvent) Distance() int {
	if e.Kind != TraceSquash || e.Writer == ids.None {
		return 0
	}
	return int(e.Task) - int(e.Writer)
}

// EnableTrace turns on timeline recording; call before Run.
func (s *Simulator) EnableTrace() { s.tracing = true }

// FlightEntry is one record of the simulator's always-on flight recorder: a
// fixed ring of the last flightRingSize trace events, recorded whether or
// not full tracing is enabled. When a run hangs or violates an invariant,
// the ring is the post-mortem — what the simulator was doing right before it
// died — dumped into .progress.json reports and quarantine manifests.
//
// Recording is a value write into a preallocated array (no allocation, no
// locking — the event loop is single-goroutine even in parallel mode, where
// shard lanes are merged before handlers run), and it never feeds back into
// simulation state, preserving the no-observer-effect guarantee.
type FlightEntry struct {
	When event.Time `json:"when"`
	Kind string     `json:"kind"`
	Task ids.TaskID `json:"task"`
	Proc ids.ProcID `json:"proc"`
}

// flightRingSize is the sim flight recorder depth: the last few scheduling
// rounds' worth of events, enough to see the pattern a hang froze in.
const flightRingSize = 64

func (s *Simulator) flightRecord(when event.Time, kind TraceKind, t *task) {
	s.flight[s.flightNext] = FlightEntry{When: when, Kind: kind.String(), Task: t.id, Proc: t.proc}
	s.flightNext = (s.flightNext + 1) % flightRingSize
	s.flightSeen++
}

// FlightRecorder returns the flight recorder's contents, oldest first.
func (s *Simulator) FlightRecorder() []FlightEntry {
	n := uint64(flightRingSize)
	if s.flightSeen < n {
		out := make([]FlightEntry, s.flightSeen)
		copy(out, s.flight[:s.flightSeen])
		return out
	}
	out := make([]FlightEntry, 0, flightRingSize)
	out = append(out, s.flight[s.flightNext:]...)
	out = append(out, s.flight[:s.flightNext]...)
	return out
}

func (s *Simulator) trace(when event.Time, kind TraceKind, t *task) {
	s.flightRecord(when, kind, t)
	if !s.tracing {
		return
	}
	s.traceLog = append(s.traceLog, TraceEvent{When: when, Kind: kind, Task: t.id, Proc: t.proc})
}

// traceSquash records a squash with its cause attribution.
func (s *Simulator) traceSquash(when event.Time, t *task, word memsys.Addr, writer ids.TaskID, wasted event.Time) {
	s.flightRecord(when, TraceSquash, t)
	if !s.tracing {
		return
	}
	s.traceLog = append(s.traceLog, TraceEvent{
		When: when, Kind: TraceSquash, Task: t.id, Proc: t.proc,
		Word: word, Writer: writer, Wasted: wasted,
	})
}

// SquashHotspot aggregates every squash a single word caused: the per-word
// row of the "which dependence chains squash this application" table.
type SquashHotspot struct {
	Word         memsys.Addr
	Squashes     int        // victim squashes attributed to the word
	WastedCycles event.Time // total discarded execution cycles
	MaxDistance  int        // largest reader−writer task distance observed
	// SampleWriter/SampleReader name one offending pair (the first seen),
	// anchoring the hotspot to concrete tasks.
	SampleWriter ids.TaskID
	SampleReader ids.TaskID
}

// SquashHotspots aggregates a trace's squash events into per-word hotspots,
// sorted by wasted cycles descending (ties: more squashes first, then lower
// word address — a total, deterministic order).
func SquashHotspots(trace []TraceEvent) []SquashHotspot {
	byWord := map[memsys.Addr]*SquashHotspot{}
	var order []memsys.Addr
	for _, e := range trace {
		if e.Kind != TraceSquash {
			continue
		}
		h, ok := byWord[e.Word]
		if !ok {
			h = &SquashHotspot{Word: e.Word, SampleWriter: e.Writer, SampleReader: e.Task}
			byWord[e.Word] = h
			order = append(order, e.Word)
		}
		h.Squashes++
		h.WastedCycles += e.Wasted
		if d := e.Distance(); d > h.MaxDistance {
			h.MaxDistance = d
		}
	}
	out := make([]SquashHotspot, 0, len(order))
	for _, w := range order {
		out = append(out, *byWord[w])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WastedCycles != out[j].WastedCycles {
			return out[i].WastedCycles > out[j].WastedCycles
		}
		if out[i].Squashes != out[j].Squashes {
			return out[i].Squashes > out[j].Squashes
		}
		return out[i].Word < out[j].Word
	})
	return out
}
