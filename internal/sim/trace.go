package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
)

// TraceKind labels one execution-trace event.
type TraceKind uint8

const (
	// TraceStart — a task began (or re-began) executing.
	TraceStart TraceKind = iota
	// TraceFinish — a task finished executing (still speculative).
	TraceFinish
	// TraceCommitStart — the commit token reached the task.
	TraceCommitStart
	// TraceCommitEnd — the task's state finished merging; the token moves on.
	TraceCommitEnd
	// TraceSquash — the task was squashed and will re-execute.
	TraceSquash
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceFinish:
		return "finish"
	case TraceCommitStart:
		return "commit-start"
	case TraceCommitEnd:
		return "commit-end"
	case TraceSquash:
		return "squash"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one timeline record. The execution and commit wavefronts of
// Figures 5 and 6 are renderings of these events.
type TraceEvent struct {
	When event.Time
	Kind TraceKind
	Task ids.TaskID
	Proc ids.ProcID
}

// EnableTrace turns on timeline recording; call before Run.
func (s *Simulator) EnableTrace() { s.tracing = true }

func (s *Simulator) trace(when event.Time, kind TraceKind, t *task) {
	if !s.tracing {
		return
	}
	s.traceLog = append(s.traceLog, TraceEvent{When: when, Kind: kind, Task: t.id, Proc: t.proc})
}
