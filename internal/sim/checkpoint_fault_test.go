package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/machine"
	"repro/internal/workload"
)

// twoCheckpoints captures two distinct checkpoints from one run: the state
// that gets overwritten and the state that overwrites it.
func twoCheckpoints(t *testing.T) (a, b *Checkpoint) {
	t.Helper()
	mach := machine.NUMA16()
	p := workload.Euler().Scale(0.1, 0.1, 0.25)
	s := New(mach, core.MultiTMVLazy, workload.NewGenerator(p, 99))
	var cks []*Checkpoint
	s.SetAutoCheckpoint(3)
	s.SetCheckpointSink(func(c *Checkpoint) {
		if len(cks) < 2 {
			cks = append(cks, c)
		}
	})
	s.Run()
	if len(cks) < 2 {
		t.Fatalf("captured %d checkpoints, want 2", len(cks))
	}
	return cks[0], cks[1]
}

// ckptBytes is the encoded form, for identifying which checkpoint a crash
// state holds.
func ckptBytes(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A failed directory sync means the checkpoint's rename may not survive a
// power cut, so WriteCheckpointFileFS must report it.
func TestWriteCheckpointFilePropagatesDirSyncFailure(t *testing.T) {
	a, _ := twoCheckpoints(t)
	inj := iofault.NewInjector(iofault.Plan{Seed: 31})
	path := filepath.Join(t.TempDir(), "job.ckpt")
	inj.SetSyncFailures(1)
	if err := WriteCheckpointFileFS(inj, path, a); err == nil {
		t.Fatal("WriteCheckpointFileFS with failed directory sync reported success")
	}
}

// Crash-consistency of checkpoint overwrite: writing checkpoint B over
// checkpoint A must, in every crash state, leave either a valid A, a valid
// B, or a cleanly-detected invalid file — never a silently-wrong state
// accepted by ReadCheckpointFile.
func TestCheckpointCrashConsistency(t *testing.T) {
	a, b := twoCheckpoints(t)
	wantA, wantB := ckptBytes(t, a), ckptBytes(t, b)

	root := t.TempDir()
	rec := iofault.NewRecorder(root)
	path := filepath.Join(root, "job.ckpt")
	if err := WriteCheckpointFileFS(rec, path, a); err != nil {
		t.Fatal(err)
	}
	rec.Note("wrote:a")
	if err := WriteCheckpointFileFS(rec, path, b); err != nil {
		t.Fatal(err)
	}
	rec.Note("wrote:b")

	err := iofault.ForEachCrashState(rec.Trace(), t.TempDir(), func(s iofault.CrashState, dir string) error {
		p := filepath.Join(dir, "job.ckpt")
		raw, statErr := os.ReadFile(p)
		ck, err := ReadCheckpointFile(p)
		acked := map[string]bool{}
		for _, n := range s.Acked {
			acked[n] = true
		}
		switch {
		case err == nil:
			// Whatever was read must be exactly A or exactly B.
			got := ckptBytes(t, ck)
			if !bytes.Equal(got, wantA) && !bytes.Equal(got, wantB) {
				return fmt.Errorf("restored checkpoint matches neither written state (%d bytes)", len(got))
			}
			// After B's write is acknowledged (rename + dir sync durable),
			// only B may be served.
			if acked["wrote:b"] && !bytes.Equal(got, wantB) {
				return fmt.Errorf("acked checkpoint B lost; stale A served")
			}
		case os.IsNotExist(statErr):
			if acked["wrote:a"] || acked["wrote:b"] {
				return fmt.Errorf("acked checkpoint vanished entirely")
			}
		default:
			// A detected-invalid file is acceptable only before any write
			// was acknowledged: the atomic-rename protocol never exposes a
			// torn file once a write has returned.
			if acked["wrote:a"] || acked["wrote:b"] {
				return fmt.Errorf("acked checkpoint unreadable: %v (%d bytes on disk)", err, len(raw))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
