package sim

import (
	"sync"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/workload"
)

// Parallel simulation mode (DESIGN.md §15).
//
// The pending event set is sharded into per-node lanes (event.ShardedQueue,
// one lane per simulated processor: continuations live on their processor's
// lane, the commit-done event on the committing task's lane) and the run
// advances in conservative synchronization windows whose width is the
// machine's interconnect lookahead — the minimum latency of any cross-node
// interaction. Within a window, events are applied in the same canonical
// (cycle, seq) order as the serial loop: the model's zero-lookahead
// couplings (a squash rolls back every successor processor at the same
// cycle; directory words, bank occupancies and the dispatch cursor are
// shared) make concurrent event-callback execution impossible to keep
// bit-identical, so determinism is preserved by construction and the
// parallelism is extracted from the run's dominant pure computation
// instead: workload stream generation (~a third of a full run's CPU), which
// the prefetcher below pipelines onto N worker goroutines ahead of the
// dispatch cursor. Results are reflect.DeepEqual-identical to the serial
// loop for every workload, scheme, and fault plan.

// ConcurrentWorkload is implemented by workloads whose Task method is safe
// to call from multiple goroutines at once. Both workload.Generator and
// workload.Trace qualify; the prefetcher stays off for workloads that
// don't, and parallel mode then degrades to the sharded-merge loop alone.
type ConcurrentWorkload interface {
	ConcurrentTaskSafe() bool
}

// SetParallel selects the parallel simulation mode with n worker
// goroutines. n <= 1 selects the serial loop (the default). It must be
// called before Run and before Restore: the mode decides which queue the
// restored events land in.
func (s *Simulator) SetParallel(n int) {
	if s.started {
		panic("sim: SetParallel after Run or Restore")
	}
	if n <= 1 {
		s.sq = nil
		s.pf = nil
		s.parN = 0
		return
	}
	s.parN = n
	s.sq = event.NewSharded(s.cfg.Procs)
	s.window = s.net.Lookahead()
	if s.window < 1 {
		s.window = 1
	}
	if cw, ok := s.gen.(ConcurrentWorkload); ok && cw.ConcurrentTaskSafe() {
		s.pf = newPrefetcher(s.gen, n, s.total)
	}
}

// Parallel returns the worker count selected by SetParallel (0 = serial).
func (s *Simulator) Parallel() int { return s.parN }

// runParallel is the parallel-mode counterpart of the serial
// s.q.Run(eventLimit): it advances the sharded queue window by window. Each
// iteration reads the global safe floor (the earliest pending event on any
// lane), points the prefetcher at the dispatch cursor so streams for
// soon-to-start tasks are being generated while this window's events apply,
// and fires everything within one lookahead of the floor. Like the serial
// loop it drains the queue completely — post-completion no-op continuations
// count in Result.Events in both modes.
func (s *Simulator) runParallel() uint64 {
	if s.pf != nil {
		defer s.pf.close()
	}
	var fired uint64
	for fired < eventLimit {
		head, ok := s.sq.MinFrontier()
		if !ok {
			break
		}
		if s.pf != nil && !s.done {
			s.pf.aim(s.next)
		}
		n := s.sq.RunWindow(head+s.window, eventLimit-fired)
		fired += n
		s.parWindows++
		if n <= 1 {
			// A window that fires at most one event paid a full merge-loop
			// round (frontier scan + window setup) for no batching: the
			// conservative window stalled on the lookahead bound.
			s.parStalls++
		}
	}
	return fired
}

// ParallelStats is the diagnostic counter set of one parallel-mode run: how
// the conservative windows batched, how evenly the lanes fired, and how the
// workload prefetcher kept ahead of the dispatch cursor. It is pure
// observability — none of these counters feed back into the simulation, and
// none are part of Result — surfaced so tlsbench output can localize a
// parallel-mode slowdown (stalling windows vs. lane imbalance vs. prefetch
// misses) without a profiler. Zero-valued for serial runs.
type ParallelStats struct {
	Workers     int        `json:"workers"`
	WindowWidth event.Time `json:"window_width"`
	// Windows is the number of conservative synchronization windows the
	// merge loop ran; StallWindows counts those that fired ≤1 event — rounds
	// whose frontier-scan overhead bought no batching.
	Windows      uint64 `json:"windows"`
	StallWindows uint64 `json:"stall_windows"`
	// LaneFired and LaneHighWater are per-lane (per simulated processor)
	// totals: events fired from the lane and its peak pending occupancy.
	LaneFired     []uint64 `json:"lane_fired,omitempty"`
	LaneHighWater []int    `json:"lane_high_water,omitempty"`
	Compactions   uint64   `json:"compactions"`
	// Prefetcher effectiveness: a hit is a dispatch whose stream a worker
	// pregenerated, a miss computed inline on the merge goroutine.
	PrefetchHits           uint64 `json:"prefetch_hits"`
	PrefetchMisses         uint64 `json:"prefetch_misses"`
	PrefetchDepthHighWater int    `json:"prefetch_depth_high_water"`
}

// ParallelStats snapshots the parallel-mode counters. Call after Run; the
// zero value is returned for serial runs.
func (s *Simulator) ParallelStats() ParallelStats {
	if s.parN == 0 || s.sq == nil {
		return ParallelStats{}
	}
	st := ParallelStats{
		Workers:      s.parN,
		WindowWidth:  s.window,
		Windows:      s.parWindows,
		StallWindows: s.parStalls,
		Compactions:  s.sq.Compactions(),
	}
	st.LaneFired = make([]uint64, s.sq.Domains())
	st.LaneHighWater = make([]int, s.sq.Domains())
	for i := 0; i < s.sq.Domains(); i++ {
		st.LaneFired[i] = s.sq.LaneFired(i)
		st.LaneHighWater[i] = s.sq.LaneHighWater(i)
	}
	if s.pf != nil {
		st.PrefetchHits, st.PrefetchMisses, st.PrefetchDepthHighWater = s.pf.stats()
	}
	return st
}

// The q* helpers below are the queue facade: every scheduling and
// bookkeeping touch of the event queue goes through them, branching on the
// mode. The domain argument is the processor whose lane owns the event;
// the serial queue ignores it.

func (s *Simulator) qAt(domain ids.ProcID, at event.Time, fn func(event.Time)) event.Handle {
	if s.sq != nil {
		return s.sq.At(int(domain), at, fn)
	}
	return s.q.At(at, fn)
}

func (s *Simulator) qScheduleAt(domain ids.ProcID, when event.Time, seq uint64, fn func(event.Time)) event.Handle {
	if s.sq != nil {
		return s.sq.ScheduleAt(int(domain), when, seq, fn)
	}
	return s.q.ScheduleAt(when, seq, fn)
}

func (s *Simulator) qNow() event.Time {
	if s.sq != nil {
		return s.sq.Now()
	}
	return s.q.Now()
}

func (s *Simulator) qLen() int {
	if s.sq != nil {
		return s.sq.Len()
	}
	return s.q.Len()
}

func (s *Simulator) qFired() uint64 {
	if s.sq != nil {
		return s.sq.Fired()
	}
	return s.q.Fired()
}

func (s *Simulator) qNextSeq() uint64 {
	if s.sq != nil {
		return s.sq.NextSeq()
	}
	return s.q.NextSeq()
}

func (s *Simulator) qCompactions() uint64 {
	if s.sq != nil {
		return s.sq.Compactions()
	}
	return s.q.Compactions()
}

func (s *Simulator) qHalt() {
	if s.sq != nil {
		s.sq.Halt()
		return
	}
	s.q.Halt()
}

func (s *Simulator) qRestoreClock(now event.Time, nextSq, fired, compactions uint64) {
	if s.sq != nil {
		s.sq.RestoreClock(now, nextSq, fired, compactions)
		return
	}
	s.q.RestoreClock(now, nextSq, fired, compactions)
}

// prefetcher pregenerates workload operation streams on worker goroutines.
// Task streams are pure functions of the task index (ConcurrentWorkload),
// so the workers race with nothing: they compute into entries they own,
// and the simulation goroutine picks a stream up at dispatch — waiting on
// the entry if the worker hasn't finished, or computing inline on a miss.
// The prefetcher can only change WHERE a stream is computed, never what it
// contains, so parallel results stay identical to serial.
type prefetcher struct {
	gen   Workload
	total int
	depth int

	mu      sync.Mutex
	entries map[int]*pfEntry // in-flight and ready streams, by task index
	closed  bool

	// Diagnostic counters for ParallelStats: hits/misses tally take()
	// outcomes, depthHiwater the peak in-flight entry count.
	hits         uint64
	misses       uint64
	depthHiwater int

	work chan pfItem
	wg   sync.WaitGroup
}

// pfEntry is one pregenerated stream. done is closed by the worker after
// ops is filled; the happens-before edge of the close publishes ops.
type pfEntry struct {
	done chan struct{}
	ops  []workload.Op
}

// pfItem pairs a task index with the entry the worker must fill. The entry
// travels in the channel (rather than being looked up by the worker) so a
// take that races with the hand-off can never orphan a waiter.
type pfItem struct {
	idx int
	e   *pfEntry
}

func newPrefetcher(gen Workload, workers, total int) *prefetcher {
	depth := 4 * workers
	pf := &prefetcher{
		gen:     gen,
		total:   total,
		depth:   depth,
		entries: make(map[int]*pfEntry, depth),
		work:    make(chan pfItem, depth),
	}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.worker()
	}
	return pf
}

func (pf *prefetcher) worker() {
	defer pf.wg.Done()
	for it := range pf.work {
		it.e.ops, _ = pf.gen.Task(it.idx, nil)
		close(it.e.done)
	}
}

// aim requests the streams of the next tasks the dispatcher will hand out:
// indices [next, next+depth). Everything at or past next is undispatched,
// so an index is either already in flight or needs a fresh request; a full
// work channel just stops the top-up (take computes misses inline).
func (pf *prefetcher) aim(next int) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return
	}
	for idx := next; idx < next+pf.depth && idx < pf.total; idx++ {
		if _, ok := pf.entries[idx]; ok {
			continue
		}
		if !pf.enqueueLocked(idx) {
			break
		}
	}
}

// redo requests a fresh stream for a squashed task, which will re-dispatch
// from the redo queue after recovery — typically at least one squash
// latency away, enough for a worker to have the stream ready. Best effort:
// if the work channel is full the re-dispatch computes inline.
func (pf *prefetcher) redo(idx int) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return
	}
	if _, ok := pf.entries[idx]; ok {
		return
	}
	pf.enqueueLocked(idx)
}

// enqueueLocked hands index idx to a worker, non-blocking. It reports
// whether the hand-off happened; on false nothing was recorded.
func (pf *prefetcher) enqueueLocked(idx int) bool {
	e := &pfEntry{done: make(chan struct{})}
	select {
	case pf.work <- pfItem{idx: idx, e: e}:
		pf.entries[idx] = e
		if len(pf.entries) > pf.depthHiwater {
			pf.depthHiwater = len(pf.entries)
		}
		return true
	default:
		return false
	}
}

// take returns task idx's operation stream, waiting for the worker if the
// pregeneration is still in flight and computing inline when the index was
// never requested. Called only from the simulation goroutine.
func (pf *prefetcher) take(idx int) []workload.Op {
	pf.mu.Lock()
	e := pf.entries[idx]
	if e != nil {
		delete(pf.entries, idx)
	}
	if e == nil {
		pf.misses++
	} else {
		pf.hits++
	}
	pf.mu.Unlock()
	if e == nil {
		ops, _ := pf.gen.Task(idx, nil)
		return ops
	}
	<-e.done
	return e.ops
}

// stats snapshots the prefetcher's diagnostic counters.
func (pf *prefetcher) stats() (hits, misses uint64, depthHiwater int) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.hits, pf.misses, pf.depthHiwater
}

// close stops the workers and waits for them. Entries still in the channel
// are drained without effect; nothing waits on them afterwards.
func (pf *prefetcher) close() {
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		return
	}
	pf.closed = true
	pf.mu.Unlock()
	close(pf.work)
	pf.wg.Wait()
}
