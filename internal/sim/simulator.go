package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/interconnect"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/workload"
)

// quantum bounds how far a processor's local time may run ahead of the
// global event queue within one continuation; cross-processor interleaving
// skew is bounded by this many cycles.
const quantum = 256

// eventLimit is a runaway backstop: a run firing more events than this is
// assumed deadlocked or livelocked and panics with diagnostics.
const eventLimit = 500_000_000

// Workload supplies the tasks of a speculative section. The standard
// implementation is workload.Generator (the synthetic application models);
// workload.Trace lets a caller supply explicit per-task operation streams.
// Task must be deterministic: a squashed task re-executes the identical
// stream.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// NumTasks returns the section length.
	NumTasks() int
	// TasksPerInvocation returns the dispatch-barrier granularity
	// (0 = a single invocation).
	TasksPerInvocation() int
	// Task returns task index's operation stream (appending into buf) and
	// its total instruction count.
	Task(index int, buf []workload.Op) (ops []workload.Op, instr int)
}

// OrderOracle is optionally implemented by workloads that can state which
// producer a cross-task read must observe under sequential semantics; the
// simulator then verifies every committed communication-region read
// against it.
type OrderOracle interface {
	SequentialOrderOracle(addr memsys.Addr, index int) int
}

// Simulator runs one speculative section on one machine under one scheme.
type Simulator struct {
	cfg    *machine.Config
	scheme core.Scheme
	gen    Workload

	q event.Queue

	// Parallel mode (see parallel.go): when sq is non-nil the run uses the
	// per-node sharded queue and the conservative-window loop instead of q;
	// pf pregenerates workload streams on parN worker goroutines; window is
	// the synchronization horizon (the interconnect lookahead).
	sq     *event.ShardedQueue
	pf     *prefetcher
	window event.Time
	parN   int

	dir   *coherence.Directory
	mem   *memsys.Memory
	net   *interconnect.Network
	order *ids.CommitOrder
	procs []*processor

	// l3 models the CMP's shared 16-MB L3 as a touched-lines filter: lines
	// seen before are served at L3 latency instead of memory latency.
	l3 map[memsys.LineAddr]bool

	tasks    map[ids.TaskID]*task
	taskProc []ids.ProcID // index -> processor that owns/owned the task
	next     int          // next workload index to dispatch
	total    int

	committing   *task
	commitDone   func(done event.Time)
	commitHandle event.Handle // pending commit-done occurrence, for checkpoints
	tokenFreeAt  event.Time
	lastCommitBy ids.ProcID
	waiters      map[ids.TaskID][]*processor

	done    bool
	endTime event.Time

	// Checkpoint/interrupt plumbing (see checkpoint.go). started guards
	// against double Run and marks a restored simulator; halted is set when
	// an Interrupt stopped the run at a commit boundary.
	started   bool
	halted    bool
	interrupt atomic.Bool
	ckptEvery int
	ckptSink  func(*Checkpoint)

	// Verification: committed communication reads checked against the
	// sequential-order oracle.
	oracleChecks     int
	oracleViolations int

	// Statistics.
	liveSpec      int
	specSampler   stats.Sampler
	execPerTask   stats.Mean
	commitPerTask stats.Mean
	footBytes     stats.Mean
	footPrivFrac  stats.Mean
	squashEvents  int
	tasksSquashed int
	commits       int

	// obs, when non-nil, is the observability layer (see observe.go): pure
	// reads of simulation state, never on the timing path.
	obs *simObs

	tracing         bool
	traceLog        []TraceEvent
	flight          [flightRingSize]FlightEntry
	flightNext      int
	flightSeen      uint64
	parWindows      uint64
	parStalls       uint64
	lineGranularity bool
	orbCommit       bool
	forceMTID       bool

	// coarseViolated records that the end-of-section dependence test of a
	// coarse-recovery scheme will fail.
	coarseViolated bool
	vclMerges      uint64
	fmmWritebacks  uint64

	// inject, when non-nil, perturbs the run at the fault hook points; inv,
	// when non-nil, validates the protocol invariants at every commit,
	// squash, and merge event. Both default to off and cost nothing then.
	inject FaultInjector
	inv    *invariantChecker

	// Reused hot-path scratch: per-processor squash victim lists and the
	// stale-version buffer of the VCL merge.
	squashScratch [][]*task
	vclStale      []ids.TaskID
}

// New builds a simulator. It panics on an invalid scheme: callers pass
// compile-time scheme constants.
func New(cfg *machine.Config, scheme core.Scheme, gen Workload) *Simulator {
	if !scheme.Valid() || !scheme.Interesting() {
		panic(fmt.Sprintf("sim: scheme %v is not modelled", scheme))
	}
	s := &Simulator{
		cfg:          cfg,
		scheme:       scheme,
		gen:          gen,
		dir:          coherence.NewDirectory(),
		mem:          memsys.NewMemory(scheme.MemoryNeedsMTID()),
		net:          cfg.NewNetwork(),
		total:        gen.NumTasks(),
		tasks:        make(map[ids.TaskID]*task),
		taskProc:     make([]ids.ProcID, gen.NumTasks()),
		waiters:      make(map[ids.TaskID][]*processor),
		lastCommitBy: ids.NoProc,
	}
	s.order = ids.NewCommitOrder(ids.TaskID(s.total))
	if cfg.Kind == machine.CMP {
		s.l3 = make(map[memsys.LineAddr]bool)
	}
	for i := 0; i < cfg.Procs; i++ {
		p := &processor{
			id:  ids.ProcID(i),
			l1:  memsys.NewCache(cfg.L1),
			l2:  memsys.NewCache(cfg.L2),
			ovf: memsys.NewOverflow(),
			mhb: memsys.NewMHB(),
		}
		// One continuation closure per processor for the whole run: schedule
		// is the hottest event producer and must not allocate per event.
		p.cont = func(now event.Time) {
			p.scheduled = false
			s.step(p, now)
		}
		s.procs = append(s.procs, p)
	}
	s.squashScratch = make([][]*task, cfg.Procs)
	return s
}

// schedule queues a continuation for p at time at (no-op when one is
// already pending).
func (s *Simulator) schedule(p *processor, at event.Time) {
	if p.scheduled || s.done {
		return
	}
	p.scheduled = true
	p.contHandle = s.qAt(p.id, at, p.cont)
}

// Run executes the section to completion and returns the results. On a
// simulator primed by Restore it continues from the checkpoint instead of
// starting fresh. When an Interrupt halts the run, Run returns a zero
// Result; check Halted().
func (s *Simulator) Run() Result {
	if !s.started {
		s.started = true
		s.specSampler.Observe(0, 0)
		for _, p := range s.procs {
			s.schedule(p, 0)
		}
	}
	// Run(limit) with limit > 0 is a budget: a return value equal to the
	// limit means the budget was exhausted, not that the queue drained.
	var fired uint64
	if s.sq != nil {
		fired = s.runParallel()
	} else {
		fired = s.q.Run(eventLimit)
	}
	if s.halted {
		return Result{}
	}
	if !s.done {
		reason := "deadlocked"
		if fired >= eventLimit {
			reason = "hit the event limit (livelock?)"
		}
		panic(fmt.Sprintf("sim: %s/%v/%s %s: %d tasks committed of %d, %d events fired",
			s.cfg.Name, s.scheme, s.gen.Name(), reason, s.commits, s.total, s.qFired()))
	}
	return s.collect()
}

// step runs processor p from time now for up to one quantum.
func (s *Simulator) step(p *processor, now event.Time) {
	if s.done {
		return // breakdowns were closed at endTime by finishSection
	}
	if now < p.blockedUntil {
		p.wait = waitRecovery
		s.schedule(p, p.blockedUntil)
		return
	}
	s.obs.poll(now)
	p.account(now)
	p.wait = waitNone
	deadline := p.lastTime + quantum

	for p.lastTime < deadline {
		if p.cur == nil || p.cur.state != taskRunning {
			if !s.nextTask(p) {
				return // stalled or idle; wait kind already set
			}
		}
		t := p.cur
		if t.pc >= len(t.ops) {
			s.finishTask(p, t)
			continue
		}
		op := t.ops[t.pc]
		switch op.Kind {
		case workload.OpCompute:
			p.spend(s.cycles(op.Instr), &p.bd.Busy)
			t.pc++
		case workload.OpRead:
			dt := s.read(p, t, op.Addr)
			s.chargeMemory(p, dt)
			t.pc++
		case workload.OpWrite:
			dt, stalled := s.write(p, t, op.Addr)
			if stalled {
				p.wait = waitVersion
				return // op not consumed; retried after wake
			}
			s.chargeMemory(p, dt)
			t.pc++
			if s.inject != nil {
				s.maybeFlipTag(p)
			}
		}
		if s.done {
			return
		}
		// The current task may have been squashed by a violation triggered
		// by its own write's consequences elsewhere; loop re-checks state.
	}
	s.schedule(p, p.lastTime)
}

// cycles converts an instruction count to core cycles.
func (s *Simulator) cycles(instr int) event.Time {
	return event.Time(float64(instr)*s.cfg.CPI + 0.5)
}

// chargeMemory attributes a memory access: a 4-issue dynamic superscalar
// with 8 pending loads overlaps latency up to about an L2 hit with useful
// work (counted busy); the remainder is memory stall.
func (s *Simulator) chargeMemory(p *processor, dt event.Time) {
	hidden := s.cfg.LatL2
	if dt < hidden {
		hidden = dt
	}
	p.spend(hidden, &p.bd.Busy)
	p.spend(dt-hidden, &p.bd.StallMem)
}

// nextTask gives p something to run: a squashed local task first, then — if
// the separation policy allows — a new task from the dispatcher. It returns
// false if p must wait (wait kind set).
func (s *Simulator) nextTask(p *processor) bool {
	if rt := p.popRedo(); rt != nil {
		s.startTask(p, rt, true)
		return true
	}
	if !s.scheme.MultipleTasksPerProc() && len(p.local) > 0 {
		// SingleT: the previous task must commit before a new one starts.
		p.wait = waitToken
		return false
	}
	if s.next >= s.total {
		p.wait = waitIdle
		return false
	}
	// Speculation does not cross invocation boundaries: a task of the next
	// loop invocation cannot start until the current invocation has fully
	// committed (the barrier between non-analyzable sections).
	if inv := s.gen.TasksPerInvocation(); inv > 0 {
		headIdx := int(s.order.Head()) - 1
		if s.next/inv > headIdx/inv {
			p.wait = waitIdle
			return false
		}
	}
	idx := s.next
	s.next++
	t := &task{id: ids.TaskID(idx + 1), index: idx, proc: p.id}
	s.taskProc[idx] = p.id
	s.tasks[t.id] = t
	p.local = append(p.local, t)
	s.liveSpec++
	s.specSampler.Observe(p.lastTime, s.liveSpec)
	s.startTask(p, t, false)
	return true
}

// startTask (re)generates the task's operation stream and begins running
// it, charging the dynamic scheduling overhead.
func (s *Simulator) startTask(p *processor, t *task, redo bool) {
	t.reset()
	if s.pf != nil {
		// Parallel mode: the stream was pregenerated by a prefetch worker (or
		// is computed inline on a miss). Per-processor buffer reuse is off —
		// the streams live in worker-owned allocations.
		t.ops = s.pf.take(t.index)
	} else {
		t.ops, _ = s.gen.Task(t.index, p.opBuf)
		p.opBuf = t.ops[:0]
	}
	t.startedAt = p.lastTime
	p.cur = t
	if !redo {
		p.spend(s.cfg.DispatchOverhead, &p.bd.Busy)
	}
	s.trace(t.startedAt, TraceStart, t)
	s.obs.taskStarted()
}

// finishTask marks t finished and tries to commit.
func (s *Simulator) finishTask(p *processor, t *task) {
	t.state = taskFinished
	t.finishedAt = p.lastTime
	s.execPerTask.Observe(float64(t.finishedAt - t.startedAt))
	t.ops = nil
	p.cur = nil
	s.trace(t.finishedAt, TraceFinish, t)
	s.obs.taskFinished(t.finishedAt - t.startedAt)
	s.maybeCommit(p.lastTime)
}

// wake reschedules a stalled processor at time at.
func (s *Simulator) wake(p *processor, at event.Time) {
	s.schedule(p, at)
}
