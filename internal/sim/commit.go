package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// maybeCommit starts the commit of the token-holder task if it has finished
// executing and no commit is in flight. Commits are strictly serialized:
// that serialization is the commit wavefront of Figure 6.
func (s *Simulator) maybeCommit(now event.Time) {
	if s.committing != nil || s.done {
		return
	}
	head := s.order.Head()
	t := s.tasks[head]
	if t == nil || t.state != taskFinished {
		return
	}
	p := s.procs[t.proc]

	start := now
	if s.tokenFreeAt > start {
		start = s.tokenFreeAt
	}
	if s.lastCommitBy != t.proc {
		start += s.cfg.TokenPass
	}
	dur := s.commitDuration(p, t)
	t.commitStart = start
	s.committing = t
	s.trace(start, TraceCommitStart, t)

	if s.commitDone == nil {
		// One closure for every commit of the run: commits are serialized, so
		// the committing task is always s.committing when the event fires.
		s.commitDone = func(done event.Time) { s.finishCommit(s.committing, done) }
	}
	// The commit-done event lives on the committing task's node lane.
	s.commitHandle = s.qAt(t.proc, start+dur, s.commitDone)
}

// commitDuration is the time the task holds the commit token.
//
//   - Eager AMM writes back every dirty line of the task — cached lines at
//     the pipelined per-line cost, overflowed lines with an overflow-area
//     retrieval each ("an overflow area is slow when asked to return
//     versions, which especially hurts when committing a task").
//   - Lazy AMM only passes the token — except for overflowed speculative
//     lines, which cannot linger (the overflow area holds speculative state
//     only) and must merge now.
//   - FMM just commits: the versions already live in the future memory
//     image.
func (s *Simulator) commitDuration(p *processor, t *task) event.Time {
	dur := s.cfg.CommitFixed
	ovf := p.ovf.TaskCount(t.id)
	// Overflow-area retrievals do not pipeline: the area is a sequentially
	// accessed region of local memory, "slow when asked to return versions,
	// which especially hurts when committing a task".
	ovfLine := s.cfg.LatOverflow + s.cfg.CommitPerLine
	switch {
	case s.scheme.MergesAtCommit():
		cached := p.l2.CountWhere(func(l *memsys.Line) bool {
			return l.Producer == t.id && l.Kind == memsys.KindOwnVersion
		})
		perLine := s.cfg.CommitPerLine
		if s.orbCommit {
			// ORB-style merge: ownership requests instead of write-backs.
			perLine = s.cfg.ORBPerLine
		}
		dur += event.Time(cached) * perLine
		dur += event.Time(ovf) * ovfLine
	case s.scheme.KeepsCommittedVersionsInCache():
		dur += event.Time(ovf) * ovfLine
	default: // FMM
	}
	if s.inject != nil {
		dur += s.inject.CommitStall()
	}
	return dur
}

// finishCommit completes the commit of t: merges or re-labels its versions,
// finalizes statistics, advances the token, and wakes whoever was waiting.
func (s *Simulator) finishCommit(t *task, now event.Time) {
	p := s.procs[t.proc]
	s.checkCommitStart(t, now)
	s.tokenFreeAt = now
	s.lastCommitBy = t.proc
	s.commitPerTask.Observe(float64(now - t.commitStart))
	s.trace(now, TraceCommitEnd, t)
	s.obs.commitDone(now - t.commitStart)
	s.obs.poll(now)

	if !s.scheme.MultipleTasksPerProc() {
		// The SingleT processor performed the merge itself: the wait until
		// the token arrived is task stall (already the processor's wait
		// kind); the merge itself is commit work.
		p.account(t.commitStart)
		p.wait = waitCommit
	}

	// Dispose of the task's versions according to the merging policy. An
	// overflowed version merged at commit goes through the VCL when
	// committed versions may linger in caches (Lazy, ORB): the merge must
	// also invalidate the now-superseded older committed versions, or a
	// later displacement of one of them would overwrite memory backwards.
	switch {
	case s.scheme.MergesAtCommit():
		p.l2.ForEach(func(l *memsys.Line) {
			if l.Producer == t.id && l.Kind == memsys.KindOwnVersion {
				if s.orbCommit {
					// Ownership acquired; the data merges on displacement.
					l.Kind = memsys.KindCommitted
				} else {
					s.memWriteBack(l.Tag, t.id, now)
					l.Kind = memsys.KindCopy // now a clean copy of architectural data
				}
			}
		})
		p.ovf.DrainTask(t.id, func(line memsys.LineAddr, _ memsys.WordMask) {
			if s.orbCommit {
				s.vclWriteBack(p, line, t.id)
			} else {
				s.memWriteBack(line, t.id, now)
			}
		})
	case s.scheme.KeepsCommittedVersionsInCache():
		p.l2.ForEach(func(l *memsys.Line) {
			if l.Producer == t.id && l.Kind == memsys.KindOwnVersion {
				l.Kind = memsys.KindCommitted
			}
		})
		p.ovf.DrainTask(t.id, func(line memsys.LineAddr, _ memsys.WordMask) {
			if s.forceMTID {
				s.memWriteBack(line, t.id, now)
			} else {
				s.vclWriteBack(p, line, t.id)
			}
		})
	default: // FMM
		p.l2.ForEach(func(l *memsys.Line) {
			if l.Producer == t.id && l.Kind == memsys.KindOwnVersion {
				l.Kind = memsys.KindCommitted
			}
		})
		p.mhb.ReleaseCommitted(t.id)
	}
	// Cleared only after the merges: checkWriteBack treats the committing
	// task's own write-backs as legitimate.
	s.committing = nil
	s.checkCommitEnd(p, t, now)

	// Verify the sequential-semantics invariant on the task's cross-task
	// reads: at commit, every communication read must have observed the
	// producer the sequential order dictates. Coarse-recovery schemes are
	// exempt mid-run — their stale reads are what the end-of-section test
	// catches and the serial re-execution repairs.
	if oracle, ok := s.gen.(OrderOracle); ok && !s.scheme.Coarse {
		for _, cr := range t.consumed {
			s.oracleChecks++
			wantIdx := oracle.SequentialOrderOracle(cr.addr, t.index)
			want := ids.None
			if wantIdx >= 0 {
				want = ids.TaskID(wantIdx + 1)
			}
			if cr.producer != want {
				s.oracleViolations++
			}
		}
	}

	// Footprint statistics (Figure 1).
	s.footBytes.Observe(float64(t.wordsWritten * memsys.WordBytes))
	if t.wordsWritten > 0 {
		s.footPrivFrac.Observe(float64(t.privWords) / float64(t.wordsWritten))
	}

	s.dir.Commit(t.id)
	s.order.Advance(t.id)
	t.state = taskCommitted
	s.commits++
	delete(s.tasks, t.id)
	p.removeLocal(t)
	s.liveSpec--
	s.specSampler.Observe(now, s.liveSpec)

	// Wake MultiT&SV writers stalled on this task's version.
	for _, wp := range s.waiters[t.id] {
		s.wake(wp, now)
	}
	delete(s.waiters, t.id)

	if s.order.Done() {
		s.finishSection(now)
		return
	}
	// The owner (SingleT) can now start a new task; and the next task may
	// already be waiting for the token.
	s.wake(p, now)
	// Completing an invocation lifts the dispatch barrier for every
	// processor idling on it.
	if inv := s.gen.TasksPerInvocation(); inv > 0 && (t.index+1)%inv == 0 {
		for _, wp := range s.procs {
			s.wake(wp, now)
		}
	}
	s.maybeCommit(now)
	// Commit boundary: the pending schedule is fully described by the
	// simulator's own bookkeeping, so this is where checkpoints are taken
	// and interrupts serviced (a no-op for runs without a sink).
	s.afterCommit()
}

// finishSection ends the run. Committed versions still lingering in caches
// (Lazy AMM, ORB, and uncollected FMM future state) are merged with memory
// by a final background pass, one per processor in parallel — the diamonds
// at the end of Figure 6-(b). Only the lazy/ORB merge is on the timing
// path; the FMM flush is bookkeeping (its versions are already part of the
// future memory image and could displace at any time).
func (s *Simulator) finishSection(now event.Time) {
	end := now
	charge := s.scheme.KeepsCommittedVersionsInCache() || s.orbCommit
	// Gather the latest committed version of every lingering line across
	// all caches (the VCL/MTID outcome), then merge once per line.
	latest := map[memsys.LineAddr]ids.TaskID{}
	for _, p := range s.procs {
		lines := 0
		p.l2.ForEach(func(l *memsys.Line) {
			if l.Kind == memsys.KindCommitted {
				if cur, ok := latest[l.Tag]; !ok || l.Producer.After(cur) {
					latest[l.Tag] = l.Producer
				}
				lines++
			}
		})
		if charge {
			if done := now + event.Time(lines)*s.cfg.FinalMergeLine; done > end {
				end = done
			}
		}
	}
	for tag, producer := range latest {
		s.memWriteBack(tag, producer, now)
	}
	if s.scheme.Coarse && s.coarseViolated {
		end = s.coarseRecover(end)
	}
	s.checkSectionEnd(end)
	s.done = true
	s.endTime = end
	for _, p := range s.procs {
		p.account(end)
	}
	s.specSampler.Observe(end, 0)
	s.obs.force(end)
}
