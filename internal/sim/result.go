package sim

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Result is everything one simulation run reports.
type Result struct {
	Machine string
	App     string
	Scheme  core.Scheme

	// ExecCycles is the wall-clock length of the speculative section,
	// including any end-of-section lazy merge.
	ExecCycles event.Time

	// Events is the number of simulation events fired during the run — the
	// denominator of the simulator's own events/sec throughput metric.
	Events uint64

	// PerProc are the per-processor time breakdowns; Agg is their sum.
	PerProc []stats.Breakdown
	Agg     stats.Breakdown

	// Task accounting.
	Tasks         int
	Commits       int
	SquashEvents  int
	TasksSquashed int

	// Figure 1 statistics.
	AvgSpecTasksSystem  float64
	AvgSpecTasksPerProc float64
	AvgFootprintBytes   float64
	AvgPrivFrac         float64

	// Table 3 statistics: per-task execution and commit durations and their
	// ratio (the Commit/Execution Ratio, in percent).
	AvgExecPerTask   float64
	AvgCommitPerTask float64

	// Mechanism activity.
	OverflowSpills     uint64
	OverflowRetrievals uint64
	VCLMerges          uint64
	FMMWritebacks      uint64
	MHBAppends         uint64
	MHBRestored        uint64
	MemWritebacks      uint64
	MemRejected        uint64
	DirReads           uint64
	DirWrites          uint64
	Violations         uint64

	// Protocol-correctness verification: committed cross-task reads checked
	// against the sequential-order oracle, and how many observed the wrong
	// version (must be zero).
	OracleChecks     int
	OracleViolations int

	// Contention observed.
	BankQueueCycles event.Time
	IfQueueCycles   event.Time

	// Trace is the execution timeline (only recorded after EnableTrace).
	Trace []TraceEvent
}

// CommitExecRatio returns the Commit/Execution Ratio in percent.
func (r Result) CommitExecRatio() float64 {
	if r.AvgExecPerTask == 0 {
		return 0
	}
	return 100 * r.AvgCommitPerTask / r.AvgExecPerTask
}

// SquashesPerTask returns squashed task executions per committed task.
func (r Result) SquashesPerTask() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.TasksSquashed) / float64(r.Commits)
}

// Speedup returns seq/r.ExecCycles given a sequential baseline time.
func (r Result) Speedup(seq event.Time) float64 {
	if r.ExecCycles == 0 {
		return 0
	}
	return float64(seq) / float64(r.ExecCycles)
}

// collect builds the Result after the run has completed.
func (s *Simulator) collect() Result {
	r := Result{
		Machine:    s.cfg.Name,
		App:        s.gen.Name(),
		Scheme:     s.scheme,
		ExecCycles: s.endTime,
		Events:     s.qFired(),

		Tasks:         s.total,
		Commits:       s.commits,
		SquashEvents:  s.squashEvents,
		TasksSquashed: s.tasksSquashed,

		AvgSpecTasksSystem: s.specSampler.Mean(s.endTime),
		AvgFootprintBytes:  s.footBytes.Value(),
		AvgPrivFrac:        s.footPrivFrac.Value(),
		AvgExecPerTask:     s.execPerTask.Value(),
		AvgCommitPerTask:   s.commitPerTask.Value(),

		VCLMerges:     s.vclMerges,
		FMMWritebacks: s.fmmWritebacks,

		OracleChecks:     s.oracleChecks,
		OracleViolations: s.oracleViolations,

		BankQueueCycles: s.net.QueueDelay(),
		IfQueueCycles:   s.net.IfDelay(),

		Trace: s.traceLog,
	}
	r.AvgSpecTasksPerProc = r.AvgSpecTasksSystem / float64(len(s.procs))
	for _, p := range s.procs {
		r.PerProc = append(r.PerProc, p.bd)
		spills, retrievals, _ := p.ovf.Stats()
		r.OverflowSpills += spills
		r.OverflowRetrievals += retrievals
		appends, restored, _ := p.mhb.Stats()
		r.MHBAppends += appends
		r.MHBRestored += restored
	}
	r.Agg = stats.Sum(r.PerProc)
	r.MemWritebacks, r.MemRejected = s.mem.Stats()
	r.DirReads, r.DirWrites, r.Violations = s.dir.Stats()
	return r
}

// Run is the package-level convenience: build and run one simulation.
func Run(cfg *machine.Config, scheme core.Scheme, prof workload.Profile, seed uint64) Result {
	gen := workload.NewGenerator(prof, seed)
	return New(cfg, scheme, gen).Run()
}

// RunSequential measures the sequential-execution baseline used for
// speedups: the same tasks run back-to-back on one processor of the same
// technology with all data in the local memory module and no speculation
// machinery (no merges, no token, no versioning overheads beyond plain
// caching).
func RunSequential(cfg *machine.Config, prof workload.Profile, seed uint64) Result {
	return NewSequential(cfg, prof, seed).Run()
}

// NewSequential builds (without running) the sequential-baseline simulator
// RunSequential uses, so callers that checkpoint or interrupt runs can treat
// baselines like any other simulation.
func NewSequential(cfg *machine.Config, prof workload.Profile, seed uint64) *Simulator {
	seq := machine.Sequential(cfg)
	seq.CommitPerLine = 0
	seq.CommitFixed = 0
	seq.TokenPass = 0
	seq.DispatchOverhead = 0
	gen := workload.NewGenerator(prof, seed)
	return New(seq, core.SingleTEager, gen)
}
