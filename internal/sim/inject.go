package sim

import (
	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/memsys"
)

// FaultInjector is the seam through which a fault plan (internal/fault)
// perturbs a run. Each method is one named hook point; the simulator calls
// them in a deterministic order, so an injector drawing decisions from a
// seeded stream makes the whole faulty run replayable. With no injector
// installed every hook site is a nil check and the simulation is identical
// to one built without fault support.
type FaultInjector interface {
	// SpuriousSquash decides whether a conflict-free write should deliver a
	// violation message anyway.
	SpuriousSquash() bool
	// MessageDelay returns extra latency for the current remote transfer or
	// memory round trip (0 = on time).
	MessageDelay() event.Time
	// ForceOverflow decides whether a cache insert that found a free way
	// must victimize a resident line anyway (capacity theft).
	ForceOverflow() bool
	// CommitStall returns extra cycles the current commit holds the token.
	CommitStall() event.Time
	// FlipTag decides whether to corrupt a cached version tag after the
	// current store — deliberate corruption used to validate the invariant
	// checker, not survivable stress.
	FlipTag() bool
	// Pick chooses a fault target index in [0, n).
	Pick(n int) int
}

// InjectFaults installs a fault injector. Call before Run; a nil injector
// is a no-op.
func (s *Simulator) InjectFaults(fi FaultInjector) {
	if fi == nil {
		return
	}
	s.inject = fi
	for _, p := range s.procs {
		p.l2.SetPressure(fi.ForceOverflow)
	}
	s.dir.SetSpuriousConflict(func(readers []ids.TaskID) ids.TaskID {
		if !fi.SpuriousSquash() {
			return ids.None
		}
		// Never pick the commit-token holder: a finishCommit event may
		// already be in flight for it, and a genuine out-of-order RAW cannot
		// hit it either (no uncommitted predecessor writer exists).
		head := s.order.Head()
		for _, r := range readers {
			if !r.After(head) {
				continue
			}
			if t := s.tasks[r]; t != nil && t.state != taskCommitted {
				return r
			}
		}
		return ids.None
	})
}

// faultDelay returns injected extra transfer latency (0 with no injector).
func (s *Simulator) faultDelay() event.Time {
	if s.inject == nil {
		return 0
	}
	return s.inject.MessageDelay()
}

// maybeFlipTag corrupts the producer tag of one dirty line in p's L2 when
// the injector fires. The flip prefers an earlier task ID (the corrupted
// version then poses as older — committed or architectural — state), which
// a correct protocol can neither absorb nor repair: the invariant checker
// or the final-memory verification must flag the run.
func (s *Simulator) maybeFlipTag(p *processor) {
	if s.inject == nil || !s.inject.FlipTag() {
		return
	}
	var dirty []*memsys.Line
	p.l2.ForEach(func(l *memsys.Line) {
		if l.Dirty() {
			dirty = append(dirty, l)
		}
	})
	if len(dirty) == 0 {
		return
	}
	l := dirty[s.inject.Pick(len(dirty))]
	if l.Producer > ids.First {
		l.Producer--
	} else {
		l.Producer++
	}
}

// InjectedSquashes returns how many squash triggers were injected rather
// than detected.
func (s *Simulator) InjectedSquashes() uint64 { return s.dir.InjectedConflicts() }
