package sim

import (
	"testing"

	"repro/internal/event"
	"repro/internal/ids"
	"repro/internal/stats"
)

func TestPushRedoKeepsIDOrder(t *testing.T) {
	p := &processor{}
	two := &task{id: 2}
	for _, tk := range []*task{{id: 5}, two, {id: 9}, two, {id: 7}} {
		p.pushRedo(tk) // re-pushing the same task is ignored
	}
	seen := map[ids.TaskID]bool{}
	var prev ids.TaskID
	n := 0
	for {
		rt := p.popRedo()
		if rt == nil {
			break
		}
		n++
		if rt.id.Before(prev) {
			t.Fatalf("redo out of order: %v after %v", rt.id, prev)
		}
		prev = rt.id
		seen[rt.id] = true
	}
	if n != 4 || !seen[2] || !seen[5] || !seen[7] || !seen[9] {
		t.Fatalf("redo contents wrong: %d tasks, %v", n, seen)
	}
}

func TestPushRedoDeduplicatesSameTask(t *testing.T) {
	p := &processor{}
	tk := &task{id: 3}
	p.pushRedo(tk)
	p.pushRedo(tk)
	if len(p.redo) != 1 {
		t.Fatalf("redo length = %d, want 1", len(p.redo))
	}
}

func TestPopRedoEmpty(t *testing.T) {
	p := &processor{}
	if p.popRedo() != nil {
		t.Fatal("popRedo on empty queue returned a task")
	}
}

func TestRemoveLocal(t *testing.T) {
	p := &processor{}
	a, b, c := &task{id: 1}, &task{id: 2}, &task{id: 3}
	p.local = []*task{a, b, c}
	p.removeLocal(b)
	if len(p.local) != 2 || p.local[0] != a || p.local[1] != c {
		t.Fatalf("local after removal: %v", p.local)
	}
	p.removeLocal(&task{id: 9}) // absent: no-op
	if len(p.local) != 2 {
		t.Fatal("removing an absent task changed the list")
	}
}

func TestWaitKindCharging(t *testing.T) {
	cases := []struct {
		w    waitKind
		pick func(stats.Breakdown) event.Time
	}{
		{waitToken, func(b stats.Breakdown) event.Time { return b.StallTask }},
		{waitVersion, func(b stats.Breakdown) event.Time { return b.StallTask }},
		{waitCommit, func(b stats.Breakdown) event.Time { return b.StallCommit }},
		{waitRecovery, func(b stats.Breakdown) event.Time { return b.StallRecovery }},
		{waitIdle, func(b stats.Breakdown) event.Time { return b.StallIdle }},
		{waitNone, func(b stats.Breakdown) event.Time { return b.StallIdle }},
	}
	for _, c := range cases {
		var bd stats.Breakdown
		c.w.charge(&bd, 42)
		if got := c.pick(bd); got != 42 {
			t.Errorf("wait kind %d charged wrong category (picked %d)", c.w, got)
		}
		if bd.Total() != 42 {
			t.Errorf("wait kind %d charged %d total, want 42", c.w, bd.Total())
		}
	}
}

func TestAccountAttributesGapToWaitKind(t *testing.T) {
	p := &processor{}
	p.lastTime = 100
	p.wait = waitToken
	p.account(150)
	if p.bd.StallTask != 50 {
		t.Fatalf("StallTask = %d, want 50", p.bd.StallTask)
	}
	if p.lastTime != 150 {
		t.Fatalf("lastTime = %d, want 150", p.lastTime)
	}
	// Accounting backwards or to the same time is a no-op.
	p.account(150)
	p.account(120)
	if p.bd.Total() != 50 {
		t.Fatal("repeated account changed the books")
	}
}

func TestSpendAdvancesLocalTime(t *testing.T) {
	p := &processor{}
	p.spend(30, &p.bd.Busy)
	p.spend(12, &p.bd.StallMem)
	if p.lastTime != 42 || p.bd.Busy != 30 || p.bd.StallMem != 12 {
		t.Fatalf("spend bookkeeping wrong: %+v at %d", p.bd, p.lastTime)
	}
}
