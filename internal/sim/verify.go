package sim

import (
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// VerifyFinalMemory checks, after Run has completed, that the main-memory
// version image equals the outcome of sequential execution: for every line
// the section wrote, memory holds the version of the LAST task (in
// sequential order) that wrote it. Under AMM this is the architectural
// state produced by in-order commits plus VCL-ordered lazy merging; under
// FMM it is the future state filtered by MTID and repaired by undo-log
// recovery. It returns the number of lines checked and how many hold the
// wrong version (which must be zero for a correct protocol).
//
// The check replays the deterministic workload to compute the sequential
// last-writer per line, so it costs one generation pass over all tasks.
func (s *Simulator) VerifyFinalMemory() (checked, wrong int) {
	if !s.done {
		panic("sim: VerifyFinalMemory before Run completed")
	}
	last := make(map[memsys.LineAddr]ids.TaskID)
	var buf []workload.Op
	for idx := 0; idx < s.total; idx++ {
		buf, _ = s.gen.Task(idx, buf[:0])
		for _, op := range buf {
			if op.Kind == workload.OpWrite {
				last[op.Addr.Line()] = ids.TaskID(idx + 1)
			}
		}
	}
	for line, want := range last {
		checked++
		if got := s.mem.Version(line); got != want {
			wrong++
		}
	}
	return checked, wrong
}
