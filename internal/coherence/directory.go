// Package coherence implements the version-ordering side of the speculative
// parallelization protocol the evaluation uses for every buffering scheme
// (Section 4.1): it "supports multiple concurrent versions of the same
// variable in the system, and triggers squashes only on out-of-order RAWs
// to the same word", with a single task-ID tag per cache line.
//
// The directory is the centralized bookkeeping of that protocol: per-word
// version lists ordered by producer task ID, and per-word read marks used
// to detect out-of-order RAWs. Physical placement of version data (which
// cache, the overflow area, or memory) is tracked by the simulator; the
// directory answers the ordering questions: which producer's version must
// a reader observe, and does a write violate a recorded read.
//
// The bookkeeping is arena-backed and allocation-free in steady state: word
// entries live in one slice and are recycled through a free list (their
// version and reader slices keep their capacity), per-task footprint marks
// are recycled through a ring keyed by task ID, and the hot paths
// (RecordRead, RecordWrite, VersionFor, Squash, Commit) use manual binary
// searches and insertion sorts instead of the closure-allocating sort
// package helpers.
package coherence

import (
	"repro/internal/ids"
	"repro/internal/memsys"
	"repro/internal/obs"
)

// readerMark records that an uncommitted reader observed the version of one
// producer (None = pre-section architectural data). Keeping the minimum
// observed producer makes the violation check conservative and exact: a
// later write W violates reader R iff W is ordered after the oldest value R
// consumed and before R itself.
type readerMark struct {
	reader   ids.TaskID
	consumed ids.TaskID
}

// wordState is the directory entry for one word. Word entries are pooled:
// when a squash or commit empties one it returns to the Directory's free
// list with its slice capacity intact.
type wordState struct {
	// versions holds the producers of live versions, ascending by task ID.
	versions []ids.TaskID
	// readers holds the uncommitted readers' marks, in first-read order
	// (small-N: scanned linearly).
	readers []readerMark
}

// taskMarks remembers which words a task touched so that squash and commit
// can clean up in time proportional to the task's footprint.
type taskMarks struct {
	writes []memsys.Addr
	reads  []memsys.Addr
}

// taskSlot is one entry of the task-marks ring: live task IDs occupy the
// slot at index id mod ring-size. Uncommitted tasks form a dense ID window,
// so the ring only grows when the window outgrows it, and committed or
// squashed tasks return their marks to the free pool.
type taskSlot struct {
	id ids.TaskID
	m  *taskMarks
}

// Directory is the global version directory of one speculative section.
type Directory struct {
	// words maps a word address to its entry's index in states.
	words  map[memsys.Addr]int32
	states []wordState
	// freeWords indexes recycled (emptied) entries of states.
	freeWords []int32

	// slots is the task-marks ring (power-of-two length); marksFree pools
	// released marks.
	slots     []taskSlot
	marksFree []*taskMarks

	// scratch backs laterReaders; prunedBuf backs Commit's return value.
	scratch   []ids.TaskID
	prunedBuf []PrunedVersion

	// Statistics.
	violations uint64
	reads      uint64
	writes     uint64

	// Observability mirrors of the statistics (nil = disabled, free).
	obsReads      *obs.Counter
	obsWrites     *obs.Counter
	obsViolations *obs.Counter

	// spurious, when non-nil, is the fault-injection hook consulted by a
	// conflict-free RecordWrite: given the word's uncommitted readers ordered
	// after the writer (ascending), it may name one to squash as if an
	// out-of-order RAW had been detected. Injected conflicts are counted
	// apart from genuine violations.
	spurious func(readers []ids.TaskID) ids.TaskID
	injected uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		words: make(map[memsys.Addr]int32),
	}
}

// lowerBound returns the first index i with !v[i].Before(t) (i.e. v[i] >= t)
// in the ascending version list v.
func lowerBound(v []ids.TaskID, t ids.TaskID) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].Before(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i with v[i].After(t) in the ascending
// version list v.
func upperBound(v []ids.TaskID, t ids.TaskID) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].After(t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// wordFor returns the entry for word a, creating it (from the free list
// when possible) on first touch.
func (d *Directory) wordFor(a memsys.Addr) *wordState {
	if i, ok := d.words[a]; ok {
		return &d.states[i]
	}
	var i int32
	if n := len(d.freeWords); n > 0 {
		i = d.freeWords[n-1]
		d.freeWords = d.freeWords[:n-1]
	} else {
		d.states = append(d.states, wordState{})
		i = int32(len(d.states) - 1)
	}
	d.words[a] = i
	return &d.states[i]
}

// releaseWord recycles an emptied entry: squash-storm sections (Euler)
// would otherwise leak directory entries for words that are no longer live.
func (d *Directory) releaseWord(a memsys.Addr, i int32) {
	w := &d.states[i]
	w.versions = w.versions[:0]
	w.readers = w.readers[:0]
	delete(d.words, a)
	d.freeWords = append(d.freeWords, i)
}

// marks returns task t's footprint marks, claiming a ring slot (and a
// pooled marks struct) on first touch.
func (d *Directory) marks(t ids.TaskID) *taskMarks {
	for {
		if len(d.slots) == 0 {
			d.slots = make([]taskSlot, 64)
		}
		s := &d.slots[int(uint64(t)&uint64(len(d.slots)-1))]
		if s.m == nil {
			var m *taskMarks
			if n := len(d.marksFree); n > 0 {
				m = d.marksFree[n-1]
				d.marksFree = d.marksFree[:n-1]
			} else {
				m = &taskMarks{}
			}
			*s = taskSlot{id: t, m: m}
			return m
		}
		if s.id == t {
			return s.m
		}
		// Live collision: the uncommitted-task window outgrew the ring.
		d.growSlots()
	}
}

// growSlots doubles the ring until every live task hashes to its own slot.
// Live IDs form a window no wider than the uncommitted-task count, so a
// large enough power-of-two ring always separates them.
func (d *Directory) growSlots() {
	old := d.slots
	for size := 2 * len(old); ; size *= 2 {
		slots := make([]taskSlot, size)
		ok := true
		for _, s := range old {
			if s.m == nil {
				continue
			}
			dst := &slots[int(uint64(s.id)&uint64(size-1))]
			if dst.m != nil {
				ok = false
				break
			}
			*dst = s
		}
		if ok {
			d.slots = slots
			return
		}
	}
}

// lookupMarks returns t's marks or nil without claiming a slot.
func (d *Directory) lookupMarks(t ids.TaskID) *taskMarks {
	if len(d.slots) == 0 {
		return nil
	}
	s := &d.slots[int(uint64(t)&uint64(len(d.slots)-1))]
	if s.m != nil && s.id == t {
		return s.m
	}
	return nil
}

// releaseMarks recycles t's marks struct and frees its ring slot.
func (d *Directory) releaseMarks(t ids.TaskID) {
	s := &d.slots[int(uint64(t)&uint64(len(d.slots)-1))]
	m := s.m
	m.writes = m.writes[:0]
	m.reads = m.reads[:0]
	d.marksFree = append(d.marksFree, m)
	*s = taskSlot{}
}

// VersionFor returns the producer whose version a read by reader must
// observe: the highest-ID producer at or before reader. None means the
// architectural (pre-section) value.
func (d *Directory) VersionFor(a memsys.Addr, reader ids.TaskID) ids.TaskID {
	i, ok := d.words[a]
	if !ok {
		return ids.None
	}
	v := d.states[i].versions
	// First version strictly after reader; the one before it is the answer.
	j := upperBound(v, reader)
	if j == 0 {
		return ids.None
	}
	return v[j-1]
}

// RecordRead registers that reader consumed the current correct version of
// word a and returns that version's producer. The read mark stays until the
// reader commits or is squashed.
func (d *Directory) RecordRead(a memsys.Addr, reader ids.TaskID) ids.TaskID {
	d.reads++
	d.obsReads.Inc()
	producer := d.VersionFor(a, reader)
	w := d.wordFor(a)
	for i := range w.readers {
		if w.readers[i].reader == reader {
			if producer.Before(w.readers[i].consumed) {
				w.readers[i].consumed = producer
			}
			return producer
		}
	}
	w.readers = append(w.readers, readerMark{reader: reader, consumed: producer})
	m := d.marks(reader)
	m.reads = append(m.reads, a)
	return producer
}

// RecordWrite registers a new version of word a produced by writer and
// checks for an out-of-order RAW: any uncommitted reader ordered after
// writer that consumed a version ordered before writer should have read
// this value. It returns the earliest such reader (the task to squash,
// together with its successors), or None when the write is safe.
//
// A task has at most a single version of any given variable, so a repeated
// write by the same task is idempotent here.
func (d *Directory) RecordWrite(a memsys.Addr, writer ids.TaskID) ids.TaskID {
	d.writes++
	d.obsWrites.Inc()
	w := d.wordFor(a)
	i := lowerBound(w.versions, writer)
	if i == len(w.versions) || w.versions[i] != writer {
		w.versions = append(w.versions, ids.None)
		copy(w.versions[i+1:], w.versions[i:])
		w.versions[i] = writer
		m := d.marks(writer)
		m.writes = append(m.writes, a)
	}
	victim := ids.None
	for _, rm := range w.readers {
		if rm.reader.After(writer) && rm.consumed.Before(writer) {
			if victim == ids.None || rm.reader.Before(victim) {
				victim = rm.reader
			}
		}
	}
	if victim != ids.None {
		d.violations++
		d.obsViolations.Inc()
	} else if d.spurious != nil {
		if v := d.spurious(d.laterReaders(w, writer)); v != ids.None {
			victim = v
			d.injected++
		}
	}
	return victim
}

// laterReaders returns the readers of w ordered after writer, ascending,
// in a scratch buffer reused across calls (valid until the next
// RecordWrite). The sort keeps fault injection deterministic.
func (d *Directory) laterReaders(w *wordState, writer ids.TaskID) []ids.TaskID {
	out := d.scratch[:0]
	for _, rm := range w.readers {
		if !rm.reader.After(writer) {
			continue
		}
		i := len(out)
		out = append(out, rm.reader)
		for i > 0 && out[i].Before(out[i-1]) {
			out[i], out[i-1] = out[i-1], out[i]
			i--
		}
	}
	d.scratch = out
	return out
}

// SetObs installs observability counters mirroring the directory's
// statistics. Nil counters (the default) are free no-ops.
func (d *Directory) SetObs(reads, writes, violations *obs.Counter) {
	d.obsReads = reads
	d.obsWrites = writes
	d.obsViolations = violations
}

// SetSpuriousConflict installs the fault-injection hook consulted on every
// conflict-free write; nil (the default) disables injection.
func (d *Directory) SetSpuriousConflict(h func(readers []ids.TaskID) ids.TaskID) {
	d.spurious = h
}

// InjectedConflicts returns how many squashes were injected rather than
// detected; they are excluded from the violations statistic.
func (d *Directory) InjectedConflicts() uint64 { return d.injected }

// removeReader deletes t's mark from w (order among remaining marks is
// irrelevant: the violation scan takes a minimum and laterReaders sorts).
func removeReader(w *wordState, t ids.TaskID) {
	for i := range w.readers {
		if w.readers[i].reader == t {
			last := len(w.readers) - 1
			w.readers[i] = w.readers[last]
			w.readers = w.readers[:last]
			return
		}
	}
}

// Squash removes every version produced and every read mark left by task t,
// deleting word entries the removal empties. The simulator calls it for
// each squashed task before re-execution.
func (d *Directory) Squash(t ids.TaskID) {
	m := d.lookupMarks(t)
	if m == nil {
		return
	}
	for _, a := range m.writes {
		i, ok := d.words[a]
		if !ok {
			continue
		}
		w := &d.states[i]
		j := lowerBound(w.versions, t)
		if j < len(w.versions) && w.versions[j] == t {
			w.versions = append(w.versions[:j], w.versions[j+1:]...)
		}
		if len(w.versions) == 0 && len(w.readers) == 0 {
			d.releaseWord(a, i)
		}
	}
	for _, a := range m.reads {
		i, ok := d.words[a]
		if !ok {
			continue
		}
		w := &d.states[i]
		removeReader(w, t)
		if len(w.versions) == 0 && len(w.readers) == 0 {
			d.releaseWord(a, i)
		}
	}
	d.releaseMarks(t)
}

// Commit finalizes task t: its read marks are dropped (no uncommitted
// predecessor writer can exist any more) and versions it superseded are
// pruned (no live reader can ever need a version older than a committed
// one). Pruned producers are reported so the simulator can drop any
// lingering storage for them; the returned slice is reused by the next
// Commit call and must not be retained.
func (d *Directory) Commit(t ids.TaskID) []PrunedVersion {
	m := d.lookupMarks(t)
	if m == nil {
		return nil
	}
	pruned := d.prunedBuf[:0]
	for _, a := range m.reads {
		i, ok := d.words[a]
		if !ok {
			continue
		}
		w := &d.states[i]
		removeReader(w, t)
		if len(w.versions) == 0 && len(w.readers) == 0 {
			d.releaseWord(a, i)
		}
	}
	for _, a := range m.writes {
		i, ok := d.words[a]
		if !ok {
			continue
		}
		w := &d.states[i]
		j := lowerBound(w.versions, t)
		for _, old := range w.versions[:j] {
			pruned = append(pruned, PrunedVersion{Addr: a, Producer: old})
		}
		if j > 0 {
			w.versions = append(w.versions[:0], w.versions[j:]...)
		}
		if len(w.versions) == 0 && len(w.readers) == 0 {
			d.releaseWord(a, i)
		}
	}
	d.releaseMarks(t)
	d.prunedBuf = pruned
	if len(pruned) == 0 {
		return nil
	}
	return pruned
}

// PrunedVersion names a superseded version removed at commit time.
type PrunedVersion struct {
	Addr     memsys.Addr
	Producer ids.TaskID
}

// WordsWritten returns the number of distinct words task t has live writes
// for (its written footprint, in words).
func (d *Directory) WordsWritten(t ids.TaskID) int {
	if m := d.lookupMarks(t); m != nil {
		return len(m.writes)
	}
	return 0
}

// WrittenAddrs returns the distinct words task t has live writes for.
func (d *Directory) WrittenAddrs(t ids.TaskID) []memsys.Addr {
	if m := d.lookupMarks(t); m != nil {
		return m.writes
	}
	return nil
}

// LiveWords returns the number of directory entries (for memory-bound
// tests). Entries emptied by squash or commit cleanup are deleted, so this
// shrinks when words stop being live.
func (d *Directory) LiveWords() int { return len(d.words) }

// LiveTasks returns the number of tasks with live footprint marks.
func (d *Directory) LiveTasks() int {
	n := 0
	for _, s := range d.slots {
		if s.m != nil {
			n++
		}
	}
	return n
}

// VersionCount returns the number of live versions of word a.
func (d *Directory) VersionCount(a memsys.Addr) int {
	if i, ok := d.words[a]; ok {
		return len(d.states[i].versions)
	}
	return 0
}

// Stats returns cumulative (reads, writes, violations detected).
func (d *Directory) Stats() (reads, writes, violations uint64) {
	return d.reads, d.writes, d.violations
}
