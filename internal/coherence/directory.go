// Package coherence implements the version-ordering side of the speculative
// parallelization protocol the evaluation uses for every buffering scheme
// (Section 4.1): it "supports multiple concurrent versions of the same
// variable in the system, and triggers squashes only on out-of-order RAWs
// to the same word", with a single task-ID tag per cache line.
//
// The directory is the centralized bookkeeping of that protocol: per-word
// version lists ordered by producer task ID, and per-word read marks used
// to detect out-of-order RAWs. Physical placement of version data (which
// cache, the overflow area, or memory) is tracked by the simulator; the
// directory answers the ordering questions: which producer's version must
// a reader observe, and does a write violate a recorded read.
package coherence

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/memsys"
)

// wordState is the directory entry for one word.
type wordState struct {
	// versions holds the producers of live versions, ascending by task ID.
	versions []ids.TaskID
	// readers maps an uncommitted reader task to the earliest producer
	// whose version it observed (None = pre-section architectural data).
	// Keeping the minimum makes the violation check conservative and exact:
	// a later write W violates reader R iff W is ordered after the oldest
	// value R consumed and before R itself.
	readers map[ids.TaskID]ids.TaskID
}

// taskMarks remembers which words a task touched so that squash and commit
// can clean up in time proportional to the task's footprint.
type taskMarks struct {
	writes []memsys.Addr
	reads  []memsys.Addr
}

// Directory is the global version directory of one speculative section.
type Directory struct {
	words  map[memsys.Addr]*wordState
	byTask map[ids.TaskID]*taskMarks

	// Statistics.
	violations uint64
	reads      uint64
	writes     uint64

	// spurious, when non-nil, is the fault-injection hook consulted by a
	// conflict-free RecordWrite: given the word's uncommitted readers ordered
	// after the writer (ascending), it may name one to squash as if an
	// out-of-order RAW had been detected. Injected conflicts are counted
	// apart from genuine violations.
	spurious func(readers []ids.TaskID) ids.TaskID
	injected uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		words:  make(map[memsys.Addr]*wordState),
		byTask: make(map[ids.TaskID]*taskMarks),
	}
}

func (d *Directory) word(a memsys.Addr) *wordState {
	w := d.words[a]
	if w == nil {
		w = &wordState{}
		d.words[a] = w
	}
	return w
}

func (d *Directory) marks(t ids.TaskID) *taskMarks {
	m := d.byTask[t]
	if m == nil {
		m = &taskMarks{}
		d.byTask[t] = m
	}
	return m
}

// VersionFor returns the producer whose version a read by reader must
// observe: the highest-ID producer at or before reader. None means the
// architectural (pre-section) value.
func (d *Directory) VersionFor(a memsys.Addr, reader ids.TaskID) ids.TaskID {
	w := d.words[a]
	if w == nil {
		return ids.None
	}
	// First version strictly after reader; the one before it is the answer.
	i := sort.Search(len(w.versions), func(i int) bool { return w.versions[i].After(reader) })
	if i == 0 {
		return ids.None
	}
	return w.versions[i-1]
}

// RecordRead registers that reader consumed the current correct version of
// word a and returns that version's producer. The read mark stays until the
// reader commits or is squashed.
func (d *Directory) RecordRead(a memsys.Addr, reader ids.TaskID) ids.TaskID {
	d.reads++
	producer := d.VersionFor(a, reader)
	w := d.word(a)
	if w.readers == nil {
		w.readers = make(map[ids.TaskID]ids.TaskID)
	}
	if prev, ok := w.readers[reader]; !ok {
		w.readers[reader] = producer
		d.marks(reader).reads = append(d.marks(reader).reads, a)
	} else if producer.Before(prev) {
		w.readers[reader] = producer
	}
	return producer
}

// RecordWrite registers a new version of word a produced by writer and
// checks for an out-of-order RAW: any uncommitted reader ordered after
// writer that consumed a version ordered before writer should have read
// this value. It returns the earliest such reader (the task to squash,
// together with its successors), or None when the write is safe.
//
// A task has at most a single version of any given variable, so a repeated
// write by the same task is idempotent here.
func (d *Directory) RecordWrite(a memsys.Addr, writer ids.TaskID) ids.TaskID {
	d.writes++
	w := d.word(a)
	i := sort.Search(len(w.versions), func(i int) bool { return !w.versions[i].Before(writer) })
	if i == len(w.versions) || w.versions[i] != writer {
		w.versions = append(w.versions, ids.None)
		copy(w.versions[i+1:], w.versions[i:])
		w.versions[i] = writer
		d.marks(writer).writes = append(d.marks(writer).writes, a)
	}
	victim := ids.None
	for reader, consumed := range w.readers {
		if reader.After(writer) && consumed.Before(writer) {
			if victim == ids.None || reader.Before(victim) {
				victim = reader
			}
		}
	}
	if victim != ids.None {
		d.violations++
	} else if d.spurious != nil {
		if v := d.spurious(laterReaders(w, writer)); v != ids.None {
			victim = v
			d.injected++
		}
	}
	return victim
}

// laterReaders returns the readers of w ordered after writer, ascending.
// Map iteration order is randomized, so the slice is sorted to keep fault
// injection deterministic.
func laterReaders(w *wordState, writer ids.TaskID) []ids.TaskID {
	var out []ids.TaskID
	for r := range w.readers {
		if r.After(writer) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// SetSpuriousConflict installs the fault-injection hook consulted on every
// conflict-free write; nil (the default) disables injection.
func (d *Directory) SetSpuriousConflict(h func(readers []ids.TaskID) ids.TaskID) {
	d.spurious = h
}

// InjectedConflicts returns how many squashes were injected rather than
// detected; they are excluded from the violations statistic.
func (d *Directory) InjectedConflicts() uint64 { return d.injected }

// Squash removes every version produced and every read mark left by task t.
// The simulator calls it for each squashed task before re-execution.
func (d *Directory) Squash(t ids.TaskID) {
	m := d.byTask[t]
	if m == nil {
		return
	}
	for _, a := range m.writes {
		w := d.words[a]
		if w == nil {
			continue
		}
		i := sort.Search(len(w.versions), func(i int) bool { return !w.versions[i].Before(t) })
		if i < len(w.versions) && w.versions[i] == t {
			w.versions = append(w.versions[:i], w.versions[i+1:]...)
		}
	}
	for _, a := range m.reads {
		if w := d.words[a]; w != nil {
			delete(w.readers, t)
		}
	}
	delete(d.byTask, t)
}

// Commit finalizes task t: its read marks are dropped (no uncommitted
// predecessor writer can exist any more) and versions it superseded are
// pruned (no live reader can ever need a version older than a committed
// one). Pruned producers are reported so the simulator can drop any
// lingering storage for them.
func (d *Directory) Commit(t ids.TaskID) (pruned []PrunedVersion) {
	m := d.byTask[t]
	if m == nil {
		return nil
	}
	for _, a := range m.reads {
		if w := d.words[a]; w != nil {
			delete(w.readers, t)
		}
	}
	for _, a := range m.writes {
		w := d.words[a]
		if w == nil {
			continue
		}
		i := sort.Search(len(w.versions), func(i int) bool { return !w.versions[i].Before(t) })
		for _, old := range w.versions[:i] {
			pruned = append(pruned, PrunedVersion{Addr: a, Producer: old})
		}
		if i > 0 {
			w.versions = append(w.versions[:0], w.versions[i:]...)
		}
	}
	delete(d.byTask, t)
	return pruned
}

// PrunedVersion names a superseded version removed at commit time.
type PrunedVersion struct {
	Addr     memsys.Addr
	Producer ids.TaskID
}

// WordsWritten returns the number of distinct words task t has live writes
// for (its written footprint, in words).
func (d *Directory) WordsWritten(t ids.TaskID) int {
	if m := d.byTask[t]; m != nil {
		return len(m.writes)
	}
	return 0
}

// WrittenAddrs returns the distinct words task t has live writes for.
func (d *Directory) WrittenAddrs(t ids.TaskID) []memsys.Addr {
	if m := d.byTask[t]; m != nil {
		return m.writes
	}
	return nil
}

// LiveWords returns the number of directory entries (for memory-bound
// tests).
func (d *Directory) LiveWords() int { return len(d.words) }

// VersionCount returns the number of live versions of word a.
func (d *Directory) VersionCount(a memsys.Addr) int {
	if w := d.words[a]; w != nil {
		return len(w.versions)
	}
	return 0
}

// Stats returns cumulative (reads, writes, violations detected).
func (d *Directory) Stats() (reads, writes, violations uint64) {
	return d.reads, d.writes, d.violations
}
