package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/memsys"
)

func TestVersionForEmpty(t *testing.T) {
	d := NewDirectory()
	if got := d.VersionFor(4, ids.TaskID(3)); got != ids.None {
		t.Fatalf("empty directory returned %v", got)
	}
}

func TestVersionForPicksLatestPredecessor(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(2))
	d.RecordWrite(4, ids.TaskID(5))
	d.RecordWrite(4, ids.TaskID(8))
	tests := []struct {
		reader, want ids.TaskID
	}{
		{ids.TaskID(1), ids.None},
		{ids.TaskID(2), ids.TaskID(2)},
		{ids.TaskID(4), ids.TaskID(2)},
		{ids.TaskID(5), ids.TaskID(5)},
		{ids.TaskID(7), ids.TaskID(5)},
		{ids.TaskID(9), ids.TaskID(8)},
	}
	for _, tt := range tests {
		if got := d.VersionFor(4, tt.reader); got != tt.want {
			t.Errorf("VersionFor(reader %v) = %v, want %v", tt.reader, got, tt.want)
		}
	}
}

func TestOutOfOrderWritesKeepSortedVersions(t *testing.T) {
	d := NewDirectory()
	// Successor writes first — the common case under speculation.
	d.RecordWrite(4, ids.TaskID(7))
	d.RecordWrite(4, ids.TaskID(3))
	if got := d.VersionFor(4, ids.TaskID(5)); got != ids.TaskID(3) {
		t.Fatalf("VersionFor = %v, want T2's version", got)
	}
	if d.VersionCount(4) != 2 {
		t.Fatalf("VersionCount = %d", d.VersionCount(4))
	}
}

func TestRepeatedWriteIsIdempotent(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(3))
	d.RecordWrite(4, ids.TaskID(3))
	if d.VersionCount(4) != 1 {
		t.Fatalf("VersionCount = %d after repeated write", d.VersionCount(4))
	}
}

func TestInOrderRAWIsSafe(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(2))
	if got := d.RecordRead(4, ids.TaskID(5)); got != ids.TaskID(2) {
		t.Fatalf("read consumed %v", got)
	}
	// A later write by an even later task does not violate the read.
	if v := d.RecordWrite(4, ids.TaskID(7)); v != ids.None {
		t.Fatalf("in-order write flagged violation of %v", v)
	}
}

func TestOutOfOrderRAWViolation(t *testing.T) {
	d := NewDirectory()
	d.RecordRead(4, ids.TaskID(5)) // consumed architectural data
	if v := d.RecordWrite(4, ids.TaskID(3)); v != ids.TaskID(5) {
		t.Fatalf("violation victim = %v, want T4", v)
	}
	_, _, violations := d.Stats()
	if violations != 1 {
		t.Fatalf("violations = %d", violations)
	}
}

func TestViolationPicksEarliestReader(t *testing.T) {
	d := NewDirectory()
	d.RecordRead(4, ids.TaskID(5))
	d.RecordRead(4, ids.TaskID(8))
	d.RecordRead(4, ids.TaskID(2)) // predecessor of the writer: unaffected
	if v := d.RecordWrite(4, ids.TaskID(3)); v != ids.TaskID(5) {
		t.Fatalf("victim = %v, want the earliest violated reader T4", v)
	}
}

func TestReaderOfInterveningVersionNotViolated(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(5))
	d.RecordRead(4, ids.TaskID(7)) // consumed T4's version
	// An out-of-order write from before the consumed version is harmless.
	if v := d.RecordWrite(4, ids.TaskID(3)); v != ids.None {
		t.Fatalf("write flagged %v despite intervening version", v)
	}
}

func TestOwnReadNotViolatedByPredecessorWrite(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(6))
	d.RecordRead(4, ids.TaskID(6)) // task reads its own version
	if v := d.RecordWrite(4, ids.TaskID(3)); v != ids.None {
		t.Fatalf("own-version read flagged as violated: %v", v)
	}
}

func TestMinConsumedVersionIsKept(t *testing.T) {
	d := NewDirectory()
	d.RecordRead(4, ids.TaskID(9)) // consumed architectural (None)
	d.RecordWrite(4, ids.TaskID(8))
	d.RecordRead(4, ids.TaskID(9)) // now consumes T7's version
	// T2's write is after None and before T8: the FIRST read was violated.
	if v := d.RecordWrite(4, ids.TaskID(3)); v != ids.TaskID(9) {
		t.Fatalf("earliest consumed version not retained (victim %v)", v)
	}
}

func TestSquashRemovesVersionsAndMarks(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(5))
	d.RecordRead(8, ids.TaskID(5))
	d.Squash(ids.TaskID(5))
	if d.VersionCount(4) != 0 {
		t.Fatal("squashed version survived")
	}
	if v := d.RecordWrite(8, ids.TaskID(2)); v != ids.None {
		t.Fatalf("squashed read mark still triggers violations: %v", v)
	}
	if got := d.VersionFor(4, ids.TaskID(9)); got != ids.None {
		t.Fatalf("reader sees squashed version %v", got)
	}
	d.Squash(ids.TaskID(5)) // second squash is a no-op
}

func TestCommitDropsReadMarksAndPrunes(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(1))
	d.RecordWrite(4, ids.TaskID(2))
	d.RecordRead(4, ids.TaskID(2))
	pruned := d.Commit(ids.TaskID(2))
	if len(pruned) != 1 || pruned[0].Producer != ids.TaskID(1) || pruned[0].Addr != 4 {
		t.Fatalf("pruned = %+v, want T0's version of word 4", pruned)
	}
	if d.VersionCount(4) != 1 {
		t.Fatalf("VersionCount = %d after pruning", d.VersionCount(4))
	}
	// The committed version remains visible to later readers.
	if got := d.VersionFor(4, ids.TaskID(9)); got != ids.TaskID(2) {
		t.Fatalf("later reader sees %v", got)
	}
}

func TestCommitUnknownTaskIsNoop(t *testing.T) {
	d := NewDirectory()
	if pruned := d.Commit(ids.TaskID(3)); pruned != nil {
		t.Fatalf("commit of unseen task pruned %v", pruned)
	}
}

func TestWordsWritten(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(1))
	d.RecordWrite(8, ids.TaskID(1))
	d.RecordWrite(4, ids.TaskID(1)) // duplicate
	if got := d.WordsWritten(ids.TaskID(1)); got != 2 {
		t.Fatalf("WordsWritten = %d, want 2", got)
	}
	if got := len(d.WrittenAddrs(ids.TaskID(1))); got != 2 {
		t.Fatalf("WrittenAddrs = %d entries", got)
	}
	if d.WordsWritten(ids.TaskID(9)) != 0 {
		t.Fatal("unknown task has nonzero footprint")
	}
}

// Property test: the directory agrees with a brute-force oracle over random
// interleavings of reads and writes (no squashes), on both version
// resolution and violation detection.
func TestDirectoryOracleProperty(t *testing.T) {
	type op struct {
		write bool
		addr  uint8
		task  uint8
	}
	f := func(raw []uint32) bool {
		d := NewDirectory()
		// Oracle state.
		type mark struct {
			reader   ids.TaskID
			consumed ids.TaskID
		}
		versions := map[memsys.Addr][]ids.TaskID{}
		marks := map[memsys.Addr][]mark{}
		oracleVersionFor := func(a memsys.Addr, r ids.TaskID) ids.TaskID {
			best := ids.None
			for _, v := range versions[a] {
				if !v.After(r) && v.After(best) {
					best = v
				}
			}
			return best
		}
		for _, x := range raw {
			o := op{write: x&1 == 0, addr: uint8(x >> 1 & 3), task: uint8(x >> 3 & 7)}
			a := memsys.Addr(o.addr)
			task := ids.TaskID(o.task) + 1
			if o.write {
				// Oracle violation check.
				want := ids.None
				for _, m := range marks[a] {
					if m.reader.After(task) && m.consumed.Before(task) {
						if want == ids.None || m.reader.Before(want) {
							want = m.reader
						}
					}
				}
				got := d.RecordWrite(a, task)
				if got != want {
					return false
				}
				present := false
				for _, v := range versions[a] {
					if v == task {
						present = true
					}
				}
				if !present {
					versions[a] = append(versions[a], task)
				}
			} else {
				want := oracleVersionFor(a, task)
				got := d.RecordRead(a, task)
				if got != want {
					return false
				}
				marks[a] = append(marks[a], mark{task, want})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLiveWordsBounded(t *testing.T) {
	d := NewDirectory()
	for task := ids.TaskID(1); task <= 100; task++ {
		d.RecordWrite(4, task)
		d.Commit(task)
	}
	if d.VersionCount(4) != 1 {
		t.Fatalf("VersionCount = %d; commit pruning failed", d.VersionCount(4))
	}
	if d.LiveWords() != 1 {
		t.Fatalf("LiveWords = %d", d.LiveWords())
	}
}

// TestMapsShrinkAfterFullSectionSquash is the regression lock for the
// directory-entry leak: squashing every task of a section must delete the
// emptied word entries and the tasks' footprint marks, not just their
// contents.
func TestMapsShrinkAfterFullSectionSquash(t *testing.T) {
	d := NewDirectory()
	for task := ids.TaskID(1); task <= 32; task++ {
		base := memsys.Addr(task) * 64
		for w := memsys.Addr(0); w < 8; w += 4 {
			d.RecordWrite(base+w, task)
			d.RecordRead(base+w+32, task)
		}
	}
	if d.LiveWords() == 0 || d.LiveTasks() != 32 {
		t.Fatalf("setup: LiveWords = %d, LiveTasks = %d", d.LiveWords(), d.LiveTasks())
	}
	for task := ids.TaskID(1); task <= 32; task++ {
		d.Squash(task)
	}
	if d.LiveWords() != 0 {
		t.Fatalf("LiveWords = %d after full-section squash, want 0", d.LiveWords())
	}
	if d.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d after full-section squash, want 0", d.LiveTasks())
	}
}

// TestMapsShrinkAfterCommits: committing the whole section with disjoint
// read-only footprints must likewise drain both tables (the committed
// versions of written words stay live on purpose).
func TestMapsShrinkAfterCommits(t *testing.T) {
	d := NewDirectory()
	for task := ids.TaskID(1); task <= 16; task++ {
		d.RecordRead(memsys.Addr(task)*4, task)
	}
	for task := ids.TaskID(1); task <= 16; task++ {
		d.Commit(task)
	}
	if d.LiveWords() != 0 {
		t.Fatalf("LiveWords = %d after read-only commits, want 0", d.LiveWords())
	}
	if d.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d after commits, want 0", d.LiveTasks())
	}
}

// TestManyLiveTasks forces the task-marks ring to grow past its initial
// size with every task still live, then checks each footprint survived.
func TestManyLiveTasks(t *testing.T) {
	d := NewDirectory()
	const n = 500
	for task := ids.TaskID(1); task <= n; task++ {
		d.RecordWrite(memsys.Addr(task)*4, task)
	}
	if d.LiveTasks() != n {
		t.Fatalf("LiveTasks = %d, want %d", d.LiveTasks(), n)
	}
	for task := ids.TaskID(1); task <= n; task++ {
		if d.WordsWritten(task) != 1 {
			t.Fatalf("task %d lost its footprint across ring growth", task)
		}
	}
	for task := ids.TaskID(1); task <= n; task++ {
		d.Commit(task)
	}
	if d.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d after committing all, want 0", d.LiveTasks())
	}
}

// TestDirectoryHotPathAllocFree locks the arena/pooling work: in steady
// state (a section shape already seen once), RecordRead, RecordWrite,
// VersionFor, Squash and Commit must not touch the allocator.
func TestDirectoryHotPathAllocFree(t *testing.T) {
	d := NewDirectory()
	task := ids.TaskID(0)
	section := func() {
		task++
		w, r := task, task+1
		for a := memsys.Addr(0); a < 256; a += 4 {
			d.RecordWrite(a, w)
			d.RecordRead(a, r)
		}
		d.Squash(r)
		d.Commit(w)
		task++
	}
	for i := 0; i < 8; i++ {
		section() // warm up pools to the section's footprint
	}
	if n := testing.AllocsPerRun(100, section); n != 0 {
		t.Fatalf("directory section allocates %.1f allocs/op in steady state, want 0", n)
	}
}

// TestVersionForAllocFree: the read-resolution path alone must be
// allocation-free even on a cold directory.
func TestVersionForAllocFree(t *testing.T) {
	d := NewDirectory()
	for task := ids.TaskID(1); task <= 8; task++ {
		d.RecordWrite(4, task)
	}
	if n := testing.AllocsPerRun(100, func() {
		d.VersionFor(4, ids.TaskID(5))
		d.VersionFor(8, ids.TaskID(5))
	}); n != 0 {
		t.Fatalf("VersionFor allocates %.1f allocs/op, want 0", n)
	}
}

// TestCommitPrunedBufferReuse documents the Commit contract: the returned
// slice is valid until the next Commit call.
func TestCommitPrunedBufferReuse(t *testing.T) {
	d := NewDirectory()
	d.RecordWrite(4, ids.TaskID(1))
	d.RecordWrite(4, ids.TaskID(2))
	d.RecordWrite(8, ids.TaskID(3))
	d.RecordWrite(8, ids.TaskID(4))
	first := d.Commit(ids.TaskID(2))
	if len(first) != 1 || first[0].Producer != ids.TaskID(1) {
		t.Fatalf("first commit pruned %+v", first)
	}
	second := d.Commit(ids.TaskID(4))
	if len(second) != 1 || second[0].Producer != ids.TaskID(3) || second[0].Addr != 8 {
		t.Fatalf("second commit pruned %+v", second)
	}
}
