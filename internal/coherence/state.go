package coherence

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/memsys"
)

// This file is the checkpoint surface of the directory. The arena indices,
// free lists and the task-marks ring are physical layout, invisible to the
// protocol, so a checkpoint records only logical state (per-word version and
// reader lists, per-task footprint marks, counters) in a canonical order and
// a restore rebuilds a fresh layout. Order inside each list is preserved
// verbatim: the reader-mark scan and the mark-driven cleanup walks visit
// entries in list order, so reordering them would change downstream timing.

// ReaderMarkState is one uncommitted reader's mark in a checkpoint.
type ReaderMarkState struct {
	Reader   ids.TaskID
	Consumed ids.TaskID
}

// WordStateState is one word's directory entry in a checkpoint.
type WordStateState struct {
	Addr     memsys.Addr
	Versions []ids.TaskID      // ascending, verbatim
	Readers  []ReaderMarkState // first-read order, verbatim
}

// TaskMarksState is one live task's footprint marks in a checkpoint.
type TaskMarksState struct {
	Task   ids.TaskID
	Writes []memsys.Addr // first-write order, verbatim
	Reads  []memsys.Addr // first-read order, verbatim
}

// DirectoryState is the serializable state of a Directory.
type DirectoryState struct {
	Words []WordStateState // sorted by address
	Tasks []TaskMarksState // sorted by task ID

	Reads      uint64
	Writes     uint64
	Violations uint64
	Injected   uint64
}

// State captures the directory for a checkpoint.
func (d *Directory) State() DirectoryState {
	s := DirectoryState{
		Reads: d.reads, Writes: d.writes,
		Violations: d.violations, Injected: d.injected,
	}
	for a, i := range d.words {
		w := &d.states[i]
		ws := WordStateState{
			Addr:     a,
			Versions: append([]ids.TaskID(nil), w.versions...),
		}
		for _, rm := range w.readers {
			ws.Readers = append(ws.Readers, ReaderMarkState{Reader: rm.reader, Consumed: rm.consumed})
		}
		s.Words = append(s.Words, ws)
	}
	sort.Slice(s.Words, func(i, j int) bool { return s.Words[i].Addr < s.Words[j].Addr })
	for _, slot := range d.slots {
		if slot.m == nil {
			continue
		}
		s.Tasks = append(s.Tasks, TaskMarksState{
			Task:   slot.id,
			Writes: append([]memsys.Addr(nil), slot.m.writes...),
			Reads:  append([]memsys.Addr(nil), slot.m.reads...),
		})
	}
	sort.Slice(s.Tasks, func(i, j int) bool { return s.Tasks[i].Task < s.Tasks[j].Task })
	return s
}

// RestoreState reinstates a checkpointed directory into d, replacing any
// existing contents with a freshly built arena. The injection hook is left
// as installed on d (the caller re-installs fault plumbing separately).
func (d *Directory) RestoreState(s DirectoryState) {
	d.words = make(map[memsys.Addr]int32, len(s.Words))
	d.states = make([]wordState, 0, len(s.Words))
	d.freeWords = nil
	d.slots = nil
	d.marksFree = nil
	d.scratch = nil
	d.prunedBuf = nil
	for _, ws := range s.Words {
		d.words[ws.Addr] = int32(len(d.states))
		d.states = append(d.states, wordStateFrom(ws))
	}
	for _, ts := range s.Tasks {
		m := d.marks(ts.Task)
		m.writes = append(m.writes[:0], ts.Writes...)
		m.reads = append(m.reads[:0], ts.Reads...)
	}
	d.reads, d.writes = s.Reads, s.Writes
	d.violations, d.injected = s.Violations, s.Injected
}

// wordStateFrom builds a wordState from its checkpoint form.
func wordStateFrom(ws WordStateState) wordState {
	w := wordState{versions: append([]ids.TaskID(nil), ws.Versions...)}
	for _, rm := range ws.Readers {
		w.readers = append(w.readers, readerMark{reader: rm.Reader, consumed: rm.Consumed})
	}
	return w
}
