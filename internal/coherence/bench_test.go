package coherence

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/memsys"
)

func BenchmarkRecordWriteRead(b *testing.B) {
	d := NewDirectory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ids.TaskID(i%64 + 1)
		a := memsys.Addr(i % 4096)
		d.RecordWrite(a, t)
		d.RecordRead(a, t+1)
		if i%64 == 63 {
			for j := ids.TaskID(1); j <= 65; j++ {
				d.Commit(j)
			}
		}
	}
}

func BenchmarkVersionFor(b *testing.B) {
	d := NewDirectory()
	for t := ids.TaskID(1); t <= 16; t++ {
		d.RecordWrite(4, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.VersionFor(4, ids.TaskID(9))
	}
}
