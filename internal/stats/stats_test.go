package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{Busy: 10, StallMem: 5, StallTask: 3, StallCommit: 2, StallRecovery: 1, StallIdle: 4}
	if b.Total() != 25 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Stall() != 15 {
		t.Fatalf("Stall = %d", b.Stall())
	}
}

func TestBreakdownAddAndSum(t *testing.T) {
	a := Breakdown{Busy: 1, StallMem: 2}
	b := Breakdown{Busy: 10, StallIdle: 5}
	a.Add(b)
	if a.Busy != 11 || a.StallMem != 2 || a.StallIdle != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	s := Sum([]Breakdown{{Busy: 1}, {Busy: 2, StallTask: 7}})
	if s.Busy != 3 || s.StallTask != 7 {
		t.Fatalf("Sum wrong: %+v", s)
	}
}

// Property: Total is preserved by Add.
func TestAddPreservesTotal(t *testing.T) {
	f := func(a, b [6]uint16) bool {
		x := Breakdown{event.Time(a[0]), event.Time(a[1]), event.Time(a[2]), event.Time(a[3]), event.Time(a[4]), event.Time(a[5])}
		y := Breakdown{event.Time(b[0]), event.Time(b[1]), event.Time(b[2]), event.Time(b[3]), event.Time(b[4]), event.Time(b[5])}
		want := x.Total() + y.Total()
		x.Add(y)
		return x.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusyFraction(t *testing.T) {
	b := Breakdown{Busy: 25, StallMem: 75}
	if got := b.BusyFraction(); got != 0.25 {
		t.Fatalf("BusyFraction = %v", got)
	}
	var empty Breakdown
	if empty.BusyFraction() != 0 {
		t.Fatal("empty breakdown fraction must be 0")
	}
}

func TestSamplerConstantLevel(t *testing.T) {
	var s Sampler
	s.Observe(0, 4)
	if got := s.Mean(100); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

func TestSamplerSteps(t *testing.T) {
	var s Sampler
	s.Observe(0, 0)
	s.Observe(50, 10) // level 0 for [0,50), 10 for [50,100)
	if got := s.Mean(100); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
}

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if s.Mean(100) != 0 {
		t.Fatal("empty sampler mean must be 0")
	}
}

func TestSamplerZeroHorizon(t *testing.T) {
	var s Sampler
	s.Observe(0, 7)
	if s.Mean(0) != 0 {
		t.Fatal("zero-horizon mean must be 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(4)
	if c.Value() != 7 {
		t.Fatalf("Counter = %d", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Count() != 0 {
		t.Fatal("empty mean wrong")
	}
	m.Observe(2)
	m.Observe(4)
	if m.Value() != 3 || m.Count() != 2 {
		t.Fatalf("Mean = %v over %d", m.Value(), m.Count())
	}
}

func TestSamplerClampsBackwardTime(t *testing.T) {
	var s Sampler
	s.Observe(100, 5)
	s.Observe(50, 9) // out of order: becomes a zero-length interval
	s.Observe(200, 0)
	// Level 5 held for [100,100], level 9 for [100,200].
	if got := s.Mean(200); got != 4.5 {
		t.Fatalf("Mean = %v, want 4.5", got)
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	if tl.Count() != 0 || tl.Mean() != 0 || tl.Min() != 0 || tl.Max() != 0 {
		t.Fatal("empty tally must report zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		tl.Observe(v)
	}
	if tl.Count() != 3 || tl.Sum() != 6 {
		t.Fatalf("count/sum wrong: %d/%f", tl.Count(), tl.Sum())
	}
	if tl.Mean() != 2 || tl.Min() != 1 || tl.Max() != 3 {
		t.Fatalf("mean/min/max wrong: %f/%f/%f", tl.Mean(), tl.Min(), tl.Max())
	}
	// A negative-only stream must not report a zero max.
	var neg Tally
	neg.Observe(-5)
	neg.Observe(-2)
	if neg.Max() != -2 || neg.Min() != -5 {
		t.Fatalf("negative stream: min %f max %f", neg.Min(), neg.Max())
	}
}
