// Package stats provides the time-breakdown accounting of the evaluation:
// per-processor execution time split into busy and stall categories
// (Figures 9-11 report Busy and Stall; we keep the stall sub-categories for
// analysis), and time-weighted samplers for quantities like the number of
// co-existing speculative tasks (Figure 1).
package stats

import "repro/internal/event"

// Breakdown is one processor's (or the aggregate) account of where cycles
// went. The sum of all fields equals wall-clock time for a processor that
// existed for the whole run.
type Breakdown struct {
	// Busy is instruction execution (including pipeline hazards folded into
	// the CPI) and the portion of memory access the core overlaps. Work
	// that is later squashed still counts as Busy — it occupied the core.
	Busy event.Time
	// StallMem is time stalled on memory accesses (cache misses, remote
	// fetches, overflow-area retrievals).
	StallMem event.Time
	// StallTask is stall due to insufficient task/version support: a
	// SingleT processor waiting for the commit token, or a MultiT&SV
	// processor waiting to create a second local version.
	StallTask event.Time
	// StallCommit is time a SingleT processor spends performing its own
	// eager merge (MultiT schemes merge in background hardware).
	StallCommit event.Time
	// StallRecovery is time spent in squash recovery (gang invalidation or
	// the FMM software log walk).
	StallRecovery event.Time
	// StallIdle is end-of-section idling: the commit wavefront outlasting
	// execution, or load-imbalance tail where no tasks remain to run.
	StallIdle event.Time
}

// Total returns the sum of all categories.
func (b Breakdown) Total() event.Time {
	return b.Busy + b.StallMem + b.StallTask + b.StallCommit + b.StallRecovery + b.StallIdle
}

// Stall returns the total non-busy time — the "Stall" component of the
// figures.
func (b Breakdown) Stall() event.Time {
	return b.Total() - b.Busy
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Busy += other.Busy
	b.StallMem += other.StallMem
	b.StallTask += other.StallTask
	b.StallCommit += other.StallCommit
	b.StallRecovery += other.StallRecovery
	b.StallIdle += other.StallIdle
}

// Sum aggregates a set of per-processor breakdowns.
func Sum(bs []Breakdown) Breakdown {
	var out Breakdown
	for _, b := range bs {
		out.Add(b)
	}
	return out
}

// BusyFraction returns Busy/Total in [0,1], or 0 for an empty breakdown.
func (b Breakdown) BusyFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Busy) / float64(t)
}

// Sampler computes the time-weighted average of an integer quantity, e.g.
// the number of speculative tasks co-existing in the system.
type Sampler struct {
	last     event.Time
	level    int
	weighted float64
	started  bool
}

// Observe records that the quantity has value level from time now onward.
// Observations arriving with a timestamp earlier than the previous one
// (processors run ahead within bounded quanta) are clamped to zero-length
// intervals.
func (s *Sampler) Observe(now event.Time, level int) {
	if s.started && now > s.last {
		s.weighted += float64(s.level) * float64(now-s.last)
		s.last = now
	} else if !s.started {
		s.last = now
	}
	s.level = level
	s.started = true
}

// Mean returns the time-weighted mean over [first observation, end].
func (s *Sampler) Mean(end event.Time) float64 {
	if !s.started || end <= s.last {
		if end == s.last && s.weighted > 0 {
			// Fall through to the closed-form below with zero tail.
		} else if !s.started {
			return 0
		}
	}
	total := s.weighted
	horizon := event.Time(0)
	if end > s.last {
		total += float64(s.level) * float64(end-s.last)
	}
	// The horizon is from time 0 (simulation start) to end.
	horizon = end
	if horizon == 0 {
		return 0
	}
	return total / float64(horizon)
}

// Counter is a named monotonically increasing count.
type Counter struct {
	n uint64
}

// Inc adds delta.
func (c *Counter) Inc(delta uint64) { c.n += delta }

// Value returns the count.
func (c *Counter) Value() uint64 { return c.n }

// Mean of a float64 accumulator.
type Mean struct {
	sum float64
	n   int
}

// Observe adds a sample.
func (m *Mean) Observe(v float64) { m.sum += v; m.n++ }

// Value returns the mean (0 when empty).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples.
func (m *Mean) Count() int { return m.n }

// Tally accumulates count, sum, min and max of a float64 quantity — the
// experiment orchestrator uses it for per-job wall times.
type Tally struct {
	n        int
	sum      float64
	min, max float64
}

// Observe adds a sample.
func (t *Tally) Observe(v float64) {
	if t.n == 0 || v < t.min {
		t.min = v
	}
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	t.sum += v
}

// Count returns the number of samples.
func (t *Tally) Count() int { return t.n }

// Sum returns the sample sum.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the sample mean (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest sample (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest sample (0 when empty).
func (t *Tally) Max() float64 { return t.max }

// SamplerState is the serializable state of a Sampler.
type SamplerState struct {
	Last     event.Time
	Level    int
	Weighted float64
	Started  bool
}

// State captures the sampler for a checkpoint.
func (s *Sampler) State() SamplerState {
	return SamplerState{Last: s.last, Level: s.level, Weighted: s.weighted, Started: s.started}
}

// RestoreState reinstates a checkpointed sampler.
func (s *Sampler) RestoreState(st SamplerState) {
	s.last, s.level, s.weighted, s.started = st.Last, st.Level, st.Weighted, st.Started
}

// MeanState is the serializable state of a Mean.
type MeanState struct {
	Sum float64
	N   int
}

// State captures the accumulator for a checkpoint.
func (m *Mean) State() MeanState { return MeanState{Sum: m.sum, N: m.n} }

// RestoreState reinstates a checkpointed accumulator.
func (m *Mean) RestoreState(st MeanState) { m.sum, m.n = st.Sum, st.N }
