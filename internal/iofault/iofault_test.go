package iofault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=7,perr=0.01,pshort=0.02,psync=0.03,cut=42,cutmode=zero")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.PErr != 0.01 || p.PShort != 0.02 || p.PSync != 0.03 ||
		p.Cut != 42 || p.CutMode != CutZero {
		t.Fatalf("parsed %+v", p)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round-trip %+v != %+v", back, p)
	}
	for _, bad := range []string{"", "seed=x", "bogus=1", "perr=2", "cutmode=maybe", "seed"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	p := Plan{Seed: 99, PErr: 0.3}
	for op := 1; op < 100; op++ {
		if p.roll(op, 1) != p.roll(op, 1) {
			t.Fatalf("op %d: roll not deterministic", op)
		}
	}
	// Different seeds must disagree somewhere.
	q := Plan{Seed: 100, PErr: 0.3}
	same := 0
	for op := 1; op < 100; op++ {
		if (p.roll(op, 1) < 0.3) == (q.roll(op, 1) < 0.3) {
			same++
		}
	}
	if same == 99 {
		t.Fatal("seeds 99 and 100 made identical decisions on 99 ops")
	}
}

func TestInjectorSyncFailurePoisonsHandle(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Plan{Seed: 1, PSync: 1}) // every sync fails
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync succeeded under PSync=1")
	}
	// fsyncgate: the unsynced data is gone.
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("unsynced data survived failed fsync: %q", data)
	}
	// The retry silently "succeeds" — but must not resurrect anything.
	if err := f.Sync(); err != nil {
		t.Fatalf("poisoned retry sync: %v (want silent success)", err)
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("write on poisoned fd: %v (want ErrPoisoned)", err)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Plan{Seed: 3, PShort: 1})
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write error %v, want ENOSPC", err)
	}
	if n != 5 {
		t.Fatalf("short write persisted %d bytes, want 5", n)
	}
}

func TestInjectorPowerCutTruncatesUnsyncedAndRevertsRenames(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Plan{Seed: 5, Cut: 1000}) // manual cut below
	var cuts int
	in.OnCut = func() { cuts++ }

	// A file with a synced prefix and an unsynced tail.
	fpath := filepath.Join(dir, "wal")
	f, err := in.OpenFile(fpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}

	// A temp renamed over an existing entry, directory never synced.
	entry := filepath.Join(dir, "entry.json")
	if err := os.WriteFile(entry, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the injector aware of the pre-existing entry.
	ef, err := in.OpenFile(entry, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ef.Close()
	tmp, err := in.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("new-entry")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(tmp.Name(), entry); err != nil {
		t.Fatal(err)
	}

	// Force the cut on the next mutating op.
	in.plan.Cut = in.ops + 1
	if err := in.SyncDir("/nonexistent-other-dir"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut op returned %v, want ErrPowerCut", err)
	}
	if cuts != 1 {
		t.Fatalf("OnCut ran %d times, want 1", cuts)
	}

	// Unsynced tail gone, synced prefix intact.
	if data, _ := os.ReadFile(fpath); string(data) != "durable|" {
		t.Fatalf("wal after cut: %q, want %q", data, "durable|")
	}
	// Non-dir-synced rename reverted: old entry content restored.
	if data, _ := os.ReadFile(entry); string(data) != "old" {
		t.Fatalf("entry after cut: %q, want %q (rename reverted)", data, "old")
	}
	// Everything after the cut fails.
	if _, err := in.OpenFile(fpath, os.O_RDWR, 0o644); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut open: %v", err)
	}
	if _, err := in.ReadFile(fpath); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut read: %v", err)
	}
}

func TestInjectorDirSyncCommitsRename(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Plan{Seed: 8, Cut: 1000})
	tmp, err := in.CreateTemp(dir, "x-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("payload"))
	tmp.Sync()
	tmp.Close()
	final := filepath.Join(dir, "final")
	if err := in.Rename(tmp.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	in.plan.Cut = in.ops + 1
	in.MkdirAll(filepath.Join(dir, "other"), 0o755) // fires the cut
	if data, _ := os.ReadFile(final); string(data) != "payload" {
		t.Fatalf("dir-synced rename did not survive the cut: %q", data)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(Real, path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(nil, path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "v2" {
		t.Fatalf("content %q", data)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}
}

// The recorder + enumerator on the canonical write-fsync-rename-dirsync
// pattern: before the dir sync the entry may legally be missing, stale, or
// present-under-the-temp-name; after it, every state must hold the payload.
func TestCrashStatesAtomicReplace(t *testing.T) {
	root := t.TempDir()
	rec := NewRecorder(root)
	tmp, err := rec.CreateTemp(root, "e-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("PAYLOAD"))
	tmp.Sync()
	tmp.Close()
	final := filepath.Join(root, "entry")
	if err := rec.Rename(tmp.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := rec.SyncDir(root); err != nil {
		t.Fatal(err)
	}
	rec.Note("entry acked")

	states := CrashStates(rec.Trace())
	if len(states) < 5 {
		t.Fatalf("only %d states enumerated", len(states))
	}
	sawAcked := false
	for _, s := range states {
		acked := len(s.Acked) > 0
		if acked {
			sawAcked = true
			if string(s.Files["entry"]) != "PAYLOAD" {
				t.Fatalf("%s: acked entry is %q", s.Desc, s.Files["entry"])
			}
		}
		// In every state, any visible "entry" file is either absent or holds
		// a prefix of the payload (the rename source was fully synced first,
		// so no state may invent bytes).
		if data, ok := s.Files["entry"]; ok && !bytes.HasPrefix([]byte("PAYLOAD"), data) {
			t.Fatalf("%s: entry holds %q", s.Desc, data)
		}
	}
	if !sawAcked {
		t.Fatal("no state carries the ack")
	}
}

// An unsynced write must be absent in strict states, zero-filled in zeroed
// states, and prefix-only in torn states.
func TestCrashStatesUnsyncedTailVariants(t *testing.T) {
	root := t.TempDir()
	rec := NewRecorder(root)
	path := filepath.Join(root, "wal")
	f, err := rec.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("AAAA"))
	f.Sync()
	rec.SyncDir(root)
	f.Write([]byte("BBBB")) // never synced

	var gotStrict, gotZero, gotTorn, gotFlushed bool
	for _, s := range CrashStates(rec.Trace()) {
		data := s.Files["wal"]
		switch {
		case bytes.Equal(data, []byte("AAAA")):
			gotStrict = true
		case bytes.Equal(data, []byte("AAAA\x00\x00\x00\x00")):
			gotZero = true
		case bytes.Equal(data, []byte("AAAABB")):
			gotTorn = true
		case bytes.Equal(data, []byte("AAAABBBB")):
			gotFlushed = true
		}
	}
	if !gotStrict || !gotZero || !gotTorn || !gotFlushed {
		t.Fatalf("missing variants: strict=%v zero=%v torn=%v flushed=%v",
			gotStrict, gotZero, gotTorn, gotFlushed)
	}
}

func TestForEachCrashStateMaterializes(t *testing.T) {
	root := t.TempDir()
	rec := NewRecorder(root)
	f, _ := rec.OpenFile(filepath.Join(root, "a"), os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	rec.SyncDir(root)
	n := 0
	err := ForEachCrashState(rec.Trace(), t.TempDir(), func(s CrashState, dir string) error {
		n++
		for rel, want := range s.Files {
			got, err := os.ReadFile(filepath.Join(dir, rel))
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: %s = %q want %q", s.Desc, rel, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no states visited")
	}
}

func TestRealSyncDir(t *testing.T) {
	if err := Real.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
}
