package iofault

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// ErrPowerCut is returned by every operation on an Injector after its
// plan's power cut has fired: the machine is off. Test with errors.Is.
var ErrPowerCut = errors.New("iofault: simulated power cut")

// ErrPoisoned is returned by writes on a handle whose Sync failed: the
// fsyncgate rule says the unsynced data is already lost and the handle must
// not be trusted again. Test with errors.Is.
var ErrPoisoned = errors.New("iofault: file handle poisoned by failed fsync")

// Injector implements FS over the real operating system while injecting the
// storage faults of a Plan. It additionally tracks what is actually durable
// — bytes synced per file, creates and renames whose directory was synced —
// so that the simulated power cut can drop exactly the state a real power
// cut could drop: unsynced tails are truncated, zeroed or torn, and
// non-dir-synced creates and renames are reverted.
//
// The injector is safe for concurrent use; fault decisions are a
// deterministic function of (plan seed, mutating-op index).
type Injector struct {
	// OnCut, when non-nil, runs once, immediately after the power cut has
	// rewritten the on-disk state. Drills install a hard process exit here
	// so the campaign dies exactly as a power cut would kill it.
	OnCut func()
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	plan Plan

	mu      sync.Mutex
	ops     int              // mutating-op counter (1-based in decisions)
	cut     bool             // power already cut
	durable map[string]int64 // synced byte count per path
	undo    []nsUndo         // creates/renames/removes not yet dir-synced
	faults  []string         // decision log
}

// nsUndo is one namespace operation that is not durable yet: enough saved
// state to revert it at power-cut time.
type nsUndo struct {
	dir      string // directory whose SyncDir commits this op
	kind     string // "create", "rename", "remove"
	path     string // created file, or rename target
	from     string // rename source
	oldData  []byte // target's prior content (rename over existing), or removed file's content
	hadOld   bool
	fromData []byte // source content to restore at `from` on revert
}

// NewInjector builds an injector over the real filesystem. A zero plan
// injects nothing and behaves exactly like Real.
func NewInjector(plan Plan) *Injector {
	if plan.CutMode == "" {
		plan.CutMode = CutTruncate
	}
	return &Injector{plan: plan, durable: make(map[string]int64)}
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Faults returns the decision log: one line per injected fault, in order.
func (in *Injector) Faults() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.faults...)
}

// CutFired reports whether the plan's power cut has happened.
func (in *Injector) CutFired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cut
}

// SetShortWrites adjusts the plan's short-write probability mid-run (p=1
// makes every subsequent write stop short with ENOSPC). Tests use it to
// aim a fault at one specific operation instead of rolling dice.
func (in *Injector) SetShortWrites(p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.PShort = p
}

// SetSyncFailures adjusts the plan's fsync-failure probability mid-run
// (p=1 makes every subsequent file or directory sync fail and poison its
// handle per the fsyncgate rule).
func (in *Injector) SetSyncFailures(p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.PSync = p
}

// SetErrors adjusts the plan's hard-error probability mid-run (p=1 makes
// every subsequent mutating op fail with EIO or ENOSPC).
func (in *Injector) SetErrors(p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.PErr = p
}

// CutAfter schedules the power cut to fire on the n-th mutating op from
// now (n=1 means the very next one).
func (in *Injector) CutAfter(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.Cut = in.ops + n
}

func (in *Injector) note(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	in.faults = append(in.faults, line)
	if in.Logf != nil {
		in.Logf("iofault: %s", line)
	}
}

// step advances the mutating-op counter, fires the power cut when the plan
// says so, and reports whether the machine is still on. Callers hold in.mu.
func (in *Injector) step() (op int, alive bool) {
	if in.cut {
		return in.ops, false
	}
	in.ops++
	if in.plan.Cut > 0 && in.ops >= in.plan.Cut {
		in.powerCut()
		return in.ops, false
	}
	return in.ops, true
}

// hardErr picks EIO or ENOSPC deterministically for op.
func (in *Injector) hardErr(op int, what, path string) error {
	errno := syscall.EIO
	if in.plan.roll(op, 7) < 0.5 {
		errno = syscall.ENOSPC
	}
	in.note("op %d: injected %v on %s %s", op, errno, what, path)
	return &os.PathError{Op: what, Path: path, Err: errno}
}

// powerCut rewrites the disk to a state a real power loss could have left:
// reverts every namespace op whose directory was never synced, then drops
// unsynced file tails per the plan's CutMode. Called with in.mu held.
func (in *Injector) powerCut() {
	in.cut = true
	in.note("op %d: POWER CUT (%s): reverting %d unsynced namespace ops",
		in.ops, in.plan.CutMode, len(in.undo))
	// Revert in reverse order so stacked ops unwind correctly.
	for i := len(in.undo) - 1; i >= 0; i-- {
		u := in.undo[i]
		switch u.kind {
		case "create":
			os.Remove(u.path)
		case "rename":
			if in.plan.CutMode == CutTorn && i == len(in.undo)-1 {
				// The freshest rename is left torn instead of reverted: the
				// target exists under its final name but holds only a prefix
				// — the non-atomic-rename crash recovery must tolerate.
				if data, err := os.ReadFile(u.path); err == nil && len(data) > 0 {
					os.WriteFile(u.path, data[:len(data)/2], 0o644)
					in.note("cut: rename %s left torn (%d of %d bytes)",
						u.path, len(data)/2, len(data))
					continue
				}
			}
			if u.fromData != nil {
				os.WriteFile(u.from, u.fromData, 0o644)
			}
			if u.hadOld {
				os.WriteFile(u.path, u.oldData, 0o644)
			} else {
				os.Remove(u.path)
			}
		case "remove":
			if u.hadOld {
				os.WriteFile(u.path, u.oldData, 0o644)
			}
		}
	}
	in.undo = nil
	// Drop unsynced tails of every file we have durability bookkeeping for.
	for path, synced := range in.durable {
		st, err := os.Stat(path)
		if err != nil || st.Size() <= synced {
			continue
		}
		switch in.plan.CutMode {
		case CutZero:
			// The tail's pages were allocated but their data never hit the
			// platter: present, but zero.
			zeros := make([]byte, st.Size()-synced)
			if f, err := os.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
				f.WriteAt(zeros, synced)
				f.Close()
			}
			in.note("cut: %s bytes [%d,%d) zeroed", path, synced, st.Size())
		case CutTorn:
			keep := synced + (st.Size()-synced)/2
			os.Truncate(path, keep)
			in.note("cut: %s torn at %d (synced %d, size %d)", path, keep, synced, st.Size())
		default:
			os.Truncate(path, synced)
			in.note("cut: %s truncated to synced %d (was %d)", path, synced, st.Size())
		}
	}
	if in.OnCut != nil {
		in.OnCut()
	}
}

// dirSynced commits every pending namespace op under dir. Called with in.mu
// held, after a successful SyncDir.
func (in *Injector) dirSynced(dir string) {
	kept := in.undo[:0]
	for _, u := range in.undo {
		if u.dir != dir {
			kept = append(kept, u)
		}
	}
	in.undo = kept
}

// injFile is an open file under injection: it tracks size and synced size
// so the power cut knows what to drop, and carries the fsyncgate poison.
type injFile struct {
	in       *Injector
	f        File
	path     string
	size     int64
	poisoned bool
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return nil, &os.PathError{Op: "open", Path: name, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return nil, in.hardErr(op, "open", name)
	}
	_, existed := in.durable[name]
	if !existed {
		if st, err := os.Stat(name); err == nil {
			// Pre-existing file from before this "boot": its current content
			// is assumed durable.
			in.durable[name] = st.Size()
			existed = true
		}
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if !existed {
		in.durable[name] = 0
		in.undo = append(in.undo, nsUndo{dir: filepath.Dir(name), kind: "create", path: name})
	}
	if flag&os.O_TRUNC != 0 {
		in.durable[name] = 0
	}
	return &injFile{in: in, f: f, path: name, size: st.Size()}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return nil, in.hardErr(op, "createtemp", dir)
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	name := f.Name()
	in.durable[name] = 0
	in.undo = append(in.undo, nsUndo{dir: filepath.Dir(name), kind: "create", path: name})
	return &injFile{in: in, f: f, path: name}, nil
}

func (f *injFile) Name() string { return f.f.Name() }

func (f *injFile) Write(p []byte) (int, error) {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: ErrPowerCut}
	}
	if f.poisoned {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: ErrPoisoned}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return 0, in.hardErr(op, "write", f.path)
	}
	if in.plan.roll(op, 2) < in.plan.PShort && len(p) > 1 {
		n, _ := f.f.Write(p[:len(p)/2])
		f.size += int64(n)
		in.note("op %d: short write on %s (%d of %d bytes, ENOSPC)", op, f.path, n, len(p))
		return n, &os.PathError{Op: "write", Path: f.path, Err: syscall.ENOSPC}
	}
	n, err := f.f.Write(p)
	f.size += int64(n)
	return n, err
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *injFile) Truncate(size int64) error {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "truncate", Path: f.path, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return in.hardErr(op, "truncate", f.path)
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.size = size
	if in.durable[f.path] > size {
		in.durable[f.path] = size
	}
	return nil
}

func (f *injFile) Sync() error {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "sync", Path: f.path, Err: ErrPowerCut}
	}
	if f.poisoned {
		// The fsyncgate trap: the earlier failure already marked the dirty
		// pages clean, so this retry "succeeds" — while persisting nothing.
		// Durability bookkeeping does NOT advance; code that acknowledges
		// on the strength of this sync is caught by the crash checker.
		in.note("op %d: silently-lost fsync on poisoned %s", op, f.path)
		return nil
	}
	if in.plan.roll(op, 3) < in.plan.PSync {
		// Failed fsync: the unsynced tail is gone (pages dropped), and the
		// handle is poisoned.
		f.poisoned = true
		synced := in.durable[f.path]
		os.Truncate(f.path, synced)
		f.size = synced
		in.note("op %d: fsync FAILED on %s; unsynced tail beyond %d dropped, fd poisoned",
			op, f.path, synced)
		return &os.PathError{Op: "sync", Path: f.path, Err: syscall.EIO}
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	if st, err := os.Stat(f.path); err == nil {
		in.durable[f.path] = st.Size()
	} else {
		in.durable[f.path] = f.size
	}
	return nil
}

func (f *injFile) Close() error {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cut {
		f.f.Close()
		return &os.PathError{Op: "close", Path: f.path, Err: ErrPowerCut}
	}
	return f.f.Close()
}

func (in *Injector) Rename(oldpath, newpath string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "rename", Path: oldpath, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return in.hardErr(op, "rename", newpath)
	}
	u := nsUndo{dir: filepath.Dir(newpath), kind: "rename", path: newpath, from: oldpath}
	u.fromData, _ = os.ReadFile(oldpath)
	if data, err := os.ReadFile(newpath); err == nil {
		u.oldData, u.hadOld = data, true
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	// The file object moves with its durable bytes; the *name* is what is
	// not durable until the directory syncs.
	if synced, ok := in.durable[oldpath]; ok {
		in.durable[newpath] = synced
		delete(in.durable, oldpath)
	}
	in.undo = append(in.undo, u)
	return nil
}

func (in *Injector) Remove(name string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "remove", Path: name, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return in.hardErr(op, "remove", name)
	}
	u := nsUndo{dir: filepath.Dir(name), kind: "remove", path: name}
	if data, err := os.ReadFile(name); err == nil {
		u.oldData, u.hadOld = data, true
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	delete(in.durable, name)
	in.undo = append(in.undo, u)
	return nil
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "mkdir", Path: path, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 1) < in.plan.PErr {
		return in.hardErr(op, "mkdir", path)
	}
	return os.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	in.mu.Lock()
	cut := in.cut
	in.mu.Unlock()
	if cut {
		return nil, &os.PathError{Op: "read", Path: name, Err: ErrPowerCut}
	}
	return os.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	in.mu.Lock()
	cut := in.cut
	in.mu.Unlock()
	if cut {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: ErrPowerCut}
	}
	return os.ReadDir(name)
}

func (in *Injector) SyncDir(dir string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	op, alive := in.step()
	if !alive {
		return &os.PathError{Op: "syncdir", Path: dir, Err: ErrPowerCut}
	}
	if in.plan.roll(op, 3) < in.plan.PSync {
		in.note("op %d: directory fsync FAILED on %s (renames inside are not durable)", op, dir)
		return &os.PathError{Op: "syncdir", Path: dir, Err: syscall.EIO}
	}
	if err := Real.SyncDir(dir); err != nil {
		return err
	}
	in.dirSynced(filepath.Clean(dir))
	return nil
}
